// Seizure monitor: the paper's motivating BCI scenario (Sec. I) —
// an implanted device streaming EEG windows through the UniVSA
// accelerator, flagging seizure windows in real time within the power
// envelope of an implant.
//
// Trains on the CHB-B stand-in (balanced seizure detection), streams the
// test set through the packed runtime backend (with a bit-true parity
// check of every registered backend against the reference pipeline), and
// reports detection quality + the hardware budget (latency, throughput,
// power) of the monitoring loop.
#include <chrono>
#include <cstdio>

#include "univsa/data/benchmarks.h"
#include "univsa/hw/accelerator.h"
#include "univsa/hw/functional_sim.h"
#include "univsa/hw/pipeline.h"
#include "univsa/report/metrics.h"
#include "univsa/runtime/parity.h"
#include "univsa/runtime/registry.h"
#include "univsa/train/univsa_trainer.h"

int main() {
  using namespace univsa;

  data::SyntheticSpec spec = data::find_benchmark("CHB-B").spec;
  spec.train_count = 300;
  spec.test_count = 200;
  const data::SyntheticResult ds = data::generate(spec);
  const vsa::ModelConfig config = data::find_benchmark("CHB-B").config;

  std::puts("== training seizure detector (CHB-B configuration) ==");
  train::TrainOptions options;
  options.epochs = 15;
  const train::UniVsaTrainResult trained =
      train::train_univsa(config, ds.train, options);

  // Stream the whole test set through the packed runtime backend.
  const auto backend = runtime::make_backend("packed", trained.model);
  std::vector<vsa::Prediction> predictions;
  const auto t0 = std::chrono::steady_clock::now();
  backend->predict_batch(ds.test, predictions);
  const double elapsed =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();
  report::ConfusionMatrix cm(2);
  for (std::size_t i = 0; i < ds.test.size(); ++i) {
    cm.add(ds.test.label(i), predictions[i].label);
  }
  std::printf("streamed %zu EEG windows through the %s backend "
              "(%.0f windows/s software)\n",
              ds.test.size(), backend->name().c_str(),
              static_cast<double>(ds.test.size()) / elapsed);
  std::printf("  accuracy %.3f | seizure recall %.3f | seizure "
              "precision %.3f | macro-F1 %.3f\n",
              cm.accuracy(), cm.recall(1), cm.precision(1),
              cm.macro_f1());
  std::printf("  confusion matrix:\n%s", cm.to_string().c_str());

  // Bit-true spot-check: every registered backend — including the
  // cycle-counted hardware functional simulator — must agree with the
  // reference pipeline on label and scores.
  std::vector<std::vector<std::uint16_t>> spot;
  for (std::size_t i = 0; i < ds.test.size() && spot.size() < 8;
       i += ds.test.size() / 8 + 1) {
    spot.push_back(ds.test.values(i));
  }
  const runtime::ParityReport parity =
      runtime::verify_parity(trained.model, spot);
  if (!parity.ok()) {
    std::printf("  BIT MISMATCH across backends:\n%s\n",
                parity.summary().c_str());
    return 1;
  }
  std::printf("  %zu windows spot-checked bit-exact across backends "
              "(%s)\n",
              spot.size(), parity.summary().c_str());

  // Hardware budget of the monitoring loop.
  const hw::HardwareReport hwr = hw::report_for(config);
  std::puts("\n== implant budget (simulated ZU3EG-class fabric) ==");
  std::printf("  model memory     %.2f KB\n", hwr.memory_kb);
  std::printf("  window latency   %.3f ms\n", hwr.latency_ms);
  std::printf("  throughput       %.1fk windows/s (streaming)\n",
              hwr.throughput_kilo);
  std::printf("  power            %.2f W (BCI feasibility line: 1.5 W)\n",
              hwr.power_w);
  std::printf("  logic            %.2fk LUTs, %zu BRAMs, %zu DSPs\n",
              hwr.kiloluts, hwr.brams, hwr.dsps);

  // A 23-window EEG buffer arrives every ~1 s in CHB-style monitoring;
  // show the pipeline absorbing a burst of 4 buffered windows.
  const hw::StreamSchedule schedule = hw::schedule_stream(
      hwr.cycles, 4, hw::TimingParams{}.controller_overhead);
  std::puts("\nburst of 4 windows through the pipeline:");
  std::fputs(hw::render_gantt(schedule, 64).c_str(), stdout);
  return 0;
}
