// Edge deployment report: audit a serialized .uvsa model the way a
// firmware integrator would — load it, verify it end-to-end on the
// bit-true accelerator simulation, and print the full hardware budget
// and pipeline schedule.
//
//   $ ./edge_deployment_report [model.uvsa]
//
// Without an argument it trains a small ISOLET-style model first, so the
// example is self-contained.
#include <chrono>
#include <cstdio>
#include <string>

#include "univsa/data/benchmarks.h"
#include "univsa/hw/accelerator.h"
#include "univsa/hw/functional_sim.h"
#include "univsa/hw/io_model.h"
#include "univsa/hw/pipeline.h"
#include "univsa/runtime/parity.h"
#include "univsa/runtime/registry.h"
#include "univsa/train/univsa_trainer.h"
#include "univsa/vsa/memory_model.h"
#include "univsa/vsa/serialization.h"

int main(int argc, char** argv) {
  using namespace univsa;

  std::string path;
  if (argc > 1) {
    path = argv[1];
  } else {
    std::puts("(no model given — training a small ISOLET-style one)");
    data::SyntheticSpec spec = data::find_benchmark("ISOLET").spec;
    spec.train_count = 260;
    spec.test_count = 130;
    const data::SyntheticResult ds = data::generate(spec);
    train::TrainOptions options;
    options.epochs = 12;
    const auto trained = train::train_univsa(
        data::find_benchmark("ISOLET").config, ds.train, options);
    path = "isolet_model.uvsa";
    vsa::ModelIo::save_file(trained.model, path);
  }

  const vsa::Model model = vsa::ModelIo::load_file(path);
  const vsa::ModelConfig& c = model.config();
  std::printf("\n== deployment report for %s ==\n", path.c_str());
  std::printf("configuration: %s\n", c.to_string().c_str());

  const auto breakdown = vsa::memory_breakdown(c);
  std::puts("\nmodel payload (Eq. 5):");
  std::printf("  value vectors V   %6zu bits\n", breakdown.value_vectors);
  std::printf("  conv kernels  K   %6zu bits\n", breakdown.conv_kernels);
  std::printf("  feature vecs  F   %6zu bits\n",
              breakdown.feature_vectors);
  std::printf("  class vecs    C   %6zu bits\n", breakdown.class_vectors);
  std::printf("  total             %6zu bits = %.2f KB (file payload "
              "%zu bytes)\n",
              breakdown.total_bits(), vsa::memory_kb(c),
              vsa::ModelIo::payload_bytes(model));

  // Bit-true dry run: a probe batch cross-checked across every
  // registered runtime backend (reference pipeline, packed engine, and
  // the accelerator datapath).
  Rng rng(99);
  const std::size_t n_probe = 16;
  std::vector<std::vector<std::uint16_t>> probes(n_probe);
  for (auto& probe : probes) {
    probe.resize(c.features());
    for (auto& v : probe) {
      v = static_cast<std::uint16_t>(rng.uniform_index(c.M));
    }
  }
  const runtime::ParityReport parity =
      runtime::verify_parity(model, probes);
  std::printf("\nbit-true dry run: %zu-probe batch across backends — "
              "%s\n",
              n_probe, parity.summary().c_str());
  if (!parity.ok()) return 1;

  const auto backend =
      runtime::make_backend(runtime::default_backend(), model);
  std::vector<vsa::Prediction> sw;
  const auto t0 = std::chrono::steady_clock::now();
  backend->predict_batch(probes, sw);
  const double batch_s =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();
  std::printf("  %s backend throughput: %.0f inferences/s\n",
              backend->name().c_str(),
              static_cast<double>(n_probe) / batch_s);

  const hw::HardwareReport r = hw::report_for(c);
  std::puts("\nprojected fabric budget (ZU3EG-class, 250 MHz):");
  std::printf("  latency %.3f ms | throughput %.1fk/s | power %.2f W | "
              "%.2fk LUTs | %zu BRAM | %zu DSP\n",
              r.latency_ms, r.throughput_kilo, r.power_w, r.kiloluts,
              r.brams, r.dsps);
  std::printf("  stage cycles: DVP %zu, BiConv %zu, Encode %zu, "
              "Similarity %zu (α = %zu)\n",
              r.cycles.dvp, r.cycles.biconv, r.cycles.encoding,
              r.cycles.similarity, hw::conv_iteration_cycles(c));

  const hw::IoReport io = hw::io_report_for(c);
  std::printf("\nhost link (AXI): %.2f us I/O per inference vs %.2f us "
              "compute interval (%.0f%% — covered by the pipeline)\n",
              io.io_us, io.compute_interval_us, 100.0 * io.io_fraction);

  const hw::StreamSchedule schedule = hw::schedule_stream(
      r.cycles, 3, hw::TimingParams{}.controller_overhead);
  std::puts("\nstreaming schedule (3 inputs):");
  std::fputs(hw::render_gantt(schedule, 64).c_str(), stdout);
  return 0;
}
