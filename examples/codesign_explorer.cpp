// Co-design explorer: the Sec. V-A flow as a user would run it —
// evolutionary search over (D_H, D_L, D_K, O, Θ) with the Eq. 7 hardware
// penalty, each candidate scored by actually training it, then a full
// hardware report for the winner.
#include <cstdio>

#include "univsa/data/benchmarks.h"
#include "univsa/hw/accelerator.h"
#include "univsa/search/evolutionary.h"
#include "univsa/train/univsa_trainer.h"
#include "univsa/vsa/memory_model.h"

int main() {
  using namespace univsa;

  // A reduced BCI-III-V-style task keeps each candidate's training in
  // the hundreds of milliseconds.
  data::SyntheticSpec spec = data::find_benchmark("BCI-III-V").spec;
  spec.train_count = 200;
  spec.test_count = 100;
  const data::SyntheticResult ds = data::generate(spec);

  vsa::ModelConfig task;
  task.W = spec.windows;
  task.L = spec.length;
  task.C = spec.classes;
  task.M = spec.levels;

  const search::AccuracyFn oracle = [&](const vsa::ModelConfig& c) {
    train::TrainOptions options;
    options.epochs = 6;
    options.seed = 3;
    return train::train_univsa(c, ds.train, options)
        .model.accuracy(ds.test);
  };

  search::SearchSpace space;
  space.d_h = {2, 4, 8};
  space.o_min = 8;
  space.o_max = 64;
  search::SearchOptions options;
  options.population = 8;
  options.generations = 4;
  options.elite = 2;
  options.seed = 17;

  std::puts("== evolutionary co-design search (obj = Acc - L_HW) ==");
  const search::SearchResult found =
      search::evolutionary_search(task, space, oracle, options);

  for (std::size_t g = 0; g < found.history.size(); ++g) {
    std::printf("  gen %zu: best objective %.4f (mean %.4f)\n", g,
                found.history[g].best_objective,
                found.history[g].mean_objective);
  }
  std::printf("\nselected configuration: %s\n",
              found.best_config.to_string().c_str());
  std::printf("  validation accuracy %.4f, Eq. 7 penalty %.4f\n",
              found.best_accuracy,
              vsa::hardware_penalty(found.best_config));

  const hw::HardwareReport r = hw::report_for(found.best_config);
  std::puts("\nprojected hardware for the selected configuration:");
  std::printf("  memory %.2f KB | latency %.3f ms | %.1fk inf/s | "
              "%.2f W | %.2fk LUTs | %zu BRAM | %zu DSP\n",
              r.memory_kb, r.latency_ms, r.throughput_kilo, r.power_w,
              r.kiloluts, r.brams, r.dsps);
  std::printf("  (%zu candidate trainings spent)\n", found.evaluations);
  return 0;
}
