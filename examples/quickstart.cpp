// Quickstart: train a UniVSA classifier, deploy it as a pure-binary
// model, save/reload it, and classify.
//
//   $ ./quickstart
//
// Walks the full API surface in ~40 lines of user code:
//   1. get a benchmark dataset (synthetic EEG stand-in),
//   2. train the partial BNN (Sec. II-C/III) with train_univsa(),
//   3. extract + serialize the deployed model (V/K/F/C bit vectors),
//   4. reload and classify through a runtime backend (Eq. 1–4).
#include <cstdio>

#include "univsa/data/benchmarks.h"
#include "univsa/runtime/registry.h"
#include "univsa/train/univsa_trainer.h"
#include "univsa/vsa/memory_model.h"
#include "univsa/vsa/serialization.h"

int main() {
  using namespace univsa;

  // 1. A small HAR-style task (Table I geometry, reduced sample count).
  data::SyntheticSpec spec = data::find_benchmark("HAR").spec;
  spec.train_count = 300;
  spec.test_count = 150;
  const data::SyntheticResult ds = data::generate(spec);
  std::printf("dataset: %zu train / %zu test samples, %zu classes, "
              "input (%zu, %zu) @ %zu levels\n",
              ds.train.size(), ds.test.size(), ds.train.classes(),
              ds.train.windows(), ds.train.length(), ds.train.levels());

  // 2. Train with the Table I configuration for HAR.
  const vsa::ModelConfig config = data::find_benchmark("HAR").config;
  train::TrainOptions options;
  options.epochs = 15;
  options.verbose = true;
  std::printf("training UniVSA %s ...\n", config.to_string().c_str());
  const train::UniVsaTrainResult trained =
      train::train_univsa(config, ds.train, options);

  // 3. The deployed model is a few KB of packed bits (Eq. 5).
  std::printf("deployed model: %.2f KB (Eq. 5), accuracy %.4f (train) "
              "%.4f (test)\n",
              vsa::memory_kb(config), trained.model.accuracy(ds.train),
              trained.model.accuracy(ds.test));
  vsa::ModelIo::save_file(trained.model, "har_model.uvsa");

  // 4. Reload and classify one sample through the default runtime
  //    backend (the packed zero-allocation engine) — pure binary ops.
  const vsa::Model model = vsa::ModelIo::load_file("har_model.uvsa");
  const auto backend =
      runtime::make_backend(runtime::default_backend(), model);
  const auto& sample = ds.test.values(0);
  const vsa::Prediction pred = backend->predict(sample);
  std::printf("sample 0: true label %d, predicted %d, scores [",
              ds.test.label(0), pred.label);
  for (std::size_t c = 0; c < pred.scores.size(); ++c) {
    std::printf("%s%lld", c ? ", " : "", pred.scores[c]);
  }
  std::puts("]");
  std::puts("model saved to har_model.uvsa");
  return 0;
}
