// RTL export: train a model and emit the synthesizable Verilog
// accelerator with the binary vector sets baked in (the paper's
// deployment path, Sec. IV / V-A "developed in Verilog using Vivado").
//
//   $ ./rtl_export [output_dir]
//
// Produces <dir>/univsa_rtl.v (five modules) and <dir>/univsa_tb.v (a
// self-checking testbench whose expected label comes from this repo's
// bit-true functional simulator). Point your simulator/synthesis tool at
// them:  iverilog -o sim univsa_rtl.v univsa_tb.v && ./sim
#include <cstdio>
#include <string>

#include "univsa/data/benchmarks.h"
#include "univsa/hw/verilog_gen.h"
#include "univsa/train/univsa_trainer.h"
#include "univsa/vsa/memory_model.h"

int main(int argc, char** argv) {
  using namespace univsa;
  const std::string out_dir = argc > 1 ? argv[1] : ".";

  // A compact HAR-style model keeps the emitted ROMs readable.
  data::SyntheticSpec spec = data::find_benchmark("HAR").spec;
  spec.train_count = 240;
  spec.test_count = 120;
  const data::SyntheticResult ds = data::generate(spec);
  const vsa::ModelConfig config = data::find_benchmark("HAR").config;

  std::printf("training %s ...\n", config.to_string().c_str());
  train::TrainOptions options;
  options.epochs = 12;
  const train::UniVsaTrainResult trained =
      train::train_univsa(config, ds.train, options);
  std::printf("test accuracy %.4f, model payload %.2f KB\n",
              trained.model.accuracy(ds.test), vsa::memory_kb(config));

  const hw::VerilogGenerator gen(trained.model);
  const auto& sample = ds.test.values(0);
  gen.write_files(out_dir, sample);

  // Self-check the emitted text before handing it to the user.
  const std::string rtl = gen.emit_all();
  const auto problems = hw::verilog_structural_problems(rtl);
  if (!problems.empty()) {
    std::fprintf(stderr, "structural problem: %s\n",
                 problems.front().c_str());
    return 1;
  }
  const auto modules = hw::verilog_module_names(rtl);
  std::printf("\nemitted %zu modules (%zu KB of Verilog):\n",
              modules.size(), rtl.size() / 1000);
  for (const auto& m : modules) std::printf("  %s\n", m.c_str());
  std::printf("\nfiles: %s/univsa_rtl.v, %s/univsa_tb.v\n",
              out_dir.c_str(), out_dir.c_str());
  std::printf("testbench expects label %d for its embedded sample "
              "(true label %d)\n",
              trained.model.predict(sample).label, ds.test.label(0));
  return 0;
}
