#!/usr/bin/env python3
"""Documentation consistency checker (runs in the docs-check CI job).

Two passes:

1. Link check — every relative markdown link in README.md, DESIGN.md,
   and docs/*.md must point at an existing file, and an explicit
   `#anchor` must match a heading in the target (GitHub slug rules).
   External (http/https/mailto) links are not fetched.

2. Metric check — every backticked `dotted.metric.name` documented in
   a docs/METRICS.md or docs/NETWORK.md table must appear in at least
   one of the telemetry snapshot JSONs passed via --snapshot (union of
   their counters / gauges / histograms keys). Documented-but-missing
   names FAIL the build; live-but-undocumented names only warn, so
   experiments can add probes without gating on docs. Rows containing
   `<` (e.g. `bench.<name>_ns`, `router.shard_requests<shard>`) are
   match patterns: they are never required to be live, but live names
   they match (such as labeled per-shard instances) count as
   documented.

3. CLI command check (with --cli-usage) — the file holds the live
   `univsa_cli` usage line (capture stderr of running it with no
   arguments). Every command documented as a `## \`cmd\` — ...`
   heading in docs/CLI.md or docs/NETWORK.md must exist in the live
   command list; a doc section (and its flag table) for a command
   that no longer exists is a HARD ERROR, not a warning — stale
   operator docs are worse than missing ones. Live commands without a
   CLI.md section only warn.

Exit status: 0 clean (warnings allowed), 1 on any error.
"""

from __future__ import annotations

import argparse
import json
import re
import sys
from pathlib import Path

LINK_RE = re.compile(r"(?<!\!)\[[^\]]*\]\(([^)\s]+)\)")
METRIC_RE = re.compile(r"`([a-z][a-z0-9_]*(?:\.[a-z0-9_<>]+)+)`")
HEADING_RE = re.compile(r"^#{1,6}\s+(.*)$", re.MULTILINE)
CODE_FENCE_RE = re.compile(r"```.*?```", re.DOTALL)


def github_slug(heading: str) -> str:
    """GitHub's anchor slug: strip markup, lowercase, drop punctuation,
    spaces to hyphens."""
    text = re.sub(r"[`*_]", "", heading.strip())
    text = re.sub(r"\[([^\]]*)\]\([^)]*\)", r"\1", text)  # [t](u) -> t
    text = text.lower()
    text = re.sub(r"[^\w\- ]", "", text, flags=re.UNICODE)
    return text.replace(" ", "-")


def anchors_of(path: Path) -> set[str]:
    text = CODE_FENCE_RE.sub("", path.read_text(encoding="utf-8"))
    slugs: set[str] = set()
    counts: dict[str, int] = {}
    for match in HEADING_RE.finditer(text):
        slug = github_slug(match.group(1))
        n = counts.get(slug, 0)
        counts[slug] = n + 1
        slugs.add(slug if n == 0 else f"{slug}-{n}")
    return slugs


def check_links(doc: Path, repo_root: Path, errors: list[str]) -> None:
    text = CODE_FENCE_RE.sub("", doc.read_text(encoding="utf-8"))
    for match in LINK_RE.finditer(text):
        target = match.group(1)
        if target.startswith(("http://", "https://", "mailto:")):
            continue
        path_part, _, anchor = target.partition("#")
        if not path_part:  # same-file anchor
            dest = doc
        else:
            dest = (doc.parent / path_part).resolve()
            if repo_root not in dest.parents and dest != repo_root:
                errors.append(f"{doc}: link escapes the repo: {target}")
                continue
            if not dest.exists():
                errors.append(f"{doc}: dead link: {target}")
                continue
        if anchor and dest.suffix == ".md":
            if anchor not in anchors_of(dest):
                errors.append(
                    f"{doc}: dead anchor: {target} "
                    f"(no heading slugs to '{anchor}' in {dest.name})")


def documented_metrics(
        docs: list[Path]) -> tuple[set[str], list[re.Pattern[str]]]:
    """Metric names are the backticked first cell of metric-doc table
    rows (METRICS.md, plus NETWORK.md's net.*/router.* tables); prose
    mentions and file names don't count. Rows containing
    `<placeholder>` (e.g. `bench.<name>_ns`, a label family like
    `router.shard_requests<shard>`) become match patterns: the
    placeholder matches any run of characters, so labeled live names
    such as `router.shard_requests{shard=0}` count as documented."""
    names: set[str] = set()
    patterns: list[re.Pattern[str]] = []
    for doc in docs:
        text = CODE_FENCE_RE.sub("", doc.read_text(encoding="utf-8"))
        for line in text.splitlines():
            if not line.startswith("|"):
                continue
            first_cell = line.split("|")[1]
            match = METRIC_RE.search(first_cell)
            if not match:
                continue
            name = match.group(1)
            if "<" in name:  # pattern row, e.g. bench.<name>_ns
                parts = re.split(r"<[^>]*>", name)
                patterns.append(
                    re.compile(".*".join(re.escape(p) for p in parts)))
                continue
            names.add(name)
    return names, patterns


USAGE_RE = re.compile(r"usage:\s+\S*univsa_cli\s+<([^>]+)>")
COMMAND_HEADING_RE = re.compile(r"^#{2,3}\s+(.*`[a-z][a-z0-9_-]*`.*)$",
                                re.MULTILINE)


def live_commands(usage_file: Path, errors: list[str]) -> set[str]:
    """The `<a|b|c>` command list from the captured usage line."""
    text = usage_file.read_text(encoding="utf-8")
    match = USAGE_RE.search(text)
    if not match:
        errors.append(
            f"{usage_file}: no 'usage: univsa_cli <...>' line found")
        return set()
    return {c.strip() for c in match.group(1).split("|") if c.strip()}


def documented_commands(doc: Path) -> dict[str, str]:
    """Commands documented as `## \\`cmd\\` — ...` headings (a heading
    may name several, e.g. `export-c` / `export-rtl`), mapped to the
    heading text for error reporting."""
    commands: dict[str, str] = {}
    text = CODE_FENCE_RE.sub("", doc.read_text(encoding="utf-8"))
    for match in COMMAND_HEADING_RE.finditer(text):
        heading = match.group(1)
        for name in re.findall(r"`([a-z][a-z0-9_-]*)`", heading):
            commands.setdefault(name, heading.strip())
    return commands


def check_cli_commands(repo: Path, usage_file: Path, errors: list[str],
                       warnings: list[str]) -> None:
    live = live_commands(usage_file, errors)
    if not live:
        return
    documented: dict[str, str] = {}
    for doc_name in ("CLI.md", "NETWORK.md"):
        doc = repo / "docs" / doc_name
        if not doc.exists():
            continue
        for name, heading in documented_commands(doc).items():
            documented.setdefault(name, f"{doc_name}: {heading}")
    for name in sorted(documented):
        if name not in live:
            errors.append(
                f"documented command `{name}` does not exist in the live "
                f"CLI ({documented[name]})")
    for name in sorted(live - documented.keys()):
        warnings.append(f"live command `{name}` has no docs section")
    print(f"cli check: {len(live)} live commands, "
          f"{len(documented)} documented")


def live_metrics(snapshots: list[Path], errors: list[str]) -> set[str]:
    live: set[str] = set()
    for path in snapshots:
        if not path.exists():
            errors.append(f"snapshot not found: {path}")
            continue
        try:
            doc = json.loads(path.read_text(encoding="utf-8"))
        except json.JSONDecodeError as exc:
            errors.append(f"unparseable snapshot {path}: {exc}")
            continue
        for kind in ("counters", "gauges", "histograms"):
            live.update(doc.get(kind, {}).keys())
    return live


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--repo", type=Path, default=Path(__file__).resolve().parent.parent,
        help="repository root (default: parent of tools/)")
    parser.add_argument(
        "--snapshot", type=Path, action="append", default=[],
        help="telemetry snapshot JSON; repeatable. When none are given "
             "the metric check is skipped (link check still runs).")
    parser.add_argument(
        "--cli-usage", type=Path, default=None,
        help="file holding the live `univsa_cli` usage line; enables "
             "the documented-command cross-check.")
    args = parser.parse_args()
    repo = args.repo.resolve()

    errors: list[str] = []
    warnings: list[str] = []

    docs = [repo / "README.md", repo / "DESIGN.md"]
    docs += sorted((repo / "docs").glob("*.md"))
    docs = [d for d in docs if d.exists()]
    for doc in docs:
        check_links(doc, repo, errors)
    print(f"link check: {len(docs)} files scanned")

    if args.cli_usage is not None:
        if args.cli_usage.exists():
            check_cli_commands(repo, args.cli_usage, errors, warnings)
        else:
            errors.append(f"--cli-usage file not found: {args.cli_usage}")

    metrics_md = repo / "docs" / "METRICS.md"
    if args.snapshot and metrics_md.exists():
        metric_docs = [metrics_md]
        network_md = repo / "docs" / "NETWORK.md"
        if network_md.exists():
            metric_docs.append(network_md)
        documented, patterns = documented_metrics(metric_docs)
        live = live_metrics(args.snapshot, errors)
        missing = sorted(documented - live)
        undocumented = sorted(
            n for n in live - documented
            if not n.startswith("bench.")
            and not any(p.fullmatch(n) for p in patterns))
        for name in missing:
            errors.append(
                f"METRICS.md documents `{name}` but no snapshot emits it")
        for name in undocumented:
            warnings.append(f"live metric `{name}` is not in METRICS.md")
        print(f"metric check: {len(documented)} documented, "
              f"{len(live)} live across {len(args.snapshot)} snapshots")
    elif metrics_md.exists():
        print("metric check: skipped (no --snapshot given)")

    for warning in warnings:
        print(f"WARNING: {warning}")
    for error in errors:
        print(f"ERROR: {error}", file=sys.stderr)
    if errors:
        print(f"check_docs: {len(errors)} error(s)", file=sys.stderr)
        return 1
    print("check_docs: OK")
    return 0


if __name__ == "__main__":
    sys.exit(main())
