// univsa_cli — end-to-end command-line driver for the UniVSA toolkit.
//
//   univsa_cli datagen  --benchmark HAR --train train.csv --test test.csv
//   univsa_cli train    --benchmark HAR --train train.csv --out har.uvsa
//   univsa_cli eval     --model har.uvsa --data test.csv [--backend NAME]
//   univsa_cli parity   --model har.uvsa --data test.csv
//   univsa_cli info     --model har.uvsa
//   univsa_cli adapt    --model har.uvsa --data new.csv --out adapted.uvsa
//   univsa_cli export-c   --model har.uvsa --dir out/
//   univsa_cli export-rtl --model har.uvsa --dir out/
//   univsa_cli stats    --model har.uvsa --data test.csv [--format json]
//   univsa_cli search   --benchmark HAR [--islands K] [--surrogate F]
//                       [--pareto 1] [--out-json best.json]
//   univsa_cli zoo                 (multi-tenant registry + drift drill)
//   univsa_cli backends            (CPU features, SIMD dispatch, registry)
//   univsa_cli faultcheck          (canned fault plan -> degradation report;
//                                   --multi-tenant 1 for per-tenant QoS)
//   univsa_cli top                 (live text dashboard over the telemetry
//                                   snapshot: req/s, latency percentiles,
//                                   SLO burn rates, flight events)
//   univsa_cli selftest            (exercises the whole chain in $TMPDIR)
//
// The complete flag reference lives in docs/CLI.md; the serving knobs
// (deadlines, priorities, shedding, fault plans) are explained in
// docs/SERVING.md.
//
// Every command also accepts `--threads N` to size the global thread
// pool (0 = hardware default). Commands that run inference accept
// `--backend NAME` to pick the runtime backend (default "packed"; see
// univsa/runtime/registry.h); `parity` cross-checks every registered
// backend against the reference pipeline and exits non-zero on any
// bit-level divergence. `stats` accepts `--deadline-us` / `--priority`
// / `--max-retries` to exercise the robustness layer; `faultcheck`
// runs the canned overload fault plan against a server and exits 0
// only if availability, shedding, and bit-parity all held up.
//
// Network serving (docs/NETWORK.md): `serve` exposes one runtime over
// the length-prefixed binary wire protocol, `route` inspects a sharded
// deployment (consistent-hash placement plus per-endpoint health
// probes, optionally driving traffic through a ShardRouter), and
// `netcheck` is the network chaos drill — an in-process shards x
// replicas cluster behind a router, replicas killed mid-run on a
// FaultPlan-derived schedule, exit 0 only when every completed answer
// stayed bit-identical to the reference backend and failover engaged.
//
// Telemetry: `eval`, `train`, `parity`, and `stats` accept
// `--metrics-json PATH` to dump the full telemetry snapshot (counters,
// gauges, latency histograms, recent spans, build provenance) as JSON
// after the command finishes. `stats` drives the micro-batching server
// over the dataset and prints the scrape — Prometheus text exposition
// by default, `--format json` for the JSON document. `stats` and
// `faultcheck` also accept `--trace-json PATH` to export the trace
// ring as Chrome-trace-event JSON (loadable in Perfetto / chrome://
// tracing, request trees linked via trace_id/span_id args); faultcheck
// additionally leaves a flight-recorder dump (`--flight-json PATH`,
// default flight_recorder.json) and prints the SLO burn-rate verdicts.
// The tracing/flight-recorder/SLO operator guide is docs/TRACING.md.
//
// CSVs are `label,f0,f1,...` rows of already-discretized levels, as
// written by `datagen` (see data/csv_io.h for raw-float import).
#include <atomic>
#include <cctype>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <deque>
#include <fstream>
#include <map>
#include <string>
#include <thread>

#include "univsa/common/simd.h"
#include "univsa/common/thread_pool.h"
#include "univsa/data/benchmarks.h"
#include "univsa/data/csv_io.h"
#include "univsa/hw/accelerator.h"
#include "univsa/hw/c_emitter.h"
#include "univsa/hw/io_model.h"
#include "univsa/hw/verilog_gen.h"
#include "univsa/net/net_client.h"
#include "univsa/net/net_server.h"
#include "univsa/net/router.h"
#include "univsa/report/metrics.h"
#include "univsa/runtime/adaptation.h"
#include "univsa/runtime/model_registry.h"
#include "univsa/runtime/parity.h"
#include "univsa/runtime/registry.h"
#include "univsa/runtime/server.h"
#include "univsa/search/evolutionary.h"
#include "univsa/telemetry/telemetry.h"
#include "univsa/train/online_retrainer.h"
#include "univsa/train/univsa_trainer.h"
#include "univsa/vsa/memory_model.h"
#include "univsa/vsa/serialization.h"

namespace {

using namespace univsa;

struct Flags {
  std::map<std::string, std::string> values;

  const std::string& require(const std::string& key) const {
    const auto it = values.find(key);
    if (it == values.end()) {
      std::fprintf(stderr, "missing required flag --%s\n", key.c_str());
      std::exit(2);
    }
    return it->second;
  }
  std::string get(const std::string& key,
                  const std::string& fallback) const {
    const auto it = values.find(key);
    return it == values.end() ? fallback : it->second;
  }
  std::size_t get_size(const std::string& key,
                       std::size_t fallback) const {
    const auto it = values.find(key);
    return it == values.end()
               ? fallback
               : static_cast<std::size_t>(std::stoul(it->second));
  }
  double get_double(const std::string& key, double fallback) const {
    const auto it = values.find(key);
    return it == values.end() ? fallback : std::stod(it->second);
  }
};

Flags parse_flags(int argc, char** argv, int first) {
  Flags flags;
  for (int i = first; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("--", 0) != 0 || i + 1 >= argc) {
      std::fprintf(stderr, "bad argument: %s\n", arg.c_str());
      std::exit(2);
    }
    flags.values[arg.substr(2)] = argv[++i];
  }
  return flags;
}

/// Honors `--metrics-json PATH`: dumps the full telemetry snapshot after
/// the command's work is done. No-op when the flag is absent.
void maybe_write_metrics(const Flags& flags) {
  const std::string path = flags.get("metrics-json", "");
  if (path.empty()) return;
  if (telemetry::write_json_file(path)) {
    std::printf("telemetry snapshot -> %s\n", path.c_str());
  } else {
    std::fprintf(stderr, "failed to write telemetry snapshot to %s\n",
                 path.c_str());
  }
}

/// Per-stage span summary from the registry: every histogram under the
/// pipeline-stage prefixes, one line each with count / mean / p50 /
/// p95 / p99.
void print_stage_summary() {
  const telemetry::Snapshot snap = telemetry::snapshot(0);
  const char* prefixes[] = {"stage.", "reference.", "engine.", "hwsim."};
  bool any = false;
  for (const auto& h : snap.histograms) {
    bool match = false;
    for (const char* p : prefixes) {
      if (h.name.rfind(p, 0) == 0) { match = true; break; }
    }
    if (!match || h.count == 0) continue;
    if (!any) {
      std::printf("per-stage spans (sampled):\n");
      any = true;
    }
    // Nanosecond histograms print in microseconds; everything else
    // (e.g. hwsim *_cycles) keeps its native unit.
    const bool is_ns = h.name.size() >= 3 &&
                       h.name.compare(h.name.size() - 3, 3, "_ns") == 0;
    const double scale = is_ns ? 1e-3 : 1.0;
    const char* unit = is_ns ? "us" : "  ";
    std::printf("  %-24s %8llu samples  mean %9.2f %s  p50 %8.2f %s  "
                "p95 %8.2f %s  p99 %8.2f %s\n",
                h.name.c_str(),
                static_cast<unsigned long long>(h.count), h.mean() * scale,
                unit, static_cast<double>(h.percentile(0.50)) * scale,
                unit, static_cast<double>(h.percentile(0.95)) * scale,
                unit, static_cast<double>(h.percentile(0.99)) * scale,
                unit);
  }
}

/// Honors `--trace-json PATH`: exports the trace ring as Chrome-trace-
/// event JSON for Perfetto. No-op when the flag is absent and no
/// default is supplied.
void maybe_write_trace(const Flags& flags,
                       const std::string& fallback = "") {
  const std::string path = flags.get("trace-json", fallback);
  if (path.empty()) return;
  if (telemetry::write_trace_json_file(path)) {
    std::fprintf(stderr, "perfetto trace -> %s\n", path.c_str());
  } else {
    std::fprintf(stderr, "failed to write trace JSON to %s\n",
                 path.c_str());
  }
}

/// Shared observability tail for faultcheck: evaluates the default
/// server SLOs (two ticks, so the multi-window burn rates see a
/// delta), prints the verdicts, exports the Perfetto trace and the
/// flight-recorder dump, then honors --metrics-json. Runs before the
/// pass/fail verdict so a failing check still leaves its post-mortem
/// artifacts behind.
void write_faultcheck_observability(const Flags& flags) {
  telemetry::SloEngine slo(telemetry::default_server_slos());
  (void)slo.evaluate();
  for (const telemetry::SloStatus& s : slo.evaluate()) {
    std::printf("slo %-24s compliance %.4f  budget %5.2f  "
                "burn fast %6.2f / slow %6.2f%s\n",
                s.name.c_str(), s.compliance, s.budget_remaining,
                s.fast_burn, s.slow_burn,
                s.breached ? "  ** BREACHED **" : "");
  }
  maybe_write_trace(flags, "faultcheck_trace.json");
  const std::string flight_path =
      flags.get("flight-json", "flight_recorder.json");
  if (telemetry::flightrec_dump(flight_path)) {
    std::printf("flight recorder (%llu events) -> %s\n",
                static_cast<unsigned long long>(
                    telemetry::flightrec_recorded()),
                flight_path.c_str());
  } else {
    std::fprintf(stderr, "failed to write flight recorder to %s\n",
                 flight_path.c_str());
  }
  maybe_write_metrics(flags);
}

/// Post-mortem hooks shared by the serving drills: fatal signals dump
/// the flight ring, and the drain at shutdown leaves a dump behind
/// even when the final explicit dump is never reached.
void arm_flight_recorder(const Flags& flags) {
  // The handler keeps the pointer for the life of the process.
  static const std::string path =
      flags.get("flight-json", "flight_recorder.json");
  telemetry::flightrec_install_signal_handler(path.c_str());
  telemetry::flightrec_arm_draining_dump(path);
}

int cmd_datagen(const Flags& flags) {
  const auto& bench = data::find_benchmark(flags.require("benchmark"));
  data::SyntheticSpec spec = bench.spec;
  spec.train_count = flags.get_size("train-count", 480);
  spec.test_count = flags.get_size("test-count", 240);
  spec.seed = flags.get_size("seed", spec.seed);
  const data::SyntheticResult ds = data::generate(spec);
  data::save_csv(ds.train, flags.require("train"));
  data::save_csv(ds.test, flags.require("test"));
  std::printf("wrote %zu train / %zu test samples for %s\n",
              ds.train.size(), ds.test.size(), spec.name.c_str());
  return 0;
}

data::Dataset load_for(const vsa::ModelConfig& c,
                       const std::string& path) {
  return data::load_csv(path, c.W, c.L, c.C, c.M);
}

int cmd_train(const Flags& flags) {
  const auto& bench = data::find_benchmark(flags.require("benchmark"));
  const data::Dataset train_set =
      load_for(bench.config, flags.require("train"));
  train::TrainOptions options;
  options.epochs = flags.get_size("epochs", 20);
  options.seed = flags.get_size("seed", 7);
  options.verbose = flags.get("quiet", "0") == "0";
  std::printf("training %s on %zu samples...\n",
              bench.config.to_string().c_str(), train_set.size());
  const auto result =
      train::train_univsa(bench.config, train_set, options);
  vsa::ModelIo::save_file(result.model, flags.require("out"));
  std::printf("train accuracy %.4f, model %.2f KB -> %s\n",
              result.model.accuracy(train_set),
              vsa::memory_kb(bench.config),
              flags.require("out").c_str());
  maybe_write_metrics(flags);
  return 0;
}

int cmd_eval(const Flags& flags) {
  const vsa::Model model =
      vsa::ModelIo::load_file(flags.require("model"));
  const data::Dataset test_set =
      load_for(model.config(), flags.require("data"));
  const std::string backend_name =
      flags.get("backend", runtime::default_backend());
  const auto backend = runtime::make_backend(backend_name, model);
  std::vector<vsa::Prediction> predictions;
  backend->predict_batch(test_set, predictions);
  report::ConfusionMatrix cm(model.config().C);
  for (std::size_t i = 0; i < test_set.size(); ++i) {
    cm.add(test_set.label(i), predictions[i].label);
  }
  std::printf("accuracy %.4f  macro-F1 %.4f  (%zu samples, backend %s, "
              "%zu pool threads)\n",
              cm.accuracy(), cm.macro_f1(), cm.total(),
              backend->name().c_str(), global_pool().thread_count());
  std::fputs(cm.to_string().c_str(), stdout);
  maybe_write_metrics(flags);
  return 0;
}

int cmd_parity(const Flags& flags) {
  const vsa::Model model =
      vsa::ModelIo::load_file(flags.require("model"));
  const data::Dataset data_set =
      load_for(model.config(), flags.require("data"));
  const runtime::ParityReport report =
      runtime::verify_parity(model, data_set);
  std::fputs(report.summary().c_str(), stdout);
  std::fputc('\n', stdout);
  print_stage_summary();
  maybe_write_metrics(flags);
  return report.ok() ? 0 : 1;
}

runtime::Priority parse_priority(const std::string& name) {
  if (name == "low") return runtime::Priority::kLow;
  if (name == "normal") return runtime::Priority::kNormal;
  if (name == "high") return runtime::Priority::kHigh;
  std::fprintf(stderr, "bad --priority %s (low|normal|high)\n",
               name.c_str());
  std::exit(2);
}

/// Drives the micro-batching server over a dataset and prints the
/// telemetry scrape (server latency histograms included). The
/// robustness knobs (--deadline-us, --priority, --max-retries) apply to
/// every submitted request, so deadline misses and sheds show up both
/// in the summary line and in the scraped counters.
int cmd_stats(const Flags& flags) {
  const vsa::Model model =
      vsa::ModelIo::load_file(flags.require("model"));
  const data::Dataset data_set =
      load_for(model.config(), flags.require("data"));

  runtime::ServerOptions options;
  options.backend = flags.get("backend", runtime::default_backend());
  options.workers = flags.get_size("workers", 2);
  options.max_batch = flags.get_size("max-batch", 32);
  options.max_delay_us = flags.get_size("max-delay-us", options.max_delay_us);
  options.queue_capacity =
      flags.get_size("queue-capacity", options.queue_capacity);
  options.shed_watermark =
      flags.get_size("shed-watermark", options.shed_watermark);

  runtime::SubmitOptions sopts;
  sopts.priority = parse_priority(flags.get("priority", "normal"));
  sopts.deadline_us = flags.get_size("deadline-us", 0);
  sopts.max_retries = flags.get_size("max-retries", 0);
  {
    runtime::Server server(model, options);
    std::vector<std::pair<std::size_t, std::future<vsa::Prediction>>>
        futures;
    futures.reserve(data_set.size());
    std::size_t refused = 0;
    for (std::size_t i = 0; i < data_set.size(); ++i) {
      try {
        futures.emplace_back(i, server.submit(data_set.values(i), sopts));
      } catch (const runtime::RequestRefused&) {
        ++refused;  // shed at admission / retries exhausted
      }
    }
    std::size_t correct = 0, served = 0, deadline_missed = 0;
    for (auto& [index, future] : futures) {
      try {
        if (future.get().label == data_set.label(index)) ++correct;
        ++served;
      } catch (const runtime::DeadlineExceeded&) {
        ++deadline_missed;
      } catch (const runtime::RequestRefused&) {
        ++refused;
      }
    }
    const runtime::ServerStats stats = server.stats();
    std::fprintf(stderr,
                 "served %llu requests in %llu batches (mean batch %.1f, "
                 "accuracy %.4f, backend %s)\n",
                 static_cast<unsigned long long>(stats.completed),
                 static_cast<unsigned long long>(stats.batches),
                 stats.mean_batch(),
                 served == 0 ? 0.0
                             : static_cast<double>(correct) /
                                   static_cast<double>(served),
                 options.backend.c_str());
    std::fprintf(stderr, "simd: active isa %s (cpu: %s)\n",
                 simd::to_string(simd::active_isa()),
                 simd::cpu_features_string().c_str());
    std::fprintf(stderr,
                 "robustness: health %s, %llu shed, %llu deadline-"
                 "rejected (%zu missed at the client), %llu retries, "
                 "%llu health transitions\n",
                 runtime::to_string(stats.health),
                 static_cast<unsigned long long>(stats.shed),
                 static_cast<unsigned long long>(stats.deadline_rejected),
                 deadline_missed,
                 static_cast<unsigned long long>(stats.retries),
                 static_cast<unsigned long long>(
                     stats.health_transitions));
  }  // server drains + joins before the scrape

  const telemetry::Snapshot snap = telemetry::snapshot();
  if (flags.get("format", "prometheus") == "json") {
    std::fputs(telemetry::to_json(snap).c_str(), stdout);
  } else {
    std::fputs(telemetry::to_prometheus(snap).c_str(), stdout);
  }
  maybe_write_trace(flags);
  maybe_write_metrics(flags);
  return 0;
}

/// Canned fault-plan degradation check (see docs/SERVING.md): wraps
/// every worker backend in the seeded FaultPlan schedule (spurious
/// errors, worker stalls, slowdowns), floods the server with
/// low-priority work past its shed watermark, and streams high-priority
/// requests with a deadline through the chaos. Exits 0 only when the
/// server stayed available: every high-priority request completed
/// (with bounded client resubmits after injected faults), low-priority
/// sheds were observed, and every completed result is bit-identical to
/// the reference backend.
/// Multi-tenant faultcheck (`faultcheck --multi-tenant 1`): the same
/// canned FaultPlan, but two registry tenants with opposing QoS
/// policies share the server — a "premium" tenant (kHigh, no quota)
/// streams deadline-bound requests while a "batch" tenant (priority
/// capped at kLow, small admission quota) floods from two threads.
/// Exits 0 only when degradation was per-tenant graceful: every
/// premium request completed bit-exactly with zero premium sheds and
/// bounded p99, while the batch tenant absorbed all the shedding.
int cmd_faultcheck_zoo(const Flags& flags) {
  arm_flight_recorder(flags);
  const std::size_t seed = flags.get_size("seed", 42);
  Rng model_rng(static_cast<std::uint64_t>(seed));
  auto registry = std::make_shared<runtime::ModelRegistry>();
  registry->publish(
      "premium",
      vsa::Model::random(data::find_benchmark("HAR").config, model_rng));
  registry->publish(
      "batch",
      vsa::Model::random(data::find_benchmark("CHB-B").config, model_rng));

  auto plan = std::make_shared<runtime::FaultPlan>(
      runtime::canned_overload_spec(seed));
  runtime::ServerOptions options;
  options.backend = flags.get("backend", runtime::default_backend());
  options.workers = flags.get_size("workers", 2);
  options.max_batch = 16;
  options.max_delay_us = 50;
  options.queue_capacity = 32;
  options.fault_plan = plan;
  options.default_tenant = "premium";
  options.tenant_policies["premium"] = {runtime::Priority::kHigh, 0};
  options.tenant_policies["batch"] = {runtime::Priority::kLow, 12};

  // Per-tenant sample pools + the reference predictions every completed
  // result must match bit-for-bit (different geometry per tenant — a
  // mixed batch would not even type-check against one model).
  const std::size_t n_samples = 48;
  Rng rng(static_cast<std::uint64_t>(seed) ^ 0x5eed);
  std::map<std::string, std::vector<std::vector<std::uint16_t>>> samples;
  std::map<std::string, std::vector<vsa::Prediction>> expected;
  for (const auto& tenant : registry->tenant_names()) {
    const vsa::Model& model = registry->latest(tenant)->model();
    auto& pool = samples[tenant];
    pool.resize(n_samples);
    for (auto& s : pool) {
      s.resize(model.config().features());
      for (auto& v : s) {
        v = static_cast<std::uint16_t>(
            rng.uniform_index(model.config().M));
      }
    }
    runtime::make_backend("reference", model)
        ->predict_batch(pool, expected[tenant]);
  }

  const std::size_t n_high = flags.get_size("requests", 120);
  const std::uint64_t deadline_us = flags.get_size("deadline-us", 500000);
  std::size_t high_ok = 0, high_deadline = 0, high_gave_up = 0;
  std::size_t resubmits = 0, mismatches = 0;
  std::size_t batch_completed = 0, batch_failed = 0;
  std::atomic<std::size_t> batch_submitted{0}, batch_refused{0};
  runtime::ServerStats stats;
  {
    runtime::Server server(registry, options);

    std::atomic<bool> stop{false};
    std::vector<std::vector<std::pair<std::size_t,
                                      std::future<vsa::Prediction>>>>
        batch_futures(2);
    std::vector<std::thread> flood;
    for (std::size_t t = 0; t < 2; ++t) {
      flood.emplace_back([&, t] {
        runtime::SubmitOptions low;
        low.tenant = "batch";
        // Asks for kNormal; the tenant policy clamps it to kLow, so the
        // flood stays sheddable no matter what the client requests.
        low.priority = runtime::Priority::kNormal;
        std::size_t i = t;
        while (!stop.load(std::memory_order_relaxed)) {
          const std::size_t sample = i % n_samples;
          std::future<vsa::Prediction> future;
          const runtime::SubmitStatus status =
              server.try_submit(samples["batch"][sample], low, &future);
          batch_submitted.fetch_add(1, std::memory_order_relaxed);
          if (status == runtime::SubmitStatus::kOk) {
            batch_futures[t].emplace_back(sample, std::move(future));
          } else {
            batch_refused.fetch_add(1, std::memory_order_relaxed);
            std::this_thread::sleep_for(std::chrono::microseconds(500));
          }
          i += 2;
        }
      });
    }

    runtime::SubmitOptions high;
    high.tenant = "premium";
    high.priority = runtime::Priority::kHigh;
    high.deadline_us = deadline_us;
    for (std::size_t i = 0; i < n_high; ++i) {
      const std::size_t sample = i % n_samples;
      bool done = false;
      for (std::size_t attempt = 0; attempt < 4 && !done; ++attempt) {
        try {
          const vsa::Prediction got =
              server.submit(samples["premium"][sample], high).get();
          if (got.label == expected["premium"][sample].label &&
              got.scores == expected["premium"][sample].scores) {
            ++high_ok;
          } else {
            ++mismatches;
          }
          done = true;
        } catch (const runtime::InjectedFault&) {
          ++resubmits;
        } catch (const runtime::DeadlineExceeded&) {
          ++high_deadline;
          done = true;
        }
      }
      if (!done) ++high_gave_up;
    }

    stop.store(true);
    for (auto& t : flood) t.join();
    for (auto& per_thread : batch_futures) {
      for (auto& [sample, future] : per_thread) {
        try {
          const vsa::Prediction got = future.get();
          if (got.label == expected["batch"][sample].label &&
              got.scores == expected["batch"][sample].scores) {
            ++batch_completed;
          } else {
            ++mismatches;
          }
        } catch (const std::exception&) {
          ++batch_failed;  // evicted (RequestShed) or injected fault
        }
      }
    }
    server.shutdown();
    stats = server.stats();
  }

  const auto& premium = stats.tenants["premium"];
  const auto& batch = stats.tenants["batch"];
  std::printf("== faultcheck --multi-tenant: canned overload plan "
              "(seed %zu) ==\n",
              seed);
  std::printf("tenants: premium (kHigh, HAR geometry) vs batch "
              "(capped kLow, quota 12, CHB-B geometry)\n");
  std::printf("injected: %llu errors, %llu stalls, %llu slowdowns\n",
              static_cast<unsigned long long>(plan->injected_errors()),
              static_cast<unsigned long long>(plan->injected_stalls()),
              static_cast<unsigned long long>(plan->injected_slowdowns()));
  std::printf("premium: %zu/%zu ok within %llu us deadline "
              "(%zu resubmits, %zu deadline misses, %zu gave up), "
              "%llu shed, p99 %.2f us\n",
              high_ok, n_high,
              static_cast<unsigned long long>(deadline_us), resubmits,
              high_deadline, high_gave_up,
              static_cast<unsigned long long>(premium.shed),
              static_cast<double>(premium.latency_ns.percentile(0.99)) *
                  1e-3);
  std::printf("batch: %zu attempts -> %zu completed, %zu refused at "
              "admission, %zu failed in flight, %llu shed "
              "(runtime.server.tenant_shed{tenant=batch})\n",
              batch_submitted.load(), batch_completed,
              batch_refused.load(), batch_failed,
              static_cast<unsigned long long>(batch.shed));
  std::printf("parity: %zu mismatches across %zu completed results\n",
              mismatches, high_ok + batch_completed);
  write_faultcheck_observability(flags);

  bool ok = true;
  const auto fail = [&ok](const char* what) {
    std::fprintf(stderr, "FAULTCHECK FAILED: %s\n", what);
    ok = false;
  };
  if (high_ok != n_high) {
    fail("premium availability hole (misses/gave up above)");
  }
  if (mismatches != 0) fail("completed results diverged from reference");
  if (premium.shed != 0) fail("premium tenant was shed");
  if (batch.shed + batch_refused.load() == 0) {
    fail("batch tenant saw no shedding under overload");
  }
  if (premium.latency_ns.count > 0 &&
      premium.latency_ns.percentile(0.99) > deadline_us * 1000) {
    fail("premium p99 latency above the deadline bound");
  }
  if (runtime::kFaultsCompiledIn && plan->injected_total() == 0) {
    fail("fault plan injected nothing (schedule bug?)");
  }
  if (ok) {
    std::printf(
        "FAULTCHECK OK — degraded gracefully, per tenant\n");
  }
  return ok ? 0 : 1;
}

int cmd_faultcheck(const Flags& flags) {
  if (flags.get_size("multi-tenant", 0) != 0) {
    return cmd_faultcheck_zoo(flags);
  }
  arm_flight_recorder(flags);
  const std::size_t seed = flags.get_size("seed", 42);
  // Self-contained by default: a seeded random model on the HAR
  // configuration. --model PATH checks a trained artifact instead.
  vsa::Model model = [&] {
    const std::string path = flags.get("model", "");
    if (!path.empty()) return vsa::ModelIo::load_file(path);
    Rng rng(static_cast<std::uint64_t>(seed));
    return vsa::Model::random(data::find_benchmark("HAR").config, rng);
  }();
  const vsa::ModelConfig& config = model.config();

  auto plan = std::make_shared<runtime::FaultPlan>(
      runtime::canned_overload_spec(seed));
  runtime::ServerOptions options;
  options.backend = flags.get("backend", runtime::default_backend());
  options.workers = flags.get_size("workers", 2);
  options.max_batch = 16;
  options.max_delay_us = 50;
  options.queue_capacity = 32;
  options.fault_plan = plan;

  // Sample pool + the reference predictions every completed result must
  // match bit-for-bit.
  Rng rng(static_cast<std::uint64_t>(seed) ^ 0x5eed);
  const std::size_t n_samples = 64;
  std::vector<std::vector<std::uint16_t>> samples(n_samples);
  for (auto& s : samples) {
    s.resize(config.features());
    for (auto& v : s) {
      v = static_cast<std::uint16_t>(rng.uniform_index(config.M));
    }
  }
  std::vector<vsa::Prediction> expected;
  runtime::make_backend("reference", model)
      ->predict_batch(samples, expected);

  const std::size_t n_high = flags.get_size("requests", 120);
  const std::uint64_t deadline_us = flags.get_size("deadline-us", 500000);
  std::size_t high_ok = 0, high_deadline = 0, high_gave_up = 0;
  std::size_t resubmits = 0, mismatches = 0;
  std::size_t low_submitted = 0, low_completed = 0, low_failed = 0;
  std::size_t low_shed = 0, low_overloaded = 0;
  runtime::ServerStats stats;
  {
    runtime::Server server(model, options);

    // Low-priority flood: two threads slam try_submit() until the
    // high-priority stream finishes, backing off briefly whenever
    // admission control pushes back.
    std::atomic<bool> stop{false};
    std::atomic<std::size_t> flood_submitted{0}, flood_shed{0},
        flood_overloaded{0};
    std::vector<std::vector<std::pair<std::size_t,
                                      std::future<vsa::Prediction>>>>
        low_futures(2);
    std::vector<std::thread> flood;
    for (std::size_t t = 0; t < 2; ++t) {
      flood.emplace_back([&, t] {
        runtime::SubmitOptions low;
        low.priority = runtime::Priority::kLow;
        std::size_t i = t;
        while (!stop.load(std::memory_order_relaxed)) {
          const std::size_t sample = i % n_samples;
          std::future<vsa::Prediction> future;
          const runtime::SubmitStatus status =
              server.try_submit(samples[sample], low, &future);
          flood_submitted.fetch_add(1, std::memory_order_relaxed);
          if (status == runtime::SubmitStatus::kOk) {
            low_futures[t].emplace_back(sample, std::move(future));
          } else {
            if (status == runtime::SubmitStatus::kShed) {
              flood_shed.fetch_add(1, std::memory_order_relaxed);
            } else {
              flood_overloaded.fetch_add(1, std::memory_order_relaxed);
            }
            std::this_thread::sleep_for(std::chrono::microseconds(500));
          }
          i += 2;
        }
      });
    }

    // High-priority stream with a deadline; injected faults are
    // resubmitted a bounded number of times, exactly how a production
    // client rides out a degraded replica.
    runtime::SubmitOptions high;
    high.priority = runtime::Priority::kHigh;
    high.deadline_us = deadline_us;
    for (std::size_t i = 0; i < n_high; ++i) {
      const std::size_t sample = i % n_samples;
      bool done = false;
      for (std::size_t attempt = 0; attempt < 4 && !done; ++attempt) {
        try {
          const vsa::Prediction got =
              server.submit(samples[sample], high).get();
          if (got.label == expected[sample].label &&
              got.scores == expected[sample].scores) {
            ++high_ok;
          } else {
            ++mismatches;
          }
          done = true;
        } catch (const runtime::InjectedFault&) {
          ++resubmits;
        } catch (const runtime::DeadlineExceeded&) {
          ++high_deadline;
          done = true;
        }
      }
      if (!done) ++high_gave_up;
    }

    stop.store(true);
    for (auto& t : flood) t.join();
    low_submitted = flood_submitted.load();
    low_shed = flood_shed.load();
    low_overloaded = flood_overloaded.load();
    for (auto& per_thread : low_futures) {
      for (auto& [sample, future] : per_thread) {
        try {
          const vsa::Prediction got = future.get();
          if (got.label == expected[sample].label &&
              got.scores == expected[sample].scores) {
            ++low_completed;
          } else {
            ++mismatches;
          }
        } catch (const std::exception&) {
          ++low_failed;  // evicted (RequestShed) or injected fault
        }
      }
    }
    server.shutdown();
    stats = server.stats();
  }

  std::printf("== faultcheck: canned overload fault plan (seed %zu) ==\n",
              seed);
  std::printf("backend %s+fault, %zu workers, max_batch %zu, queue %zu\n",
              options.backend.c_str(), options.workers, options.max_batch,
              options.queue_capacity);
  std::printf("injected: %llu errors, %llu stalls, %llu slowdowns\n",
              static_cast<unsigned long long>(plan->injected_errors()),
              static_cast<unsigned long long>(plan->injected_stalls()),
              static_cast<unsigned long long>(plan->injected_slowdowns()));
  std::printf("high-priority: %zu/%zu ok within %llu us deadline "
              "(%zu resubmits after injected faults, %zu deadline "
              "misses, %zu gave up)\n",
              high_ok, n_high,
              static_cast<unsigned long long>(deadline_us), resubmits,
              high_deadline, high_gave_up);
  std::printf("low-priority: %zu attempts -> %zu completed, %zu shed at "
              "admission, %zu overloaded, %zu failed in flight\n",
              low_submitted, low_completed, low_shed, low_overloaded,
              low_failed);
  std::printf("server: %llu completed, %llu shed "
              "(runtime.server.shed_total), %llu deadline-rejected, "
              "%llu health transitions, final health %s\n",
              static_cast<unsigned long long>(stats.completed),
              static_cast<unsigned long long>(stats.shed),
              static_cast<unsigned long long>(stats.deadline_rejected),
              static_cast<unsigned long long>(stats.health_transitions),
              runtime::to_string(stats.health));
  std::printf("parity: %zu mismatches across %zu completed results\n",
              mismatches, high_ok + low_completed);
  write_faultcheck_observability(flags);

  bool ok = true;
  const auto fail = [&ok](const char* what) {
    std::fprintf(stderr, "FAULTCHECK FAILED: %s\n", what);
    ok = false;
  };
  if (high_ok != n_high) {
    fail("high-priority availability hole (misses/gave up above)");
  }
  if (mismatches != 0) fail("completed results diverged from reference");
  if (stats.shed + low_shed == 0) {
    fail("no low-priority sheds observed under overload");
  }
  if (runtime::kFaultsCompiledIn && plan->injected_total() == 0) {
    fail("fault plan injected nothing (schedule bug?)");
  }
  if (ok) std::printf("FAULTCHECK OK — degraded gracefully\n");
  return ok ? 0 : 1;
}

/// Live text dashboard (`univsa_cli top`): seeds a model, runs
/// background closed-loop traffic through a micro-batching server, and
/// polls telemetry::snapshot() every --interval-ms, printing one block
/// per tick — req/s (completed-counter delta), queue depth, health,
/// latency percentiles, SLO burn rates, and the most recent
/// flight-recorder events. --iterations bounds the run (default 10
/// ticks) so it terminates cleanly in scripts and CI. --model PATH
/// serves a trained artifact instead of the seeded random one.
int cmd_top(const Flags& flags) {
  const std::size_t seed = flags.get_size("seed", 42);
  vsa::Model model = [&] {
    const std::string path = flags.get("model", "");
    if (!path.empty()) return vsa::ModelIo::load_file(path);
    Rng rng(static_cast<std::uint64_t>(seed));
    return vsa::Model::random(data::find_benchmark("HAR").config, rng);
  }();
  const vsa::ModelConfig& config = model.config();

  runtime::ServerOptions options;
  options.backend = flags.get("backend", runtime::default_backend());
  options.workers = flags.get_size("workers", 2);
  options.max_batch = flags.get_size("max-batch", 16);
  options.max_delay_us = flags.get_size("max-delay-us", 100);
  options.trace_sample_every =
      flags.get_size("trace-sample-every", options.trace_sample_every);

  const std::size_t iterations = flags.get_size("iterations", 10);
  const std::size_t interval_ms = flags.get_size("interval-ms", 500);
  const std::size_t load_threads = flags.get_size("load-threads", 2);

  Rng rng(static_cast<std::uint64_t>(seed) ^ 0x5eed);
  const std::size_t n_samples = 64;
  std::vector<std::vector<std::uint16_t>> samples(n_samples);
  for (auto& s : samples) {
    s.resize(config.features());
    for (auto& v : s) {
      v = static_cast<std::uint16_t>(rng.uniform_index(config.M));
    }
  }

  telemetry::SloEngine slo(telemetry::default_server_slos());
  std::printf("univsa top — %zu load threads, %zu x %zu ms ticks, "
              "backend %s\n",
              load_threads, iterations, interval_ms,
              options.backend.c_str());
  {
    runtime::Server server(model, options);
    std::atomic<bool> stop{false};
    std::vector<std::thread> load;
    for (std::size_t t = 0; t < load_threads; ++t) {
      load.emplace_back([&, t] {
        // Closed loop with a small in-flight window: enough pressure
        // to form batches without unbounded queue growth.
        std::deque<std::future<vsa::Prediction>> inflight;
        std::size_t i = t;
        while (!stop.load(std::memory_order_relaxed)) {
          try {
            inflight.push_back(server.submit(samples[i % n_samples]));
          } catch (const std::exception&) {
          }
          while (inflight.size() >= 8) {
            try {
              inflight.front().get();
            } catch (const std::exception&) {
            }
            inflight.pop_front();
          }
          i += load_threads;
        }
        for (auto& f : inflight) {
          try {
            f.get();
          } catch (const std::exception&) {
          }
        }
      });
    }

    std::uint64_t last_completed = 0;
    std::uint64_t last_ns = telemetry::now_ns();
    for (std::size_t tick = 1; tick <= iterations; ++tick) {
      std::this_thread::sleep_for(
          std::chrono::milliseconds(interval_ms));
      const telemetry::Snapshot snap = telemetry::snapshot(0);
      const std::uint64_t now = telemetry::now_ns();

      std::uint64_t completed = 0;
      for (const auto& [name, value] : snap.counters) {
        if (name == "runtime.server.completed") completed = value;
      }
      double queue_depth = 0.0;
      for (const auto& [name, value] : snap.gauges) {
        if (name == "runtime.server.queue_depth") queue_depth = value;
      }
      const double elapsed_s = static_cast<double>(now - last_ns) * 1e-9;
      const double rate =
          elapsed_s <= 0.0
              ? 0.0
              : static_cast<double>(completed - last_completed) /
                    elapsed_s;
      last_completed = completed;
      last_ns = now;

      double p50 = 0.0, p95 = 0.0, p99 = 0.0;
      for (const auto& h : snap.histograms) {
        if (h.name == "runtime.server.latency_ns") {
          p50 = static_cast<double>(h.percentile(0.50)) * 1e-3;
          p95 = static_cast<double>(h.percentile(0.95)) * 1e-3;
          p99 = static_cast<double>(h.percentile(0.99)) * 1e-3;
        }
      }
      std::printf("[%2zu/%zu] %8.1f req/s  queue %3.0f  health %-8s  "
                  "lat us p50 %8.1f  p95 %8.1f  p99 %8.1f\n",
                  tick, iterations, rate, queue_depth,
                  runtime::to_string(server.stats().health), p50, p95,
                  p99);
      for (const telemetry::SloStatus& s : slo.evaluate()) {
        std::printf("        slo %-24s burn %5.2f/%5.2f  budget %5.2f"
                    "%s\n",
                    s.name.c_str(), s.fast_burn, s.slow_burn,
                    s.budget_remaining,
                    s.breached ? "  ** BREACHED **" : "");
      }
      const auto events = telemetry::flightrec_recent();
      const std::size_t show = events.size() > 3 ? 3 : events.size();
      for (std::size_t i = events.size() - show; i < events.size();
           ++i) {
        const telemetry::FlightEvent& e = events[i];
        std::printf("        flight %-18s %-16s a=%llu b=%llu\n",
                    telemetry::to_string(e.type), e.subject.data(),
                    static_cast<unsigned long long>(e.a),
                    static_cast<unsigned long long>(e.b));
      }
    }
    stop.store(true);
    for (auto& t : load) t.join();
    server.shutdown();
  }
  maybe_write_trace(flags);
  maybe_write_metrics(flags);
  return 0;
}

/// Scalable co-design search (DESIGN.md §12) over a benchmark's task
/// geometry: island-model GA with optional surrogate pre-screening and
/// native NSGA-II Pareto mode, candidates trained on synthetic data
/// generated in-process. `--out-json PATH` writes a timing-free record
/// of the result (best config, exact objective, per-generation
/// trajectory, front) — the search is deterministic for a fixed seed
/// regardless of `--threads`, so CI diffs the file across thread counts.
int cmd_search(const Flags& flags) {
  const auto& bench = data::find_benchmark(flags.require("benchmark"));
  data::SyntheticSpec spec = bench.spec;
  spec.train_count = flags.get_size("train-count", 240);
  spec.test_count = flags.get_size("test-count", 120);
  const data::SyntheticResult ds = data::generate(spec);

  vsa::ModelConfig task;
  task.W = spec.windows;
  task.L = spec.length;
  task.C = spec.classes;
  task.M = spec.levels;

  train::TrainOptions train_opts;
  train_opts.epochs = flags.get_size("epochs", 6);
  const search::SeededAccuracyFn oracle =
      train::make_accuracy_oracle(ds.train, ds.test, train_opts);

  search::SearchSpace space;
  search::SearchOptions options;
  options.population = flags.get_size("population", 10);
  options.generations = flags.get_size("generations", 5);
  options.elite = flags.get_size("elite", 2);
  options.seed = flags.get_size("seed", 7);
  options.islands = flags.get_size("islands", 1);
  options.migration_interval = flags.get_size("migration-interval", 4);
  options.emigrants = flags.get_size("emigrants", 2);
  options.pareto = flags.get("pareto", "0") != "0";
  const double keep = flags.get_double("surrogate", 0.0);
  if (keep > 0.0) {
    options.surrogate = train::make_surrogate_oracle(
        ds.train, ds.test, train_opts,
        flags.get_size("surrogate-divisor", 4));
    options.surrogate_keep = keep;
  }

  std::printf("searching %s geometry (W=%zu L=%zu C=%zu M=%zu): "
              "%zu island(s) x %zu genomes x %zu generations%s%s\n",
              spec.name.c_str(), task.W, task.L, task.C, task.M,
              options.islands, options.population, options.generations,
              keep > 0.0 ? ", surrogate screen" : "",
              options.pareto ? ", NSGA-II front" : "");
  const search::SearchResult r =
      search::evolutionary_search(task, space, oracle, options);

  for (std::size_t g = 0; g < r.history.size(); ++g) {
    std::printf("  gen %2zu  best %.4f  mean %.4f\n", g,
                r.history[g].best_objective, r.history[g].mean_objective);
  }
  std::printf("best: %s\n", r.best_config.to_string().c_str());
  std::printf("  accuracy %.4f, objective %.4f (Eq.7), memory %.2f KB, "
              "%zu resource units\n",
              r.best_accuracy, r.best_objective,
              vsa::memory_kb(r.best_config),
              vsa::resource_units(r.best_config));
  std::printf("  %zu oracle trainings, %zu surrogate screens "
              "(%zu promoted), %zu pool threads\n",
              r.evaluations, r.surrogate_evaluations, r.surrogate_promoted,
              global_pool().thread_count());
  if (options.pareto) {
    std::printf("Pareto front (%zu points):\n", r.front.size());
    for (const auto& p : r.front) {
      std::printf("  (D_H,D_L,D_K,O,Θ)=(%zu,%zu,%zu,%zu,%zu)  acc %.4f  "
                  "%.2f KB  %.0f units\n",
                  p.config.D_H, p.config.D_L, p.config.D_K, p.config.O,
                  p.config.Theta, p.accuracy, p.memory_kb,
                  p.resource_units);
    }
  }

  const std::string out_json = flags.get("out-json", "");
  if (!out_json.empty()) {
    char buf[64];
    const auto exact = [&buf](double v) {
      std::snprintf(buf, sizeof(buf), "%.17g", v);
      return std::string(buf);
    };
    std::ofstream json(out_json);
    json << "{\n  \"best_config\": \"" << r.best_config.to_string()
         << "\",\n  \"best_objective\": " << exact(r.best_objective)
         << ",\n  \"best_accuracy\": " << exact(r.best_accuracy)
         << ",\n  \"evaluations\": " << r.evaluations
         << ",\n  \"surrogate_evaluations\": " << r.surrogate_evaluations
         << ",\n  \"surrogate_promoted\": " << r.surrogate_promoted
         << ",\n  \"trajectory\": [";
    for (std::size_t g = 0; g < r.history.size(); ++g) {
      json << (g ? ", " : "") << exact(r.history[g].best_objective);
    }
    json << "],\n  \"front\": [";
    for (std::size_t i = 0; i < r.front.size(); ++i) {
      const auto& p = r.front[i];
      json << (i ? ", " : "") << "{\"config\": \""
           << p.config.to_string() << "\", \"accuracy\": "
           << exact(p.accuracy) << "}";
    }
    json << "]\n}\n";
    std::printf("search record -> %s\n", out_json.c_str());
  }
  maybe_write_metrics(flags);
  return 0;
}

int cmd_info(const Flags& flags) {
  const vsa::Model model =
      vsa::ModelIo::load_file(flags.require("model"));
  const vsa::ModelConfig& c = model.config();
  std::printf("configuration: %s\n", c.to_string().c_str());
  const auto b = vsa::memory_breakdown(c);
  std::printf("memory (Eq.5): %.2f KB  [V %zu | K %zu | F %zu | C %zu "
              "bits]\n",
              vsa::memory_kb(c), b.value_vectors, b.conv_kernels,
              b.feature_vectors, b.class_vectors);
  const hw::HardwareReport r = hw::report_for(c);
  std::printf("hardware model @%.0f MHz: latency %.3f ms | %.1fk inf/s "
              "| %.2f W | %.2fk LUTs | %zu BRAM | %zu DSP | %.1f "
              "uJ/inf\n",
              r.clock_mhz, r.latency_ms, r.throughput_kilo, r.power_w,
              r.kiloluts, r.brams, r.dsps, r.energy_per_inference_uj);
  const hw::IoReport io = hw::io_report_for(c);
  std::printf("host link (AXI): %.2f us I/O per inference (%.0f%% of "
              "the compute interval)\n",
              io.io_us, 100.0 * io.io_fraction);
  return 0;
}

int cmd_adapt(const Flags& flags) {
  const vsa::Model model =
      vsa::ModelIo::load_file(flags.require("model"));
  const data::Dataset samples =
      load_for(model.config(), flags.require("data"));
  train::OnlineRetrainOptions options;
  options.epochs = flags.get_size("epochs", 3);
  options.inertia = static_cast<long long>(flags.get_size("inertia", 5));
  const auto result =
      train::adapt_class_vectors(model, samples, options);
  vsa::ModelIo::save_file(result.model, flags.require("out"));
  std::printf("adapted on %zu samples: %zu class-vector lanes flipped "
              "-> %s\n",
              samples.size(), result.flipped_lanes,
              flags.require("out").c_str());
  return 0;
}

int cmd_export_c(const Flags& flags) {
  const vsa::Model model =
      vsa::ModelIo::load_file(flags.require("model"));
  hw::CEmitterOptions options;
  options.prefix = flags.get("prefix", "univsa");
  const hw::CEmitter emitter(model, options);
  emitter.write_files(flags.require("dir"), true);
  std::printf("wrote %s/%s_model.{h,c} and %s_main.c\n",
              flags.require("dir").c_str(), options.prefix.c_str(),
              options.prefix.c_str());
  return 0;
}

int cmd_export_rtl(const Flags& flags) {
  const vsa::Model model =
      vsa::ModelIo::load_file(flags.require("model"));
  hw::VerilogOptions options;
  options.prefix = flags.get("prefix", "univsa");
  const hw::VerilogGenerator gen(model, options);
  // Testbench sample: all-mid levels.
  std::vector<std::uint16_t> sample(
      model.config().features(),
      static_cast<std::uint16_t>(model.config().M / 2));
  gen.write_files(flags.require("dir"), sample);
  std::printf("wrote %s/%s_rtl.v and %s_tb.v\n",
              flags.require("dir").c_str(), options.prefix.c_str(),
              options.prefix.c_str());
  return 0;
}

/// Multi-tenant model-zoo drill (docs/ZOO.md): trains the three zoo
/// workloads (KWS / ANOMALY / GESTURE), publishes each under its own
/// registry tenant, serves interleaved mixed traffic through one Server
/// with per-tenant QoS policies, then pushes drifted traffic at the
/// gesture tenant and lets the AdaptationDriver refresh + hot-swap it.
/// Exits non-zero when served accuracy diverges from a direct backend
/// call or the drift loop never publishes a refresh.
int cmd_zoo(const Flags& flags) {
  const std::string backend =
      flags.get("backend", runtime::default_backend());
  train::TrainOptions topt;
  topt.epochs = flags.get_size("epochs", 8);

  auto registry = std::make_shared<runtime::ModelRegistry>();
  struct TenantRun {
    std::string tenant;
    const data::Benchmark* bench = nullptr;
    data::SyntheticResult data;
    double direct_accuracy = 0.0;
    double served_accuracy = 0.0;
  };
  std::vector<TenantRun> runs;
  for (const auto& bench : data::zoo_benchmarks()) {
    TenantRun run;
    std::string lower = bench.spec.name;
    for (char& c : lower) {
      c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
    }
    run.tenant = "zoo/" + lower;
    run.bench = &bench;
    run.data = data::generate(bench.spec);
    auto trained = train::train_univsa(bench.config, run.data.train, topt);
    registry->publish(run.tenant, std::move(trained.model));
    run.direct_accuracy =
        runtime::make_backend(backend,
                              registry->latest(run.tenant)->model())
            ->accuracy(run.data.test);
    runs.push_back(std::move(run));
  }

  std::printf("== model zoo: %zu tenants ==\n", registry->tenant_count());
  for (const auto& run : runs) {
    const auto snap = registry->latest(run.tenant);
    const auto& c = snap->model().config();
    std::printf("  %-12s -> %s  (%s, %.2f KB, direct accuracy %.4f)\n",
                run.bench->spec.name.c_str(), snap->key().c_str(),
                c.to_string().c_str(), vsa::memory_kb(c),
                run.direct_accuracy);
  }

  // Mixed-traffic drill: one server, three tenants, interleaved
  // round-robin submissions. The anomaly tenant is the premium (kHigh)
  // stream; the gesture tenant is batch traffic capped at kLow with an
  // admission quota.
  runtime::ServerOptions sopt;
  sopt.backend = backend;
  sopt.workers = flags.get_size("workers", 2);
  sopt.max_batch = flags.get_size("max-batch", 16);
  sopt.max_delay_us = 50;
  sopt.tenant_policies["zoo/anomaly"] = {runtime::Priority::kHigh, 0};
  sopt.tenant_policies["zoo/gesture"] = {runtime::Priority::kLow, 64};
  {
    runtime::Server server(registry, sopt);
    std::vector<std::vector<std::future<vsa::Prediction>>> futures(
        runs.size());
    std::size_t remaining = 0;
    for (const auto& run : runs) remaining += run.data.test.size();
    for (std::size_t i = 0; remaining > 0; ++i) {
      for (std::size_t t = 0; t < runs.size(); ++t) {
        if (i >= runs[t].data.test.size()) continue;
        runtime::SubmitOptions so;
        so.tenant = runs[t].tenant;
        so.priority = runs[t].tenant == "zoo/anomaly"
                          ? runtime::Priority::kHigh
                          : runtime::Priority::kNormal;
        // The gesture tenant's admission quota sheds bursts; back off
        // and resubmit like a well-behaved batch client.
        while (true) {
          try {
            futures[t].push_back(
                server.submit(runs[t].data.test.values(i), so));
            break;
          } catch (const runtime::RequestShed&) {
            std::this_thread::sleep_for(std::chrono::microseconds(200));
          }
        }
        --remaining;
      }
    }
    for (std::size_t t = 0; t < runs.size(); ++t) {
      std::size_t correct = 0;
      for (std::size_t i = 0; i < futures[t].size(); ++i) {
        if (futures[t][i].get().label == runs[t].data.test.label(i)) {
          ++correct;
        }
      }
      runs[t].served_accuracy =
          static_cast<double>(correct) /
          static_cast<double>(futures[t].size());
    }
    const runtime::ServerStats stats = server.stats();
    std::printf("mixed traffic: %llu completed in %llu batches "
                "(mean batch %.1f)\n",
                static_cast<unsigned long long>(stats.completed),
                static_cast<unsigned long long>(stats.batches),
                stats.mean_batch());
    for (const auto& [tenant, ts] : stats.tenants) {
      std::printf("  %-12s %llu completed, %llu shed, p99 latency "
                  "%.2f us\n",
                  tenant.c_str(),
                  static_cast<unsigned long long>(ts.completed),
                  static_cast<unsigned long long>(ts.shed),
                  static_cast<double>(ts.latency_ns.percentile(0.99)) *
                      1e-3);
    }
  }
  bool ok = true;
  for (const auto& run : runs) {
    std::printf("  %-12s served accuracy %.4f (direct %.4f)\n",
                run.tenant.c_str(), run.served_accuracy,
                run.direct_accuracy);
    if (run.served_accuracy != run.direct_accuracy) {
      std::fprintf(stderr,
                   "ZOO FAILED: %s served accuracy diverged from the "
                   "direct backend\n",
                   run.tenant.c_str());
      ok = false;
    }
  }

  // Drift + online adaptation on the gesture tenant: regenerate its
  // traffic with drifted prototypes, stream it through the adaptation
  // driver, and measure how much of the accuracy drop the refreshed
  // (hot-swapped) model recovers on held-out drifted data.
  const TenantRun* gesture = nullptr;
  for (const auto& run : runs) {
    if (run.tenant == "zoo/gesture") gesture = &run;
  }
  data::SyntheticSpec drifted_spec = gesture->bench->spec;
  drifted_spec.drift = flags.get_double("drift", 0.3);
  drifted_spec.drift_seed = flags.get_size("drift-seed", 9);
  const data::SyntheticResult drifted = data::generate(drifted_spec);
  const double pre_drift = gesture->direct_accuracy;
  const double post_drift =
      runtime::make_backend(backend,
                            registry->latest(gesture->tenant)->model())
          ->accuracy(drifted.test);

  runtime::AdaptationOptions aopt;
  // Refresh knobs tuned for strong drift: plastic class vectors
  // (inertia 1) retrained hard (10 epochs) on a full reservoir of
  // post-drift traffic recover >= 90% of the accuracy gap at the
  // default drift of 0.3 — the bench_model_zoo acceptance bar.
  aopt.retrain.epochs = flags.get_size("refresh-epochs", 10);
  aopt.retrain.inertia = static_cast<long long>(
      flags.get_size("refresh-inertia", 1));
  aopt.reservoir_capacity = flags.get_size("reservoir", 256);
  aopt.min_refresh_samples = flags.get_size("refresh-min", 256);
  runtime::AdaptationDriver driver(registry, gesture->tenant, aopt);
  runtime::SnapshotPtr current = registry->latest(gesture->tenant);
  auto serving = runtime::make_backend(backend, current->model());
  vsa::Prediction prediction;
  // Freeze the detector's baseline on in-distribution traffic first —
  // the baseline must describe the healthy model for the drifted
  // window to register as a drop.
  for (std::size_t i = 0; i < gesture->data.train.size(); ++i) {
    serving->predict_into(gesture->data.train.values(i), prediction);
    driver.observe(gesture->data.train.values(i),
                   gesture->data.train.label(i), prediction);
  }
  for (std::size_t i = 0; i < drifted.train.size(); ++i) {
    if (const auto latest = registry->latest(gesture->tenant);
        latest != current) {
      current = latest;  // hot-swap landed: serve the refreshed model
      serving = runtime::make_backend(backend, current->model());
    }
    serving->predict_into(drifted.train.values(i), prediction);
    driver.observe(drifted.train.values(i), drifted.train.label(i),
                   prediction);
  }
  const double recovered =
      runtime::make_backend(backend,
                            registry->latest(gesture->tenant)->model())
          ->accuracy(drifted.test);
  const double gap = pre_drift - post_drift;
  const double recovery =
      gap <= 0.0 ? 1.0 : (recovered - post_drift) / gap;
  std::printf("drift drill (%s, drift %.2f): accuracy %.4f -> %.4f "
              "after drift, %.4f after %llu refresh(es) "
              "(%.0f%% of the gap recovered, %llu drift events, "
              "now at %s)\n",
              gesture->tenant.c_str(), drifted_spec.drift, pre_drift,
              post_drift, recovered,
              static_cast<unsigned long long>(driver.refreshes()),
              100.0 * recovery,
              static_cast<unsigned long long>(driver.drift_events()),
              registry->latest(gesture->tenant)->key().c_str());
  if (driver.refreshes() == 0) {
    std::fprintf(stderr,
                 "ZOO FAILED: drift loop never published a refresh\n");
    ok = false;
  }
  maybe_write_metrics(flags);
  if (ok) std::printf("ZOO OK\n");
  return ok ? 0 : 1;
}

/// Prints the runtime dispatch picture: detected CPU features, which
/// SIMD ISA variants this binary carries and which the CPU can run, the
/// table each primitive dispatches to (with any UNIVSA_FORCE_ISA
/// override), and the registered runtime backend names.
int cmd_backends() {
  std::printf("cpu features: %s\n", simd::cpu_features_string().c_str());

  std::printf("simd isas:");
  for (const simd::Isa isa : simd::compiled_isas()) {
    std::printf(" %s%s", simd::to_string(isa),
                simd::isa_available(isa) ? "" : "(compiled, cpu lacks)");
  }
  std::printf("\n");

  if (const auto forced = simd::forced_isa(); forced.has_value()) {
    std::printf("UNIVSA_FORCE_ISA: %s%s\n", simd::to_string(*forced),
                simd::isa_available(*forced) ? ""
                                             : " (unavailable, ignored)");
  }
  const simd::Isa active = simd::active_isa();
  std::printf("active isa: %s (best available: %s)\n",
              simd::to_string(active), simd::to_string(simd::best_isa()));
  for (const char* primitive :
       {"bulk_popcount", "xor_popcount", "xnor_popcount",
        "masked_xnor_popcount", "masked_xnor_popcount_sweep"}) {
    std::printf("  %-26s -> %s\n", primitive, simd::to_string(active));
  }

  std::printf("registered backends:");
  for (const auto& name : runtime::backend_names()) {
    std::printf(" %s%s", name.c_str(),
                name == runtime::default_backend() ? "*" : "");
  }
  std::printf("  (* = default)\n");
  return 0;
}

int cmd_selftest() {
  const char* tmp = std::getenv("TMPDIR");
  const std::string dir = tmp != nullptr ? tmp : "/tmp";

  // datagen -> train -> save -> load -> eval -> adapt -> export.
  data::SyntheticSpec spec = data::find_benchmark("HAR").spec;
  spec.train_count = 160;
  spec.test_count = 80;
  const data::SyntheticResult ds = data::generate(spec);
  const std::string train_csv = dir + "/univsa_selftest_train.csv";
  const std::string test_csv = dir + "/univsa_selftest_test.csv";
  data::save_csv(ds.train, train_csv);
  data::save_csv(ds.test, test_csv);

  const vsa::ModelConfig config = data::find_benchmark("HAR").config;
  const data::Dataset train_set = load_for(config, train_csv);
  train::TrainOptions options;
  options.epochs = 8;
  const auto trained = train::train_univsa(config, train_set, options);

  const std::string model_path = dir + "/univsa_selftest.uvsa";
  vsa::ModelIo::save_file(trained.model, model_path);
  const vsa::Model reloaded = vsa::ModelIo::load_file(model_path);
  if (!(reloaded == trained.model)) {
    std::fprintf(stderr, "selftest: serialization mismatch\n");
    return 1;
  }

  const data::Dataset test_set = load_for(config, test_csv);
  const double acc =
      runtime::make_backend(runtime::default_backend(), reloaded)
          ->accuracy(test_set);
  if (acc < 0.5) {
    std::fprintf(stderr, "selftest: accuracy %.3f below sanity bar\n",
                 acc);
    return 1;
  }

  // Every registered backend must agree bit-for-bit with the reference
  // pipeline on the trained model.
  const runtime::ParityReport parity =
      runtime::verify_parity(reloaded, test_set);
  if (!parity.ok()) {
    std::fprintf(stderr, "selftest: backend parity failed\n%s\n",
                 parity.summary().c_str());
    return 1;
  }

  const auto adapted =
      train::adapt_class_vectors(reloaded, test_set);
  const hw::CEmitter emitter(adapted.model);
  emitter.write_files(dir, false);
  const hw::VerilogGenerator gen(adapted.model);
  if (!hw::verilog_structural_problems(gen.emit_all()).empty()) {
    std::fprintf(stderr, "selftest: emitted RTL is malformed\n");
    return 1;
  }

  std::remove(train_csv.c_str());
  std::remove(test_csv.c_str());
  std::remove(model_path.c_str());
  std::remove((dir + "/univsa_model.h").c_str());
  std::remove((dir + "/univsa_model.c").c_str());
  std::printf("selftest OK (test accuracy %.4f, simd isa %s)\n", acc,
              simd::to_string(simd::active_isa()));
  return 0;
}

// ---- network serving tier (docs/NETWORK.md) --------------------------

/// The model a network drill serves: `--model PATH` loads a trained
/// .uvsa file; otherwise a seeded random model on the named benchmark's
/// geometry (drills assert bit-parity, not accuracy, so a random model
/// is as good a witness as a trained one).
vsa::Model drill_model(const Flags& flags, std::uint64_t seed_mix) {
  const std::string path = flags.get("model", "");
  if (!path.empty()) return vsa::ModelIo::load_file(path);
  Rng rng(static_cast<std::uint64_t>(flags.get_size("seed", 42)) +
          seed_mix);
  return vsa::Model::random(
      data::find_benchmark(flags.get("benchmark", "HAR")).config, rng);
}

/// "host:port,host:port;host:port" — `;` separates shards, `,`
/// separates a shard's replicas.
std::vector<std::vector<net::Endpoint>> parse_endpoints(
    const std::string& spec) {
  std::vector<std::vector<net::Endpoint>> shards;
  std::size_t shard_begin = 0;
  while (shard_begin <= spec.size()) {
    std::size_t shard_end = spec.find(';', shard_begin);
    if (shard_end == std::string::npos) shard_end = spec.size();
    std::vector<net::Endpoint> replicas;
    std::size_t rep_begin = shard_begin;
    while (rep_begin < shard_end) {
      std::size_t rep_end = spec.find(',', rep_begin);
      if (rep_end == std::string::npos || rep_end > shard_end) {
        rep_end = shard_end;
      }
      const std::string one = spec.substr(rep_begin, rep_end - rep_begin);
      const std::size_t colon = one.rfind(':');
      if (colon == std::string::npos || colon == 0 ||
          colon + 1 >= one.size()) {
        std::fprintf(stderr, "bad endpoint \"%s\" (want host:port)\n",
                     one.c_str());
        std::exit(2);
      }
      net::Endpoint endpoint;
      endpoint.host = one.substr(0, colon);
      endpoint.port =
          static_cast<std::uint16_t>(std::stoul(one.substr(colon + 1)));
      replicas.push_back(std::move(endpoint));
      rep_begin = rep_end + 1;
    }
    if (!replicas.empty()) shards.push_back(std::move(replicas));
    shard_begin = shard_end + 1;
  }
  if (shards.empty()) {
    std::fprintf(stderr, "no endpoints in \"%s\"\n", spec.c_str());
    std::exit(2);
  }
  return shards;
}

/// One shard over the wire: binds the epoll front-end on --host/--port
/// (0 = ephemeral), prints `LISTENING <host> <port>` once ready, and
/// serves until --duration-s elapses (0 = forever). --port-file writes
/// the resolved port for scripts racing an ephemeral bind.
int cmd_serve(const Flags& flags) {
  arm_flight_recorder(flags);
  runtime::ServerOptions options;
  options.backend = flags.get("backend", runtime::default_backend());
  options.workers = flags.get_size("workers", 2);
  options.max_batch = flags.get_size("max-batch", 32);
  options.max_delay_us = flags.get_size("max-delay-us", 100);
  options.queue_capacity = flags.get_size("queue-capacity", 1024);
  options.default_tenant = flags.get("tenant", "default");

  auto registry = std::make_shared<runtime::ModelRegistry>();
  registry->publish(options.default_tenant, drill_model(flags, 0));
  auto server = std::make_shared<runtime::Server>(registry, options);

  net::NetServerOptions net_options;
  net_options.host = flags.get("host", "127.0.0.1");
  net_options.port =
      static_cast<std::uint16_t>(flags.get_size("port", 0));
  net::NetServer front(server, net_options);

  const std::string port_file = flags.get("port-file", "");
  if (!port_file.empty()) {
    std::ofstream(port_file) << front.port() << "\n";
  }
  std::printf("LISTENING %s %u\n", front.host().c_str(),
              unsigned{front.port()});
  std::fflush(stdout);

  const std::size_t duration_s = flags.get_size("duration-s", 0);
  const auto started = std::chrono::steady_clock::now();
  while (front.running()) {
    std::this_thread::sleep_for(std::chrono::milliseconds(100));
    if (duration_s != 0 &&
        std::chrono::steady_clock::now() - started >=
            std::chrono::seconds(duration_s)) {
      break;
    }
  }
  front.shutdown();
  server->shutdown();
  const net::NetServerStats stats = front.stats();
  std::printf("served: %llu connections, %llu frames in, %llu frames "
              "out, %llu refused, %llu decode errors\n",
              static_cast<unsigned long long>(stats.accepted),
              static_cast<unsigned long long>(stats.frames_in),
              static_cast<unsigned long long>(stats.frames_out),
              static_cast<unsigned long long>(stats.refused),
              static_cast<unsigned long long>(stats.decode_errors));
  maybe_write_metrics(flags);
  return 0;
}

/// Sharded-deployment inspector: builds a ShardRouter over --endpoints,
/// prints each tenant's consistent-hash placement and every endpoint's
/// probed health, and optionally drives --requests through the router
/// (the served model must match this invocation's --model/--benchmark/
/// --seed geometry). Exits non-zero when any endpoint is unreachable.
int cmd_route(const Flags& flags) {
  net::ShardRouterOptions options;
  options.shards = parse_endpoints(flags.require("endpoints"));
  options.virtual_nodes = flags.get_size("virtual-nodes", 64);
  options.hedge_timeout_ms = flags.get_size("hedge-timeout-ms", 250);
  net::ShardRouter router(std::move(options));

  std::printf("ring: %zu shards, %zu virtual nodes per shard\n",
              router.shard_count(), flags.get_size("virtual-nodes", 64));
  std::string tenant_list = flags.get("tenants", "default");
  std::vector<std::string> tenants;
  std::size_t begin = 0;
  while (begin <= tenant_list.size()) {
    std::size_t end = tenant_list.find(',', begin);
    if (end == std::string::npos) end = tenant_list.size();
    if (end > begin) tenants.push_back(tenant_list.substr(begin, end - begin));
    begin = end + 1;
  }
  for (const std::string& tenant : tenants) {
    std::printf("tenant %-24s -> shard %zu\n", tenant.c_str(),
                router.shard_for(tenant));
  }

  bool all_reachable = true;
  for (std::size_t s = 0; s < router.shard_count(); ++s) {
    for (std::size_t r = 0; r < router.replica_count(s); ++r) {
      const auto status = router.endpoints()[s][r];
      try {
        const net::PongFrame pong = router.probe(s, r);
        std::printf("shard %zu replica %zu %s:%u  health %s  queue %u\n",
                    s, r, status.endpoint.host.c_str(),
                    unsigned{status.endpoint.port},
                    runtime::to_string(
                        static_cast<runtime::HealthState>(pong.health)),
                    pong.queue_depth);
      } catch (const net::NetError& e) {
        all_reachable = false;
        std::printf("shard %zu replica %zu %s:%u  UNREACHABLE (%s)\n",
                    s, r, status.endpoint.host.c_str(),
                    unsigned{status.endpoint.port}, e.what());
      }
    }
  }

  const std::size_t n_requests = flags.get_size("requests", 0);
  if (n_requests != 0) {
    const vsa::Model model = drill_model(flags, 0);
    Rng rng(static_cast<std::uint64_t>(flags.get_size("seed", 42)) ^
            0x70c4);
    std::size_t completed = 0, failed = 0;
    for (std::size_t i = 0; i < n_requests; ++i) {
      std::vector<std::uint16_t> sample(model.config().features());
      for (auto& v : sample) {
        v = static_cast<std::uint16_t>(
            rng.uniform_index(model.config().M));
      }
      runtime::SubmitOptions submit;
      submit.tenant = tenants[i % tenants.size()];
      try {
        (void)router.predict(sample, submit);
        ++completed;
      } catch (const std::exception&) {
        ++failed;
      }
    }
    const net::RouterStats stats = router.stats();
    std::printf("drove %zu requests: %zu completed, %zu failed, "
                "%llu failovers, %llu hedges\n",
                n_requests, completed, failed,
                static_cast<unsigned long long>(stats.failovers),
                static_cast<unsigned long long>(stats.hedges));
  }
  maybe_write_metrics(flags);
  return all_reachable ? 0 : 1;
}

/// Network chaos drill (the serving tier's faultcheck): an in-process
/// --shards x --replicas loopback cluster, every replica publishing the
/// same two tenants ("alpha"/"beta", distinct model geometries), with
/// --threads loadgen callers streaming mixed-priority traffic through a
/// ShardRouter while a FaultPlan-derived schedule kills every replica
/// but the first of each shard mid-run. Exits 0 only when every
/// completed answer was bit-identical to the reference backend, nothing
/// was lost (completed == submitted), and failover actually engaged.
int cmd_netcheck(const Flags& flags) {
  arm_flight_recorder(flags);
  const std::size_t n_shards = flags.get_size("shards", 2);
  const std::size_t n_replicas = flags.get_size("replicas", 2);
  const std::size_t n_requests = flags.get_size("requests", 200);
  const std::size_t n_threads = flags.get_size("threads", 4);
  // Per-request think time: keeps the run window wide enough that
  // every scheduled kill lands while traffic is still flowing.
  const std::size_t pace_us = flags.get_size("pace-us", 500);
  const std::uint64_t seed =
      static_cast<std::uint64_t>(flags.get_size("seed", 42));

  // Two tenants with distinct geometries, published on every shard so
  // failover never strands a key.
  Rng model_rng(seed);
  const vsa::Model alpha = vsa::Model::random(
      data::find_benchmark("HAR").config, model_rng);
  const vsa::Model beta = vsa::Model::random(
      data::find_benchmark("CHB-B").config, model_rng);

  const std::size_t n_samples = 32;
  Rng sample_rng(seed ^ 0x5eed);
  std::map<std::string, std::vector<std::vector<std::uint16_t>>> samples;
  std::map<std::string, std::vector<vsa::Prediction>> expected;
  for (const auto& [tenant, model] :
       {std::pair<const char*, const vsa::Model&>{"alpha", alpha},
        {"beta", beta}}) {
    auto& pool = samples[tenant];
    pool.resize(n_samples);
    for (auto& s : pool) {
      s.resize(model.config().features());
      for (auto& v : s) {
        v = static_cast<std::uint16_t>(
            sample_rng.uniform_index(model.config().M));
      }
    }
    runtime::make_backend("reference", model)
        ->predict_batch(pool, expected[tenant]);
  }

  runtime::ServerOptions server_options;
  server_options.backend =
      flags.get("backend", runtime::default_backend());
  server_options.workers = 2;
  server_options.max_batch = 16;
  server_options.max_delay_us = 100;
  std::vector<std::vector<std::shared_ptr<runtime::Server>>> runtimes;
  std::vector<std::vector<std::unique_ptr<net::NetServer>>> fronts;
  net::ShardRouterOptions router_options;
  for (std::size_t s = 0; s < n_shards; ++s) {
    runtimes.emplace_back();
    fronts.emplace_back();
    std::vector<net::Endpoint> endpoints;
    for (std::size_t r = 0; r < n_replicas; ++r) {
      auto registry = std::make_shared<runtime::ModelRegistry>();
      registry->publish("alpha", alpha);
      registry->publish("beta", beta);
      auto rt = std::make_shared<runtime::Server>(registry,
                                                  server_options);
      auto front = std::make_unique<net::NetServer>(rt);
      endpoints.push_back({front->host(), front->port()});
      runtimes.back().push_back(std::move(rt));
      fronts.back().push_back(std::move(front));
    }
    router_options.shards.push_back(std::move(endpoints));
  }
  router_options.failure_backoff_ms = 100;
  router_options.client.request_timeout_ms = 2000;
  net::ShardRouter router(std::move(router_options));

  // The kill schedule reuses the FaultPlan's replayable (seed, lane,
  // sequence) randomness: doomed replica i (every replica but each
  // shard's first) draws its kill order and stagger from lane i's
  // first scheduled fault. Deterministic in --seed, independent of
  // thread interleaving.
  auto plan = std::make_shared<runtime::FaultPlan>(
      runtime::canned_overload_spec(seed));
  struct Kill {
    std::size_t shard, replica;
    std::uint64_t stagger_ms;
  };
  std::vector<Kill> kills;
  for (std::size_t s = 0; s < n_shards; ++s) {
    for (std::size_t r = 1; r < n_replicas; ++r) {
      const std::size_t lane =
          (s * n_replicas + r) % runtime::FaultPlan::kMaxLanes;
      std::uint64_t first = 0;
      for (std::uint64_t n = 0; n < 256; ++n) {
        if (plan->at(lane, n).any()) {
          first = n;
          break;
        }
      }
      kills.push_back({s, r, first % 16});
    }
  }
  std::sort(kills.begin(), kills.end(),
            [](const Kill& a, const Kill& b) {
              return a.stagger_ms < b.stagger_ms;
            });

  std::atomic<std::size_t> done{0}, completed{0}, mismatches{0};
  std::atomic<std::size_t> refused{0}, unreachable{0};
  std::vector<std::thread> callers;
  for (std::size_t t = 0; t < n_threads; ++t) {
    callers.emplace_back([&, t] {
      for (std::size_t i = t; i < n_requests; i += n_threads) {
        const std::string tenant = (i % 2 == 0) ? "alpha" : "beta";
        const std::size_t sample = i % n_samples;
        runtime::SubmitOptions submit;
        submit.tenant = tenant;
        submit.priority = (i % 4 == 0) ? runtime::Priority::kHigh
                                       : runtime::Priority::kNormal;
        try {
          const vsa::Prediction got =
              router.predict(samples[tenant][sample], submit);
          if (got.label == expected[tenant][sample].label &&
              got.scores == expected[tenant][sample].scores) {
            completed.fetch_add(1, std::memory_order_relaxed);
          } else {
            mismatches.fetch_add(1, std::memory_order_relaxed);
          }
        } catch (const runtime::RequestRefused&) {
          refused.fetch_add(1, std::memory_order_relaxed);
        } catch (const std::exception&) {
          unreachable.fetch_add(1, std::memory_order_relaxed);
        }
        done.fetch_add(1, std::memory_order_relaxed);
        if (pace_us != 0) {
          std::this_thread::sleep_for(std::chrono::microseconds(pace_us));
        }
      }
    });
  }

  // Chaos: kill k fires once the loadgen passes its progress gate (a
  // growing fraction of the run, capped below the end so every kill
  // lands while traffic is still flowing) plus the plan-drawn stagger.
  // Each shard keeps its first replica, so zero lost requests is an
  // invariant, not luck.
  for (std::size_t k = 0; k < kills.size(); ++k) {
    const std::size_t gate = n_requests * (k + 1) / (kills.size() + 2);
    while (done.load(std::memory_order_relaxed) < gate) {
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
    std::this_thread::sleep_for(
        std::chrono::milliseconds(kills[k].stagger_ms));
    fronts[kills[k].shard][kills[k].replica]->shutdown();
    std::printf("killed shard %zu replica %zu (progress %zu/%zu)\n",
                kills[k].shard, kills[k].replica,
                done.load(std::memory_order_relaxed), n_requests);
  }
  for (auto& caller : callers) caller.join();
  for (auto& shard : fronts) {
    for (auto& front : shard) front->shutdown();
  }
  for (auto& shard : runtimes) {
    for (auto& rt : shard) rt->shutdown();
  }

  const net::RouterStats stats = router.stats();
  std::printf(
      "netcheck: %zu requests, %zu bit-exact, %zu mismatched, %zu "
      "refused, %zu unreachable\n",
      n_requests, completed.load(), mismatches.load(), refused.load(),
      unreachable.load());
  std::printf(
      "router: %llu failovers, %llu hedges, %llu exhausted; killed %zu "
      "of %zu replicas\n",
      static_cast<unsigned long long>(stats.failovers),
      static_cast<unsigned long long>(stats.hedges),
      static_cast<unsigned long long>(stats.exhausted), kills.size(),
      n_shards * n_replicas);
  write_faultcheck_observability(flags);

  const bool parity_held = mismatches.load() == 0;
  const bool nothing_lost =
      completed.load() == n_requests && refused.load() == 0 &&
      unreachable.load() == 0;
  const bool failover_engaged = !kills.empty() ? stats.failovers > 0 : true;
  if (parity_held && nothing_lost && failover_engaged) {
    std::printf("netcheck OK: parity held across %llu failovers\n",
                static_cast<unsigned long long>(stats.failovers));
    return 0;
  }
  std::printf("netcheck FAILED:%s%s%s\n",
              parity_held ? "" : " bit-parity violated",
              nothing_lost ? "" : " requests lost",
              failover_engaged ? "" : " failover never engaged");
  return 1;
}

void usage() {
  std::fputs(
      "usage: univsa_cli <datagen|train|eval|parity|info|adapt|"
      "export-c|export-rtl|stats|search|zoo|backends|faultcheck|serve|"
      "route|netcheck|top|selftest> [--flag value ...]\n"
      "flag reference: docs/CLI.md; serving/robustness guide: "
      "docs/SERVING.md; multi-tenant zoo guide: docs/ZOO.md; network "
      "serving guide: docs/NETWORK.md\n",
      stderr);
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) {
    usage();
    return 2;
  }
  const std::string cmd = argv[1];
  try {
    const Flags flags = parse_flags(argc, argv, 2);
    set_global_pool_threads(flags.get_size("threads", 0));
    if (cmd == "datagen") return cmd_datagen(flags);
    if (cmd == "train") return cmd_train(flags);
    if (cmd == "eval") return cmd_eval(flags);
    if (cmd == "parity") return cmd_parity(flags);
    if (cmd == "info") return cmd_info(flags);
    if (cmd == "adapt") return cmd_adapt(flags);
    if (cmd == "export-c") return cmd_export_c(flags);
    if (cmd == "export-rtl") return cmd_export_rtl(flags);
    if (cmd == "stats") return cmd_stats(flags);
    if (cmd == "search") return cmd_search(flags);
    if (cmd == "zoo") return cmd_zoo(flags);
    if (cmd == "backends") return cmd_backends();
    if (cmd == "faultcheck") return cmd_faultcheck(flags);
    if (cmd == "serve") return cmd_serve(flags);
    if (cmd == "route") return cmd_route(flags);
    if (cmd == "netcheck") return cmd_netcheck(flags);
    if (cmd == "top") return cmd_top(flags);
    if (cmd == "selftest") return cmd_selftest();
    usage();
    return 2;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
}
