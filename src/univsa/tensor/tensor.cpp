#include "univsa/tensor/tensor.h"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <sstream>

#include "univsa/common/contracts.h"
#include "univsa/tensor/gemm.h"

namespace univsa {

namespace {
std::size_t shape_size(const std::vector<std::size_t>& shape) {
  std::size_t n = 1;
  for (const auto d : shape) n *= d;
  return shape.empty() ? 0 : n;
}
}  // namespace

Tensor::Tensor(std::vector<std::size_t> shape)
    : shape_(std::move(shape)), data_(shape_size(shape_), 0.0f) {
  UNIVSA_REQUIRE(!shape_.empty() && shape_.size() <= 4,
                 "tensor rank must be 1..4");
  for (const auto d : shape_) UNIVSA_REQUIRE(d > 0, "zero tensor dimension");
}

Tensor::Tensor(std::initializer_list<std::size_t> shape)
    : Tensor(std::vector<std::size_t>(shape)) {}

Tensor Tensor::zeros(std::vector<std::size_t> shape) {
  return Tensor(std::move(shape));
}

Tensor Tensor::full(std::vector<std::size_t> shape, float value) {
  Tensor t(std::move(shape));
  t.fill(value);
  return t;
}

Tensor Tensor::randn(std::vector<std::size_t> shape, Rng& rng, float stddev) {
  Tensor t(std::move(shape));
  for (auto& x : t.data_) {
    x = static_cast<float>(rng.normal(0.0, stddev));
  }
  return t;
}

Tensor Tensor::rand_sign(std::vector<std::size_t> shape, Rng& rng) {
  Tensor t(std::move(shape));
  for (auto& x : t.data_) x = static_cast<float>(rng.sign());
  return t;
}

Tensor Tensor::from_data(std::vector<std::size_t> shape,
                         std::vector<float> data) {
  Tensor t(std::move(shape));
  UNIVSA_REQUIRE(data.size() == t.size(), "data size does not match shape");
  t.data_ = std::move(data);
  return t;
}

std::size_t Tensor::dim(std::size_t axis) const {
  UNIVSA_REQUIRE(axis < shape_.size(), "axis out of range");
  return shape_[axis];
}

float& Tensor::operator[](std::size_t i) {
  UNIVSA_REQUIRE(i < data_.size(), "flat index out of range");
  return data_[i];
}

float Tensor::operator[](std::size_t i) const {
  UNIVSA_REQUIRE(i < data_.size(), "flat index out of range");
  return data_[i];
}

void Tensor::require_rank(std::size_t r) const {
  UNIVSA_REQUIRE(shape_.size() == r, "tensor rank mismatch");
}

float& Tensor::at(std::size_t i, std::size_t j) {
  require_rank(2);
  UNIVSA_REQUIRE(i < shape_[0] && j < shape_[1], "index out of range");
  return data_[i * shape_[1] + j];
}

float Tensor::at(std::size_t i, std::size_t j) const {
  return const_cast<Tensor*>(this)->at(i, j);
}

float& Tensor::at(std::size_t i, std::size_t j, std::size_t k) {
  require_rank(3);
  UNIVSA_REQUIRE(i < shape_[0] && j < shape_[1] && k < shape_[2],
                 "index out of range");
  return data_[(i * shape_[1] + j) * shape_[2] + k];
}

float Tensor::at(std::size_t i, std::size_t j, std::size_t k) const {
  return const_cast<Tensor*>(this)->at(i, j, k);
}

float& Tensor::at(std::size_t i, std::size_t j, std::size_t k,
                  std::size_t l) {
  require_rank(4);
  UNIVSA_REQUIRE(
      i < shape_[0] && j < shape_[1] && k < shape_[2] && l < shape_[3],
      "index out of range");
  return data_[((i * shape_[1] + j) * shape_[2] + k) * shape_[3] + l];
}

float Tensor::at(std::size_t i, std::size_t j, std::size_t k,
                 std::size_t l) const {
  return const_cast<Tensor*>(this)->at(i, j, k, l);
}

Tensor Tensor::reshaped(std::vector<std::size_t> shape) const {
  Tensor t(std::move(shape));
  UNIVSA_REQUIRE(t.size() == size(), "reshape changes element count");
  t.data_ = data_;
  return t;
}

Tensor& Tensor::reshape_(std::vector<std::size_t> shape) {
  UNIVSA_REQUIRE(!shape.empty() && shape.size() <= 4,
                 "tensor rank must be 1..4");
  for (const auto d : shape) UNIVSA_REQUIRE(d > 0, "zero tensor dimension");
  UNIVSA_REQUIRE(shape_size(shape) == size(), "reshape changes element count");
  shape_ = std::move(shape);
  return *this;
}

Tensor& Tensor::ensure_shape(std::vector<std::size_t> shape) {
  UNIVSA_REQUIRE(!shape.empty() && shape.size() <= 4,
                 "tensor rank must be 1..4");
  for (const auto d : shape) UNIVSA_REQUIRE(d > 0, "zero tensor dimension");
  const std::size_t n = shape_size(shape);
  if (n != data_.size()) data_.assign(n, 0.0f);
  shape_ = std::move(shape);
  return *this;
}

void Tensor::fill(float value) {
  std::fill(data_.begin(), data_.end(), value);
}

Tensor& Tensor::add_(const Tensor& other) {
  UNIVSA_REQUIRE(other.size() == size(), "elementwise size mismatch");
  for (std::size_t i = 0; i < data_.size(); ++i) data_[i] += other.data_[i];
  return *this;
}

Tensor& Tensor::sub_(const Tensor& other) {
  UNIVSA_REQUIRE(other.size() == size(), "elementwise size mismatch");
  for (std::size_t i = 0; i < data_.size(); ++i) data_[i] -= other.data_[i];
  return *this;
}

Tensor& Tensor::mul_(float scalar) {
  for (auto& x : data_) x *= scalar;
  return *this;
}

Tensor& Tensor::mul_(const Tensor& other) {
  UNIVSA_REQUIRE(other.size() == size(), "elementwise size mismatch");
  for (std::size_t i = 0; i < data_.size(); ++i) data_[i] *= other.data_[i];
  return *this;
}

Tensor Tensor::add(const Tensor& other) const {
  Tensor r = *this;
  return r.add_(other);
}

Tensor Tensor::sub(const Tensor& other) const {
  Tensor r = *this;
  return r.sub_(other);
}

Tensor Tensor::mul(float scalar) const {
  Tensor r = *this;
  return r.mul_(scalar);
}

float Tensor::sum() const {
  return std::accumulate(data_.begin(), data_.end(), 0.0f);
}

float Tensor::abs_max() const {
  float m = 0.0f;
  for (const auto x : data_) m = std::max(m, std::fabs(x));
  return m;
}

Tensor Tensor::matmul(const Tensor& other) const {
  Tensor out;
  matmul_into(other, out);
  return out;
}

Tensor Tensor::matmul_transposed(const Tensor& other) const {
  Tensor out;
  matmul_transposed_into(other, out);
  return out;
}

Tensor Tensor::transposed_matmul(const Tensor& other) const {
  Tensor out;
  transposed_matmul_into(other, out);
  return out;
}

void Tensor::matmul_into(const Tensor& other, Tensor& out,
                         bool accumulate) const {
  require_rank(2);
  other.require_rank(2);
  UNIVSA_REQUIRE(shape_[1] == other.shape_[0], "matmul inner dim mismatch");
  out.ensure_shape({shape_[0], other.shape_[1]});
  gemm(GemmLayout::kNN, shape_[0], other.shape_[1], shape_[1], data(),
       other.data(), out.data(), accumulate);
}

void Tensor::matmul_transposed_into(const Tensor& other, Tensor& out,
                                    bool accumulate) const {
  require_rank(2);
  other.require_rank(2);
  UNIVSA_REQUIRE(shape_[1] == other.shape_[1],
                 "matmul_transposed inner dim mismatch");
  out.ensure_shape({shape_[0], other.shape_[0]});
  gemm(GemmLayout::kNT, shape_[0], other.shape_[0], shape_[1], data(),
       other.data(), out.data(), accumulate);
}

void Tensor::transposed_matmul_into(const Tensor& other, Tensor& out,
                                    bool accumulate) const {
  require_rank(2);
  other.require_rank(2);
  UNIVSA_REQUIRE(shape_[0] == other.shape_[0],
                 "transposed_matmul inner dim mismatch");
  out.ensure_shape({shape_[1], other.shape_[1]});
  gemm(GemmLayout::kTN, shape_[1], other.shape_[1], shape_[0], data(),
       other.data(), out.data(), accumulate);
}

std::string Tensor::shape_string() const {
  std::ostringstream os;
  os << '(';
  for (std::size_t i = 0; i < shape_.size(); ++i) {
    if (i) os << ", ";
    os << shape_[i];
  }
  os << ')';
  return os.str();
}

Tensor sign_tensor(const Tensor& x) {
  Tensor out;
  sign_tensor_into(x, out);
  return out;
}

void sign_tensor_into(const Tensor& x, Tensor& out) {
  out.ensure_shape(x.shape());
  const auto in = x.flat();
  auto o = out.flat();
  for (std::size_t i = 0; i < in.size(); ++i) {
    o[i] = in[i] >= 0.0f ? 1.0f : -1.0f;
  }
}

bool allclose(const Tensor& a, const Tensor& b, float tol) {
  if (a.shape() != b.shape()) return false;
  const auto fa = a.flat();
  const auto fb = b.flat();
  for (std::size_t i = 0; i < fa.size(); ++i) {
    if (std::fabs(fa[i] - fb[i]) > tol) return false;
  }
  return true;
}

}  // namespace univsa
