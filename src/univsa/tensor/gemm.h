// Blocked, register-tiled, threaded single-precision GEMM.
//
// All three layouts the backprop passes need are provided explicitly
// (C = A·B, C = A·Bᵀ, C = Aᵀ·B) instead of a general stride interface —
// the training stack only ever calls these three, and the explicit forms
// keep the packing routines contiguous.
//
// Large products go through a cache-blocked path (packed A/B panels,
// MR×NR register-tiled micro-kernel the compiler vectorizes, row-block
// parallelism on the global thread pool); small products use simple
// unit-stride loops where packing overhead would dominate. Both paths are
// dense: the historical per-element `a == 0` skip is gone — it defeated
// vectorization on dense activations, and training activations are dense
// (sign outputs are ±1; DVP zero-padding lives in dedicated lanes the
// packed micro-kernel streams through at full width anyway).
//
// Determinism: each C element is accumulated in a fixed k-block order by
// exactly one thread, so results are bit-identical for any thread count.
#pragma once

#include <cstddef>

namespace univsa {

enum class GemmLayout {
  kNN,  ///< C(m,n) = A(m,k) · B(k,n)
  kNT,  ///< C(m,n) = A(m,k) · B(n,k)ᵀ
  kTN,  ///< C(m,n) = A(k,m)ᵀ · B(k,n)
};

/// C must not alias A or B. With `accumulate` false (default) C is
/// overwritten; with it true the product is added to C (fused β = 1,
/// used by per-sample weight-gradient accumulation).
void gemm(GemmLayout layout, std::size_t m, std::size_t n, std::size_t k,
          const float* a, const float* b, float* c, bool accumulate = false);

}  // namespace univsa
