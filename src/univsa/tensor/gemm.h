// Blocked, threaded single-precision GEMM.
//
// All three layouts the backprop passes need are provided explicitly
// (C = A·B, C = A·Bᵀ, C = Aᵀ·B) instead of a general stride interface —
// the training stack only ever calls these three, and the explicit forms
// keep the inner loops contiguous.
#pragma once

#include <cstddef>

namespace univsa {

enum class GemmLayout {
  kNN,  ///< C(m,n) = A(m,k) · B(k,n)
  kNT,  ///< C(m,n) = A(m,k) · B(n,k)ᵀ
  kTN,  ///< C(m,n) = A(k,m)ᵀ · B(k,n)
};

/// C must not alias A or B. C is overwritten.
void gemm(GemmLayout layout, std::size_t m, std::size_t n, std::size_t k,
          const float* a, const float* b, float* c);

}  // namespace univsa
