#include "univsa/tensor/im2col.h"

#include <algorithm>

#include "univsa/common/contracts.h"

namespace univsa {

void im2col_into(const float* in, std::size_t channels, std::size_t height,
                 std::size_t width, std::size_t kernel, float* out) {
  UNIVSA_REQUIRE(kernel % 2 == 1, "kernel size must be odd for same padding");
  const std::size_t pad = kernel / 2;
  const std::size_t plane = height * width;

  std::size_t row = 0;
  for (std::size_t c = 0; c < channels; ++c) {
    for (std::size_t kh = 0; kh < kernel; ++kh) {
      for (std::size_t kw = 0; kw < kernel; ++kw, ++row) {
        float* dst = out + row * plane;
        const long dh = static_cast<long>(kh) - static_cast<long>(pad);
        const long dw = static_cast<long>(kw) - static_cast<long>(pad);
        for (std::size_t h = 0; h < height; ++h) {
          const long sh = static_cast<long>(h) + dh;
          if (sh < 0 || sh >= static_cast<long>(height)) {
            for (std::size_t w = 0; w < width; ++w) dst[h * width + w] = 0.0f;
            continue;
          }
          const float* src = in + c * plane + sh * width;
          for (std::size_t w = 0; w < width; ++w) {
            const long sw = static_cast<long>(w) + dw;
            dst[h * width + w] =
                (sw < 0 || sw >= static_cast<long>(width)) ? 0.0f : src[sw];
          }
        }
      }
    }
  }
}

void col2im_into(const float* in, std::size_t channels, std::size_t height,
                 std::size_t width, std::size_t kernel, float* out) {
  UNIVSA_REQUIRE(kernel % 2 == 1, "kernel size must be odd for same padding");
  const std::size_t pad = kernel / 2;
  const std::size_t plane = height * width;
  std::fill(out, out + channels * plane, 0.0f);

  std::size_t row = 0;
  for (std::size_t c = 0; c < channels; ++c) {
    for (std::size_t kh = 0; kh < kernel; ++kh) {
      for (std::size_t kw = 0; kw < kernel; ++kw, ++row) {
        const float* src = in + row * plane;
        const long dh = static_cast<long>(kh) - static_cast<long>(pad);
        const long dw = static_cast<long>(kw) - static_cast<long>(pad);
        for (std::size_t h = 0; h < height; ++h) {
          const long sh = static_cast<long>(h) + dh;
          if (sh < 0 || sh >= static_cast<long>(height)) continue;
          float* dst = out + c * plane + sh * width;
          for (std::size_t w = 0; w < width; ++w) {
            const long sw = static_cast<long>(w) + dw;
            if (sw < 0 || sw >= static_cast<long>(width)) continue;
            dst[sw] += src[h * width + w];
          }
        }
      }
    }
  }
}

Tensor im2col(const Tensor& input, std::size_t kernel) {
  UNIVSA_REQUIRE(input.rank() == 3, "im2col expects (C, H, W)");
  const std::size_t channels = input.dim(0);
  const std::size_t height = input.dim(1);
  const std::size_t width = input.dim(2);
  Tensor cols({channels * kernel * kernel, height * width});
  im2col_into(input.data(), channels, height, width, kernel, cols.data());
  return cols;
}

Tensor col2im(const Tensor& columns, std::size_t channels, std::size_t height,
              std::size_t width, std::size_t kernel) {
  UNIVSA_REQUIRE(columns.rank() == 2, "col2im expects (C*K*K, H*W)");
  UNIVSA_REQUIRE(columns.dim(0) == channels * kernel * kernel &&
                     columns.dim(1) == height * width,
                 "col2im shape mismatch");
  Tensor grad({channels, height, width});
  col2im_into(columns.data(), channels, height, width, kernel, grad.data());
  return grad;
}

}  // namespace univsa
