// im2col / col2im for 2-D convolution with "same" zero padding.
//
// The BiConv layer (Sec. III-A2) lowers convolution to GEMM:
//   patches (C_in*K*K, H*W) from im2col, kernels (O, C_in*K*K),
//   output = kernels · patches  ->  (O, H*W).
// Zero padding is the DVP-compatible choice: a 0 is neutral under
// bipolar accumulation (see DESIGN.md §5).
#pragma once

#include <cstddef>

#include "univsa/tensor/tensor.h"

namespace univsa {

/// input  (C, H, W) -> columns (C*K*K, H*W); stride 1, pad K/2 (K odd).
Tensor im2col(const Tensor& input, std::size_t kernel);

/// Adjoint of im2col: columns (C*K*K, H*W) -> grad input (C, H, W).
Tensor col2im(const Tensor& columns, std::size_t channels, std::size_t height,
              std::size_t width, std::size_t kernel);

/// Allocation-free raw-pointer cores of the above, used by the training
/// fast path with caller-owned scratch. `cols` holds C*K*K*H*W floats;
/// `input`/`grad` hold C*H*W floats. col2im_into zero-fills `grad` first.
void im2col_into(const float* input, std::size_t channels, std::size_t height,
                 std::size_t width, std::size_t kernel, float* cols);
void col2im_into(const float* cols, std::size_t channels, std::size_t height,
                 std::size_t width, std::size_t kernel, float* grad);

}  // namespace univsa
