// Minimal dense float tensor.
//
// The training stack (Sec. II-C's partial BNN, extended by Sec. III) only
// needs: row-major float storage, a handful of elementwise ops, GEMM, and
// im2col. This type is deliberately small — a value type with explicit
// shape checks — rather than a general autograd tensor; layers implement
// their own backward passes (see univsa/nn).
#pragma once

#include <cstddef>
#include <initializer_list>
#include <span>
#include <string>
#include <vector>

#include "univsa/common/rng.h"

namespace univsa {

class Tensor {
 public:
  Tensor() = default;

  /// Zero-filled tensor of the given shape. Rank 1..4 supported.
  explicit Tensor(std::vector<std::size_t> shape);
  Tensor(std::initializer_list<std::size_t> shape);

  static Tensor zeros(std::vector<std::size_t> shape);
  static Tensor full(std::vector<std::size_t> shape, float value);
  /// N(0, stddev) entries.
  static Tensor randn(std::vector<std::size_t> shape, Rng& rng,
                      float stddev = 1.0f);
  /// Uniform {-1, +1} entries.
  static Tensor rand_sign(std::vector<std::size_t> shape, Rng& rng);
  static Tensor from_data(std::vector<std::size_t> shape,
                          std::vector<float> data);

  const std::vector<std::size_t>& shape() const { return shape_; }
  std::size_t rank() const { return shape_.size(); }
  std::size_t dim(std::size_t axis) const;
  std::size_t size() const { return data_.size(); }
  bool empty() const { return data_.empty(); }

  float* data() { return data_.data(); }
  const float* data() const { return data_.data(); }
  std::span<float> flat() { return data_; }
  std::span<const float> flat() const { return data_; }

  float& operator[](std::size_t i);
  float operator[](std::size_t i) const;

  /// Multi-index accessors (rank-checked).
  float& at(std::size_t i, std::size_t j);
  float at(std::size_t i, std::size_t j) const;
  float& at(std::size_t i, std::size_t j, std::size_t k);
  float at(std::size_t i, std::size_t j, std::size_t k) const;
  float& at(std::size_t i, std::size_t j, std::size_t k, std::size_t l);
  float at(std::size_t i, std::size_t j, std::size_t k, std::size_t l) const;

  /// Same data, new shape; total size must match.
  Tensor reshaped(std::vector<std::size_t> shape) const;

  /// In-place reshape: rebinds the shape without touching the data.
  /// Total size must match. Allocation-free.
  Tensor& reshape_(std::vector<std::size_t> shape);

  /// Make this tensor have exactly `shape`, reusing the existing
  /// allocation when the element count already matches (contents are then
  /// left as-is); otherwise reallocates. Training scratch buffers call
  /// this every step — after the first step it never allocates.
  Tensor& ensure_shape(std::vector<std::size_t> shape);

  void fill(float value);

  /// In-place elementwise updates (shapes must match where applicable).
  Tensor& add_(const Tensor& other);
  Tensor& sub_(const Tensor& other);
  Tensor& mul_(float scalar);
  Tensor& mul_(const Tensor& other);

  /// Out-of-place helpers.
  Tensor add(const Tensor& other) const;
  Tensor sub(const Tensor& other) const;
  Tensor mul(float scalar) const;

  float sum() const;
  float abs_max() const;

  /// 2-D matrix product: (m,k) x (k,n) -> (m,n). Threaded.
  Tensor matmul(const Tensor& other) const;
  /// (m,k) x (n,k)^T -> (m,n).
  Tensor matmul_transposed(const Tensor& other) const;
  /// (k,m)^T x (k,n) -> (m,n).
  Tensor transposed_matmul(const Tensor& other) const;

  /// Allocation-free variants: `out` is resized via ensure_shape (no-op
  /// after the first call with stable shapes) and must not alias either
  /// operand. With `accumulate` the product is added onto `out`.
  void matmul_into(const Tensor& other, Tensor& out,
                   bool accumulate = false) const;
  void matmul_transposed_into(const Tensor& other, Tensor& out,
                              bool accumulate = false) const;
  void transposed_matmul_into(const Tensor& other, Tensor& out,
                              bool accumulate = false) const;

  std::string shape_string() const;

 private:
  void require_rank(std::size_t r) const;

  std::vector<std::size_t> shape_;
  std::vector<float> data_;
};

/// Elementwise sign with the paper's tiebreak: sgn(0) = +1.
Tensor sign_tensor(const Tensor& x);
/// Allocation-free variant (out reuses its storage when the size matches).
void sign_tensor_into(const Tensor& x, Tensor& out);

/// True when every element differs by at most tol.
bool allclose(const Tensor& a, const Tensor& b, float tol = 1e-5f);

}  // namespace univsa
