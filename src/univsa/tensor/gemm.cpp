#include "univsa/tensor/gemm.h"

#include <algorithm>
#include <cstring>
#include <vector>

#include "univsa/common/contracts.h"
#include "univsa/common/thread_pool.h"
#include "univsa/telemetry/metrics.h"

namespace univsa {

namespace {

// Blocking parameters (BLIS-style). A KC-deep, NR-wide B sliver stays in
// L1 while an MC×KC packed A block streams from L2; MR×NR accumulators
// live in registers. MR·NR = 64 floats: four 16-lane vectors under
// AVX-512, eight under AVX2 — within register budget either way.
constexpr std::size_t kMr = 4;
constexpr std::size_t kNr = 16;
constexpr std::size_t kMc = 64;    // rows per packed A block (multiple of kMr)
constexpr std::size_t kKc = 256;   // depth per packed block
constexpr std::size_t kNc = 2048;  // cols per packed B block (multiple of kNr)

// Below this flop count the packing passes cost more than they save.
constexpr std::size_t kBlockedFlopFloor = 1u << 15;
// Below this flop count threading dispatch costs more than it saves.
constexpr std::size_t kParallelFlopFloor = 1u << 16;

inline float a_elem(GemmLayout layout, const float* a, std::size_t m,
                    std::size_t k, std::size_t i, std::size_t p) {
  return layout == GemmLayout::kTN ? a[p * m + i] : a[i * k + p];
}

inline float b_elem(GemmLayout layout, const float* b, std::size_t n,
                    std::size_t k, std::size_t p, std::size_t j) {
  return layout == GemmLayout::kNT ? b[j * k + p] : b[p * n + j];
}

// Packs A(ic..ic+mb, pc..pc+kb) into ⌈mb/MR⌉ panels of (kb × MR), rows
// beyond mb zero-filled so the micro-kernel never branches on the tail.
void pack_a(GemmLayout layout, const float* a, std::size_t m, std::size_t k,
            std::size_t ic, std::size_t mb, std::size_t pc, std::size_t kb,
            float* dst) {
  for (std::size_t ir = 0; ir < mb; ir += kMr) {
    const std::size_t rows = std::min(kMr, mb - ir);
    for (std::size_t p = 0; p < kb; ++p) {
      for (std::size_t r = 0; r < rows; ++r) {
        dst[p * kMr + r] =
            a_elem(layout, a, m, k, ic + ir + r, pc + p);
      }
      for (std::size_t r = rows; r < kMr; ++r) dst[p * kMr + r] = 0.0f;
    }
    dst += kb * kMr;
  }
}

// Packs B(pc..pc+kb, jc..jc+nb) into ⌈nb/NR⌉ panels of (kb × NR),
// columns beyond nb zero-filled.
void pack_b(GemmLayout layout, const float* b, std::size_t n, std::size_t k,
            std::size_t pc, std::size_t kb, std::size_t jc, std::size_t nb,
            float* dst) {
  for (std::size_t jr = 0; jr < nb; jr += kNr) {
    const std::size_t cols = std::min(kNr, nb - jr);
    if (layout != GemmLayout::kNT && cols == kNr) {
      // Row-major B: the panel rows are contiguous source spans.
      const float* src = b + pc * n + jc + jr;
      for (std::size_t p = 0; p < kb; ++p) {
        std::memcpy(dst + p * kNr, src + p * n, kNr * sizeof(float));
      }
    } else {
      for (std::size_t p = 0; p < kb; ++p) {
        for (std::size_t c = 0; c < cols; ++c) {
          dst[p * kNr + c] =
              b_elem(layout, b, n, k, pc + p, jc + jr + c);
        }
        for (std::size_t c = cols; c < kNr; ++c) dst[p * kNr + c] = 0.0f;
      }
    }
    dst += kb * kNr;
  }
}

// MR×NR register tile over a kb-deep packed panel pair. `mr`/`nr` bound
// the writeback for edge tiles; the arithmetic always runs at full width
// against the zero-padded panels.
//
// The kernel is written with compiler vector extensions (one NR-wide
// vector per tile row) because scalar loops here tempt GCC's SLP pass
// into shuffle-heavy code that loses to the naive kernels. On targets
// narrower than NR floats the compiler splits each op into native-width
// pieces, which is exactly the hand-written form.
#if defined(__GNUC__) || defined(__clang__)
typedef float VecNr __attribute__((vector_size(kNr * sizeof(float)),
                                   aligned(alignof(float))));

void micro_kernel(std::size_t kb, const float* ap, const float* bp, float* c,
                  std::size_t ldc, std::size_t mr, std::size_t nr,
                  bool accumulate) {
  static_assert(kMr == 4, "micro_kernel is written for MR == 4");
  VecNr acc0{}, acc1{}, acc2{}, acc3{};
  for (std::size_t p = 0; p < kb; ++p) {
    const float* arow = ap + p * kMr;
    VecNr bv;
    __builtin_memcpy(&bv, bp + p * kNr, sizeof(bv));
    acc0 += arow[0] * bv;
    acc1 += arow[1] * bv;
    acc2 += arow[2] * bv;
    acc3 += arow[3] * bv;
  }
  if (nr == kNr) {
    const VecNr* rows[kMr] = {&acc0, &acc1, &acc2, &acc3};
    for (std::size_t i = 0; i < mr; ++i) {
      float* ci = c + i * ldc;
      if (accumulate) {
        VecNr cv;
        __builtin_memcpy(&cv, ci, sizeof(cv));
        cv += *rows[i];
        __builtin_memcpy(ci, &cv, sizeof(cv));
      } else {
        __builtin_memcpy(ci, rows[i], sizeof(VecNr));
      }
    }
    return;
  }
  float tile[kMr][kNr];
  __builtin_memcpy(tile[0], &acc0, sizeof(acc0));
  __builtin_memcpy(tile[1], &acc1, sizeof(acc1));
  __builtin_memcpy(tile[2], &acc2, sizeof(acc2));
  __builtin_memcpy(tile[3], &acc3, sizeof(acc3));
  for (std::size_t i = 0; i < mr; ++i) {
    for (std::size_t j = 0; j < nr; ++j) {
      if (accumulate) {
        c[i * ldc + j] += tile[i][j];
      } else {
        c[i * ldc + j] = tile[i][j];
      }
    }
  }
}
#else
void micro_kernel(std::size_t kb, const float* ap, const float* bp, float* c,
                  std::size_t ldc, std::size_t mr, std::size_t nr,
                  bool accumulate) {
  float acc[kMr][kNr] = {};
  for (std::size_t p = 0; p < kb; ++p) {
    const float* arow = ap + p * kMr;
    const float* brow = bp + p * kNr;
    for (std::size_t i = 0; i < kMr; ++i) {
      const float ai = arow[i];
      for (std::size_t j = 0; j < kNr; ++j) acc[i][j] += ai * brow[j];
    }
  }
  for (std::size_t i = 0; i < mr; ++i) {
    for (std::size_t j = 0; j < nr; ++j) {
      if (accumulate) {
        c[i * ldc + j] += acc[i][j];
      } else {
        c[i * ldc + j] = acc[i][j];
      }
    }
  }
}
#endif

void gemm_blocked(GemmLayout layout, std::size_t m, std::size_t n,
                  std::size_t k, const float* a, const float* b, float* c,
                  bool accumulate, bool parallel) {
  // Packed-B block is shared read-only across row-block workers; packed-A
  // blocks are per-thread. thread_local keeps both allocation-free in
  // steady state (resize only ever grows the capacity).
  static thread_local std::vector<float> tl_pack_b;

  for (std::size_t jc = 0; jc < n; jc += kNc) {
    const std::size_t nb = std::min(kNc, n - jc);
    const std::size_t n_panels = (nb + kNr - 1) / kNr;
    for (std::size_t pc = 0; pc < k; pc += kKc) {
      const std::size_t kb = std::min(kKc, k - pc);
      if (tl_pack_b.size() < n_panels * kb * kNr) {
        tl_pack_b.resize(n_panels * kb * kNr);
      }
      pack_b(layout, b, n, k, pc, kb, jc, nb, tl_pack_b.data());
      const float* packed_b = tl_pack_b.data();
      const bool acc_block = accumulate || pc > 0;

      const std::size_t m_blocks = (m + kMc - 1) / kMc;
      const auto run_blocks = [&](std::size_t blk_begin,
                                  std::size_t blk_end) {
        static thread_local std::vector<float> tl_pack_a;
        for (std::size_t blk = blk_begin; blk < blk_end; ++blk) {
          const std::size_t ic = blk * kMc;
          const std::size_t mb = std::min(kMc, m - ic);
          const std::size_t m_panels = (mb + kMr - 1) / kMr;
          if (tl_pack_a.size() < m_panels * kb * kMr) {
            tl_pack_a.resize(m_panels * kb * kMr);
          }
          pack_a(layout, a, m, k, ic, mb, pc, kb, tl_pack_a.data());
          for (std::size_t jp = 0; jp < n_panels; ++jp) {
            const std::size_t nr = std::min(kNr, nb - jp * kNr);
            const float* bp = packed_b + jp * kb * kNr;
            for (std::size_t ip = 0; ip < m_panels; ++ip) {
              const std::size_t mr = std::min(kMr, mb - ip * kMr);
              micro_kernel(kb, tl_pack_a.data() + ip * kb * kMr, bp,
                           c + (ic + ip * kMr) * n + jc + jp * kNr, n, mr,
                           nr, acc_block);
            }
          }
        }
      };
      if (parallel && m_blocks > 1) {
        global_pool().parallel_for(m_blocks, run_blocks);
      } else {
        run_blocks(0, m_blocks);
      }
    }
  }
}

// Unit-stride fallback for products too small to amortize packing. Dense
// on purpose — no per-element zero skip (see header).
void gemm_small_rows(GemmLayout layout, std::size_t row_begin,
                     std::size_t row_end, std::size_t m, std::size_t n,
                     std::size_t k, const float* a, const float* b, float* c,
                     bool accumulate) {
  switch (layout) {
    case GemmLayout::kNN:
      for (std::size_t i = row_begin; i < row_end; ++i) {
        float* ci = c + i * n;
        if (!accumulate) std::memset(ci, 0, n * sizeof(float));
        const float* ai = a + i * k;
        for (std::size_t p = 0; p < k; ++p) {
          const float aip = ai[p];
          const float* bp = b + p * n;
          for (std::size_t j = 0; j < n; ++j) ci[j] += aip * bp[j];
        }
      }
      break;
    case GemmLayout::kNT:
      for (std::size_t i = row_begin; i < row_end; ++i) {
        const float* ai = a + i * k;
        float* ci = c + i * n;
        for (std::size_t j = 0; j < n; ++j) {
          const float* bj = b + j * k;
          float acc = 0.0f;
          for (std::size_t p = 0; p < k; ++p) acc += ai[p] * bj[p];
          ci[j] = accumulate ? ci[j] + acc : acc;
        }
      }
      break;
    case GemmLayout::kTN:
      for (std::size_t i = row_begin; i < row_end; ++i) {
        float* ci = c + i * n;
        if (!accumulate) std::memset(ci, 0, n * sizeof(float));
        for (std::size_t p = 0; p < k; ++p) {
          const float api = a[p * m + i];
          const float* bp = b + p * n;
          for (std::size_t j = 0; j < n; ++j) ci[j] += api * bp[j];
        }
      }
      break;
  }
}

}  // namespace

void gemm(GemmLayout layout, std::size_t m, std::size_t n, std::size_t k,
          const float* a, const float* b, float* c, bool accumulate) {
  UNIVSA_REQUIRE(a != nullptr && b != nullptr && c != nullptr,
                 "gemm null operand");
  if (m == 0 || n == 0) return;
  if (k == 0) {
    if (!accumulate) std::memset(c, 0, m * n * sizeof(float));
    return;
  }

  const std::size_t flops = m * n * k;
  const bool parallel = flops >= kParallelFlopFloor;
  const auto dispatch = [&] {
    if (flops >= kBlockedFlopFloor && k >= 4) {
      gemm_blocked(layout, m, n, k, a, b, c, accumulate, parallel);
      return;
    }
    const auto run = [&](std::size_t begin, std::size_t end) {
      gemm_small_rows(layout, begin, end, m, n, k, a, b, c, accumulate);
    };
    if (parallel) {
      global_pool().parallel_for(m, run);
    } else {
      run(0, m);
    }
  };

  // gemm.ns_total lets the trainer attribute an epoch's wall time to the
  // GEMM kernels (the counter delta across the epoch); the histogram
  // shows the per-call size mix. Two clock reads per call — noise even
  // for the smallest dispatched GEMMs.
  if (telemetry::kCompiledIn && telemetry::enabled()) {
    static telemetry::LatencyHistogram& hist =
        telemetry::histogram("gemm.ns");
    static telemetry::Counter& ns_total =
        telemetry::counter("gemm.ns_total");
    const std::uint64_t t0 = telemetry::now_ns();
    dispatch();
    const std::uint64_t dt = telemetry::now_ns() - t0;
    hist.record(dt);
    ns_total.add(dt);
    return;
  }
  dispatch();
}

}  // namespace univsa
