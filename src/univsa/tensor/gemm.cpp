#include "univsa/tensor/gemm.h"

#include <algorithm>
#include <cstring>
#include <vector>

#include "univsa/common/contracts.h"
#include "univsa/common/thread_pool.h"

namespace univsa {

namespace {

// Rows of C are independent, so we parallelize over m and keep the inner
// loops in forms the compiler auto-vectorizes (unit-stride over n or k).

void gemm_nn_rows(std::size_t row_begin, std::size_t row_end, std::size_t n,
                  std::size_t k, const float* a, const float* b, float* c) {
  for (std::size_t i = row_begin; i < row_end; ++i) {
    float* ci = c + i * n;
    std::memset(ci, 0, n * sizeof(float));
    const float* ai = a + i * k;
    for (std::size_t p = 0; p < k; ++p) {
      const float aip = ai[p];
      if (aip == 0.0f) continue;
      const float* bp = b + p * n;
      for (std::size_t j = 0; j < n; ++j) ci[j] += aip * bp[j];
    }
  }
}

void gemm_nt_rows(std::size_t row_begin, std::size_t row_end, std::size_t n,
                  std::size_t k, const float* a, const float* b, float* c) {
  for (std::size_t i = row_begin; i < row_end; ++i) {
    const float* ai = a + i * k;
    float* ci = c + i * n;
    for (std::size_t j = 0; j < n; ++j) {
      const float* bj = b + j * k;
      float acc = 0.0f;
      for (std::size_t p = 0; p < k; ++p) acc += ai[p] * bj[p];
      ci[j] = acc;
    }
  }
}

void gemm_tn_rows(std::size_t row_begin, std::size_t row_end, std::size_t n,
                  std::size_t k, std::size_t m, const float* a,
                  const float* b, float* c) {
  // A is (k, m): column i of A is strided; accumulate row-by-row of A/B so
  // the inner loop stays unit-stride over n.
  for (std::size_t i = row_begin; i < row_end; ++i) {
    float* ci = c + i * n;
    std::memset(ci, 0, n * sizeof(float));
    for (std::size_t p = 0; p < k; ++p) {
      const float api = a[p * m + i];
      if (api == 0.0f) continue;
      const float* bp = b + p * n;
      for (std::size_t j = 0; j < n; ++j) ci[j] += api * bp[j];
    }
  }
}

}  // namespace

void gemm(GemmLayout layout, std::size_t m, std::size_t n, std::size_t k,
          const float* a, const float* b, float* c) {
  UNIVSA_REQUIRE(a != nullptr && b != nullptr && c != nullptr,
                 "gemm null operand");
  if (m == 0 || n == 0) return;
  if (k == 0) {
    std::memset(c, 0, m * n * sizeof(float));
    return;
  }

  const auto run = [&](std::size_t begin, std::size_t end) {
    switch (layout) {
      case GemmLayout::kNN:
        gemm_nn_rows(begin, end, n, k, a, b, c);
        break;
      case GemmLayout::kNT:
        gemm_nt_rows(begin, end, n, k, a, b, c);
        break;
      case GemmLayout::kTN:
        gemm_tn_rows(begin, end, n, k, m, a, b, c);
        break;
    }
  };

  // Only thread when there is enough work to amortize the dispatch.
  const std::size_t flops = m * n * k;
  if (flops < 1u << 16) {
    run(0, m);
  } else {
    global_pool().parallel_for(m, run);
  }
}

}  // namespace univsa
