#include "univsa/vsa/model.h"

#include <atomic>
#include <bit>

#include "univsa/common/contracts.h"
#include "univsa/common/thread_pool.h"

namespace univsa::vsa {

namespace {

BitVec pack_long_row(const Tensor& t, std::size_t row) {
  const std::size_t n = t.dim(1);
  BitVec v(n);
  for (std::size_t i = 0; i < n; ++i) {
    const float x = t.at(row, i);
    UNIVSA_REQUIRE(x == 1.0f || x == -1.0f, "expected bipolar tensor");
    v.set(i, x > 0.0f ? 1 : -1);
  }
  return v;
}

}  // namespace

Model::Model(ModelConfig config, std::vector<std::uint8_t> mask,
             const Tensor& v_high, const Tensor& v_low,
             const Tensor& kernels, const Tensor& features,
             const Tensor& class_vectors)
    : config_(config), mask_(std::move(mask)) {
  config_.validate();
  UNIVSA_REQUIRE(config_.D_H <= 32, "PackedValue supports up to 32 lanes");
  const std::size_t n = config_.features();
  const std::size_t ns = config_.sample_dim();
  UNIVSA_REQUIRE(mask_.size() == n, "mask size mismatch");
  UNIVSA_REQUIRE(v_high.rank() == 2 && v_high.dim(0) == config_.M &&
                     v_high.dim(1) == config_.D_H,
                 "v_high shape mismatch");
  UNIVSA_REQUIRE(v_low.rank() == 2 && v_low.dim(0) == config_.M &&
                     v_low.dim(1) == config_.D_L,
                 "v_low shape mismatch");
  const std::size_t kk = config_.D_K * config_.D_K;
  UNIVSA_REQUIRE(kernels.rank() == 2 && kernels.dim(0) == config_.O &&
                     kernels.dim(1) == config_.D_H * kk,
                 "kernels shape mismatch");
  UNIVSA_REQUIRE(features.rank() == 2 && features.dim(0) == config_.O &&
                     features.dim(1) == ns,
                 "feature vectors shape mismatch");
  UNIVSA_REQUIRE(class_vectors.rank() == 2 &&
                     class_vectors.dim(0) == config_.Theta * config_.C &&
                     class_vectors.dim(1) == ns,
                 "class vectors shape mismatch");

  v_high_.reserve(config_.M);
  v_low_.reserve(config_.M);
  for (std::size_t m = 0; m < config_.M; ++m) {
    BitVec h(config_.D_H);
    for (std::size_t d = 0; d < config_.D_H; ++d) {
      const float v = v_high.at(m, d);
      UNIVSA_REQUIRE(v == 1.0f || v == -1.0f, "expected bipolar values");
      h.set(d, v > 0.0f ? 1 : -1);
    }
    v_high_.push_back(std::move(h));
    BitVec l(config_.D_L);
    for (std::size_t d = 0; d < config_.D_L; ++d) {
      const float v = v_low.at(m, d);
      UNIVSA_REQUIRE(v == 1.0f || v == -1.0f, "expected bipolar values");
      l.set(d, v > 0.0f ? 1 : -1);
    }
    v_low_.push_back(std::move(l));
  }

  // Kernel tensor rows are (channel, kh, kw)-ordered like im2col; regroup
  // into per-(kh, kw) channel lane masks for the packed datapath.
  kernel_bits_.assign(config_.O, std::vector<std::uint32_t>(kk, 0));
  for (std::size_t o = 0; o < config_.O; ++o) {
    for (std::size_t ch = 0; ch < config_.D_H; ++ch) {
      for (std::size_t k = 0; k < kk; ++k) {
        const float w = kernels.at(o, ch * kk + k);
        UNIVSA_REQUIRE(w == 1.0f || w == -1.0f, "expected bipolar kernels");
        if (w > 0.0f) kernel_bits_[o][k] |= 1u << ch;
      }
    }
  }

  f_.reserve(config_.O);
  for (std::size_t o = 0; o < config_.O; ++o) {
    f_.push_back(pack_long_row(features, o));
  }
  c_.reserve(config_.Theta * config_.C);
  for (std::size_t r = 0; r < config_.Theta * config_.C; ++r) {
    c_.push_back(pack_long_row(class_vectors, r));
  }
}

Model Model::random(ModelConfig config, Rng& rng, double high_fraction) {
  config.validate();
  const std::size_t n = config.features();
  std::vector<std::uint8_t> mask(n);
  for (auto& m : mask) m = rng.bernoulli(high_fraction) ? 1 : 0;
  const std::size_t kk = config.D_K * config.D_K;
  return Model(config, std::move(mask),
               Tensor::rand_sign({config.M, config.D_H}, rng),
               Tensor::rand_sign({config.M, config.D_L}, rng),
               Tensor::rand_sign({config.O, config.D_H * kk}, rng),
               Tensor::rand_sign({config.O, config.sample_dim()}, rng),
               Tensor::rand_sign({config.Theta * config.C,
                                  config.sample_dim()}, rng));
}

std::vector<PackedValue> Model::project_values(
    const std::vector<std::uint16_t>& values) const {
  const std::size_t n = config_.features();
  UNIVSA_REQUIRE(values.size() == n, "feature count mismatch");
  std::vector<PackedValue> volume(n);
  const std::uint32_t high_valid =
      config_.D_H == 32 ? ~0u : (1u << config_.D_H) - 1;
  const std::uint32_t low_valid = (1u << config_.D_L) - 1;

  for (std::size_t i = 0; i < n; ++i) {
    UNIVSA_REQUIRE(values[i] < config_.M, "value exceeds M levels");
    PackedValue& pv = volume[i];
    if (mask_[i]) {
      const BitVec& v = v_high_[values[i]];
      pv.valid = high_valid;
      pv.bits = static_cast<std::uint32_t>(v.words()[0]);
    } else {
      const BitVec& v = v_low_[values[i]];
      pv.valid = low_valid;
      pv.bits = static_cast<std::uint32_t>(v.words()[0]) & low_valid;
    }
  }
  return volume;
}

std::vector<std::vector<long long>> Model::convolve_raw(
    const std::vector<PackedValue>& volume) const {
  const std::size_t h = config_.W;
  const std::size_t w = config_.L;
  UNIVSA_REQUIRE(volume.size() == h * w, "volume size mismatch");
  const std::size_t k = config_.D_K;
  const long pad = static_cast<long>(k / 2);

  std::vector<std::vector<long long>> raw(
      config_.O, std::vector<long long>(h * w, 0));

  for (std::size_t y = 0; y < h; ++y) {
    for (std::size_t x = 0; x < w; ++x) {
      // Gather the patch once; all O kernels reuse it.
      for (std::size_t o = 0; o < config_.O; ++o) {
        long long acc = 0;
        const auto& kb = kernel_bits_[o];
        for (std::size_t kh = 0; kh < k; ++kh) {
          const long sy = static_cast<long>(y) + static_cast<long>(kh) - pad;
          if (sy < 0 || sy >= static_cast<long>(h)) continue;
          for (std::size_t kw = 0; kw < k; ++kw) {
            const long sx =
                static_cast<long>(x) + static_cast<long>(kw) - pad;
            if (sx < 0 || sx >= static_cast<long>(w)) continue;
            const PackedValue& pv =
                volume[static_cast<std::size_t>(sy) * w +
                       static_cast<std::size_t>(sx)];
            const std::uint32_t kbits = kb[kh * k + kw];
            const std::uint32_t agree = ~(pv.bits ^ kbits) & pv.valid;
            acc += 2LL * std::popcount(agree) -
                   static_cast<long long>(std::popcount(pv.valid));
          }
        }
        raw[o][y * w + x] = acc;
      }
    }
  }
  return raw;
}

std::vector<BitVec> Model::convolve(
    const std::vector<PackedValue>& volume) const {
  const auto raw = convolve_raw(volume);
  std::vector<BitVec> out;
  out.reserve(config_.O);
  for (const auto& channel : raw) {
    BitVec u(channel.size());
    for (std::size_t j = 0; j < channel.size(); ++j) {
      u.set(j, channel[j] >= 0 ? 1 : -1);
    }
    out.push_back(std::move(u));
  }
  return out;
}

BitVec Model::encode_channels(const std::vector<BitVec>& conv_out) const {
  UNIVSA_REQUIRE(conv_out.size() == config_.O, "channel count mismatch");
  const std::size_t ns = config_.sample_dim();
  // Word-parallel bit-sliced bundling (equivalent to per-lane integer
  // accumulation; property-tested against BipolarAccumulator).
  BitSlicedAccumulator acc(ns);
  for (std::size_t o = 0; o < config_.O; ++o) {
    UNIVSA_REQUIRE(conv_out[o].size() == ns, "channel length mismatch");
    acc.add_bound(f_[o], conv_out[o]);
  }
  return acc.sign();
}

Prediction Model::similarity(const BitVec& sample_vector) const {
  UNIVSA_REQUIRE(sample_vector.size() == config_.sample_dim(),
                 "sample vector length mismatch");
  Prediction pred;
  pred.scores.assign(config_.C, 0);
  for (std::size_t theta = 0; theta < config_.Theta; ++theta) {
    for (std::size_t c = 0; c < config_.C; ++c) {
      pred.scores[c] += sample_vector.dot(c_[theta * config_.C + c]);
    }
  }
  // argmax with lowest-index tiebreak.
  std::size_t best = 0;
  for (std::size_t c = 1; c < config_.C; ++c) {
    if (pred.scores[c] > pred.scores[best]) best = c;
  }
  pred.label = static_cast<int>(best);
  return pred;
}

Prediction Model::similarity_hamming(const BitVec& sample_vector) const {
  UNIVSA_REQUIRE(sample_vector.size() == config_.sample_dim(),
                 "sample vector length mismatch");
  Prediction pred;
  pred.scores.assign(config_.C, 0);
  for (std::size_t theta = 0; theta < config_.Theta; ++theta) {
    for (std::size_t c = 0; c < config_.C; ++c) {
      pred.scores[c] += static_cast<long long>(
          sample_vector.hamming(c_[theta * config_.C + c]));
    }
  }
  // argmin with lowest-index tiebreak.
  std::size_t best = 0;
  for (std::size_t c = 1; c < config_.C; ++c) {
    if (pred.scores[c] < pred.scores[best]) best = c;
  }
  pred.label = static_cast<int>(best);
  return pred;
}

BitVec Model::encode(const std::vector<std::uint16_t>& values) const {
  return encode_channels(convolve(project_values(values)));
}

Prediction Model::predict(const std::vector<std::uint16_t>& values) const {
  return similarity(encode(values));
}

double Model::accuracy(const data::Dataset& dataset) const {
  UNIVSA_REQUIRE(!dataset.empty(), "empty dataset");
  UNIVSA_REQUIRE(dataset.windows() == config_.W &&
                     dataset.length() == config_.L,
                 "dataset geometry mismatch");
  std::atomic<std::size_t> correct{0};
  parallel_for(dataset.size(), [&](std::size_t begin, std::size_t end) {
    std::size_t local = 0;
    for (std::size_t i = begin; i < end; ++i) {
      if (predict(dataset.values(i)).label == dataset.label(i)) ++local;
    }
    correct.fetch_add(local);
  });
  return static_cast<double>(correct.load()) /
         static_cast<double>(dataset.size());
}

Model Model::with_class_vectors(const Tensor& class_vectors) const {
  UNIVSA_REQUIRE(class_vectors.rank() == 2 &&
                     class_vectors.dim(0) == config_.Theta * config_.C &&
                     class_vectors.dim(1) == config_.sample_dim(),
                 "class vectors shape mismatch");
  Model copy = *this;
  copy.c_.clear();
  copy.c_.reserve(config_.Theta * config_.C);
  for (std::size_t r = 0; r < config_.Theta * config_.C; ++r) {
    copy.c_.push_back(pack_long_row(class_vectors, r));
  }
  return copy;
}

bool Model::operator==(const Model& other) const {
  return config_ == other.config_ && mask_ == other.mask_ &&
         v_high_ == other.v_high_ && v_low_ == other.v_low_ &&
         kernel_bits_ == other.kernel_bits_ && f_ == other.f_ &&
         c_ == other.c_;
}

}  // namespace univsa::vsa
