#include "univsa/vsa/model.h"

#include <algorithm>
#include <bit>

#include "univsa/common/contracts.h"
#include "univsa/telemetry/trace.h"
#include "univsa/vsa/infer_engine.h"

namespace univsa::vsa {

namespace {

BitVec pack_long_row(const Tensor& t, std::size_t row) {
  const std::size_t n = t.dim(1);
  BitVec v(n);
  for (std::size_t i = 0; i < n; ++i) {
    const float x = t.at(row, i);
    UNIVSA_REQUIRE(x == 1.0f || x == -1.0f, "expected bipolar tensor");
    v.set(i, x > 0.0f ? 1 : -1);
  }
  return v;
}

/// Valid-lane mask for a value-vector width; `dim == 32` needs the guard
/// because `1u << 32` is undefined behavior.
std::uint32_t lane_mask(std::size_t dim) {
  return dim == 32 ? ~0u : (1u << dim) - 1;
}

/// Deposits a D_H-lane field at flat bit position `bitpos` of the
/// flattened tap-major patch/kernel layout. `bits` has no lanes set at or
/// above `width` (BitVec/lane-mask invariants), so fields never overlap.
inline void insert_field(std::uint64_t* words, std::size_t bitpos,
                         std::uint32_t bits, std::size_t width) {
  const std::size_t wd = bitpos >> 6;
  const std::size_t off = bitpos & 63;
  words[wd] |= static_cast<std::uint64_t>(bits) << off;
  if (off + width > 64) {
    words[wd + 1] |= static_cast<std::uint64_t>(bits) >> (64 - off);
  }
}

}  // namespace

void InferScratch::resize(const ModelConfig& config) {
  config.validate();
  const std::size_t kk = config.D_K * config.D_K;
  volume.resize(config.features());
  words_per_patch = (kk * config.D_H + 63) / 64;
  patch_words.resize(words_per_patch);
  kernel_words.resize(config.O * words_per_patch);
  kernel_acc.resize(config.O);
  valid_words.resize(config.features() * words_per_patch);
  valid_halves.resize(config.features());
  packed_model = nullptr;  // tables must be repacked after a resize
  words_per_channel = (config.sample_dim() + 63) / 64;
  conv_words.resize(config.O * words_per_channel);
  if (sample.size() != config.sample_dim()) {
    sample = BitVec(config.sample_dim());
  }
  prediction.scores.assign(config.C, 0);
}

Model::Model(ModelConfig config, std::vector<std::uint8_t> mask,
             const Tensor& v_high, const Tensor& v_low,
             const Tensor& kernels, const Tensor& features,
             const Tensor& class_vectors)
    : config_(config), mask_(std::move(mask)) {
  config_.validate();
  UNIVSA_REQUIRE(config_.D_H <= 32, "PackedValue supports up to 32 lanes");
  const std::size_t n = config_.features();
  const std::size_t ns = config_.sample_dim();
  UNIVSA_REQUIRE(mask_.size() == n, "mask size mismatch");
  UNIVSA_REQUIRE(v_high.rank() == 2 && v_high.dim(0) == config_.M &&
                     v_high.dim(1) == config_.D_H,
                 "v_high shape mismatch");
  UNIVSA_REQUIRE(v_low.rank() == 2 && v_low.dim(0) == config_.M &&
                     v_low.dim(1) == config_.D_L,
                 "v_low shape mismatch");
  const std::size_t kk = config_.D_K * config_.D_K;
  UNIVSA_REQUIRE(kernels.rank() == 2 && kernels.dim(0) == config_.O &&
                     kernels.dim(1) == config_.D_H * kk,
                 "kernels shape mismatch");
  UNIVSA_REQUIRE(features.rank() == 2 && features.dim(0) == config_.O &&
                     features.dim(1) == ns,
                 "feature vectors shape mismatch");
  UNIVSA_REQUIRE(class_vectors.rank() == 2 &&
                     class_vectors.dim(0) == config_.Theta * config_.C &&
                     class_vectors.dim(1) == ns,
                 "class vectors shape mismatch");

  v_high_.reserve(config_.M);
  v_low_.reserve(config_.M);
  for (std::size_t m = 0; m < config_.M; ++m) {
    BitVec h(config_.D_H);
    for (std::size_t d = 0; d < config_.D_H; ++d) {
      const float v = v_high.at(m, d);
      UNIVSA_REQUIRE(v == 1.0f || v == -1.0f, "expected bipolar values");
      h.set(d, v > 0.0f ? 1 : -1);
    }
    v_high_.push_back(std::move(h));
    BitVec l(config_.D_L);
    for (std::size_t d = 0; d < config_.D_L; ++d) {
      const float v = v_low.at(m, d);
      UNIVSA_REQUIRE(v == 1.0f || v == -1.0f, "expected bipolar values");
      l.set(d, v > 0.0f ? 1 : -1);
    }
    v_low_.push_back(std::move(l));
  }

  // Kernel tensor rows are (channel, kh, kw)-ordered like im2col; regroup
  // into per-(kh, kw) channel lane masks for the packed datapath.
  kernel_bits_.assign(config_.O, std::vector<std::uint32_t>(kk, 0));
  for (std::size_t o = 0; o < config_.O; ++o) {
    for (std::size_t ch = 0; ch < config_.D_H; ++ch) {
      for (std::size_t k = 0; k < kk; ++k) {
        const float w = kernels.at(o, ch * kk + k);
        UNIVSA_REQUIRE(w == 1.0f || w == -1.0f, "expected bipolar kernels");
        if (w > 0.0f) kernel_bits_[o][k] |= 1u << ch;
      }
    }
  }

  f_.reserve(config_.O);
  for (std::size_t o = 0; o < config_.O; ++o) {
    f_.push_back(pack_long_row(features, o));
  }
  c_.reserve(config_.Theta * config_.C);
  for (std::size_t r = 0; r < config_.Theta * config_.C; ++r) {
    c_.push_back(pack_long_row(class_vectors, r));
  }
}

Model Model::random(ModelConfig config, Rng& rng, double high_fraction) {
  config.validate();
  const std::size_t n = config.features();
  std::vector<std::uint8_t> mask(n);
  for (auto& m : mask) m = rng.bernoulli(high_fraction) ? 1 : 0;
  const std::size_t kk = config.D_K * config.D_K;
  return Model(config, std::move(mask),
               Tensor::rand_sign({config.M, config.D_H}, rng),
               Tensor::rand_sign({config.M, config.D_L}, rng),
               Tensor::rand_sign({config.O, config.D_H * kk}, rng),
               Tensor::rand_sign({config.O, config.sample_dim()}, rng),
               Tensor::rand_sign({config.Theta * config.C,
                                  config.sample_dim()}, rng));
}

void Model::project_values_into(const std::vector<std::uint16_t>& values,
                                std::vector<PackedValue>& volume) const {
  const std::size_t n = config_.features();
  UNIVSA_REQUIRE(values.size() == n, "feature count mismatch");
  volume.resize(n);
  const std::uint32_t high_valid = lane_mask(config_.D_H);
  const std::uint32_t low_valid = lane_mask(config_.D_L);

  for (std::size_t i = 0; i < n; ++i) {
    UNIVSA_REQUIRE(values[i] < config_.M, "value exceeds M levels");
    PackedValue& pv = volume[i];
    if (mask_[i]) {
      const BitVec& v = v_high_[values[i]];
      pv.valid = high_valid;
      pv.bits = static_cast<std::uint32_t>(v.words()[0]);
    } else {
      const BitVec& v = v_low_[values[i]];
      pv.valid = low_valid;
      pv.bits = static_cast<std::uint32_t>(v.words()[0]) & low_valid;
    }
  }
}

std::vector<PackedValue> Model::project_values(
    const std::vector<std::uint16_t>& values) const {
  std::vector<PackedValue> volume;
  project_values_into(values, volume);
  return volume;
}

void Model::convolve_raw_into(
    const std::vector<PackedValue>& volume,
    std::vector<std::vector<long long>>& raw) const {
  const std::size_t h = config_.W;
  const std::size_t w = config_.L;
  UNIVSA_REQUIRE(volume.size() == h * w, "volume size mismatch");
  const std::size_t k = config_.D_K;
  const std::size_t kk = k * k;
  const long pad = static_cast<long>(k / 2);

  raw.assign(config_.O, std::vector<long long>(h * w, 0));

  std::vector<std::uint32_t> pb(kk);
  std::vector<std::uint32_t> pv(kk);
  std::vector<std::size_t> tap(kk);
  for (std::size_t y = 0; y < h; ++y) {
    for (std::size_t x = 0; x < w; ++x) {
      // Gather the in-bounds taps of the (y, x) patch once; all O
      // kernels sweep the gathered entries.
      std::size_t taps = 0;
      long long valid_pop = 0;
      for (std::size_t kh = 0; kh < k; ++kh) {
        const long sy = static_cast<long>(y) + static_cast<long>(kh) - pad;
        if (sy < 0 || sy >= static_cast<long>(h)) continue;
        for (std::size_t kw = 0; kw < k; ++kw) {
          const long sx = static_cast<long>(x) + static_cast<long>(kw) - pad;
          if (sx < 0 || sx >= static_cast<long>(w)) continue;
          const PackedValue& p =
              volume[static_cast<std::size_t>(sy) * w +
                     static_cast<std::size_t>(sx)];
          pb[taps] = p.bits;
          pv[taps] = p.valid;
          tap[taps] = kh * k + kw;
          valid_pop += std::popcount(p.valid);
          ++taps;
        }
      }
      for (std::size_t o = 0; o < config_.O; ++o) {
        const auto& kb = kernel_bits_[o];
        long long matches = 0;
        for (std::size_t t = 0; t < taps; ++t) {
          matches += std::popcount(~(pb[t] ^ kb[tap[t]]) & pv[t]);
        }
        raw[o][y * w + x] = 2 * matches - valid_pop;
      }
    }
  }
}

std::vector<std::vector<long long>> Model::convolve_raw(
    const std::vector<PackedValue>& volume) const {
  std::vector<std::vector<long long>> raw;
  convolve_raw_into(volume, raw);
  return raw;
}

void Model::pack_scratch_tables(InferScratch& s) const {
  const std::size_t h = config_.W;
  const std::size_t w = config_.L;
  const std::size_t k = config_.D_K;
  const std::size_t dh = config_.D_H;
  const std::size_t pad = k / 2;
  const std::size_t pw = s.words_per_patch;

  // Kernels, flattened tap-major to mirror the patch layout, then
  // scattered word-major (word i of kernel o at kernel_words[i*O + o])
  // so the SIMD sweep reads adjacent kernels contiguously.
  std::fill(s.kernel_words.begin(), s.kernel_words.end(), 0);
  std::vector<std::uint64_t> row(pw);
  for (std::size_t o = 0; o < config_.O; ++o) {
    std::fill(row.begin(), row.end(), 0);
    for (std::size_t t = 0; t < k * k; ++t) {
      insert_field(row.data(), t * dh, kernel_bits_[o][t], dh);
    }
    for (std::size_t i = 0; i < pw; ++i) {
      s.kernel_words[i * config_.O + o] = row[i];
    }
  }

  // Validity planes: valid lanes depend only on the importance mask and
  // the patch geometry (out-of-bounds taps contribute zero lanes), never
  // on the sample values — packed once, reused for every sample.
  const std::uint32_t high_valid = lane_mask(config_.D_H);
  const std::uint32_t low_valid = lane_mask(config_.D_L);
  std::fill(s.valid_words.begin(), s.valid_words.end(), 0);
  for (std::size_t y = 0; y < h; ++y) {
    for (std::size_t x = 0; x < w; ++x) {
      std::uint64_t* vw = s.valid_words.data() + (y * w + x) * pw;
      long long pop = 0;
      for (std::size_t kh = 0; kh < k; ++kh) {
        const long sy = static_cast<long>(y + kh) - static_cast<long>(pad);
        if (sy < 0 || sy >= static_cast<long>(h)) continue;
        for (std::size_t kw = 0; kw < k; ++kw) {
          const long sx = static_cast<long>(x + kw) - static_cast<long>(pad);
          if (sx < 0 || sx >= static_cast<long>(w)) continue;
          const std::size_t i =
              static_cast<std::size_t>(sy) * w + static_cast<std::size_t>(sx);
          const std::uint32_t valid = mask_[i] ? high_valid : low_valid;
          insert_field(vw, (kh * k + kw) * dh, valid, dh);
          pop += std::popcount(valid);
        }
      }
      s.valid_halves[y * w + x] = (pop + 1) >> 1;
    }
  }
  s.packed_model = this;
}

void Model::convolve_into(const std::vector<PackedValue>& volume,
                          InferScratch& s) const {
  const std::size_t h = config_.W;
  const std::size_t w = config_.L;
  UNIVSA_REQUIRE(volume.size() == h * w, "volume size mismatch");
  const std::size_t k = config_.D_K;
  const std::size_t dh = config_.D_H;
  const std::size_t pad = k / 2;
  const std::size_t wp = s.words_per_channel;
  const std::size_t pw = s.words_per_patch;
  UNIVSA_REQUIRE(wp == (h * w + 63) / 64 &&
                     s.conv_words.size() == config_.O * wp &&
                     pw == (k * k * dh + 63) / 64,
                 "scratch not sized for this model");
  if (s.packed_model != this) pack_scratch_tables(s);

  std::fill(s.conv_words.begin(), s.conv_words.end(), 0);
  std::uint64_t* pb = s.patch_words.data();
  std::uint64_t* cw = s.conv_words.data();
  const std::uint64_t* kernels = s.kernel_words.data();
  std::uint32_t* acc = s.kernel_acc.data();
  const std::size_t O = config_.O;
  const simd::Kernels& isa =
      s.simd_kernels != nullptr ? *s.simd_kernels : simd::active();

  // Sweeps all O pre-packed kernels over the flattened patch in pb and
  // sets each channel's sign bit for position j (the Sec. IV-A
  // kernel-parallel order): one fused SIMD sweep produces the per-kernel
  // match counts, then the bit is 1 iff acc >= ceil(valid_pop/2), i.e.
  // raw = 2*acc - valid_pop >= 0 with sgn(0) = +1; the set is branchless
  // because the outcome is data-random (~50/50).
  const auto sweep = [&](std::size_t j) {
    const std::uint64_t* vw = s.valid_words.data() + j * pw;
    const long long half = s.valid_halves[j];
    const std::size_t word = j >> 6;
    const std::size_t shift = j & 63;
    isa.masked_xnor_popcount_sweep(pb, vw, kernels, pw, O, acc);
    for (std::size_t o = 0; o < O; ++o) {
      cw[o * wp + word] |=
          static_cast<std::uint64_t>(acc[o] >= half) << shift;
    }
  };

  // Border positions: bounds-checked gather of the in-bounds taps only
  // (the validity plane already zeroes the out-of-bounds lanes).
  const auto border_position = [&](std::size_t y, std::size_t x) {
    std::fill_n(pb, pw, 0);
    for (std::size_t kh = 0; kh < k; ++kh) {
      const long sy = static_cast<long>(y + kh) - static_cast<long>(pad);
      if (sy < 0 || sy >= static_cast<long>(h)) continue;
      for (std::size_t kw = 0; kw < k; ++kw) {
        const long sx = static_cast<long>(x + kw) - static_cast<long>(pad);
        if (sx < 0 || sx >= static_cast<long>(w)) continue;
        const PackedValue& p =
            volume[static_cast<std::size_t>(sy) * w +
                   static_cast<std::size_t>(sx)];
        insert_field(pb, (kh * k + kw) * dh, p.bits, dh);
      }
    }
    sweep(y * w + x);
  };

  for (std::size_t y = 0; y < h; ++y) {
    const bool row_interior = y >= pad && y + pad < h;
    if (!row_interior || w < k) {
      for (std::size_t x = 0; x < w; ++x) border_position(y, x);
      continue;
    }
    std::size_t x = 0;
    for (; x < pad; ++x) border_position(y, x);
    for (; x + pad < w; ++x) {
      // Interior: every tap in bounds — gather the full patch through
      // row pointers with no bounds checks, once for all O kernels.
      std::fill_n(pb, pw, 0);
      std::size_t t = 0;
      for (std::size_t kh = 0; kh < k; ++kh) {
        const PackedValue* row = volume.data() + (y + kh - pad) * w + x - pad;
        for (std::size_t kw = 0; kw < k; ++kw, ++t) {
          insert_field(pb, t * dh, row[kw].bits, dh);
        }
      }
      sweep(y * w + x);
    }
    for (; x < w; ++x) border_position(y, x);
  }
}

std::vector<BitVec> Model::convolve(
    const std::vector<PackedValue>& volume) const {
  InferScratch s(config_);
  convolve_into(volume, s);
  const std::size_t ns = config_.sample_dim();
  std::vector<BitVec> out;
  out.reserve(config_.O);
  for (std::size_t o = 0; o < config_.O; ++o) {
    BitVec u(ns);
    auto words = u.words_mut();
    std::copy_n(s.conv_words.begin() +
                    static_cast<std::ptrdiff_t>(o * s.words_per_channel),
                s.words_per_channel, words.begin());
    out.push_back(std::move(u));
  }
  return out;
}

BitVec Model::encode_channels(const std::vector<BitVec>& conv_out) const {
  UNIVSA_REQUIRE(conv_out.size() == config_.O, "channel count mismatch");
  const std::size_t ns = config_.sample_dim();
  // Word-parallel bit-sliced bundling (equivalent to per-lane integer
  // accumulation; property-tested against BipolarAccumulator).
  BitSlicedAccumulator acc(ns);
  for (std::size_t o = 0; o < config_.O; ++o) {
    UNIVSA_REQUIRE(conv_out[o].size() == ns, "channel length mismatch");
    acc.add_bound(f_[o], conv_out[o]);
  }
  return acc.sign();
}

void Model::encode_into(InferScratch& s) const {
  const std::size_t ns = config_.sample_dim();
  const std::size_t wp = s.words_per_channel;
  const std::size_t rows = config_.O;
  UNIVSA_REQUIRE(s.sample.size() == ns && s.conv_words.size() == rows * wp,
                 "scratch not sized for this model");
  auto sw = s.sample.words_mut();
  // Per 64-position word: bit-sliced agreement counters across the O
  // channel rows, then a word-parallel count >= ceil(O/2) compare
  // (2·count >= O with sgn(0) = +1, same rule as BitSlicedAccumulator).
  const std::size_t planes = std::bit_width(rows);
  const std::uint64_t threshold = (rows + 1) >> 1;
  std::uint64_t cnt[64];
  for (std::size_t wd = 0; wd < wp; ++wd) {
    for (std::size_t p = 0; p < planes; ++p) cnt[p] = 0;
    for (std::size_t o = 0; o < rows; ++o) {
      std::uint64_t carry = ~(s.conv_words[o * wp + wd] ^ f_[o].words()[wd]);
      for (std::size_t p = 0; p < planes && carry; ++p) {
        const std::uint64_t next = cnt[p] & carry;
        cnt[p] ^= carry;
        carry = next;
      }
    }
    // MSB-first lane-parallel compare of the counters against threshold.
    std::uint64_t ge = 0;
    std::uint64_t decided = 0;
    for (std::size_t p = planes; p-- > 0;) {
      if ((threshold >> p) & 1) {
        decided |= ~cnt[p];
      } else {
        const std::uint64_t g = cnt[p] & ~decided;
        ge |= g;
        decided |= g;
      }
    }
    ge |= ~decided;  // undecided lanes have count == threshold
    sw[wd] = ge;
  }
  // Keep the BitVec padding invariant (lanes beyond ns stay zero).
  const std::size_t rem = ns % 64;
  if (rem != 0 && wp > 0) sw[wp - 1] &= (1ULL << rem) - 1;
}

void Model::similarity_into(const BitVec& sample_vector,
                            Prediction& out) const {
  similarity_into(sample_vector, out, simd::active());
}

void Model::similarity_into(const BitVec& sample_vector, Prediction& out,
                            const simd::Kernels& kernels) const {
  const std::size_t ns = config_.sample_dim();
  UNIVSA_REQUIRE(sample_vector.size() == ns,
                 "sample vector length mismatch");
  out.scores.assign(config_.C, 0);
  const auto sw = sample_vector.words();
  const long long pad_lanes =
      static_cast<long long>(sw.size() * 64 - ns);
  // One XNOR+popcount sweep per class row; the Θ voter rows of a class
  // accumulate into the same score.
  for (std::size_t theta = 0; theta < config_.Theta; ++theta) {
    for (std::size_t c = 0; c < config_.C; ++c) {
      const auto cw = c_[theta * config_.C + c].words();
      const long long matches = static_cast<long long>(
          kernels.xnor_popcount(sw.data(), cw.data(), sw.size()));
      // XNOR also matches the zero padding lanes; remove them.
      out.scores[c] +=
          2 * (matches - pad_lanes) - static_cast<long long>(ns);
    }
  }
  // argmax with lowest-index tiebreak.
  std::size_t best = 0;
  for (std::size_t c = 1; c < config_.C; ++c) {
    if (out.scores[c] > out.scores[best]) best = c;
  }
  out.label = static_cast<int>(best);
}

Prediction Model::similarity(const BitVec& sample_vector) const {
  Prediction pred;
  similarity_into(sample_vector, pred);
  return pred;
}

Prediction Model::similarity_hamming(const BitVec& sample_vector) const {
  UNIVSA_REQUIRE(sample_vector.size() == config_.sample_dim(),
                 "sample vector length mismatch");
  Prediction pred;
  pred.scores.assign(config_.C, 0);
  for (std::size_t theta = 0; theta < config_.Theta; ++theta) {
    for (std::size_t c = 0; c < config_.C; ++c) {
      pred.scores[c] += static_cast<long long>(
          sample_vector.hamming(c_[theta * config_.C + c]));
    }
  }
  // argmin with lowest-index tiebreak.
  std::size_t best = 0;
  for (std::size_t c = 1; c < config_.C; ++c) {
    if (pred.scores[c] < pred.scores[best]) best = c;
  }
  pred.label = static_cast<int>(best);
  return pred;
}

void Model::predict_into(const std::vector<std::uint16_t>& values,
                         InferScratch& scratch) const {
  const simd::Kernels& kernels = scratch.simd_kernels != nullptr
                                     ? *scratch.simd_kernels
                                     : simd::active();
  project_values_into(values, scratch.volume);
  convolve_into(scratch.volume, scratch);
  encode_into(scratch);
  similarity_into(scratch.sample, scratch.prediction, kernels);
}

void Model::predict_into_traced(const std::vector<std::uint16_t>& values,
                                InferScratch& scratch) const {
  const simd::Kernels& kernels = scratch.simd_kernels != nullptr
                                     ? *scratch.simd_kernels
                                     : simd::active();
  {
    UNIVSA_SPAN("stage.dvp");
    project_values_into(values, scratch.volume);
  }
  {
    UNIVSA_SPAN("stage.biconv");
    convolve_into(scratch.volume, scratch);
  }
  {
    UNIVSA_SPAN("stage.encoding");
    encode_into(scratch);
  }
  {
    UNIVSA_SPAN("stage.similarity");
    similarity_into(scratch.sample, scratch.prediction, kernels);
  }
}

BitVec Model::encode(const std::vector<std::uint16_t>& values) const {
  InferScratch s(config_);
  project_values_into(values, s.volume);
  convolve_into(s.volume, s);
  encode_into(s);
  return std::move(s.sample);
}

Prediction Model::predict(const std::vector<std::uint16_t>& values) const {
  InferScratch s(config_);
  predict_into(values, s);
  return std::move(s.prediction);
}

Prediction Model::predict_reference(
    const std::vector<std::uint16_t>& values) const {
  std::vector<PackedValue> volume;
  {
    UNIVSA_SPAN("reference.dvp");
    volume = project_values(values);
  }
  std::vector<BitVec> conv;
  {
    UNIVSA_SPAN("reference.biconv");
    const auto raw = convolve_raw(volume);
    conv.reserve(config_.O);
    for (const auto& channel : raw) {
      BitVec u(channel.size());
      for (std::size_t j = 0; j < channel.size(); ++j) {
        u.set(j, channel[j] >= 0 ? 1 : -1);
      }
      conv.push_back(std::move(u));
    }
  }
  BitVec s;
  {
    UNIVSA_SPAN("reference.encoding");
    s = encode_channels(conv);
  }
  UNIVSA_SPAN("reference.similarity");
  Prediction pred;
  pred.scores.assign(config_.C, 0);
  for (std::size_t theta = 0; theta < config_.Theta; ++theta) {
    for (std::size_t c = 0; c < config_.C; ++c) {
      pred.scores[c] += s.dot(c_[theta * config_.C + c]);
    }
  }
  std::size_t best = 0;
  for (std::size_t c = 1; c < config_.C; ++c) {
    if (pred.scores[c] > pred.scores[best]) best = c;
  }
  pred.label = static_cast<int>(best);
  return pred;
}

double Model::accuracy(const data::Dataset& dataset) const {
  InferEngine engine(*this);
  return engine.accuracy(dataset);
}

Model Model::with_class_vectors(const Tensor& class_vectors) const {
  UNIVSA_REQUIRE(class_vectors.rank() == 2 &&
                     class_vectors.dim(0) == config_.Theta * config_.C &&
                     class_vectors.dim(1) == config_.sample_dim(),
                 "class vectors shape mismatch");
  Model copy = *this;
  copy.c_.clear();
  copy.c_.reserve(config_.Theta * config_.C);
  for (std::size_t r = 0; r < config_.Theta * config_.C; ++r) {
    copy.c_.push_back(pack_long_row(class_vectors, r));
  }
  return copy;
}

bool Model::operator==(const Model& other) const {
  return config_ == other.config_ && mask_ == other.mask_ &&
         v_high_ == other.v_high_ && v_low_ == other.v_low_ &&
         kernel_bits_ == other.kernel_bits_ && f_ == other.f_ &&
         c_ == other.c_;
}

}  // namespace univsa::vsa
