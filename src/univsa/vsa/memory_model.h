// Closed-form memory (Eq. 5) and resource (Eq. 6) models, and the
// hardware penalty L_HW (Eq. 7) used by the configuration search.
//
// Eq. 5 reproduces every UniVSA memory figure of Table II bit-for-bit
// (verified in tests/vsa/memory_model_test.cpp). KB here means decimal
// kilobytes (1000 B), the convention the paper's tables use.
//
// The same header also provides the memory accounting conventions the
// paper applies to the comparison methods in Table II:
//   LDC   — (N + C)·D bits plus a 1040-bit ValueBox MLP
//            (reproduces the LDC column of Table II to ±0.01 KB),
//   LeHDC — (N + M + C)·D bits (reproduces the LeHDC column exactly),
//   LDA   — 32-bit float projection, 32·C·N bits (reproduces the LDA
//            column exactly).
#pragma once

#include <cstddef>

#include "univsa/vsa/model_config.h"

namespace univsa::vsa {

/// Per-component memory breakdown in bits (Eq. 5 terms).
struct MemoryBreakdown {
  std::size_t value_vectors = 0;    ///< V:  M · (D_H + D_L)
  std::size_t conv_kernels = 0;     ///< K:  O · D_H · D_K²
  std::size_t feature_vectors = 0;  ///< F:  W · L · O
  std::size_t class_vectors = 0;    ///< C:  W · L · Θ · C

  std::size_t total_bits() const {
    return value_vectors + conv_kernels + feature_vectors + class_vectors;
  }
};

MemoryBreakdown memory_breakdown(const ModelConfig& config);

/// Eq. 5 total in bits.
std::size_t memory_bits(const ModelConfig& config);

/// Eq. 5 total in decimal kilobytes (bits / 8 / 1000).
double memory_kb(const ModelConfig& config);

/// Eq. 6: Resource ≈ β · D_K · O · D_H, returned with β = 1 (the β cancels
/// in the normalized penalty of Eq. 7).
std::size_t resource_units(const ModelConfig& config);

/// Eq. 7 hardware penalty with λ1 = λ2 = 0.005 (Sec. V-A) against the
/// (4, 2, 3, 64, 1, 256) basis sharing the task geometry.
double hardware_penalty(const ModelConfig& config, double lambda1 = 0.005,
                        double lambda2 = 0.005);

/// Table II accounting for the comparison methods (see header comment).
double ldc_memory_kb(std::size_t features, std::size_t classes,
                     std::size_t dim);
double lehdc_memory_kb(std::size_t features, std::size_t classes,
                       std::size_t levels, std::size_t dim);
double lda_memory_kb(std::size_t features, std::size_t classes);
/// SVM at 16-bit floats: support vectors + coefficients + bias per class.
double svm_memory_kb(std::size_t features, std::size_t support_vectors,
                     std::size_t classifiers);

}  // namespace univsa::vsa
