#include "univsa/vsa/lehdc_model.h"

#include "univsa/common/contracts.h"
#include "univsa/common/thread_pool.h"

namespace univsa::vsa {

LehdcModel::LehdcModel(std::size_t windows, std::size_t length,
                       std::size_t levels, std::size_t dim,
                       std::vector<std::int8_t> values,
                       std::vector<std::int8_t> features,
                       const Tensor& classes)
    : windows_(windows),
      length_(length),
      levels_(levels),
      dim_(dim),
      v_(std::move(values)),
      f_(std::move(features)) {
  UNIVSA_REQUIRE(v_.size() == levels * dim, "value lane count mismatch");
  UNIVSA_REQUIRE(f_.size() == windows * length * dim,
                 "feature lane count mismatch");
  UNIVSA_REQUIRE(classes.rank() == 2 && classes.dim(1) == dim,
                 "class vector shape mismatch");
  for (const auto x : v_) {
    UNIVSA_REQUIRE(x == 1 || x == -1, "value lanes must be bipolar");
  }
  for (const auto x : f_) {
    UNIVSA_REQUIRE(x == 1 || x == -1, "feature lanes must be bipolar");
  }
  c_.reserve(classes.dim(0));
  for (std::size_t r = 0; r < classes.dim(0); ++r) {
    BitVec cv(dim);
    for (std::size_t j = 0; j < dim; ++j) {
      const float x = classes.at(r, j);
      UNIVSA_REQUIRE(x == 1.0f || x == -1.0f, "expected bipolar classes");
      cv.set(j, x > 0.0f ? 1 : -1);
    }
    c_.push_back(std::move(cv));
  }
}

std::vector<std::int8_t> LehdcModel::random_bipolar(std::size_t count,
                                                    Rng& rng) {
  std::vector<std::int8_t> lanes(count);
  for (auto& x : lanes) x = static_cast<std::int8_t>(rng.sign());
  return lanes;
}

std::vector<std::int8_t> LehdcModel::level_encoded_values(
    std::size_t levels, std::size_t dim, Rng& rng) {
  UNIVSA_REQUIRE(levels >= 2 && dim >= 1, "degenerate level encoding");
  std::vector<std::int8_t> lanes(levels * dim);
  for (std::size_t j = 0; j < dim; ++j) {
    lanes[j] = static_cast<std::int8_t>(rng.sign());
  }
  // Walk a random permutation, flipping dim/2 total lanes across the
  // M-1 steps so the first and last level are orthogonal in expectation.
  const auto perm = rng.permutation(dim);
  const double flips_per_step =
      static_cast<double>(dim) / 2.0 / static_cast<double>(levels - 1);
  double cursor = 0.0;
  for (std::size_t m = 1; m < levels; ++m) {
    std::copy(lanes.begin() + static_cast<long>((m - 1) * dim),
              lanes.begin() + static_cast<long>(m * dim),
              lanes.begin() + static_cast<long>(m * dim));
    const auto begin = static_cast<std::size_t>(cursor);
    cursor += flips_per_step;
    const auto end =
        std::min<std::size_t>(dim, static_cast<std::size_t>(cursor));
    for (std::size_t p = begin; p < end; ++p) {
      std::int8_t& lane = lanes[m * dim + perm[p]];
      lane = static_cast<std::int8_t>(-lane);
    }
  }
  return lanes;
}

BitVec LehdcModel::encode(const std::vector<std::uint16_t>& values) const {
  const std::size_t n = windows_ * length_;
  UNIVSA_REQUIRE(values.size() == n, "feature count mismatch");
  std::vector<std::int32_t> sums(dim_, 0);

  // Parallelize over the D lanes; each chunk scans all N features.
  parallel_for(dim_, [&](std::size_t begin, std::size_t end) {
    for (std::size_t i = 0; i < n; ++i) {
      UNIVSA_REQUIRE(values[i] < levels_, "value exceeds M levels");
      const std::int8_t* vf = f_.data() + i * dim_;
      const std::int8_t* vv =
          v_.data() + static_cast<std::size_t>(values[i]) * dim_;
      for (std::size_t j = begin; j < end; ++j) {
        sums[j] += static_cast<std::int32_t>(vf[j]) * vv[j];
      }
    }
  });

  BitVec s(dim_);
  for (std::size_t j = 0; j < dim_; ++j) {
    s.set(j, sums[j] >= 0 ? 1 : -1);
  }
  return s;
}

int LehdcModel::predict(const std::vector<std::uint16_t>& values) const {
  const BitVec s = encode(values);
  std::size_t best = 0;
  long long best_score = s.dot(c_[0]);
  for (std::size_t c = 1; c < c_.size(); ++c) {
    const long long score = s.dot(c_[c]);
    if (score > best_score) {
      best_score = score;
      best = c;
    }
  }
  return static_cast<int>(best);
}

double LehdcModel::accuracy(const data::Dataset& dataset) const {
  UNIVSA_REQUIRE(!dataset.empty(), "empty dataset");
  std::size_t correct = 0;
  for (std::size_t i = 0; i < dataset.size(); ++i) {
    if (predict(dataset.values(i)) == dataset.label(i)) ++correct;
  }
  return static_cast<double>(correct) / static_cast<double>(dataset.size());
}

}  // namespace univsa::vsa
