// LeHDC-style high-dimensional binary VSA model [12] — the D = 10,000
// comparison row of Table II.
//
// Classic HDC encoding with *random* (not learned) value and feature
// vectors at high dimension; only the class vectors are learned
// (BNN-style retraining over the fixed encodings). Value/feature vectors
// are stored as ±1 int8 rather than packed bits: at D = 10,000 the
// per-lane accumulation of Eq. 1 is the hot loop and the int8 layout
// vectorizes, while memory accounting for Table II uses the bit-packed
// formula (vsa::lehdc_memory_kb) — the deployed format would pack.
#pragma once

#include <cstdint>
#include <vector>

#include "univsa/common/bitvec.h"
#include "univsa/common/rng.h"
#include "univsa/data/dataset.h"
#include "univsa/tensor/tensor.h"

namespace univsa::vsa {

class LehdcModel {
 public:
  LehdcModel() = default;

  /// values: M·D int8 (±1), features: N·D int8 (±1), classes (C, D)
  /// bipolar tensor.
  LehdcModel(std::size_t windows, std::size_t length, std::size_t levels,
             std::size_t dim, std::vector<std::int8_t> values,
             std::vector<std::int8_t> features, const Tensor& classes);

  /// Draws the random V/F sets the encoder uses; class vectors must be
  /// learned afterwards (see train_lehdc).
  static std::vector<std::int8_t> random_bipolar(std::size_t count,
                                                 Rng& rng);

  /// Level-encoded value vectors (M·D lanes): v_0 is random and each
  /// subsequent level flips a fresh slice of a random permutation, so
  /// corr(v_i, v_j) falls off linearly with |i − j| and v_0 ⊥ v_{M-1}.
  /// This is the standard HDC continuous-value encoding — without it a
  /// quantized value and its neighbour would get unrelated symbols and
  /// the classifier would memorize instead of generalize.
  static std::vector<std::int8_t> level_encoded_values(std::size_t levels,
                                                       std::size_t dim,
                                                       Rng& rng);

  std::size_t dim() const { return dim_; }
  std::size_t classes() const { return c_.size(); }

  /// Eq. 1 at dimension D (threaded per-lane accumulation).
  BitVec encode(const std::vector<std::uint16_t>& values) const;

  int predict(const std::vector<std::uint16_t>& values) const;
  double accuracy(const data::Dataset& dataset) const;

  const std::vector<std::int8_t>& value_lanes() const { return v_; }
  const std::vector<std::int8_t>& feature_lanes() const { return f_; }

  /// Structural equality (serialization round-trip tests).
  bool operator==(const LehdcModel& other) const {
    return windows_ == other.windows_ && length_ == other.length_ &&
           levels_ == other.levels_ && dim_ == other.dim_ &&
           v_ == other.v_ && f_ == other.f_ && c_ == other.c_;
  }

 private:
  friend class ModelIo;  // .uvsa save/load (vsa/serialization.h)

  std::size_t windows_ = 0;
  std::size_t length_ = 0;
  std::size_t levels_ = 0;
  std::size_t dim_ = 0;
  std::vector<std::int8_t> v_;  // M·D
  std::vector<std::int8_t> f_;  // N·D
  std::vector<BitVec> c_;       // C × D packed
};

}  // namespace univsa::vsa
