// UniVSA model configuration (Table I columns).
//
// A configuration fixes both the task geometry (W, L, C, M) and the
// searched hyperparameters (D_H, D_L, D_K, O, Θ). Eq. 5 (memory) and
// Eq. 6 (resource) are pure functions of this struct — see
// univsa/vsa/memory_model.h — which is what lets the evolutionary search
// (Sec. V-A) price hardware without synthesizing anything.
#pragma once

#include <cstddef>
#include <string>

namespace univsa::vsa {

struct ModelConfig {
  // Task geometry.
  std::size_t W = 0;  ///< number of sliding windows
  std::size_t L = 0;  ///< snippet length per window
  std::size_t C = 0;  ///< number of classes
  std::size_t M = 256;  ///< quantization levels for feature values

  // Searched hyperparameters (Sec. III).
  std::size_t D_H = 8;   ///< high-importance value vector dimension
  std::size_t D_L = 2;   ///< low-importance value vector dimension
  std::size_t D_K = 3;   ///< BiConv kernel size (odd)
  std::size_t O = 64;    ///< BiConv output channels
  std::size_t Theta = 1; ///< soft-voting similarity layers

  /// N — total input features.
  std::size_t features() const { return W * L; }
  /// N_s — sample vector dimension after encoding (= W'·L' = W·L).
  std::size_t sample_dim() const { return W * L; }

  /// Throws std::invalid_argument when inconsistent.
  void validate() const;

  std::string to_string() const;

  bool operator==(const ModelConfig&) const = default;
};

/// The normalization basis of Eq. 7: (D_H, D_L, D_K, O, Θ, M) =
/// (4, 2, 3, 64, 1, 256), with the task geometry of `task`.
ModelConfig hardware_basis(const ModelConfig& task);

}  // namespace univsa::vsa
