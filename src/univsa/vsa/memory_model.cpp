#include "univsa/vsa/memory_model.h"

namespace univsa::vsa {

MemoryBreakdown memory_breakdown(const ModelConfig& config) {
  config.validate();
  MemoryBreakdown b;
  b.value_vectors = config.M * (config.D_H + config.D_L);
  b.conv_kernels = config.O * config.D_H * config.D_K * config.D_K;
  b.feature_vectors = config.W * config.L * config.O;
  b.class_vectors = config.W * config.L * config.Theta * config.C;
  return b;
}

std::size_t memory_bits(const ModelConfig& config) {
  return memory_breakdown(config).total_bits();
}

double memory_kb(const ModelConfig& config) {
  return static_cast<double>(memory_bits(config)) / 8.0 / 1000.0;
}

std::size_t resource_units(const ModelConfig& config) {
  config.validate();
  return config.D_K * config.O * config.D_H;
}

double hardware_penalty(const ModelConfig& config, double lambda1,
                        double lambda2) {
  const ModelConfig basis = hardware_basis(config);
  const double m0 = static_cast<double>(memory_bits(basis));
  const double r0 = static_cast<double>(resource_units(basis));
  const double m = static_cast<double>(memory_bits(config));
  const double r = static_cast<double>(resource_units(config));
  return lambda1 * m / m0 + lambda2 * r / r0;
}

double ldc_memory_kb(std::size_t features, std::size_t classes,
                     std::size_t dim) {
  // F (N·D) + C (C·D) binary, plus the LDC ValueBox MLP. The 1040-bit VB
  // constant is reverse-engineered from Table II (every LDC row matches
  // (N+C)·D/8000 + 0.13 KB).
  const std::size_t bits = (features + classes) * dim + 1040;
  return static_cast<double>(bits) / 8.0 / 1000.0;
}

double lehdc_memory_kb(std::size_t features, std::size_t classes,
                       std::size_t levels, std::size_t dim) {
  const std::size_t bits = (features + levels + classes) * dim;
  return static_cast<double>(bits) / 8.0 / 1000.0;
}

double lda_memory_kb(std::size_t features, std::size_t classes) {
  return static_cast<double>(32 * features * classes) / 8.0 / 1000.0;
}

double svm_memory_kb(std::size_t features, std::size_t support_vectors,
                     std::size_t classifiers) {
  // 16-bit floats: each stored SV row (N features) + its dual coefficient
  // per classifier + one bias per classifier.
  const std::size_t halves =
      support_vectors * features + support_vectors * classifiers +
      classifiers;
  return static_cast<double>(16 * halves) / 8.0 / 1000.0;
}

}  // namespace univsa::vsa
