// Deployed UniVSA model — pure binary inference (Eq. 1–4).
//
// After LDC-style training, only the binary vector sets survive:
//   V  — value vectors (two tables under DVP: V_H at D_H, V_L at D_L),
//   K  — BiConv kernels,
//   F  — feature/channel vectors,
//   C  — Θ sets of class vectors,
// plus the feature-importance mask. Inference is logic only: XNOR,
// popcount, integer compare — the exact datapath the hardware module
// implements (Sec. IV-A). The hardware functional simulator reuses this
// object's storage and must produce bit-identical intermediates
// (verified by property test).
//
// DVP padding semantics: for a low-importance feature, only lanes
// [0, D_L) of its value vector are valid; lanes [D_L, D_H) behave as
// algebraic 0 in the convolution (DESIGN.md §5).
#pragma once

#include <cstdint>
#include <vector>

#include "univsa/common/bitvec.h"
#include "univsa/common/rng.h"
#include "univsa/common/simd.h"
#include "univsa/data/dataset.h"
#include "univsa/tensor/tensor.h"
#include "univsa/vsa/model_config.h"

namespace univsa::vsa {

/// One spatial position of the value volume: up to 32 channel lanes.
/// `bits` holds the bipolar lanes (1 <-> +1), `valid` marks live lanes.
struct PackedValue {
  std::uint32_t bits = 0;
  std::uint32_t valid = 0;
};

struct Prediction {
  int label = 0;
  /// Per-class similarity summed over the Θ voters (Eq. 4 numerator).
  std::vector<long long> scores;
};

/// Reusable per-sample scratch arena for the `*_into` inference stages.
///
/// Sized once from a ModelConfig; after that every stage writes into the
/// preallocated buffers and steady-state inference performs no heap
/// allocation. The engine (vsa::InferEngine) owns one arena per worker
/// thread; the hardware cross-check tests use a standalone arena to
/// compare stage outputs against the functional simulator.
/// Layout details: DESIGN.md "Inference engine".
struct InferScratch {
  InferScratch() = default;
  explicit InferScratch(const ModelConfig& config) { resize(config); }

  /// (Re)sizes every buffer for `config`. Idempotent; cheap when already
  /// sized.
  void resize(const ModelConfig& config);

  // Stage 1 out — DVP value volume, W·L positions.
  std::vector<PackedValue> volume;
  // BiConv flattened patch: the D_K²·D_H patch lanes packed tap-major
  // into words_per_patch 64-bit words (out-of-bounds taps stay zero), so
  // each kernel dot is a handful of XNOR+popcount64 word ops.
  std::vector<std::uint64_t> patch_words;
  std::size_t words_per_patch = 0;
  // Model-derived tables packed lazily on first convolve_into call (and
  // whenever the scratch is handed a different model): kernels in the
  // same flattened layout but word-major ("transposed") — word i of
  // kernel o lives at kernel_words[i*O + o], the layout the fused
  // simd::masked_xnor_popcount_sweep primitive consumes so the vector
  // paths process adjacent kernels in one register — plus the
  // sample-independent validity planes: PackedValue::valid depends only
  // on the importance mask, so the per-position packed valid words and
  // their popcounts are hoisted out of the per-sample loop entirely.
  std::vector<std::uint64_t> kernel_words;  // words_per_patch × O
  std::vector<std::uint64_t> valid_words;   // W·L × words_per_patch
  /// Per-kernel match counts for one patch position (the sweep
  /// primitive's output buffer), length O.
  std::vector<std::uint32_t> kernel_acc;
  /// Per-position sign threshold ceil(valid_pop / 2): the conv bit is 1
  /// iff the XNOR match count reaches it (raw = 2·acc − valid_pop ≥ 0).
  std::vector<long long> valid_halves;  // W·L
  /// Identity key for the lazily packed tables. Reusing one scratch
  /// across models repacks automatically; destroying a model and reusing
  /// its address while a scratch is live is not detected.
  const void* packed_model = nullptr;
  // Stage 2 out — O binarized channels, packed 64 positions per word,
  // channel-major: word w of channel o at conv_words[o*words_per_channel+w].
  std::vector<std::uint64_t> conv_words;
  std::size_t words_per_channel = 0;
  // Stage 3 out — encoded sample vector s.
  BitVec sample;
  // Stage 4 out — label + per-class scores.
  Prediction prediction;
  /// SIMD dispatch table the `*_into` stages run on. Null means "the
  /// process-wide simd::active() table" (best ISA / UNIVSA_FORCE_ISA);
  /// the packed-<isa> runtime backends pin their scratches to a specific
  /// table so parity can prove every ISA variant bit-identical.
  const simd::Kernels* simd_kernels = nullptr;
};

class Model {
 public:
  Model() = default;

  /// Assembles a deployed model from trainer outputs. Bipolar tensors
  /// hold ±1 floats; `mask` has one entry per feature (1 = high
  /// importance). Shapes:
  ///   v_high (M, D_H), v_low (M, D_L), kernels (O, D_H·D_K·D_K) in
  ///   (channel, kh, kw) order, features (O, W·L),
  ///   class_vectors (Θ·C, W·L) with voter-major rows.
  Model(ModelConfig config, std::vector<std::uint8_t> mask,
        const Tensor& v_high, const Tensor& v_low, const Tensor& kernels,
        const Tensor& features, const Tensor& class_vectors);

  /// A random model (for property tests and microbenchmarks).
  static Model random(ModelConfig config, Rng& rng,
                      double high_fraction = 0.5);

  const ModelConfig& config() const { return config_; }

  // --- Inference pipeline (each stage exposed for hardware cross-checks).
  //
  // Every stage has two forms: a `*_into` variant that writes into a
  // caller-owned InferScratch (zero allocation once the scratch is warm —
  // the deployed hot path, used by vsa::InferEngine and the hardware
  // cross-check tests), and the original allocating signature kept as a
  // thin wrapper.

  /// Stage 1 — DVP: per-feature value-vector lookup. `values` holds W·L
  /// levels in [0, M). Output indexed [w*L + l].
  std::vector<PackedValue> project_values(
      const std::vector<std::uint16_t>& values) const;
  void project_values_into(const std::vector<std::uint16_t>& values,
                           std::vector<PackedValue>& volume) const;

  /// Stage 2 — BiConv: binarized convolution output, one BitVec of W·L
  /// lanes per output channel. `volume` must be this model's
  /// project_values output — the hot path takes the validity lanes from
  /// the model's own importance mask, which is identical by construction.
  std::vector<BitVec> convolve(const std::vector<PackedValue>& volume) const;

  /// Stage 2 hot path, mirroring the Sec. IV-A kernel-parallel schedule:
  /// each (y, x) patch is gathered exactly once — flattened tap-major
  /// into scratch.patch_words (interior positions via bounds-check-free
  /// row pointers, border positions skipping out-of-bounds taps) — then
  /// all O pre-packed kernels sweep it with whole-word XNOR+popcounts
  /// against the precomputed validity plane. Writes packed channel words
  /// into `scratch.conv_words`. Bit-identical to sgn(convolve_raw) —
  /// property-tested.
  void convolve_into(const std::vector<PackedValue>& volume,
                     InferScratch& scratch) const;

  /// Stage 2 raw accumulations (pre-sign), for hardware adder checks.
  /// This is the reference implementation the BiConv hot path and the
  /// functional simulator are both checked against.
  std::vector<std::vector<long long>> convolve_raw(
      const std::vector<PackedValue>& volume) const;
  void convolve_raw_into(const std::vector<PackedValue>& volume,
                         std::vector<std::vector<long long>>& raw) const;

  /// Stage 3 — Encoding (Eq. 1 over conv channels): sample vector s.
  BitVec encode_channels(const std::vector<BitVec>& conv_out) const;

  /// Stage 3 hot path over the packed channels in `scratch.conv_words`:
  /// word-parallel bit-sliced majority (64 positions at a time) with a
  /// word-parallel threshold compare, writing `scratch.sample`.
  void encode_into(InferScratch& scratch) const;

  /// Stage 4 — Similarity with soft voting (Eq. 4, dot-product metric).
  Prediction similarity(const BitVec& sample_vector) const;

  /// Stage 4 hot path: the Θ·C dots fused into one word-major
  /// XNOR+popcount sweep over the class-vector words, writing into a
  /// reused Prediction (scores capacity is retained across calls). The
  /// three-argument form runs on a specific SIMD dispatch table; the
  /// two-argument form uses the process-wide simd::active() table.
  void similarity_into(const BitVec& sample_vector, Prediction& out) const;
  void similarity_into(const BitVec& sample_vector, Prediction& out,
                       const simd::Kernels& kernels) const;

  /// Eq. 2 with the Hamming metric instead (scores are summed Hamming
  /// distances, label is the argmin). Equivalent ranking to the
  /// dot-product metric — dot = D − 2·hamming (Sec. II-C) — verified by
  /// property test.
  Prediction similarity_hamming(const BitVec& sample_vector) const;

  /// Full pipeline: values -> label.
  Prediction predict(const std::vector<std::uint16_t>& values) const;

  /// Full pipeline into a caller-owned scratch arena: label + scores in
  /// `scratch.prediction`. Zero heap allocation once the scratch is warm.
  void predict_into(const std::vector<std::uint16_t>& values,
                    InferScratch& scratch) const;

  /// predict_into with a telemetry TraceSpan around each stage
  /// ("stage.dvp" / "stage.biconv" / "stage.encoding" /
  /// "stage.similarity"). Bit-identical outputs; the engine samples this
  /// variant on its batched hot path (telemetry::sample_tick) so the
  /// per-stage latency histograms track production traffic at <1% cost.
  void predict_into_traced(const std::vector<std::uint16_t>& values,
                           InferScratch& scratch) const;

  /// Full pipeline through the original per-sample scalar stages
  /// (convolve_raw + BitSlicedAccumulator encode + per-class dots). Kept
  /// as the reference path for the hot-path property tests and as the
  /// baseline the engine's throughput is measured against.
  Prediction predict_reference(const std::vector<std::uint16_t>& values) const;

  /// End-to-end sample vector (stages 1–3).
  BitVec encode(const std::vector<std::uint16_t>& values) const;

  /// Fraction of correct predictions on a dataset. Routed through a
  /// batched InferEngine over the global thread pool.
  double accuracy(const data::Dataset& dataset) const;

  // --- Stored vector sets (read access for hardware sim / serialization).
  const std::vector<std::uint8_t>& mask() const { return mask_; }
  const std::vector<BitVec>& value_table_high() const { return v_high_; }
  const std::vector<BitVec>& value_table_low() const { return v_low_; }
  /// Kernel lane-masks: kernel_bits(o)[kh*D_K + kw] packs the D_H channel
  /// lanes of kernel position (kh, kw).
  const std::vector<std::vector<std::uint32_t>>& kernel_bits() const {
    return kernel_bits_;
  }
  const std::vector<BitVec>& feature_vectors() const { return f_; }
  /// class_vectors()[theta * C + c].
  const std::vector<BitVec>& class_vectors() const { return c_; }

  /// Copy of this model with the class vectors replaced (shape
  /// (Θ·C, W·L), voter-major, bipolar ±1). V/K/F/mask are shared
  /// unchanged — this is the on-device class-vector retraining path
  /// (see train::OnlineRetrainer).
  Model with_class_vectors(const Tensor& class_vectors) const;

  bool operator==(const Model& other) const;

 private:
  friend class ModelIo;

  /// Fills scratch.kernel_words / valid_words / valid_pops (the
  /// sample-independent BiConv tables) and stamps scratch.packed_model.
  void pack_scratch_tables(InferScratch& scratch) const;

  ModelConfig config_;
  std::vector<std::uint8_t> mask_;
  std::vector<BitVec> v_high_;  // M entries, D_H lanes
  std::vector<BitVec> v_low_;   // M entries, D_L lanes
  std::vector<std::vector<std::uint32_t>> kernel_bits_;  // O × (D_K²)
  std::vector<BitVec> f_;  // O entries, W·L lanes
  std::vector<BitVec> c_;  // Θ·C entries, W·L lanes
};

}  // namespace univsa::vsa
