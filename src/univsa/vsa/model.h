// Deployed UniVSA model — pure binary inference (Eq. 1–4).
//
// After LDC-style training, only the binary vector sets survive:
//   V  — value vectors (two tables under DVP: V_H at D_H, V_L at D_L),
//   K  — BiConv kernels,
//   F  — feature/channel vectors,
//   C  — Θ sets of class vectors,
// plus the feature-importance mask. Inference is logic only: XNOR,
// popcount, integer compare — the exact datapath the hardware module
// implements (Sec. IV-A). The hardware functional simulator reuses this
// object's storage and must produce bit-identical intermediates
// (verified by property test).
//
// DVP padding semantics: for a low-importance feature, only lanes
// [0, D_L) of its value vector are valid; lanes [D_L, D_H) behave as
// algebraic 0 in the convolution (DESIGN.md §5).
#pragma once

#include <cstdint>
#include <vector>

#include "univsa/common/bitvec.h"
#include "univsa/common/rng.h"
#include "univsa/data/dataset.h"
#include "univsa/tensor/tensor.h"
#include "univsa/vsa/model_config.h"

namespace univsa::vsa {

/// One spatial position of the value volume: up to 32 channel lanes.
/// `bits` holds the bipolar lanes (1 <-> +1), `valid` marks live lanes.
struct PackedValue {
  std::uint32_t bits = 0;
  std::uint32_t valid = 0;
};

struct Prediction {
  int label = 0;
  /// Per-class similarity summed over the Θ voters (Eq. 4 numerator).
  std::vector<long long> scores;
};

class Model {
 public:
  Model() = default;

  /// Assembles a deployed model from trainer outputs. Bipolar tensors
  /// hold ±1 floats; `mask` has one entry per feature (1 = high
  /// importance). Shapes:
  ///   v_high (M, D_H), v_low (M, D_L), kernels (O, D_H·D_K·D_K) in
  ///   (channel, kh, kw) order, features (O, W·L),
  ///   class_vectors (Θ·C, W·L) with voter-major rows.
  Model(ModelConfig config, std::vector<std::uint8_t> mask,
        const Tensor& v_high, const Tensor& v_low, const Tensor& kernels,
        const Tensor& features, const Tensor& class_vectors);

  /// A random model (for property tests and microbenchmarks).
  static Model random(ModelConfig config, Rng& rng,
                      double high_fraction = 0.5);

  const ModelConfig& config() const { return config_; }

  // --- Inference pipeline (each stage exposed for hardware cross-checks).

  /// Stage 1 — DVP: per-feature value-vector lookup. `values` holds W·L
  /// levels in [0, M). Output indexed [w*L + l].
  std::vector<PackedValue> project_values(
      const std::vector<std::uint16_t>& values) const;

  /// Stage 2 — BiConv: binarized convolution output, one BitVec of W·L
  /// lanes per output channel.
  std::vector<BitVec> convolve(const std::vector<PackedValue>& volume) const;

  /// Stage 2 raw accumulations (pre-sign), for hardware adder checks.
  std::vector<std::vector<long long>> convolve_raw(
      const std::vector<PackedValue>& volume) const;

  /// Stage 3 — Encoding (Eq. 1 over conv channels): sample vector s.
  BitVec encode_channels(const std::vector<BitVec>& conv_out) const;

  /// Stage 4 — Similarity with soft voting (Eq. 4, dot-product metric).
  Prediction similarity(const BitVec& sample_vector) const;

  /// Eq. 2 with the Hamming metric instead (scores are summed Hamming
  /// distances, label is the argmin). Equivalent ranking to the
  /// dot-product metric — dot = D − 2·hamming (Sec. II-C) — verified by
  /// property test.
  Prediction similarity_hamming(const BitVec& sample_vector) const;

  /// Full pipeline: values -> label.
  Prediction predict(const std::vector<std::uint16_t>& values) const;

  /// End-to-end sample vector (stages 1–3).
  BitVec encode(const std::vector<std::uint16_t>& values) const;

  /// Fraction of correct predictions on a dataset.
  double accuracy(const data::Dataset& dataset) const;

  // --- Stored vector sets (read access for hardware sim / serialization).
  const std::vector<std::uint8_t>& mask() const { return mask_; }
  const std::vector<BitVec>& value_table_high() const { return v_high_; }
  const std::vector<BitVec>& value_table_low() const { return v_low_; }
  /// Kernel lane-masks: kernel_bits(o)[kh*D_K + kw] packs the D_H channel
  /// lanes of kernel position (kh, kw).
  const std::vector<std::vector<std::uint32_t>>& kernel_bits() const {
    return kernel_bits_;
  }
  const std::vector<BitVec>& feature_vectors() const { return f_; }
  /// class_vectors()[theta * C + c].
  const std::vector<BitVec>& class_vectors() const { return c_; }

  /// Copy of this model with the class vectors replaced (shape
  /// (Θ·C, W·L), voter-major, bipolar ±1). V/K/F/mask are shared
  /// unchanged — this is the on-device class-vector retraining path
  /// (see train::OnlineRetrainer).
  Model with_class_vectors(const Tensor& class_vectors) const;

  bool operator==(const Model& other) const;

 private:
  friend class ModelIo;

  ModelConfig config_;
  std::vector<std::uint8_t> mask_;
  std::vector<BitVec> v_high_;  // M entries, D_H lanes
  std::vector<BitVec> v_low_;   // M entries, D_L lanes
  std::vector<std::vector<std::uint32_t>> kernel_bits_;  // O × (D_K²)
  std::vector<BitVec> f_;  // O entries, W·L lanes
  std::vector<BitVec> c_;  // Θ·C entries, W·L lanes
};

}  // namespace univsa::vsa
