#include "univsa/vsa/model_config.h"

#include <sstream>

#include "univsa/common/contracts.h"

namespace univsa::vsa {

void ModelConfig::validate() const {
  UNIVSA_REQUIRE(W > 0 && L > 0, "input size (W, L) must be positive");
  UNIVSA_REQUIRE(C >= 2, "need at least two classes");
  UNIVSA_REQUIRE(M >= 2, "need at least two quantization levels");
  UNIVSA_REQUIRE(D_H >= 1, "D_H must be positive");
  UNIVSA_REQUIRE(D_L >= 1 && D_L <= D_H, "require 1 <= D_L <= D_H");
  UNIVSA_REQUIRE(D_K % 2 == 1 && D_K >= 1, "D_K must be odd and positive");
  UNIVSA_REQUIRE(O >= 1, "O must be positive");
  UNIVSA_REQUIRE(Theta >= 1, "Theta must be positive");
}

std::string ModelConfig::to_string() const {
  std::ostringstream os;
  os << "(W,L)=(" << W << ',' << L << ") C=" << C << " M=" << M
     << " (D_H,D_L,D_K,O,Θ)=(" << D_H << ',' << D_L << ',' << D_K << ',' << O
     << ',' << Theta << ')';
  return os.str();
}

ModelConfig hardware_basis(const ModelConfig& task) {
  ModelConfig basis = task;
  basis.D_H = 4;
  basis.D_L = 2;
  basis.D_K = 3;
  basis.O = 64;
  basis.Theta = 1;
  basis.M = 256;
  return basis;
}

}  // namespace univsa::vsa
