#include "univsa/vsa/ldc_model.h"

#include "univsa/common/contracts.h"

namespace univsa::vsa {

namespace {
std::vector<BitVec> pack_rows(const Tensor& t) {
  UNIVSA_REQUIRE(t.rank() == 2, "expected a matrix of bipolar rows");
  std::vector<BitVec> rows;
  rows.reserve(t.dim(0));
  for (std::size_t r = 0; r < t.dim(0); ++r) {
    BitVec v(t.dim(1));
    for (std::size_t j = 0; j < t.dim(1); ++j) {
      const float x = t.at(r, j);
      UNIVSA_REQUIRE(x == 1.0f || x == -1.0f, "expected bipolar tensor");
      v.set(j, x > 0.0f ? 1 : -1);
    }
    rows.push_back(std::move(v));
  }
  return rows;
}
}  // namespace

LdcModel::LdcModel(std::size_t windows, std::size_t length,
                   const Tensor& values, const Tensor& features,
                   const Tensor& classes)
    : windows_(windows), length_(length), dim_(values.dim(1)) {
  UNIVSA_REQUIRE(features.dim(1) == dim_ && classes.dim(1) == dim_,
                 "vector dimension mismatch");
  UNIVSA_REQUIRE(features.dim(0) == windows * length,
                 "feature vector count must be W·L");
  v_ = pack_rows(values);
  f_ = pack_rows(features);
  c_ = pack_rows(classes);
}

LdcModel LdcModel::random(std::size_t windows, std::size_t length,
                          std::size_t levels, std::size_t classes,
                          std::size_t dim, Rng& rng) {
  return LdcModel(windows, length, Tensor::rand_sign({levels, dim}, rng),
                  Tensor::rand_sign({windows * length, dim}, rng),
                  Tensor::rand_sign({classes, dim}, rng));
}

BitVec LdcModel::encode(const std::vector<std::uint16_t>& values) const {
  UNIVSA_REQUIRE(values.size() == f_.size(), "feature count mismatch");
  BitSlicedAccumulator acc(dim_);
  for (std::size_t i = 0; i < values.size(); ++i) {
    UNIVSA_REQUIRE(values[i] < v_.size(), "value exceeds M levels");
    acc.add_bound(f_[i], v_[values[i]]);
  }
  return acc.sign();
}

int LdcModel::predict(const std::vector<std::uint16_t>& values) const {
  const BitVec s = encode(values);
  std::size_t best = 0;
  long long best_score = s.dot(c_[0]);
  for (std::size_t c = 1; c < c_.size(); ++c) {
    const long long score = s.dot(c_[c]);
    if (score > best_score) {
      best_score = score;
      best = c;
    }
  }
  return static_cast<int>(best);
}

double LdcModel::accuracy(const data::Dataset& dataset) const {
  UNIVSA_REQUIRE(!dataset.empty(), "empty dataset");
  std::size_t correct = 0;
  for (std::size_t i = 0; i < dataset.size(); ++i) {
    if (predict(dataset.values(i)) == dataset.label(i)) ++correct;
  }
  return static_cast<double>(correct) / static_cast<double>(dataset.size());
}

}  // namespace univsa::vsa
