// Deployed plain-LDC binary VSA model [11] — the baseline UniVSA improves
// on (Sec. II).
//
// Classic per-feature encoding (Eq. 1): one value table V (M, D), one
// feature vector per input position F (N, D), one class vector set
// C (C, D). No DVP, no convolution, single similarity layer. Memory
// accounting for Table II uses vsa::ldc_memory_kb().
#pragma once

#include <cstdint>
#include <vector>

#include "univsa/common/bitvec.h"
#include "univsa/common/rng.h"
#include "univsa/data/dataset.h"
#include "univsa/tensor/tensor.h"

namespace univsa::vsa {

class LdcModel {
 public:
  LdcModel() = default;

  /// Bipolar tensors: values (M, D), features (N, D), classes (C, D).
  LdcModel(std::size_t windows, std::size_t length, const Tensor& values,
           const Tensor& features, const Tensor& classes);

  static LdcModel random(std::size_t windows, std::size_t length,
                         std::size_t levels, std::size_t classes,
                         std::size_t dim, Rng& rng);

  std::size_t dim() const { return dim_; }
  std::size_t features() const { return f_.size(); }
  std::size_t levels() const { return v_.size(); }
  std::size_t classes() const { return c_.size(); }

  /// Eq. 1: s = sgn(Σ_i f_i ∘ v_{x_i}).
  BitVec encode(const std::vector<std::uint16_t>& values) const;

  /// Eq. 2 with dot-product similarity.
  int predict(const std::vector<std::uint16_t>& values) const;

  double accuracy(const data::Dataset& dataset) const;

  /// Structural equality (serialization round-trip tests).
  bool operator==(const LdcModel& other) const {
    return windows_ == other.windows_ && length_ == other.length_ &&
           dim_ == other.dim_ && v_ == other.v_ && f_ == other.f_ &&
           c_ == other.c_;
  }

 private:
  friend class ModelIo;  // .uvsa save/load (vsa/serialization.h)

  std::size_t windows_ = 0;
  std::size_t length_ = 0;
  std::size_t dim_ = 0;
  std::vector<BitVec> v_;  // M × D
  std::vector<BitVec> f_;  // N × D
  std::vector<BitVec> c_;  // C × D
};

}  // namespace univsa::vsa
