// .uvsa model serialization.
//
// A deployed model is a few kilobytes of packed bits (Eq. 5); the format
// is a fixed little-endian header followed by the raw packed words of
// each vector set. payload_bytes() counts only the Eq. 5 bits — what the
// target device must hold — while the file adds a 96-byte header.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "univsa/vsa/model.h"

namespace univsa::vsa {

class ModelIo {
 public:
  /// Serializes to an in-memory buffer / stream / file.
  static std::vector<std::uint8_t> to_bytes(const Model& model);
  static void save(const Model& model, std::ostream& os);
  static void save_file(const Model& model, const std::string& path);

  /// Deserializes; throws std::invalid_argument on malformed input.
  static Model from_bytes(const std::vector<std::uint8_t>& bytes);
  static Model load(std::istream& is);
  static Model load_file(const std::string& path);

  /// Eq. 5 payload rounded up to whole bytes per vector set.
  static std::size_t payload_bytes(const Model& model);
};

}  // namespace univsa::vsa
