// .uvsa model serialization, format version 2.
//
// A deployed model is a few kilobytes of packed bits (Eq. 5); the format
// is a fixed little-endian header followed by the raw packed words of
// each vector set. payload_bytes() counts only the Eq. 5 bits — what the
// target device must hold — while the file adds a small header.
//
// Versioning: the 8-byte magic carries the format version as ASCII
// digits ("UVSA002\n"). Version 2 adds a `kind` field so every model
// variant in the repo round-trips through the same container:
//   kind 1 = vsa::Model (UniVSA), 2 = LdcModel, 3 = LehdcModel.
// Version-1 files ("UVSA001\n", UniVSA payload with no kind field) load
// forever; a file stamped with a *newer* version than this build
// supports is rejected with a clear std::invalid_argument instead of a
// decode attempt on an unknown layout.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "univsa/vsa/ldc_model.h"
#include "univsa/vsa/lehdc_model.h"
#include "univsa/vsa/model.h"

namespace univsa::vsa {

class ModelIo {
 public:
  /// Highest .uvsa format version this build reads and the one it
  /// writes.
  static constexpr std::uint64_t kFormatVersion = 2;

  /// Model-variant discriminator stored in version >= 2 headers.
  enum class Kind : std::uint64_t {
    kUniVsa = 1,
    kLdc = 2,
    kLehdc = 3,
  };

  /// Parses the header and returns the stored kind without decoding the
  /// payload. Throws std::invalid_argument on bad magic or a
  /// future-version file. Version-1 files report Kind::kUniVsa.
  static Kind peek_kind(const std::vector<std::uint8_t>& bytes);

  // --- vsa::Model (UniVSA), kind 1 -------------------------------------

  /// Serializes to an in-memory buffer / stream / file.
  static std::vector<std::uint8_t> to_bytes(const Model& model);
  static void save(const Model& model, std::ostream& os);
  static void save_file(const Model& model, const std::string& path);

  /// Deserializes; throws std::invalid_argument on malformed input,
  /// a future-version file, or a file holding a different model kind.
  static Model from_bytes(const std::vector<std::uint8_t>& bytes);
  static Model load(std::istream& is);
  static Model load_file(const std::string& path);

  /// Eq. 5 payload rounded up to whole bytes per vector set.
  static std::size_t payload_bytes(const Model& model);

  // --- LdcModel, kind 2 ------------------------------------------------

  static std::vector<std::uint8_t> ldc_to_bytes(const LdcModel& model);
  static void save_ldc_file(const LdcModel& model, const std::string& path);
  static LdcModel ldc_from_bytes(const std::vector<std::uint8_t>& bytes);
  static LdcModel load_ldc_file(const std::string& path);

  // --- LehdcModel, kind 3 ----------------------------------------------
  //
  // The in-memory ±1 int8 value/feature lanes are bit-packed on disk
  // (the deployed format), so the file size matches the Table II
  // lehdc_memory_kb() accounting, not the 8x inflated RAM layout.

  static std::vector<std::uint8_t> lehdc_to_bytes(const LehdcModel& model);
  static void save_lehdc_file(const LehdcModel& model,
                              const std::string& path);
  static LehdcModel lehdc_from_bytes(const std::vector<std::uint8_t>& bytes);
  static LehdcModel load_lehdc_file(const std::string& path);
};

}  // namespace univsa::vsa
