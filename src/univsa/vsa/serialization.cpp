#include "univsa/vsa/serialization.h"

#include <cstring>
#include <fstream>
#include <sstream>

#include "univsa/common/contracts.h"

namespace univsa::vsa {

namespace {

constexpr char kMagic[8] = {'U', 'V', 'S', 'A', '0', '0', '1', '\n'};

class Writer {
 public:
  void u64(std::uint64_t v) {
    for (int i = 0; i < 8; ++i) {
      bytes_.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
    }
  }
  void raw(const void* data, std::size_t n) {
    const auto* p = static_cast<const std::uint8_t*>(data);
    bytes_.insert(bytes_.end(), p, p + n);
  }
  void bitvec(const BitVec& v) {
    u64(v.size());
    raw(v.words().data(), v.words().size() * sizeof(std::uint64_t));
  }
  std::vector<std::uint8_t> take() { return std::move(bytes_); }

 private:
  std::vector<std::uint8_t> bytes_;
};

class Reader {
 public:
  explicit Reader(const std::vector<std::uint8_t>& bytes) : bytes_(bytes) {}

  std::uint64_t u64() {
    UNIVSA_REQUIRE(pos_ + 8 <= bytes_.size(), "truncated .uvsa data");
    std::uint64_t v = 0;
    for (int i = 0; i < 8; ++i) {
      v |= static_cast<std::uint64_t>(bytes_[pos_ + i]) << (8 * i);
    }
    pos_ += 8;
    return v;
  }
  void raw(void* out, std::size_t n) {
    UNIVSA_REQUIRE(pos_ + n <= bytes_.size(), "truncated .uvsa data");
    std::memcpy(out, bytes_.data() + pos_, n);
    pos_ += n;
  }
  BitVec bitvec(std::size_t expected_size) {
    const std::uint64_t n = u64();
    UNIVSA_REQUIRE(n == expected_size, "unexpected vector length in .uvsa");
    BitVec v(n);
    std::vector<std::uint64_t> words((n + 63) / 64);
    raw(words.data(), words.size() * sizeof(std::uint64_t));
    for (std::size_t i = 0; i < n; ++i) {
      v.set(i, (words[i / 64] >> (i % 64)) & 1ULL ? 1 : -1);
    }
    return v;
  }
  bool exhausted() const { return pos_ == bytes_.size(); }

 private:
  const std::vector<std::uint8_t>& bytes_;
  std::size_t pos_ = 0;
};

}  // namespace

std::vector<std::uint8_t> ModelIo::to_bytes(const Model& model) {
  const ModelConfig& c = model.config();
  Writer w;
  w.raw(kMagic, sizeof(kMagic));
  w.u64(c.W);
  w.u64(c.L);
  w.u64(c.C);
  w.u64(c.M);
  w.u64(c.D_H);
  w.u64(c.D_L);
  w.u64(c.D_K);
  w.u64(c.O);
  w.u64(c.Theta);

  w.raw(model.mask().data(), model.mask().size());
  for (const auto& v : model.value_table_high()) w.bitvec(v);
  for (const auto& v : model.value_table_low()) w.bitvec(v);
  for (const auto& kb : model.kernel_bits()) {
    for (const auto lanes : kb) w.u64(lanes);
  }
  for (const auto& v : model.feature_vectors()) w.bitvec(v);
  for (const auto& v : model.class_vectors()) w.bitvec(v);
  return w.take();
}

Model ModelIo::from_bytes(const std::vector<std::uint8_t>& bytes) {
  UNIVSA_REQUIRE(bytes.size() >= sizeof(kMagic) &&
                     std::memcmp(bytes.data(), kMagic, sizeof(kMagic)) == 0,
                 "not a .uvsa model (bad magic)");
  Reader r(bytes);
  char magic[sizeof(kMagic)];
  r.raw(magic, sizeof(kMagic));

  ModelConfig c;
  c.W = r.u64();
  c.L = r.u64();
  c.C = r.u64();
  c.M = r.u64();
  c.D_H = r.u64();
  c.D_L = r.u64();
  c.D_K = r.u64();
  c.O = r.u64();
  c.Theta = r.u64();
  c.validate();
  UNIVSA_REQUIRE(c.D_H <= 32, "unsupported D_H in .uvsa");
  // Plausibility caps so a corrupted header can't drive huge allocations
  // before the per-section truncation checks kick in.
  UNIVSA_REQUIRE(c.W <= (1u << 16) && c.L <= (1u << 16) &&
                     c.features() <= (1u << 22) && c.C <= (1u << 16) &&
                     c.M <= (1u << 16) && c.D_K <= 63 &&
                     c.O <= (1u << 16) && c.Theta <= (1u << 10) &&
                     c.Theta * c.C <= (1u << 20),
                 "implausible .uvsa dimensions");

  Model model;
  model.config_ = c;
  model.mask_.resize(c.features());
  r.raw(model.mask_.data(), model.mask_.size());
  for (const auto m : model.mask_) {
    UNIVSA_REQUIRE(m == 0 || m == 1, "mask entries must be 0/1");
  }
  model.v_high_.reserve(c.M);
  for (std::size_t m = 0; m < c.M; ++m) {
    model.v_high_.push_back(r.bitvec(c.D_H));
  }
  model.v_low_.reserve(c.M);
  for (std::size_t m = 0; m < c.M; ++m) {
    model.v_low_.push_back(r.bitvec(c.D_L));
  }
  const std::size_t kk = c.D_K * c.D_K;
  const std::uint32_t lane_mask =
      c.D_H == 32 ? ~0u : (1u << c.D_H) - 1;
  model.kernel_bits_.assign(c.O, std::vector<std::uint32_t>(kk, 0));
  for (auto& kb : model.kernel_bits_) {
    for (auto& lanes : kb) {
      const std::uint64_t v = r.u64();
      UNIVSA_REQUIRE((v & ~static_cast<std::uint64_t>(lane_mask)) == 0,
                     "kernel lanes exceed D_H");
      lanes = static_cast<std::uint32_t>(v);
    }
  }
  model.f_.reserve(c.O);
  for (std::size_t o = 0; o < c.O; ++o) {
    model.f_.push_back(r.bitvec(c.sample_dim()));
  }
  model.c_.reserve(c.Theta * c.C);
  for (std::size_t i = 0; i < c.Theta * c.C; ++i) {
    model.c_.push_back(r.bitvec(c.sample_dim()));
  }
  UNIVSA_REQUIRE(r.exhausted(), "trailing bytes in .uvsa data");
  return model;
}

void ModelIo::save(const Model& model, std::ostream& os) {
  const auto bytes = to_bytes(model);
  os.write(reinterpret_cast<const char*>(bytes.data()),
           static_cast<std::streamsize>(bytes.size()));
  UNIVSA_ENSURE(os.good(), "stream write failed");
}

void ModelIo::save_file(const Model& model, const std::string& path) {
  std::ofstream os(path, std::ios::binary);
  UNIVSA_REQUIRE(os.is_open(), "cannot open file for writing: " + path);
  save(model, os);
}

Model ModelIo::load(std::istream& is) {
  std::ostringstream buffer;
  buffer << is.rdbuf();
  const std::string s = buffer.str();
  return from_bytes(std::vector<std::uint8_t>(s.begin(), s.end()));
}

Model ModelIo::load_file(const std::string& path) {
  std::ifstream is(path, std::ios::binary);
  UNIVSA_REQUIRE(is.is_open(), "cannot open file for reading: " + path);
  return load(is);
}

std::size_t ModelIo::payload_bytes(const Model& model) {
  const ModelConfig& c = model.config();
  const auto bits_to_bytes = [](std::size_t bits) {
    return (bits + 7) / 8;
  };
  std::size_t total = bits_to_bytes(c.M * c.D_H) + bits_to_bytes(c.M * c.D_L);
  total += bits_to_bytes(c.O * c.D_H * c.D_K * c.D_K);
  total += bits_to_bytes(c.W * c.L * c.O);
  total += bits_to_bytes(c.W * c.L * c.Theta * c.C);
  return total;
}

}  // namespace univsa::vsa
