#include "univsa/vsa/serialization.h"

#include <cstring>
#include <fstream>
#include <sstream>

#include "univsa/common/contracts.h"

namespace univsa::vsa {

namespace {

// Magic layout: "UVSA" + three ASCII version digits + '\n'. The digits
// are the format version, so old loaders fail loudly (bad magic) on new
// files and this loader can accept every version it understands.
constexpr char kMagicPrefix[4] = {'U', 'V', 'S', 'A'};
constexpr std::size_t kMagicSize = 8;

void write_magic(std::vector<std::uint8_t>& bytes, std::uint64_t version) {
  bytes.insert(bytes.end(), kMagicPrefix, kMagicPrefix + 4);
  bytes.push_back(static_cast<std::uint8_t>('0' + version / 100 % 10));
  bytes.push_back(static_cast<std::uint8_t>('0' + version / 10 % 10));
  bytes.push_back(static_cast<std::uint8_t>('0' + version % 10));
  bytes.push_back(static_cast<std::uint8_t>('\n'));
}

/// Parses and validates the magic; returns the format version. Rejects
/// future versions with a message naming both versions.
std::uint64_t parse_magic(const std::vector<std::uint8_t>& bytes) {
  UNIVSA_REQUIRE(bytes.size() >= kMagicSize &&
                     std::memcmp(bytes.data(), kMagicPrefix, 4) == 0 &&
                     bytes[7] == '\n',
                 "not a .uvsa model (bad magic)");
  std::uint64_t version = 0;
  for (std::size_t i = 4; i < 7; ++i) {
    const std::uint8_t c = bytes[i];
    UNIVSA_REQUIRE(c >= '0' && c <= '9', "not a .uvsa model (bad magic)");
    version = version * 10 + (c - '0');
  }
  UNIVSA_REQUIRE(version >= 1, "not a .uvsa model (bad magic)");
  UNIVSA_REQUIRE(
      version <= ModelIo::kFormatVersion,
      ".uvsa format version " + std::to_string(version) +
          " is newer than this build supports (max " +
          std::to_string(ModelIo::kFormatVersion) +
          "); upgrade the reader or re-export the model");
  return version;
}

class Writer {
 public:
  explicit Writer(ModelIo::Kind kind) {
    write_magic(bytes_, ModelIo::kFormatVersion);
    u64(static_cast<std::uint64_t>(kind));
  }
  void u64(std::uint64_t v) {
    for (int i = 0; i < 8; ++i) {
      bytes_.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
    }
  }
  void raw(const void* data, std::size_t n) {
    const auto* p = static_cast<const std::uint8_t*>(data);
    bytes_.insert(bytes_.end(), p, p + n);
  }
  void bitvec(const BitVec& v) {
    u64(v.size());
    raw(v.words().data(), v.words().size() * sizeof(std::uint64_t));
  }
  /// Bit-packs ±1 int8 lanes (+1 -> bit 1) — the deployed layout.
  void lanes(const std::vector<std::int8_t>& lanes) {
    u64(lanes.size());
    std::vector<std::uint64_t> words((lanes.size() + 63) / 64, 0);
    for (std::size_t i = 0; i < lanes.size(); ++i) {
      if (lanes[i] > 0) words[i / 64] |= 1ull << (i % 64);
    }
    raw(words.data(), words.size() * sizeof(std::uint64_t));
  }
  std::vector<std::uint8_t> take() { return std::move(bytes_); }

 private:
  std::vector<std::uint8_t> bytes_;
};

class Reader {
 public:
  /// Consumes the magic (and the kind field on version >= 2), checking
  /// the stored kind against `expected`.
  Reader(const std::vector<std::uint8_t>& bytes, ModelIo::Kind expected)
      : bytes_(bytes) {
    version_ = parse_magic(bytes);
    pos_ = kMagicSize;
    const auto kind = version_ >= 2
                          ? static_cast<ModelIo::Kind>(u64())
                          : ModelIo::Kind::kUniVsa;
    UNIVSA_REQUIRE(kind == expected,
                   ".uvsa file holds model kind " +
                       std::to_string(static_cast<std::uint64_t>(kind)) +
                       ", not the requested kind " +
                       std::to_string(
                           static_cast<std::uint64_t>(expected)) +
                       " — use the matching loader");
  }

  std::uint64_t version() const { return version_; }

  std::uint64_t u64() {
    UNIVSA_REQUIRE(pos_ + 8 <= bytes_.size(), "truncated .uvsa data");
    std::uint64_t v = 0;
    for (int i = 0; i < 8; ++i) {
      v |= static_cast<std::uint64_t>(bytes_[pos_ + i]) << (8 * i);
    }
    pos_ += 8;
    return v;
  }
  void raw(void* out, std::size_t n) {
    UNIVSA_REQUIRE(pos_ + n <= bytes_.size(), "truncated .uvsa data");
    std::memcpy(out, bytes_.data() + pos_, n);
    pos_ += n;
  }
  BitVec bitvec(std::size_t expected_size) {
    const std::uint64_t n = u64();
    UNIVSA_REQUIRE(n == expected_size, "unexpected vector length in .uvsa");
    BitVec v(n);
    std::vector<std::uint64_t> words((n + 63) / 64);
    raw(words.data(), words.size() * sizeof(std::uint64_t));
    for (std::size_t i = 0; i < n; ++i) {
      v.set(i, (words[i / 64] >> (i % 64)) & 1ULL ? 1 : -1);
    }
    return v;
  }
  /// Inverse of Writer::lanes — unpacks to ±1 int8.
  std::vector<std::int8_t> lanes(std::size_t expected_count) {
    const std::uint64_t n = u64();
    UNIVSA_REQUIRE(n == expected_count, "unexpected lane count in .uvsa");
    std::vector<std::uint64_t> words((n + 63) / 64);
    raw(words.data(), words.size() * sizeof(std::uint64_t));
    std::vector<std::int8_t> out(n);
    for (std::size_t i = 0; i < n; ++i) {
      out[i] = (words[i / 64] >> (i % 64)) & 1ULL ? 1 : -1;
    }
    return out;
  }
  bool exhausted() const { return pos_ == bytes_.size(); }

 private:
  const std::vector<std::uint8_t>& bytes_;
  std::size_t pos_ = 0;
  std::uint64_t version_ = 0;
};

}  // namespace

ModelIo::Kind ModelIo::peek_kind(const std::vector<std::uint8_t>& bytes) {
  const std::uint64_t version = parse_magic(bytes);
  if (version < 2) return Kind::kUniVsa;
  UNIVSA_REQUIRE(bytes.size() >= kMagicSize + 8, "truncated .uvsa data");
  std::uint64_t kind = 0;
  for (int i = 0; i < 8; ++i) {
    kind |= static_cast<std::uint64_t>(bytes[kMagicSize + i]) << (8 * i);
  }
  UNIVSA_REQUIRE(kind >= 1 && kind <= 3, "unknown .uvsa model kind");
  return static_cast<Kind>(kind);
}

std::vector<std::uint8_t> ModelIo::to_bytes(const Model& model) {
  const ModelConfig& c = model.config();
  Writer w(Kind::kUniVsa);
  w.u64(c.W);
  w.u64(c.L);
  w.u64(c.C);
  w.u64(c.M);
  w.u64(c.D_H);
  w.u64(c.D_L);
  w.u64(c.D_K);
  w.u64(c.O);
  w.u64(c.Theta);

  w.raw(model.mask().data(), model.mask().size());
  for (const auto& v : model.value_table_high()) w.bitvec(v);
  for (const auto& v : model.value_table_low()) w.bitvec(v);
  for (const auto& kb : model.kernel_bits()) {
    for (const auto lanes : kb) w.u64(lanes);
  }
  for (const auto& v : model.feature_vectors()) w.bitvec(v);
  for (const auto& v : model.class_vectors()) w.bitvec(v);
  return w.take();
}

Model ModelIo::from_bytes(const std::vector<std::uint8_t>& bytes) {
  Reader r(bytes, Kind::kUniVsa);

  ModelConfig c;
  c.W = r.u64();
  c.L = r.u64();
  c.C = r.u64();
  c.M = r.u64();
  c.D_H = r.u64();
  c.D_L = r.u64();
  c.D_K = r.u64();
  c.O = r.u64();
  c.Theta = r.u64();
  c.validate();
  UNIVSA_REQUIRE(c.D_H <= 32, "unsupported D_H in .uvsa");
  // Plausibility caps so a corrupted header can't drive huge allocations
  // before the per-section truncation checks kick in.
  UNIVSA_REQUIRE(c.W <= (1u << 16) && c.L <= (1u << 16) &&
                     c.features() <= (1u << 22) && c.C <= (1u << 16) &&
                     c.M <= (1u << 16) && c.D_K <= 63 &&
                     c.O <= (1u << 16) && c.Theta <= (1u << 10) &&
                     c.Theta * c.C <= (1u << 20),
                 "implausible .uvsa dimensions");

  Model model;
  model.config_ = c;
  model.mask_.resize(c.features());
  r.raw(model.mask_.data(), model.mask_.size());
  for (const auto m : model.mask_) {
    UNIVSA_REQUIRE(m == 0 || m == 1, "mask entries must be 0/1");
  }
  model.v_high_.reserve(c.M);
  for (std::size_t m = 0; m < c.M; ++m) {
    model.v_high_.push_back(r.bitvec(c.D_H));
  }
  model.v_low_.reserve(c.M);
  for (std::size_t m = 0; m < c.M; ++m) {
    model.v_low_.push_back(r.bitvec(c.D_L));
  }
  const std::size_t kk = c.D_K * c.D_K;
  const std::uint32_t lane_mask =
      c.D_H == 32 ? ~0u : (1u << c.D_H) - 1;
  model.kernel_bits_.assign(c.O, std::vector<std::uint32_t>(kk, 0));
  for (auto& kb : model.kernel_bits_) {
    for (auto& lanes : kb) {
      const std::uint64_t v = r.u64();
      UNIVSA_REQUIRE((v & ~static_cast<std::uint64_t>(lane_mask)) == 0,
                     "kernel lanes exceed D_H");
      lanes = static_cast<std::uint32_t>(v);
    }
  }
  model.f_.reserve(c.O);
  for (std::size_t o = 0; o < c.O; ++o) {
    model.f_.push_back(r.bitvec(c.sample_dim()));
  }
  model.c_.reserve(c.Theta * c.C);
  for (std::size_t i = 0; i < c.Theta * c.C; ++i) {
    model.c_.push_back(r.bitvec(c.sample_dim()));
  }
  UNIVSA_REQUIRE(r.exhausted(), "trailing bytes in .uvsa data");
  return model;
}

void ModelIo::save(const Model& model, std::ostream& os) {
  const auto bytes = to_bytes(model);
  os.write(reinterpret_cast<const char*>(bytes.data()),
           static_cast<std::streamsize>(bytes.size()));
  UNIVSA_ENSURE(os.good(), "stream write failed");
}

void ModelIo::save_file(const Model& model, const std::string& path) {
  std::ofstream os(path, std::ios::binary);
  UNIVSA_REQUIRE(os.is_open(), "cannot open file for writing: " + path);
  save(model, os);
}

Model ModelIo::load(std::istream& is) {
  std::ostringstream buffer;
  buffer << is.rdbuf();
  const std::string s = buffer.str();
  return from_bytes(std::vector<std::uint8_t>(s.begin(), s.end()));
}

Model ModelIo::load_file(const std::string& path) {
  std::ifstream is(path, std::ios::binary);
  UNIVSA_REQUIRE(is.is_open(), "cannot open file for reading: " + path);
  return load(is);
}

std::size_t ModelIo::payload_bytes(const Model& model) {
  const ModelConfig& c = model.config();
  const auto bits_to_bytes = [](std::size_t bits) {
    return (bits + 7) / 8;
  };
  std::size_t total = bits_to_bytes(c.M * c.D_H) + bits_to_bytes(c.M * c.D_L);
  total += bits_to_bytes(c.O * c.D_H * c.D_K * c.D_K);
  total += bits_to_bytes(c.W * c.L * c.O);
  total += bits_to_bytes(c.W * c.L * c.Theta * c.C);
  return total;
}

// --- LdcModel ----------------------------------------------------------

std::vector<std::uint8_t> ModelIo::ldc_to_bytes(const LdcModel& model) {
  Writer w(Kind::kLdc);
  w.u64(model.windows_);
  w.u64(model.length_);
  w.u64(model.dim_);
  w.u64(model.v_.size());
  w.u64(model.f_.size());
  w.u64(model.c_.size());
  for (const auto& v : model.v_) w.bitvec(v);
  for (const auto& v : model.f_) w.bitvec(v);
  for (const auto& v : model.c_) w.bitvec(v);
  return w.take();
}

LdcModel ModelIo::ldc_from_bytes(const std::vector<std::uint8_t>& bytes) {
  Reader r(bytes, Kind::kLdc);
  LdcModel model;
  model.windows_ = r.u64();
  model.length_ = r.u64();
  model.dim_ = r.u64();
  const std::uint64_t levels = r.u64();
  const std::uint64_t features = r.u64();
  const std::uint64_t classes = r.u64();
  UNIVSA_REQUIRE(model.windows_ >= 1 && model.length_ >= 1 &&
                     model.dim_ >= 1 && levels >= 1 && classes >= 1,
                 "implausible .uvsa LDC header");
  UNIVSA_REQUIRE(features == model.windows_ * model.length_,
                 "LDC feature count must equal W*L");
  UNIVSA_REQUIRE(model.dim_ <= (1u << 20) && levels <= (1u << 16) &&
                     features <= (1u << 22) && classes <= (1u << 16),
                 "implausible .uvsa LDC dimensions");
  model.v_.reserve(levels);
  for (std::uint64_t i = 0; i < levels; ++i) {
    model.v_.push_back(r.bitvec(model.dim_));
  }
  model.f_.reserve(features);
  for (std::uint64_t i = 0; i < features; ++i) {
    model.f_.push_back(r.bitvec(model.dim_));
  }
  model.c_.reserve(classes);
  for (std::uint64_t i = 0; i < classes; ++i) {
    model.c_.push_back(r.bitvec(model.dim_));
  }
  UNIVSA_REQUIRE(r.exhausted(), "trailing bytes in .uvsa data");
  return model;
}

void ModelIo::save_ldc_file(const LdcModel& model, const std::string& path) {
  std::ofstream os(path, std::ios::binary);
  UNIVSA_REQUIRE(os.is_open(), "cannot open file for writing: " + path);
  const auto bytes = ldc_to_bytes(model);
  os.write(reinterpret_cast<const char*>(bytes.data()),
           static_cast<std::streamsize>(bytes.size()));
  UNIVSA_ENSURE(os.good(), "stream write failed");
}

LdcModel ModelIo::load_ldc_file(const std::string& path) {
  std::ifstream is(path, std::ios::binary);
  UNIVSA_REQUIRE(is.is_open(), "cannot open file for reading: " + path);
  std::ostringstream buffer;
  buffer << is.rdbuf();
  const std::string s = buffer.str();
  return ldc_from_bytes(std::vector<std::uint8_t>(s.begin(), s.end()));
}

// --- LehdcModel --------------------------------------------------------

std::vector<std::uint8_t> ModelIo::lehdc_to_bytes(const LehdcModel& model) {
  Writer w(Kind::kLehdc);
  w.u64(model.windows_);
  w.u64(model.length_);
  w.u64(model.levels_);
  w.u64(model.dim_);
  w.u64(model.c_.size());
  w.lanes(model.v_);
  w.lanes(model.f_);
  for (const auto& v : model.c_) w.bitvec(v);
  return w.take();
}

LehdcModel ModelIo::lehdc_from_bytes(
    const std::vector<std::uint8_t>& bytes) {
  Reader r(bytes, Kind::kLehdc);
  LehdcModel model;
  model.windows_ = r.u64();
  model.length_ = r.u64();
  model.levels_ = r.u64();
  model.dim_ = r.u64();
  const std::uint64_t classes = r.u64();
  UNIVSA_REQUIRE(model.windows_ >= 1 && model.length_ >= 1 &&
                     model.levels_ >= 1 && model.dim_ >= 1 && classes >= 1,
                 "implausible .uvsa LeHDC header");
  const std::uint64_t features = model.windows_ * model.length_;
  UNIVSA_REQUIRE(model.dim_ <= (1u << 20) && model.levels_ <= (1u << 16) &&
                     features <= (1u << 22) && classes <= (1u << 16) &&
                     model.levels_ * model.dim_ <= (1u << 28) &&
                     features * model.dim_ <= (1u << 30),
                 "implausible .uvsa LeHDC dimensions");
  model.v_ = r.lanes(model.levels_ * model.dim_);
  model.f_ = r.lanes(features * model.dim_);
  model.c_.reserve(classes);
  for (std::uint64_t i = 0; i < classes; ++i) {
    model.c_.push_back(r.bitvec(model.dim_));
  }
  UNIVSA_REQUIRE(r.exhausted(), "trailing bytes in .uvsa data");
  return model;
}

void ModelIo::save_lehdc_file(const LehdcModel& model,
                              const std::string& path) {
  std::ofstream os(path, std::ios::binary);
  UNIVSA_REQUIRE(os.is_open(), "cannot open file for writing: " + path);
  const auto bytes = lehdc_to_bytes(model);
  os.write(reinterpret_cast<const char*>(bytes.data()),
           static_cast<std::streamsize>(bytes.size()));
  UNIVSA_ENSURE(os.good(), "stream write failed");
}

LehdcModel ModelIo::load_lehdc_file(const std::string& path) {
  std::ifstream is(path, std::ios::binary);
  UNIVSA_REQUIRE(is.is_open(), "cannot open file for reading: " + path);
  std::ostringstream buffer;
  buffer << is.rdbuf();
  const std::string s = buffer.str();
  return lehdc_from_bytes(std::vector<std::uint8_t>(s.begin(), s.end()));
}

}  // namespace univsa::vsa
