// Zero-allocation batched inference engine over a deployed Model.
//
// The engine owns one InferScratch arena per global-pool worker (plus the
// calling thread) and runs predict_batch / encode_batch / accuracy by
// chunking samples across univsa::global_pool(). Each chunk claims an
// arena, so steady-state batched inference performs no heap allocation:
// the DVP volume, BiConv patch gathers, packed channel words, encoding
// counter planes, the sample vector, and the score buffer are all
// preallocated and reused sample after sample (DESIGN.md "Inference
// engine").
//
// The per-stage kernels live on vsa::Model (`*_into` variants) so the
// hardware functional simulator's bit-identity cross-checks exercise the
// exact code the engine serves with. Engine outputs are property-tested
// bit-identical to Model::predict_reference, the original per-sample
// scalar pipeline.
//
// Thread-safety: the engine parallelizes internally; concurrent calls
// into one engine from multiple external threads are not supported (use
// one engine per caller — arenas are cheap, the Model is shared).
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <vector>

#include "univsa/data/dataset.h"
#include "univsa/vsa/model.h"

namespace univsa::vsa {

class InferEngine {
 public:
  /// Binds to `model` (not owned; must outlive the engine) and sizes one
  /// scratch arena per thread the global pool can run. `kernels`, when
  /// non-null, pins every arena to that SIMD dispatch table (must
  /// outlive the engine; the simd::kernels_for tables are static);
  /// null means the process-wide simd::active() table.
  explicit InferEngine(const Model& model,
                       const simd::Kernels* kernels = nullptr);

  InferEngine(const InferEngine&) = delete;
  InferEngine& operator=(const InferEngine&) = delete;

  const Model& model() const { return *model_; }
  const ModelConfig& config() const { return model_->config(); }
  std::size_t arena_count() const { return scratches_.size(); }

  /// Single-sample inference reusing arena 0; the returned references
  /// stay valid until the next engine call.
  const Prediction& predict(const std::vector<std::uint16_t>& values);
  const BitVec& encode(const std::vector<std::uint16_t>& values);

  /// Batched inference. `out` is resized to the batch and reused across
  /// calls (per-element buffers keep their capacity). `parallel = false`
  /// forces a single-threaded run on arena 0.
  void predict_batch(const std::vector<std::vector<std::uint16_t>>& samples,
                     std::vector<Prediction>& out, bool parallel = true);
  void predict_batch(const data::Dataset& dataset,
                     std::vector<Prediction>& out, bool parallel = true);
  void encode_batch(const std::vector<std::vector<std::uint16_t>>& samples,
                    std::vector<BitVec>& out, bool parallel = true);

  /// Fraction of correct predictions over the dataset.
  double accuracy(const data::Dataset& dataset, bool parallel = true);

 private:
  /// Runs `chunk(arena, begin, end)` over a partition of [0, n), handing
  /// each concurrent chunk its own scratch arena.
  void dispatch(
      std::size_t n, bool parallel,
      const std::function<void(InferScratch&, std::size_t, std::size_t)>&
          chunk);

  const Model* model_;
  std::vector<InferScratch> scratches_;
  std::atomic<std::size_t> next_arena_{0};
};

}  // namespace univsa::vsa
