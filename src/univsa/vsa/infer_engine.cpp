#include "univsa/vsa/infer_engine.h"

#include "univsa/common/contracts.h"
#include "univsa/common/thread_pool.h"
#include "univsa/telemetry/trace.h"

namespace univsa::vsa {

namespace {

// One sample in every 64 runs the stage-traced pipeline, so the
// per-stage latency histograms follow production traffic while the
// batched hot path keeps its <1% telemetry budget (the traced variant
// is bit-identical — it is the same four stage calls). A thread serving
// a trace-sampled request (telemetry::trace_active) always takes the
// traced pipeline instead, so its stage spans join the request tree —
// request-scoped tracing supersedes this flat fallback.
constexpr std::uint32_t kStageSampleEvery = 64;

}  // namespace

InferEngine::InferEngine(const Model& model, const simd::Kernels* kernels)
    : model_(&model) {
  model.config().validate();
  // parallel_for runs at most workers + 1 chunks concurrently (the caller
  // participates), so that many arenas cover every schedule.
  const std::size_t arenas = global_pool().thread_count() + 1;
  scratches_.reserve(arenas);
  for (std::size_t i = 0; i < arenas; ++i) {
    scratches_.emplace_back(model.config());
    scratches_.back().simd_kernels = kernels;
  }
}

void InferEngine::dispatch(
    std::size_t n, bool parallel,
    const std::function<void(InferScratch&, std::size_t, std::size_t)>&
        chunk) {
  if (n == 0) return;
  if (!parallel || scratches_.size() == 1) {
    chunk(scratches_[0], 0, n);
    return;
  }
  next_arena_.store(0);
  global_pool().parallel_for(n, [&](std::size_t begin, std::size_t end) {
    InferScratch& s = scratches_[next_arena_.fetch_add(1)];
    chunk(s, begin, end);
  });
}

const Prediction& InferEngine::predict(
    const std::vector<std::uint16_t>& values) {
  // Single-sample calls always take the stage-traced pipeline — the
  // span cost is invisible next to a whole prediction.
  model_->predict_into_traced(values, scratches_[0]);
  return scratches_[0].prediction;
}

const BitVec& InferEngine::encode(const std::vector<std::uint16_t>& values) {
  InferScratch& s = scratches_[0];
  model_->project_values_into(values, s.volume);
  model_->convolve_into(s.volume, s);
  model_->encode_into(s);
  return s.sample;
}

void InferEngine::predict_batch(
    const std::vector<std::vector<std::uint16_t>>& samples,
    std::vector<Prediction>& out, bool parallel) {
  UNIVSA_SPAN("engine.predict_batch");
  out.resize(samples.size());
  dispatch(samples.size(), parallel,
           [&](InferScratch& s, std::size_t begin, std::size_t end) {
             for (std::size_t i = begin; i < end; ++i) {
               if (telemetry::trace_active() ||
                   telemetry::sample_tick(kStageSampleEvery)) {
                 model_->predict_into_traced(samples[i], s);
               } else {
                 model_->predict_into(samples[i], s);
               }
               out[i] = s.prediction;
             }
           });
}

void InferEngine::predict_batch(const data::Dataset& dataset,
                                std::vector<Prediction>& out, bool parallel) {
  const ModelConfig& c = model_->config();
  UNIVSA_REQUIRE(dataset.windows() == c.W && dataset.length() == c.L,
                 "dataset geometry mismatch");
  UNIVSA_SPAN("engine.predict_batch");
  out.resize(dataset.size());
  dispatch(dataset.size(), parallel,
           [&](InferScratch& s, std::size_t begin, std::size_t end) {
             for (std::size_t i = begin; i < end; ++i) {
               if (telemetry::trace_active() ||
                   telemetry::sample_tick(kStageSampleEvery)) {
                 model_->predict_into_traced(dataset.values(i), s);
               } else {
                 model_->predict_into(dataset.values(i), s);
               }
               out[i] = s.prediction;
             }
           });
}

void InferEngine::encode_batch(
    const std::vector<std::vector<std::uint16_t>>& samples,
    std::vector<BitVec>& out, bool parallel) {
  out.resize(samples.size());
  dispatch(samples.size(), parallel,
           [&](InferScratch& s, std::size_t begin, std::size_t end) {
             for (std::size_t i = begin; i < end; ++i) {
               model_->project_values_into(samples[i], s.volume);
               model_->convolve_into(s.volume, s);
               model_->encode_into(s);
               out[i] = s.sample;
             }
           });
}

double InferEngine::accuracy(const data::Dataset& dataset, bool parallel) {
  UNIVSA_REQUIRE(!dataset.empty(), "empty dataset");
  const ModelConfig& c = model_->config();
  UNIVSA_REQUIRE(dataset.windows() == c.W && dataset.length() == c.L,
                 "dataset geometry mismatch");
  UNIVSA_SPAN("engine.accuracy");
  std::atomic<std::size_t> correct{0};
  dispatch(dataset.size(), parallel,
           [&](InferScratch& s, std::size_t begin, std::size_t end) {
             std::size_t local = 0;
             for (std::size_t i = begin; i < end; ++i) {
               if (telemetry::trace_active() ||
                   telemetry::sample_tick(kStageSampleEvery)) {
                 model_->predict_into_traced(dataset.values(i), s);
               } else {
                 model_->predict_into(dataset.values(i), s);
               }
               if (s.prediction.label == dataset.label(i)) ++local;
             }
             correct.fetch_add(local);
           });
  return static_cast<double>(correct.load()) /
         static_cast<double>(dataset.size());
}

}  // namespace univsa::vsa
