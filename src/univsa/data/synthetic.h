// Synthetic benchmark generators.
//
// The paper evaluates on public EEG/BCI/VSA datasets (EEGMMI, BCI-III-V,
// CHB-B, CHB-IB, ISOLET, HAR). Those archives are not available in this
// offline environment, so each benchmark is replaced by a deterministic
// synthetic generator with the *same interface contract* the models see:
// (W, L) grids of values discretized to M = 256 levels, the Table I class
// counts, and the Table I signal domain. See DESIGN.md §2 for the
// substitution rationale.
//
// Time-domain tasks synthesize windowed multi-tone signals: every class
// shares a common tone bank (so classes overlap, like real EEG) plus
// class-specific tones scaled by `separation`; samples add phase jitter,
// amplitude jitter, and white noise. Frequency-domain tasks synthesize
// per-window spectral envelopes (Gaussian bumps over the L frequency
// bins) whose centers shift per class.
//
// `noise` and `separation` are calibrated per benchmark (see
// benchmarks.cpp) so task difficulty lands in the paper's accuracy band —
// the point is to exercise the same model-capacity regime, not to imitate
// physiology.
#pragma once

#include <cstdint>
#include <string>

#include "univsa/data/dataset.h"
#include "univsa/data/discretizer.h"

namespace univsa::data {

/// Workload family — selects the generative process. kMultiTone is the
/// Table I stand-in machinery above; the other three model the
/// heterogeneous tenants of a multi-tenant model zoo (docs/ZOO.md):
/// distinct signal structure per family, so one tenant's model is
/// useless on another tenant's traffic.
enum class Family {
  /// Multi-tone / spectral-bump generators (Table I stand-ins).
  kMultiTone,
  /// Keyword spotting: per-class formant *trajectories* over a
  /// spectrogram grid (windows = time frames, length = mel-like bins)
  /// with per-utterance speaking-rate warp. Class identity lives in the
  /// trajectory shape, not in any single frame.
  kKeyword,
  /// Anomaly detection: class 0 is stationary machine hum; class k > 0
  /// injects a transient broadband burst with class-specific ring
  /// frequency into a random contiguous span of windows. Naturally
  /// imbalanced (`imbalance` shifts mass toward class 0).
  kAnomaly,
  /// Gesture recognition: inertial-style chirps — class-specific
  /// frequency sweep plus attack/decay amplitude envelope over the
  /// whole trace, with per-trial speed and energy jitter.
  kGesture,
};

struct SyntheticSpec {
  std::string name;
  Family family = Family::kMultiTone;
  Domain domain = Domain::kTime;
  std::size_t windows = 16;
  std::size_t length = 64;
  std::size_t classes = 2;
  std::size_t levels = 256;
  std::size_t train_count = 600;
  std::size_t test_count = 300;
  /// Scale of class-specific signal components.
  double separation = 1.0;
  /// White-noise stddev relative to unit signal amplitude.
  double noise = 0.8;
  /// 0 = balanced. For 2-class tasks, fraction shifted toward class 0
  /// (CHB-IB models the imbalanced seizure task).
  double imbalance = 0.0;
  /// Session drift: relative magnitude of a deterministic perturbation
  /// applied to every prototype parameter (tone amplitudes/frequencies,
  /// bump centers/gains) after drawing them. Models the day-to-day
  /// non-stationarity of BCI signals ([22]: "the need for on-line
  /// learning in BCIs"): two specs differing only in `drift`/`drift_seed`
  /// describe the same subject in different sessions.
  double drift = 0.0;
  std::uint64_t drift_seed = 1;
  /// Time domain only: number of class tones (of 3) that are
  /// phase-locked to the trial onset. Locked tones create per-feature
  /// mean signal (easy for pointwise models); free tones only carry
  /// class information in their local oscillation structure.
  std::size_t phase_locked_tones = 1;
  /// Per-feature probability of a heavy-tailed recording artifact
  /// (electrode pops / motion spikes). Quantization clips these; float
  /// covariance models feel them — part of why binary VSA is robust on
  /// BCI signals.
  double artifact_rate = 0.02;
  std::uint64_t seed = 1;
};

struct SyntheticResult {
  Dataset train;
  Dataset test;
  Discretizer discretizer;
};

/// Deterministic: same spec (including seed) -> identical datasets.
SyntheticResult generate(const SyntheticSpec& spec);

}  // namespace univsa::data
