#include "univsa/data/discretizer.h"

#include <algorithm>
#include <cmath>

#include "univsa/common/contracts.h"

namespace univsa::data {

Discretizer::Discretizer(std::size_t levels, double trim)
    : levels_(levels), trim_(trim) {
  UNIVSA_REQUIRE(levels >= 2, "need at least two levels");
  UNIVSA_REQUIRE(trim >= 0.0 && trim < 0.5, "trim must be in [0, 0.5)");
}

void Discretizer::fit(std::span<const float> values) {
  UNIVSA_REQUIRE(!values.empty(), "cannot fit on empty data");
  std::vector<float> sorted(values.begin(), values.end());
  std::sort(sorted.begin(), sorted.end());
  const auto k = static_cast<std::size_t>(
      trim_ * static_cast<double>(sorted.size()));
  lo_ = sorted[k];
  hi_ = sorted[sorted.size() - 1 - k];
  if (hi_ <= lo_) hi_ = lo_ + 1.0f;  // degenerate signal: one bin wide
  fitted_ = true;
}

std::uint16_t Discretizer::transform(float value) const {
  UNIVSA_REQUIRE(fitted_, "transform before fit");
  const float t = (value - lo_) / (hi_ - lo_);
  const auto level = static_cast<long>(
      std::floor(static_cast<double>(t) * static_cast<double>(levels_)));
  const long clamped =
      std::clamp<long>(level, 0, static_cast<long>(levels_) - 1);
  return static_cast<std::uint16_t>(clamped);
}

std::vector<std::uint16_t> Discretizer::transform(
    std::span<const float> values) const {
  std::vector<std::uint16_t> out(values.size());
  for (std::size_t i = 0; i < values.size(); ++i) {
    out[i] = transform(values[i]);
  }
  return out;
}

float Discretizer::inverse(std::uint16_t level) const {
  UNIVSA_REQUIRE(fitted_, "inverse before fit");
  UNIVSA_REQUIRE(level < levels_, "level out of range");
  const double mid = (static_cast<double>(level) + 0.5) /
                     static_cast<double>(levels_);
  return lo_ + static_cast<float>(mid) * (hi_ - lo_);
}

}  // namespace univsa::data
