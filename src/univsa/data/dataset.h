// Dataset representation.
//
// Every classifier in the repo consumes the same representation the paper
// feeds UniVSA: each sample is a (W, L) grid of feature values discretized
// to M levels (Sec. V-A: "inputs are discretized to 256 levels in advance
// and shaped as 2-D of size (W, L)"). The classic-ML baselines view the
// same grid as a flat normalized float vector.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "univsa/common/rng.h"
#include "univsa/tensor/tensor.h"

namespace univsa::data {

/// Signal domain of a benchmark (Table I column "Domain").
enum class Domain { kTime, kFrequency };

std::string to_string(Domain d);

class Dataset {
 public:
  Dataset() = default;
  Dataset(std::size_t windows, std::size_t length, std::size_t classes,
          std::size_t levels);

  std::size_t windows() const { return windows_; }
  std::size_t length() const { return length_; }
  std::size_t classes() const { return classes_; }
  std::size_t levels() const { return levels_; }
  /// N = W · L.
  std::size_t features() const { return windows_ * length_; }
  std::size_t size() const { return labels_.size(); }
  bool empty() const { return labels_.empty(); }

  /// Appends a sample; `values` holds W·L entries in [0, levels).
  void add(std::vector<std::uint16_t> values, int label);

  const std::vector<std::uint16_t>& values(std::size_t i) const;
  int label(std::size_t i) const;
  const std::vector<int>& labels() const { return labels_; }

  /// Flat float matrix (size, N) with values normalized to [0, 1] —
  /// the view the LDA/KNN/SVM baselines train on.
  Tensor to_float_matrix() const;

  /// Deterministically shuffles sample order.
  void shuffle(Rng& rng);

  /// Subset by index list.
  Dataset subset(const std::vector<std::size_t>& indices) const;

  /// Per-class sample counts.
  std::vector<std::size_t> class_counts() const;

 private:
  std::size_t windows_ = 0;
  std::size_t length_ = 0;
  std::size_t classes_ = 0;
  std::size_t levels_ = 0;
  std::vector<std::vector<std::uint16_t>> values_;
  std::vector<int> labels_;
};

struct TrainTestSplit {
  Dataset train;
  Dataset test;
};

/// Stratified split: `test_fraction` of each class goes to test.
TrainTestSplit stratified_split(const Dataset& all, double test_fraction,
                                Rng& rng);

}  // namespace univsa::data
