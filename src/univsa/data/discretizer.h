// Uniform value discretization (Sec. V-A: "inputs are discretized to 256
// levels in advance").
//
// Fits a global [lo, hi] range on training signals (with a small quantile
// trim so outliers don't crush the dynamic range), then maps floats to
// integer levels in [0, M). The same fitted instance must transform train
// and test data — fitting on test data would leak.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

namespace univsa::data {

class Discretizer {
 public:
  /// `levels` = M; `trim` = fraction trimmed from each tail when fitting.
  explicit Discretizer(std::size_t levels = 256, double trim = 0.005);

  /// Fit the range from raw signal values.
  void fit(std::span<const float> values);

  bool fitted() const { return fitted_; }
  std::size_t levels() const { return levels_; }
  float lo() const { return lo_; }
  float hi() const { return hi_; }

  /// Map one value to its level (clamped to [0, M)).
  std::uint16_t transform(float value) const;

  std::vector<std::uint16_t> transform(std::span<const float> values) const;

  /// Level midpoint back in signal units (for diagnostics).
  float inverse(std::uint16_t level) const;

 private:
  std::size_t levels_;
  double trim_;
  float lo_ = 0.0f;
  float hi_ = 1.0f;
  bool fitted_ = false;
};

}  // namespace univsa::data
