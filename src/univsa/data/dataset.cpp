#include "univsa/data/dataset.h"

#include "univsa/common/contracts.h"

namespace univsa::data {

std::string to_string(Domain d) {
  return d == Domain::kTime ? "Time" : "Frequency";
}

Dataset::Dataset(std::size_t windows, std::size_t length,
                 std::size_t classes, std::size_t levels)
    : windows_(windows), length_(length), classes_(classes),
      levels_(levels) {
  UNIVSA_REQUIRE(windows > 0 && length > 0, "empty sample geometry");
  UNIVSA_REQUIRE(classes >= 2, "need at least two classes");
  UNIVSA_REQUIRE(levels >= 2, "need at least two levels");
}

void Dataset::add(std::vector<std::uint16_t> values, int label) {
  UNIVSA_REQUIRE(values.size() == features(), "sample size mismatch");
  UNIVSA_REQUIRE(label >= 0 && static_cast<std::size_t>(label) < classes_,
                 "label out of range");
  for (const auto v : values) {
    UNIVSA_REQUIRE(v < levels_, "value exceeds quantization levels");
  }
  values_.push_back(std::move(values));
  labels_.push_back(label);
}

const std::vector<std::uint16_t>& Dataset::values(std::size_t i) const {
  UNIVSA_REQUIRE(i < values_.size(), "sample index out of range");
  return values_[i];
}

int Dataset::label(std::size_t i) const {
  UNIVSA_REQUIRE(i < labels_.size(), "sample index out of range");
  return labels_[i];
}

Tensor Dataset::to_float_matrix() const {
  UNIVSA_REQUIRE(!empty(), "empty dataset");
  Tensor m({size(), features()});
  const float scale = 1.0f / static_cast<float>(levels_ - 1);
  for (std::size_t i = 0; i < size(); ++i) {
    for (std::size_t j = 0; j < features(); ++j) {
      m.at(i, j) = static_cast<float>(values_[i][j]) * scale;
    }
  }
  return m;
}

void Dataset::shuffle(Rng& rng) {
  const auto perm = rng.permutation(size());
  std::vector<std::vector<std::uint16_t>> new_values(size());
  std::vector<int> new_labels(size());
  for (std::size_t i = 0; i < size(); ++i) {
    new_values[i] = std::move(values_[perm[i]]);
    new_labels[i] = labels_[perm[i]];
  }
  values_ = std::move(new_values);
  labels_ = std::move(new_labels);
}

Dataset Dataset::subset(const std::vector<std::size_t>& indices) const {
  Dataset out(windows_, length_, classes_, levels_);
  for (const auto i : indices) {
    out.add(values(i), label(i));
  }
  return out;
}

std::vector<std::size_t> Dataset::class_counts() const {
  std::vector<std::size_t> counts(classes_, 0);
  for (const auto y : labels_) ++counts[static_cast<std::size_t>(y)];
  return counts;
}

TrainTestSplit stratified_split(const Dataset& all, double test_fraction,
                                Rng& rng) {
  UNIVSA_REQUIRE(test_fraction > 0.0 && test_fraction < 1.0,
                 "test fraction must be in (0, 1)");
  std::vector<std::vector<std::size_t>> by_class(all.classes());
  for (std::size_t i = 0; i < all.size(); ++i) {
    by_class[static_cast<std::size_t>(all.label(i))].push_back(i);
  }
  std::vector<std::size_t> train_idx;
  std::vector<std::size_t> test_idx;
  for (auto& members : by_class) {
    // Shuffle within class for an unbiased split.
    for (std::size_t i = members.size(); i > 1; --i) {
      std::swap(members[i - 1], members[rng.uniform_index(i)]);
    }
    const auto n_test = static_cast<std::size_t>(
        static_cast<double>(members.size()) * test_fraction);
    for (std::size_t i = 0; i < members.size(); ++i) {
      (i < n_test ? test_idx : train_idx).push_back(members[i]);
    }
  }
  TrainTestSplit split;
  split.train = all.subset(train_idx);
  split.test = all.subset(test_idx);
  split.train.shuffle(rng);
  return split;
}

}  // namespace univsa::data
