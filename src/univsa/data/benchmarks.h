// The six Table I benchmarks.
//
// Each entry couples the synthetic stand-in for the paper's dataset
// (geometry, domain, calibrated difficulty — see synthetic.h) with the
// Table I searched UniVSA configuration (D_H, D_L, D_K, O, Θ).
#pragma once

#include <string>
#include <vector>

#include "univsa/data/synthetic.h"
#include "univsa/vsa/model_config.h"

namespace univsa::data {

struct Benchmark {
  SyntheticSpec spec;
  vsa::ModelConfig config;  ///< Table I searched configuration
};

/// All six benchmarks in Table I order:
/// EEGMMI, BCI-III-V, CHB-B, CHB-IB, ISOLET, HAR.
const std::vector<Benchmark>& table1_benchmarks();

/// The model-zoo tenant workloads (docs/ZOO.md): KWS (keyword
/// spotting), ANOMALY (imbalanced machine monitoring), GESTURE
/// (inertial gestures). Heterogeneous geometry and signal family — a
/// model trained for one is useless on another, which is what the
/// multi-tenant serving drill exercises.
const std::vector<Benchmark>& zoo_benchmarks();

/// Lookup by name across Table I and the zoo; throws
/// std::invalid_argument for unknown names.
const Benchmark& find_benchmark(const std::string& name);

}  // namespace univsa::data
