#include "univsa/data/csv_io.h"

#include <algorithm>
#include <charconv>
#include <fstream>
#include <sstream>

#include "univsa/common/contracts.h"

namespace univsa::data {

namespace {

std::vector<std::string> split_csv_line(const std::string& line) {
  std::vector<std::string> cells;
  std::string cell;
  for (const char ch : line) {
    if (ch == ',') {
      cells.push_back(cell);
      cell.clear();
    } else if (ch != '\r') {
      cell += ch;
    }
  }
  cells.push_back(cell);
  return cells;
}

bool parse_int(const std::string& s, long& out) {
  const char* begin = s.data();
  const char* end = s.data() + s.size();
  while (begin < end && *begin == ' ') ++begin;
  const auto [ptr, ec] = std::from_chars(begin, end, out);
  return ec == std::errc() && ptr == end;
}

bool parse_float(const std::string& s, float& out) {
  try {
    std::size_t used = 0;
    out = std::stof(s, &used);
    while (used < s.size() && s[used] == ' ') ++used;
    return used == s.size();
  } catch (...) {
    return false;
  }
}

}  // namespace

RawTable load_raw_csv(const std::string& path) {
  std::ifstream is(path);
  UNIVSA_REQUIRE(is.is_open(), "cannot open CSV: " + path);

  RawTable table;
  std::string line;
  std::size_t line_no = 0;
  while (std::getline(is, line)) {
    ++line_no;
    if (line.empty()) continue;
    const auto cells = split_csv_line(line);
    UNIVSA_REQUIRE(cells.size() >= 2,
                   "CSV row needs a label and at least one feature "
                   "(line " +
                       std::to_string(line_no) + ")");
    long label = 0;
    if (!parse_int(cells[0], label)) {
      // Non-integer label cell on the first line: header.
      UNIVSA_REQUIRE(line_no == 1 && table.rows.empty(),
                     "non-integer label at line " +
                         std::to_string(line_no));
      continue;
    }
    UNIVSA_REQUIRE(label >= 0, "negative label at line " +
                                   std::to_string(line_no));

    std::vector<float> row(cells.size() - 1);
    for (std::size_t i = 1; i < cells.size(); ++i) {
      UNIVSA_REQUIRE(parse_float(cells[i], row[i - 1]),
                     "non-numeric cell at line " +
                         std::to_string(line_no) + ", column " +
                         std::to_string(i));
    }
    if (table.rows.empty()) {
      table.features = row.size();
    } else {
      UNIVSA_REQUIRE(row.size() == table.features,
                     "ragged CSV row at line " + std::to_string(line_no));
    }
    table.rows.push_back(std::move(row));
    table.labels.push_back(static_cast<int>(label));
  }
  UNIVSA_REQUIRE(!table.rows.empty(), "empty CSV: " + path);
  return table;
}

void save_csv(const Dataset& dataset, const std::string& path) {
  UNIVSA_REQUIRE(!dataset.empty(), "empty dataset");
  std::ofstream os(path);
  UNIVSA_REQUIRE(os.is_open(), "cannot open CSV for writing: " + path);
  os << "label";
  for (std::size_t j = 0; j < dataset.features(); ++j) {
    os << ",f" << j;
  }
  os << '\n';
  for (std::size_t i = 0; i < dataset.size(); ++i) {
    os << dataset.label(i);
    for (const auto v : dataset.values(i)) {
      os << ',' << v;
    }
    os << '\n';
  }
  UNIVSA_ENSURE(os.good(), "CSV write failed");
}

Dataset load_csv(const std::string& path, std::size_t windows,
                 std::size_t length, std::size_t classes,
                 std::size_t levels) {
  const RawTable table = load_raw_csv(path);
  UNIVSA_REQUIRE(table.features == windows * length,
                 "CSV feature count does not match W*L");
  Dataset out(windows, length, classes, levels);
  for (std::size_t i = 0; i < table.size(); ++i) {
    std::vector<std::uint16_t> values(table.features);
    for (std::size_t j = 0; j < table.features; ++j) {
      const float v = table.rows[i][j];
      UNIVSA_REQUIRE(v >= 0.0f && v == static_cast<float>(
                                           static_cast<long>(v)) &&
                         static_cast<std::size_t>(v) < levels,
                     "CSV cell is not a quantized level in [0, M)");
      values[j] = static_cast<std::uint16_t>(v);
    }
    out.add(std::move(values), table.labels[i]);
  }
  return out;
}

CsvDatasetResult build_datasets(const RawTable& train_table,
                                const RawTable& test_table,
                                const CsvDatasetOptions& options) {
  UNIVSA_REQUIRE(options.windows > 0 && options.length > 0,
                 "geometry (W, L) is required");
  UNIVSA_REQUIRE(train_table.size() > 0 && test_table.size() > 0,
                 "empty tables");
  UNIVSA_REQUIRE(test_table.features == train_table.features,
                 "train/test feature mismatch");
  const std::size_t target = options.windows * options.length;
  if (options.pad_features) {
    UNIVSA_REQUIRE(train_table.features <= target,
                   "more features than W*L");
  } else {
    UNIVSA_REQUIRE(train_table.features == target,
                   "feature count does not match W*L "
                   "(set pad_features to pad)");
  }

  std::size_t classes = options.classes;
  if (classes == 0) {
    int max_label = 0;
    for (const auto y : train_table.labels) {
      max_label = std::max(max_label, y);
    }
    for (const auto y : test_table.labels) {
      max_label = std::max(max_label, y);
    }
    classes = static_cast<std::size_t>(max_label) + 1;
  }
  UNIVSA_REQUIRE(classes >= 2, "need at least two classes");

  CsvDatasetResult result;
  result.discretizer = Discretizer(options.levels);
  std::vector<float> train_values;
  train_values.reserve(train_table.size() * train_table.features);
  for (const auto& row : train_table.rows) {
    train_values.insert(train_values.end(), row.begin(), row.end());
  }
  result.discretizer.fit(train_values);

  const auto mid =
      static_cast<std::uint16_t>(options.levels / 2);
  const auto convert = [&](const RawTable& table, Dataset& out) {
    for (std::size_t i = 0; i < table.size(); ++i) {
      std::vector<std::uint16_t> values(target, mid);
      for (std::size_t j = 0; j < table.features; ++j) {
        values[j] = result.discretizer.transform(table.rows[i][j]);
      }
      UNIVSA_REQUIRE(table.labels[i] >= 0 &&
                         static_cast<std::size_t>(table.labels[i]) <
                             classes,
                     "label out of range");
      out.add(std::move(values), table.labels[i]);
    }
  };

  result.train = Dataset(options.windows, options.length, classes,
                         options.levels);
  result.test = Dataset(options.windows, options.length, classes,
                        options.levels);
  convert(train_table, result.train);
  convert(test_table, result.test);
  return result;
}

}  // namespace univsa::data
