#include "univsa/data/synthetic.h"

#include <algorithm>
#include <cmath>
#include <numbers>
#include <vector>

#include "univsa/common/contracts.h"

namespace univsa::data {

namespace {

struct Tone {
  double freq;   // cycles per sample index
  double amp;
  double phase;
};

struct SpectralBump {
  double center;  // frequency-bin position in [0, L)
  double width;
  double amp;
};

/// Class prototype description drawn once per dataset.
struct TimePrototypes {
  std::vector<Tone> shared;
  std::vector<std::vector<Tone>> per_class;
  std::vector<double> window_gain;  // slow per-window modulation (shared)
};

struct FreqPrototypes {
  std::vector<SpectralBump> shared;
  std::vector<std::vector<SpectralBump>> per_class;
};

TimePrototypes draw_time_prototypes(const SyntheticSpec& spec, Rng& rng) {
  TimePrototypes p;
  constexpr std::size_t kSharedTones = 3;
  constexpr std::size_t kClassTones = 3;
  for (std::size_t k = 0; k < kSharedTones; ++k) {
    p.shared.push_back({rng.uniform(0.02, 0.45), rng.uniform(0.5, 1.0),
                        rng.uniform(0.0, 2.0 * std::numbers::pi)});
  }
  p.per_class.resize(spec.classes);
  for (auto& tones : p.per_class) {
    for (std::size_t k = 0; k < kClassTones; ++k) {
      tones.push_back({rng.uniform(0.02, 0.45),
                       spec.separation * rng.uniform(0.4, 1.0),
                       rng.uniform(0.0, 2.0 * std::numbers::pi)});
    }
  }
  p.window_gain.resize(spec.windows);
  for (auto& g : p.window_gain) g = rng.uniform(0.7, 1.3);
  return p;
}

FreqPrototypes draw_freq_prototypes(const SyntheticSpec& spec, Rng& rng) {
  FreqPrototypes p;
  constexpr std::size_t kSharedBumps = 2;
  constexpr std::size_t kClassBumps = 3;
  const auto len = static_cast<double>(spec.length);
  for (std::size_t k = 0; k < kSharedBumps; ++k) {
    p.shared.push_back({rng.uniform(0.0, len), rng.uniform(0.05, 0.2) * len,
                        rng.uniform(0.5, 1.0)});
  }
  p.per_class.resize(spec.classes);
  for (auto& bumps : p.per_class) {
    for (std::size_t k = 0; k < kClassBumps; ++k) {
      bumps.push_back({rng.uniform(0.0, len),
                       rng.uniform(0.04, 0.15) * len,
                       spec.separation * rng.uniform(0.4, 1.0)});
    }
  }
  return p;
}

std::vector<float> draw_time_sample(const SyntheticSpec& spec,
                                    const TimePrototypes& p, int label,
                                    Rng& rng) {
  // Sliding windows with 50% overlap over one continuous trace.
  const std::size_t hop = std::max<std::size_t>(1, spec.length / 2);
  std::vector<float> sample(spec.windows * spec.length);
  const double amp_jitter = rng.uniform(0.8, 1.2);
  const auto& class_tones = p.per_class[static_cast<std::size_t>(label)];

  // Shared tones are pure nuisance: their phase is redrawn per sample, so
  // they add structured (non-white) interference with no class signal.
  std::vector<double> shared_phase(p.shared.size());
  for (auto& ph : shared_phase) {
    ph = rng.uniform(0.0, 2.0 * std::numbers::pi);
  }
  // The first `phase_locked_tones` class tones are phase-locked (trials
  // are onset-aligned, so their per-feature means carry the class — what
  // a linear model can use); the rest are phase-free (only the local
  // oscillation structure carries the class — what feature *interaction*
  // models can exploit; this is the regime where BiConv pays off,
  // Sec. III-A2).
  std::vector<double> class_phase(class_tones.size());
  for (std::size_t k = 0; k < class_tones.size(); ++k) {
    class_phase[k] = k < spec.phase_locked_tones
                         ? rng.normal(0.0, 0.4)
                         : rng.uniform(0.0, 2.0 * std::numbers::pi);
  }

  for (std::size_t w = 0; w < spec.windows; ++w) {
    for (std::size_t l = 0; l < spec.length; ++l) {
      const double t = static_cast<double>(w * hop + l);
      double v = 0.0;
      for (std::size_t k = 0; k < p.shared.size(); ++k) {
        const auto& tone = p.shared[k];
        v += tone.amp *
             std::sin(2.0 * std::numbers::pi * tone.freq * t + tone.phase +
                      shared_phase[k]);
      }
      for (std::size_t k = 0; k < class_tones.size(); ++k) {
        const auto& tone = class_tones[k];
        v += amp_jitter * tone.amp *
             std::sin(2.0 * std::numbers::pi * tone.freq * t + tone.phase +
                      class_phase[k]);
      }
      v *= p.window_gain[w];
      v += spec.noise * rng.normal();
      if (spec.artifact_rate > 0.0 && rng.bernoulli(spec.artifact_rate)) {
        v += rng.sign() * rng.uniform(3.0, 8.0);
      }
      sample[w * spec.length + l] = static_cast<float>(v);
    }
  }
  return sample;
}

std::vector<float> draw_freq_sample(const SyntheticSpec& spec,
                                    const FreqPrototypes& p, int label,
                                    Rng& rng) {
  std::vector<float> sample(spec.windows * spec.length);
  const double amp_jitter = rng.uniform(0.8, 1.2);
  const auto& class_bumps = p.per_class[static_cast<std::size_t>(label)];

  // Shared bumps are nuisance: their gain varies strongly per sample.
  std::vector<double> shared_gain(p.shared.size());
  for (auto& g : shared_gain) g = rng.uniform(0.4, 1.6);
  // All but one class bump wander in frequency per sample (smearing the
  // per-bin class means, so pointwise models only see a blurred cue while
  // local-shape models can still lock onto the bump profile).
  std::vector<double> center_jitter(class_bumps.size());
  for (std::size_t k = 0; k < class_bumps.size(); ++k) {
    center_jitter[k] =
        k == 0
            ? 0.0
            : rng.normal(0.0, 0.04 * static_cast<double>(spec.length));
  }

  for (std::size_t w = 0; w < spec.windows; ++w) {
    // Spectra evolve slowly across windows.
    const double wgain =
        1.0 + 0.2 * std::sin(0.5 * static_cast<double>(w) + amp_jitter);
    for (std::size_t l = 0; l < spec.length; ++l) {
      const auto bin = static_cast<double>(l);
      double v = 0.0;
      for (std::size_t k = 0; k < p.shared.size(); ++k) {
        const auto& bump = p.shared[k];
        const double d = (bin - bump.center) / bump.width;
        v += shared_gain[k] * bump.amp * std::exp(-0.5 * d * d);
      }
      for (std::size_t k = 0; k < class_bumps.size(); ++k) {
        const auto& bump = class_bumps[k];
        const double d =
            (bin - bump.center - center_jitter[k]) / bump.width;
        v += amp_jitter * bump.amp * std::exp(-0.5 * d * d);
      }
      v *= wgain;
      v += spec.noise * rng.normal();
      if (spec.artifact_rate > 0.0 && rng.bernoulli(spec.artifact_rate)) {
        v += rng.sign() * rng.uniform(3.0, 8.0);
      }
      sample[w * spec.length + l] = static_cast<float>(v);
    }
  }
  return sample;
}

void apply_drift(const SyntheticSpec& spec, TimePrototypes& p) {
  if (spec.drift <= 0.0) return;
  Rng rng(spec.drift_seed * 0x9E3779B97F4A7C15ULL + 17);
  for (auto& tones : p.per_class) {
    for (auto& tone : tones) {
      tone.amp *= 1.0 + spec.drift * rng.normal();
      tone.freq = std::clamp(tone.freq * (1.0 + 0.5 * spec.drift *
                                                    rng.normal()),
                             0.01, 0.49);
      tone.phase += spec.drift * rng.normal();
    }
  }
  for (auto& g : p.window_gain) g *= 1.0 + spec.drift * rng.normal();
}

void apply_drift(const SyntheticSpec& spec, FreqPrototypes& p) {
  if (spec.drift <= 0.0) return;
  Rng rng(spec.drift_seed * 0x9E3779B97F4A7C15ULL + 17);
  for (auto& bumps : p.per_class) {
    for (auto& bump : bumps) {
      bump.amp *= 1.0 + spec.drift * rng.normal();
      bump.center += spec.drift * rng.normal() *
                     0.1 * static_cast<double>(spec.length);
      bump.width *= 1.0 + 0.5 * spec.drift * rng.normal();
      if (bump.width < 0.5) bump.width = 0.5;
    }
  }
}

int draw_label(const SyntheticSpec& spec, Rng& rng) {
  if (spec.imbalance > 0.0 && spec.classes == 2) {
    const double p0 = 0.5 + spec.imbalance / 2.0;
    return rng.bernoulli(p0) ? 0 : 1;
  }
  return static_cast<int>(rng.uniform_index(spec.classes));
}

}  // namespace

SyntheticResult generate(const SyntheticSpec& spec) {
  UNIVSA_REQUIRE(spec.classes >= 2, "need at least two classes");
  UNIVSA_REQUIRE(spec.train_count > 0 && spec.test_count > 0,
                 "need non-empty train/test");
  UNIVSA_REQUIRE(spec.imbalance >= 0.0 && spec.imbalance < 1.0,
                 "imbalance must be in [0, 1)");

  Rng rng(spec.seed);
  TimePrototypes time_protos;
  FreqPrototypes freq_protos;
  if (spec.domain == Domain::kTime) {
    time_protos = draw_time_prototypes(spec, rng);
    apply_drift(spec, time_protos);
  } else {
    freq_protos = draw_freq_prototypes(spec, rng);
    apply_drift(spec, freq_protos);
  }

  const std::size_t total = spec.train_count + spec.test_count;
  std::vector<std::vector<float>> raw(total);
  std::vector<int> labels(total);
  for (std::size_t i = 0; i < total; ++i) {
    labels[i] = draw_label(spec, rng);
    raw[i] = spec.domain == Domain::kTime
                 ? draw_time_sample(spec, time_protos, labels[i], rng)
                 : draw_freq_sample(spec, freq_protos, labels[i], rng);
  }

  // Fit the discretizer on training signals only.
  SyntheticResult result;
  result.discretizer = Discretizer(spec.levels);
  std::vector<float> train_values;
  train_values.reserve(spec.train_count * raw[0].size());
  for (std::size_t i = 0; i < spec.train_count; ++i) {
    train_values.insert(train_values.end(), raw[i].begin(), raw[i].end());
  }
  result.discretizer.fit(train_values);

  result.train =
      Dataset(spec.windows, spec.length, spec.classes, spec.levels);
  result.test =
      Dataset(spec.windows, spec.length, spec.classes, spec.levels);
  for (std::size_t i = 0; i < total; ++i) {
    auto levels = result.discretizer.transform(raw[i]);
    (i < spec.train_count ? result.train : result.test)
        .add(std::move(levels), labels[i]);
  }
  return result;
}

}  // namespace univsa::data
