#include "univsa/data/synthetic.h"

#include <algorithm>
#include <cmath>
#include <numbers>
#include <vector>

#include "univsa/common/contracts.h"

namespace univsa::data {

namespace {

struct Tone {
  double freq;   // cycles per sample index
  double amp;
  double phase;
};

struct SpectralBump {
  double center;  // frequency-bin position in [0, L)
  double width;
  double amp;
};

/// Class prototype description drawn once per dataset.
struct TimePrototypes {
  std::vector<Tone> shared;
  std::vector<std::vector<Tone>> per_class;
  std::vector<double> window_gain;  // slow per-window modulation (shared)
};

struct FreqPrototypes {
  std::vector<SpectralBump> shared;
  std::vector<std::vector<SpectralBump>> per_class;
};

TimePrototypes draw_time_prototypes(const SyntheticSpec& spec, Rng& rng) {
  TimePrototypes p;
  constexpr std::size_t kSharedTones = 3;
  constexpr std::size_t kClassTones = 3;
  for (std::size_t k = 0; k < kSharedTones; ++k) {
    p.shared.push_back({rng.uniform(0.02, 0.45), rng.uniform(0.5, 1.0),
                        rng.uniform(0.0, 2.0 * std::numbers::pi)});
  }
  p.per_class.resize(spec.classes);
  for (auto& tones : p.per_class) {
    for (std::size_t k = 0; k < kClassTones; ++k) {
      tones.push_back({rng.uniform(0.02, 0.45),
                       spec.separation * rng.uniform(0.4, 1.0),
                       rng.uniform(0.0, 2.0 * std::numbers::pi)});
    }
  }
  p.window_gain.resize(spec.windows);
  for (auto& g : p.window_gain) g = rng.uniform(0.7, 1.3);
  return p;
}

FreqPrototypes draw_freq_prototypes(const SyntheticSpec& spec, Rng& rng) {
  FreqPrototypes p;
  constexpr std::size_t kSharedBumps = 2;
  constexpr std::size_t kClassBumps = 3;
  const auto len = static_cast<double>(spec.length);
  for (std::size_t k = 0; k < kSharedBumps; ++k) {
    p.shared.push_back({rng.uniform(0.0, len), rng.uniform(0.05, 0.2) * len,
                        rng.uniform(0.5, 1.0)});
  }
  p.per_class.resize(spec.classes);
  for (auto& bumps : p.per_class) {
    for (std::size_t k = 0; k < kClassBumps; ++k) {
      bumps.push_back({rng.uniform(0.0, len),
                       rng.uniform(0.04, 0.15) * len,
                       spec.separation * rng.uniform(0.4, 1.0)});
    }
  }
  return p;
}

std::vector<float> draw_time_sample(const SyntheticSpec& spec,
                                    const TimePrototypes& p, int label,
                                    Rng& rng) {
  // Sliding windows with 50% overlap over one continuous trace.
  const std::size_t hop = std::max<std::size_t>(1, spec.length / 2);
  std::vector<float> sample(spec.windows * spec.length);
  const double amp_jitter = rng.uniform(0.8, 1.2);
  const auto& class_tones = p.per_class[static_cast<std::size_t>(label)];

  // Shared tones are pure nuisance: their phase is redrawn per sample, so
  // they add structured (non-white) interference with no class signal.
  std::vector<double> shared_phase(p.shared.size());
  for (auto& ph : shared_phase) {
    ph = rng.uniform(0.0, 2.0 * std::numbers::pi);
  }
  // The first `phase_locked_tones` class tones are phase-locked (trials
  // are onset-aligned, so their per-feature means carry the class — what
  // a linear model can use); the rest are phase-free (only the local
  // oscillation structure carries the class — what feature *interaction*
  // models can exploit; this is the regime where BiConv pays off,
  // Sec. III-A2).
  std::vector<double> class_phase(class_tones.size());
  for (std::size_t k = 0; k < class_tones.size(); ++k) {
    class_phase[k] = k < spec.phase_locked_tones
                         ? rng.normal(0.0, 0.4)
                         : rng.uniform(0.0, 2.0 * std::numbers::pi);
  }

  for (std::size_t w = 0; w < spec.windows; ++w) {
    for (std::size_t l = 0; l < spec.length; ++l) {
      const double t = static_cast<double>(w * hop + l);
      double v = 0.0;
      for (std::size_t k = 0; k < p.shared.size(); ++k) {
        const auto& tone = p.shared[k];
        v += tone.amp *
             std::sin(2.0 * std::numbers::pi * tone.freq * t + tone.phase +
                      shared_phase[k]);
      }
      for (std::size_t k = 0; k < class_tones.size(); ++k) {
        const auto& tone = class_tones[k];
        v += amp_jitter * tone.amp *
             std::sin(2.0 * std::numbers::pi * tone.freq * t + tone.phase +
                      class_phase[k]);
      }
      v *= p.window_gain[w];
      v += spec.noise * rng.normal();
      if (spec.artifact_rate > 0.0 && rng.bernoulli(spec.artifact_rate)) {
        v += rng.sign() * rng.uniform(3.0, 8.0);
      }
      sample[w * spec.length + l] = static_cast<float>(v);
    }
  }
  return sample;
}

std::vector<float> draw_freq_sample(const SyntheticSpec& spec,
                                    const FreqPrototypes& p, int label,
                                    Rng& rng) {
  std::vector<float> sample(spec.windows * spec.length);
  const double amp_jitter = rng.uniform(0.8, 1.2);
  const auto& class_bumps = p.per_class[static_cast<std::size_t>(label)];

  // Shared bumps are nuisance: their gain varies strongly per sample.
  std::vector<double> shared_gain(p.shared.size());
  for (auto& g : shared_gain) g = rng.uniform(0.4, 1.6);
  // All but one class bump wander in frequency per sample (smearing the
  // per-bin class means, so pointwise models only see a blurred cue while
  // local-shape models can still lock onto the bump profile).
  std::vector<double> center_jitter(class_bumps.size());
  for (std::size_t k = 0; k < class_bumps.size(); ++k) {
    center_jitter[k] =
        k == 0
            ? 0.0
            : rng.normal(0.0, 0.04 * static_cast<double>(spec.length));
  }

  for (std::size_t w = 0; w < spec.windows; ++w) {
    // Spectra evolve slowly across windows.
    const double wgain =
        1.0 + 0.2 * std::sin(0.5 * static_cast<double>(w) + amp_jitter);
    for (std::size_t l = 0; l < spec.length; ++l) {
      const auto bin = static_cast<double>(l);
      double v = 0.0;
      for (std::size_t k = 0; k < p.shared.size(); ++k) {
        const auto& bump = p.shared[k];
        const double d = (bin - bump.center) / bump.width;
        v += shared_gain[k] * bump.amp * std::exp(-0.5 * d * d);
      }
      for (std::size_t k = 0; k < class_bumps.size(); ++k) {
        const auto& bump = class_bumps[k];
        const double d =
            (bin - bump.center - center_jitter[k]) / bump.width;
        v += amp_jitter * bump.amp * std::exp(-0.5 * d * d);
      }
      v *= wgain;
      v += spec.noise * rng.normal();
      if (spec.artifact_rate > 0.0 && rng.bernoulli(spec.artifact_rate)) {
        v += rng.sign() * rng.uniform(3.0, 8.0);
      }
      sample[w * spec.length + l] = static_cast<float>(v);
    }
  }
  return sample;
}

void apply_drift(const SyntheticSpec& spec, TimePrototypes& p) {
  if (spec.drift <= 0.0) return;
  Rng rng(spec.drift_seed * 0x9E3779B97F4A7C15ULL + 17);
  for (auto& tones : p.per_class) {
    for (auto& tone : tones) {
      tone.amp *= 1.0 + spec.drift * rng.normal();
      tone.freq = std::clamp(tone.freq * (1.0 + 0.5 * spec.drift *
                                                    rng.normal()),
                             0.01, 0.49);
      tone.phase += spec.drift * rng.normal();
    }
  }
  for (auto& g : p.window_gain) g *= 1.0 + spec.drift * rng.normal();
}

void apply_drift(const SyntheticSpec& spec, FreqPrototypes& p) {
  if (spec.drift <= 0.0) return;
  Rng rng(spec.drift_seed * 0x9E3779B97F4A7C15ULL + 17);
  for (auto& bumps : p.per_class) {
    for (auto& bump : bumps) {
      bump.amp *= 1.0 + spec.drift * rng.normal();
      bump.center += spec.drift * rng.normal() *
                     0.1 * static_cast<double>(spec.length);
      bump.width *= 1.0 + 0.5 * spec.drift * rng.normal();
      if (bump.width < 0.5) bump.width = 0.5;
    }
  }
}

// --- kKeyword: formant trajectories over a spectrogram grid ------------

struct Formant {
  double start;   // bin position at the first frame
  double end;     // bin position at the last frame
  double width;   // Gaussian width in bins
  double amp;
};

struct KeywordPrototypes {
  std::vector<std::vector<Formant>> per_class;
  std::vector<SpectralBump> background;  // stationary room/mic coloring
};

KeywordPrototypes draw_keyword_prototypes(const SyntheticSpec& spec,
                                          Rng& rng) {
  KeywordPrototypes p;
  constexpr std::size_t kFormants = 3;
  constexpr std::size_t kBackgroundBumps = 2;
  const auto len = static_cast<double>(spec.length);
  p.per_class.resize(spec.classes);
  for (auto& formants : p.per_class) {
    for (std::size_t k = 0; k < kFormants; ++k) {
      formants.push_back({rng.uniform(0.1, 0.9) * len,
                          rng.uniform(0.1, 0.9) * len,
                          rng.uniform(0.04, 0.12) * len,
                          spec.separation * rng.uniform(0.5, 1.0)});
    }
  }
  for (std::size_t k = 0; k < kBackgroundBumps; ++k) {
    p.background.push_back({rng.uniform(0.0, len),
                            rng.uniform(0.1, 0.3) * len,
                            rng.uniform(0.3, 0.7)});
  }
  return p;
}

std::vector<float> draw_keyword_sample(const SyntheticSpec& spec,
                                       const KeywordPrototypes& p,
                                       int label, Rng& rng) {
  std::vector<float> sample(spec.windows * spec.length);
  const auto& formants = p.per_class[static_cast<std::size_t>(label)];
  // Speaking-rate warp: the trajectory is traversed faster or slower,
  // so no single (frame, bin) cell has a stable class mean — the class
  // lives in the local trajectory shape.
  const double rate = rng.uniform(0.85, 1.15);
  const double onset = rng.uniform(-0.05, 0.05);
  const double loudness = rng.uniform(0.8, 1.2);
  std::vector<double> background_gain(p.background.size());
  for (auto& g : background_gain) g = rng.uniform(0.5, 1.5);

  const double frames = static_cast<double>(spec.windows - 1);
  for (std::size_t w = 0; w < spec.windows; ++w) {
    const double progress = std::clamp(
        onset + rate * static_cast<double>(w) / std::max(frames, 1.0), 0.0,
        1.0);
    for (std::size_t l = 0; l < spec.length; ++l) {
      const auto bin = static_cast<double>(l);
      double v = 0.0;
      for (std::size_t k = 0; k < p.background.size(); ++k) {
        const auto& bump = p.background[k];
        const double d = (bin - bump.center) / bump.width;
        v += background_gain[k] * bump.amp * std::exp(-0.5 * d * d);
      }
      for (const auto& formant : formants) {
        const double center =
            formant.start + (formant.end - formant.start) * progress;
        const double d = (bin - center) / formant.width;
        v += loudness * formant.amp * std::exp(-0.5 * d * d);
      }
      v += spec.noise * rng.normal();
      if (spec.artifact_rate > 0.0 && rng.bernoulli(spec.artifact_rate)) {
        v += rng.sign() * rng.uniform(3.0, 8.0);
      }
      sample[w * spec.length + l] = static_cast<float>(v);
    }
  }
  return sample;
}

void apply_drift(const SyntheticSpec& spec, KeywordPrototypes& p) {
  if (spec.drift <= 0.0) return;
  Rng rng(spec.drift_seed * 0x9E3779B97F4A7C15ULL + 17);
  const auto len = static_cast<double>(spec.length);
  for (auto& formants : p.per_class) {
    for (auto& formant : formants) {
      // Microphone / speaker change: formants shift and rescale.
      formant.start += spec.drift * rng.normal() * 0.1 * len;
      formant.end += spec.drift * rng.normal() * 0.1 * len;
      formant.amp *= 1.0 + spec.drift * rng.normal();
      formant.width *= 1.0 + 0.5 * spec.drift * rng.normal();
      if (formant.width < 0.5) formant.width = 0.5;
    }
  }
}

// --- kAnomaly: stationary hum + transient class-specific bursts --------

struct AnomalyPrototypes {
  std::vector<Tone> hum;                 // stationary machine background
  std::vector<double> ring_freq;         // per anomaly class (index 1..)
  std::vector<double> burst_amp;
  std::vector<std::size_t> burst_span;   // windows the burst covers
};

AnomalyPrototypes draw_anomaly_prototypes(const SyntheticSpec& spec,
                                          Rng& rng) {
  AnomalyPrototypes p;
  constexpr std::size_t kHumTones = 3;
  for (std::size_t k = 0; k < kHumTones; ++k) {
    p.hum.push_back({rng.uniform(0.02, 0.2), rng.uniform(0.5, 1.0),
                     rng.uniform(0.0, 2.0 * std::numbers::pi)});
  }
  p.ring_freq.resize(spec.classes, 0.0);
  p.burst_amp.resize(spec.classes, 0.0);
  p.burst_span.resize(spec.classes, 0);
  for (std::size_t c = 1; c < spec.classes; ++c) {
    p.ring_freq[c] = rng.uniform(0.25, 0.45);
    p.burst_amp[c] = spec.separation * rng.uniform(1.5, 2.5);
    // Bursts cover a contiguous half-to-all of the trace: soft voting
    // averages class evidence over windows, so burst windows must be
    // the majority for the anomaly to win the vote; the span start
    // stays a nuisance variable.
    p.burst_span[c] = std::max<std::size_t>(1, spec.windows / 2) +
                      rng.uniform_index(std::max<std::size_t>(
                          1, spec.windows / 2));
  }
  return p;
}

std::vector<float> draw_anomaly_sample(const SyntheticSpec& spec,
                                       const AnomalyPrototypes& p,
                                       int label, Rng& rng) {
  const std::size_t hop = std::max<std::size_t>(1, spec.length / 2);
  std::vector<float> sample(spec.windows * spec.length);
  std::vector<double> hum_phase(p.hum.size());
  for (auto& ph : hum_phase) {
    ph = rng.uniform(0.0, 2.0 * std::numbers::pi);
  }
  const auto cls = static_cast<std::size_t>(label);
  // The burst lands in a random contiguous span of windows; its ring
  // frequency is the class cue, its position is nuisance. The ring is
  // a window-local transient (an impulse response re-excited at each
  // frame boundary) with a nearly deterministic phase, so every burst
  // window shows the same decaying-ring profile wherever the burst
  // lands — that profile is what the per-feature class vectors learn.
  std::size_t burst_begin = 0;
  std::size_t burst_end = 0;
  double ring_phase = 0.0;
  if (label > 0) {
    const std::size_t span = std::min(p.burst_span[cls], spec.windows);
    burst_begin = rng.uniform_index(spec.windows - span + 1);
    burst_end = burst_begin + span;
    ring_phase = rng.normal(0.0, 0.3);
  }

  for (std::size_t w = 0; w < spec.windows; ++w) {
    const bool in_burst = label > 0 && w >= burst_begin && w < burst_end;
    for (std::size_t l = 0; l < spec.length; ++l) {
      const double t = static_cast<double>(w * hop + l);
      double v = 0.0;
      for (std::size_t k = 0; k < p.hum.size(); ++k) {
        const auto& tone = p.hum[k];
        v += tone.amp *
             std::sin(2.0 * std::numbers::pi * tone.freq * t + tone.phase +
                      hum_phase[k]);
      }
      if (in_burst) {
        // Decaying ring re-excited at each burst window's start.
        const double local = static_cast<double>(l) /
                             static_cast<double>(spec.length);
        v += p.burst_amp[cls] * std::exp(-3.0 * local) *
             std::sin(2.0 * std::numbers::pi * p.ring_freq[cls] *
                          static_cast<double>(l) +
                      ring_phase);
      }
      v += spec.noise * rng.normal();
      if (spec.artifact_rate > 0.0 && rng.bernoulli(spec.artifact_rate)) {
        v += rng.sign() * rng.uniform(3.0, 8.0);
      }
      sample[w * spec.length + l] = static_cast<float>(v);
    }
  }
  return sample;
}

void apply_drift(const SyntheticSpec& spec, AnomalyPrototypes& p) {
  if (spec.drift <= 0.0) return;
  Rng rng(spec.drift_seed * 0x9E3779B97F4A7C15ULL + 17);
  for (auto& tone : p.hum) {
    // Bearing wear: the hum spectrum slides and the anomaly rings
    // detune — the trained normal/abnormal boundary goes stale.
    tone.freq = std::clamp(
        tone.freq * (1.0 + 0.5 * spec.drift * rng.normal()), 0.01, 0.49);
    tone.amp *= 1.0 + spec.drift * rng.normal();
  }
  for (std::size_t c = 1; c < p.ring_freq.size(); ++c) {
    p.ring_freq[c] = std::clamp(
        p.ring_freq[c] * (1.0 + 0.5 * spec.drift * rng.normal()), 0.05,
        0.49);
    p.burst_amp[c] *= 1.0 + spec.drift * rng.normal();
  }
}

// --- kGesture: chirps with attack/decay envelopes ----------------------

struct GestureClass {
  double f_start;   // chirp start frequency (cycles/sample)
  double f_end;     // chirp end frequency
  double attack;    // envelope peak position in [0, 1] of the trace
  double amp;
};

struct GesturePrototypes {
  std::vector<GestureClass> per_class;
  std::vector<Tone> posture;  // shared low-frequency baseline (gravity)
};

GesturePrototypes draw_gesture_prototypes(const SyntheticSpec& spec,
                                          Rng& rng) {
  GesturePrototypes p;
  p.per_class.resize(spec.classes);
  // Stratified chirp assignment: start/end frequencies and envelope
  // peaks come from independently shuffled per-class grids, so any two
  // classes differ by a full grid step in at least one parameter —
  // independent draws from one shared range collide once classes are
  // more than a few, collapsing accuracy to chance.
  const auto shuffled_grid = [&](double lo, double hi) {
    std::vector<double> slots(spec.classes);
    for (std::size_t c = 0; c < spec.classes; ++c) {
      const double f =
          spec.classes == 1
              ? 0.5
              : static_cast<double>(c) /
                    static_cast<double>(spec.classes - 1);
      slots[c] = lo + f * (hi - lo);
    }
    for (std::size_t c = slots.size(); c > 1; --c) {
      std::swap(slots[c - 1], slots[rng.uniform_index(c)]);
    }
    return slots;
  };
  const std::vector<double> starts = shuffled_grid(0.03, 0.22);
  const std::vector<double> ends = shuffled_grid(0.03, 0.22);
  const std::vector<double> attacks = shuffled_grid(0.25, 0.75);
  for (std::size_t c = 0; c < spec.classes; ++c) {
    auto& g = p.per_class[c];
    g.f_start = starts[c] * (1.0 + 0.05 * rng.normal());
    g.f_end = ends[c] * (1.0 + 0.05 * rng.normal());
    g.attack = attacks[c];
    g.amp = spec.separation * rng.uniform(0.8, 1.2);
  }
  constexpr std::size_t kPostureTones = 2;
  for (std::size_t k = 0; k < kPostureTones; ++k) {
    p.posture.push_back({rng.uniform(0.005, 0.03), rng.uniform(0.3, 0.8),
                         rng.uniform(0.0, 2.0 * std::numbers::pi)});
  }
  return p;
}

std::vector<float> draw_gesture_sample(const SyntheticSpec& spec,
                                       const GesturePrototypes& p,
                                       int label, Rng& rng) {
  const std::size_t hop = std::max<std::size_t>(1, spec.length / 2);
  std::vector<float> sample(spec.windows * spec.length);
  const auto& g = p.per_class[static_cast<std::size_t>(label)];
  // Per-trial execution jitter: speed scales how fast the frequency
  // trajectory is traversed, energy scales the envelope, and the
  // posture baseline redraws its phase. The oscillation phase itself is
  // near-locked: gesture frames are onset-aligned sensor windows, so
  // each window shows its trajectory frequency at a stable phase —
  // without that lock no per-feature mean carries the class and
  // accuracy collapses to chance (cf. phase_locked_tones above).
  const double speed = rng.uniform(0.85, 1.15);
  const double energy = rng.uniform(0.8, 1.2);
  const double chirp_phase = rng.normal(0.0, 0.3);
  std::vector<double> posture_phase(p.posture.size());
  for (auto& ph : posture_phase) {
    ph = rng.uniform(0.0, 2.0 * std::numbers::pi);
  }

  const double frames = std::max<double>(
      1.0, static_cast<double>(spec.windows - 1));
  for (std::size_t w = 0; w < spec.windows; ++w) {
    const double progress = std::clamp(
        speed * static_cast<double>(w) / frames, 0.0, 1.0);
    // Each frame oscillates at the trajectory's instantaneous
    // frequency, re-excited at the frame boundary (phase restarts per
    // window) — frequency sweeps f_start -> f_end across the trace.
    const double freq =
        g.f_start + (g.f_end - g.f_start) * progress;
    // Asymmetric attack/decay envelope peaking at g.attack; wide
    // enough that the chirp is live over most of the trace.
    const double d = progress - g.attack;
    const double env = std::exp(-0.5 * d * d / (d < 0.0 ? 0.04 : 0.12));
    for (std::size_t l = 0; l < spec.length; ++l) {
      const double t = static_cast<double>(w * hop + l);
      const double phase = 2.0 * std::numbers::pi * freq *
                           static_cast<double>(l);
      double v = energy * g.amp * env * std::sin(phase + chirp_phase);
      for (std::size_t k = 0; k < p.posture.size(); ++k) {
        const auto& tone = p.posture[k];
        v += tone.amp *
             std::sin(2.0 * std::numbers::pi * tone.freq * t + tone.phase +
                      posture_phase[k]);
      }
      v += spec.noise * rng.normal();
      if (spec.artifact_rate > 0.0 && rng.bernoulli(spec.artifact_rate)) {
        v += rng.sign() * rng.uniform(3.0, 8.0);
      }
      sample[w * spec.length + l] = static_cast<float>(v);
    }
  }
  return sample;
}

void apply_drift(const SyntheticSpec& spec, GesturePrototypes& p) {
  if (spec.drift <= 0.0) return;
  Rng rng(spec.drift_seed * 0x9E3779B97F4A7C15ULL + 17);
  for (auto& g : p.per_class) {
    // New user / sensor placement: chirps retune, envelopes shift.
    g.f_start = std::clamp(
        g.f_start * (1.0 + 0.5 * spec.drift * rng.normal()), 0.01, 0.3);
    g.f_end = std::clamp(
        g.f_end * (1.0 + 0.5 * spec.drift * rng.normal()), 0.01, 0.3);
    g.attack = std::clamp(g.attack + 0.2 * spec.drift * rng.normal(),
                          0.05, 0.95);
    g.amp *= 1.0 + spec.drift * rng.normal();
  }
}

int draw_label(const SyntheticSpec& spec, Rng& rng) {
  if (spec.imbalance > 0.0 && spec.classes == 2) {
    const double p0 = 0.5 + spec.imbalance / 2.0;
    return rng.bernoulli(p0) ? 0 : 1;
  }
  return static_cast<int>(rng.uniform_index(spec.classes));
}

}  // namespace

SyntheticResult generate(const SyntheticSpec& spec) {
  UNIVSA_REQUIRE(spec.classes >= 2, "need at least two classes");
  UNIVSA_REQUIRE(spec.train_count > 0 && spec.test_count > 0,
                 "need non-empty train/test");
  UNIVSA_REQUIRE(spec.imbalance >= 0.0 && spec.imbalance < 1.0,
                 "imbalance must be in [0, 1)");

  Rng rng(spec.seed);
  TimePrototypes time_protos;
  FreqPrototypes freq_protos;
  KeywordPrototypes keyword_protos;
  AnomalyPrototypes anomaly_protos;
  GesturePrototypes gesture_protos;
  switch (spec.family) {
    case Family::kMultiTone:
      if (spec.domain == Domain::kTime) {
        time_protos = draw_time_prototypes(spec, rng);
        apply_drift(spec, time_protos);
      } else {
        freq_protos = draw_freq_prototypes(spec, rng);
        apply_drift(spec, freq_protos);
      }
      break;
    case Family::kKeyword:
      keyword_protos = draw_keyword_prototypes(spec, rng);
      apply_drift(spec, keyword_protos);
      break;
    case Family::kAnomaly:
      anomaly_protos = draw_anomaly_prototypes(spec, rng);
      apply_drift(spec, anomaly_protos);
      break;
    case Family::kGesture:
      gesture_protos = draw_gesture_prototypes(spec, rng);
      apply_drift(spec, gesture_protos);
      break;
  }

  const auto draw_sample = [&](int label) {
    switch (spec.family) {
      case Family::kKeyword:
        return draw_keyword_sample(spec, keyword_protos, label, rng);
      case Family::kAnomaly:
        return draw_anomaly_sample(spec, anomaly_protos, label, rng);
      case Family::kGesture:
        return draw_gesture_sample(spec, gesture_protos, label, rng);
      case Family::kMultiTone:
        break;
    }
    return spec.domain == Domain::kTime
               ? draw_time_sample(spec, time_protos, label, rng)
               : draw_freq_sample(spec, freq_protos, label, rng);
  };

  const std::size_t total = spec.train_count + spec.test_count;
  std::vector<std::vector<float>> raw(total);
  std::vector<int> labels(total);
  for (std::size_t i = 0; i < total; ++i) {
    labels[i] = draw_label(spec, rng);
    raw[i] = draw_sample(labels[i]);
  }

  // Fit the discretizer on training signals only.
  SyntheticResult result;
  result.discretizer = Discretizer(spec.levels);
  std::vector<float> train_values;
  train_values.reserve(spec.train_count * raw[0].size());
  for (std::size_t i = 0; i < spec.train_count; ++i) {
    train_values.insert(train_values.end(), raw[i].begin(), raw[i].end());
  }
  result.discretizer.fit(train_values);

  result.train =
      Dataset(spec.windows, spec.length, spec.classes, spec.levels);
  result.test =
      Dataset(spec.windows, spec.length, spec.classes, spec.levels);
  for (std::size_t i = 0; i < total; ++i) {
    auto levels = result.discretizer.transform(raw[i]);
    (i < spec.train_count ? result.train : result.test)
        .add(std::move(levels), labels[i]);
  }
  return result;
}

}  // namespace univsa::data
