#include "univsa/data/benchmarks.h"

#include "univsa/common/contracts.h"

namespace univsa::data {

namespace {

Benchmark make(std::string name, Domain domain, std::size_t w, std::size_t l,
               std::size_t c, std::size_t d_h, std::size_t d_l,
               std::size_t d_k, std::size_t o, std::size_t theta,
               double separation, double noise, double imbalance,
               std::uint64_t seed, std::size_t locked_tones = 1) {
  Benchmark b;
  b.spec.name = std::move(name);
  b.spec.domain = domain;
  b.spec.windows = w;
  b.spec.length = l;
  b.spec.classes = c;
  b.spec.levels = 256;
  b.spec.separation = separation;
  b.spec.noise = noise;
  b.spec.imbalance = imbalance;
  b.spec.seed = seed;
  b.spec.phase_locked_tones = locked_tones;

  b.config.W = w;
  b.config.L = l;
  b.config.C = c;
  b.config.M = 256;
  b.config.D_H = d_h;
  b.config.D_L = d_l;
  b.config.D_K = d_k;
  b.config.O = o;
  b.config.Theta = theta;
  b.config.validate();
  return b;
}

}  // namespace

const std::vector<Benchmark>& table1_benchmarks() {
  // Geometry, classes, domain and (D_H, D_L, D_K, O, Θ) are Table I
  // verbatim. separation/noise/imbalance calibrate the synthetic stand-in
  // difficulty to the paper's accuracy band (DESIGN.md §2); seeds fix the
  // generated datasets.
  static const std::vector<Benchmark> benchmarks = {
      // name        domain               W   L   C  D_H D_L D_K  O  Θ   sep  noise imb  seed
      make("EEGMMI", Domain::kTime, 16, 64, 2, 8, 2, 3, 95, 1,
           0.55, 1.6, 0.0, 101),
      make("BCI-III-V", Domain::kFrequency, 16, 6, 3, 8, 1, 3, 151, 3,
           1.1, 0.8, 0.0, 202),
      make("CHB-B", Domain::kFrequency, 23, 64, 2, 8, 2, 3, 16, 3,
           0.9, 1.2, 0.0, 303),
      make("CHB-IB", Domain::kFrequency, 23, 64, 2, 4, 1, 5, 16, 1,
           1.1, 0.7, 0.4, 404),
      make("ISOLET", Domain::kTime, 16, 40, 26, 4, 4, 3, 22, 3,
           1.6, 1.0, 0.0, 505, 2),
      make("HAR", Domain::kTime, 16, 36, 6, 8, 4, 3, 18, 3,
           1.1, 1.3, 0.0, 606, 2),
  };
  return benchmarks;
}

const std::vector<Benchmark>& zoo_benchmarks() {
  // Geometry/difficulty chosen so each tenant trains to a usable model
  // in seconds on one core (the zoo drill trains all three, twice) and
  // the three tasks are structurally heterogeneous: different family,
  // class count, and grid shape. Configs follow the Table I searched
  // pattern at comparable footprints.
  static const std::vector<Benchmark> benchmarks = [] {
    std::vector<Benchmark> zoo = {
        // name         domain               W   L   C  D_H D_L D_K  O  Θ   sep  noise imb  seed
        make("KWS", Domain::kFrequency, 20, 40, 8, 8, 2, 3, 24, 3,
             1.3, 0.9, 0.0, 811),
        make("ANOMALY", Domain::kTime, 16, 32, 2, 4, 2, 3, 16, 1,
             2.0, 0.7, 0.4, 822),
        make("GESTURE", Domain::kTime, 12, 48, 6, 8, 2, 3, 20, 3,
             1.8, 0.7, 0.0, 833),
    };
    zoo[0].spec.family = Family::kKeyword;
    zoo[1].spec.family = Family::kAnomaly;
    zoo[2].spec.family = Family::kGesture;
    // Smaller draws than Table I: the zoo drill trains every tenant
    // from scratch (and again after drift), so keep each fit cheap.
    for (auto& b : zoo) {
      b.spec.train_count = 360;
      b.spec.test_count = 180;
    }
    return zoo;
  }();
  return benchmarks;
}

const Benchmark& find_benchmark(const std::string& name) {
  for (const auto& b : table1_benchmarks()) {
    if (b.spec.name == name) return b;
  }
  for (const auto& b : zoo_benchmarks()) {
    if (b.spec.name == name) return b;
  }
  UNIVSA_REQUIRE(false, "unknown benchmark: " + name);
  throw std::invalid_argument("unreachable");
}

}  // namespace univsa::data
