// CSV dataset import/export.
//
// The paper's benchmarks come from public archives (PhysioNet, UCI);
// this repo substitutes synthetic generators because the archives are
// not reachable offline (DESIGN.md §2). This loader closes the loop for
// users who *do* have the data: export any tabular dataset as
// `label,f0,f1,...` rows and load it into the same (W, L, M) interface
// contract the models consume — including the train-side-only
// discretizer fit the synthetic path uses.
#pragma once

#include <string>

#include "univsa/data/dataset.h"
#include "univsa/data/discretizer.h"

namespace univsa::data {

/// Raw float samples as parsed from CSV (label + feature columns).
struct RawTable {
  std::size_t features = 0;
  std::vector<std::vector<float>> rows;
  std::vector<int> labels;

  std::size_t size() const { return rows.size(); }
};

/// Parses `label,f0,f1,...` lines. A first line whose label cell is not
/// an integer is treated as a header and skipped. Throws on ragged rows,
/// non-numeric cells, or an empty table.
RawTable load_raw_csv(const std::string& path);

/// Writes a discretized dataset as CSV (integer levels).
void save_csv(const Dataset& dataset, const std::string& path);

/// Loads a previously saved discretized dataset. Geometry must be
/// supplied (CSV stores flat rows).
Dataset load_csv(const std::string& path, std::size_t windows,
                 std::size_t length, std::size_t classes,
                 std::size_t levels);

struct CsvDatasetOptions {
  std::size_t windows = 0;   ///< required
  std::size_t length = 0;    ///< required
  std::size_t classes = 0;   ///< 0 = max(label)+1
  std::size_t levels = 256;  ///< M
  /// If the row has fewer than W·L features, pad with the mid level;
  /// otherwise feature count must equal W·L.
  bool pad_features = false;
};

struct CsvDatasetResult {
  Dataset train;
  Dataset test;
  Discretizer discretizer;
};

/// Full pipeline from raw float CSVs: fit the discretizer on the train
/// table only, then quantize both into (W, L) datasets.
CsvDatasetResult build_datasets(const RawTable& train_table,
                                const RawTable& test_table,
                                const CsvDatasetOptions& options);

}  // namespace univsa::data
