// RBF-kernel SVM baseline (Table II: "16-bit float with RBF kernel").
//
// Binary sub-problems are trained with the simplified SMO algorithm
// (Platt's heuristics without the full working-set machinery — ample at
// the few-hundred-sample scale used here); multi-class uses one-vs-rest.
// The deployed model stores the union of support vectors plus per-
// classifier dual coefficients at 16-bit precision, which is the Table II
// memory accounting (vsa::svm_memory_kb) — and why SVM's footprint is
// orders of magnitude above the binary VSA models.
#pragma once

#include <cstdint>
#include <vector>

#include "univsa/common/rng.h"
#include "univsa/tensor/tensor.h"

namespace univsa::baselines {

struct SvmOptions {
  double c = 1.0;          ///< box constraint
  double gamma = 0.0;      ///< RBF width; 0 = "scale" (1 / (N·var(X)))
  double tolerance = 1e-3;
  std::size_t max_passes = 5;   ///< SMO passes without change before stop
  std::size_t max_iterations = 2000;
  std::uint64_t seed = 7;
};

class SvmClassifier {
 public:
  explicit SvmClassifier(SvmOptions options = {});

  void fit(const Tensor& x, const std::vector<int>& labels,
           std::size_t classes);

  bool fitted() const { return fitted_; }

  int predict_one(std::span<const float> features) const;
  std::vector<int> predict(const Tensor& x) const;
  double accuracy(const Tensor& x, const std::vector<int>& labels) const;

  /// Number of unique training points kept as support vectors.
  std::size_t support_vector_count() const;
  /// Number of binary classifiers (1 for C=2, C for one-vs-rest).
  std::size_t classifier_count() const;

 private:
  struct BinaryMachine {
    std::vector<double> alpha_y;  ///< α_i·y_i for stored SVs (machine-local)
    std::vector<std::size_t> sv;  ///< indices into support_x_
    double bias = 0.0;
  };

  double kernel_stored(std::size_t i,
                       std::span<const float> features) const;
  double decision(const BinaryMachine& m,
                  std::span<const float> features) const;

  SvmOptions options_;
  double gamma_ = 1.0;
  std::size_t classes_ = 0;
  Tensor support_x_;  ///< (S, N) unique support vectors
  std::vector<BinaryMachine> machines_;
  bool fitted_ = false;
};

}  // namespace univsa::baselines
