// Linear Discriminant Analysis baseline (Table II, 32-bit float).
//
// Gaussian classes with a shared covariance: fit class means and the
// pooled within-class covariance (ridge-regularized), then score
//   score_c(x) = wᵀ_c x − ½ μᵀ_c w_c + log π_c,  Σ w_c = μ_c,
// solved with a Cholesky factorization of Σ. The deployed parameters are
// the C projection rows over N features — Table II's 4·C·N-byte
// accounting (vsa::lda_memory_kb).
#pragma once

#include <vector>

#include "univsa/tensor/tensor.h"

namespace univsa::baselines {

class LdaClassifier {
 public:
  /// `reg` — ridge added to the covariance diagonal (relative to its
  /// mean diagonal) for numerical stability on near-singular features.
  explicit LdaClassifier(double reg = 1e-3);

  /// x: (B, N) float features; labels in [0, C).
  void fit(const Tensor& x, const std::vector<int>& labels,
           std::size_t classes);

  bool fitted() const { return fitted_; }
  std::size_t classes() const { return weights_.empty() ? 0 : weights_.dim(0); }

  int predict_one(std::span<const float> features) const;
  std::vector<int> predict(const Tensor& x) const;
  double accuracy(const Tensor& x, const std::vector<int>& labels) const;

  /// Deployed parameter count: C·N weights (+C biases folded into the
  /// score constants).
  std::size_t parameter_count() const;

 private:
  double reg_;
  bool fitted_ = false;
  Tensor weights_;            // (C, N)
  std::vector<float> bias_;   // (C)
};

/// Cholesky solve helper (SPD): solves A·x = b in place; A is (n, n)
/// row-major and is overwritten by its factor. Exposed for testing.
void cholesky_solve_inplace(std::vector<double>& a, std::size_t n,
                            std::vector<double>& b, std::size_t nrhs);

}  // namespace univsa::baselines
