#include "univsa/baselines/svm.h"

#include <algorithm>
#include <cmath>

#include "univsa/common/contracts.h"
#include "univsa/common/thread_pool.h"

namespace univsa::baselines {

namespace {

/// Precomputed RBF kernel matrix over the training set.
class KernelMatrix {
 public:
  KernelMatrix(const Tensor& x, double gamma) : count_(x.dim(0)) {
    const std::size_t n = x.dim(1);
    k_.resize(count_ * count_);
    global_pool().parallel_for(count_, [&](std::size_t begin,
                                           std::size_t end) {
      for (std::size_t i = begin; i < end; ++i) {
        const float* xi = x.data() + i * n;
        for (std::size_t j = 0; j <= i; ++j) {
          const float* xj = x.data() + j * n;
          double d2 = 0.0;
          for (std::size_t f = 0; f < n; ++f) {
            const double diff =
                static_cast<double>(xi[f]) - static_cast<double>(xj[f]);
            d2 += diff * diff;
          }
          k_[i * count_ + j] = std::exp(-gamma * d2);
        }
      }
    });
    // Mirror the lower triangle.
    for (std::size_t i = 0; i < count_; ++i) {
      for (std::size_t j = i + 1; j < count_; ++j) {
        k_[i * count_ + j] = k_[j * count_ + i];
      }
    }
  }

  double at(std::size_t i, std::size_t j) const {
    return k_[i * count_ + j];
  }

 private:
  std::size_t count_;
  std::vector<double> k_;
};

struct SmoResult {
  std::vector<double> alpha;
  double bias = 0.0;
};

/// Simplified SMO (Platt) for a binary problem with labels y ∈ {-1, +1}.
/// The decision values f_i are kept in an error cache updated
/// incrementally after every accepted pair, so a sweep is O(count) kernel
/// lookups plus O(count) per accepted update.
SmoResult train_binary(const KernelMatrix& kernel,
                       const std::vector<double>& y,
                       const SvmOptions& options, Rng& rng) {
  const std::size_t count = y.size();
  SmoResult r;
  r.alpha.assign(count, 0.0);
  const double c = options.c;
  const double tol = options.tolerance;

  // f_i = Σ_j α_j y_j K(j, i) + b; α = 0, b = 0 initially.
  std::vector<double> f(count, 0.0);

  std::size_t passes = 0;
  std::size_t iterations = 0;
  while (passes < options.max_passes &&
         iterations < options.max_iterations) {
    ++iterations;
    std::size_t changed = 0;
    for (std::size_t i = 0; i < count; ++i) {
      const double e_i = f[i] - y[i];
      const bool violates = (y[i] * e_i < -tol && r.alpha[i] < c) ||
                            (y[i] * e_i > tol && r.alpha[i] > 0.0);
      if (!violates) continue;

      std::size_t j = rng.uniform_index(count - 1);
      if (j >= i) ++j;
      const double e_j = f[j] - y[j];

      const double ai_old = r.alpha[i];
      const double aj_old = r.alpha[j];
      double lo;
      double hi;
      if (y[i] != y[j]) {
        lo = std::max(0.0, aj_old - ai_old);
        hi = std::min(c, c + aj_old - ai_old);
      } else {
        lo = std::max(0.0, ai_old + aj_old - c);
        hi = std::min(c, ai_old + aj_old);
      }
      if (lo >= hi) continue;

      const double eta =
          2.0 * kernel.at(i, j) - kernel.at(i, i) - kernel.at(j, j);
      if (eta >= 0.0) continue;

      double aj = aj_old - y[j] * (e_i - e_j) / eta;
      aj = std::clamp(aj, lo, hi);
      if (std::fabs(aj - aj_old) < 1e-5) continue;
      const double ai = ai_old + y[i] * y[j] * (aj_old - aj);

      r.alpha[i] = ai;
      r.alpha[j] = aj;

      const double b1 = r.bias - e_i - y[i] * (ai - ai_old) * kernel.at(i, i) -
                        y[j] * (aj - aj_old) * kernel.at(i, j);
      const double b2 = r.bias - e_j - y[i] * (ai - ai_old) * kernel.at(i, j) -
                        y[j] * (aj - aj_old) * kernel.at(j, j);
      double new_bias;
      if (ai > 0.0 && ai < c) {
        new_bias = b1;
      } else if (aj > 0.0 && aj < c) {
        new_bias = b2;
      } else {
        new_bias = 0.5 * (b1 + b2);
      }

      const double d_ai = (ai - ai_old) * y[i];
      const double d_aj = (aj - aj_old) * y[j];
      const double d_b = new_bias - r.bias;
      for (std::size_t k = 0; k < count; ++k) {
        f[k] += d_ai * kernel.at(i, k) + d_aj * kernel.at(j, k) + d_b;
      }
      r.bias = new_bias;
      ++changed;
    }
    passes = changed == 0 ? passes + 1 : 0;
  }
  return r;
}

}  // namespace

SvmClassifier::SvmClassifier(SvmOptions options) : options_(options) {
  UNIVSA_REQUIRE(options.c > 0.0, "box constraint must be positive");
  UNIVSA_REQUIRE(options.gamma >= 0.0, "gamma must be non-negative");
}

void SvmClassifier::fit(const Tensor& x, const std::vector<int>& labels,
                        std::size_t classes) {
  UNIVSA_REQUIRE(x.rank() == 2, "features must be (B, N)");
  const std::size_t count = x.dim(0);
  const std::size_t n = x.dim(1);
  UNIVSA_REQUIRE(labels.size() == count, "label count mismatch");
  UNIVSA_REQUIRE(classes >= 2, "need at least two classes");

  // "scale" gamma: 1 / (N · var(X)).
  if (options_.gamma > 0.0) {
    gamma_ = options_.gamma;
  } else {
    double mean = 0.0;
    for (const auto v : x.flat()) mean += v;
    mean /= static_cast<double>(x.size());
    double var = 0.0;
    for (const auto v : x.flat()) {
      var += (static_cast<double>(v) - mean) *
             (static_cast<double>(v) - mean);
    }
    var /= static_cast<double>(x.size());
    gamma_ = 1.0 / (static_cast<double>(n) * std::max(var, 1e-9));
  }

  const KernelMatrix kernel(x, gamma_);
  Rng rng(options_.seed);

  // One machine for C = 2, one-vs-rest otherwise.
  const std::size_t n_machines = classes == 2 ? 1 : classes;
  std::vector<SmoResult> raw(n_machines);
  std::vector<double> y(count);
  for (std::size_t m = 0; m < n_machines; ++m) {
    const int positive = static_cast<int>(m == 0 && classes == 2 ? 0 : m);
    for (std::size_t i = 0; i < count; ++i) {
      y[i] = labels[i] == positive ? 1.0 : -1.0;
    }
    raw[m] = train_binary(kernel, y, options_, rng);
  }

  // Collect the union of support vectors across machines.
  std::vector<bool> is_sv(count, false);
  for (const auto& m : raw) {
    for (std::size_t i = 0; i < count; ++i) {
      if (m.alpha[i] > 1e-8) is_sv[i] = true;
    }
  }
  std::vector<std::size_t> sv_index(count, count);
  std::size_t n_sv = 0;
  for (std::size_t i = 0; i < count; ++i) {
    if (is_sv[i]) sv_index[i] = n_sv++;
  }
  UNIVSA_ENSURE(n_sv > 0, "SMO produced no support vectors");

  support_x_ = Tensor({n_sv, n});
  for (std::size_t i = 0; i < count; ++i) {
    if (!is_sv[i]) continue;
    for (std::size_t f = 0; f < n; ++f) {
      support_x_.at(sv_index[i], f) = x.at(i, f);
    }
  }

  machines_.clear();
  machines_.resize(n_machines);
  for (std::size_t m = 0; m < n_machines; ++m) {
    const int positive = static_cast<int>(m == 0 && classes == 2 ? 0 : m);
    machines_[m].bias = raw[m].bias;
    for (std::size_t i = 0; i < count; ++i) {
      if (raw[m].alpha[i] <= 1e-8) continue;
      const double yi = labels[i] == positive ? 1.0 : -1.0;
      machines_[m].sv.push_back(sv_index[i]);
      machines_[m].alpha_y.push_back(raw[m].alpha[i] * yi);
    }
  }
  classes_ = classes;
  fitted_ = true;
}

double SvmClassifier::kernel_stored(std::size_t i,
                                    std::span<const float> features) const {
  const std::size_t n = support_x_.dim(1);
  const float* row = support_x_.data() + i * n;
  double d2 = 0.0;
  for (std::size_t f = 0; f < n; ++f) {
    const double diff =
        static_cast<double>(row[f]) - static_cast<double>(features[f]);
    d2 += diff * diff;
  }
  return std::exp(-gamma_ * d2);
}

double SvmClassifier::decision(const BinaryMachine& m,
                               std::span<const float> features) const {
  double f = m.bias;
  for (std::size_t i = 0; i < m.sv.size(); ++i) {
    f += m.alpha_y[i] * kernel_stored(m.sv[i], features);
  }
  return f;
}

int SvmClassifier::predict_one(std::span<const float> features) const {
  UNIVSA_REQUIRE(fitted_, "predict before fit");
  UNIVSA_REQUIRE(features.size() == support_x_.dim(1),
                 "feature count mismatch");
  if (classes_ == 2) {
    return decision(machines_[0], features) >= 0.0 ? 0 : 1;
  }
  std::size_t best = 0;
  double best_score = -1e300;
  for (std::size_t m = 0; m < machines_.size(); ++m) {
    const double score = decision(machines_[m], features);
    if (score > best_score) {
      best_score = score;
      best = m;
    }
  }
  return static_cast<int>(best);
}

std::vector<int> SvmClassifier::predict(const Tensor& x) const {
  UNIVSA_REQUIRE(x.rank() == 2, "features must be (B, N)");
  std::vector<int> out(x.dim(0));
  global_pool().parallel_for(x.dim(0), [&](std::size_t begin,
                                           std::size_t end) {
    for (std::size_t i = begin; i < end; ++i) {
      out[i] = predict_one({x.data() + i * x.dim(1), x.dim(1)});
    }
  });
  return out;
}

double SvmClassifier::accuracy(const Tensor& x,
                               const std::vector<int>& labels) const {
  const auto pred = predict(x);
  UNIVSA_REQUIRE(pred.size() == labels.size(), "label count mismatch");
  std::size_t correct = 0;
  for (std::size_t i = 0; i < pred.size(); ++i) {
    if (pred[i] == labels[i]) ++correct;
  }
  return static_cast<double>(correct) / static_cast<double>(pred.size());
}

std::size_t SvmClassifier::support_vector_count() const {
  UNIVSA_REQUIRE(fitted_, "support_vector_count before fit");
  return support_x_.dim(0);
}

std::size_t SvmClassifier::classifier_count() const {
  UNIVSA_REQUIRE(fitted_, "classifier_count before fit");
  return machines_.size();
}

}  // namespace univsa::baselines
