#include "univsa/baselines/bnn.h"

#include <cmath>
#include <cstdio>
#include <numeric>

#include "univsa/common/contracts.h"
#include "univsa/common/rng.h"
#include "univsa/nn/activations.h"
#include "univsa/nn/loss.h"
#include "univsa/nn/optimizer.h"

namespace univsa::baselines {

BnnClassifier::BnnClassifier(BnnOptions options)
    : options_(std::move(options)) {
  UNIVSA_REQUIRE(options_.hidden >= 2, "hidden width too small");
  UNIVSA_REQUIRE(options_.epochs > 0 && options_.batch_size > 0,
                 "epochs/batch must be positive");
}

void BnnClassifier::fit(const Tensor& x, const std::vector<int>& labels,
                        std::size_t classes) {
  UNIVSA_REQUIRE(x.rank() == 2, "features must be (B, N)");
  UNIVSA_REQUIRE(labels.size() == x.dim(0), "label count mismatch");
  UNIVSA_REQUIRE(classes >= 2, "need at least two classes");
  features_ = x.dim(1);
  classes_ = classes;

  Rng rng(options_.seed);
  BinaryLinear fc1(features_, options_.hidden, rng);
  SignSte act;
  BinaryLinear fc2(options_.hidden, classes, rng);
  // Learnable scales keep the logits in softmax range; |·| is applied in
  // the forward pass so deployment (which bakes the magnitudes) agrees
  // with training (see SoftVotingHead for the sign-flip failure mode).
  Tensor s1 = Tensor::full({1}, 1.0f / std::sqrt(
                                          static_cast<float>(features_)));
  Tensor s1g({1});
  Tensor s2 = Tensor::full(
      {1}, 4.0f / static_cast<float>(options_.hidden));
  Tensor s2g({1});

  ParamList params = fc1.params();
  append_params(params, fc2.params());
  params.push_back({&s1, &s1g, false});
  params.push_back({&s2, &s2g, false});
  Adam optimizer(params, options_.lr);

  std::vector<std::size_t> order(x.dim(0));
  std::iota(order.begin(), order.end(), 0);
  loss_history_.clear();

  for (std::size_t epoch = 0; epoch < options_.epochs; ++epoch) {
    for (std::size_t i = order.size(); i > 1; --i) {
      std::swap(order[i - 1], order[rng.uniform_index(i)]);
    }
    double epoch_loss = 0.0;
    std::size_t batches = 0;

    for (std::size_t start = 0; start < order.size();
         start += options_.batch_size) {
      const std::size_t end =
          std::min(order.size(), start + options_.batch_size);
      const std::size_t bsize = end - start;
      Tensor batch({bsize, features_});
      std::vector<int> batch_labels(bsize);
      for (std::size_t b = 0; b < bsize; ++b) {
        const std::size_t idx = order[start + b];
        batch_labels[b] = labels[idx];
        for (std::size_t j = 0; j < features_; ++j) {
          batch.at(b, j) = x.at(idx, j);
        }
      }

      optimizer.zero_grad();
      const float e1 = std::fabs(s1[0]);
      const float e2 = std::fabs(s2[0]);
      Tensor pre1 = fc1.forward(batch).mul(e1);
      Tensor h = act.forward(pre1);
      Tensor sims = fc2.forward(h);
      Tensor logits = sims.mul(e2);
      const LossResult loss = softmax_cross_entropy(logits, batch_labels);

      // Backward: dγ2, then through fc2 / sign / γ1 / fc1.
      float ds2 = 0.0f;
      for (std::size_t i = 0; i < loss.grad_logits.size(); ++i) {
        ds2 += loss.grad_logits.flat()[i] * sims.flat()[i];
      }
      s2g[0] += ds2 * (s2[0] >= 0.0f ? 1.0f : -1.0f);
      Tensor gh = fc2.backward(loss.grad_logits.mul(e2));
      Tensor gpre1 = act.backward(gh);
      float ds1 = 0.0f;
      // pre1 = fc1_out * e1: recover fc1_out gradient and dγ1.
      for (std::size_t i = 0; i < gpre1.size(); ++i) {
        ds1 += gpre1.flat()[i] * pre1.flat()[i];
      }
      // d e1 = Σ g ⊙ fc1_out = Σ g ⊙ (pre1 / e1).
      s1g[0] += ds1 / std::max(e1, 1e-6f) *
                (s1[0] >= 0.0f ? 1.0f : -1.0f);
      fc1.backward(gpre1.mul(e1));
      optimizer.step();

      epoch_loss += loss.loss;
      ++batches;
    }
    loss_history_.push_back(
        static_cast<float>(epoch_loss / static_cast<double>(batches)));
    if (options_.verbose) {
      std::printf("  bnn epoch %2zu loss %.4f\n", epoch + 1,
                  static_cast<double>(loss_history_.back()));
    }
  }

  // Bake the deployed parameters.
  w1_ = fc1.binary_weight();
  w2_ = fc2.binary_weight();
  scale1_ = std::fabs(s1[0]);
  scale2_ = std::fabs(s2[0]);
  fitted_ = true;
}

Tensor BnnClassifier::forward_logits(const Tensor& x) const {
  Tensor pre1 = x.matmul_transposed(w1_).mul(scale1_);
  Tensor h = sign_tensor(pre1);
  return h.matmul_transposed(w2_).mul(scale2_);
}

int BnnClassifier::predict_one(std::span<const float> features) const {
  UNIVSA_REQUIRE(fitted_, "predict before fit");
  UNIVSA_REQUIRE(features.size() == features_, "feature count mismatch");
  Tensor x({1, features_});
  for (std::size_t j = 0; j < features_; ++j) x.at(0, j) = features[j];
  const Tensor logits = forward_logits(x);
  std::size_t best = 0;
  for (std::size_t c = 1; c < classes_; ++c) {
    if (logits.at(0, c) > logits.at(0, best)) best = c;
  }
  return static_cast<int>(best);
}

std::vector<int> BnnClassifier::predict(const Tensor& x) const {
  UNIVSA_REQUIRE(fitted_, "predict before fit");
  UNIVSA_REQUIRE(x.rank() == 2 && x.dim(1) == features_,
                 "feature shape mismatch");
  const Tensor logits = forward_logits(x);
  std::vector<int> out(x.dim(0));
  for (std::size_t b = 0; b < x.dim(0); ++b) {
    std::size_t best = 0;
    for (std::size_t c = 1; c < classes_; ++c) {
      if (logits.at(b, c) > logits.at(b, best)) best = c;
    }
    out[b] = static_cast<int>(best);
  }
  return out;
}

double BnnClassifier::accuracy(const Tensor& x,
                               const std::vector<int>& labels) const {
  const auto pred = predict(x);
  UNIVSA_REQUIRE(pred.size() == labels.size(), "label count mismatch");
  std::size_t correct = 0;
  for (std::size_t i = 0; i < pred.size(); ++i) {
    if (pred[i] == labels[i]) ++correct;
  }
  return static_cast<double>(correct) / static_cast<double>(pred.size());
}

double BnnClassifier::memory_kb() const {
  UNIVSA_REQUIRE(fitted_, "memory_kb before fit");
  const std::size_t bits = w1_.size() + w2_.size();
  return static_cast<double>(bits) / 8.0 / 1000.0 +
         2.0 * sizeof(float) / 1000.0;
}

}  // namespace univsa::baselines
