#include "univsa/baselines/knn.h"

#include <algorithm>

#include "univsa/common/contracts.h"
#include "univsa/common/thread_pool.h"

namespace univsa::baselines {

KnnClassifier::KnnClassifier(std::size_t k) : k_(k) {
  UNIVSA_REQUIRE(k >= 1, "k must be positive");
}

void KnnClassifier::fit(const Tensor& x, const std::vector<int>& labels,
                        std::size_t classes) {
  UNIVSA_REQUIRE(x.rank() == 2, "features must be (B, N)");
  UNIVSA_REQUIRE(labels.size() == x.dim(0), "label count mismatch");
  UNIVSA_REQUIRE(classes >= 2, "need at least two classes");
  for (const auto y : labels) {
    UNIVSA_REQUIRE(y >= 0 && static_cast<std::size_t>(y) < classes,
                   "label out of range");
  }
  train_x_ = x;
  train_y_ = labels;
  classes_ = classes;
  fitted_ = true;
}

int KnnClassifier::predict_one(std::span<const float> features) const {
  UNIVSA_REQUIRE(fitted_, "predict before fit");
  const std::size_t n = train_x_.dim(1);
  UNIVSA_REQUIRE(features.size() == n, "feature count mismatch");
  const std::size_t count = train_x_.dim(0);
  const std::size_t k = std::min(k_, count);

  // Partial selection of the k smallest squared distances.
  std::vector<std::pair<float, int>> dists(count);
  for (std::size_t i = 0; i < count; ++i) {
    const float* row = train_x_.data() + i * n;
    float d = 0.0f;
    for (std::size_t j = 0; j < n; ++j) {
      const float diff = row[j] - features[j];
      d += diff * diff;
    }
    dists[i] = {d, train_y_[i]};
  }
  std::nth_element(dists.begin(),
                   dists.begin() + static_cast<long>(k - 1), dists.end());

  std::vector<std::size_t> votes(classes_, 0);
  for (std::size_t i = 0; i < k; ++i) {
    ++votes[static_cast<std::size_t>(dists[i].second)];
  }
  return static_cast<int>(
      std::max_element(votes.begin(), votes.end()) - votes.begin());
}

std::vector<int> KnnClassifier::predict(const Tensor& x) const {
  UNIVSA_REQUIRE(x.rank() == 2, "features must be (B, N)");
  std::vector<int> out(x.dim(0));
  global_pool().parallel_for(x.dim(0), [&](std::size_t begin,
                                           std::size_t end) {
    for (std::size_t i = begin; i < end; ++i) {
      out[i] = predict_one({x.data() + i * x.dim(1), x.dim(1)});
    }
  });
  return out;
}

double KnnClassifier::accuracy(const Tensor& x,
                               const std::vector<int>& labels) const {
  const auto pred = predict(x);
  UNIVSA_REQUIRE(pred.size() == labels.size(), "label count mismatch");
  std::size_t correct = 0;
  for (std::size_t i = 0; i < pred.size(); ++i) {
    if (pred[i] == labels[i]) ++correct;
  }
  return static_cast<double>(correct) / static_cast<double>(pred.size());
}

std::size_t KnnClassifier::stored_bytes() const {
  UNIVSA_REQUIRE(fitted_, "stored_bytes before fit");
  return train_x_.size() * sizeof(float) + train_y_.size() * sizeof(int);
}

}  // namespace univsa::baselines
