// K-nearest-neighbours baseline (Table II, K = 5).
//
// Brute-force Euclidean search over the stored training matrix. The paper
// leaves KNN's memory blank in Table II (it stores the entire training
// set); we report the stored-matrix size in the bench for context.
#pragma once

#include <vector>

#include "univsa/tensor/tensor.h"

namespace univsa::baselines {

class KnnClassifier {
 public:
  explicit KnnClassifier(std::size_t k = 5);

  void fit(const Tensor& x, const std::vector<int>& labels,
           std::size_t classes);

  bool fitted() const { return fitted_; }

  int predict_one(std::span<const float> features) const;
  std::vector<int> predict(const Tensor& x) const;
  double accuracy(const Tensor& x, const std::vector<int>& labels) const;

  /// Bytes of the stored training data (float32 matrix + labels).
  std::size_t stored_bytes() const;

 private:
  std::size_t k_;
  std::size_t classes_ = 0;
  Tensor train_x_;
  std::vector<int> train_y_;
  bool fitted_ = false;
};

}  // namespace univsa::baselines
