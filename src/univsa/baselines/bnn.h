// Binarized-MLP baseline (BNN).
//
// The paper compares UniVSA's hardware against FPGA BNN/QNN accelerators
// (Table III) and notes BNNs "possibly have better inference performance
// ... especially on complex tasks" while blowing the BCI power budget.
// This software BNN gives that comparison an accuracy column: a
// two-layer MLP with binary weights (straight-through estimators, same
// machinery as the VSA training stack), float inputs, and a per-layer
// learnable scale. Memory accounting: binary weight bits plus the float
// scales — still far above kilobyte-scale binary VSA once the hidden
// layer is wide enough to compete.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "univsa/data/dataset.h"
#include "univsa/nn/binary_linear.h"
#include "univsa/tensor/tensor.h"

namespace univsa::baselines {

struct BnnOptions {
  std::size_t hidden = 128;
  std::size_t epochs = 20;
  std::size_t batch_size = 32;
  float lr = 0.01f;
  std::uint64_t seed = 7;
  bool verbose = false;
};

class BnnClassifier {
 public:
  explicit BnnClassifier(BnnOptions options = {});

  /// x: (B, N) float features in [0, 1]; labels in [0, classes).
  void fit(const Tensor& x, const std::vector<int>& labels,
           std::size_t classes);

  bool fitted() const { return fitted_; }
  std::size_t hidden() const { return options_.hidden; }

  int predict_one(std::span<const float> features) const;
  std::vector<int> predict(const Tensor& x) const;
  double accuracy(const Tensor& x, const std::vector<int>& labels) const;

  /// Deployed size: binary weight bits / 8 / 1000 (decimal KB), plus the
  /// two float scales.
  double memory_kb() const;

  /// Mean training loss per epoch (diagnostics).
  const std::vector<float>& loss_history() const { return loss_history_; }

 private:
  Tensor forward_logits(const Tensor& x) const;

  BnnOptions options_;
  std::size_t features_ = 0;
  std::size_t classes_ = 0;
  // Deployed parameters: binarized weights and the scales.
  Tensor w1_;  // (hidden, N) ±1
  Tensor w2_;  // (C, hidden) ±1
  float scale1_ = 1.0f;
  float scale2_ = 1.0f;
  std::vector<float> loss_history_;
  bool fitted_ = false;
};

}  // namespace univsa::baselines
