#include "univsa/baselines/lda.h"

#include <cmath>

#include "univsa/common/contracts.h"
#include "univsa/common/thread_pool.h"

namespace univsa::baselines {

void cholesky_solve_inplace(std::vector<double>& a, std::size_t n,
                            std::vector<double>& b, std::size_t nrhs) {
  UNIVSA_REQUIRE(a.size() == n * n, "matrix size mismatch");
  UNIVSA_REQUIRE(b.size() == n * nrhs, "rhs size mismatch");

  // In-place lower Cholesky: A = L·Lᵀ.
  for (std::size_t j = 0; j < n; ++j) {
    double diag = a[j * n + j];
    for (std::size_t k = 0; k < j; ++k) diag -= a[j * n + k] * a[j * n + k];
    UNIVSA_REQUIRE(diag > 0.0, "matrix is not positive definite");
    const double ljj = std::sqrt(diag);
    a[j * n + j] = ljj;
    parallel_for(n - j - 1, [&](std::size_t begin, std::size_t end) {
      for (std::size_t r = begin; r < end; ++r) {
        const std::size_t i = j + 1 + r;
        double v = a[i * n + j];
        const double* ai = a.data() + i * n;
        const double* aj = a.data() + j * n;
        for (std::size_t k = 0; k < j; ++k) v -= ai[k] * aj[k];
        a[i * n + j] = v / ljj;
      }
    });
  }

  // Forward then backward substitution for each right-hand side.
  for (std::size_t rhs = 0; rhs < nrhs; ++rhs) {
    double* x = b.data() + rhs;
    // L·y = b
    for (std::size_t i = 0; i < n; ++i) {
      double v = x[i * nrhs];
      const double* ai = a.data() + i * n;
      for (std::size_t k = 0; k < i; ++k) v -= ai[k] * x[k * nrhs];
      x[i * nrhs] = v / ai[i];
    }
    // Lᵀ·z = y
    for (std::size_t ii = n; ii > 0; --ii) {
      const std::size_t i = ii - 1;
      double v = x[i * nrhs];
      for (std::size_t k = i + 1; k < n; ++k) {
        v -= a[k * n + i] * x[k * nrhs];
      }
      x[i * nrhs] = v / a[i * n + i];
    }
  }
}

LdaClassifier::LdaClassifier(double reg) : reg_(reg) {
  UNIVSA_REQUIRE(reg >= 0.0, "negative regularization");
}

void LdaClassifier::fit(const Tensor& x, const std::vector<int>& labels,
                        std::size_t classes) {
  UNIVSA_REQUIRE(x.rank() == 2, "features must be (B, N)");
  const std::size_t count = x.dim(0);
  const std::size_t n = x.dim(1);
  UNIVSA_REQUIRE(labels.size() == count, "label count mismatch");
  UNIVSA_REQUIRE(classes >= 2, "need at least two classes");
  UNIVSA_REQUIRE(count > classes, "need more samples than classes");

  // Class means and priors.
  std::vector<double> means(classes * n, 0.0);
  std::vector<std::size_t> counts(classes, 0);
  for (std::size_t i = 0; i < count; ++i) {
    const auto y = static_cast<std::size_t>(labels[i]);
    UNIVSA_REQUIRE(y < classes, "label out of range");
    ++counts[y];
    const float* row = x.data() + i * n;
    double* mean = means.data() + y * n;
    for (std::size_t j = 0; j < n; ++j) mean[j] += row[j];
  }
  for (std::size_t c = 0; c < classes; ++c) {
    UNIVSA_REQUIRE(counts[c] > 0, "class with no training samples");
    const double inv = 1.0 / static_cast<double>(counts[c]);
    for (std::size_t j = 0; j < n; ++j) means[c * n + j] *= inv;
  }

  // Pooled within-class covariance (upper triangle, then mirrored).
  std::vector<double> cov(n * n, 0.0);
  std::vector<double> centered(n);
  for (std::size_t i = 0; i < count; ++i) {
    const auto y = static_cast<std::size_t>(labels[i]);
    const float* row = x.data() + i * n;
    const double* mean = means.data() + y * n;
    for (std::size_t j = 0; j < n; ++j) {
      centered[j] = static_cast<double>(row[j]) - mean[j];
    }
    parallel_for(n, [&](std::size_t begin, std::size_t end) {
      for (std::size_t j = begin; j < end; ++j) {
        const double cj = centered[j];
        double* covj = cov.data() + j * n;
        for (std::size_t k = j; k < n; ++k) covj[k] += cj * centered[k];
      }
    });
  }
  const double norm = 1.0 / static_cast<double>(count - classes);
  double trace = 0.0;
  for (std::size_t j = 0; j < n; ++j) {
    for (std::size_t k = j; k < n; ++k) {
      cov[j * n + k] *= norm;
      cov[k * n + j] = cov[j * n + k];
    }
    trace += cov[j * n + j];
  }
  const double ridge = reg_ * (trace / static_cast<double>(n)) + 1e-12;
  for (std::size_t j = 0; j < n; ++j) cov[j * n + j] += ridge;

  // Solve Σ·W = Mᵀ for all classes at once.
  std::vector<double> rhs(n * classes);
  for (std::size_t j = 0; j < n; ++j) {
    for (std::size_t c = 0; c < classes; ++c) {
      rhs[j * classes + c] = means[c * n + j];
    }
  }
  cholesky_solve_inplace(cov, n, rhs, classes);

  weights_ = Tensor({classes, n});
  bias_.assign(classes, 0.0f);
  for (std::size_t c = 0; c < classes; ++c) {
    double quad = 0.0;
    for (std::size_t j = 0; j < n; ++j) {
      const double w = rhs[j * classes + c];
      weights_.at(c, j) = static_cast<float>(w);
      quad += w * means[c * n + j];
    }
    const double prior =
        static_cast<double>(counts[c]) / static_cast<double>(count);
    bias_[c] = static_cast<float>(-0.5 * quad + std::log(prior));
  }
  fitted_ = true;
}

int LdaClassifier::predict_one(std::span<const float> features) const {
  UNIVSA_REQUIRE(fitted_, "predict before fit");
  UNIVSA_REQUIRE(features.size() == weights_.dim(1),
                 "feature count mismatch");
  std::size_t best = 0;
  double best_score = -1e300;
  for (std::size_t c = 0; c < weights_.dim(0); ++c) {
    double score = bias_[c];
    const float* w = weights_.data() + c * weights_.dim(1);
    for (std::size_t j = 0; j < features.size(); ++j) {
      score += static_cast<double>(w[j]) * features[j];
    }
    if (score > best_score) {
      best_score = score;
      best = c;
    }
  }
  return static_cast<int>(best);
}

std::vector<int> LdaClassifier::predict(const Tensor& x) const {
  UNIVSA_REQUIRE(x.rank() == 2, "features must be (B, N)");
  std::vector<int> out(x.dim(0));
  for (std::size_t i = 0; i < x.dim(0); ++i) {
    out[i] = predict_one({x.data() + i * x.dim(1), x.dim(1)});
  }
  return out;
}

double LdaClassifier::accuracy(const Tensor& x,
                               const std::vector<int>& labels) const {
  const auto pred = predict(x);
  UNIVSA_REQUIRE(pred.size() == labels.size(), "label count mismatch");
  std::size_t correct = 0;
  for (std::size_t i = 0; i < pred.size(); ++i) {
    if (pred[i] == labels[i]) ++correct;
  }
  return static_cast<double>(correct) / static_cast<double>(pred.size());
}

std::size_t LdaClassifier::parameter_count() const {
  UNIVSA_REQUIRE(fitted_, "parameter_count before fit");
  return weights_.size();
}

}  // namespace univsa::baselines
