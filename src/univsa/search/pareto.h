// Multi-objective configuration search (Pareto front).
//
// Eq. 7 collapses memory and resources into one scalar penalty; that
// bakes the accuracy/hardware exchange rate into λ1/λ2 before the search
// runs. The multi-objective variant instead evolves the whole trade-off
// surface — maximize accuracy, minimize Eq. 5 memory, minimize Eq. 6
// resources — with NSGA-II-style non-dominated sorting and crowding
// selection, and hands the designer the Pareto-optimal configurations to
// pick from. (An extension beyond the paper's single-objective search;
// the single-objective optimum is always on this front, which is
// property-tested.)
//
// The scalable path is SearchOptions::pareto on evolutionary_search,
// which runs the same NSGA-II selection inside the island/surrogate/
// parallel machinery and emits SearchResult::front natively; the
// standalone pareto_search here is the small serial reference the
// property tests pin down. Both share the ranking primitives below.
#pragma once

#include <vector>

#include "univsa/search/evolutionary.h"

namespace univsa::search {

/// a dominates b: no objective worse, at least one strictly better.
bool dominates(const ParetoPoint& a, const ParetoPoint& b);

struct ParetoOptions {
  std::size_t population = 24;
  std::size_t generations = 12;
  double mutation_rate = 0.3;
  std::uint64_t seed = 7;
};

struct ParetoResult {
  /// Non-dominated set, sorted by ascending memory.
  std::vector<ParetoPoint> front;
  std::size_t evaluations = 0;
};

ParetoResult pareto_search(const vsa::ModelConfig& task,
                           const SearchSpace& space,
                           const AccuracyFn& accuracy,
                           const ParetoOptions& options);

/// Non-dominated filter over arbitrary points (exposed for tests).
std::vector<ParetoPoint> non_dominated(
    const std::vector<ParetoPoint>& points);

/// Fast non-dominated sort: front index per point, 0 = best. Shared by
/// pareto_search and the native multi-objective evolutionary_search.
std::vector<std::size_t> non_dominated_ranks(
    const std::vector<ParetoPoint>& points);

/// NSGA-II crowding distance over the points selected by `members`
/// (indices into `points`); larger = more isolated. Entries not in
/// `members` stay 0.
std::vector<double> crowding_distances(
    const std::vector<ParetoPoint>& points,
    const std::vector<std::size_t>& members);

}  // namespace univsa::search
