#include "univsa/search/pareto.h"

#include <algorithm>
#include <limits>
#include <map>
#include <tuple>

#include "univsa/common/contracts.h"
#include "univsa/vsa/memory_model.h"

namespace univsa::search {

namespace {

using Key = std::tuple<std::size_t, std::size_t, std::size_t, std::size_t,
                       std::size_t>;

Key key_of(const vsa::ModelConfig& c) {
  return {c.D_H, c.D_L, c.D_K, c.O, c.Theta};
}

std::size_t pick(const std::vector<std::size_t>& values, Rng& rng) {
  return values[rng.uniform_index(values.size())];
}

void repair(vsa::ModelConfig& c, const SearchSpace& space) {
  c.O = std::clamp(c.O, space.o_min, space.o_max);
  if (c.D_L > c.D_H) c.D_L = c.D_H;
}

vsa::ModelConfig random_genome(const vsa::ModelConfig& task,
                               const SearchSpace& space, Rng& rng) {
  vsa::ModelConfig c = task;
  c.D_H = pick(space.d_h, rng);
  c.D_L = pick(space.d_l, rng);
  c.D_K = pick(space.d_k, rng);
  c.O = static_cast<std::size_t>(
      rng.uniform_int(static_cast<std::int64_t>(space.o_min),
                      static_cast<std::int64_t>(space.o_max)));
  c.Theta = pick(space.theta, rng);
  repair(c, space);
  return c;
}

vsa::ModelConfig vary(const vsa::ModelConfig& a, const vsa::ModelConfig& b,
                      const SearchSpace& space, double mutation_rate,
                      Rng& rng) {
  vsa::ModelConfig c = a;
  if (rng.bernoulli(0.5)) c.D_H = b.D_H;
  if (rng.bernoulli(0.5)) c.D_L = b.D_L;
  if (rng.bernoulli(0.5)) c.D_K = b.D_K;
  if (rng.bernoulli(0.5)) c.O = b.O;
  if (rng.bernoulli(0.5)) c.Theta = b.Theta;
  if (rng.bernoulli(mutation_rate)) c.D_H = pick(space.d_h, rng);
  if (rng.bernoulli(mutation_rate)) c.D_L = pick(space.d_l, rng);
  if (rng.bernoulli(mutation_rate)) c.D_K = pick(space.d_k, rng);
  if (rng.bernoulli(mutation_rate)) {
    const std::int64_t delta = rng.uniform_int(-16, 16);
    c.O = static_cast<std::size_t>(std::clamp<std::int64_t>(
        static_cast<std::int64_t>(c.O) + delta,
        static_cast<std::int64_t>(space.o_min),
        static_cast<std::int64_t>(space.o_max)));
  }
  if (rng.bernoulli(mutation_rate)) c.Theta = pick(space.theta, rng);
  repair(c, space);
  return c;
}

}  // namespace

std::vector<std::size_t> non_dominated_ranks(
    const std::vector<ParetoPoint>& pts) {
  const std::size_t n = pts.size();
  std::vector<std::size_t> rank(n, 0);
  std::vector<std::size_t> dominated_count(n, 0);
  std::vector<std::vector<std::size_t>> dominated_by(n);
  std::vector<std::size_t> current;
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < n; ++j) {
      if (i == j) continue;
      if (dominates(pts[i], pts[j])) {
        dominated_by[i].push_back(j);
      } else if (dominates(pts[j], pts[i])) {
        ++dominated_count[i];
      }
    }
    if (dominated_count[i] == 0) current.push_back(i);
  }
  std::size_t level = 0;
  while (!current.empty()) {
    std::vector<std::size_t> next;
    for (const auto i : current) {
      rank[i] = level;
      for (const auto j : dominated_by[i]) {
        if (--dominated_count[j] == 0) next.push_back(j);
      }
    }
    current = std::move(next);
    ++level;
  }
  return rank;
}

std::vector<double> crowding_distances(
    const std::vector<ParetoPoint>& pts,
    const std::vector<std::size_t>& members) {
  std::vector<double> distance(pts.size(), 0.0);
  const auto by_key = [&](auto key) {
    std::vector<std::size_t> order = members;
    std::sort(order.begin(), order.end(),
              [&](std::size_t a, std::size_t b) {
                return key(pts[a]) < key(pts[b]);
              });
    if (order.size() < 3) {
      for (const auto i : order) {
        distance[i] = std::numeric_limits<double>::infinity();
      }
      return;
    }
    const double span = key(pts[order.back()]) - key(pts[order.front()]);
    distance[order.front()] = std::numeric_limits<double>::infinity();
    distance[order.back()] = std::numeric_limits<double>::infinity();
    if (span <= 0.0) return;
    for (std::size_t k = 1; k + 1 < order.size(); ++k) {
      distance[order[k]] +=
          (key(pts[order[k + 1]]) - key(pts[order[k - 1]])) / span;
    }
  };
  by_key([](const ParetoPoint& p) { return p.accuracy; });
  by_key([](const ParetoPoint& p) { return p.memory_kb; });
  by_key([](const ParetoPoint& p) { return p.resource_units; });
  return distance;
}

bool dominates(const ParetoPoint& a, const ParetoPoint& b) {
  const bool no_worse = a.accuracy >= b.accuracy &&
                        a.memory_kb <= b.memory_kb &&
                        a.resource_units <= b.resource_units;
  const bool better = a.accuracy > b.accuracy ||
                      a.memory_kb < b.memory_kb ||
                      a.resource_units < b.resource_units;
  return no_worse && better;
}

std::vector<ParetoPoint> non_dominated(
    const std::vector<ParetoPoint>& points) {
  std::vector<ParetoPoint> front;
  for (const auto& p : points) {
    bool is_dominated = false;
    for (const auto& q : points) {
      if (dominates(q, p)) {
        is_dominated = true;
        break;
      }
    }
    if (!is_dominated) front.push_back(p);
  }
  // Deduplicate identical configurations.
  std::sort(front.begin(), front.end(),
            [](const ParetoPoint& a, const ParetoPoint& b) {
              return key_of(a.config) < key_of(b.config);
            });
  front.erase(std::unique(front.begin(), front.end(),
                          [](const ParetoPoint& a, const ParetoPoint& b) {
                            return key_of(a.config) == key_of(b.config);
                          }),
              front.end());
  std::sort(front.begin(), front.end(),
            [](const ParetoPoint& a, const ParetoPoint& b) {
              return a.memory_kb < b.memory_kb;
            });
  return front;
}

ParetoResult pareto_search(const vsa::ModelConfig& task,
                           const SearchSpace& space,
                           const AccuracyFn& accuracy,
                           const ParetoOptions& options) {
  UNIVSA_REQUIRE(options.population >= 4, "population too small");
  UNIVSA_REQUIRE(static_cast<bool>(accuracy), "null accuracy oracle");

  Rng rng(options.seed);
  ParetoResult result;
  std::map<Key, double> cache;

  const auto evaluate = [&](const vsa::ModelConfig& c) -> ParetoPoint {
    ParetoPoint p;
    p.config = c;
    const Key k = key_of(c);
    const auto it = cache.find(k);
    if (it != cache.end()) {
      p.accuracy = it->second;
    } else {
      p.accuracy = accuracy(c);
      cache.emplace(k, p.accuracy);
      ++result.evaluations;
    }
    p.memory_kb = vsa::memory_kb(c);
    p.resource_units = static_cast<double>(vsa::resource_units(c));
    return p;
  };

  std::vector<ParetoPoint> population;
  population.reserve(options.population);
  for (std::size_t i = 0; i < options.population; ++i) {
    population.push_back(evaluate(random_genome(task, space, rng)));
  }

  for (std::size_t gen = 0; gen < options.generations; ++gen) {
    // Offspring via binary tournaments on (rank, crowding).
    const auto ranks = non_dominated_ranks(population);
    std::vector<std::size_t> all(population.size());
    for (std::size_t i = 0; i < all.size(); ++i) all[i] = i;
    const auto dist = crowding_distances(population, all);
    const auto tournament = [&]() -> const ParetoPoint& {
      const std::size_t a = rng.uniform_index(population.size());
      const std::size_t b = rng.uniform_index(population.size());
      if (ranks[a] != ranks[b]) {
        return population[ranks[a] < ranks[b] ? a : b];
      }
      return population[dist[a] >= dist[b] ? a : b];
    };

    std::vector<ParetoPoint> combined = population;
    for (std::size_t i = 0; i < options.population; ++i) {
      const vsa::ModelConfig child =
          vary(tournament().config, tournament().config, space,
               options.mutation_rate, rng);
      combined.push_back(evaluate(child));
    }

    // Environmental selection: best fronts first, crowding inside the
    // last partially-admitted front.
    const auto comb_ranks = non_dominated_ranks(combined);
    std::vector<std::size_t> order(combined.size());
    for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;
    std::vector<std::size_t> everyone = order;
    const auto comb_dist = crowding_distances(combined, everyone);
    std::sort(order.begin(), order.end(),
              [&](std::size_t a, std::size_t b) {
                if (comb_ranks[a] != comb_ranks[b]) {
                  return comb_ranks[a] < comb_ranks[b];
                }
                return comb_dist[a] > comb_dist[b];
              });
    std::vector<ParetoPoint> next;
    next.reserve(options.population);
    for (std::size_t i = 0; i < options.population; ++i) {
      next.push_back(combined[order[i]]);
    }
    population = std::move(next);
  }

  result.front = non_dominated(population);
  return result;
}

}  // namespace univsa::search
