#include "univsa/search/evolutionary.h"

#include <algorithm>
#include <cmath>
#include <iterator>
#include <tuple>
#include <unordered_map>
#include <unordered_set>

#include "univsa/common/contracts.h"
#include "univsa/common/thread_pool.h"
#include "univsa/search/pareto.h"
#include "univsa/telemetry/metrics.h"
#include "univsa/vsa/memory_model.h"

namespace univsa::search {

namespace {

using Key = std::tuple<std::size_t, std::size_t, std::size_t, std::size_t,
                       std::size_t>;

Key key_of(const vsa::ModelConfig& c) {
  return {c.D_H, c.D_L, c.D_K, c.O, c.Theta};
}

/// The searched fields plus the task geometry fully determine a config,
/// so the memo can reconstruct configurations from keys alone.
vsa::ModelConfig config_of(const vsa::ModelConfig& task, const Key& k) {
  vsa::ModelConfig c = task;
  c.D_H = std::get<0>(k);
  c.D_L = std::get<1>(k);
  c.D_K = std::get<2>(k);
  c.O = std::get<3>(k);
  c.Theta = std::get<4>(k);
  return c;
}

std::uint64_t mix64(std::uint64_t h, std::uint64_t v) {
  return h ^ (v + 0x9E3779B97F4A7C15ULL + (h << 6) + (h >> 2));
}

/// splitmix-style mixed hash over all five genome fields — the memo is an
/// unordered_map, and single-field hashes would collide pathologically
/// (O alone takes ~150 values while the other genes take 2–4).
struct KeyHash {
  std::size_t operator()(const Key& k) const {
    std::uint64_t h = 0x243F6A8885A308D3ULL;
    h = mix64(h, std::get<0>(k));
    h = mix64(h, std::get<1>(k));
    h = mix64(h, std::get<2>(k));
    h = mix64(h, std::get<3>(k));
    h = mix64(h, std::get<4>(k));
    return static_cast<std::size_t>(h * 0xFF51AFD7ED558CCDULL);
  }
};

std::size_t pick(const std::vector<std::size_t>& values, Rng& rng) {
  return values[rng.uniform_index(values.size())];
}

void repair(vsa::ModelConfig& c, const SearchSpace& space) {
  c.O = std::clamp(c.O, space.o_min, space.o_max);
  if (c.D_L > c.D_H) c.D_L = c.D_H;
}

vsa::ModelConfig random_genome(const vsa::ModelConfig& task,
                               const SearchSpace& space, Rng& rng) {
  vsa::ModelConfig c = task;
  c.D_H = pick(space.d_h, rng);
  c.D_L = pick(space.d_l, rng);
  c.D_K = pick(space.d_k, rng);
  c.O = static_cast<std::size_t>(
      rng.uniform_int(static_cast<std::int64_t>(space.o_min),
                      static_cast<std::int64_t>(space.o_max)));
  c.Theta = pick(space.theta, rng);
  repair(c, space);
  return c;
}

vsa::ModelConfig crossover(const vsa::ModelConfig& a,
                           const vsa::ModelConfig& b,
                           const SearchSpace& space, Rng& rng) {
  vsa::ModelConfig c = a;
  if (rng.bernoulli(0.5)) c.D_H = b.D_H;
  if (rng.bernoulli(0.5)) c.D_L = b.D_L;
  if (rng.bernoulli(0.5)) c.D_K = b.D_K;
  if (rng.bernoulli(0.5)) c.O = b.O;
  if (rng.bernoulli(0.5)) c.Theta = b.Theta;
  repair(c, space);
  return c;
}

void mutate(vsa::ModelConfig& c, const SearchSpace& space, double rate,
            Rng& rng) {
  if (rng.bernoulli(rate)) c.D_H = pick(space.d_h, rng);
  if (rng.bernoulli(rate)) c.D_L = pick(space.d_l, rng);
  if (rng.bernoulli(rate)) c.D_K = pick(space.d_k, rng);
  if (rng.bernoulli(rate)) {
    // Local O perturbation keeps the search from jumping wildly.
    const std::int64_t delta = rng.uniform_int(-16, 16);
    const auto o = static_cast<std::int64_t>(c.O) + delta;
    c.O = static_cast<std::size_t>(
        std::clamp<std::int64_t>(o, static_cast<std::int64_t>(space.o_min),
                                 static_cast<std::int64_t>(space.o_max)));
  }
  if (rng.bernoulli(rate)) c.Theta = pick(space.theta, rng);
  repair(c, space);
}

// Per-configuration oracle seed: a pure function of the search seed and
// the genome, never of evaluation order or thread id — the cornerstone of
// the parallel == serial determinism contract.
std::uint64_t config_seed(std::uint64_t base, const Key& k) {
  std::uint64_t h = base;
  h = mix64(h, std::get<0>(k));
  h = mix64(h, std::get<1>(k));
  h = mix64(h, std::get<2>(k));
  h = mix64(h, std::get<3>(k));
  h = mix64(h, std::get<4>(k));
  return h;
}

/// Salt folded into the base seed for surrogate proxy calls so a proxy
/// never sees the full oracle's seed for the same genome.
constexpr std::uint64_t kSurrogateSalt = 0x53555252ULL;  // "SURR"

struct Scored {
  vsa::ModelConfig config;
  double accuracy = 0.0;
  double objective = 0.0;
  /// True when `accuracy` came from the full oracle; false when the
  /// surrogate screen left this candidate with its proxy score.
  bool exact = true;
};

struct CacheEntry {
  double accuracy = 0.0;
  double objective = 0.0;
};

ParetoPoint pareto_point(const vsa::ModelConfig& c, double accuracy) {
  ParetoPoint p;
  p.config = c;
  p.accuracy = accuracy;
  p.memory_kb = vsa::memory_kb(c);
  p.resource_units = static_cast<double>(vsa::resource_units(c));
  return p;
}

}  // namespace

void ring_migration_plan(
    std::size_t islands, std::size_t population, std::size_t emigrants,
    const std::function<void(std::size_t, std::size_t, std::size_t,
                             std::size_t)>& visit) {
  if (islands < 2 || population == 0) return;
  const std::size_t e = std::min(emigrants, population - 1);
  for (std::size_t from = 0; from < islands; ++from) {
    const std::size_t to = (from + 1) % islands;
    for (std::size_t rank = 0; rank < e; ++rank) {
      visit(from, rank, to, population - e + rank);
    }
  }
}

SearchResult evolutionary_search(const vsa::ModelConfig& task,
                                 const SearchSpace& space,
                                 const SeededAccuracyFn& accuracy,
                                 const SearchOptions& options) {
  UNIVSA_REQUIRE(options.population >= 2, "population too small");
  UNIVSA_REQUIRE(options.elite >= 1 && options.elite < options.population,
                 "elite count must be in [1, population)");
  UNIVSA_REQUIRE(static_cast<bool>(accuracy), "null accuracy oracle");
  UNIVSA_REQUIRE(!space.d_h.empty() && !space.d_l.empty() &&
                     !space.d_k.empty() && !space.theta.empty() &&
                     space.o_min >= 1 && space.o_min <= space.o_max,
                 "empty search space");
  UNIVSA_REQUIRE(options.islands >= 1, "need at least one island");
  UNIVSA_REQUIRE(options.islands < 2 || options.migration_interval >= 1,
                 "migration interval must be at least one generation");
  UNIVSA_REQUIRE(!options.surrogate ||
                     (options.surrogate_keep > 0.0 &&
                      options.surrogate_keep <= 1.0),
                 "surrogate_keep must be in (0, 1]");

  const std::size_t K = options.islands;
  const bool screening = static_cast<bool>(options.surrogate);
  SearchResult result;

  // Island RNG streams. A single island draws from Rng(seed) directly so
  // the default configuration reproduces the legacy single-population
  // trajectory bit-for-bit (regression-pinned for seeds 7/13/99);
  // multi-island runs use jump-separated streams per island.
  std::vector<Rng> rngs;
  rngs.reserve(K);
  if (K == 1) {
    rngs.emplace_back(options.seed);
  } else {
    for (std::size_t i = 0; i < K; ++i) {
      rngs.push_back(Rng::stream(options.seed, i));
    }
  }

  // Memo tables. `oracle_cache` holds full-fidelity results,
  // `proxy_cache` the surrogate screen's scores; `oracle_order` records
  // full evaluations in insertion order so "best ever fully evaluated"
  // never depends on hash-table iteration order.
  std::unordered_map<Key, CacheEntry, KeyHash> oracle_cache;
  std::unordered_map<Key, double, KeyHash> proxy_cache;
  std::vector<Key> oracle_order;

  const auto objective_of = [&](const Key& k, double acc) {
    return acc - vsa::hardware_penalty(config_of(task, k), options.lambda1,
                                       options.lambda2);
  };

  // Search telemetry: memo hit/miss counters (hit = a candidate served
  // from the cache or deduplicated within the batch; miss = a full
  // oracle call), surrogate screen counters, per-batch oracle latency,
  // and the oracle-vs-surrogate wall-time share. Purely observational —
  // the memo semantics are untouched.
  const bool traced = telemetry::kCompiledIn && telemetry::enabled();
  telemetry::LatencyHistogram& eval_hist =
      telemetry::histogram("search.generation_eval_ns");
  telemetry::Counter& memo_hits = telemetry::counter("search.memo_hits");
  telemetry::Counter& memo_misses =
      telemetry::counter("search.memo_misses");
  telemetry::Gauge& hit_rate_gauge =
      telemetry::gauge("search.memo_hit_rate");
  telemetry::Counter& island_generations =
      telemetry::counter("search.island_generations_total");
  telemetry::Counter& screened_counter =
      telemetry::counter("search.surrogate_screened_total");
  telemetry::Counter& promoted_counter =
      telemetry::counter("search.surrogate_promoted_total");
  telemetry::Gauge& oracle_share_gauge =
      telemetry::gauge("search.oracle_time_share");
  std::uint64_t oracle_ns = 0;
  std::uint64_t surrogate_ns = 0;

  // Runs `fn(i)` over [0, n) — across the pool at unit grain when the
  // search is parallel (candidate costs vary with the genome, so static
  // chunking would load-imbalance), serially otherwise.
  const auto for_each_candidate = [&](std::size_t n,
                                      const std::function<void(std::size_t)>&
                                          fn) {
    if (options.parallel) {
      global_pool().parallel_for(
          n,
          [&](std::size_t begin, std::size_t end) {
            for (std::size_t i = begin; i < end; ++i) fn(i);
          },
          /*max_chunk=*/1);
    } else {
      for (std::size_t i = 0; i < n; ++i) fn(i);
    }
  };

  // Batch evaluation with the serial search's exact memo semantics: walk
  // the candidates in generation order, collect each not-yet-cached key
  // once (first appearance wins), screen the fresh set through the
  // surrogate when configured, run the full oracle over the promoted
  // subset — concurrently when options.parallel — then insert into the
  // memo serially in that same stable order. Oracle and proxy seeds
  // depend only on (search seed, genome), so results, memo contents, and
  // the evaluation counts are all bit-identical to evaluating one
  // candidate at a time, for any thread count.
  const auto evaluate_batch =
      [&](const std::vector<vsa::ModelConfig>& configs) {
        std::vector<Key> fresh_keys;
        std::vector<const vsa::ModelConfig*> fresh_configs;
        std::unordered_set<Key, KeyHash> in_batch;
        for (const auto& c : configs) {
          const Key k = key_of(c);
          if (oracle_cache.find(k) != oracle_cache.end()) continue;
          if (!in_batch.insert(k).second) continue;
          fresh_keys.push_back(k);
          fresh_configs.push_back(&c);
        }

        // Surrogate screen: proxy-score the fresh set (memoized
        // separately from the oracle), then promote the `surrogate_keep`
        // share — ties and ordering resolved by (score desc, batch
        // position asc), independent of thread schedule.
        std::vector<std::size_t> promoted(fresh_keys.size());
        for (std::size_t i = 0; i < promoted.size(); ++i) promoted[i] = i;
        if (screening && !fresh_keys.empty()) {
          std::vector<double> proxy(fresh_keys.size(), 0.0);
          std::vector<std::size_t> to_score;
          for (std::size_t i = 0; i < fresh_keys.size(); ++i) {
            const auto it = proxy_cache.find(fresh_keys[i]);
            if (it != proxy_cache.end()) {
              proxy[i] = it->second;
            } else {
              to_score.push_back(i);
            }
          }
          const std::uint64_t proxy_t0 = traced ? telemetry::now_ns() : 0;
          for_each_candidate(to_score.size(), [&](std::size_t j) {
            const std::size_t i = to_score[j];
            proxy[i] = options.surrogate(
                *fresh_configs[i],
                config_seed(options.seed ^ kSurrogateSalt, fresh_keys[i]));
          });
          if (traced) surrogate_ns += telemetry::now_ns() - proxy_t0;
          for (const std::size_t i : to_score) {
            proxy_cache.emplace(fresh_keys[i], proxy[i]);
            ++result.surrogate_evaluations;
          }

          const auto keep = static_cast<std::size_t>(std::max(
              1.0, std::ceil(options.surrogate_keep *
                             static_cast<double>(fresh_keys.size()))));
          std::stable_sort(promoted.begin(), promoted.end(),
                           [&](std::size_t a, std::size_t b) {
                             return proxy[a] > proxy[b];
                           });
          promoted.resize(std::min(keep, promoted.size()));
          // Oracle calls and memo inserts happen in batch order, exactly
          // as in exact mode.
          std::sort(promoted.begin(), promoted.end());
          if (traced) {
            screened_counter.add(fresh_keys.size());
            promoted_counter.add(promoted.size());
          }
        }
        result.surrogate_promoted += promoted.size();

        if (traced) {
          memo_misses.add(promoted.size());
          memo_hits.add(configs.size() - fresh_keys.size());
          const std::uint64_t total =
              memo_hits.total() + memo_misses.total();
          if (total > 0) {
            hit_rate_gauge.set(static_cast<double>(memo_hits.total()) /
                               static_cast<double>(total));
          }
        }

        std::vector<double> acc(promoted.size(), 0.0);
        const std::uint64_t eval_t0 = traced ? telemetry::now_ns() : 0;
        for_each_candidate(promoted.size(), [&](std::size_t j) {
          const std::size_t i = promoted[j];
          acc[j] = accuracy(*fresh_configs[i],
                            config_seed(options.seed, fresh_keys[i]));
        });
        if (traced && !promoted.empty()) {
          const std::uint64_t dt = telemetry::now_ns() - eval_t0;
          eval_hist.record(dt);
          oracle_ns += dt;
        }
        if (traced && oracle_ns + surrogate_ns > 0) {
          oracle_share_gauge.set(
              static_cast<double>(oracle_ns) /
              static_cast<double>(oracle_ns + surrogate_ns));
        }

        for (std::size_t j = 0; j < promoted.size(); ++j) {
          const Key& k = fresh_keys[promoted[j]];
          oracle_cache.emplace(
              k, CacheEntry{acc[j], objective_of(k, acc[j])});
          oracle_order.push_back(k);
          ++result.evaluations;
        }

        std::vector<Scored> scored;
        scored.reserve(configs.size());
        for (const auto& c : configs) {
          const Key k = key_of(c);
          const auto it = oracle_cache.find(k);
          if (it != oracle_cache.end()) {
            scored.push_back(
                {c, it->second.accuracy, it->second.objective, true});
          } else {
            const double p = proxy_cache.at(k);
            scored.push_back({c, p, objective_of(k, p), false});
          }
        }
        return scored;
      };

  const auto by_objective = [](const Scored& a, const Scored& b) {
    return a.objective > b.objective;
  };

  // Genomes are always generated serially, island by island — candidate
  // evaluation cannot influence genome generation (each island's RNG
  // feeds only selection, crossover, and mutation), so batching all
  // islands' oracle calls together preserves per-island RNG consumption
  // exactly while giving the pool K·population-wide batches.
  std::vector<vsa::ModelConfig> genomes;
  std::vector<std::size_t> island_offsets(K + 1, 0);
  genomes.reserve(K * options.population);
  for (std::size_t i = 0; i < K; ++i) {
    for (std::size_t g = 0; g < options.population; ++g) {
      genomes.push_back(random_genome(task, space, rngs[i]));
    }
    island_offsets[i + 1] = genomes.size();
  }
  std::vector<Scored> all_scored = evaluate_batch(genomes);
  std::vector<std::vector<Scored>> islands(K);
  for (std::size_t i = 0; i < K; ++i) {
    islands[i].assign(
        std::make_move_iterator(all_scored.begin() +
                                static_cast<std::ptrdiff_t>(
                                    island_offsets[i])),
        std::make_move_iterator(all_scored.begin() +
                                static_cast<std::ptrdiff_t>(
                                    island_offsets[i + 1])));
  }

  // Pareto mode keeps per-island NSGA-II state (recomputed per
  // generation): non-dominated rank then crowding distance drive both
  // the tournaments and environmental selection.
  const auto pareto_points = [&](const std::vector<Scored>& pop) {
    std::vector<ParetoPoint> pts;
    pts.reserve(pop.size());
    for (const auto& s : pop) {
      pts.push_back(pareto_point(s.config, s.accuracy));
    }
    return pts;
  };

  for (std::size_t gen = 0; gen < options.generations; ++gen) {
    GenerationStats stats;
    double sum = 0.0;
    std::size_t members = 0;
    // Per-island NSGA-II tables for this generation (pareto mode only).
    std::vector<std::vector<std::size_t>> ranks(K);
    std::vector<std::vector<double>> dists(K);

    for (std::size_t i = 0; i < K; ++i) {
      auto& pop = islands[i];
      std::sort(pop.begin(), pop.end(), by_objective);
      if (options.pareto) {
        const auto pts = pareto_points(pop);
        ranks[i] = non_dominated_ranks(pts);
        std::vector<std::size_t> all(pop.size());
        for (std::size_t m = 0; m < all.size(); ++m) all[m] = m;
        dists[i] = crowding_distances(pts, all);
      }
      const double island_best = pop.front().objective;
      if (i == 0 || island_best > stats.best_objective) {
        stats.best_objective = island_best;
      }
      for (const auto& s : pop) sum += s.objective;
      members += pop.size();
    }
    stats.mean_objective = sum / static_cast<double>(members);
    result.history.push_back(stats);
    if (traced) island_generations.add(K);

    // Offspring of this generation, all islands batched together
    // (tournament draws from each island's sorted current population,
    // never from siblings, so generating them all before any evaluation
    // matches the serial interleaving).
    genomes.clear();
    for (std::size_t i = 0; i < K; ++i) {
      auto& pop = islands[i];
      Rng& rng = rngs[i];
      const std::size_t children =
          options.pareto ? options.population
                         : options.population - options.elite;
      const auto tournament = [&]() -> const Scored& {
        const std::size_t a = rng.uniform_index(pop.size());
        const std::size_t b = rng.uniform_index(pop.size());
        if (options.pareto) {
          if (ranks[i][a] != ranks[i][b]) {
            return pop[ranks[i][a] < ranks[i][b] ? a : b];
          }
          return pop[dists[i][a] >= dists[i][b] ? a : b];
        }
        return pop[a].objective >= pop[b].objective ? pop[a] : pop[b];
      };
      for (std::size_t c = 0; c < children; ++c) {
        vsa::ModelConfig child =
            crossover(tournament().config, tournament().config, space, rng);
        mutate(child, space, options.mutation_rate, rng);
        genomes.push_back(child);
      }
      island_offsets[i + 1] = genomes.size();
    }
    all_scored = evaluate_batch(genomes);

    for (std::size_t i = 0; i < K; ++i) {
      auto& pop = islands[i];
      const auto child_begin =
          all_scored.begin() +
          static_cast<std::ptrdiff_t>(island_offsets[i]);
      const auto child_end =
          all_scored.begin() +
          static_cast<std::ptrdiff_t>(island_offsets[i + 1]);
      if (options.pareto) {
        // μ+λ environmental selection: parents + children, best fronts
        // first, crowding inside the last partially-admitted front.
        std::vector<Scored> combined = pop;
        combined.insert(combined.end(), child_begin, child_end);
        const auto pts = pareto_points(combined);
        const auto comb_ranks = non_dominated_ranks(pts);
        std::vector<std::size_t> order(combined.size());
        for (std::size_t m = 0; m < order.size(); ++m) order[m] = m;
        const auto comb_dist = crowding_distances(pts, order);
        std::stable_sort(order.begin(), order.end(),
                         [&](std::size_t a, std::size_t b) {
                           if (comb_ranks[a] != comb_ranks[b]) {
                             return comb_ranks[a] < comb_ranks[b];
                           }
                           return comb_dist[a] > comb_dist[b];
                         });
        std::vector<Scored> next;
        next.reserve(options.population);
        for (std::size_t m = 0; m < options.population; ++m) {
          next.push_back(combined[order[m]]);
        }
        pop = std::move(next);
      } else {
        // Elitist preservation: the top `elite` genomes carry over
        // unchanged (pop is still sorted from the top of the loop).
        pop.resize(options.elite);
        pop.insert(pop.end(), std::make_move_iterator(child_begin),
                   std::make_move_iterator(child_end));
      }
    }

    // Deterministic ring migration: simultaneous exchange of each
    // island's best members into its ring successor, reading
    // pre-migration snapshots so the result is independent of island
    // processing order (and of thread count — migration happens on the
    // serial control path).
    if (K > 1 && options.emigrants > 0 &&
        (gen + 1) % options.migration_interval == 0) {
      std::vector<std::vector<std::size_t>> order(K);
      for (std::size_t i = 0; i < K; ++i) {
        auto& pop = islands[i];
        order[i].resize(pop.size());
        for (std::size_t m = 0; m < order[i].size(); ++m) order[i][m] = m;
        if (options.pareto) {
          const auto pts = pareto_points(pop);
          const auto r = non_dominated_ranks(pts);
          const auto d = crowding_distances(pts, order[i]);
          std::stable_sort(order[i].begin(), order[i].end(),
                           [&](std::size_t a, std::size_t b) {
                             if (r[a] != r[b]) return r[a] < r[b];
                             return d[a] > d[b];
                           });
        } else {
          std::stable_sort(order[i].begin(), order[i].end(),
                           [&](std::size_t a, std::size_t b) {
                             return pop[a].objective > pop[b].objective;
                           });
        }
      }
      const std::vector<std::vector<Scored>> snapshot = islands;
      ring_migration_plan(
          K, options.population, options.emigrants,
          [&](std::size_t from, std::size_t rank, std::size_t to,
              std::size_t replaced) {
            islands[to][order[to][replaced]] =
                snapshot[from][order[from][rank]];
          });
    }
  }

  // Final selection. Legacy semantics per island: one last objective
  // sort, best at the front. Under surrogate screening the reported
  // winner must be a fully-evaluated configuration, so proxy-only
  // members are skipped (their keys are re-checked against the oracle
  // memo — a genome screened out early may have been promoted since) and
  // the fully-evaluated history is the fallback.
  bool have_best = false;
  for (std::size_t i = 0; i < K; ++i) {
    auto& pop = islands[i];
    std::sort(pop.begin(), pop.end(), by_objective);
    for (const auto& s : pop) {
      const auto it = oracle_cache.find(key_of(s.config));
      if (it == oracle_cache.end()) continue;
      if (!have_best || it->second.objective > result.best_objective) {
        result.best_config = s.config;
        result.best_objective = it->second.objective;
        result.best_accuracy = it->second.accuracy;
        have_best = true;
      }
      break;  // pop is sorted; only its best member can win the island
    }
  }
  if (!have_best) {
    for (const Key& k : oracle_order) {
      const CacheEntry& e = oracle_cache.at(k);
      if (!have_best || e.objective > result.best_objective) {
        result.best_config = config_of(task, k);
        result.best_objective = e.objective;
        result.best_accuracy = e.accuracy;
        have_best = true;
      }
    }
  }

  if (options.pareto) {
    // Native front: every fully-evaluated member of the final
    // populations, non-dominated-filtered (dedup + ascending memory).
    std::vector<ParetoPoint> pts;
    for (std::size_t i = 0; i < K; ++i) {
      for (const auto& s : islands[i]) {
        const auto it = oracle_cache.find(key_of(s.config));
        if (it == oracle_cache.end()) continue;
        pts.push_back(pareto_point(s.config, it->second.accuracy));
      }
    }
    result.front = non_dominated(pts);
  }
  return result;
}

SearchResult evolutionary_search(const vsa::ModelConfig& task,
                                 const SearchSpace& space,
                                 const AccuracyFn& accuracy,
                                 const SearchOptions& options) {
  UNIVSA_REQUIRE(static_cast<bool>(accuracy), "null accuracy oracle");
  return evolutionary_search(
      task, space,
      SeededAccuracyFn([&accuracy](const vsa::ModelConfig& c,
                                   std::uint64_t) { return accuracy(c); }),
      options);
}

}  // namespace univsa::search
