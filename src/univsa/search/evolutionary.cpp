#include "univsa/search/evolutionary.h"

#include <algorithm>
#include <map>
#include <tuple>

#include "univsa/common/contracts.h"
#include "univsa/vsa/memory_model.h"

namespace univsa::search {

namespace {

using Key = std::tuple<std::size_t, std::size_t, std::size_t, std::size_t,
                       std::size_t>;

Key key_of(const vsa::ModelConfig& c) {
  return {c.D_H, c.D_L, c.D_K, c.O, c.Theta};
}

std::size_t pick(const std::vector<std::size_t>& values, Rng& rng) {
  return values[rng.uniform_index(values.size())];
}

void repair(vsa::ModelConfig& c, const SearchSpace& space) {
  c.O = std::clamp(c.O, space.o_min, space.o_max);
  if (c.D_L > c.D_H) c.D_L = c.D_H;
}

vsa::ModelConfig random_genome(const vsa::ModelConfig& task,
                               const SearchSpace& space, Rng& rng) {
  vsa::ModelConfig c = task;
  c.D_H = pick(space.d_h, rng);
  c.D_L = pick(space.d_l, rng);
  c.D_K = pick(space.d_k, rng);
  c.O = static_cast<std::size_t>(
      rng.uniform_int(static_cast<std::int64_t>(space.o_min),
                      static_cast<std::int64_t>(space.o_max)));
  c.Theta = pick(space.theta, rng);
  repair(c, space);
  return c;
}

vsa::ModelConfig crossover(const vsa::ModelConfig& a,
                           const vsa::ModelConfig& b,
                           const SearchSpace& space, Rng& rng) {
  vsa::ModelConfig c = a;
  if (rng.bernoulli(0.5)) c.D_H = b.D_H;
  if (rng.bernoulli(0.5)) c.D_L = b.D_L;
  if (rng.bernoulli(0.5)) c.D_K = b.D_K;
  if (rng.bernoulli(0.5)) c.O = b.O;
  if (rng.bernoulli(0.5)) c.Theta = b.Theta;
  repair(c, space);
  return c;
}

void mutate(vsa::ModelConfig& c, const SearchSpace& space, double rate,
            Rng& rng) {
  if (rng.bernoulli(rate)) c.D_H = pick(space.d_h, rng);
  if (rng.bernoulli(rate)) c.D_L = pick(space.d_l, rng);
  if (rng.bernoulli(rate)) c.D_K = pick(space.d_k, rng);
  if (rng.bernoulli(rate)) {
    // Local O perturbation keeps the search from jumping wildly.
    const std::int64_t delta = rng.uniform_int(-16, 16);
    const auto o = static_cast<std::int64_t>(c.O) + delta;
    c.O = static_cast<std::size_t>(
        std::clamp<std::int64_t>(o, static_cast<std::int64_t>(space.o_min),
                                 static_cast<std::int64_t>(space.o_max)));
  }
  if (rng.bernoulli(rate)) c.Theta = pick(space.theta, rng);
  repair(c, space);
}

}  // namespace

SearchResult evolutionary_search(const vsa::ModelConfig& task,
                                 const SearchSpace& space,
                                 const AccuracyFn& accuracy,
                                 const SearchOptions& options) {
  UNIVSA_REQUIRE(options.population >= 2, "population too small");
  UNIVSA_REQUIRE(options.elite >= 1 && options.elite < options.population,
                 "elite count must be in [1, population)");
  UNIVSA_REQUIRE(static_cast<bool>(accuracy), "null accuracy oracle");
  UNIVSA_REQUIRE(!space.d_h.empty() && !space.d_l.empty() &&
                     !space.d_k.empty() && !space.theta.empty() &&
                     space.o_min >= 1 && space.o_min <= space.o_max,
                 "empty search space");

  Rng rng(options.seed);
  SearchResult result;
  std::map<Key, std::pair<double, double>> cache;  // key -> (acc, obj)

  struct Scored {
    vsa::ModelConfig config;
    double accuracy = 0.0;
    double objective = 0.0;
  };

  const auto evaluate = [&](const vsa::ModelConfig& c) -> Scored {
    const Key k = key_of(c);
    const auto it = cache.find(k);
    if (it != cache.end()) {
      return {c, it->second.first, it->second.second};
    }
    const double acc = accuracy(c);
    const double obj =
        acc - vsa::hardware_penalty(c, options.lambda1, options.lambda2);
    cache.emplace(k, std::make_pair(acc, obj));
    ++result.evaluations;
    return {c, acc, obj};
  };

  std::vector<Scored> population;
  population.reserve(options.population);
  for (std::size_t i = 0; i < options.population; ++i) {
    population.push_back(evaluate(random_genome(task, space, rng)));
  }

  const auto by_objective = [](const Scored& a, const Scored& b) {
    return a.objective > b.objective;
  };
  const auto tournament = [&]() -> const Scored& {
    const auto& a = population[rng.uniform_index(population.size())];
    const auto& b = population[rng.uniform_index(population.size())];
    return a.objective >= b.objective ? a : b;
  };

  for (std::size_t gen = 0; gen < options.generations; ++gen) {
    std::sort(population.begin(), population.end(), by_objective);

    GenerationStats stats;
    stats.best_objective = population.front().objective;
    double sum = 0.0;
    for (const auto& s : population) sum += s.objective;
    stats.mean_objective = sum / static_cast<double>(population.size());
    result.history.push_back(stats);

    // Elitist preservation: the top `elite` genomes carry over unchanged.
    std::vector<Scored> next(population.begin(),
                             population.begin() +
                                 static_cast<long>(options.elite));
    while (next.size() < options.population) {
      vsa::ModelConfig child =
          crossover(tournament().config, tournament().config, space, rng);
      mutate(child, space, options.mutation_rate, rng);
      next.push_back(evaluate(child));
    }
    population = std::move(next);
  }

  std::sort(population.begin(), population.end(), by_objective);
  result.best_config = population.front().config;
  result.best_objective = population.front().objective;
  result.best_accuracy = population.front().accuracy;
  return result;
}

}  // namespace univsa::search
