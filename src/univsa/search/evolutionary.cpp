#include "univsa/search/evolutionary.h"

#include <algorithm>
#include <iterator>
#include <map>
#include <tuple>

#include "univsa/common/contracts.h"
#include "univsa/common/thread_pool.h"
#include "univsa/telemetry/metrics.h"
#include "univsa/vsa/memory_model.h"

namespace univsa::search {

namespace {

using Key = std::tuple<std::size_t, std::size_t, std::size_t, std::size_t,
                       std::size_t>;

Key key_of(const vsa::ModelConfig& c) {
  return {c.D_H, c.D_L, c.D_K, c.O, c.Theta};
}

std::size_t pick(const std::vector<std::size_t>& values, Rng& rng) {
  return values[rng.uniform_index(values.size())];
}

void repair(vsa::ModelConfig& c, const SearchSpace& space) {
  c.O = std::clamp(c.O, space.o_min, space.o_max);
  if (c.D_L > c.D_H) c.D_L = c.D_H;
}

vsa::ModelConfig random_genome(const vsa::ModelConfig& task,
                               const SearchSpace& space, Rng& rng) {
  vsa::ModelConfig c = task;
  c.D_H = pick(space.d_h, rng);
  c.D_L = pick(space.d_l, rng);
  c.D_K = pick(space.d_k, rng);
  c.O = static_cast<std::size_t>(
      rng.uniform_int(static_cast<std::int64_t>(space.o_min),
                      static_cast<std::int64_t>(space.o_max)));
  c.Theta = pick(space.theta, rng);
  repair(c, space);
  return c;
}

vsa::ModelConfig crossover(const vsa::ModelConfig& a,
                           const vsa::ModelConfig& b,
                           const SearchSpace& space, Rng& rng) {
  vsa::ModelConfig c = a;
  if (rng.bernoulli(0.5)) c.D_H = b.D_H;
  if (rng.bernoulli(0.5)) c.D_L = b.D_L;
  if (rng.bernoulli(0.5)) c.D_K = b.D_K;
  if (rng.bernoulli(0.5)) c.O = b.O;
  if (rng.bernoulli(0.5)) c.Theta = b.Theta;
  repair(c, space);
  return c;
}

void mutate(vsa::ModelConfig& c, const SearchSpace& space, double rate,
            Rng& rng) {
  if (rng.bernoulli(rate)) c.D_H = pick(space.d_h, rng);
  if (rng.bernoulli(rate)) c.D_L = pick(space.d_l, rng);
  if (rng.bernoulli(rate)) c.D_K = pick(space.d_k, rng);
  if (rng.bernoulli(rate)) {
    // Local O perturbation keeps the search from jumping wildly.
    const std::int64_t delta = rng.uniform_int(-16, 16);
    const auto o = static_cast<std::int64_t>(c.O) + delta;
    c.O = static_cast<std::size_t>(
        std::clamp<std::int64_t>(o, static_cast<std::int64_t>(space.o_min),
                                 static_cast<std::int64_t>(space.o_max)));
  }
  if (rng.bernoulli(rate)) c.Theta = pick(space.theta, rng);
  repair(c, space);
}

// Per-configuration oracle seed: a pure function of the search seed and
// the genome, never of evaluation order or thread id — the cornerstone of
// the parallel == serial determinism contract.
std::uint64_t config_seed(std::uint64_t base, const Key& k) {
  std::uint64_t h = base;
  const auto mix = [&h](std::uint64_t v) {
    h ^= v + 0x9E3779B97F4A7C15ULL + (h << 6) + (h >> 2);
  };
  mix(std::get<0>(k));
  mix(std::get<1>(k));
  mix(std::get<2>(k));
  mix(std::get<3>(k));
  mix(std::get<4>(k));
  return h;
}

}  // namespace

SearchResult evolutionary_search(const vsa::ModelConfig& task,
                                 const SearchSpace& space,
                                 const SeededAccuracyFn& accuracy,
                                 const SearchOptions& options) {
  UNIVSA_REQUIRE(options.population >= 2, "population too small");
  UNIVSA_REQUIRE(options.elite >= 1 && options.elite < options.population,
                 "elite count must be in [1, population)");
  UNIVSA_REQUIRE(static_cast<bool>(accuracy), "null accuracy oracle");
  UNIVSA_REQUIRE(!space.d_h.empty() && !space.d_l.empty() &&
                     !space.d_k.empty() && !space.theta.empty() &&
                     space.o_min >= 1 && space.o_min <= space.o_max,
                 "empty search space");

  Rng rng(options.seed);
  SearchResult result;
  std::map<Key, std::pair<double, double>> cache;  // key -> (acc, obj)

  struct Scored {
    vsa::ModelConfig config;
    double accuracy = 0.0;
    double objective = 0.0;
  };

  // Batch evaluation with the serial search's exact memo semantics: walk
  // the candidates in generation order, collect each not-yet-cached key
  // once (first appearance wins), run the oracle over those — concurrently
  // when options.parallel — then insert into the memo serially in that
  // same stable order. The oracle seed depends only on (search seed,
  // genome), so results, memo contents, and the evaluation count are all
  // bit-identical to evaluating one candidate at a time.
  // Search telemetry: one histogram sample per generation-batch of
  // oracle calls, plus memo hit/miss counters (hit = a candidate served
  // from the cache or deduplicated within the batch) and the running
  // hit-rate gauge. Purely observational — the memo semantics above are
  // untouched.
  const bool traced = telemetry::kCompiledIn && telemetry::enabled();
  telemetry::LatencyHistogram& eval_hist =
      telemetry::histogram("search.generation_eval_ns");
  telemetry::Counter& memo_hits = telemetry::counter("search.memo_hits");
  telemetry::Counter& memo_misses =
      telemetry::counter("search.memo_misses");
  telemetry::Gauge& hit_rate_gauge =
      telemetry::gauge("search.memo_hit_rate");

  const auto evaluate_batch =
      [&](const std::vector<vsa::ModelConfig>& configs) {
        std::vector<Key> fresh_keys;
        std::vector<const vsa::ModelConfig*> fresh_configs;
        for (const auto& c : configs) {
          const Key k = key_of(c);
          if (cache.find(k) != cache.end()) continue;
          if (std::find(fresh_keys.begin(), fresh_keys.end(), k) !=
              fresh_keys.end()) {
            continue;
          }
          fresh_keys.push_back(k);
          fresh_configs.push_back(&c);
        }
        if (traced) {
          memo_misses.add(fresh_keys.size());
          memo_hits.add(configs.size() - fresh_keys.size());
          const std::uint64_t total = memo_hits.total() + memo_misses.total();
          if (total > 0) {
            hit_rate_gauge.set(static_cast<double>(memo_hits.total()) /
                               static_cast<double>(total));
          }
        }

        std::vector<double> acc(fresh_keys.size(), 0.0);
        const auto eval_range = [&](std::size_t begin, std::size_t end) {
          for (std::size_t i = begin; i < end; ++i) {
            acc[i] = accuracy(*fresh_configs[i],
                              config_seed(options.seed, fresh_keys[i]));
          }
        };
        const std::uint64_t eval_t0 = traced ? telemetry::now_ns() : 0;
        if (options.parallel) {
          global_pool().parallel_for(fresh_keys.size(), eval_range);
        } else {
          eval_range(0, fresh_keys.size());
        }
        if (traced && !fresh_keys.empty()) {
          eval_hist.record(telemetry::now_ns() - eval_t0);
        }

        for (std::size_t i = 0; i < fresh_keys.size(); ++i) {
          const double obj =
              acc[i] - vsa::hardware_penalty(*fresh_configs[i],
                                             options.lambda1,
                                             options.lambda2);
          cache.emplace(fresh_keys[i], std::make_pair(acc[i], obj));
          ++result.evaluations;
        }

        std::vector<Scored> scored;
        scored.reserve(configs.size());
        for (const auto& c : configs) {
          const auto& entry = cache.at(key_of(c));
          scored.push_back({c, entry.first, entry.second});
        }
        return scored;
      };

  // Genomes are always generated serially — candidate evaluation cannot
  // influence genome generation (the RNG feeds only selection, crossover,
  // and mutation), so batching the oracle calls preserves the serial
  // search's RNG consumption order exactly.
  std::vector<vsa::ModelConfig> genomes;
  genomes.reserve(options.population);
  for (std::size_t i = 0; i < options.population; ++i) {
    genomes.push_back(random_genome(task, space, rng));
  }
  std::vector<Scored> population = evaluate_batch(genomes);

  const auto by_objective = [](const Scored& a, const Scored& b) {
    return a.objective > b.objective;
  };
  const auto tournament = [&]() -> const Scored& {
    const auto& a = population[rng.uniform_index(population.size())];
    const auto& b = population[rng.uniform_index(population.size())];
    return a.objective >= b.objective ? a : b;
  };

  for (std::size_t gen = 0; gen < options.generations; ++gen) {
    std::sort(population.begin(), population.end(), by_objective);

    GenerationStats stats;
    stats.best_objective = population.front().objective;
    double sum = 0.0;
    for (const auto& s : population) sum += s.objective;
    stats.mean_objective = sum / static_cast<double>(population.size());
    result.history.push_back(stats);

    // Offspring of this generation (tournament draws from the sorted
    // current population, never from siblings, so generating them all
    // before any evaluation matches the serial interleaving).
    genomes.clear();
    while (options.elite + genomes.size() < options.population) {
      vsa::ModelConfig child =
          crossover(tournament().config, tournament().config, space, rng);
      mutate(child, space, options.mutation_rate, rng);
      genomes.push_back(child);
    }
    std::vector<Scored> children = evaluate_batch(genomes);

    // Elitist preservation: the top `elite` genomes carry over unchanged.
    population.resize(options.elite);
    population.insert(population.end(),
                      std::make_move_iterator(children.begin()),
                      std::make_move_iterator(children.end()));
  }

  std::sort(population.begin(), population.end(), by_objective);
  result.best_config = population.front().config;
  result.best_objective = population.front().objective;
  result.best_accuracy = population.front().accuracy;
  return result;
}

SearchResult evolutionary_search(const vsa::ModelConfig& task,
                                 const SearchSpace& space,
                                 const AccuracyFn& accuracy,
                                 const SearchOptions& options) {
  UNIVSA_REQUIRE(static_cast<bool>(accuracy), "null accuracy oracle");
  return evolutionary_search(
      task, space,
      SeededAccuracyFn([&accuracy](const vsa::ModelConfig& c,
                                   std::uint64_t) { return accuracy(c); }),
      options);
}

}  // namespace univsa::search
