// Evolutionary configuration search with elitist preservation (Sec. V-A,
// refs [27], [28]).
//
// Searches (D_H, D_L, D_K, O, Θ) for a fixed task geometry, maximizing
//   obj = Acc(config) − L_HW(config)            (Eq. 7 penalty,
//                                                λ1 = λ2 = 0.005)
// The accuracy oracle is injected so callers choose the fidelity:
// the Table I bench trains a small model per candidate, tests use an
// analytic surrogate. Evaluations are memoized per configuration — the
// GA revisits genomes often and training is the expensive part.
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "univsa/common/rng.h"
#include "univsa/vsa/model_config.h"

namespace univsa::search {

struct SearchSpace {
  std::vector<std::size_t> d_h = {2, 4, 8, 16};
  std::vector<std::size_t> d_l = {1, 2, 4};
  std::vector<std::size_t> d_k = {3, 5};
  std::size_t o_min = 8;
  std::size_t o_max = 160;
  std::vector<std::size_t> theta = {1, 3, 5};
};

struct SearchOptions {
  std::size_t population = 16;
  std::size_t generations = 10;
  std::size_t elite = 4;       ///< elitist preservation count
  double mutation_rate = 0.3;  ///< per-gene mutation probability
  double lambda1 = 0.005;      ///< Eq. 7 memory weight
  double lambda2 = 0.005;      ///< Eq. 7 resource weight
  std::uint64_t seed = 7;
  /// Evaluate candidate batches across the global thread pool. The
  /// trajectory is bit-identical to the serial search for a fixed seed:
  /// genomes are generated serially (same RNG consumption), only the
  /// oracle calls — keyed by configuration, seeded independently of
  /// evaluation order — run concurrently, and memo insertion happens
  /// serially in generation order. The oracle must be thread-safe.
  bool parallel = true;
};

/// Returns the (validation) accuracy of a candidate configuration.
/// Must be deterministic per configuration (and thread-safe when
/// SearchOptions::parallel) or the search trajectory is not reproducible.
using AccuracyFn = std::function<double(const vsa::ModelConfig&)>;

/// Accuracy oracle handed a per-configuration deterministic seed derived
/// from SearchOptions::seed and the genome alone (never from evaluation
/// order or thread id), so oracles that train a model can seed their RNG
/// from it and stay reproducible under parallel evaluation.
using SeededAccuracyFn =
    std::function<double(const vsa::ModelConfig&, std::uint64_t)>;

struct GenerationStats {
  double best_objective = 0.0;
  double mean_objective = 0.0;
};

struct SearchResult {
  vsa::ModelConfig best_config;
  double best_objective = 0.0;
  double best_accuracy = 0.0;
  std::vector<GenerationStats> history;
  std::size_t evaluations = 0;  ///< oracle calls (after memoization)
};

/// `task` supplies W, L, C, M; its hyperparameter fields are ignored.
SearchResult evolutionary_search(const vsa::ModelConfig& task,
                                 const SearchSpace& space,
                                 const AccuracyFn& accuracy,
                                 const SearchOptions& options);

SearchResult evolutionary_search(const vsa::ModelConfig& task,
                                 const SearchSpace& space,
                                 const SeededAccuracyFn& accuracy,
                                 const SearchOptions& options);

}  // namespace univsa::search
