// Evolutionary configuration search with elitist preservation (Sec. V-A,
// refs [27], [28]).
//
// Searches (D_H, D_L, D_K, O, Θ) for a fixed task geometry, maximizing
//   obj = Acc(config) − L_HW(config)            (Eq. 7 penalty,
//                                                λ1 = λ2 = 0.005)
// The accuracy oracle is injected so callers choose the fidelity:
// the Table I bench trains a small model per candidate, tests use an
// analytic surrogate. Evaluations are memoized per configuration — the
// GA revisits genomes often and training is the expensive part.
//
// Beyond the paper's single-population GA, the search scales out in
// three orthogonal directions (all off by default; defaults reproduce
// the legacy trajectory bit-for-bit):
//
//  * Island model (`SearchOptions::islands`): K independent populations,
//    each with its own RNG stream (Rng::stream(seed, island)), evolved
//    in lock-step with all islands' offspring evaluated as one combined
//    batch — per-generation parallelism scales with K·population instead
//    of a single population's fresh-candidate count. Every
//    `migration_interval` generations the islands exchange their top
//    `emigrants` around a deterministic ring (see ring_migration_plan).
//
//  * Surrogate pre-screening (`SearchOptions::surrogate`): a cheap
//    seeded proxy (e.g. truncated-epoch training) scores each
//    generation's fresh offspring and only the top `surrogate_keep`
//    fraction is promoted to the full oracle; the rest keep their proxy
//    score for selection. Proxy and oracle results are memoized
//    separately, and a genome screened out in one generation can still
//    be promoted when it resurfaces. An empty surrogate is exact mode.
//
//  * Native multi-objective mode (`SearchOptions::pareto`): NSGA-II
//    non-dominated sorting + crowding selection inside the same island/
//    surrogate machinery, emitting the accuracy/memory/resource front
//    (SearchResult::front) instead of only the Eq. 7 scalarization.
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "univsa/common/rng.h"
#include "univsa/vsa/model_config.h"

namespace univsa::search {

struct SearchSpace {
  std::vector<std::size_t> d_h = {2, 4, 8, 16};
  std::vector<std::size_t> d_l = {1, 2, 4};
  std::vector<std::size_t> d_k = {3, 5};
  std::size_t o_min = 8;
  std::size_t o_max = 160;
  std::vector<std::size_t> theta = {1, 3, 5};
};

/// Returns the (validation) accuracy of a candidate configuration.
/// Must be deterministic per configuration (and thread-safe when
/// SearchOptions::parallel) or the search trajectory is not reproducible.
using AccuracyFn = std::function<double(const vsa::ModelConfig&)>;

/// Accuracy oracle handed a per-configuration deterministic seed derived
/// from SearchOptions::seed and the genome alone (never from evaluation
/// order or thread id), so oracles that train a model can seed their RNG
/// from it and stay reproducible under parallel evaluation.
using SeededAccuracyFn =
    std::function<double(const vsa::ModelConfig&, std::uint64_t)>;

struct SearchOptions {
  std::size_t population = 16;  ///< per-island population
  std::size_t generations = 10;
  std::size_t elite = 4;       ///< elitist preservation count
  double mutation_rate = 0.3;  ///< per-gene mutation probability
  double lambda1 = 0.005;      ///< Eq. 7 memory weight
  double lambda2 = 0.005;      ///< Eq. 7 resource weight
  std::uint64_t seed = 7;
  /// Evaluate candidate batches across the global thread pool. The
  /// trajectory is bit-identical to the serial search for a fixed seed:
  /// genomes are generated serially (same RNG consumption), only the
  /// oracle calls — keyed by configuration, seeded independently of
  /// evaluation order — run concurrently, and memo insertion happens
  /// serially in generation order. The oracle must be thread-safe.
  bool parallel = true;

  // --- Island model ---------------------------------------------------
  /// Number of independent populations. 1 reproduces the legacy
  /// single-population trajectory exactly (island 0 then draws from
  /// Rng(seed), not Rng::stream, for backwards bit-compatibility).
  std::size_t islands = 1;
  /// Generations between ring migrations (only meaningful islands > 1).
  std::size_t migration_interval = 4;
  /// Members copied island→island per migration, clamped to
  /// population − 1. 0 disables migration.
  std::size_t emigrants = 2;

  // --- Surrogate pre-screening ---------------------------------------
  /// Cheap fitness proxy with the same seeding contract as the oracle;
  /// empty (default) means exact mode — every fresh genome goes to the
  /// full oracle. Must be thread-safe when `parallel`.
  SeededAccuracyFn surrogate;
  /// Fraction of each fresh batch promoted to the full oracle (at least
  /// one candidate per non-empty batch). Ignored without `surrogate`.
  double surrogate_keep = 0.5;

  // --- Multi-objective mode -------------------------------------------
  /// NSGA-II selection (non-dominated rank, then crowding distance) over
  /// (accuracy ↑, Eq. 5 memory ↓, Eq. 6 resources ↓); fills
  /// SearchResult::front. The Eq. 7 scalarization still decides
  /// best_config so single-number reporting keeps working.
  bool pareto = false;
};

struct GenerationStats {
  double best_objective = 0.0;
  double mean_objective = 0.0;
};

/// One point of the accuracy/memory/resource trade-off surface.
struct ParetoPoint {
  vsa::ModelConfig config;
  double accuracy = 0.0;
  double memory_kb = 0.0;
  double resource_units = 0.0;
};

struct SearchResult {
  vsa::ModelConfig best_config;
  double best_objective = 0.0;
  double best_accuracy = 0.0;
  std::vector<GenerationStats> history;  ///< per generation, max/mean
                                         ///< across all islands
  std::size_t evaluations = 0;  ///< full-oracle calls (after memoization)
  /// Proxy calls made by surrogate pre-screening (0 in exact mode).
  std::size_t surrogate_evaluations = 0;
  /// Fresh candidates promoted to the full oracle by the screen (equals
  /// `evaluations` in exact mode).
  std::size_t surrogate_promoted = 0;
  /// Non-dominated front over every fully-evaluated configuration in the
  /// final populations; empty unless SearchOptions::pareto.
  std::vector<ParetoPoint> front;
};

/// `task` supplies W, L, C, M; its hyperparameter fields are ignored.
SearchResult evolutionary_search(const vsa::ModelConfig& task,
                                 const SearchSpace& space,
                                 const AccuracyFn& accuracy,
                                 const SearchOptions& options);

SearchResult evolutionary_search(const vsa::ModelConfig& task,
                                 const SearchSpace& space,
                                 const SeededAccuracyFn& accuracy,
                                 const SearchOptions& options);

/// The deterministic ring-migration plan the island search applies
/// (exposed for the topology unit test): with islands sorted best-first,
/// island i's members of rank 0..E−1 are copied into island (i+1) mod K,
/// replacing its members of rank P−E..P−1 (emigrant rank e replaces
/// destination rank P−E+e); all copies read pre-migration state, so the
/// exchange is simultaneous around the ring. E is `emigrants` clamped to
/// P−1. `visit(from_island, emigrant_rank, to_island, replaced_rank)` is
/// called once per copied member, in (from_island, emigrant_rank) order.
void ring_migration_plan(
    std::size_t islands, std::size_t population, std::size_t emigrants,
    const std::function<void(std::size_t, std::size_t, std::size_t,
                             std::size_t)>& visit);

}  // namespace univsa::search
