#include "univsa/train/cross_validation.h"

#include "univsa/common/contracts.h"
#include "univsa/common/rng.h"

namespace univsa::train {

std::vector<std::size_t> stratified_folds(const data::Dataset& dataset,
                                          std::size_t folds,
                                          std::uint64_t seed) {
  UNIVSA_REQUIRE(folds >= 2, "need at least two folds");
  UNIVSA_REQUIRE(dataset.size() >= folds, "fewer samples than folds");
  Rng rng(seed);
  std::vector<std::size_t> assignment(dataset.size());
  // Per class: shuffle members, deal them round-robin across folds.
  std::vector<std::vector<std::size_t>> by_class(dataset.classes());
  for (std::size_t i = 0; i < dataset.size(); ++i) {
    by_class[static_cast<std::size_t>(dataset.label(i))].push_back(i);
  }
  std::size_t next_fold = 0;
  for (auto& members : by_class) {
    for (std::size_t i = members.size(); i > 1; --i) {
      std::swap(members[i - 1], members[rng.uniform_index(i)]);
    }
    for (const auto idx : members) {
      assignment[idx] = next_fold;
      next_fold = (next_fold + 1) % folds;
    }
  }
  return assignment;
}

CrossValidationResult cross_validate_univsa(
    const vsa::ModelConfig& config, const data::Dataset& dataset,
    const CrossValidationOptions& options) {
  const auto assignment =
      stratified_folds(dataset, options.folds, options.fold_seed);

  CrossValidationResult result;
  for (std::size_t fold = 0; fold < options.folds; ++fold) {
    std::vector<std::size_t> train_idx;
    std::vector<std::size_t> test_idx;
    for (std::size_t i = 0; i < dataset.size(); ++i) {
      (assignment[i] == fold ? test_idx : train_idx).push_back(i);
    }
    UNIVSA_REQUIRE(!test_idx.empty() && !train_idx.empty(),
                   "degenerate fold");
    const data::Dataset train_set = dataset.subset(train_idx);
    const data::Dataset test_set = dataset.subset(test_idx);
    const auto trained =
        train_univsa(config, train_set, options.train);
    result.fold_accuracies.push_back(
        trained.model.accuracy(test_set));
  }
  result.summary = report::summarize(result.fold_accuracies);
  return result;
}

}  // namespace univsa::train
