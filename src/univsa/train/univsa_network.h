// The trainable partial BNN of Sec. II-C, extended with the UniVSA
// modules of Sec. III.
//
// Architecture (full UniVSA, ablation toggles in NetworkOptions):
//
//   values (B, W, L) ──DVP lookup──> volume (B, D_H, W, L)   [VB_H / VB_L]
//          └ mask routes each feature to VB_H (D_H lanes) or VB_L
//            (D_L lanes, upper lanes zero-padded)
//   volume ──BiConv──> (B, O, W, L) ──sgn──> u (B, O, N_s)
//   u ──Encoding (F)──> z (B, N_s) ──sgn──> s
//   s ──SoftVotingHead (Θ class-vector sets, Eq. 4)──> logits (B, C)
//
// With use_conv = false the network degrades to plain LDC: per-feature
// value vectors of dimension D_H feed the encoding layer directly
// (groups = N features, vector dim = D_H). With use_dvp = false a single
// ValueBox serves every feature. voters = Θ controls soft voting. These
// four settings generate every bar of the Fig. 4 ablation.
//
// Training stays in float with straight-through estimators; forward
// passes are already fully binarized, so network accuracy equals deployed
// accuracy (extract() + property test assert bit-equality for the full
// configuration).
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <vector>

#include "univsa/common/rng.h"
#include "univsa/data/dataset.h"
#include "univsa/nn/activations.h"
#include "univsa/nn/binary_conv2d.h"
#include "univsa/nn/encoding_layer.h"
#include "univsa/nn/param.h"
#include "univsa/nn/soft_voting_head.h"
#include "univsa/nn/value_box.h"
#include "univsa/vsa/model.h"
#include "univsa/vsa/ldc_model.h"
#include "univsa/vsa/model_config.h"

namespace univsa::train {

struct NetworkOptions {
  bool use_dvp = true;
  bool use_conv = true;
  /// Θ is taken from ModelConfig::Theta; set to 1 there to disable SV.
  std::size_t value_box_hidden = 16;
};

class UniVsaNetwork {
 public:
  /// `mask` must have W·L entries; ignored (all-high) when !use_dvp.
  UniVsaNetwork(const vsa::ModelConfig& config, NetworkOptions options,
                std::vector<std::uint8_t> mask, Rng& rng);

  const vsa::ModelConfig& config() const { return config_; }
  const NetworkOptions& options() const { return options_; }

  /// Forward over dataset samples `indices`; returns logits (B, C).
  /// The reference points at an internal buffer valid until the next
  /// forward — the whole pass runs on persistent scratch, so a training
  /// step performs no steady-state allocation.
  const Tensor& forward(const data::Dataset& dataset,
                        const std::vector<std::size_t>& indices);

  /// Backward from the loss gradient; accumulates parameter grads.
  void backward(const Tensor& grad_logits);

  ParamList params();
  void zero_grad();

  /// Argmax predictions for arbitrary samples (binarized forward).
  std::vector<int> predict(const data::Dataset& dataset,
                           const std::vector<std::size_t>& indices);

  /// Accuracy over a whole dataset, batched internally.
  double evaluate(const data::Dataset& dataset, std::size_t batch_size = 64);

  /// Extracts the deployed binary model. Requires use_conv (the vsa::Model
  /// datapath is the UniVSA pipeline). With !use_dvp the mask is all-ones
  /// and V_L is a truncated copy of V_H (never selected). Non-const: the
  /// ValueBox tables are re-evaluated through the network.
  vsa::Model extract_model();

  /// Extracts a plain-LDC deployed model. Requires !use_conv && !use_dvp
  /// and Θ = 1.
  vsa::LdcModel extract_ldc_model();

 private:
  /// Value vector dimension entering the encoder path
  /// (D_H both with and without conv).
  std::size_t value_dim() const { return config_.D_H; }
  /// Encoding group count: O channels (conv) or N features (no conv).
  std::size_t encode_groups() const;
  /// Encoded vector dimension: N_s (conv) or D_H (no conv).
  std::size_t encode_dim() const;

  void build_volume(const data::Dataset& dataset,
                    const std::vector<std::size_t>& indices,
                    const Tensor& table_high, const Tensor& table_low);
  void scatter_volume_grad(const Tensor& grad_volume, Tensor& grad_high,
                           Tensor& grad_low) const;

  vsa::ModelConfig config_;
  NetworkOptions options_;
  std::vector<std::uint8_t> mask_;

  ValueBox vb_high_;
  std::optional<ValueBox> vb_low_;
  std::optional<BinaryConv2d> conv_;
  SignSte conv_sign_;
  EncodingLayer encoder_;
  SignSte encode_sign_;
  SoftVotingHead head_;

  // Cached per-forward state for the backward scatter.
  std::vector<std::uint16_t> cached_values_;  // B·N level indices
  std::size_t cached_batch_ = 0;
  bool has_cache_ = false;

  // Persistent activation/gradient scratch: every forward/backward runs
  // through these via the layers' *_into APIs, so repeated steps with a
  // stable batch shape allocate nothing.
  Tensor empty_low_;  // stand-in V_L table when DVP is off
  Tensor volume_;
  Tensor conv_pre_;
  Tensor u_;
  Tensor z_;
  Tensor s_;
  Tensor logits_;
  Tensor ds_;
  Tensor dz_;
  Tensor du_;
  Tensor dpre_;
  Tensor dvolume_;
  Tensor grad_high_;
  Tensor grad_low_;
};

}  // namespace univsa::train
