#include "univsa/train/ldc_trainer.h"

#include "univsa/common/contracts.h"

namespace univsa::train {

LdcTrainResult train_ldc(const data::Dataset& train_set, std::size_t dim,
                         const TrainOptions& options) {
  UNIVSA_REQUIRE(dim >= 1, "LDC dimension must be positive");
  vsa::ModelConfig config;
  config.W = train_set.windows();
  config.L = train_set.length();
  config.C = train_set.classes();
  config.M = train_set.levels();
  config.D_H = dim;
  config.D_L = 1;   // unused without DVP
  config.D_K = 1;   // unused without conv
  config.O = 1;     // unused without conv
  config.Theta = 1;

  NetworkOptions net_options;
  net_options.use_dvp = false;
  net_options.use_conv = false;
  TrainedNetwork trained =
      train_network(config, net_options, train_set, options);
  return {trained.network->extract_ldc_model(), std::move(trained.history)};
}

}  // namespace univsa::train
