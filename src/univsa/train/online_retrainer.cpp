#include "univsa/train/online_retrainer.h"

#include <numeric>

#include "univsa/common/contracts.h"
#include "univsa/common/rng.h"

namespace univsa::train {

OnlineRetrainResult adapt_class_vectors(
    const vsa::Model& model, const data::Dataset& samples,
    const OnlineRetrainOptions& options) {
  const vsa::ModelConfig& c = model.config();
  UNIVSA_REQUIRE(!samples.empty(), "no adaptation samples");
  UNIVSA_REQUIRE(samples.windows() == c.W && samples.length() == c.L,
                 "dataset geometry mismatch");
  UNIVSA_REQUIRE(samples.classes() == c.C, "class count mismatch");
  UNIVSA_REQUIRE(options.epochs >= 1, "need at least one epoch");
  UNIVSA_REQUIRE(options.inertia >= 1, "inertia must be positive");

  const std::size_t ns = c.sample_dim();
  // Integer counters seeded from the deployed class vectors.
  std::vector<std::vector<long long>> counters(
      c.Theta * c.C, std::vector<long long>(ns));
  for (std::size_t r = 0; r < counters.size(); ++r) {
    for (std::size_t j = 0; j < ns; ++j) {
      counters[r][j] =
          options.inertia * model.class_vectors()[r].get(j);
    }
  }

  // Encodings are fixed (V/K/F/mask frozen) — compute once.
  std::vector<BitVec> encodings;
  encodings.reserve(samples.size());
  for (std::size_t i = 0; i < samples.size(); ++i) {
    encodings.push_back(model.encode(samples.values(i)));
  }

  const auto predict_from_counters = [&](const BitVec& s) {
    std::size_t best = 0;
    long long best_score = 0;
    for (std::size_t cls = 0; cls < c.C; ++cls) {
      long long score = 0;
      for (std::size_t t = 0; t < c.Theta; ++t) {
        const auto& cnt = counters[t * c.C + cls];
        for (std::size_t j = 0; j < ns; ++j) {
          // sign(counter) with the sgn(0)=+1 tiebreak.
          score += (cnt[j] >= 0 ? 1 : -1) * s.get(j);
        }
      }
      if (cls == 0 || score > best_score) {
        best_score = score;
        best = cls;
      }
    }
    return best;
  };

  OnlineRetrainResult result;
  Rng rng(options.seed);
  std::vector<std::size_t> order(samples.size());
  std::iota(order.begin(), order.end(), 0);
  std::size_t mistakes = 0;

  for (std::size_t epoch = 0; epoch < options.epochs; ++epoch) {
    for (std::size_t i = order.size(); i > 1; --i) {
      std::swap(order[i - 1], order[rng.uniform_index(i)]);
    }
    std::size_t updates = 0;
    for (const auto idx : order) {
      const BitVec& s = encodings[idx];
      const auto truth = static_cast<std::size_t>(samples.label(idx));
      const std::size_t predicted = predict_from_counters(s);
      if (predicted == truth) continue;
      // Round-robin voter selection keeps the ensemble diverse.
      const std::size_t voter = mistakes % c.Theta;
      auto& cnt_true = counters[voter * c.C + truth];
      auto& cnt_pred = counters[voter * c.C + predicted];
      for (std::size_t j = 0; j < ns; ++j) {
        const int lane = s.get(j);
        cnt_true[j] += lane;
        cnt_pred[j] -= lane;
      }
      ++mistakes;
      ++updates;
    }
    result.updates_per_epoch.push_back(updates);
    if (updates == 0) break;  // converged on the adaptation set
  }

  // Re-binarize into a deployed model.
  Tensor class_vectors({c.Theta * c.C, ns});
  for (std::size_t r = 0; r < counters.size(); ++r) {
    for (std::size_t j = 0; j < ns; ++j) {
      const float lane = counters[r][j] >= 0 ? 1.0f : -1.0f;
      class_vectors.at(r, j) = lane;
      if (static_cast<int>(lane) != model.class_vectors()[r].get(j)) {
        ++result.flipped_lanes;
      }
    }
  }
  result.model = model.with_class_vectors(class_vectors);
  return result;
}

OnlineRetrainResult refresh_class_vectors(
    const vsa::Model& model, const data::Dataset& recent,
    std::uint64_t generation, const OnlineRetrainOptions& options) {
  OnlineRetrainOptions decorrelated = options;
  // splitmix64-style mix so generation 0 reproduces plain
  // adapt_class_vectors ordering only when the caller's seed says so.
  decorrelated.seed =
      options.seed ^ (generation * 0x9E3779B97F4A7C15ull + (generation != 0));
  return adapt_class_vectors(model, recent, decorrelated);
}

}  // namespace univsa::train
