#include "univsa/train/univsa_network.h"

#include <algorithm>
#include <numeric>

#include "univsa/common/contracts.h"
#include "univsa/nn/loss.h"

namespace univsa::train {

namespace {
const vsa::ModelConfig& validated(const vsa::ModelConfig& config) {
  config.validate();
  return config;
}
}  // namespace

UniVsaNetwork::UniVsaNetwork(const vsa::ModelConfig& config,
                             NetworkOptions options,
                             std::vector<std::uint8_t> mask, Rng& rng)
    : config_(validated(config)),
      options_(options),
      mask_(std::move(mask)),
      vb_high_(config.M, config.D_H, rng, options.value_box_hidden),
      encoder_(options.use_conv ? config.O : config.W * config.L,
               options.use_conv ? config.W * config.L : config.D_H, rng),
      head_(options.use_conv ? config.W * config.L : config.D_H, config.C,
            config.Theta, rng) {
  if (options_.use_dvp) {
    UNIVSA_REQUIRE(mask_.size() == config_.features(),
                   "mask size must be W·L");
    vb_low_.emplace(config_.M, config_.D_L, rng,
                    options_.value_box_hidden);
  } else {
    mask_.assign(config_.features(), 1);
  }
  if (options_.use_conv) {
    // The deployed PackedValue datapath carries up to 32 channel lanes.
    UNIVSA_REQUIRE(config_.D_H <= 32,
                   "D_H must fit PackedValue lanes on the conv path");
    conv_.emplace(config_.D_H, config_.O, config_.D_K, rng);
  }
}

std::size_t UniVsaNetwork::encode_groups() const {
  return options_.use_conv ? config_.O : config_.features();
}

std::size_t UniVsaNetwork::encode_dim() const {
  return options_.use_conv ? config_.sample_dim() : config_.D_H;
}

void UniVsaNetwork::build_volume(const data::Dataset& dataset,
                                 const std::vector<std::size_t>& indices,
                                 const Tensor& table_high,
                                 const Tensor& table_low) {
  const std::size_t batch = indices.size();
  const std::size_t n = config_.features();
  const std::size_t dh = config_.D_H;
  const std::size_t dl = config_.D_L;

  cached_values_.resize(batch * n);
  cached_batch_ = batch;

  // Conv layout: (B, D_H, W, L) — channel-major for im2col.
  // No-conv layout: (B, N, D_H) — feature-major for the encoder.
  if (options_.use_conv) {
    volume_.ensure_shape({batch, dh, config_.W, config_.L});
  } else {
    volume_.ensure_shape({batch, n, dh});
  }
  volume_.fill(0.0f);
  float* vd = volume_.data();

  for (std::size_t b = 0; b < batch; ++b) {
    const auto& x = dataset.values(indices[b]);
    UNIVSA_REQUIRE(x.size() == n, "sample size mismatch");
    for (std::size_t i = 0; i < n; ++i) {
      const std::uint16_t level = x[i];
      UNIVSA_REQUIRE(level < config_.M, "value exceeds M levels");
      cached_values_[b * n + i] = level;
      const bool high = mask_[i] != 0;
      const std::size_t lanes = high ? dh : dl;
      const Tensor& table = high ? table_high : table_low;
      for (std::size_t d = 0; d < lanes; ++d) {
        const float v = table.at(level, d);
        if (options_.use_conv) {
          vd[((b * dh + d) * n) + i] = v;
        } else {
          vd[(b * n + i) * dh + d] = v;
        }
      }
      // Lanes [lanes, dh) stay 0 — the DVP padding.
    }
  }
}

const Tensor& UniVsaNetwork::forward(
    const data::Dataset& dataset, const std::vector<std::size_t>& indices) {
  UNIVSA_REQUIRE(!indices.empty(), "empty batch");
  UNIVSA_REQUIRE(dataset.windows() == config_.W &&
                     dataset.length() == config_.L,
                 "dataset geometry mismatch");
  const Tensor& table_high = vb_high_.forward_table_cached();
  const Tensor& table_low =
      options_.use_dvp ? vb_low_->forward_table_cached() : empty_low_;

  build_volume(dataset, indices, table_high, table_low);
  has_cache_ = true;

  if (options_.use_conv) {
    conv_->forward_into(volume_, conv_pre_);
    conv_sign_.forward_into(conv_pre_, u_);
    u_.reshape_({indices.size(), config_.O, config_.sample_dim()});
    encoder_.forward_into(u_, z_);
  } else {
    encoder_.forward_into(volume_, z_);  // (B, N, D_H), already bipolar/0
  }
  encode_sign_.forward_into(z_, s_);
  head_.forward_into(s_, logits_);
  return logits_;
}

void UniVsaNetwork::backward(const Tensor& grad_logits) {
  UNIVSA_ENSURE(has_cache_, "backward before forward");
  has_cache_ = false;

  head_.backward_into(grad_logits, ds_);
  encode_sign_.backward_into(ds_, dz_);
  encoder_.backward_into(dz_, du_);  // (B, G, Dv)

  const Tensor* dvolume = &du_;
  if (options_.use_conv) {
    du_.reshape_({cached_batch_, config_.O, config_.W, config_.L});
    conv_sign_.backward_into(du_, dpre_);
    conv_->backward_into(dpre_, dvolume_);  // (B, D_H, W, L)
    dvolume = &dvolume_;
  }

  grad_high_.ensure_shape({config_.M, config_.D_H});
  grad_high_.fill(0.0f);
  grad_low_.ensure_shape({config_.M, config_.D_L});
  grad_low_.fill(0.0f);
  scatter_volume_grad(*dvolume, grad_high_, grad_low_);
  vb_high_.backward_table(grad_high_);
  if (options_.use_dvp) vb_low_->backward_table(grad_low_);
}

void UniVsaNetwork::scatter_volume_grad(const Tensor& grad_volume,
                                        Tensor& grad_high,
                                        Tensor& grad_low) const {
  const std::size_t n = config_.features();
  const std::size_t dh = config_.D_H;
  const std::size_t dl = config_.D_L;
  const float* gd = grad_volume.data();

  for (std::size_t b = 0; b < cached_batch_; ++b) {
    for (std::size_t i = 0; i < n; ++i) {
      const std::uint16_t level = cached_values_[b * n + i];
      const bool high = mask_[i] != 0;
      const std::size_t lanes = high ? dh : dl;
      Tensor& table = high ? grad_high : grad_low;
      for (std::size_t d = 0; d < lanes; ++d) {
        const float g = options_.use_conv
                            ? gd[((b * dh + d) * n) + i]
                            : gd[(b * n + i) * dh + d];
        table.at(level, d) += g;
      }
      // Gradients on padded lanes correspond to constant-0 inputs; dropped.
    }
  }
}

ParamList UniVsaNetwork::params() {
  ParamList list = vb_high_.params();
  if (vb_low_) append_params(list, vb_low_->params());
  if (conv_) append_params(list, conv_->params());
  append_params(list, encoder_.params());
  append_params(list, head_.params());
  return list;
}

void UniVsaNetwork::zero_grad() {
  vb_high_.zero_grad();
  if (vb_low_) vb_low_->zero_grad();
  if (conv_) conv_->zero_grad();
  encoder_.zero_grad();
  head_.zero_grad();
}

std::vector<int> UniVsaNetwork::predict(
    const data::Dataset& dataset, const std::vector<std::size_t>& indices) {
  const Tensor& logits = forward(dataset, indices);
  has_cache_ = false;  // no backward follows
  std::vector<int> labels(indices.size());
  for (std::size_t b = 0; b < indices.size(); ++b) {
    std::size_t best = 0;
    for (std::size_t c = 1; c < config_.C; ++c) {
      if (logits.at(b, c) > logits.at(b, best)) best = c;
    }
    labels[b] = static_cast<int>(best);
  }
  return labels;
}

double UniVsaNetwork::evaluate(const data::Dataset& dataset,
                               std::size_t batch_size) {
  UNIVSA_REQUIRE(!dataset.empty(), "empty dataset");
  std::size_t correct = 0;
  std::vector<std::size_t> indices;
  for (std::size_t start = 0; start < dataset.size();
       start += batch_size) {
    const std::size_t end = std::min(dataset.size(), start + batch_size);
    indices.resize(end - start);
    std::iota(indices.begin(), indices.end(), start);
    const auto labels = predict(dataset, indices);
    for (std::size_t b = 0; b < labels.size(); ++b) {
      if (labels[b] == dataset.label(start + b)) ++correct;
    }
  }
  return static_cast<double>(correct) / static_cast<double>(dataset.size());
}

vsa::Model UniVsaNetwork::extract_model() {
  UNIVSA_REQUIRE(options_.use_conv,
                 "deployed UniVSA model requires the BiConv path");
  const Tensor table_high = sign_tensor(vb_high_.forward_table());
  Tensor table_low;
  if (options_.use_dvp) {
    table_low = sign_tensor(vb_low_->forward_table());
  } else {
    // Mask is all-high; V_L is never consulted. Store truncated V_H lanes.
    table_low = Tensor({config_.M, config_.D_L});
    for (std::size_t m = 0; m < config_.M; ++m) {
      for (std::size_t d = 0; d < config_.D_L; ++d) {
        table_low.at(m, d) = table_high.at(m, d);
      }
    }
  }

  // Stack the Θ voter class-vector sets voter-major.
  Tensor class_vectors({config_.Theta * config_.C, config_.sample_dim()});
  for (std::size_t theta = 0; theta < config_.Theta; ++theta) {
    const Tensor cv = head_.binary_class_vectors(theta);
    for (std::size_t c = 0; c < config_.C; ++c) {
      for (std::size_t j = 0; j < config_.sample_dim(); ++j) {
        class_vectors.at(theta * config_.C + c, j) = cv.at(c, j);
      }
    }
  }

  return vsa::Model(config_, mask_, table_high, table_low,
                    conv_->binary_weight(), encoder_.binary_weight(),
                    class_vectors);
}

vsa::LdcModel UniVsaNetwork::extract_ldc_model() {
  UNIVSA_REQUIRE(!options_.use_conv && !options_.use_dvp,
                 "plain-LDC extraction requires the no-conv/no-DVP network");
  UNIVSA_REQUIRE(config_.Theta == 1, "plain LDC has a single class set");
  const Tensor values = sign_tensor(vb_high_.forward_table());
  return vsa::LdcModel(config_.W, config_.L, values,
                       encoder_.binary_weight(),
                       head_.binary_class_vectors(0));
}

}  // namespace univsa::train
