// On-device class-vector retraining.
//
// BCI signals drift between sessions; the paper's own reference [22]
// argues BCIs need on-line learning. Full LDC retraining needs the float
// partial BNN — far beyond an implant's budget — but the classic HDC
// update is nearly free and touches only the class vectors:
//
//   on a misclassified sample with encoding s:
//     counters[true class]      += s   (bundle in)
//     counters[predicted class] -= s   (bundle out)
//
// in integer domain, then re-binarize. Everything upstream of the
// similarity stage (V, K, F, mask) is frozen, so encode() — the
// expensive part — is exactly the deployed datapath, and the adapted
// model drops back out as a plain vsa::Model.
//
// With soft voting, updates go to one voter per mistake (round-robin) so
// the ensemble keeps its diversity instead of collapsing to Θ copies of
// the same correction.
#pragma once

#include <cstdint>
#include <vector>

#include "univsa/data/dataset.h"
#include "univsa/vsa/model.h"

namespace univsa::train {

struct OnlineRetrainOptions {
  /// Passes over the adaptation samples.
  std::size_t epochs = 3;
  /// Initial counter magnitude backing each existing class-vector lane;
  /// a lane flips only after `inertia` net votes against it. Small =
  /// plastic (fast adaptation, can unlearn the base session), large =
  /// stable. The default balances drift recovery against same-session
  /// regression (both property-tested).
  long long inertia = 5;
  /// Shuffle seed for sample order.
  std::uint64_t seed = 7;
};

struct OnlineRetrainResult {
  vsa::Model model;
  /// Misclassified-sample updates applied per epoch (monotone decrease
  /// indicates convergence on the adaptation set).
  std::vector<std::size_t> updates_per_epoch;
  /// Class-vector lanes that changed sign vs the original model.
  std::size_t flipped_lanes = 0;
};

/// Adapts `model`'s class vectors to `samples`; the input model is not
/// modified.
OnlineRetrainResult adapt_class_vectors(const vsa::Model& model,
                                        const data::Dataset& samples,
                                        const OnlineRetrainOptions&
                                            options = {});

/// Serve-time incremental refresh entry point — what the model zoo's
/// runtime::AdaptationDriver trains with when the drift detector fires.
/// Same update rule as adapt_class_vectors over a bounded reservoir of
/// recent labeled traffic, with the shuffle seed decorrelated by
/// `generation` (the tenant's refresh count): consecutive refreshes
/// from overlapping reservoirs don't replay the same sample order, and
/// the whole chain stays deterministic for a fixed (seed, generation)
/// sequence.
OnlineRetrainResult refresh_class_vectors(const vsa::Model& model,
                                          const data::Dataset& recent,
                                          std::uint64_t generation,
                                          const OnlineRetrainOptions&
                                              options = {});

}  // namespace univsa::train
