// Feature-importance mask for Discriminated Value Projection (Sec.
// III-A1).
//
// The paper uses a feature-subset-selection strategy [18] to mark each
// input feature as high (1) or low (0) importance. Wrapper selection
// needs repeated model training, so we use the standard filter
// equivalent: the one-way ANOVA F-score of each feature across classes
// (between-class variance over within-class variance); the top
// `high_fraction` of features by F-score become high-importance. This
// keeps the property DVP relies on — features that barely move the class
// decision get the cheap D_L projection.
#pragma once

#include <cstdint>
#include <vector>

#include "univsa/data/dataset.h"

namespace univsa::train {

/// Per-feature ANOVA F-scores, length N = W·L.
std::vector<double> feature_f_scores(const data::Dataset& dataset);

/// 0/1 mask with exactly round(high_fraction·N) ones (at least 1), the
/// highest-scoring features. high_fraction in (0, 1].
std::vector<std::uint8_t> select_importance_mask(
    const data::Dataset& dataset, double high_fraction);

}  // namespace univsa::train
