#include "univsa/train/lehdc_trainer.h"

#include <cmath>
#include <cstdio>
#include <numeric>

#include "univsa/common/contracts.h"
#include "univsa/common/thread_pool.h"
#include "univsa/nn/binary_linear.h"
#include "univsa/nn/loss.h"
#include "univsa/nn/optimizer.h"

namespace univsa::train {

namespace {

/// Encodes every sample of the dataset into a ±1 float matrix (B, D)
/// using the random V/F lanes (Eq. 1 at dimension D).
Tensor encode_all(const data::Dataset& dataset,
                  const std::vector<std::int8_t>& v,
                  const std::vector<std::int8_t>& f, std::size_t dim) {
  const std::size_t n = dataset.features();
  Tensor s({dataset.size(), dim});
  float* sd = s.data();

  global_pool().parallel_for(
      dataset.size(), [&](std::size_t begin, std::size_t end) {
        std::vector<std::int32_t> sums(dim);
        for (std::size_t b = begin; b < end; ++b) {
          std::fill(sums.begin(), sums.end(), 0);
          const auto& x = dataset.values(b);
          for (std::size_t i = 0; i < n; ++i) {
            const std::int8_t* fi = f.data() + i * dim;
            const std::int8_t* vx =
                v.data() + static_cast<std::size_t>(x[i]) * dim;
            for (std::size_t j = 0; j < dim; ++j) {
              sums[j] += static_cast<std::int32_t>(fi[j]) * vx[j];
            }
          }
          float* row = sd + b * dim;
          for (std::size_t j = 0; j < dim; ++j) {
            row[j] = sums[j] >= 0 ? 1.0f : -1.0f;
          }
        }
      });
  return s;
}

}  // namespace

LehdcTrainResult train_lehdc(const data::Dataset& train_set,
                             const LehdcOptions& options) {
  UNIVSA_REQUIRE(!train_set.empty(), "empty training set");
  UNIVSA_REQUIRE(options.dim >= 2, "dimension too small");

  Rng rng(options.seed);
  const std::size_t dim = options.dim;
  auto v = vsa::LehdcModel::level_encoded_values(train_set.levels(), dim,
                                                rng);
  auto f = vsa::LehdcModel::random_bipolar(train_set.features() * dim, rng);

  const Tensor encodings = encode_all(train_set, v, f, dim);

  // Learn the class vectors: a binary dense layer over fixed encodings
  // with a learnable temperature (as in the SoftVotingHead, Θ = 1).
  // LeHDC retrains *from the classic-HDC baseline*: the latent weights
  // start at the per-class mean encoding (the bundled centroid), which
  // already classifies decently; gradient descent then sharpens it.
  // Random init instead finds memorizing minima whose binarized vectors
  // generalize poorly (observed on the imbalanced CHB-IB task).
  BinaryLinear classifier(dim, train_set.classes(), rng);
  {
    Tensor& w = *classifier.params()[0].value;
    std::vector<std::size_t> counts(train_set.classes(), 0);
    w.fill(0.0f);
    for (std::size_t i = 0; i < train_set.size(); ++i) {
      const auto y = static_cast<std::size_t>(train_set.label(i));
      ++counts[y];
      for (std::size_t j = 0; j < dim; ++j) {
        w.at(y, j) += encodings.at(i, j);
      }
    }
    for (std::size_t c = 0; c < train_set.classes(); ++c) {
      const float inv =
          0.9f / static_cast<float>(std::max<std::size_t>(1, counts[c]));
      for (std::size_t j = 0; j < dim; ++j) w.at(c, j) *= inv;
    }
  }
  Tensor scale({1});
  Tensor scale_grad({1});
  scale[0] = 4.0f / static_cast<float>(dim);
  ParamList params = classifier.params();
  params.push_back({&scale, &scale_grad, false});
  Adam optimizer(params, options.lr);

  std::vector<std::size_t> order(train_set.size());
  std::iota(order.begin(), order.end(), 0);

  LehdcTrainResult result;
  for (std::size_t epoch = 0; epoch < options.epochs; ++epoch) {
    for (std::size_t i = order.size(); i > 1; --i) {
      std::swap(order[i - 1], order[rng.uniform_index(i)]);
    }
    double epoch_loss = 0.0;
    std::size_t correct = 0;
    std::size_t batches = 0;

    for (std::size_t start = 0; start < order.size();
         start += options.batch_size) {
      const std::size_t end =
          std::min(order.size(), start + options.batch_size);
      const std::size_t bsize = end - start;
      Tensor batch({bsize, dim});
      std::vector<int> labels(bsize);
      for (std::size_t b = 0; b < bsize; ++b) {
        const std::size_t idx = order[start + b];
        labels[b] = train_set.label(idx);
        for (std::size_t j = 0; j < dim; ++j) {
          batch.at(b, j) = encodings.at(idx, j);
        }
      }

      optimizer.zero_grad();
      Tensor sims = classifier.forward(batch);
      // |γ| keeps the deployed (unscaled) argmax aligned with training;
      // see SoftVotingHead for the sign-flip failure mode.
      const float eff_scale = std::fabs(scale[0]);
      const float scale_sign = scale[0] >= 0.0f ? 1.0f : -1.0f;
      Tensor logits = sims.mul(eff_scale);
      const LossResult loss = softmax_cross_entropy(logits, labels);
      // dγ then voter gradient (mirrors SoftVotingHead::backward).
      float dscale = 0.0f;
      const auto go = loss.grad_logits.flat();
      const auto sv = sims.flat();
      for (std::size_t i = 0; i < go.size(); ++i) dscale += go[i] * sv[i];
      scale_grad[0] += dscale * scale_sign;
      classifier.backward(loss.grad_logits.mul(eff_scale));
      optimizer.step();

      epoch_loss += loss.loss;
      correct += loss.correct;
      ++batches;
    }

    EpochStats stats;
    stats.loss = static_cast<float>(epoch_loss /
                                    static_cast<double>(batches));
    stats.train_accuracy = static_cast<double>(correct) /
                           static_cast<double>(train_set.size());
    result.history.push_back(stats);
    if (options.verbose) {
      std::printf("  lehdc epoch %2zu  loss %.4f  train acc %.4f\n",
                  epoch + 1, static_cast<double>(stats.loss),
                  stats.train_accuracy);
    }
  }

  result.model = vsa::LehdcModel(
      train_set.windows(), train_set.length(), train_set.levels(), dim,
      std::move(v), std::move(f), classifier.binary_weight());
  return result;
}

}  // namespace univsa::train
