// LeHDC-style trainer [12]: random high-dimensional V/F encodings, then
// learning-based class vectors (binary dense layer trained with CE over
// the fixed encodings). Table II evaluates this at D = 10,000.
#pragma once

#include <cstdint>

#include "univsa/data/dataset.h"
#include "univsa/train/univsa_trainer.h"
#include "univsa/vsa/lehdc_model.h"

namespace univsa::train {

struct LehdcOptions {
  std::size_t dim = 10000;
  std::size_t epochs = 15;
  std::size_t batch_size = 64;
  float lr = 0.01f;
  std::uint64_t seed = 7;
  bool verbose = false;
};

struct LehdcTrainResult {
  vsa::LehdcModel model;
  std::vector<EpochStats> history;
};

LehdcTrainResult train_lehdc(const data::Dataset& train_set,
                             const LehdcOptions& options);

}  // namespace univsa::train
