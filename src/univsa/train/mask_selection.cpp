#include "univsa/train/mask_selection.h"

#include <algorithm>
#include <numeric>

#include "univsa/common/contracts.h"

namespace univsa::train {

std::vector<double> feature_f_scores(const data::Dataset& dataset) {
  UNIVSA_REQUIRE(!dataset.empty(), "empty dataset");
  const std::size_t n = dataset.features();
  const std::size_t classes = dataset.classes();
  const std::size_t count = dataset.size();

  // Per-class mean and count, then global mean, per feature.
  std::vector<double> class_sum(classes * n, 0.0);
  std::vector<std::size_t> class_count(classes, 0);
  for (std::size_t i = 0; i < count; ++i) {
    const auto y = static_cast<std::size_t>(dataset.label(i));
    ++class_count[y];
    const auto& x = dataset.values(i);
    double* row = class_sum.data() + y * n;
    for (std::size_t j = 0; j < n; ++j) row[j] += x[j];
  }

  std::vector<double> global_mean(n, 0.0);
  for (std::size_t c = 0; c < classes; ++c) {
    for (std::size_t j = 0; j < n; ++j) global_mean[j] += class_sum[c * n + j];
  }
  for (auto& m : global_mean) m /= static_cast<double>(count);

  std::vector<double> class_mean(classes * n, 0.0);
  for (std::size_t c = 0; c < classes; ++c) {
    const double denom = std::max<std::size_t>(1, class_count[c]);
    for (std::size_t j = 0; j < n; ++j) {
      class_mean[c * n + j] = class_sum[c * n + j] / denom;
    }
  }

  // Between-class and within-class sums of squares.
  std::vector<double> ss_between(n, 0.0);
  for (std::size_t c = 0; c < classes; ++c) {
    const auto nc = static_cast<double>(class_count[c]);
    for (std::size_t j = 0; j < n; ++j) {
      const double d = class_mean[c * n + j] - global_mean[j];
      ss_between[j] += nc * d * d;
    }
  }
  std::vector<double> ss_within(n, 0.0);
  for (std::size_t i = 0; i < count; ++i) {
    const auto y = static_cast<std::size_t>(dataset.label(i));
    const auto& x = dataset.values(i);
    const double* mean = class_mean.data() + y * n;
    for (std::size_t j = 0; j < n; ++j) {
      const double d = static_cast<double>(x[j]) - mean[j];
      ss_within[j] += d * d;
    }
  }

  const double df_between = std::max<double>(1.0, classes - 1);
  const double df_within =
      std::max<double>(1.0, static_cast<double>(count - classes));
  std::vector<double> scores(n);
  for (std::size_t j = 0; j < n; ++j) {
    const double msb = ss_between[j] / df_between;
    const double msw = ss_within[j] / df_within;
    scores[j] = msb / (msw + 1e-12);
  }
  return scores;
}

std::vector<std::uint8_t> select_importance_mask(
    const data::Dataset& dataset, double high_fraction) {
  UNIVSA_REQUIRE(high_fraction > 0.0 && high_fraction <= 1.0,
                 "high_fraction must be in (0, 1]");
  const auto scores = feature_f_scores(dataset);
  const std::size_t n = scores.size();
  const std::size_t k = std::max<std::size_t>(
      1, static_cast<std::size_t>(high_fraction * static_cast<double>(n) +
                                  0.5));

  std::vector<std::size_t> order(n);
  std::iota(order.begin(), order.end(), 0);
  std::stable_sort(order.begin(), order.end(),
                   [&scores](std::size_t a, std::size_t b) {
                     return scores[a] > scores[b];
                   });
  std::vector<std::uint8_t> mask(n, 0);
  for (std::size_t i = 0; i < std::min(k, n); ++i) mask[order[i]] = 1;
  return mask;
}

}  // namespace univsa::train
