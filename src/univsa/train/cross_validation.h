// Stratified k-fold cross-validation for UniVSA configurations.
//
// The paper reports single-split accuracies; the synthetic stand-ins
// make variance visible, so the repo's accuracy tooling also offers
// k-fold CV with mean ± std (used with report::Summary). Folds are
// stratified per class and deterministic in the seed.
#pragma once

#include <cstdint>
#include <vector>

#include "univsa/data/dataset.h"
#include "univsa/report/stats.h"
#include "univsa/train/univsa_trainer.h"
#include "univsa/vsa/model_config.h"

namespace univsa::train {

struct CrossValidationOptions {
  std::size_t folds = 5;
  TrainOptions train;
  std::uint64_t fold_seed = 17;
};

struct CrossValidationResult {
  std::vector<double> fold_accuracies;
  report::Summary summary;
};

/// Stratified fold assignment: returns fold index per sample, each class
/// spread as evenly as possible (exposed for tests).
std::vector<std::size_t> stratified_folds(const data::Dataset& dataset,
                                          std::size_t folds,
                                          std::uint64_t seed);

CrossValidationResult cross_validate_univsa(
    const vsa::ModelConfig& config, const data::Dataset& dataset,
    const CrossValidationOptions& options = {});

}  // namespace univsa::train
