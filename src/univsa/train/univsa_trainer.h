// Training driver for the partial BNN (Sec. II-C recipe with the Sec. III
// extensions).
//
// Minibatch Adam over softmax cross-entropy; latent binary weights are
// clipped after every step. The driver serves the full UniVSA model and
// every Fig. 4 ablation variant via NetworkOptions.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "univsa/data/dataset.h"
#include "univsa/train/univsa_network.h"
#include "univsa/vsa/model.h"
#include "univsa/vsa/model_config.h"

namespace univsa::train {

struct TrainOptions {
  std::size_t epochs = 25;
  std::size_t batch_size = 32;
  float lr = 0.01f;
  /// Multiplicative learning-rate decay per epoch.
  float lr_decay = 0.95f;
  /// Fraction of features routed to VB_H under DVP.
  double mask_high_fraction = 0.5;
  std::uint64_t seed = 7;
  bool verbose = false;
};

struct EpochStats {
  float loss = 0.0f;
  double train_accuracy = 0.0;
};

struct TrainedNetwork {
  std::unique_ptr<UniVsaNetwork> network;
  std::vector<EpochStats> history;
  std::vector<std::uint8_t> mask;
};

/// Trains a network with the given architecture toggles.
TrainedNetwork train_network(const vsa::ModelConfig& config,
                             NetworkOptions net_options,
                             const data::Dataset& train_set,
                             const TrainOptions& options);

struct UniVsaTrainResult {
  vsa::Model model;
  std::vector<EpochStats> history;
};

/// Full UniVSA (DVP + BiConv + SV from config.Theta) and extraction of the
/// deployed binary model.
UniVsaTrainResult train_univsa(const vsa::ModelConfig& config,
                               const data::Dataset& train_set,
                               const TrainOptions& options);

/// Seeded accuracy oracle for the co-design search
/// (search::SeededAccuracyFn-compatible): trains a full UniVSA model on
/// `train_set` with `base` options — the per-call seed overrides
/// base.seed, keeping candidate training reproducible under parallel
/// evaluation — and returns test-set accuracy. The datasets are captured
/// by reference and must outlive the returned closure; the closure is
/// thread-safe and composes with nested pool parallelism (candidate
/// lanes share the training parallel_fors through the work-stealing
/// pool).
std::function<double(const vsa::ModelConfig&, std::uint64_t)>
make_accuracy_oracle(const data::Dataset& train_set,
                     const data::Dataset& test_set, TrainOptions base);

/// Truncated-epoch proxy of make_accuracy_oracle for surrogate
/// pre-screening: identical contract with epochs cut to
/// max(1, base.epochs / divisor) — cheap enough to score every offspring,
/// correlated enough to rank them for promotion to the full oracle.
std::function<double(const vsa::ModelConfig&, std::uint64_t)>
make_surrogate_oracle(const data::Dataset& train_set,
                      const data::Dataset& test_set, TrainOptions base,
                      std::size_t epoch_divisor = 4);

}  // namespace univsa::train
