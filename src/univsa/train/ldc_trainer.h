// Plain-LDC training [11] — the state-of-the-art low-dimensional binary
// VSA baseline UniVSA is compared against in Table II (D = 128) and
// Fig. 4.
//
// Same partial-BNN recipe, but: one ValueBox (no DVP), no convolution,
// one similarity layer. The deployed model is the classic Eq. 1/Eq. 2
// pipeline at vector dimension D.
#pragma once

#include "univsa/data/dataset.h"
#include "univsa/train/univsa_trainer.h"
#include "univsa/vsa/ldc_model.h"

namespace univsa::train {

struct LdcTrainResult {
  vsa::LdcModel model;
  std::vector<EpochStats> history;
};

/// `dim` = D, the binary VSA vector dimension (128 in Table II).
LdcTrainResult train_ldc(const data::Dataset& train_set, std::size_t dim,
                         const TrainOptions& options);

}  // namespace univsa::train
