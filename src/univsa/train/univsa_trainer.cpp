#include "univsa/train/univsa_trainer.h"

#include <algorithm>
#include <cstdio>
#include <numeric>

#include "univsa/common/contracts.h"
#include "univsa/nn/loss.h"
#include "univsa/nn/optimizer.h"
#include "univsa/telemetry/metrics.h"
#include "univsa/train/mask_selection.h"

namespace univsa::train {

TrainedNetwork train_network(const vsa::ModelConfig& config,
                             NetworkOptions net_options,
                             const data::Dataset& train_set,
                             const TrainOptions& options) {
  UNIVSA_REQUIRE(!train_set.empty(), "empty training set");
  UNIVSA_REQUIRE(options.epochs > 0 && options.batch_size > 0,
                 "epochs and batch size must be positive");

  Rng rng(options.seed);
  TrainedNetwork result;
  result.mask = net_options.use_dvp
                    ? select_importance_mask(train_set,
                                             options.mask_high_fraction)
                    : std::vector<std::uint8_t>(config.features(), 1);
  result.network = std::make_unique<UniVsaNetwork>(config, net_options,
                                                   result.mask, rng);
  Adam optimizer(result.network->params(), options.lr);

  std::vector<std::size_t> order(train_set.size());
  std::iota(order.begin(), order.end(), 0);
  std::vector<std::size_t> batch_indices;
  std::vector<int> batch_labels;
  LossResult loss;  // reused across steps — grad buffer allocates once

  // Training telemetry: per-epoch / per-step wall-time histograms, the
  // latest loss/accuracy as gauges, and the share of epoch wall time
  // spent inside the GEMM kernels (from the gemm.ns_total counter delta
  // across the epoch). All lock-free after this one-time resolve.
  const bool traced = telemetry::kCompiledIn && telemetry::enabled();
  telemetry::LatencyHistogram& epoch_hist =
      telemetry::histogram("train.epoch_ns");
  telemetry::LatencyHistogram& step_hist =
      telemetry::histogram("train.step_ns");
  telemetry::Gauge& loss_gauge = telemetry::gauge("train.loss");
  telemetry::Gauge& accuracy_gauge = telemetry::gauge("train.accuracy");
  telemetry::Gauge& gemm_share_gauge =
      telemetry::gauge("train.gemm_time_share");
  telemetry::Counter& gemm_ns_total = telemetry::counter("gemm.ns_total");

  for (std::size_t epoch = 0; epoch < options.epochs; ++epoch) {
    // Fresh shuffle per epoch.
    for (std::size_t i = order.size(); i > 1; --i) {
      std::swap(order[i - 1], order[rng.uniform_index(i)]);
    }

    const std::uint64_t epoch_t0 = traced ? telemetry::now_ns() : 0;
    const std::uint64_t gemm_ns0 = traced ? gemm_ns_total.total() : 0;
    double epoch_loss = 0.0;
    std::size_t correct = 0;
    std::size_t batches = 0;
    for (std::size_t start = 0; start < order.size();
         start += options.batch_size) {
      const std::size_t end =
          std::min(order.size(), start + options.batch_size);
      batch_indices.assign(order.begin() + static_cast<long>(start),
                           order.begin() + static_cast<long>(end));
      batch_labels.resize(batch_indices.size());
      for (std::size_t b = 0; b < batch_indices.size(); ++b) {
        batch_labels[b] = train_set.label(batch_indices[b]);
      }

      const std::uint64_t step_t0 = traced ? telemetry::now_ns() : 0;
      optimizer.zero_grad();
      const Tensor& logits =
          result.network->forward(train_set, batch_indices);
      softmax_cross_entropy_into(logits, batch_labels, loss);
      result.network->backward(loss.grad_logits);
      optimizer.step();
      if (traced) step_hist.record(telemetry::now_ns() - step_t0);

      epoch_loss += loss.loss;
      correct += loss.correct;
      ++batches;
    }
    optimizer.set_lr(optimizer.lr() * options.lr_decay);

    EpochStats stats;
    stats.loss = static_cast<float>(epoch_loss /
                                    static_cast<double>(batches));
    stats.train_accuracy = static_cast<double>(correct) /
                           static_cast<double>(train_set.size());
    result.history.push_back(stats);
    if (traced) {
      const std::uint64_t epoch_ns = telemetry::now_ns() - epoch_t0;
      epoch_hist.record(epoch_ns);
      loss_gauge.set(static_cast<double>(stats.loss));
      accuracy_gauge.set(stats.train_accuracy);
      if (epoch_ns > 0) {
        gemm_share_gauge.set(
            static_cast<double>(gemm_ns_total.total() - gemm_ns0) /
            static_cast<double>(epoch_ns));
      }
    }
    if (options.verbose) {
      std::printf("  epoch %2zu  loss %.4f  train acc %.4f\n", epoch + 1,
                  static_cast<double>(stats.loss), stats.train_accuracy);
    }
  }
  return result;
}

UniVsaTrainResult train_univsa(const vsa::ModelConfig& config,
                               const data::Dataset& train_set,
                               const TrainOptions& options) {
  NetworkOptions net_options;
  net_options.use_dvp = true;
  net_options.use_conv = true;
  TrainedNetwork trained =
      train_network(config, net_options, train_set, options);
  UniVsaTrainResult result{trained.network->extract_model(),
                           std::move(trained.history)};
  return result;
}

std::function<double(const vsa::ModelConfig&, std::uint64_t)>
make_accuracy_oracle(const data::Dataset& train_set,
                     const data::Dataset& test_set, TrainOptions base) {
  base.verbose = false;
  return [&train_set, &test_set, base](const vsa::ModelConfig& config,
                                       std::uint64_t seed) {
    TrainOptions options = base;
    options.seed = seed;
    return train_univsa(config, train_set, options)
        .model.accuracy(test_set);
  };
}

std::function<double(const vsa::ModelConfig&, std::uint64_t)>
make_surrogate_oracle(const data::Dataset& train_set,
                      const data::Dataset& test_set, TrainOptions base,
                      std::size_t epoch_divisor) {
  UNIVSA_REQUIRE(epoch_divisor >= 1, "epoch divisor must be >= 1");
  base.epochs = std::max<std::size_t>(1, base.epochs / epoch_divisor);
  return make_accuracy_oracle(train_set, test_set, base);
}

}  // namespace univsa::train
