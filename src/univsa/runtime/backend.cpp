#include "univsa/runtime/backend.h"

#include <chrono>
#include <thread>

#include "univsa/common/contracts.h"
#include "univsa/telemetry/trace.h"

namespace univsa::runtime {

Backend::Backend(const vsa::Model& model) : model_(&model) {
  model.config().validate();
}

void Backend::predict_batch(
    const std::vector<std::vector<std::uint16_t>>& samples,
    std::vector<vsa::Prediction>& out, bool parallel) {
  (void)parallel;  // the fallback loop is serial by construction
  out.resize(samples.size());
  for (std::size_t i = 0; i < samples.size(); ++i) {
    predict_into(samples[i], out[i]);
  }
}

void Backend::predict_batch(const data::Dataset& dataset,
                            std::vector<vsa::Prediction>& out,
                            bool parallel) {
  (void)parallel;
  const vsa::ModelConfig& c = model_->config();
  UNIVSA_REQUIRE(dataset.windows() == c.W && dataset.length() == c.L,
                 "dataset geometry mismatch");
  out.resize(dataset.size());
  for (std::size_t i = 0; i < dataset.size(); ++i) {
    predict_into(dataset.values(i), out[i]);
  }
}

double Backend::accuracy(const data::Dataset& dataset, bool parallel) {
  UNIVSA_REQUIRE(!dataset.empty(), "empty dataset");
  std::vector<vsa::Prediction> predictions;
  predict_batch(dataset, predictions, parallel);
  std::size_t correct = 0;
  for (std::size_t i = 0; i < dataset.size(); ++i) {
    if (predictions[i].label == dataset.label(i)) ++correct;
  }
  return static_cast<double>(correct) /
         static_cast<double>(dataset.size());
}

vsa::Prediction Backend::predict(
    const std::vector<std::uint16_t>& values) {
  vsa::Prediction out;
  predict_into(values, out);
  return out;
}

// --- ReferenceBackend ---------------------------------------------------

void ReferenceBackend::predict_into(
    const std::vector<std::uint16_t>& values, vsa::Prediction& out) {
  UNIVSA_SPAN("reference.predict");
  out = model_->predict_reference(values);
}

// --- PackedBackend ------------------------------------------------------

void PackedBackend::predict_into(const std::vector<std::uint16_t>& values,
                                 vsa::Prediction& out) {
  out = engine_.predict(values);
}

void PackedBackend::predict_batch(
    const std::vector<std::vector<std::uint16_t>>& samples,
    std::vector<vsa::Prediction>& out, bool parallel) {
  engine_.predict_batch(samples, out, parallel);
}

void PackedBackend::predict_batch(const data::Dataset& dataset,
                                  std::vector<vsa::Prediction>& out,
                                  bool parallel) {
  engine_.predict_batch(dataset, out, parallel);
}

double PackedBackend::accuracy(const data::Dataset& dataset,
                               bool parallel) {
  return engine_.accuracy(dataset, parallel);
}

// --- HwSimBackend -------------------------------------------------------

void HwSimBackend::predict_into(const std::vector<std::uint16_t>& values,
                                vsa::Prediction& out) {
  telemetry::TraceSpan span("hwsim.predict");
  const hw::RunTrace trace = accel_.run(values);
  out = trace.prediction;
  total_cycles_ += trace.cycles.total();
  ++samples_;
  // The wall span carries the modelled datapath cycles as its payload;
  // per-stage cycle counts feed dedicated histograms so modelled stage
  // cost shows up next to the software stage latencies in one scrape.
  span.set_detail(trace.cycles.total());
  if (telemetry::enabled()) {
    static telemetry::LatencyHistogram& dvp =
        telemetry::histogram("hwsim.dvp_cycles");
    static telemetry::LatencyHistogram& biconv =
        telemetry::histogram("hwsim.biconv_cycles");
    static telemetry::LatencyHistogram& encoding =
        telemetry::histogram("hwsim.encoding_cycles");
    static telemetry::LatencyHistogram& similarity =
        telemetry::histogram("hwsim.similarity_cycles");
    dvp.record(trace.cycles.dvp);
    biconv.record(trace.cycles.biconv);
    encoding.record(trace.cycles.encoding);
    similarity.record(trace.cycles.similarity);
  }
}

double HwSimBackend::modelled_seconds() const {
  return static_cast<double>(total_cycles_) * timing_.controller_overhead /
         (timing_.clock_mhz * 1e6);
}

// --- FaultInjectedBackend -----------------------------------------------

FaultInjectedBackend::FaultInjectedBackend(std::unique_ptr<Backend> inner,
                                           std::shared_ptr<FaultPlan> plan,
                                           std::size_t lane)
    : Backend(inner->model()),
      inner_(std::move(inner)),
      plan_(std::move(plan)),
      lane_(lane) {
  UNIVSA_REQUIRE(plan_ != nullptr, "FaultInjectedBackend needs a plan");
}

void FaultInjectedBackend::inject() {
  if constexpr (!kFaultsCompiledIn) return;
  const FaultDecision d = plan_->next(lane_);
  if (d.delay_us != 0) {
    std::this_thread::sleep_for(std::chrono::microseconds(d.delay_us));
  }
  if (d.error) {
    throw InjectedFault("injected backend error (" + inner_->name() +
                        ", lane " + std::to_string(lane_) + ")");
  }
}

void FaultInjectedBackend::predict_into(
    const std::vector<std::uint16_t>& values, vsa::Prediction& out) {
  inject();
  inner_->predict_into(values, out);
}

void FaultInjectedBackend::predict_batch(
    const std::vector<std::vector<std::uint16_t>>& samples,
    std::vector<vsa::Prediction>& out, bool parallel) {
  inject();
  inner_->predict_batch(samples, out, parallel);
}

void FaultInjectedBackend::predict_batch(const data::Dataset& dataset,
                                         std::vector<vsa::Prediction>& out,
                                         bool parallel) {
  inject();
  inner_->predict_batch(dataset, out, parallel);
}

}  // namespace univsa::runtime
