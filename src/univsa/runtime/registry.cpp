#include "univsa/runtime/registry.h"

#include <algorithm>
#include <map>
#include <mutex>
#include <sstream>

#include "univsa/common/contracts.h"
#include "univsa/common/simd.h"

namespace univsa::runtime {

namespace {

struct Registry {
  std::mutex mutex;
  std::map<std::string, BackendFactory> factories;
};

Registry& registry() {
  static Registry* r = [] {
    auto* reg = new Registry;
    reg->factories["reference"] = [](const vsa::Model& m) {
      return std::make_unique<ReferenceBackend>(m);
    };
    reg->factories["packed"] = [](const vsa::Model& m) {
      return std::make_unique<PackedBackend>(m);
    };
    reg->factories["hwsim"] = [](const vsa::Model& m) {
      return std::make_unique<HwSimBackend>(m);
    };
    // One ISA-pinned packed backend per available SIMD variant
    // (including packed-scalar), so the parity harness and the CLI
    // selftest prove every dispatch-table entry bit-identical against
    // the reference pipeline. The plain "packed" default above silently
    // upgrades to the best available ISA via simd::active().
    for (const simd::Isa isa : simd::compiled_isas()) {
      if (!simd::isa_available(isa)) continue;
      reg->factories[std::string("packed-") + simd::to_string(isa)] =
          [isa](const vsa::Model& m) {
            return std::make_unique<PackedBackend>(m, isa);
          };
    }
    return reg;
  }();
  return *r;
}

}  // namespace

void register_backend(const std::string& name, BackendFactory factory) {
  UNIVSA_REQUIRE(!name.empty(), "backend name must be non-empty");
  UNIVSA_REQUIRE(factory != nullptr, "backend factory must be callable");
  Registry& r = registry();
  std::lock_guard<std::mutex> lock(r.mutex);
  r.factories[name] = std::move(factory);
}

bool has_backend(const std::string& name) {
  Registry& r = registry();
  std::lock_guard<std::mutex> lock(r.mutex);
  return r.factories.count(name) != 0;
}

std::vector<std::string> backend_names() {
  Registry& r = registry();
  std::lock_guard<std::mutex> lock(r.mutex);
  std::vector<std::string> names;
  names.reserve(r.factories.size());
  for (const auto& [name, factory] : r.factories) names.push_back(name);
  return names;  // std::map iterates sorted
}

const std::string& default_backend() {
  static const std::string name = "packed";
  return name;
}

std::unique_ptr<Backend> make_backend(const std::string& name,
                                      const vsa::Model& model) {
  BackendFactory factory;
  {
    Registry& r = registry();
    std::lock_guard<std::mutex> lock(r.mutex);
    const auto it = r.factories.find(name);
    if (it != r.factories.end()) factory = it->second;
  }
  if (!factory) {
    std::ostringstream os;
    os << "unknown backend '" << name << "' (registered:";
    for (const auto& n : backend_names()) os << ' ' << n;
    os << ')';
    throw std::invalid_argument(os.str());
  }
  return factory(model);
}

}  // namespace univsa::runtime
