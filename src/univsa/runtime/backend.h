// Pluggable inference backends — the single algorithm/hardware serving
// contract every consumer (CLI, benches, examples, the Server front-end)
// dispatches through.
//
// The repo grew four divergent inference paths: the per-sample reference
// pipeline (Model::predict_reference), the zero-allocation batched
// InferEngine, the bit-true hardware functional simulator, and the
// timing/event models. runtime::Backend wraps each behind one interface
// so callers select an implementation by name (see runtime/registry.h)
// and the parity harness (runtime/parity.h) can assert they all produce
// bit-identical Predictions.
//
// Thread-safety contract: a Backend instance is single-caller, exactly
// like the InferEngine it may wrap — one backend per serving thread
// (instances are cheap, the Model is shared and immutable). A backend is
// free to parallelize *internally* over the global pool.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "univsa/common/simd.h"
#include "univsa/data/dataset.h"
#include "univsa/hw/functional_sim.h"
#include "univsa/hw/timing_model.h"
#include "univsa/runtime/fault.h"
#include "univsa/vsa/infer_engine.h"
#include "univsa/vsa/model.h"

namespace univsa::runtime {

/// What a backend can do, for callers that adapt their dispatch (the
/// Server picks batch sizes, benches report the execution mode).
struct Capabilities {
  /// Has a native batched path (otherwise predict_batch loops).
  bool native_batch = false;
  /// May spread a batch over the global thread pool when asked.
  bool parallel_batch = false;
  /// Steady-state inference performs no heap allocation.
  bool zero_alloc = false;
  /// Attaches modelled hardware cycle counts to each prediction.
  bool counts_cycles = false;
};

class Backend {
 public:
  virtual ~Backend() = default;

  Backend(const Backend&) = delete;
  Backend& operator=(const Backend&) = delete;

  /// Registry key / display name ("reference", "packed", "hwsim", ...).
  virtual std::string name() const = 0;
  virtual Capabilities capabilities() const = 0;

  /// Single-sample inference into a reused Prediction (scores capacity
  /// is retained across calls).
  virtual void predict_into(const std::vector<std::uint16_t>& values,
                            vsa::Prediction& out) = 0;

  /// Batched inference; `out` is resized to the batch. The default loops
  /// predict_into serially; backends with a native batched path
  /// override. `parallel = false` forces a single-threaded run.
  virtual void predict_batch(
      const std::vector<std::vector<std::uint16_t>>& samples,
      std::vector<vsa::Prediction>& out, bool parallel = true);
  virtual void predict_batch(const data::Dataset& dataset,
                             std::vector<vsa::Prediction>& out,
                             bool parallel = true);

  /// Fraction of correct predictions over the dataset.
  virtual double accuracy(const data::Dataset& dataset,
                          bool parallel = true);

  /// Convenience allocating form of predict_into.
  vsa::Prediction predict(const std::vector<std::uint16_t>& values);

  const vsa::Model& model() const { return *model_; }
  const vsa::ModelConfig& config() const { return model_->config(); }

 protected:
  explicit Backend(const vsa::Model& model);

  const vsa::Model* model_;
};

/// Wraps Model::predict_reference — the original per-sample scalar
/// pipeline (raw conv accumulate + bit-sliced encode + per-class dots).
/// The slowest path and the baseline every other backend is verified
/// against.
class ReferenceBackend : public Backend {
 public:
  explicit ReferenceBackend(const vsa::Model& model) : Backend(model) {}

  std::string name() const override { return "reference"; }
  Capabilities capabilities() const override { return {}; }
  void predict_into(const std::vector<std::uint16_t>& values,
                    vsa::Prediction& out) override;
};

/// Wraps the zero-allocation batched vsa::InferEngine (word-packed
/// BiConv, hoisted validity planes, kernel-parallel schedule). The
/// production software path and the registry default. The default
/// constructor runs on the process-wide simd::active() dispatch table
/// (best available ISA, honoring UNIVSA_FORCE_ISA) and is named
/// "packed"; the Isa constructor pins the engine to one specific SIMD
/// table and names itself "packed-<isa>" — the registry installs one
/// per available ISA so parity proves every variant bit-identical.
class PackedBackend : public Backend {
 public:
  explicit PackedBackend(const vsa::Model& model)
      : Backend(model), engine_(model), name_("packed") {}
  PackedBackend(const vsa::Model& model, simd::Isa isa)
      : Backend(model),
        engine_(model, &simd::kernels_for(isa)),
        name_(std::string("packed-") + simd::to_string(isa)) {}

  std::string name() const override { return name_; }
  Capabilities capabilities() const override {
    return {.native_batch = true,
            .parallel_batch = true,
            .zero_alloc = true,
            .counts_cycles = false};
  }
  void predict_into(const std::vector<std::uint16_t>& values,
                    vsa::Prediction& out) override;
  void predict_batch(const std::vector<std::vector<std::uint16_t>>& samples,
                     std::vector<vsa::Prediction>& out,
                     bool parallel = true) override;
  void predict_batch(const data::Dataset& dataset,
                     std::vector<vsa::Prediction>& out,
                     bool parallel = true) override;
  double accuracy(const data::Dataset& dataset,
                  bool parallel = true) override;

  vsa::InferEngine& engine() { return engine_; }

 private:
  vsa::InferEngine engine_;
  std::string name_;
};

/// Wraps the bit-true hardware functional simulator
/// (hw::functional_sim::Accelerator units), attaching the counted stage
/// cycles of every prediction so callers can report modelled hardware
/// time next to accuracy.
class HwSimBackend : public Backend {
 public:
  explicit HwSimBackend(const vsa::Model& model,
                        hw::TimingParams timing = {})
      : Backend(model), timing_(timing), accel_(model, timing) {}

  std::string name() const override { return "hwsim"; }
  Capabilities capabilities() const override {
    return {.native_batch = false,
            .parallel_batch = false,
            .zero_alloc = false,
            .counts_cycles = true};
  }
  void predict_into(const std::vector<std::uint16_t>& values,
                    vsa::Prediction& out) override;

  /// Counted datapath cycles (pre-overhead) summed over every prediction
  /// this backend served, and the matching modelled wall time with the
  /// controller overhead applied at the configured clock.
  std::uint64_t total_cycles() const { return total_cycles_; }
  std::uint64_t samples_processed() const { return samples_; }
  double modelled_seconds() const;

  const hw::Accelerator& accelerator() const { return accel_; }

 private:
  hw::TimingParams timing_;
  hw::Accelerator accel_;
  std::uint64_t total_cycles_ = 0;
  std::uint64_t samples_ = 0;
};

/// Decorator applying a FaultPlan to any backend: before each dispatch
/// it draws the next scheduled decision for its lane and sleeps
/// (slowdown / worker stall) or throws InjectedFault accordingly.
/// Completed dispatches delegate unchanged, so every non-faulted result
/// stays bit-identical to the wrapped backend. The Server wraps each
/// worker's backend in one of these when ServerOptions::fault_plan is
/// set (lane = worker index); tests and the faultcheck CLI command use
/// it directly.
class FaultInjectedBackend : public Backend {
 public:
  /// `plan` is shared with the test/operator harness observing the
  /// injection counters; it must not be null.
  FaultInjectedBackend(std::unique_ptr<Backend> inner,
                       std::shared_ptr<FaultPlan> plan, std::size_t lane);

  std::string name() const override { return inner_->name() + "+fault"; }
  Capabilities capabilities() const override {
    return inner_->capabilities();
  }
  void predict_into(const std::vector<std::uint16_t>& values,
                    vsa::Prediction& out) override;
  void predict_batch(const std::vector<std::vector<std::uint16_t>>& samples,
                     std::vector<vsa::Prediction>& out,
                     bool parallel = true) override;
  void predict_batch(const data::Dataset& dataset,
                     std::vector<vsa::Prediction>& out,
                     bool parallel = true) override;

  const FaultPlan& plan() const { return *plan_; }
  std::size_t lane() const { return lane_; }

 private:
  /// Draws and applies one scheduled decision (sleep, then maybe throw).
  void inject();

  std::unique_ptr<Backend> inner_;
  std::shared_ptr<FaultPlan> plan_;
  std::size_t lane_;
};

}  // namespace univsa::runtime
