// Deterministic fault injection for the serving layer.
//
// A FaultPlan is a seeded, replayable schedule of induced failures —
// backend slowdowns, spurious backend errors, and worker stalls — used
// to test the Server's robustness behavior (deadlines, shedding, health
// degradation) under *controlled* adversity instead of hoping real
// overload shows up in CI. The decision for the n-th dispatch on lane
// `l` is a pure function of (seed, l, n): the same seed always yields
// the identical injected-failure schedule, independent of thread
// interleaving (each worker lane advances its own sequence counter).
//
// Faults are applied by FaultInjectedBackend (runtime/backend.h), which
// wraps any registered backend, and by the Server when
// ServerOptions::fault_plan is set. Spurious errors surface as
// InjectedFault through the request futures; completed requests remain
// bit-identical to the unwrapped backend by construction.
//
// Compile-time kill switch: building with -DUNIVSA_FAULTS_OFF (CMake
// option UNIVSA_FAULTS=OFF) folds every decision to "no fault" at
// compile time — the schedule evaluation and counters disappear from
// release binaries while the classes stay defined.
#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <memory>
#include <stdexcept>
#include <string>

namespace univsa::runtime {

/// True when this build evaluates fault schedules (see header comment).
#if defined(UNIVSA_FAULTS_OFF)
inline constexpr bool kFaultsCompiledIn = false;
#else
inline constexpr bool kFaultsCompiledIn = true;
#endif

/// Thrown by a fault-injected backend in place of a real result. The
/// Server propagates it through the affected request futures exactly
/// like a genuine backend failure.
class InjectedFault : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

/// One seeded schedule description. Rates are per-dispatch probabilities
/// in [0, 1]; at most one fault fires per dispatch, drawn in the order
/// error -> stall -> slowdown (so error_rate=1 means every dispatch
/// throws regardless of the other rates).
struct FaultSpec {
  std::uint64_t seed = 1;
  double error_rate = 0.0;     ///< spurious backend error (InjectedFault)
  double stall_rate = 0.0;     ///< long worker stall before dispatch
  std::uint64_t stall_us = 20000;
  double slowdown_rate = 0.0;  ///< moderate added backend latency
  std::uint64_t slowdown_us = 1000;
};

/// What the plan decided for one dispatch.
struct FaultDecision {
  bool error = false;          ///< throw InjectedFault after any delay
  bool stall = false;          ///< delay_us is a stall (vs a slowdown)
  std::uint64_t delay_us = 0;  ///< injected sleep before dispatching
  bool any() const { return error || delay_us != 0; }
};

/// The replayable schedule plus injection counters. Thread-safe: lanes
/// advance independent atomic sequence counters, so concurrent workers
/// never perturb each other's schedule.
class FaultPlan {
 public:
  static constexpr std::size_t kMaxLanes = 64;

  explicit FaultPlan(FaultSpec spec = {});

  const FaultSpec& spec() const { return spec_; }

  /// Pure schedule lookup: the decision for dispatch number `sequence`
  /// on `lane`, without advancing anything. Deterministic in
  /// (seed, lane, sequence); always no-fault when compiled off.
  FaultDecision at(std::size_t lane, std::uint64_t sequence) const noexcept;

  /// Draws the next decision for `lane` (advances that lane's sequence)
  /// and bumps the injection counters, mirrored into the global
  /// "runtime.fault.*" telemetry metrics when telemetry is enabled.
  FaultDecision next(std::size_t lane) noexcept;

  std::uint64_t injected_errors() const {
    return errors_.load(std::memory_order_relaxed);
  }
  std::uint64_t injected_stalls() const {
    return stalls_.load(std::memory_order_relaxed);
  }
  std::uint64_t injected_slowdowns() const {
    return slowdowns_.load(std::memory_order_relaxed);
  }
  std::uint64_t injected_total() const {
    return injected_errors() + injected_stalls() + injected_slowdowns();
  }

 private:
  FaultSpec spec_;
  std::array<std::atomic<std::uint64_t>, kMaxLanes> sequence_{};
  std::atomic<std::uint64_t> errors_{0};
  std::atomic<std::uint64_t> stalls_{0};
  std::atomic<std::uint64_t> slowdowns_{0};
};

/// The canned degradation scenario `univsa_cli faultcheck` and the
/// overload bench run: a few percent spurious errors, occasional worker
/// stalls, and frequent moderate slowdowns — enough induced adversity
/// to force shedding and health transitions while high-priority traffic
/// can still meet a generous deadline.
FaultSpec canned_overload_spec(std::uint64_t seed = 42);

}  // namespace univsa::runtime
