#include "univsa/runtime/parity.h"

#include <sstream>

#include "univsa/common/contracts.h"
#include "univsa/runtime/registry.h"
#include "univsa/telemetry/metrics.h"

namespace univsa::runtime {

namespace {

constexpr std::size_t kMismatchDetailCap = 16;

}  // namespace

std::string ParityReport::summary() const {
  std::ostringstream os;
  os << "parity vs '" << baseline << "' over " << samples << " sample"
     << (samples == 1 ? "" : "s") << ", backends [";
  for (std::size_t i = 0; i < backends.size(); ++i) {
    os << (i ? " " : "") << backends[i];
  }
  os << "]: ";
  if (ok()) {
    os << "bit-identical (" << compared << " comparisons)";
  } else {
    os << mismatch_count << '/' << compared << " MISMATCHES";
    for (const auto& m : mismatches) {
      os << "\n  " << m.backend << " sample " << m.sample << ": label "
         << m.actual.label << " vs " << m.expected.label;
    }
  }
  if (backend_seconds.size() == backends.size()) {
    for (std::size_t i = 0; i < backends.size(); ++i) {
      os << "\n  " << backends[i] << ": "
         << backend_seconds[i] * 1e3 << " ms";
    }
  }
  return os.str();
}

ParityReport verify_parity(
    const vsa::Model& model,
    const std::vector<std::vector<std::uint16_t>>& samples,
    std::vector<std::string> backends) {
  UNIVSA_REQUIRE(!samples.empty(), "parity needs at least one sample");
  if (backends.empty()) backends = backend_names();
  UNIVSA_REQUIRE(!backends.empty(), "no backends registered");

  ParityReport report;
  report.baseline = backends.front();
  report.backends = backends;
  report.samples = samples.size();

  report.backend_seconds.resize(backends.size(), 0.0);
  const auto timed_batch = [&](std::size_t b,
                               std::vector<vsa::Prediction>& out) {
    const std::uint64_t t0 = telemetry::now_ns();
    make_backend(backends[b], model)->predict_batch(samples, out);
    report.backend_seconds[b] =
        static_cast<double>(telemetry::now_ns() - t0) * 1e-9;
  };

  std::vector<vsa::Prediction> expected;
  timed_batch(0, expected);

  std::vector<vsa::Prediction> actual;
  for (std::size_t b = 1; b < backends.size(); ++b) {
    timed_batch(b, actual);
    for (std::size_t i = 0; i < samples.size(); ++i) {
      ++report.compared;
      if (actual[i].label == expected[i].label &&
          actual[i].scores == expected[i].scores) {
        continue;
      }
      ++report.mismatch_count;
      if (report.mismatches.size() < kMismatchDetailCap) {
        report.mismatches.push_back(
            {backends[b], i, expected[i], actual[i]});
      }
    }
  }
  return report;
}

ParityReport verify_parity(const vsa::Model& model,
                           const data::Dataset& dataset,
                           std::vector<std::string> backends) {
  UNIVSA_REQUIRE(!dataset.empty(), "parity needs at least one sample");
  std::vector<std::vector<std::uint16_t>> samples;
  samples.reserve(dataset.size());
  for (std::size_t i = 0; i < dataset.size(); ++i) {
    samples.push_back(dataset.values(i));
  }
  return verify_parity(model, samples, std::move(backends));
}

}  // namespace univsa::runtime
