#include "univsa/runtime/server.h"

#include <algorithm>
#include <chrono>

#include "univsa/common/contracts.h"
#include "univsa/runtime/registry.h"

namespace univsa::runtime {

Server::Server(const vsa::Model& model, ServerOptions options)
    : options_(std::move(options)) {
  UNIVSA_REQUIRE(options_.max_batch > 0, "max_batch must be positive");
  UNIVSA_REQUIRE(options_.queue_capacity > 0,
                 "queue_capacity must be positive");
  if (options_.workers == 0) options_.workers = 1;
  backends_.reserve(options_.workers);
  for (std::size_t w = 0; w < options_.workers; ++w) {
    backends_.push_back(make_backend(options_.backend, model));
  }
  workers_.reserve(options_.workers);
  for (std::size_t w = 0; w < options_.workers; ++w) {
    workers_.emplace_back([this, w] { worker_loop(w); });
  }
}

Server::~Server() { shutdown(); }

std::future<vsa::Prediction> Server::submit(
    std::vector<std::uint16_t> values) {
  Request request;
  request.values = std::move(values);
  std::future<vsa::Prediction> future = request.promise.get_future();
  {
    std::unique_lock<std::mutex> lock(mutex_);
    space_cv_.wait(lock, [this] {
      return stopping_ || queue_.size() < options_.queue_capacity;
    });
    if (stopping_) {
      throw std::runtime_error("runtime::Server is shut down");
    }
    queue_.push_back(std::move(request));
    ++stats_.submitted;
    stats_.max_queue_depth =
        std::max(stats_.max_queue_depth, queue_.size());
    // Wake every worker once a full micro-batch is ready; a single one
    // is enough to start coalescing otherwise.
    if (queue_.size() >= options_.max_batch) {
      queue_cv_.notify_all();
    } else {
      queue_cv_.notify_one();
    }
  }
  return future;
}

SubmitStatus Server::try_submit(std::vector<std::uint16_t> values,
                                std::future<vsa::Prediction>* out) {
  Request request;
  request.values = std::move(values);
  std::future<vsa::Prediction> future = request.promise.get_future();
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (stopping_) return SubmitStatus::kShutdown;
    if (queue_.size() >= options_.queue_capacity) {
      ++stats_.rejected;
      return SubmitStatus::kOverloaded;
    }
    queue_.push_back(std::move(request));
    ++stats_.submitted;
    stats_.max_queue_depth =
        std::max(stats_.max_queue_depth, queue_.size());
    if (queue_.size() >= options_.max_batch) {
      queue_cv_.notify_all();
    } else {
      queue_cv_.notify_one();
    }
  }
  if (out != nullptr) *out = std::move(future);
  return SubmitStatus::kOk;
}

void Server::shutdown() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stopping_ = true;
  }
  queue_cv_.notify_all();
  space_cv_.notify_all();
  std::lock_guard<std::mutex> jlock(join_mutex_);
  for (auto& worker : workers_) {
    if (worker.joinable()) worker.join();
  }
}

bool Server::accepting() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return !stopping_;
}

std::size_t Server::queue_depth() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return queue_.size();
}

ServerStats Server::stats() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return stats_;
}

void Server::worker_loop(std::size_t worker) {
  Backend& backend = *backends_[worker];
  const bool parallel =
      options_.parallel_batch && backend.capabilities().parallel_batch;
  std::vector<Request> batch;
  std::vector<std::vector<std::uint16_t>> values;
  std::vector<vsa::Prediction> predictions;

  for (;;) {
    batch.clear();
    {
      std::unique_lock<std::mutex> lock(mutex_);
      queue_cv_.wait(lock,
                     [this] { return stopping_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stopping and fully drained

      // Coalesce: hold the batch open briefly so concurrent submitters
      // land in the same dispatch (unless we're draining).
      if (options_.max_delay_us > 0 &&
          queue_.size() < options_.max_batch && !stopping_) {
        const auto deadline =
            std::chrono::steady_clock::now() +
            std::chrono::microseconds(options_.max_delay_us);
        queue_cv_.wait_until(lock, deadline, [this] {
          return stopping_ || queue_.size() >= options_.max_batch;
        });
        if (queue_.empty()) continue;  // another worker took them all
      }

      const std::size_t take =
          std::min(queue_.size(), options_.max_batch);
      for (std::size_t i = 0; i < take; ++i) {
        batch.push_back(std::move(queue_.front()));
        queue_.pop_front();
      }
      ++stats_.batches;
      stats_.max_batch_observed =
          std::max(stats_.max_batch_observed, batch.size());
    }
    space_cv_.notify_all();

    values.resize(batch.size());
    for (std::size_t i = 0; i < batch.size(); ++i) {
      values[i] = std::move(batch[i].values);
    }
    try {
      backend.predict_batch(values, predictions, parallel);
      for (std::size_t i = 0; i < batch.size(); ++i) {
        batch[i].promise.set_value(std::move(predictions[i]));
      }
    } catch (...) {
      const std::exception_ptr error = std::current_exception();
      for (auto& request : batch) {
        request.promise.set_exception(error);
      }
    }
    {
      std::lock_guard<std::mutex> lock(mutex_);
      stats_.completed += batch.size();
    }
  }
}

}  // namespace univsa::runtime
