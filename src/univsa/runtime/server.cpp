#include "univsa/runtime/server.h"

#include <algorithm>
#include <chrono>
#include <optional>

#include <cstring>

#include "univsa/common/contracts.h"
#include "univsa/runtime/registry.h"
#include "univsa/telemetry/flight_recorder.h"
#include "univsa/telemetry/metrics.h"
#include "univsa/telemetry/trace.h"

namespace univsa::runtime {

namespace {

// Process-wide mirrors of the per-instance server metrics, so the
// serving layer shows up in telemetry::snapshot() scrapes (Prometheus /
// --metrics-json) without callers having to reach into a Server object.
// Handles are resolved once; every update after that is lock-free.
struct GlobalServerMetrics {
  telemetry::Counter& submitted =
      telemetry::counter("runtime.server.submitted");
  telemetry::Counter& rejected =
      telemetry::counter("runtime.server.rejected");
  telemetry::Counter& completed =
      telemetry::counter("runtime.server.completed");
  telemetry::Counter& batches = telemetry::counter("runtime.server.batches");
  telemetry::Counter& shed = telemetry::counter("runtime.server.shed_total");
  telemetry::Counter& deadline_rejected =
      telemetry::counter("runtime.server.deadline_rejected_total");
  telemetry::Counter& retries =
      telemetry::counter("runtime.server.retries_total");
  telemetry::Counter& unknown_tenant =
      telemetry::counter("runtime.server.unknown_tenant_total");
  telemetry::Counter& health_transitions =
      telemetry::counter("runtime.server.health_transitions_total");
  telemetry::Gauge& health_state =
      telemetry::gauge("runtime.server.health_state");
  telemetry::Gauge& queue_depth =
      telemetry::gauge("runtime.server.queue_depth");
  telemetry::LatencyHistogram& batch_size =
      telemetry::histogram("runtime.server.batch_size");
  telemetry::LatencyHistogram& queue_wait =
      telemetry::histogram("runtime.server.queue_wait_ns");
  telemetry::LatencyHistogram& service =
      telemetry::histogram("runtime.server.service_ns");
  telemetry::LatencyHistogram& latency =
      telemetry::histogram("runtime.server.latency_ns");
};

GlobalServerMetrics& global_metrics() {
  static GlobalServerMetrics g;
  return g;
}

// One already-timed span pushed straight into the trace ring — how the
// serving layer emits request-tree spans AFTER promise fulfillment
// (RAII TraceSpan would time the push itself onto the critical path).
void push_span(const char* name, std::uint64_t trace_id,
               std::uint64_t span_id, std::uint64_t parent_span,
               std::uint64_t start_ns, std::uint64_t end_ns,
               std::uint64_t detail) {
  telemetry::TraceEvent event;
  std::strncpy(event.name.data(), name, event.name.size() - 1);
  event.start_ns = start_ns;
  event.duration_ns = end_ns >= start_ns ? end_ns - start_ns : 0;
  event.detail = detail;
  event.trace_id = trace_id;
  event.span_id = span_id;
  event.parent_span = parent_span;
  event.thread = static_cast<std::uint32_t>(telemetry::thread_index());
  telemetry::trace_push(event);
}

// The legacy single-model path: a private one-tenant registry holding a
// copy of the caller's model, published under the default tenant.
std::shared_ptr<ModelRegistry> single_model_registry(
    const vsa::Model& model, const ServerOptions& options) {
  auto registry = std::make_shared<ModelRegistry>();
  registry->publish(
      options.default_tenant.empty() ? "default" : options.default_tenant,
      model);
  return registry;
}

}  // namespace

const char* to_string(Priority priority) {
  switch (priority) {
    case Priority::kLow: return "low";
    case Priority::kNormal: return "normal";
    case Priority::kHigh: return "high";
  }
  return "?";
}

const char* to_string(HealthState state) {
  switch (state) {
    case HealthState::kServing: return "serving";
    case HealthState::kDegraded: return "degraded";
    case HealthState::kDraining: return "draining";
  }
  return "?";
}

Server::Server(std::shared_ptr<ModelRegistry> registry,
               ServerOptions options)
    : options_(std::move(options)), registry_(std::move(registry)) {
  UNIVSA_REQUIRE(registry_ != nullptr, "registry must be non-null");
  UNIVSA_REQUIRE(options_.max_batch > 0, "max_batch must be positive");
  UNIVSA_REQUIRE(options_.queue_capacity > 0,
                 "queue_capacity must be positive");
  UNIVSA_REQUIRE(options_.shed_watermark <= options_.queue_capacity,
                 "shed_watermark cannot exceed queue_capacity");
  UNIVSA_REQUIRE(!options_.default_tenant.empty(),
                 "default_tenant must be non-empty");
  // Fail fast on a backend name typo: workers build backends lazily per
  // snapshot, so without this check the error would only surface inside
  // a dispatch.
  UNIVSA_REQUIRE(has_backend(options_.backend),
                 "unknown backend \"" + options_.backend + "\"");
  watermark_ = options_.shed_watermark != 0
                   ? options_.shed_watermark
                   : std::max<std::size_t>(1,
                                           options_.queue_capacity * 3 / 4);
  if (options_.workers == 0) options_.workers = 1;
  if (options_.backend_cache == 0) options_.backend_cache = 1;
  if (telemetry::enabled()) {
    global_metrics().health_state.set(
        static_cast<double>(HealthState::kServing));
  }
  workers_.reserve(options_.workers);
  for (std::size_t w = 0; w < options_.workers; ++w) {
    workers_.emplace_back([this, w] { worker_loop(w); });
  }
}

Server::Server(const vsa::Model& model, ServerOptions options)
    : Server(single_model_registry(model, options), options) {}

Server::~Server() { shutdown(); }

void Server::update_health_locked() {
  HealthState desired;
  if (stopping_) {
    desired = HealthState::kDraining;
  } else if (total_queued_ >= watermark_) {
    desired = HealthState::kDegraded;
  } else if (health_ == HealthState::kDegraded &&
             total_queued_ > watermark_ / 2) {
    desired = HealthState::kDegraded;  // hysteresis: recover at half
  } else {
    desired = HealthState::kServing;
  }
  if (desired == health_) return;
  const HealthState previous = health_;
  health_ = desired;
  health_transitions_.add();
  if (telemetry::enabled()) {
    GlobalServerMetrics& g = global_metrics();
    g.health_transitions.add();
    g.health_state.set(static_cast<double>(desired));
    telemetry::flightrec_record(
        telemetry::FlightEventType::kHealthTransition, to_string(desired),
        static_cast<std::uint64_t>(previous),
        static_cast<std::uint64_t>(desired));
  }
}

void Server::note_enqueued_locked() {
  submitted_.add();
  max_queue_depth_ = std::max(max_queue_depth_, total_queued_);
  if (telemetry::enabled()) {
    GlobalServerMetrics& g = global_metrics();
    g.submitted.add();
    g.queue_depth.set(static_cast<double>(total_queued_));
  }
  update_health_locked();
  // Wake every worker once a full micro-batch is ready; a single one
  // is enough to start coalescing otherwise.
  if (total_queued_ >= options_.max_batch) {
    queue_cv_.notify_all();
  } else {
    queue_cv_.notify_one();
  }
}

Server::TenantState& Server::tenant_state_locked(const std::string& name) {
  auto it = tenant_states_.find(name);
  if (it != tenant_states_.end()) return *it->second;
  auto state = std::make_unique<TenantState>();
  state->name = name;
  auto policy = options_.tenant_policies.find(name);
  if (policy != options_.tenant_policies.end()) {
    state->policy = policy->second;
  }
  state->g_completed = &telemetry::counter(
      telemetry::labeled("runtime.server.tenant_completed", "tenant", name));
  state->g_shed = &telemetry::counter(
      telemetry::labeled("runtime.server.tenant_shed", "tenant", name));
  state->g_latency = &telemetry::histogram(telemetry::labeled(
      "runtime.server.tenant_latency_ns", "tenant", name));
  it = tenant_states_.emplace(name, std::move(state)).first;
  return *it->second;
}

const ModelRegistry::Tenant* Server::resolve_tenant(
    const SubmitOptions& options, const std::string** name) const {
  const std::string& tenant_name =
      options.tenant.empty() ? options_.default_tenant : options.tenant;
  *name = &tenant_name;
  return registry_->find_tenant(tenant_name);
}

void Server::collect_batch_locked(std::vector<Request>& batch,
                                  std::vector<Request>& expired,
                                  std::uint64_t now) {
  // The highest-priority non-expired request leads the batch; only
  // requests that resolved the SAME snapshot (tenant and version) may
  // join it. Everything else stays queued in order. Expired requests of
  // any tenant encountered during the scan are swept out.
  const ModelSnapshot* leader = nullptr;
  for (std::size_t p = kPriorityClasses; p-- > 0;) {
    std::deque<Request>& queue = queues_[p];
    if (queue.empty()) continue;
    if (leader != nullptr && batch.size() >= options_.max_batch) break;
    std::deque<Request> keep;
    for (Request& request : queue) {
      if (request.deadline_ns != 0 && now >= request.deadline_ns) {
        --total_queued_;
        --request.tenant->queued;
        expired.push_back(std::move(request));
        continue;
      }
      if (batch.size() < options_.max_batch &&
          (leader == nullptr || request.snapshot.get() == leader)) {
        leader = request.snapshot.get();
        --total_queued_;
        --request.tenant->queued;
        batch.push_back(std::move(request));
        continue;
      }
      keep.push_back(std::move(request));
    }
    queue = std::move(keep);
  }
}

SubmitStatus Server::admit_locked(Request&& request,
                                  std::optional<Request>& evicted,
                                  const char** shed_reason) {
  if (stopping_) return SubmitStatus::kShutdown;
  TenantState& tenant = *request.tenant;
  if (tenant.policy.queue_quota != 0 &&
      tenant.queued >= tenant.policy.queue_quota) {
    shed_.add();
    tenant.shed.add();
    if (telemetry::enabled()) {
      global_metrics().shed.add();
      tenant.g_shed->add();
      telemetry::flightrec_record(telemetry::FlightEventType::kShed,
                                  tenant.name.c_str(), tenant.queued,
                                  tenant.policy.queue_quota);
    }
    if (shed_reason != nullptr) {
      *shed_reason = "tenant admission quota reached";
    }
    return SubmitStatus::kShed;
  }
  if (request.priority == Priority::kLow && total_queued_ >= watermark_) {
    shed_.add();
    tenant.shed.add();
    if (telemetry::enabled()) {
      global_metrics().shed.add();
      tenant.g_shed->add();
      telemetry::flightrec_record(telemetry::FlightEventType::kShed,
                                  tenant.name.c_str(), total_queued_,
                                  watermark_);
    }
    if (shed_reason != nullptr) {
      *shed_reason = "queue depth at the shed watermark";
    }
    return SubmitStatus::kShed;
  }
  if (total_queued_ >= options_.queue_capacity) {
    // Shed low-priority work first: a higher-class arrival at full
    // capacity evicts the *youngest* queued kLow request (oldest keeps
    // its FIFO progress) instead of being turned away.
    std::deque<Request>& low =
        queues_[static_cast<std::size_t>(Priority::kLow)];
    if (request.priority == Priority::kLow || low.empty()) {
      return SubmitStatus::kOverloaded;
    }
    evicted = std::move(low.back());
    low.pop_back();
    --total_queued_;
    --evicted->tenant->queued;
    shed_.add();
    evicted->tenant->shed.add();
    if (telemetry::enabled()) {
      global_metrics().shed.add();
      evicted->tenant->g_shed->add();
      telemetry::flightrec_record(
          telemetry::FlightEventType::kEviction,
          evicted->tenant->name.c_str(), total_queued_,
          static_cast<std::uint64_t>(request.priority));
    }
  }
  request.submit_ns = telemetry::now_ns();
  ++tenant.queued;
  tenant.submitted.add();
  queues_[static_cast<std::size_t>(request.priority)].push_back(
      std::move(request));
  ++total_queued_;
  note_enqueued_locked();
  return SubmitStatus::kOk;
}

std::future<vsa::Prediction> Server::submit(
    std::vector<std::uint16_t> values, const SubmitOptions& options) {
  Request request;
  request.values = std::move(values);
  request.priority = options.priority;
  if (options.deadline_us != 0) {
    request.deadline_ns =
        telemetry::now_ns() + options.deadline_us * 1000ull;
  }
  std::future<vsa::Prediction> future = request.promise.get_future();

  // Snapshot resolution happens here, before any queueing: whatever
  // version is latest *now* serves this request, even if a hot-swap
  // lands before dispatch.
  const std::string* tenant_name = nullptr;
  const ModelRegistry::Tenant* entry = resolve_tenant(options, &tenant_name);
  if (entry == nullptr) {
    unknown_tenant_.add();
    if (telemetry::enabled()) global_metrics().unknown_tenant.add();
    throw UnknownTenant("unknown tenant \"" + *tenant_name +
                        "\": publish a model before submitting");
  }
  request.snapshot = entry->latest();

  // The per-request sampling decision, made exactly once at admission:
  // either the caller already carries a trace (wire propagation) or the
  // global coherent sampler starts one. Everything downstream keys off
  // request.trace.sampled().
  if (telemetry::enabled()) {
    request.trace = options.trace.sampled()
                        ? options.trace
                        : telemetry::maybe_start_trace(
                              static_cast<std::uint32_t>(
                                  options_.trace_sample_every));
    if (request.trace.sampled()) {
      request.root_span = telemetry::next_trace_span_id();
      request.entry_ns = telemetry::now_ns();
    }
  }
  const telemetry::TraceContext trace = request.trace;
  const std::uint64_t root_span = request.root_span;
  const std::uint64_t entry_ns = request.entry_ns;

  std::uint64_t backoff_us =
      options.retry_backoff_us != 0 ? options.retry_backoff_us : 100;
  std::size_t attempts = 0;
  std::optional<Request> evicted;
  const char* shed_reason = "";
  SubmitStatus status;
  {
    std::unique_lock<std::mutex> lock(mutex_);
    TenantState& tenant = tenant_state_locked(*tenant_name);
    request.tenant = &tenant;
    request.priority = std::min(options.priority,
                                tenant.policy.max_priority);
    const auto has_space = [this] {
      return stopping_ || total_queued_ < options_.queue_capacity;
    };
    for (;;) {
      status = admit_locked(std::move(request), evicted, &shed_reason);
      if (status != SubmitStatus::kOverloaded) break;
      if (options.max_retries == 0) {
        // Classic backpressure: park until a worker frees queue space.
        space_cv_.wait(lock, has_space);
        continue;
      }
      if (attempts >= options.max_retries) break;
      ++attempts;
      retries_.add();
      if (telemetry::enabled()) global_metrics().retries.add();
      space_cv_.wait_for(lock, std::chrono::microseconds(backoff_us),
                         has_space);
      backoff_us *= 2;
    }
  }
  if (evicted.has_value()) {
    fulfill_error(*evicted,
                  std::make_exception_ptr(RequestShed(
                      "low-priority request evicted for a higher class")));
  }
  if (status == SubmitStatus::kOk && trace.sampled()) {
    // Admission span: entry to enqueued, including any backoff waits.
    push_span("server.submit", trace.trace_id,
              telemetry::next_trace_span_id(), root_span, entry_ns,
              telemetry::now_ns(), attempts);
  }
  switch (status) {
    case SubmitStatus::kOk:
      return future;
    case SubmitStatus::kShed:
      throw RequestShed("request for tenant \"" + *tenant_name +
                        "\" shed: " + shed_reason + " (watermark " +
                        std::to_string(watermark_) + ")");
    case SubmitStatus::kOverloaded:
      throw ServerOverloaded(
          "queue still full after " + std::to_string(attempts) +
          " retries with exponential backoff");
    default:
      throw std::runtime_error("runtime::Server is shut down");
  }
}

SubmitStatus Server::try_submit(std::vector<std::uint16_t> values,
                                std::future<vsa::Prediction>* out) {
  return try_submit(std::move(values), SubmitOptions{}, out);
}

SubmitStatus Server::try_submit(std::vector<std::uint16_t> values,
                                const SubmitOptions& options,
                                std::future<vsa::Prediction>* out) {
  Request request;
  request.values = std::move(values);
  std::future<vsa::Prediction> future = request.promise.get_future();
  const SubmitStatus status = try_submit_impl(std::move(request), options);
  if (status == SubmitStatus::kOk && out != nullptr) {
    *out = std::move(future);
  }
  return status;
}

SubmitStatus Server::try_submit_async(std::vector<std::uint16_t> values,
                                      const SubmitOptions& options,
                                      Completion done) {
  UNIVSA_REQUIRE(done != nullptr,
                 "try_submit_async requires a completion callback");
  Request request;
  request.values = std::move(values);
  request.on_complete = std::move(done);
  return try_submit_impl(std::move(request), options);
}

SubmitStatus Server::try_submit_impl(Request&& request,
                                     const SubmitOptions& options) {
  request.priority = options.priority;
  if (options.deadline_us != 0) {
    request.deadline_ns =
        telemetry::now_ns() + options.deadline_us * 1000ull;
  }

  const std::string* tenant_name = nullptr;
  const ModelRegistry::Tenant* entry = resolve_tenant(options, &tenant_name);
  if (entry == nullptr) {
    unknown_tenant_.add();
    if (telemetry::enabled()) global_metrics().unknown_tenant.add();
    return SubmitStatus::kUnknownTenant;
  }
  request.snapshot = entry->latest();

  if (telemetry::enabled()) {
    request.trace = options.trace.sampled()
                        ? options.trace
                        : telemetry::maybe_start_trace(
                              static_cast<std::uint32_t>(
                                  options_.trace_sample_every));
    if (request.trace.sampled()) {
      request.root_span = telemetry::next_trace_span_id();
      request.entry_ns = telemetry::now_ns();
    }
  }
  const telemetry::TraceContext trace = request.trace;
  const std::uint64_t root_span = request.root_span;
  const std::uint64_t entry_ns = request.entry_ns;

  std::optional<Request> evicted;
  SubmitStatus status;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    TenantState& tenant = tenant_state_locked(*tenant_name);
    request.tenant = &tenant;
    request.priority = std::min(options.priority,
                                tenant.policy.max_priority);
    status = admit_locked(std::move(request), evicted, nullptr);
    if (status == SubmitStatus::kOverloaded) {
      rejected_.add();
      if (telemetry::enabled()) global_metrics().rejected.add();
    }
  }
  if (evicted.has_value()) {
    fulfill_error(*evicted,
                  std::make_exception_ptr(RequestShed(
                      "low-priority request evicted for a higher class")));
  }
  if (status == SubmitStatus::kOk && trace.sampled()) {
    push_span("server.submit", trace.trace_id,
              telemetry::next_trace_span_id(), root_span, entry_ns,
              telemetry::now_ns(), 0);
  }
  return status;
}

void Server::fulfill_value(Request& request, vsa::Prediction&& value) {
  if (request.on_complete) {
    request.on_complete(std::move(value), nullptr);
  } else {
    request.promise.set_value(std::move(value));
  }
}

void Server::fulfill_error(Request& request, std::exception_ptr error) {
  if (request.on_complete) {
    request.on_complete(vsa::Prediction{}, std::move(error));
  } else {
    request.promise.set_exception(std::move(error));
  }
}

void Server::shutdown() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stopping_ = true;
    update_health_locked();  // -> kDraining (counts the transition)
  }
  // One-shot post-mortem on entering draining, if an operator armed it
  // (telemetry::flightrec_arm_draining_dump); a no-op otherwise.
  telemetry::flightrec_on_draining();
  queue_cv_.notify_all();
  space_cv_.notify_all();
  std::lock_guard<std::mutex> jlock(join_mutex_);
  for (auto& worker : workers_) {
    if (worker.joinable()) worker.join();
  }
}

bool Server::accepting() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return !stopping_;
}

std::size_t Server::queue_depth() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return total_queued_;
}

HealthState Server::health() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return health_;
}

ServerStats Server::stats() const {
  ServerStats stats;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stats.queue_depth = total_queued_;
    stats.max_batch_observed = max_batch_observed_;
    stats.max_queue_depth = max_queue_depth_;
    stats.health = health_;
    for (const auto& [name, state] : tenant_states_) {
      ServerStats::TenantStats tenant;
      tenant.submitted = state->submitted.total();
      tenant.completed = state->completed.total();
      tenant.shed = state->shed.total();
      tenant.deadline_rejected = state->deadline_rejected.total();
      tenant.queued = state->queued;
      tenant.latency_ns = state->latency.snapshot();
      tenant.latency_ns.name = "latency_ns";
      stats.tenants.emplace(name, std::move(tenant));
    }
  }
  stats.submitted = submitted_.total();
  stats.rejected = rejected_.total();
  stats.completed = completed_.total();
  stats.batches = batches_.total();
  stats.shed = shed_.total();
  stats.deadline_rejected = deadline_rejected_.total();
  stats.retries = retries_.total();
  stats.unknown_tenant = unknown_tenant_.total();
  stats.health_transitions = health_transitions_.total();
  stats.batch_sizes = batch_hist_.snapshot();
  stats.batch_sizes.name = "batch_sizes";
  stats.queue_wait_ns = queue_wait_hist_.snapshot();
  stats.queue_wait_ns.name = "queue_wait_ns";
  stats.service_ns = service_hist_.snapshot();
  stats.service_ns.name = "service_ns";
  stats.latency_ns = latency_hist_.snapshot();
  stats.latency_ns.name = "latency_ns";
  return stats;
}

void Server::worker_loop(std::size_t worker) {
  // Backends are built lazily per model snapshot and cached (LRU bound
  // options_.backend_cache): with per-snapshot coalescing a steady mix
  // of tenants reuses its backends dispatch after dispatch, and a
  // hot-swap simply faults in one new entry while the old one ages out.
  struct CachedBackend {
    SnapshotPtr snapshot;
    std::unique_ptr<Backend> backend;
    bool parallel = false;
    std::uint64_t last_used = 0;
  };
  std::vector<CachedBackend> cache;
  std::uint64_t tick = 0;
  auto backend_for = [&](const SnapshotPtr& snapshot) -> CachedBackend& {
    for (auto& entry : cache) {
      if (entry.snapshot.get() == snapshot.get()) {
        entry.last_used = ++tick;
        return entry;
      }
    }
    if (cache.size() >= options_.backend_cache) {
      std::size_t lru = 0;
      for (std::size_t i = 1; i < cache.size(); ++i) {
        if (cache[i].last_used < cache[lru].last_used) lru = i;
      }
      cache.erase(cache.begin() +
                  static_cast<std::ptrdiff_t>(lru));
    }
    CachedBackend entry;
    entry.snapshot = snapshot;
    entry.backend = make_backend(options_.backend, snapshot->model());
    if (options_.fault_plan != nullptr) {
      entry.backend = std::make_unique<FaultInjectedBackend>(
          std::move(entry.backend), options_.fault_plan, worker);
    }
    entry.parallel = options_.parallel_batch &&
                     entry.backend->capabilities().parallel_batch;
    entry.last_used = ++tick;
    cache.push_back(std::move(entry));
    return cache.back();
  };

  std::vector<Request> batch;
  std::vector<Request> expired;
  std::vector<std::vector<std::uint16_t>> values;
  std::vector<vsa::Prediction> predictions;

  for (;;) {
    batch.clear();
    expired.clear();
    {
      std::unique_lock<std::mutex> lock(mutex_);
      queue_cv_.wait(lock,
                     [this] { return stopping_ || total_queued_ > 0; });
      if (total_queued_ == 0) return;  // stopping and fully drained

      // Coalesce: hold the batch open briefly so concurrent submitters
      // land in the same dispatch (unless we're draining).
      if (options_.max_delay_us > 0 &&
          total_queued_ < options_.max_batch && !stopping_) {
        const auto deadline =
            std::chrono::steady_clock::now() +
            std::chrono::microseconds(options_.max_delay_us);
        queue_cv_.wait_until(lock, deadline, [this] {
          return stopping_ || total_queued_ >= options_.max_batch;
        });
        if (total_queued_ == 0) continue;  // another worker took them all
      }

      // Extract one single-snapshot micro-batch; a request whose
      // deadline has already passed is set aside for rejection and does
      // NOT consume one of the max_batch slots.
      collect_batch_locked(batch, expired, telemetry::now_ns());
      if (!batch.empty()) {
        batches_.add();
        max_batch_observed_ = std::max(max_batch_observed_, batch.size());
      }
      if (telemetry::enabled()) {
        global_metrics().queue_depth.set(
            static_cast<double>(total_queued_));
      }
      update_health_locked();
    }
    space_cv_.notify_all();

    // Deadline rejections are counted before their futures resolve, the
    // same stats-before-fulfillment invariant as completions below.
    if (!expired.empty()) {
      deadline_rejected_.add(expired.size());
      for (const Request& request : expired) {
        request.tenant->deadline_rejected.add();
      }
      if (telemetry::enabled()) {
        global_metrics().deadline_rejected.add(expired.size());
        const std::uint64_t now = telemetry::now_ns();
        for (const Request& request : expired) {
          telemetry::flightrec_record(
              telemetry::FlightEventType::kDeadlineRejected,
              request.tenant->name.c_str(),
              now > request.deadline_ns ? now - request.deadline_ns : 0,
              static_cast<std::uint64_t>(request.priority));
        }
      }
      for (Request& request : expired) {
        fulfill_error(request,
                      std::make_exception_ptr(DeadlineExceeded(
                          "deadline passed while queued")));
      }
      expired.clear();  // release the promises now, not next iteration
    }
    if (batch.empty()) continue;

    const bool mirror = telemetry::enabled();
    const std::uint64_t dequeue_ns = telemetry::now_ns();
    batch_hist_.record(batch.size());
    for (const Request& request : batch) {
      queue_wait_hist_.record(dequeue_ns - request.submit_ns);
    }
    if (mirror) {
      GlobalServerMetrics& g = global_metrics();
      g.batches.add();
      g.batch_size.record(batch.size());
      for (const Request& request : batch) {
        g.queue_wait.record(dequeue_ns - request.submit_ns);
      }
    }

    values.resize(batch.size());
    for (std::size_t i = 0; i < batch.size(); ++i) {
      values[i] = std::move(batch[i].values);
    }
    // If any request in the batch is trace-sampled, dispatch under its
    // context: backend/engine stage spans opened on this thread parent-
    // link into the request tree via the pre-allocated backend span id.
    telemetry::TraceContext dispatch_ctx;
    std::uint64_t leader_batch_span = 0;
    std::uint64_t backend_span = 0;
    for (const Request& request : batch) {
      if (!request.trace.sampled()) continue;
      leader_batch_span = telemetry::next_trace_span_id();
      backend_span = telemetry::next_trace_span_id();
      dispatch_ctx.trace_id = request.trace.trace_id;
      dispatch_ctx.span_id = backend_span;
      break;
    }

    std::exception_ptr error;
    Backend* backend = nullptr;
    bool parallel = false;
    try {
      CachedBackend& cached = backend_for(batch.front().snapshot);
      backend = cached.backend.get();
      parallel = cached.parallel;
    } catch (...) {
      error = std::current_exception();
    }
    if (error == nullptr) {
      try {
        const telemetry::ScopedTraceContext trace_scope(dispatch_ctx);
        backend->predict_batch(values, predictions, parallel);
      } catch (...) {
        error = std::current_exception();
      }
    }

    // Record before fulfilling the promises: once a caller's get()
    // returns, stats() must already account for that request.
    const std::uint64_t done_ns = telemetry::now_ns();
    service_hist_.record(done_ns - dequeue_ns);
    for (const Request& request : batch) {
      const std::uint64_t latency = done_ns - request.submit_ns;
      latency_hist_.record(latency);
      request.tenant->latency.record(latency);
      request.tenant->completed.add();
    }
    completed_.add(batch.size());
    if (mirror) {
      GlobalServerMetrics& g = global_metrics();
      g.service.record(done_ns - dequeue_ns);
      for (const Request& request : batch) {
        const std::uint64_t latency = done_ns - request.submit_ns;
        g.latency.record(latency);
        request.tenant->g_latency->record(latency);
        request.tenant->g_completed->add();
      }
      g.completed.add(batch.size());
    }

    if (error != nullptr) {
      for (auto& request : batch) {
        fulfill_error(request, error);
      }
    } else {
      for (std::size_t i = 0; i < batch.size(); ++i) {
        fulfill_value(batch[i], std::move(predictions[i]));
      }
    }

    // Request-tree emission happens strictly AFTER the promises are
    // fulfilled: sampled requests never delay the reply (the same
    // off-the-critical-path invariant stats_race_test pins for stats,
    // which are recorded just before fulfillment above).
    if (backend_span != 0) {
      push_span("server.backend", dispatch_ctx.trace_id, backend_span,
                leader_batch_span, dequeue_ns, done_ns, batch.size());
      bool leader = true;
      for (const Request& request : batch) {
        if (!request.trace.sampled()) continue;
        const std::uint64_t trace_id = request.trace.trace_id;
        // The leader's batch span owns the shared backend dispatch
        // span; other sampled members of the same batch get their own.
        const std::uint64_t batch_span =
            leader ? leader_batch_span : telemetry::next_trace_span_id();
        leader = false;
        push_span("server.queue", trace_id,
                  telemetry::next_trace_span_id(), request.root_span,
                  request.submit_ns, dequeue_ns, 0);
        push_span("server.batch", trace_id, batch_span, request.root_span,
                  dequeue_ns, done_ns, batch.size());
        push_span("server.request", trace_id, request.root_span,
                  request.trace.span_id, request.entry_ns, done_ns,
                  request.snapshot->version());
      }
    }
  }
}

}  // namespace univsa::runtime
