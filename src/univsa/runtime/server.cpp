#include "univsa/runtime/server.h"

#include <algorithm>
#include <chrono>

#include "univsa/common/contracts.h"
#include "univsa/runtime/registry.h"
#include "univsa/telemetry/metrics.h"

namespace univsa::runtime {

namespace {

// Process-wide mirrors of the per-instance server metrics, so the
// serving layer shows up in telemetry::snapshot() scrapes (Prometheus /
// --metrics-json) without callers having to reach into a Server object.
// Handles are resolved once; every update after that is lock-free.
struct GlobalServerMetrics {
  telemetry::Counter& submitted =
      telemetry::counter("runtime.server.submitted");
  telemetry::Counter& rejected =
      telemetry::counter("runtime.server.rejected");
  telemetry::Counter& completed =
      telemetry::counter("runtime.server.completed");
  telemetry::Counter& batches = telemetry::counter("runtime.server.batches");
  telemetry::Gauge& queue_depth =
      telemetry::gauge("runtime.server.queue_depth");
  telemetry::LatencyHistogram& batch_size =
      telemetry::histogram("runtime.server.batch_size");
  telemetry::LatencyHistogram& queue_wait =
      telemetry::histogram("runtime.server.queue_wait_ns");
  telemetry::LatencyHistogram& service =
      telemetry::histogram("runtime.server.service_ns");
  telemetry::LatencyHistogram& latency =
      telemetry::histogram("runtime.server.latency_ns");
};

GlobalServerMetrics& global_metrics() {
  static GlobalServerMetrics g;
  return g;
}

}  // namespace

Server::Server(const vsa::Model& model, ServerOptions options)
    : options_(std::move(options)) {
  UNIVSA_REQUIRE(options_.max_batch > 0, "max_batch must be positive");
  UNIVSA_REQUIRE(options_.queue_capacity > 0,
                 "queue_capacity must be positive");
  if (options_.workers == 0) options_.workers = 1;
  backends_.reserve(options_.workers);
  for (std::size_t w = 0; w < options_.workers; ++w) {
    backends_.push_back(make_backend(options_.backend, model));
  }
  workers_.reserve(options_.workers);
  for (std::size_t w = 0; w < options_.workers; ++w) {
    workers_.emplace_back([this, w] { worker_loop(w); });
  }
}

Server::~Server() { shutdown(); }

void Server::note_enqueued_locked() {
  submitted_.add();
  max_queue_depth_ = std::max(max_queue_depth_, queue_.size());
  if (telemetry::enabled()) {
    GlobalServerMetrics& g = global_metrics();
    g.submitted.add();
    g.queue_depth.set(static_cast<double>(queue_.size()));
  }
  // Wake every worker once a full micro-batch is ready; a single one
  // is enough to start coalescing otherwise.
  if (queue_.size() >= options_.max_batch) {
    queue_cv_.notify_all();
  } else {
    queue_cv_.notify_one();
  }
}

std::future<vsa::Prediction> Server::submit(
    std::vector<std::uint16_t> values) {
  Request request;
  request.values = std::move(values);
  std::future<vsa::Prediction> future = request.promise.get_future();
  {
    std::unique_lock<std::mutex> lock(mutex_);
    space_cv_.wait(lock, [this] {
      return stopping_ || queue_.size() < options_.queue_capacity;
    });
    if (stopping_) {
      throw std::runtime_error("runtime::Server is shut down");
    }
    request.submit_ns = telemetry::now_ns();
    queue_.push_back(std::move(request));
    note_enqueued_locked();
  }
  return future;
}

SubmitStatus Server::try_submit(std::vector<std::uint16_t> values,
                                std::future<vsa::Prediction>* out) {
  Request request;
  request.values = std::move(values);
  std::future<vsa::Prediction> future = request.promise.get_future();
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (stopping_) return SubmitStatus::kShutdown;
    if (queue_.size() >= options_.queue_capacity) {
      rejected_.add();
      if (telemetry::enabled()) global_metrics().rejected.add();
      return SubmitStatus::kOverloaded;
    }
    request.submit_ns = telemetry::now_ns();
    queue_.push_back(std::move(request));
    note_enqueued_locked();
  }
  if (out != nullptr) *out = std::move(future);
  return SubmitStatus::kOk;
}

void Server::shutdown() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stopping_ = true;
  }
  queue_cv_.notify_all();
  space_cv_.notify_all();
  std::lock_guard<std::mutex> jlock(join_mutex_);
  for (auto& worker : workers_) {
    if (worker.joinable()) worker.join();
  }
}

bool Server::accepting() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return !stopping_;
}

std::size_t Server::queue_depth() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return queue_.size();
}

ServerStats Server::stats() const {
  ServerStats stats;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stats.queue_depth = queue_.size();
    stats.max_batch_observed = max_batch_observed_;
    stats.max_queue_depth = max_queue_depth_;
  }
  stats.submitted = submitted_.total();
  stats.rejected = rejected_.total();
  stats.completed = completed_.total();
  stats.batches = batches_.total();
  stats.batch_sizes = batch_hist_.snapshot();
  stats.batch_sizes.name = "batch_sizes";
  stats.queue_wait_ns = queue_wait_hist_.snapshot();
  stats.queue_wait_ns.name = "queue_wait_ns";
  stats.service_ns = service_hist_.snapshot();
  stats.service_ns.name = "service_ns";
  stats.latency_ns = latency_hist_.snapshot();
  stats.latency_ns.name = "latency_ns";
  return stats;
}

void Server::worker_loop(std::size_t worker) {
  Backend& backend = *backends_[worker];
  const bool parallel =
      options_.parallel_batch && backend.capabilities().parallel_batch;
  std::vector<Request> batch;
  std::vector<std::vector<std::uint16_t>> values;
  std::vector<vsa::Prediction> predictions;

  for (;;) {
    batch.clear();
    {
      std::unique_lock<std::mutex> lock(mutex_);
      queue_cv_.wait(lock,
                     [this] { return stopping_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stopping and fully drained

      // Coalesce: hold the batch open briefly so concurrent submitters
      // land in the same dispatch (unless we're draining).
      if (options_.max_delay_us > 0 &&
          queue_.size() < options_.max_batch && !stopping_) {
        const auto deadline =
            std::chrono::steady_clock::now() +
            std::chrono::microseconds(options_.max_delay_us);
        queue_cv_.wait_until(lock, deadline, [this] {
          return stopping_ || queue_.size() >= options_.max_batch;
        });
        if (queue_.empty()) continue;  // another worker took them all
      }

      const std::size_t take =
          std::min(queue_.size(), options_.max_batch);
      for (std::size_t i = 0; i < take; ++i) {
        batch.push_back(std::move(queue_.front()));
        queue_.pop_front();
      }
      batches_.add();
      max_batch_observed_ = std::max(max_batch_observed_, batch.size());
      if (telemetry::enabled()) {
        global_metrics().queue_depth.set(
            static_cast<double>(queue_.size()));
      }
    }
    space_cv_.notify_all();

    const bool mirror = telemetry::enabled();
    const std::uint64_t dequeue_ns = telemetry::now_ns();
    batch_hist_.record(batch.size());
    for (const Request& request : batch) {
      queue_wait_hist_.record(dequeue_ns - request.submit_ns);
    }
    if (mirror) {
      GlobalServerMetrics& g = global_metrics();
      g.batches.add();
      g.batch_size.record(batch.size());
      for (const Request& request : batch) {
        g.queue_wait.record(dequeue_ns - request.submit_ns);
      }
    }

    values.resize(batch.size());
    for (std::size_t i = 0; i < batch.size(); ++i) {
      values[i] = std::move(batch[i].values);
    }
    std::exception_ptr error;
    try {
      backend.predict_batch(values, predictions, parallel);
    } catch (...) {
      error = std::current_exception();
    }

    // Record before fulfilling the promises: once a caller's get()
    // returns, stats() must already account for that request.
    const std::uint64_t done_ns = telemetry::now_ns();
    service_hist_.record(done_ns - dequeue_ns);
    for (const Request& request : batch) {
      latency_hist_.record(done_ns - request.submit_ns);
    }
    completed_.add(batch.size());
    if (mirror) {
      GlobalServerMetrics& g = global_metrics();
      g.service.record(done_ns - dequeue_ns);
      for (const Request& request : batch) {
        g.latency.record(done_ns - request.submit_ns);
      }
      g.completed.add(batch.size());
    }

    if (error != nullptr) {
      for (auto& request : batch) {
        request.promise.set_exception(error);
      }
    } else {
      for (std::size_t i = 0; i < batch.size(); ++i) {
        batch[i].promise.set_value(std::move(predictions[i]));
      }
    }
  }
}

}  // namespace univsa::runtime
