// String-keyed backend registry/factory.
//
// Callers select an inference implementation by name (`--backend=packed`)
// instead of hard-wiring a concrete type; new execution paths (remote
// shards, emulated deployments, instrumented backends in tests) register
// a factory and every consumer — CLI, benches, Server, parity harness —
// can serve through them unchanged.
//
// Built-in backends, installed on first use:
//   reference — Model::predict_reference, the scalar baseline
//   packed    — vsa::InferEngine, the zero-allocation production path
//   hwsim     — the bit-true hardware functional simulator w/ cycles
#pragma once

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "univsa/runtime/backend.h"

namespace univsa::runtime {

using BackendFactory =
    std::function<std::unique_ptr<Backend>(const vsa::Model&)>;

/// Registers (or replaces) a factory under `name`. Thread-safe.
void register_backend(const std::string& name, BackendFactory factory);

/// True when `name` resolves to a registered factory.
bool has_backend(const std::string& name);

/// Sorted names of every registered backend.
std::vector<std::string> backend_names();

/// The registry default ("packed") — what callers should serve with
/// when the user expressed no preference.
const std::string& default_backend();

/// Instantiates the named backend over `model` (not owned; must outlive
/// the backend). Throws std::invalid_argument for unknown names, listing
/// the registered ones.
std::unique_ptr<Backend> make_backend(const std::string& name,
                                      const vsa::Model& model);

}  // namespace univsa::runtime
