// Cross-backend parity harness.
//
// Replaces the ad-hoc "engine vs accelerator" spot-check loops that were
// copy-pasted across examples and tests: runs a sample set through every
// requested backend and asserts the Predictions are *bit-identical* —
// same label AND same per-class score vector — against the first backend
// (the baseline, "reference" by default). This is the repo's standing
// guarantee that the software serving path and the bit-true hardware
// model can never drift apart silently.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "univsa/data/dataset.h"
#include "univsa/vsa/model.h"

namespace univsa::runtime {

struct ParityMismatch {
  std::string backend;
  std::size_t sample = 0;
  vsa::Prediction expected;  ///< the baseline backend's prediction
  vsa::Prediction actual;
};

struct ParityReport {
  std::string baseline;               ///< backend the others are held to
  std::vector<std::string> backends;  ///< everything compared (incl. baseline)
  std::size_t samples = 0;
  std::size_t compared = 0;       ///< (backends-1) × samples comparisons
  std::size_t mismatch_count = 0;
  /// First few mismatches, for diagnostics (capped; see mismatch_count
  /// for the true total).
  std::vector<ParityMismatch> mismatches;
  /// Wall seconds each backend spent on its predict_batch sweep, aligned
  /// with `backends`. Purely informational — parity is about bits, but
  /// the per-backend cost contrast (reference vs packed vs hwsim) is
  /// free to collect here and summary() reports it.
  std::vector<double> backend_seconds;

  bool ok() const { return mismatch_count == 0; }
  std::string summary() const;
};

/// Runs `samples` through every backend in `backends` (empty = all
/// registered) and compares bit-exactly against the first. Backends are
/// instantiated fresh from the registry, so the check covers exactly what
/// a consumer would be served. Throws std::invalid_argument for unknown
/// backend names or an empty sample set.
ParityReport verify_parity(const vsa::Model& model,
                           const std::vector<std::vector<std::uint16_t>>& samples,
                           std::vector<std::string> backends = {});

/// Dataset convenience overload (labels are ignored — parity is about
/// agreement between implementations, not accuracy).
ParityReport verify_parity(const vsa::Model& model,
                           const data::Dataset& dataset,
                           std::vector<std::string> backends = {});

}  // namespace univsa::runtime
