// Online adaptation under drift: the serve-time loop that keeps a
// tenant's model fresh.
//
// Generalizes bench_online_adaptation into a first-class subsystem:
//   observe(sample, label, prediction)
//     -> bounded reservoir of recent labeled traffic (deterministic
//        Vitter algorithm-R sampling)
//     -> windowed drift detector (trailing accuracy + similarity-margin
//        shift vs a frozen baseline window)
//     -> on drift: train::refresh_class_vectors on the reservoir and
//        publish the refreshed model to the ModelRegistry — the same
//        RCU hot-swap path every other publish takes, so serving never
//        pauses and in-flight work finishes on its old snapshot.
//
// Everything is deterministic for a fixed (options, traffic order), so
// CI can diff two same-seed runs of the mixed-traffic drill.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "univsa/common/rng.h"
#include "univsa/data/dataset.h"
#include "univsa/runtime/model_registry.h"
#include "univsa/train/online_retrainer.h"
#include "univsa/vsa/model.h"

namespace univsa::runtime {

struct DriftDetectorOptions {
  /// Observations that freeze the baseline accuracy/margin estimate.
  std::size_t baseline_window = 128;
  /// Trailing window compared against the baseline.
  std::size_t recent_window = 64;
  /// Trigger: baseline accuracy minus trailing accuracy >= this.
  double accuracy_drop = 0.10;
  /// Trigger: trailing mean margin <= this fraction of baseline margin
  /// (catches confidence erosion before accuracy visibly falls).
  /// <= 0 disables the margin trigger.
  double margin_fraction = 0.5;
};

/// Windowed accuracy / similarity-margin shift detector. Not
/// thread-safe: one detector serves one observation stream (the
/// AdaptationDriver's).
class DriftDetector {
 public:
  explicit DriftDetector(DriftDetectorOptions options = {});

  /// Feeds one labeled outcome. `margin` is the prediction's normalized
  /// score margin (AdaptationDriver::margin).
  void observe(bool correct, double margin);

  /// True once the baseline froze, the trailing window filled, and
  /// either trigger fired.
  bool drifted() const;

  /// Restarts baseline collection (after a model refresh: the old
  /// baseline described the old model).
  void rebaseline();

  std::size_t observed() const { return observed_; }
  bool baseline_frozen() const {
    return baseline_count_ >= options_.baseline_window;
  }
  double baseline_accuracy() const;
  double baseline_margin() const;
  /// Trailing-window accuracy (0 while the window is empty).
  double recent_accuracy() const;
  double recent_margin() const;

 private:
  DriftDetectorOptions options_;
  std::size_t observed_ = 0;
  // Frozen baseline accumulators.
  std::size_t baseline_count_ = 0;
  std::size_t baseline_correct_ = 0;
  double baseline_margin_sum_ = 0.0;
  // Trailing ring buffer.
  std::vector<std::uint8_t> ring_correct_;
  std::vector<double> ring_margin_;
  std::size_t ring_size_ = 0;
  std::size_t ring_next_ = 0;
  std::size_t ring_correct_sum_ = 0;
  double ring_margin_sum_ = 0.0;
};

/// Bounded uniform sample of recent labeled traffic (Vitter's
/// algorithm R, deterministic for a fixed seed + arrival order).
class TrafficReservoir {
 public:
  TrafficReservoir(std::size_t capacity, std::uint64_t seed);

  void add(const std::vector<std::uint16_t>& values, int label);
  std::size_t size() const { return values_.size(); }
  std::size_t seen() const { return seen_; }
  std::size_t capacity() const { return capacity_; }
  void clear();

  /// Materializes the current sample as a Dataset with the given
  /// geometry (the tenant model's config).
  data::Dataset dataset(std::size_t windows, std::size_t length,
                        std::size_t classes, std::size_t levels) const;

 private:
  std::size_t capacity_;
  Rng rng_;
  std::size_t seen_ = 0;
  std::vector<std::vector<std::uint16_t>> values_;
  std::vector<int> labels_;
};

struct AdaptationOptions {
  DriftDetectorOptions detector;
  /// Reservoir capacity (recent labeled samples retained). The
  /// reservoir restarts when drift latches, so a refresh trains on
  /// post-drift traffic only.
  std::size_t reservoir_capacity = 256;
  /// Minimum reservoir fill before a refresh may trigger — counted
  /// from the drift event (see above), i.e. drifted samples.
  std::size_t min_refresh_samples = 64;
  /// Observations that must pass after a refresh before the next one
  /// (on top of the detector's own rebaseline).
  std::size_t refresh_cooldown = 128;
  /// Passed to train::refresh_class_vectors.
  train::OnlineRetrainOptions retrain;
  /// Reservoir sampling seed.
  std::uint64_t seed = 17;
};

/// Drives one tenant's refresh loop against a ModelRegistry. Feed every
/// labeled serving outcome through observe(); when the drift detector
/// fires (and the reservoir holds enough), the driver retrains the
/// class vectors on the reservoir and publishes the refreshed model —
/// a registry hot-swap, wait-free for concurrent readers.
///
/// Not thread-safe: one driver per tenant observation stream. The
/// registry it publishes to may be shared with live servers.
class AdaptationDriver {
 public:
  AdaptationDriver(std::shared_ptr<ModelRegistry> registry,
                   std::string tenant, AdaptationOptions options = {});

  /// Normalized similarity margin of a prediction: (top - runner_up) /
  /// (|top| + |runner_up| + 1), in [-1, 1]; higher = more confident.
  static double margin(const vsa::Prediction& prediction);

  /// Records one labeled outcome. Returns true when this observation
  /// triggered a refresh (a new model version was published).
  bool observe(const std::vector<std::uint16_t>& values, int label,
               const vsa::Prediction& prediction);

  /// Forces a refresh from the current reservoir regardless of the
  /// detector (throws if the reservoir is empty). Returns the published
  /// version.
  std::uint64_t refresh_now();

  const DriftDetector& detector() const { return detector_; }
  const TrafficReservoir& reservoir() const { return reservoir_; }
  std::uint64_t refreshes() const { return refreshes_; }
  std::uint64_t drift_events() const { return drift_events_; }
  const std::string& tenant() const { return tenant_; }

 private:
  std::shared_ptr<ModelRegistry> registry_;
  std::string tenant_;
  AdaptationOptions options_;
  DriftDetector detector_;
  TrafficReservoir reservoir_;
  std::uint64_t refreshes_ = 0;
  std::uint64_t drift_events_ = 0;
  std::size_t observations_since_refresh_ = 0;
  bool drift_latched_ = false;
};

}  // namespace univsa::runtime
