#include "univsa/runtime/model_registry.h"

#include <algorithm>

#include "univsa/common/contracts.h"
#include "univsa/telemetry/flight_recorder.h"
#include "univsa/telemetry/metrics.h"

namespace univsa::runtime {

namespace {

// Process-wide registry telemetry: publish volume, hot-swap volume
// (publishes that replaced an existing latest), and tenant population.
struct RegistryMetrics {
  telemetry::Counter& publishes =
      telemetry::counter("runtime.registry.publishes_total");
  telemetry::Counter& hot_swaps =
      telemetry::counter("runtime.registry.hot_swaps_total");
  telemetry::Gauge& tenants = telemetry::gauge("runtime.registry.tenants");
};

RegistryMetrics& registry_metrics() {
  static RegistryMetrics g;
  return g;
}

[[noreturn]] void throw_unknown_tenant(
    const std::string& name, const std::vector<std::string>& known) {
  std::string what = "unknown tenant \"" + name + "\"; registry holds ";
  if (known.empty()) {
    what += "no tenants";
  } else {
    what += "{";
    for (std::size_t i = 0; i < known.size(); ++i) {
      if (i != 0) what += ", ";
      what += known[i];
    }
    what += "}";
  }
  throw UnknownTenant(what);
}

}  // namespace

std::uint64_t ModelRegistry::Tenant::version_count() const {
  std::lock_guard<std::mutex> lock(history_mutex_);
  return history_.size();
}

SnapshotPtr ModelRegistry::Tenant::version(std::uint64_t version) const {
  std::lock_guard<std::mutex> lock(history_mutex_);
  if (version == 0 || version > history_.size()) return nullptr;
  return history_[version - 1];
}

ModelRegistry::Tenant& ModelRegistry::tenant_for_publish(
    const std::string& name) {
  {
    std::shared_lock<std::shared_mutex> lock(tenants_mutex_);
    auto it = tenants_.find(name);
    if (it != tenants_.end()) return *it->second;
  }
  std::unique_lock<std::shared_mutex> lock(tenants_mutex_);
  auto it = tenants_.find(name);
  if (it == tenants_.end()) {
    it = tenants_.emplace(name, std::unique_ptr<Tenant>(new Tenant(name)))
             .first;
    if (telemetry::enabled()) {
      registry_metrics().tenants.set(static_cast<double>(tenants_.size()));
    }
  }
  return *it->second;
}

std::uint64_t ModelRegistry::publish(const std::string& tenant_name,
                                     vsa::Model model) {
  UNIVSA_REQUIRE(!tenant_name.empty(), "tenant name must be non-empty");
  UNIVSA_REQUIRE(tenant_name.find('@') == std::string::npos,
                 "tenant name cannot contain '@' (version separator)");
  Tenant& tenant = tenant_for_publish(tenant_name);

  SnapshotPtr snapshot;
  std::uint64_t version = 0;
  {
    // Serialize publishers per tenant; the version is the history slot.
    std::lock_guard<std::mutex> lock(tenant.history_mutex_);
    version = tenant.history_.size() + 1;
    snapshot = std::make_shared<const ModelSnapshot>(tenant_name, version,
                                                     std::move(model));
    tenant.history_.push_back(snapshot);
  }
  // The hot swap: one atomic pointer flip. Readers holding the previous
  // snapshot keep it alive through their shared_ptr; new resolutions see
  // the fresh version immediately.
  tenant.latest_.store(snapshot, std::memory_order_release);
  if (telemetry::enabled()) {
    RegistryMetrics& g = registry_metrics();
    g.publishes.add();
    if (version > 1) {
      g.hot_swaps.add();
      telemetry::flightrec_record(telemetry::FlightEventType::kHotSwap,
                                  tenant_name.c_str(), version,
                                  version - 1);
    }
  }
  return version;
}

const ModelRegistry::Tenant* ModelRegistry::find_tenant(
    const std::string& tenant) const {
  std::shared_lock<std::shared_mutex> lock(tenants_mutex_);
  auto it = tenants_.find(tenant);
  return it == tenants_.end() ? nullptr : it->second.get();
}

const ModelRegistry::Tenant& ModelRegistry::tenant(
    const std::string& tenant_name) const {
  const Tenant* tenant = find_tenant(tenant_name);
  if (tenant == nullptr) throw_unknown_tenant(tenant_name, tenant_names());
  return *tenant;
}

SnapshotPtr ModelRegistry::latest(const std::string& tenant_name) const {
  return tenant(tenant_name).latest();
}

SnapshotPtr ModelRegistry::resolve(const std::string& key) const {
  auto [tenant_name, version] = parse_key(key);
  const Tenant& entry = tenant(tenant_name);
  if (!version.has_value()) return entry.latest();
  SnapshotPtr snapshot = entry.version(*version);
  UNIVSA_REQUIRE(snapshot != nullptr,
                 "tenant \"" + tenant_name + "\" has no version " +
                     std::to_string(*version) + " (latest is " +
                     std::to_string(entry.version_count()) + ")");
  return snapshot;
}

std::vector<std::string> ModelRegistry::tenant_names() const {
  std::shared_lock<std::shared_mutex> lock(tenants_mutex_);
  std::vector<std::string> names;
  names.reserve(tenants_.size());
  for (const auto& [name, tenant] : tenants_) names.push_back(name);
  return names;  // std::map iteration is already sorted
}

std::size_t ModelRegistry::tenant_count() const {
  std::shared_lock<std::shared_mutex> lock(tenants_mutex_);
  return tenants_.size();
}

std::pair<std::string, std::optional<std::uint64_t>>
ModelRegistry::parse_key(const std::string& key) {
  const std::size_t at = key.find('@');
  std::string tenant = key.substr(0, at);
  UNIVSA_REQUIRE(!tenant.empty(),
                 "model key must start with a tenant name: \"" + key + "\"");
  if (at == std::string::npos) return {std::move(tenant), std::nullopt};
  const std::string suffix = key.substr(at + 1);
  if (suffix == "latest") return {std::move(tenant), std::nullopt};
  UNIVSA_REQUIRE(!suffix.empty() &&
                     std::all_of(suffix.begin(), suffix.end(),
                                 [](unsigned char c) {
                                   return c >= '0' && c <= '9';
                                 }),
                 "model key version must be \"latest\" or a positive "
                 "integer: \"" +
                     key + "\"");
  const std::uint64_t version = std::stoull(suffix);
  UNIVSA_REQUIRE(version > 0, "model versions are 1-based: \"" + key + "\"");
  return {std::move(tenant), version};
}

}  // namespace univsa::runtime
