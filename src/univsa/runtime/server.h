// Micro-batching serving front-end over a runtime::Backend, with a
// robustness layer: per-request deadlines, priority classes with
// overload shedding, bounded retry-with-backoff on the blocking path,
// health states, and deterministic fault injection.
//
// The first real serving layer toward the ROADMAP's production-scale
// system: callers submit single samples from any number of threads; the
// server coalesces concurrent requests into micro-batches under a
// (max_batch, max_delay_us) policy and dispatches them to per-worker
// backend instances (backends are single-caller; the Model is shared).
//
// Semantics, all covered by tests (tests/runtime/server_test.cpp,
// robustness_test.cpp, fault_test.cpp, stats_race_test.cpp):
//   - Correctness is batching-invariant: every request's Prediction is
//     bit-identical to a direct backend call, for any batch split,
//     worker count, or submitter interleaving.
//   - Backpressure: the request queue is bounded. submit() blocks until
//     space frees up (or retries with exponential backoff when
//     SubmitOptions::max_retries is set, throwing ServerOverloaded once
//     exhausted); try_submit() returns kOverloaded instead.
//   - Deadlines: a request whose deadline passes while still queued is
//     rejected with DeadlineExceeded through its future instead of
//     consuming a batch slot.
//   - Priorities + shedding: requests are dequeued highest class first.
//     Once queue depth crosses the shed watermark, new kLow work is
//     refused (kShed); at full capacity an arriving higher-priority
//     request evicts the youngest queued kLow request (its future gets
//     RequestShed) rather than being turned away.
//   - Health: kServing -> kDegraded while depth sits above the
//     watermark (with hysteresis at half the watermark), kDraining once
//     shutdown begins. Exposed via ServerStats::health and the
//     "runtime.server.health_state" gauge; every transition counts.
//   - Shutdown drains: requests accepted before shutdown() are all
//     served (or deadline-rejected); submissions after it are refused.
#pragma once

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <future>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "univsa/runtime/backend.h"
#include "univsa/runtime/fault.h"
#include "univsa/telemetry/metrics.h"
#include "univsa/vsa/model.h"

namespace univsa::runtime {

/// Admission classes. Shedding removes kLow work first; workers drain
/// the highest non-empty class first (FIFO within a class).
enum class Priority : std::uint8_t { kLow = 0, kNormal = 1, kHigh = 2 };
inline constexpr std::size_t kPriorityClasses = 3;

const char* to_string(Priority priority);

struct ServerOptions {
  /// Registry name of the backend each worker serves with.
  std::string backend = "packed";
  /// Worker threads, each owning one backend instance (0 = 1).
  std::size_t workers = 1;
  /// Largest micro-batch handed to a backend in one dispatch.
  std::size_t max_batch = 32;
  /// How long a worker holds an under-full batch open waiting for more
  /// requests to coalesce, measured from when it sees the first one.
  /// 0 = dispatch whatever is queued immediately.
  std::size_t max_delay_us = 100;
  /// Bound on queued (not yet dispatched) requests — the backpressure
  /// knob: submit() blocks and try_submit() rejects when full.
  std::size_t queue_capacity = 1024;
  /// Queue depth at which admission control starts shedding kLow work
  /// and health degrades. 0 = derive 3/4 of queue_capacity (min 1).
  std::size_t shed_watermark = 0;
  /// Let a backend spread each micro-batch over the global thread pool
  /// (only backends with capabilities().parallel_batch do).
  bool parallel_batch = true;
  /// Deterministic fault-injection plan (runtime/fault.h): every worker
  /// backend is wrapped in a FaultInjectedBackend on its own lane.
  /// Null (the default) injects nothing.
  std::shared_ptr<FaultPlan> fault_plan;
};

/// Per-request robustness knobs; default-constructed == the original
/// submit semantics (normal priority, no deadline, block forever).
struct SubmitOptions {
  Priority priority = Priority::kNormal;
  /// Relative deadline measured from submission; 0 = none. Expiry while
  /// queued rejects the request with DeadlineExceeded (the batch slot
  /// goes to a live request instead). Expiry mid-dispatch does not
  /// cancel the backend call — the result is still delivered.
  std::uint64_t deadline_us = 0;
  /// Blocking-path overload policy: 0 = block until space (classic
  /// backpressure); N > 0 = wait with exponential backoff at most N
  /// times, then throw ServerOverloaded.
  std::size_t max_retries = 0;
  /// First backoff wait; doubles after every retry. 0 falls back to
  /// 100 us.
  std::uint64_t retry_backoff_us = 100;
};

enum class SubmitStatus {
  kOk,
  kOverloaded,        ///< queue at capacity (try_submit / retries spent)
  kShed,              ///< admission control refused kLow work
  kDeadlineExceeded,  ///< deadline passed while queued (via the future)
  kShutdown
};

/// Base for every robustness-layer refusal; carries the SubmitStatus so
/// callers can switch on one code whether the refusal arrived as a
/// thrown exception (submit) or through a request future.
class RequestRefused : public std::runtime_error {
 public:
  RequestRefused(SubmitStatus status, const std::string& what)
      : std::runtime_error(what), status_(status) {}
  SubmitStatus status() const { return status_; }

 private:
  SubmitStatus status_;
};

class DeadlineExceeded : public RequestRefused {
 public:
  explicit DeadlineExceeded(const std::string& what)
      : RequestRefused(SubmitStatus::kDeadlineExceeded, what) {}
};

class RequestShed : public RequestRefused {
 public:
  explicit RequestShed(const std::string& what)
      : RequestRefused(SubmitStatus::kShed, what) {}
};

class ServerOverloaded : public RequestRefused {
 public:
  explicit ServerOverloaded(const std::string& what)
      : RequestRefused(SubmitStatus::kOverloaded, what) {}
};

/// Server availability, coarsest first. Transitions are counted and the
/// current state is exported as the "runtime.server.health_state" gauge
/// (0 = serving, 1 = degraded, 2 = draining).
enum class HealthState : std::uint8_t {
  kServing = 0,   ///< queue below the shed watermark
  kDegraded = 1,  ///< at/above the watermark; kLow admissions shed
  kDraining = 2   ///< shutdown started; serving the backlog only
};

const char* to_string(HealthState state);

/// Point-in-time view of one Server's telemetry. Sourced from the
/// per-instance lock-free metrics (telemetry::Counter/LatencyHistogram
/// members merged on read), not from a mutex-guarded struct; the same
/// event stream also feeds the process-wide "runtime.server.*" metrics
/// in the global registry for Prometheus/JSON scrapes.
struct ServerStats {
  std::uint64_t submitted = 0;
  std::uint64_t rejected = 0;   ///< try_submit refusals while full
  std::uint64_t completed = 0;
  std::uint64_t batches = 0;    ///< backend dispatches
  std::uint64_t shed = 0;       ///< kLow admissions refused + evictions
  std::uint64_t deadline_rejected = 0;  ///< expired while queued
  std::uint64_t retries = 0;    ///< backoff waits on the blocking path
  std::uint64_t health_transitions = 0;
  HealthState health = HealthState::kServing;
  std::size_t max_batch_observed = 0;
  std::size_t max_queue_depth = 0;
  /// Requests queued (not yet dispatched) at the time of the call — the
  /// live queue-depth gauge.
  std::size_t queue_depth = 0;

  // Full distributions (count/sum/min/max/percentiles), previously only
  // approximated by the scalar fields above.
  telemetry::HistogramSnapshot batch_sizes;    ///< per-dispatch batch size
  telemetry::HistogramSnapshot queue_wait_ns;  ///< submit -> dequeue
  telemetry::HistogramSnapshot service_ns;     ///< backend dispatch time
  telemetry::HistogramSnapshot latency_ns;     ///< submit -> result set

  double mean_batch() const {
    return batches == 0 ? 0.0
                        : static_cast<double>(completed) /
                              static_cast<double>(batches);
  }
};

class Server {
 public:
  /// Spins up `options.workers` threads, each with its own backend from
  /// the registry. The model must outlive the server.
  explicit Server(const vsa::Model& model, ServerOptions options = {});

  /// Drains and joins (see shutdown()).
  ~Server();

  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  /// Enqueues one sample and returns the future Prediction. Blocks while
  /// the queue is at capacity (backpressure) unless options.max_retries
  /// bounds the wait. Throws std::runtime_error once the server is shut
  /// down, RequestShed when admission control refuses kLow work, and
  /// ServerOverloaded when bounded retries are exhausted. The future
  /// itself can deliver DeadlineExceeded / RequestShed / InjectedFault.
  std::future<vsa::Prediction> submit(std::vector<std::uint16_t> values,
                                      const SubmitOptions& options = {});

  /// Non-blocking submit: kOverloaded when the queue is full, kShed when
  /// admission control refuses the request, kShutdown after shutdown();
  /// `out` is only set on kOk.
  SubmitStatus try_submit(std::vector<std::uint16_t> values,
                          std::future<vsa::Prediction>* out);
  SubmitStatus try_submit(std::vector<std::uint16_t> values,
                          const SubmitOptions& options,
                          std::future<vsa::Prediction>* out);

  /// Stops accepting new requests, serves everything already queued, and
  /// joins the workers. Idempotent; safe to call from any thread.
  void shutdown();

  bool accepting() const;
  std::size_t worker_count() const { return workers_.size(); }
  std::size_t queue_depth() const;
  /// The resolved shed watermark (see ServerOptions::shed_watermark).
  std::size_t shed_watermark() const { return watermark_; }
  HealthState health() const;
  const ServerOptions& options() const { return options_; }
  ServerStats stats() const;

 private:
  struct Request {
    std::vector<std::uint16_t> values;
    std::promise<vsa::Prediction> promise;
    std::uint64_t submit_ns = 0;    ///< telemetry::now_ns() at enqueue
    std::uint64_t deadline_ns = 0;  ///< absolute; 0 = none
    Priority priority = Priority::kNormal;
  };

  void worker_loop(std::size_t worker);
  /// Admission decision with mutex_ held. On kOk the request has been
  /// enqueued; when a full queue forces an eviction, `evicted` receives
  /// the kLow request whose promise the caller must fail *after*
  /// unlocking (promise work never runs under mutex_).
  SubmitStatus admit_locked(Request&& request,
                            std::optional<Request>& evicted);
  /// Shared enqueue bookkeeping; called with mutex_ held.
  void note_enqueued_locked();
  /// Pops the highest-priority queued request; total_queued_ > 0.
  Request pop_highest_locked();
  /// Recomputes health from (stopping_, total_queued_) and records any
  /// transition; called with mutex_ held.
  void update_health_locked();

  ServerOptions options_;
  std::size_t watermark_ = 0;  ///< resolved shed watermark
  std::vector<std::unique_ptr<Backend>> backends_;  // one per worker

  mutable std::mutex mutex_;
  std::condition_variable queue_cv_;  ///< workers wait for requests
  std::condition_variable space_cv_;  ///< submitters wait for capacity
  std::deque<Request> queues_[kPriorityClasses];  ///< FIFO per class
  std::size_t total_queued_ = 0;
  bool stopping_ = false;
  HealthState health_ = HealthState::kServing;  // guarded by mutex_

  // Per-instance telemetry — the source of truth behind stats(). These
  // always record (ServerStats works even when the global registry is
  // disabled); the worker/submit paths additionally mirror them into the
  // process-wide "runtime.server.*" registry metrics when telemetry is
  // enabled. Counters/histograms are lock-free; the two scalar maxima
  // are only touched with mutex_ already held.
  telemetry::Counter submitted_;
  telemetry::Counter rejected_;
  telemetry::Counter completed_;
  telemetry::Counter batches_;
  telemetry::Counter shed_;
  telemetry::Counter deadline_rejected_;
  telemetry::Counter retries_;
  telemetry::Counter health_transitions_;
  telemetry::LatencyHistogram batch_hist_;       ///< batch size per dispatch
  telemetry::LatencyHistogram queue_wait_hist_;  ///< ns, submit -> dequeue
  telemetry::LatencyHistogram service_hist_;     ///< ns per backend dispatch
  telemetry::LatencyHistogram latency_hist_;     ///< ns, submit -> result
  std::size_t max_batch_observed_ = 0;  // guarded by mutex_
  std::size_t max_queue_depth_ = 0;     // guarded by mutex_

  std::mutex join_mutex_;
  std::vector<std::thread> workers_;
};

}  // namespace univsa::runtime
