// Micro-batching serving front-end over a runtime::ModelRegistry, with a
// robustness layer: per-request deadlines, priority classes with
// overload shedding, bounded retry-with-backoff on the blocking path,
// health states, deterministic fault injection — and multi-tenant
// routing: every request names a registry tenant, batches never mix
// models, and admission control enforces per-tenant QoS policies.
//
// The serving layer toward the ROADMAP's production-scale system:
// callers submit single samples from any number of threads; the server
// coalesces concurrent requests into micro-batches under a
// (max_batch, max_delay_us) policy and dispatches them to per-worker
// backend instances built over immutable model snapshots.
//
// Semantics, all covered by tests (tests/runtime/server_test.cpp,
// robustness_test.cpp, fault_test.cpp, stats_race_test.cpp,
// model_registry_test.cpp, zoo_test.cpp):
//   - Correctness is batching-invariant: every request's Prediction is
//     bit-identical to a direct backend call on the model snapshot the
//     request resolved at submit time, for any batch split, worker
//     count, or submitter interleaving.
//   - Multi-tenant coalescing: a micro-batch only ever contains requests
//     that resolved the *same* ModelSnapshot (same tenant AND version);
//     requests for other snapshots stay queued for a later dispatch.
//     Combined with submit-time snapshot resolution this makes registry
//     hot-swaps drop nothing: in-flight and queued work finishes on the
//     snapshot it resolved, new submissions see the new version.
//   - Per-tenant QoS: ServerOptions::tenant_policies caps a tenant's
//     priority class and bounds its queued share (admission quota);
//     quota overflow is shed (kShed) and counted per tenant.
//   - Backpressure: the request queue is bounded. submit() blocks until
//     space frees up (or retries with exponential backoff when
//     SubmitOptions::max_retries is set, throwing ServerOverloaded once
//     exhausted); try_submit() returns kOverloaded instead.
//   - Deadlines: a request whose deadline passes while still queued is
//     rejected with DeadlineExceeded through its future instead of
//     consuming a batch slot.
//   - Priorities + shedding: requests are dequeued highest class first.
//     Once queue depth crosses the shed watermark, new kLow work is
//     refused (kShed); at full capacity an arriving higher-priority
//     request evicts the youngest queued kLow request (its future gets
//     RequestShed) rather than being turned away.
//   - Health: kServing -> kDegraded while depth sits above the
//     watermark (with hysteresis at half the watermark), kDraining once
//     shutdown begins. Exposed via ServerStats::health and the
//     "runtime.server.health_state" gauge; every transition counts.
//   - Shutdown drains: requests accepted before shutdown() are all
//     served (or deadline-rejected); submissions after it are refused.
#pragma once

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <future>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "univsa/runtime/backend.h"
#include "univsa/runtime/fault.h"
#include "univsa/runtime/model_registry.h"
#include "univsa/telemetry/metrics.h"
#include "univsa/telemetry/trace.h"
#include "univsa/vsa/model.h"

namespace univsa::runtime {

/// Admission classes. Shedding removes kLow work first; workers drain
/// the highest non-empty class first (FIFO within a class).
enum class Priority : std::uint8_t { kLow = 0, kNormal = 1, kHigh = 2 };
inline constexpr std::size_t kPriorityClasses = 3;

const char* to_string(Priority priority);

/// Per-tenant QoS policy (ServerOptions::tenant_policies). Tenants
/// without an entry get the permissive defaults below.
struct TenantPolicy {
  /// Highest priority class this tenant may run at; a request asking
  /// for more is silently clamped (batch tenants stay sheddable no
  /// matter what the caller requests).
  Priority max_priority = Priority::kHigh;
  /// Admission quota: max requests this tenant may have queued at once;
  /// the excess is shed (kShed) and counted in the tenant's shed
  /// counter. 0 = unbounded (global capacity still applies).
  std::size_t queue_quota = 0;
};

struct ServerOptions {
  /// Registry name of the backend each worker serves with.
  std::string backend = "packed";
  /// Worker threads, each owning a small cache of backend instances
  /// keyed by model snapshot (0 = 1).
  std::size_t workers = 1;
  /// Largest micro-batch handed to a backend in one dispatch.
  std::size_t max_batch = 32;
  /// How long a worker holds an under-full batch open waiting for more
  /// requests to coalesce, measured from when it sees the first one.
  /// 0 = dispatch whatever is queued immediately.
  std::size_t max_delay_us = 100;
  /// Bound on queued (not yet dispatched) requests — the backpressure
  /// knob: submit() blocks and try_submit() rejects when full.
  std::size_t queue_capacity = 1024;
  /// Queue depth at which admission control starts shedding kLow work
  /// and health degrades. 0 = derive 3/4 of queue_capacity (min 1).
  std::size_t shed_watermark = 0;
  /// Let a backend spread each micro-batch over the global thread pool
  /// (only backends with capabilities().parallel_batch do).
  bool parallel_batch = true;
  /// Deterministic fault-injection plan (runtime/fault.h): every worker
  /// backend is wrapped in a FaultInjectedBackend on the worker's lane.
  /// Null (the default) injects nothing.
  std::shared_ptr<FaultPlan> fault_plan;
  /// Tenant used when SubmitOptions::tenant is empty — what the legacy
  /// single-model constructor publishes its model under.
  std::string default_tenant = "default";
  /// Per-tenant QoS policies, keyed by tenant name.
  std::map<std::string, TenantPolicy> tenant_policies;
  /// Per-worker cap on cached backend instances (distinct model
  /// snapshots served without a rebuild); least-recently-used beyond it.
  std::size_t backend_cache = 4;
  /// Request-scoped tracing: sample every Nth admitted request into a
  /// complete parent-linked span tree (submit, queue wait, batch,
  /// backend stages) in the telemetry trace ring. The decision is made
  /// once at admission by a global counter — coherent per request, not
  /// per probe. 0 disables sampling; requests arriving with their own
  /// SubmitOptions::trace are always recorded.
  std::size_t trace_sample_every = 64;
};

/// Per-request robustness knobs; default-constructed == the original
/// submit semantics (default tenant, normal priority, no deadline,
/// block forever).
struct SubmitOptions {
  /// Registry tenant whose latest model serves this request; empty =
  /// ServerOptions::default_tenant. The snapshot is resolved at submit
  /// time, so a hot-swap between submit and dispatch does not change
  /// (or drop) the answer.
  std::string tenant;
  Priority priority = Priority::kNormal;
  /// Relative deadline measured from submission; 0 = none. Expiry while
  /// queued rejects the request with DeadlineExceeded (the batch slot
  /// goes to a live request instead). Expiry mid-dispatch does not
  /// cancel the backend call — the result is still delivered.
  std::uint64_t deadline_us = 0;
  /// Blocking-path overload policy: 0 = block until space (classic
  /// backpressure); N > 0 = wait with exponential backoff at most N
  /// times, then throw ServerOverloaded.
  std::size_t max_retries = 0;
  /// First backoff wait; doubles after every retry. 0 falls back to
  /// 100 us.
  std::uint64_t retry_backoff_us = 100;
  /// Propagate an existing trace (e.g. a front-end that already made
  /// the sampling decision): when sampled(), this request joins that
  /// trace unconditionally. Default (unsampled) lets the server decide
  /// per ServerOptions::trace_sample_every.
  telemetry::TraceContext trace;
};

enum class SubmitStatus {
  kOk,
  kOverloaded,        ///< queue at capacity (try_submit / retries spent)
  kShed,              ///< admission control refused the request
  kDeadlineExceeded,  ///< deadline passed while queued (via the future)
  kShutdown,
  kUnknownTenant      ///< SubmitOptions::tenant not in the registry
};

/// Base for every robustness-layer refusal; carries the SubmitStatus so
/// callers can switch on one code whether the refusal arrived as a
/// thrown exception (submit) or through a request future.
class RequestRefused : public std::runtime_error {
 public:
  RequestRefused(SubmitStatus status, const std::string& what)
      : std::runtime_error(what), status_(status) {}
  SubmitStatus status() const { return status_; }

 private:
  SubmitStatus status_;
};

class DeadlineExceeded : public RequestRefused {
 public:
  explicit DeadlineExceeded(const std::string& what)
      : RequestRefused(SubmitStatus::kDeadlineExceeded, what) {}
};

class RequestShed : public RequestRefused {
 public:
  explicit RequestShed(const std::string& what)
      : RequestRefused(SubmitStatus::kShed, what) {}
};

class ServerOverloaded : public RequestRefused {
 public:
  explicit ServerOverloaded(const std::string& what)
      : RequestRefused(SubmitStatus::kOverloaded, what) {}
};

/// Server availability, coarsest first. Transitions are counted and the
/// current state is exported as the "runtime.server.health_state" gauge
/// (0 = serving, 1 = degraded, 2 = draining).
enum class HealthState : std::uint8_t {
  kServing = 0,   ///< queue below the shed watermark
  kDegraded = 1,  ///< at/above the watermark; kLow admissions shed
  kDraining = 2   ///< shutdown started; serving the backlog only
};

const char* to_string(HealthState state);

/// Point-in-time view of one Server's telemetry. Sourced from the
/// per-instance lock-free metrics (telemetry::Counter/LatencyHistogram
/// members merged on read), not from a mutex-guarded struct; the same
/// event stream also feeds the process-wide "runtime.server.*" metrics
/// in the global registry for Prometheus/JSON scrapes.
struct ServerStats {
  std::uint64_t submitted = 0;
  std::uint64_t rejected = 0;   ///< try_submit refusals while full
  std::uint64_t completed = 0;
  std::uint64_t batches = 0;    ///< backend dispatches
  std::uint64_t shed = 0;       ///< admissions refused + evictions
  std::uint64_t deadline_rejected = 0;  ///< expired while queued
  std::uint64_t retries = 0;    ///< backoff waits on the blocking path
  std::uint64_t unknown_tenant = 0;  ///< submissions naming no tenant
  std::uint64_t health_transitions = 0;
  HealthState health = HealthState::kServing;
  std::size_t max_batch_observed = 0;
  std::size_t max_queue_depth = 0;
  /// Requests queued (not yet dispatched) at the time of the call — the
  /// live queue-depth gauge.
  std::size_t queue_depth = 0;

  // Full distributions (count/sum/min/max/percentiles), previously only
  // approximated by the scalar fields above.
  telemetry::HistogramSnapshot batch_sizes;    ///< per-dispatch batch size
  telemetry::HistogramSnapshot queue_wait_ns;  ///< submit -> dequeue
  telemetry::HistogramSnapshot service_ns;     ///< backend dispatch time
  telemetry::HistogramSnapshot latency_ns;     ///< submit -> result set

  /// Per-tenant slice of the same event stream (QoS accounting).
  struct TenantStats {
    std::uint64_t submitted = 0;
    std::uint64_t completed = 0;
    std::uint64_t shed = 0;  ///< quota + watermark refusals + evictions
    std::uint64_t deadline_rejected = 0;
    std::size_t queued = 0;  ///< live queue share at the time of the call
    telemetry::HistogramSnapshot latency_ns;  ///< submit -> result set
  };
  /// Keyed by tenant name; a tenant appears once it has submitted.
  std::map<std::string, TenantStats> tenants;

  double mean_batch() const {
    return batches == 0 ? 0.0
                        : static_cast<double>(completed) /
                              static_cast<double>(batches);
  }
};

class Server {
 public:
  /// Serves every tenant of `registry` (shared: publishes from other
  /// threads hot-swap live). Spins up `options.workers` threads.
  Server(std::shared_ptr<ModelRegistry> registry, ServerOptions options);

  /// Single-model convenience (the pre-registry API): builds a private
  /// registry and publishes a copy of `model` as
  /// `options.default_tenant@1`. The model is copied — it need not
  /// outlive the server.
  explicit Server(const vsa::Model& model, ServerOptions options = {});

  /// Drains and joins (see shutdown()).
  ~Server();

  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  /// Enqueues one sample and returns the future Prediction. Blocks while
  /// the queue is at capacity (backpressure) unless options.max_retries
  /// bounds the wait. Throws std::runtime_error once the server is shut
  /// down, UnknownTenant for an unpublished tenant, RequestShed when
  /// admission control refuses the request (kLow watermark or tenant
  /// quota), and ServerOverloaded when bounded retries are exhausted.
  /// The future itself can deliver DeadlineExceeded / RequestShed /
  /// InjectedFault.
  std::future<vsa::Prediction> submit(std::vector<std::uint16_t> values,
                                      const SubmitOptions& options = {});

  /// Non-blocking submit: kOverloaded when the queue is full, kShed when
  /// admission control refuses the request, kUnknownTenant for an
  /// unpublished tenant, kShutdown after shutdown(); `out` is only set
  /// on kOk.
  SubmitStatus try_submit(std::vector<std::uint16_t> values,
                          std::future<vsa::Prediction>* out);
  SubmitStatus try_submit(std::vector<std::uint16_t> values,
                          const SubmitOptions& options,
                          std::future<vsa::Prediction>* out);

  /// Completion callback for the event-driven front-end path (the
  /// network tier's epoll loop): exactly one of the two arguments is
  /// meaningful — a Prediction on success, or the exception the future
  /// path would have delivered (DeadlineExceeded, RequestShed,
  /// InjectedFault, ...). Runs on a worker thread for completions and
  /// deadline rejections, or on the *evicting* submitter's thread when
  /// this request is the kLow victim of a capacity eviction. Callbacks
  /// must be cheap and must not throw; stats() already accounts for
  /// the request by the time one runs (the same stats-before-
  /// fulfillment invariant the future path keeps).
  using Completion =
      std::function<void(vsa::Prediction&&, std::exception_ptr)>;

  /// Non-blocking submit that fulfills through `done` instead of a
  /// future — no thread parks on the result, so an IO loop can keep
  /// thousands of requests in flight. Returns the same statuses as
  /// try_submit; `done` is invoked later only on kOk (refusals are
  /// reported synchronously through the return value and never call
  /// it).
  SubmitStatus try_submit_async(std::vector<std::uint16_t> values,
                                const SubmitOptions& options,
                                Completion done);

  /// Stops accepting new requests, serves everything already queued, and
  /// joins the workers. Idempotent; safe to call from any thread.
  void shutdown();

  bool accepting() const;
  std::size_t worker_count() const { return workers_.size(); }
  std::size_t queue_depth() const;
  /// The resolved shed watermark (see ServerOptions::shed_watermark).
  std::size_t shed_watermark() const { return watermark_; }
  HealthState health() const;
  const ServerOptions& options() const { return options_; }
  /// The registry this server routes through (never null).
  const std::shared_ptr<ModelRegistry>& registry() const {
    return registry_;
  }
  ServerStats stats() const;

 private:
  /// Per-tenant serving state; created on a tenant's first submission
  /// and stable for the server's lifetime (requests keep raw pointers).
  struct TenantState {
    std::string name;
    TenantPolicy policy;
    std::size_t queued = 0;  // guarded by mutex_
    // Per-instance counters behind ServerStats::tenants (lock-free).
    telemetry::Counter submitted;
    telemetry::Counter completed;
    telemetry::Counter shed;
    telemetry::Counter deadline_rejected;
    telemetry::LatencyHistogram latency;
    // Global labeled mirrors ("runtime.server.tenant_*{tenant=...}");
    // resolved once at creation.
    telemetry::Counter* g_completed = nullptr;
    telemetry::Counter* g_shed = nullptr;
    telemetry::LatencyHistogram* g_latency = nullptr;
  };

  struct Request {
    std::vector<std::uint16_t> values;
    std::promise<vsa::Prediction> promise;
    /// Set on the async path; fulfill_value/fulfill_error route to it
    /// instead of the promise.
    Completion on_complete;
    std::uint64_t submit_ns = 0;    ///< telemetry::now_ns() at enqueue
    std::uint64_t deadline_ns = 0;  ///< absolute; 0 = none
    Priority priority = Priority::kNormal;
    /// The model version this request serves on, resolved at submit.
    SnapshotPtr snapshot;
    TenantState* tenant = nullptr;
    /// Sampled trace identity (trace_id 0 = untraced — the common case;
    /// every trace touch downstream is guarded on it).
    telemetry::TraceContext trace;
    std::uint64_t root_span = 0;  ///< "server.request" span id
    std::uint64_t entry_ns = 0;   ///< submit() entry (root span start)
  };

  void worker_loop(std::size_t worker);
  /// Deliver a result/failure through whichever channel the request
  /// carries (callback or promise). Every fulfillment site goes
  /// through these so the async path cannot drift from the future
  /// path. Never called with mutex_ held.
  static void fulfill_value(Request& request, vsa::Prediction&& value);
  static void fulfill_error(Request& request, std::exception_ptr error);
  /// Shared non-blocking admission body behind try_submit and
  /// try_submit_async: tenant/snapshot resolution, trace sampling,
  /// admission, eviction fallout, and the submit span.
  SubmitStatus try_submit_impl(Request&& request,
                               const SubmitOptions& options);
  /// Admission decision with mutex_ held. On kOk the request has been
  /// enqueued; when a full queue forces an eviction, `evicted` receives
  /// the kLow request whose promise the caller must fail *after*
  /// unlocking (promise work never runs under mutex_). On kShed,
  /// `shed_reason` (when non-null) gets a static description.
  SubmitStatus admit_locked(Request&& request,
                            std::optional<Request>& evicted,
                            const char** shed_reason);
  /// Shared enqueue bookkeeping; called with mutex_ held.
  void note_enqueued_locked();
  /// Extracts the next micro-batch: the highest-priority non-expired
  /// request leads, then every queued request sharing its ModelSnapshot
  /// joins (priority order, FIFO within class) up to max_batch — one
  /// batch never mixes snapshots. Deadline-expired requests encountered
  /// during the scan are moved to `expired` regardless of tenant.
  void collect_batch_locked(std::vector<Request>& batch,
                            std::vector<Request>& expired,
                            std::uint64_t now);
  /// Resolve-or-create the per-tenant state; called with mutex_ held.
  TenantState& tenant_state_locked(const std::string& name);
  /// Recomputes health from (stopping_, total_queued_) and records any
  /// transition; called with mutex_ held.
  void update_health_locked();
  /// Resolves SubmitOptions::tenant against the registry (outside
  /// mutex_); null when the tenant was never published.
  const ModelRegistry::Tenant* resolve_tenant(
      const SubmitOptions& options, const std::string** name) const;

  ServerOptions options_;
  std::size_t watermark_ = 0;  ///< resolved shed watermark
  std::shared_ptr<ModelRegistry> registry_;

  mutable std::mutex mutex_;
  std::condition_variable queue_cv_;  ///< workers wait for requests
  std::condition_variable space_cv_;  ///< submitters wait for capacity
  std::deque<Request> queues_[kPriorityClasses];  ///< FIFO per class
  std::size_t total_queued_ = 0;
  bool stopping_ = false;
  HealthState health_ = HealthState::kServing;  // guarded by mutex_
  /// Tenant states; map shape guarded by mutex_, entries stable.
  std::map<std::string, std::unique_ptr<TenantState>> tenant_states_;

  // Per-instance telemetry — the source of truth behind stats(). These
  // always record (ServerStats works even when the global registry is
  // disabled); the worker/submit paths additionally mirror them into the
  // process-wide "runtime.server.*" registry metrics when telemetry is
  // enabled. Counters/histograms are lock-free; the two scalar maxima
  // are only touched with mutex_ already held.
  telemetry::Counter submitted_;
  telemetry::Counter rejected_;
  telemetry::Counter completed_;
  telemetry::Counter batches_;
  telemetry::Counter shed_;
  telemetry::Counter deadline_rejected_;
  telemetry::Counter retries_;
  telemetry::Counter unknown_tenant_;
  telemetry::Counter health_transitions_;
  telemetry::LatencyHistogram batch_hist_;       ///< batch size per dispatch
  telemetry::LatencyHistogram queue_wait_hist_;  ///< ns, submit -> dequeue
  telemetry::LatencyHistogram service_hist_;     ///< ns per backend dispatch
  telemetry::LatencyHistogram latency_hist_;     ///< ns, submit -> result
  std::size_t max_batch_observed_ = 0;  // guarded by mutex_
  std::size_t max_queue_depth_ = 0;     // guarded by mutex_

  std::mutex join_mutex_;
  std::vector<std::thread> workers_;
};

}  // namespace univsa::runtime
