// Micro-batching serving front-end over a runtime::Backend.
//
// The first real serving layer toward the ROADMAP's production-scale
// system: callers submit single samples from any number of threads; the
// server coalesces concurrent requests into micro-batches under a
// (max_batch, max_delay_us) policy and dispatches them to per-worker
// backend instances (backends are single-caller; the Model is shared).
//
// Semantics, all covered by tests (tests/runtime/server_test.cpp):
//   - Correctness is batching-invariant: every request's Prediction is
//     bit-identical to a direct backend call, for any batch split,
//     worker count, or submitter interleaving.
//   - Backpressure: the request queue is bounded. submit() blocks until
//     space frees up; try_submit() returns kOverloaded instead.
//   - Shutdown drains: requests accepted before shutdown() are all
//     served; submissions after it are refused (kShutdown / throw).
#pragma once

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <future>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "univsa/runtime/backend.h"
#include "univsa/telemetry/metrics.h"
#include "univsa/vsa/model.h"

namespace univsa::runtime {

struct ServerOptions {
  /// Registry name of the backend each worker serves with.
  std::string backend = "packed";
  /// Worker threads, each owning one backend instance (0 = 1).
  std::size_t workers = 1;
  /// Largest micro-batch handed to a backend in one dispatch.
  std::size_t max_batch = 32;
  /// How long a worker holds an under-full batch open waiting for more
  /// requests to coalesce, measured from when it sees the first one.
  /// 0 = dispatch whatever is queued immediately.
  std::size_t max_delay_us = 100;
  /// Bound on queued (not yet dispatched) requests — the backpressure
  /// knob: submit() blocks and try_submit() rejects when full.
  std::size_t queue_capacity = 1024;
  /// Let a backend spread each micro-batch over the global thread pool
  /// (only backends with capabilities().parallel_batch do).
  bool parallel_batch = true;
};

enum class SubmitStatus { kOk, kOverloaded, kShutdown };

/// Point-in-time view of one Server's telemetry. Sourced from the
/// per-instance lock-free metrics (telemetry::Counter/LatencyHistogram
/// members merged on read), not from a mutex-guarded struct; the same
/// event stream also feeds the process-wide "runtime.server.*" metrics
/// in the global registry for Prometheus/JSON scrapes.
struct ServerStats {
  std::uint64_t submitted = 0;
  std::uint64_t rejected = 0;   ///< try_submit refusals while full
  std::uint64_t completed = 0;
  std::uint64_t batches = 0;    ///< backend dispatches
  std::size_t max_batch_observed = 0;
  std::size_t max_queue_depth = 0;
  /// Requests queued (not yet dispatched) at the time of the call — the
  /// live queue-depth gauge.
  std::size_t queue_depth = 0;

  // Full distributions (count/sum/min/max/percentiles), previously only
  // approximated by the scalar fields above.
  telemetry::HistogramSnapshot batch_sizes;    ///< per-dispatch batch size
  telemetry::HistogramSnapshot queue_wait_ns;  ///< submit -> dequeue
  telemetry::HistogramSnapshot service_ns;     ///< backend dispatch time
  telemetry::HistogramSnapshot latency_ns;     ///< submit -> result set

  double mean_batch() const {
    return batches == 0 ? 0.0
                        : static_cast<double>(completed) /
                              static_cast<double>(batches);
  }
};

class Server {
 public:
  /// Spins up `options.workers` threads, each with its own backend from
  /// the registry. The model must outlive the server.
  explicit Server(const vsa::Model& model, ServerOptions options = {});

  /// Drains and joins (see shutdown()).
  ~Server();

  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  /// Enqueues one sample and returns the future Prediction. Blocks while
  /// the queue is at capacity (backpressure). Throws std::runtime_error
  /// once the server is shut down.
  std::future<vsa::Prediction> submit(std::vector<std::uint16_t> values);

  /// Non-blocking submit: kOverloaded when the queue is full, kShutdown
  /// after shutdown(); `out` is only set on kOk.
  SubmitStatus try_submit(std::vector<std::uint16_t> values,
                          std::future<vsa::Prediction>* out);

  /// Stops accepting new requests, serves everything already queued, and
  /// joins the workers. Idempotent; safe to call from any thread.
  void shutdown();

  bool accepting() const;
  std::size_t worker_count() const { return workers_.size(); }
  std::size_t queue_depth() const;
  const ServerOptions& options() const { return options_; }
  ServerStats stats() const;

 private:
  struct Request {
    std::vector<std::uint16_t> values;
    std::promise<vsa::Prediction> promise;
    std::uint64_t submit_ns = 0;  ///< telemetry::now_ns() at enqueue
  };

  void worker_loop(std::size_t worker);
  /// Shared enqueue bookkeeping; called with mutex_ held.
  void note_enqueued_locked();

  ServerOptions options_;
  std::vector<std::unique_ptr<Backend>> backends_;  // one per worker

  mutable std::mutex mutex_;
  std::condition_variable queue_cv_;  ///< workers wait for requests
  std::condition_variable space_cv_;  ///< submitters wait for capacity
  std::deque<Request> queue_;
  bool stopping_ = false;

  // Per-instance telemetry — the source of truth behind stats(). These
  // always record (ServerStats works even when the global registry is
  // disabled); the worker/submit paths additionally mirror them into the
  // process-wide "runtime.server.*" registry metrics when telemetry is
  // enabled. Counters/histograms are lock-free; the two scalar maxima
  // are only touched with mutex_ already held.
  telemetry::Counter submitted_;
  telemetry::Counter rejected_;
  telemetry::Counter completed_;
  telemetry::Counter batches_;
  telemetry::LatencyHistogram batch_hist_;       ///< batch size per dispatch
  telemetry::LatencyHistogram queue_wait_hist_;  ///< ns, submit -> dequeue
  telemetry::LatencyHistogram service_hist_;     ///< ns per backend dispatch
  telemetry::LatencyHistogram latency_hist_;     ///< ns, submit -> result
  std::size_t max_batch_observed_ = 0;  // guarded by mutex_
  std::size_t max_queue_depth_ = 0;     // guarded by mutex_

  std::mutex join_mutex_;
  std::vector<std::thread> workers_;
};

}  // namespace univsa::runtime
