#include "univsa/runtime/adaptation.h"

#include <algorithm>
#include <cmath>

#include "univsa/common/contracts.h"
#include "univsa/telemetry/flight_recorder.h"
#include "univsa/telemetry/metrics.h"

namespace univsa::runtime {

namespace {

struct AdaptMetrics {
  telemetry::Counter& refreshes =
      telemetry::counter("runtime.adapt.refreshes_total");
  telemetry::Counter& drift_events =
      telemetry::counter("runtime.adapt.drift_events_total");
  telemetry::Gauge& recent_accuracy =
      telemetry::gauge("runtime.adapt.recent_accuracy");
};

AdaptMetrics& adapt_metrics() {
  static AdaptMetrics g;
  return g;
}

}  // namespace

// --- DriftDetector -----------------------------------------------------

DriftDetector::DriftDetector(DriftDetectorOptions options)
    : options_(options) {
  UNIVSA_REQUIRE(options_.baseline_window >= 1,
                 "baseline_window must be positive");
  UNIVSA_REQUIRE(options_.recent_window >= 1,
                 "recent_window must be positive");
  ring_correct_.assign(options_.recent_window, 0);
  ring_margin_.assign(options_.recent_window, 0.0);
}

void DriftDetector::observe(bool correct, double margin) {
  ++observed_;
  if (baseline_count_ < options_.baseline_window) {
    ++baseline_count_;
    baseline_correct_ += correct ? 1 : 0;
    baseline_margin_sum_ += margin;
    return;
  }
  if (ring_size_ == options_.recent_window) {
    ring_correct_sum_ -= ring_correct_[ring_next_];
    ring_margin_sum_ -= ring_margin_[ring_next_];
  } else {
    ++ring_size_;
  }
  ring_correct_[ring_next_] = correct ? 1 : 0;
  ring_margin_[ring_next_] = margin;
  ring_correct_sum_ += correct ? 1 : 0;
  ring_margin_sum_ += margin;
  ring_next_ = (ring_next_ + 1) % options_.recent_window;
}

double DriftDetector::baseline_accuracy() const {
  return baseline_count_ == 0 ? 0.0
                              : static_cast<double>(baseline_correct_) /
                                    static_cast<double>(baseline_count_);
}

double DriftDetector::baseline_margin() const {
  return baseline_count_ == 0
             ? 0.0
             : baseline_margin_sum_ / static_cast<double>(baseline_count_);
}

double DriftDetector::recent_accuracy() const {
  return ring_size_ == 0 ? 0.0
                         : static_cast<double>(ring_correct_sum_) /
                               static_cast<double>(ring_size_);
}

double DriftDetector::recent_margin() const {
  return ring_size_ == 0
             ? 0.0
             : ring_margin_sum_ / static_cast<double>(ring_size_);
}

bool DriftDetector::drifted() const {
  if (!baseline_frozen() || ring_size_ < options_.recent_window) {
    return false;
  }
  if (baseline_accuracy() - recent_accuracy() >= options_.accuracy_drop) {
    return true;
  }
  return options_.margin_fraction > 0.0 && baseline_margin() > 0.0 &&
         recent_margin() <= options_.margin_fraction * baseline_margin();
}

void DriftDetector::rebaseline() {
  baseline_count_ = 0;
  baseline_correct_ = 0;
  baseline_margin_sum_ = 0.0;
  std::fill(ring_correct_.begin(), ring_correct_.end(), 0);
  std::fill(ring_margin_.begin(), ring_margin_.end(), 0.0);
  ring_size_ = 0;
  ring_next_ = 0;
  ring_correct_sum_ = 0;
  ring_margin_sum_ = 0.0;
}

// --- TrafficReservoir --------------------------------------------------

TrafficReservoir::TrafficReservoir(std::size_t capacity, std::uint64_t seed)
    : capacity_(capacity), rng_(seed) {
  UNIVSA_REQUIRE(capacity_ >= 1, "reservoir capacity must be positive");
  values_.reserve(capacity_);
  labels_.reserve(capacity_);
}

void TrafficReservoir::add(const std::vector<std::uint16_t>& values,
                           int label) {
  ++seen_;
  if (values_.size() < capacity_) {
    values_.push_back(values);
    labels_.push_back(label);
    return;
  }
  // Algorithm R: the n-th arrival replaces a uniform slot with
  // probability capacity/n.
  const std::size_t slot = rng_.uniform_index(seen_);
  if (slot < capacity_) {
    values_[slot] = values;
    labels_[slot] = label;
  }
}

void TrafficReservoir::clear() {
  values_.clear();
  labels_.clear();
  seen_ = 0;
}

data::Dataset TrafficReservoir::dataset(std::size_t windows,
                                        std::size_t length,
                                        std::size_t classes,
                                        std::size_t levels) const {
  data::Dataset out(windows, length, classes, levels);
  for (std::size_t i = 0; i < values_.size(); ++i) {
    out.add(values_[i], labels_[i]);
  }
  return out;
}

// --- AdaptationDriver --------------------------------------------------

AdaptationDriver::AdaptationDriver(std::shared_ptr<ModelRegistry> registry,
                                   std::string tenant,
                                   AdaptationOptions options)
    : registry_(std::move(registry)),
      tenant_(std::move(tenant)),
      options_(options),
      detector_(options.detector),
      reservoir_(options.reservoir_capacity, options.seed) {
  UNIVSA_REQUIRE(registry_ != nullptr, "registry must be non-null");
  UNIVSA_REQUIRE(options_.min_refresh_samples >= 1,
                 "min_refresh_samples must be positive");
  // Resolve the tenant now so a typo fails here, not on the first
  // refresh; also registers the runtime.adapt.* metrics.
  (void)registry_->latest(tenant_);
  if (telemetry::enabled()) (void)adapt_metrics();
}

double AdaptationDriver::margin(const vsa::Prediction& prediction) {
  if (prediction.scores.size() < 2) return 1.0;
  long long top = prediction.scores[0];
  long long runner = prediction.scores[1];
  if (runner > top) std::swap(top, runner);
  for (std::size_t i = 2; i < prediction.scores.size(); ++i) {
    const long long s = prediction.scores[i];
    if (s > top) {
      runner = top;
      top = s;
    } else if (s > runner) {
      runner = s;
    }
  }
  const double denom = std::abs(static_cast<double>(top)) +
                       std::abs(static_cast<double>(runner)) + 1.0;
  return static_cast<double>(top - runner) / denom;
}

bool AdaptationDriver::observe(const std::vector<std::uint16_t>& values,
                               int label,
                               const vsa::Prediction& prediction) {
  reservoir_.add(values, label);
  const bool correct = prediction.label == label;
  detector_.observe(correct, margin(prediction));
  ++observations_since_refresh_;
  if (telemetry::enabled()) {
    adapt_metrics().recent_accuracy.set(detector_.recent_accuracy());
  }
  if (!drift_latched_ && detector_.drifted()) {
    drift_latched_ = true;
    ++drift_events_;
    // The reservoir is a uniform sample over everything seen, which at
    // this point is dominated by pre-drift traffic; restart it so the
    // refresh trains on the post-drift distribution. min_refresh_samples
    // then gates the refresh on enough *drifted* samples.
    reservoir_.clear();
    if (telemetry::enabled()) {
      adapt_metrics().drift_events.add();
      telemetry::flightrec_record(
          telemetry::FlightEventType::kDriftLatched, tenant_.c_str(),
          drift_events_,
          static_cast<std::uint64_t>(detector_.recent_accuracy() * 1000.0));
    }
  }
  if (drift_latched_ &&
      reservoir_.size() >= options_.min_refresh_samples &&
      observations_since_refresh_ >= options_.refresh_cooldown) {
    refresh_now();
    return true;
  }
  return false;
}

std::uint64_t AdaptationDriver::refresh_now() {
  UNIVSA_REQUIRE(reservoir_.size() > 0,
                 "cannot refresh from an empty reservoir");
  SnapshotPtr snapshot = registry_->latest(tenant_);
  const vsa::ModelConfig& config = snapshot->model().config();
  data::Dataset recent =
      reservoir_.dataset(config.W, config.L, config.C, config.M);
  train::OnlineRetrainResult result = train::refresh_class_vectors(
      snapshot->model(), recent, refreshes_, options_.retrain);
  const std::uint64_t version =
      registry_->publish(tenant_, std::move(result.model));
  ++refreshes_;
  observations_since_refresh_ = 0;
  drift_latched_ = false;
  detector_.rebaseline();
  if (telemetry::enabled()) adapt_metrics().refreshes.add();
  return version;
}

}  // namespace univsa::runtime
