#include "univsa/runtime/fault.h"

#include "univsa/telemetry/flight_recorder.h"
#include "univsa/telemetry/metrics.h"

namespace univsa::runtime {

namespace {

// splitmix64 — the schedule's only source of randomness. Chosen over
// common/rng.h so a (seed, lane, sequence) triple maps to a decision
// with no per-lane generator state to snapshot or replay.
std::uint64_t mix(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}

double unit_interval(std::uint64_t h) {
  return static_cast<double>(h >> 11) * 0x1.0p-53;
}

struct GlobalFaultMetrics {
  telemetry::Counter& errors =
      telemetry::counter("runtime.fault.injected_errors_total");
  telemetry::Counter& stalls =
      telemetry::counter("runtime.fault.injected_stalls_total");
  telemetry::Counter& slowdowns =
      telemetry::counter("runtime.fault.injected_slowdowns_total");
};

GlobalFaultMetrics& global_metrics() {
  static GlobalFaultMetrics g;
  return g;
}

}  // namespace

FaultPlan::FaultPlan(FaultSpec spec) : spec_(spec) {}

FaultDecision FaultPlan::at(std::size_t lane,
                            std::uint64_t sequence) const noexcept {
  if constexpr (!kFaultsCompiledIn) {
    (void)lane;
    (void)sequence;
    return {};
  }
  const std::uint64_t h =
      mix(spec_.seed ^ mix(static_cast<std::uint64_t>(lane) ^
                           (sequence << 20)));
  const double u = unit_interval(h);
  FaultDecision d;
  if (u < spec_.error_rate) {
    d.error = true;
  } else if (u < spec_.error_rate + spec_.stall_rate) {
    d.stall = true;
    d.delay_us = spec_.stall_us;
  } else if (u < spec_.error_rate + spec_.stall_rate + spec_.slowdown_rate) {
    d.delay_us = spec_.slowdown_us;
  }
  return d;
}

FaultDecision FaultPlan::next(std::size_t lane) noexcept {
  if constexpr (!kFaultsCompiledIn) {
    (void)lane;
    return {};
  }
  const std::size_t slot = lane % kMaxLanes;
  const std::uint64_t n =
      sequence_[slot].fetch_add(1, std::memory_order_relaxed);
  const FaultDecision d = at(lane, n);
  if (d.error) {
    errors_.fetch_add(1, std::memory_order_relaxed);
    if (telemetry::enabled()) {
      global_metrics().errors.add();
      telemetry::flightrec_record(telemetry::FlightEventType::kFaultInjected,
                                  "error", lane, n);
    }
  } else if (d.stall) {
    stalls_.fetch_add(1, std::memory_order_relaxed);
    if (telemetry::enabled()) {
      global_metrics().stalls.add();
      telemetry::flightrec_record(telemetry::FlightEventType::kFaultInjected,
                                  "stall", lane, n);
    }
  } else if (d.delay_us != 0) {
    slowdowns_.fetch_add(1, std::memory_order_relaxed);
    if (telemetry::enabled()) {
      global_metrics().slowdowns.add();
      telemetry::flightrec_record(telemetry::FlightEventType::kFaultInjected,
                                  "slowdown", lane, n);
    }
  }
  return d;
}

FaultSpec canned_overload_spec(std::uint64_t seed) {
  FaultSpec spec;
  spec.seed = seed;
  spec.error_rate = 0.03;
  spec.stall_rate = 0.02;
  spec.stall_us = 20000;
  spec.slowdown_rate = 0.10;
  spec.slowdown_us = 2000;
  return spec;
}

}  // namespace univsa::runtime
