// Versioned multi-tenant model registry with RCU-style hot swap.
//
// The single-model assumption stops here: a process serves many trained
// UniVSA configurations ("tenants" — one per workload family, e.g.
// `zoo/kws`, `zoo/anomaly`) from one ModelRegistry. Each publish() of a
// tenant installs an immutable ModelSnapshot under a monotonically
// increasing version; the latest pointer is flipped atomically
// (`std::atomic<std::shared_ptr>`), so
//   - readers are wait-free: resolving a model is one acquire load, no
//     lock shared with writers;
//   - swaps never invalidate in-flight work: a request (or batch) that
//     resolved snapshot N keeps serving on N until its shared_ptr drops,
//     even if N+1 was published mid-dispatch — classic RCU grace-period
//     semantics with shared_ptr as the reclamation mechanism;
//   - old versions stay addressable: `tenant@N` pins, `tenant` /
//     `tenant@latest` floats. Models are KB-scale, so the registry
//     retains every published version for reproducibility.
//
// Covered by tests/runtime/model_registry_test.cpp, including a
// TSan-covered drill that flips versions mid-flight under load and
// checks every completed answer is bit-exact under exactly one snapshot.
#pragma once

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <shared_mutex>
#include <stdexcept>
#include <string>
#include <utility>
#include <vector>

#include "univsa/vsa/model.h"

namespace univsa::runtime {

/// Thrown when a key names a tenant the registry has never seen; the
/// message lists the known tenants. Subclasses std::invalid_argument so
/// generic contract handling keeps working.
class UnknownTenant : public std::invalid_argument {
 public:
  using std::invalid_argument::invalid_argument;
};

/// One immutable published model version. Snapshots own their Model copy
/// and are only ever handed out as shared_ptr<const ModelSnapshot>, so a
/// holder can serve from it indefinitely regardless of later publishes.
class ModelSnapshot {
 public:
  ModelSnapshot(std::string tenant, std::uint64_t version, vsa::Model model)
      : tenant_(std::move(tenant)),
        version_(version),
        model_(std::move(model)) {}

  const std::string& tenant() const { return tenant_; }
  std::uint64_t version() const { return version_; }
  const vsa::Model& model() const { return model_; }
  /// Canonical pinned key, `tenant@version`.
  std::string key() const {
    return tenant_ + "@" + std::to_string(version_);
  }

 private:
  std::string tenant_;
  std::uint64_t version_;
  vsa::Model model_;
};

using SnapshotPtr = std::shared_ptr<const ModelSnapshot>;

class ModelRegistry {
 public:
  /// Stable per-tenant handle: never deallocated while the registry
  /// lives, so hot paths may cache the pointer once and then resolve the
  /// live model with a single wait-free atomic load per request.
  class Tenant {
   public:
    const std::string& name() const { return name_; }
    /// The current latest snapshot (wait-free; never null once the
    /// tenant exists — a tenant is created by its first publish).
    SnapshotPtr latest() const {
      return latest_.load(std::memory_order_acquire);
    }
    /// Number of versions published so far.
    std::uint64_t version_count() const;
    /// Pinned lookup; null when `version` was never published.
    SnapshotPtr version(std::uint64_t version) const;

   private:
    friend class ModelRegistry;
    explicit Tenant(std::string name) : name_(std::move(name)) {}

    std::string name_;
    std::atomic<SnapshotPtr> latest_;
    mutable std::mutex history_mutex_;
    std::vector<SnapshotPtr> history_;  // index i holds version i+1
  };

  ModelRegistry() = default;
  ModelRegistry(const ModelRegistry&) = delete;
  ModelRegistry& operator=(const ModelRegistry&) = delete;

  /// Publishes `model` as the next version of `tenant` (creating the
  /// tenant on first publish) and atomically flips the tenant's latest
  /// pointer — the hot-swap. Returns the assigned version (1-based,
  /// monotonic per tenant). Tenant names may contain '/' (zoo paths like
  /// "zoo/kws") but not '@' (reserved for the version suffix) and must
  /// be non-empty.
  std::uint64_t publish(const std::string& tenant, vsa::Model model);

  /// Resolves a key of the form `tenant`, `tenant@latest`, or
  /// `tenant@N`. Throws UnknownTenant for a tenant never published and
  /// std::invalid_argument for a malformed or never-published version.
  SnapshotPtr resolve(const std::string& key) const;

  /// Latest snapshot of `tenant`; throws UnknownTenant if missing.
  SnapshotPtr latest(const std::string& tenant) const;

  /// Stable handle lookup; null when the tenant was never published.
  /// The pointer remains valid for the registry's lifetime.
  const Tenant* find_tenant(const std::string& tenant) const;

  /// As find_tenant but throws UnknownTenant instead of returning null.
  const Tenant& tenant(const std::string& tenant_name) const;

  bool has_tenant(const std::string& tenant) const {
    return find_tenant(tenant) != nullptr;
  }

  /// Sorted tenant names.
  std::vector<std::string> tenant_names() const;
  std::size_t tenant_count() const;

  /// Splits `key` into (tenant, version); version is empty for bare
  /// `tenant` and `tenant@latest` forms. Throws std::invalid_argument on
  /// malformed keys (empty tenant, non-numeric version, version 0). The
  /// *first* '@' separates tenant from version.
  static std::pair<std::string, std::optional<std::uint64_t>> parse_key(
      const std::string& key);

 private:
  Tenant& tenant_for_publish(const std::string& name);

  mutable std::shared_mutex tenants_mutex_;  // guards the map shape only
  std::map<std::string, std::unique_ptr<Tenant>> tenants_;
};

}  // namespace univsa::runtime
