// Consistent-hash sharding tier over N NetServer endpoints.
//
// Placement: tenants hash onto a ring of virtual nodes (virtual_nodes
// points per shard, splitmix64-derived, platform-independent), so a
// tenant's home shard is a pure function of (tenant, shard count) and
// adding a shard moves only ~1/N of the keyspace. Every shard publishes
// every tenant (models are KB-scale — see docs/ARCHITECTURE.md), so
// failover may walk the ring to the next shard without losing
// correctness; the hash only concentrates a tenant's cache/adaptation
// locality on its home shard.
//
// Failover is health-gated: every response piggybacks the shard's
// HealthState, pings refresh it out-of-band, and candidate ordering
// prefers serving > degraded and skips draining or cooling-down
// endpoints (a transport failure starts a failure_backoff_ms cooldown).
// A request tries its home shard's replicas first (rotating for load
// spread), then successive ring shards; each hop counts
// router.failovers_total, a per-shard labeled counter, and a
// `failover` flight-recorder event.
//
// Hedged retries: a kHigh request's first attempt runs under the
// shorter hedge_timeout_ms; if that attempt times out, the request
// immediately hops to the next replica with the full budget (counted
// in router.hedges_total). Sequential hedging bounds tail latency
// without duplicating work on the happy path.
//
// Thread-safe: predict() may be called from any number of threads.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "univsa/net/net_client.h"
#include "univsa/net/protocol.h"
#include "univsa/runtime/server.h"
#include "univsa/vsa/model.h"

namespace univsa::net {

struct Endpoint {
  std::string host = "127.0.0.1";
  std::uint16_t port = 0;
};

struct ShardRouterOptions {
  /// shards[s] is the replica set of shard s; every shard needs at
  /// least one replica.
  std::vector<std::vector<Endpoint>> shards;
  /// Ring points per shard; more = smoother key distribution.
  std::size_t virtual_nodes = 64;
  /// Cooldown after a transport failure (or a draining health byte)
  /// before an endpoint is eligible again.
  std::uint64_t failure_backoff_ms = 200;
  /// First-attempt budget for kHigh requests; 0 disables hedging.
  std::uint64_t hedge_timeout_ms = 250;
  /// Cap on endpoints tried per request; 0 = every endpoint once.
  std::size_t max_attempts = 0;
  /// Template for the per-endpoint clients (host/port overwritten).
  /// client.max_retries stays per-endpoint; the router's failover is
  /// the cross-endpoint retry.
  NetClientOptions client;
};

struct RouterStats {
  std::uint64_t requests = 0;
  std::uint64_t completed = 0;
  std::uint64_t failovers = 0;  ///< endpoint hops after a failure
  std::uint64_t hedges = 0;     ///< kHigh first attempts that timed out
  std::uint64_t refused = 0;    ///< semantic refusals surfaced to callers
  std::uint64_t exhausted = 0;  ///< requests that ran out of endpoints
};

class ShardRouter {
 public:
  explicit ShardRouter(ShardRouterOptions options);
  ~ShardRouter();

  ShardRouter(const ShardRouter&) = delete;
  ShardRouter& operator=(const ShardRouter&) = delete;

  /// Routes by options.tenant (empty routes "default"): home shard's
  /// replicas first, then ring-successor shards. Throws the same
  /// exception hierarchy as NetClient::predict once an answer (or
  /// definitive refusal) arrives, or NetError when every candidate is
  /// exhausted.
  vsa::Prediction predict(const std::vector<std::uint16_t>& values,
                          const runtime::SubmitOptions& options = {});

  /// The ring placement for a tenant key (pure; no IO).
  std::size_t shard_for(const std::string& tenant) const;

  std::size_t shard_count() const { return states_.size(); }
  std::size_t replica_count(std::size_t shard) const {
    return states_[shard].size();
  }

  /// Pings one endpoint, refreshing its cached health. Throws NetError
  /// when it doesn't answer (and starts its cooldown).
  PongFrame probe(std::size_t shard, std::size_t replica);

  /// Cached view of one endpoint (no IO).
  struct EndpointStatus {
    Endpoint endpoint;
    std::uint8_t health = 0;  ///< last seen HealthState
    bool cooling = false;     ///< inside its failure backoff window
    std::uint64_t failures = 0;
  };
  std::vector<std::vector<EndpointStatus>> endpoints() const;

  RouterStats stats() const;

 private:
  struct EndpointState;

  void mark_failed(EndpointState& state) const;
  bool available(const EndpointState& state, std::uint64_t now_ns) const;

  ShardRouterOptions options_;
  /// Immutable after construction; per-endpoint fields are atomic.
  std::vector<std::vector<std::unique_ptr<EndpointState>>> states_;
  /// Sorted (point, shard) ring.
  std::vector<std::pair<std::uint64_t, std::uint32_t>> ring_;
  std::atomic<std::uint64_t> rr_{0};  ///< replica rotation seed
  std::atomic<std::uint64_t> requests_{0};
  std::atomic<std::uint64_t> completed_{0};
  std::atomic<std::uint64_t> failovers_{0};
  std::atomic<std::uint64_t> hedges_{0};
  std::atomic<std::uint64_t> refused_{0};
  std::atomic<std::uint64_t> exhausted_{0};
};

}  // namespace univsa::net
