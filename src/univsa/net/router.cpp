#include "univsa/net/router.h"

#include <algorithm>
#include <chrono>
#include <stdexcept>

#include "univsa/telemetry/flight_recorder.h"
#include "univsa/telemetry/metrics.h"

namespace univsa::net {

namespace {

struct GlobalRouterMetrics {
  telemetry::Counter& requests =
      telemetry::counter("router.requests_total");
  telemetry::Counter& completed =
      telemetry::counter("router.completed_total");
  telemetry::Counter& failovers =
      telemetry::counter("router.failovers_total");
  telemetry::Counter& hedges = telemetry::counter("router.hedges_total");
  telemetry::Counter& refused =
      telemetry::counter("router.refused_total");
  telemetry::Counter& exhausted =
      telemetry::counter("router.exhausted_total");
};

GlobalRouterMetrics& router_metrics() {
  static GlobalRouterMetrics g;
  return g;
}

std::uint64_t splitmix64(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}

std::uint64_t hash_key(const std::string& key) {
  // FNV-1a over the bytes, then a splitmix64 finalizer for avalanche —
  // platform-independent, so shard placement reproduces everywhere.
  std::uint64_t h = 0xcbf29ce484222325ull;
  for (const char c : key) {
    h ^= static_cast<std::uint8_t>(c);
    h *= 0x100000001b3ull;
  }
  return splitmix64(h);
}

std::uint64_t steady_now_ns() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

constexpr std::uint8_t kHealthDraining = 2;

// Definitive (non-failover) outcomes map onto the same exception
// hierarchy NetClient::predict throws.
[[noreturn]] void throw_refusal(const std::string& endpoint,
                                const NetClient::Result& result) {
  const std::string detail = result.message.empty()
                                 ? to_string(result.status)
                                 : result.message;
  switch (result.status) {
    case WireStatus::kShed:
      throw runtime::RequestShed(detail);
    case WireStatus::kDeadlineExceeded:
      throw runtime::DeadlineExceeded(detail);
    case WireStatus::kUnknownTenant:
      throw runtime::UnknownTenant(detail);
    case WireStatus::kBadFrame:
      throw NetError("protocol violation talking to " + endpoint + ": " +
                     detail);
    default:
      throw std::runtime_error("backend error from " + endpoint + ": " +
                               detail);
  }
}

}  // namespace

struct ShardRouter::EndpointState {
  Endpoint endpoint;
  std::size_t shard = 0;
  std::size_t replica = 0;
  std::string name;  ///< "host:port" for flight events
  std::unique_ptr<NetClient> client;
  std::atomic<std::uint8_t> health{0};
  std::atomic<std::uint64_t> cooldown_until_ns{0};
  std::atomic<std::uint64_t> failures{0};
  // Per-shard labeled mirrors, resolved once.
  telemetry::Counter* g_requests = nullptr;
  telemetry::Counter* g_failovers = nullptr;
};

ShardRouter::ShardRouter(ShardRouterOptions options)
    : options_(std::move(options)) {
  if (options_.shards.empty()) {
    throw std::invalid_argument("ShardRouter needs at least one shard");
  }
  if (options_.virtual_nodes == 0) options_.virtual_nodes = 1;
  states_.reserve(options_.shards.size());
  for (std::size_t s = 0; s < options_.shards.size(); ++s) {
    const auto& replicas = options_.shards[s];
    if (replicas.empty()) {
      throw std::invalid_argument("shard " + std::to_string(s) +
                                  " has no replicas");
    }
    const std::string shard_label = std::to_string(s);
    std::vector<std::unique_ptr<EndpointState>> shard_states;
    shard_states.reserve(replicas.size());
    for (std::size_t r = 0; r < replicas.size(); ++r) {
      auto state = std::make_unique<EndpointState>();
      state->endpoint = replicas[r];
      state->shard = s;
      state->replica = r;
      state->name = replicas[r].host + ":" +
                    std::to_string(replicas[r].port);
      NetClientOptions client = options_.client;
      client.host = replicas[r].host;
      client.port = replicas[r].port;
      state->client = std::make_unique<NetClient>(std::move(client));
      state->g_requests = &telemetry::counter(telemetry::labeled(
          "router.shard_requests", "shard", shard_label));
      state->g_failovers = &telemetry::counter(telemetry::labeled(
          "router.shard_failovers", "shard", shard_label));
      shard_states.push_back(std::move(state));
    }
    states_.push_back(std::move(shard_states));
    for (std::size_t v = 0; v < options_.virtual_nodes; ++v) {
      ring_.emplace_back(
          splitmix64((static_cast<std::uint64_t>(s) << 32) | v),
          static_cast<std::uint32_t>(s));
    }
  }
  std::sort(ring_.begin(), ring_.end());
  router_metrics();  // register the family before the first request
}

ShardRouter::~ShardRouter() = default;

std::size_t ShardRouter::shard_for(const std::string& tenant) const {
  const std::uint64_t point =
      hash_key(tenant.empty() ? "default" : tenant);
  auto it = std::upper_bound(
      ring_.begin(), ring_.end(),
      std::make_pair(point, std::uint32_t{0xffffffff}));
  if (it == ring_.end()) it = ring_.begin();  // wrap
  return it->second;
}

void ShardRouter::mark_failed(EndpointState& state) const {
  state.failures.fetch_add(1, std::memory_order_relaxed);
  state.cooldown_until_ns.store(
      steady_now_ns() + options_.failure_backoff_ms * 1'000'000ull,
      std::memory_order_relaxed);
}

bool ShardRouter::available(const EndpointState& state,
                            std::uint64_t now_ns) const {
  if (state.cooldown_until_ns.load(std::memory_order_relaxed) > now_ns) {
    return false;
  }
  return state.health.load(std::memory_order_relaxed) < kHealthDraining;
}

vsa::Prediction ShardRouter::predict(
    const std::vector<std::uint16_t>& values,
    const runtime::SubmitOptions& options) {
  requests_.fetch_add(1, std::memory_order_relaxed);
  if (telemetry::enabled()) router_metrics().requests.add();

  // Candidate order: the home shard's replicas (rotated so concurrent
  // callers spread), then ring-successor shards as failover targets.
  const std::size_t home = shard_for(options.tenant);
  const std::uint64_t rotation =
      rr_.fetch_add(1, std::memory_order_relaxed);
  std::vector<EndpointState*> candidates;
  for (std::size_t hop = 0; hop < states_.size(); ++hop) {
    const auto& shard = states_[(home + hop) % states_.size()];
    for (std::size_t r = 0; r < shard.size(); ++r) {
      candidates.push_back(
          shard[(rotation + r) % shard.size()].get());
    }
  }
  // Health gate: serving endpoints first, degraded after, draining or
  // cooling-down ones last-resort (stable partition keeps ring order
  // within each class).
  const std::uint64_t now_ns = steady_now_ns();
  std::stable_partition(candidates.begin(), candidates.end(),
                        [&](EndpointState* e) {
                          return available(*e, now_ns) &&
                                 e->health.load(
                                     std::memory_order_relaxed) == 0;
                        });
  std::stable_partition(candidates.begin(), candidates.end(),
                        [&](EndpointState* e) {
                          return available(*e, now_ns);
                        });
  const std::size_t attempts_cap =
      options_.max_attempts != 0
          ? std::min(options_.max_attempts, candidates.size())
          : candidates.size();

  const bool hedge = options.priority == runtime::Priority::kHigh &&
                     options_.hedge_timeout_ms != 0 &&
                     attempts_cap > 1;
  NetClient::Result last;
  vsa::Prediction prediction;
  for (std::size_t attempt = 0; attempt < attempts_cap; ++attempt) {
    EndpointState& state = *candidates[attempt];
    const std::uint64_t timeout_ms =
        (hedge && attempt == 0) ? options_.hedge_timeout_ms : 0;
    state.g_requests->add();
    last = state.client->predict_once(values, options, &prediction,
                                      timeout_ms);
    if (last.status != WireStatus::kTransport) {
      state.health.store(last.health, std::memory_order_relaxed);
      if (last.health >= kHealthDraining) {
        // The shard answered but is draining; keep this answer, steer
        // the next requests elsewhere for a backoff window.
        state.cooldown_until_ns.store(
            steady_now_ns() +
                options_.failure_backoff_ms * 1'000'000ull,
            std::memory_order_relaxed);
      }
    }
    switch (last.status) {
      case WireStatus::kOk:
        completed_.fetch_add(1, std::memory_order_relaxed);
        if (telemetry::enabled()) router_metrics().completed.add();
        return prediction;
      case WireStatus::kTransport:
      case WireStatus::kShutdown:
      case WireStatus::kOverloaded: {
        // Dead, draining, or full — another replica may serve.
        // Overload hops don't poison the endpoint (no cooldown); a
        // hedge-timeout hop is counted as a hedge, a genuine failure
        // as a failover with a flight event.
        const bool hedged =
            hedge && attempt == 0 && last.timed_out;
        if (last.status != WireStatus::kOverloaded && !hedged) {
          mark_failed(state);
        }
        if (attempt + 1 >= attempts_cap) break;  // nothing left to try
        if (hedged) {
          hedges_.fetch_add(1, std::memory_order_relaxed);
          if (telemetry::enabled()) router_metrics().hedges.add();
        } else {
          failovers_.fetch_add(1, std::memory_order_relaxed);
          state.g_failovers->add();
          if (telemetry::enabled()) {
            router_metrics().failovers.add();
            telemetry::flightrec_record(
                telemetry::FlightEventType::kFailover,
                state.name.c_str(), state.shard, state.replica);
          }
        }
        continue;
      }
      default:
        // Semantic refusal or backend error: the shard meant it —
        // surface through the NetClient exception mapping below.
        refused_.fetch_add(1, std::memory_order_relaxed);
        if (telemetry::enabled()) router_metrics().refused.add();
        throw_refusal(state.name, last);
    }
    break;
  }

  exhausted_.fetch_add(1, std::memory_order_relaxed);
  if (telemetry::enabled()) router_metrics().exhausted.add();
  if (last.status == WireStatus::kOverloaded) {
    throw runtime::ServerOverloaded(
        "every replica overloaded for tenant \"" + options.tenant +
        "\" (home shard " + std::to_string(home) + ")");
  }
  throw NetError("no endpoint reachable for tenant \"" + options.tenant +
                 "\" (home shard " + std::to_string(home) + ", " +
                 std::to_string(attempts_cap) + " attempts, last: " +
                 (last.message.empty() ? to_string(last.status)
                                       : last.message) +
                 ")");
}

PongFrame ShardRouter::probe(std::size_t shard, std::size_t replica) {
  EndpointState& state = *states_.at(shard).at(replica);
  try {
    const PongFrame pong = state.client->ping();
    state.health.store(pong.health, std::memory_order_relaxed);
    if (pong.health < kHealthDraining) {
      state.cooldown_until_ns.store(0, std::memory_order_relaxed);
    }
    return pong;
  } catch (const NetError&) {
    mark_failed(state);
    throw;
  }
}

std::vector<std::vector<ShardRouter::EndpointStatus>>
ShardRouter::endpoints() const {
  const std::uint64_t now_ns = steady_now_ns();
  std::vector<std::vector<EndpointStatus>> out;
  out.reserve(states_.size());
  for (const auto& shard : states_) {
    std::vector<EndpointStatus> row;
    row.reserve(shard.size());
    for (const auto& state : shard) {
      EndpointStatus status;
      status.endpoint = state->endpoint;
      status.health = state->health.load(std::memory_order_relaxed);
      status.cooling =
          state->cooldown_until_ns.load(std::memory_order_relaxed) >
          now_ns;
      status.failures = state->failures.load(std::memory_order_relaxed);
      row.push_back(status);
    }
    out.push_back(std::move(row));
  }
  return out;
}

RouterStats ShardRouter::stats() const {
  RouterStats stats;
  stats.requests = requests_.load(std::memory_order_relaxed);
  stats.completed = completed_.load(std::memory_order_relaxed);
  stats.failovers = failovers_.load(std::memory_order_relaxed);
  stats.hedges = hedges_.load(std::memory_order_relaxed);
  stats.refused = refused_.load(std::memory_order_relaxed);
  stats.exhausted = exhausted_.load(std::memory_order_relaxed);
  return stats;
}

}  // namespace univsa::net
