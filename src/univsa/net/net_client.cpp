#include "univsa/net/net_client.h"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstring>
#include <thread>

#include "univsa/telemetry/metrics.h"

namespace univsa::net {

namespace {

struct GlobalNetClientMetrics {
  telemetry::Counter& requests =
      telemetry::counter("net.client.requests_total");
  telemetry::Counter& retries =
      telemetry::counter("net.client.retries_total");
  telemetry::Counter& timeouts =
      telemetry::counter("net.client.timeouts_total");
  telemetry::Counter& transport_errors =
      telemetry::counter("net.client.transport_errors_total");
};

GlobalNetClientMetrics& client_metrics() {
  static GlobalNetClientMetrics g;
  return g;
}

std::uint64_t steady_ms() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::milliseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

}  // namespace

struct NetClient::Conn {
  int fd = -1;
  FrameDecoder decoder;

  ~Conn() {
    if (fd >= 0) ::close(fd);
  }

  /// Blocks (via poll) until the fd is ready for `events` or
  /// `deadline_ms` passes. Returns false on timeout/error.
  bool wait(short events, std::uint64_t deadline_ms, bool* timed_out) {
    const std::uint64_t now = steady_ms();
    if (now >= deadline_ms) {
      *timed_out = true;
      return false;
    }
    pollfd p{};
    p.fd = fd;
    p.events = events;
    const int rc = ::poll(&p, 1, static_cast<int>(deadline_ms - now));
    if (rc == 0) {
      *timed_out = true;
      return false;
    }
    return rc > 0 && (p.revents & (POLLERR | POLLHUP | POLLNVAL)) == 0;
  }

  bool send_all(const std::uint8_t* data, std::size_t size,
                std::uint64_t deadline_ms, bool* timed_out) {
    std::size_t off = 0;
    while (off < size) {
      const ssize_t sent =
          ::send(fd, data + off, size - off, MSG_NOSIGNAL);
      if (sent > 0) {
        off += static_cast<std::size_t>(sent);
        continue;
      }
      if (sent < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) {
        if (!wait(POLLOUT, deadline_ms, timed_out)) return false;
        continue;
      }
      return false;
    }
    return true;
  }

  /// Reads until the decoder yields a frame; false on timeout, close,
  /// or a decode error (sticky — caller discards the connection).
  bool read_frame(Frame& out, std::uint64_t deadline_ms,
                  bool* timed_out, std::string* why) {
    for (;;) {
      const FrameDecoder::Result result = decoder.next(out);
      if (result == FrameDecoder::Result::kFrame) return true;
      if (result == FrameDecoder::Result::kError) {
        *why = "malformed response: " + decoder.error();
        return false;
      }
      if (!wait(POLLIN, deadline_ms, timed_out)) {
        if (*timed_out) *why = "response deadline passed";
        return false;
      }
      std::uint8_t buf[16384];
      const ssize_t got = ::recv(fd, buf, sizeof(buf), 0);
      if (got > 0) {
        decoder.feed(buf, static_cast<std::size_t>(got));
        continue;
      }
      if (got < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) continue;
      *why = got == 0 ? "connection closed by peer"
                      : std::string("recv: ") + std::strerror(errno);
      return false;
    }
  }
};

NetClient::NetClient(NetClientOptions options)
    : options_(std::move(options)) {}

NetClient::~NetClient() = default;

std::unique_ptr<NetClient::Conn> NetClient::checkout(std::string* why) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (!idle_.empty()) {
      auto conn = std::move(idle_.back());
      idle_.pop_back();
      return conn;
    }
  }
  // Dial a fresh non-blocking connection with a bounded handshake.
  const int fd =
      ::socket(AF_INET, SOCK_STREAM | SOCK_NONBLOCK | SOCK_CLOEXEC, 0);
  if (fd < 0) {
    *why = std::string("socket: ") + std::strerror(errno);
    return nullptr;
  }
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(options_.port);
  if (::inet_pton(AF_INET, options_.host.c_str(), &addr.sin_addr) != 1) {
    ::close(fd);
    *why = "bad IPv4 host \"" + options_.host + "\"";
    return nullptr;
  }
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) !=
      0) {
    if (errno != EINPROGRESS) {
      *why = std::string("connect: ") + std::strerror(errno);
      ::close(fd);
      return nullptr;
    }
    pollfd p{};
    p.fd = fd;
    p.events = POLLOUT;
    const int rc =
        ::poll(&p, 1, static_cast<int>(options_.connect_timeout_ms));
    int soerr = 0;
    socklen_t len = sizeof(soerr);
    ::getsockopt(fd, SOL_SOCKET, SO_ERROR, &soerr, &len);
    if (rc <= 0 || soerr != 0) {
      *why = rc <= 0 ? "connect timeout"
                     : std::string("connect: ") + std::strerror(soerr);
      ::close(fd);
      return nullptr;
    }
  }
  const int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  auto conn = std::make_unique<Conn>();
  conn->fd = fd;
  return conn;
}

void NetClient::checkin(std::unique_ptr<Conn> conn) {
  std::lock_guard<std::mutex> lock(mu_);
  if (idle_.size() < options_.pool_size) {
    idle_.push_back(std::move(conn));
  }
  // Otherwise the unique_ptr destructor closes it.
}

NetClient::Result NetClient::predict_once(
    const std::vector<std::uint16_t>& values,
    const runtime::SubmitOptions& options, vsa::Prediction* out,
    std::uint64_t timeout_ms) {
  requests_.fetch_add(1, std::memory_order_relaxed);
  if (telemetry::enabled()) client_metrics().requests.add();
  if (timeout_ms == 0) timeout_ms = options_.request_timeout_ms;
  const std::uint64_t deadline_ms = steady_ms() + timeout_ms;

  Result result;
  std::unique_ptr<Conn> conn = checkout(&result.message);
  if (conn == nullptr) {
    transport_errors_.fetch_add(1, std::memory_order_relaxed);
    if (telemetry::enabled()) client_metrics().transport_errors.add();
    return result;  // kTransport with the connect failure message
  }

  SubmitFrame frame;
  frame.request_id =
      next_request_id_.fetch_add(1, std::memory_order_relaxed);
  frame.trace_id = options.trace.trace_id;
  frame.span_id = options.trace.span_id;
  frame.priority = static_cast<std::uint8_t>(options.priority);
  frame.deadline_us = options.deadline_us;
  frame.tenant = options.tenant;
  frame.values = values;
  std::vector<std::uint8_t> bytes;
  encode(frame, bytes);

  bool timed_out = false;
  if (!conn->send_all(bytes.data(), bytes.size(), deadline_ms,
                      &timed_out)) {
    result.message = timed_out ? "send deadline passed" : "send failed";
    result.timed_out = timed_out;
    (timed_out ? timeouts_ : transport_errors_)
        .fetch_add(1, std::memory_order_relaxed);
    if (telemetry::enabled()) {
      (timed_out ? client_metrics().timeouts
                 : client_metrics().transport_errors)
          .add();
    }
    return result;  // conn dropped (closed), never pooled again
  }

  Frame reply;
  for (;;) {
    if (!conn->read_frame(reply, deadline_ms, &timed_out,
                          &result.message)) {
      result.timed_out = timed_out;
      (timed_out ? timeouts_ : transport_errors_)
          .fetch_add(1, std::memory_order_relaxed);
      if (telemetry::enabled()) {
        (timed_out ? client_metrics().timeouts
                   : client_metrics().transport_errors)
            .add();
      }
      return result;
    }
    // Drain anything that isn't this request's response (defensive:
    // close-on-timeout means stale replies shouldn't survive, but a
    // server pushing a pong or a duplicate must not misroute).
    if (reply.type == FrameType::kResponse &&
        reply.response.request_id == frame.request_id) {
      break;
    }
  }

  result.status = reply.response.status;
  result.health = reply.response.health;
  result.message = reply.response.message;
  if (result.status == WireStatus::kOk && out != nullptr) {
    out->label = reply.response.label;
    out->scores.assign(reply.response.scores.begin(),
                       reply.response.scores.end());
  }
  checkin(std::move(conn));
  return result;
}

vsa::Prediction NetClient::predict(
    const std::vector<std::uint16_t>& values,
    const runtime::SubmitOptions& options) {
  std::uint64_t backoff_us =
      options_.retry_backoff_us != 0 ? options_.retry_backoff_us : 200;
  Result result;
  vsa::Prediction prediction;
  for (std::size_t attempt = 0;; ++attempt) {
    result = predict_once(values, options, &prediction, 0);
    if (result.status == WireStatus::kOk) return prediction;
    const bool retryable = result.status == WireStatus::kOverloaded ||
                           result.status == WireStatus::kTransport;
    if (!retryable || attempt >= options_.max_retries) break;
    retries_.fetch_add(1, std::memory_order_relaxed);
    if (telemetry::enabled()) client_metrics().retries.add();
    std::this_thread::sleep_for(std::chrono::microseconds(backoff_us));
    backoff_us *= 2;
  }
  const std::string detail =
      result.message.empty() ? to_string(result.status) : result.message;
  switch (result.status) {
    case WireStatus::kOverloaded:
      throw runtime::ServerOverloaded("endpoint " + options_.host + ":" +
                                      std::to_string(options_.port) +
                                      " overloaded: " + detail);
    case WireStatus::kShed:
      throw runtime::RequestShed(detail);
    case WireStatus::kDeadlineExceeded:
      throw runtime::DeadlineExceeded(detail);
    case WireStatus::kShutdown:
      throw runtime::RequestRefused(runtime::SubmitStatus::kShutdown,
                                    "endpoint draining: " + detail);
    case WireStatus::kUnknownTenant:
      throw runtime::UnknownTenant(detail);
    case WireStatus::kError:
      throw std::runtime_error("backend error from " + options_.host +
                               ":" + std::to_string(options_.port) +
                               ": " + detail);
    default:
      throw NetError("endpoint " + options_.host + ":" +
                     std::to_string(options_.port) +
                     " unreachable: " + detail);
  }
}

PongFrame NetClient::ping(std::uint64_t timeout_ms) {
  if (timeout_ms == 0) timeout_ms = options_.request_timeout_ms;
  const std::uint64_t deadline_ms = steady_ms() + timeout_ms;
  std::string why;
  std::unique_ptr<Conn> conn = checkout(&why);
  if (conn == nullptr) {
    transport_errors_.fetch_add(1, std::memory_order_relaxed);
    if (telemetry::enabled()) client_metrics().transport_errors.add();
    throw NetError("ping " + options_.host + ":" +
                   std::to_string(options_.port) + ": " + why);
  }
  PingFrame ping;
  ping.nonce = next_request_id_.fetch_add(1, std::memory_order_relaxed);
  std::vector<std::uint8_t> bytes;
  encode(ping, bytes);
  bool timed_out = false;
  Frame reply;
  if (!conn->send_all(bytes.data(), bytes.size(), deadline_ms,
                      &timed_out)) {
    throw NetError("ping send to " + options_.host + ":" +
                   std::to_string(options_.port) + " failed");
  }
  for (;;) {
    if (!conn->read_frame(reply, deadline_ms, &timed_out, &why)) {
      (timed_out ? timeouts_ : transport_errors_)
          .fetch_add(1, std::memory_order_relaxed);
      throw NetError("ping " + options_.host + ":" +
                     std::to_string(options_.port) + ": " + why);
    }
    if (reply.type == FrameType::kPong &&
        reply.pong.nonce == ping.nonce) {
      break;
    }
  }
  checkin(std::move(conn));
  return reply.pong;
}

NetClientStats NetClient::stats() const {
  NetClientStats stats;
  stats.requests = requests_.load(std::memory_order_relaxed);
  stats.retries = retries_.load(std::memory_order_relaxed);
  stats.timeouts = timeouts_.load(std::memory_order_relaxed);
  stats.transport_errors =
      transport_errors_.load(std::memory_order_relaxed);
  return stats;
}

}  // namespace univsa::net
