// Wire protocol for the network serving tier (docs/NETWORK.md).
//
// Every frame is a little-endian length-prefixed record:
//
//   u32 length   bytes after this prefix (version + type + payload)
//   u8  version  kProtocolVersion; a peer speaking another version is
//                rejected at decode time (no in-band negotiation — the
//                version byte exists so a future v2 can add one)
//   u8  type     FrameType discriminator
//   ...payload   fixed-width LE fields, counted strings/arrays
//
// The codec is deliberately paranoid: it is the trust boundary of the
// whole serving tier. Every counted field has an explicit cap, a frame
// must parse to exactly its declared length (no trailing bytes), and a
// malformed stream flips the decoder into a sticky error state instead
// of resynchronising — the transport closes the connection. Adversarial
// inputs (truncated at any byte, oversized lengths, unknown versions or
// types, garbage counts) must reject without undefined behaviour;
// tests/net/protocol_test.cpp drives exactly those.
//
// Requests carry the caller's TraceContext ids so one sampled trace
// spans client -> router -> shard (runtime::SubmitOptions::trace).
// Responses piggyback the shard's HealthState byte; the ShardRouter
// uses it to steer traffic away from degraded/draining shards without
// a separate control channel.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "univsa/runtime/server.h"

namespace univsa::net {

inline constexpr std::uint8_t kProtocolVersion = 1;

/// Hard cap on `length` (bytes after the prefix). A garbage length
/// cannot make the decoder buffer unbounded input.
inline constexpr std::uint32_t kMaxFrameBytes = 1u << 20;
/// Field caps, enforced on decode (and on encode, defensively).
inline constexpr std::size_t kMaxTenantBytes = 256;
inline constexpr std::size_t kMaxValues = 1u << 16;
inline constexpr std::size_t kMaxScores = 4096;
inline constexpr std::size_t kMaxMessageBytes = 1024;

enum class FrameType : std::uint8_t {
  kSubmit = 1,    ///< client -> server inference request
  kResponse = 2,  ///< server -> client result or refusal
  kPing = 3,      ///< client -> server health probe
  kPong = 4,      ///< server -> client health + queue depth
};

/// Response status byte. Values <= kBadFrame appear on the wire;
/// kTransport never does — NetClient synthesizes it for connect/send/
/// recv/timeout failures so callers can tell a dead endpoint (failover
/// candidate) from a live refusal.
enum class WireStatus : std::uint8_t {
  kOk = 0,
  kOverloaded = 1,        ///< queue full (maps to ServerOverloaded)
  kShed = 2,              ///< admission control refused (RequestShed)
  kDeadlineExceeded = 3,  ///< deadline passed while queued
  kShutdown = 4,          ///< server draining; no new work
  kUnknownTenant = 5,     ///< tenant never published on this shard
  kError = 6,             ///< backend failure; message has detail
  kBadFrame = 7,          ///< peer sent a malformed frame (then closed)
  kTransport = 254,       ///< client-side only: endpoint unreachable
};

const char* to_string(WireStatus status);

WireStatus to_wire(runtime::SubmitStatus status);

/// Inference request. `trace_id`/`span_id` propagate an existing
/// sampled trace across the wire (0 = let the shard sample).
struct SubmitFrame {
  std::uint64_t request_id = 0;
  std::uint64_t trace_id = 0;
  std::uint64_t span_id = 0;
  std::uint8_t priority = 1;  ///< runtime::Priority (0/1/2)
  std::uint64_t deadline_us = 0;
  std::string tenant;  ///< empty = shard's default tenant
  std::vector<std::uint16_t> values;
};

/// Result or refusal for one SubmitFrame, correlated by request_id.
struct ResponseFrame {
  std::uint64_t request_id = 0;
  WireStatus status = WireStatus::kOk;
  std::uint8_t health = 0;  ///< shard runtime::HealthState (0/1/2)
  std::int32_t label = 0;
  std::vector<std::int64_t> scores;
  std::string message;  ///< refusal/error detail; empty on kOk
};

struct PingFrame {
  std::uint64_t nonce = 0;
};

struct PongFrame {
  std::uint64_t nonce = 0;
  std::uint8_t health = 0;
  std::uint32_t queue_depth = 0;
};

/// Appends one complete frame (prefix + header + payload) to `out`.
void encode(const SubmitFrame& frame, std::vector<std::uint8_t>& out);
void encode(const ResponseFrame& frame, std::vector<std::uint8_t>& out);
void encode(const PingFrame& frame, std::vector<std::uint8_t>& out);
void encode(const PongFrame& frame, std::vector<std::uint8_t>& out);

/// One decoded frame; `type` selects which member is meaningful.
struct Frame {
  FrameType type = FrameType::kSubmit;
  SubmitFrame submit;
  ResponseFrame response;
  PingFrame ping;
  PongFrame pong;
};

/// Incremental decoder for one byte stream (one connection). Feed
/// arbitrary chunks; next() yields complete frames in order. Any
/// malformed input (bad version/type/length/count, payload not parsing
/// to exactly its declared length) puts the decoder into a sticky
/// error state — the caller must close the connection.
class FrameDecoder {
 public:
  enum class Result {
    kFrame,     ///< `out` holds the next decoded frame
    kNeedMore,  ///< the buffered bytes end mid-frame; feed more
    kError,     ///< malformed stream (sticky); see error()
  };

  void feed(const std::uint8_t* data, std::size_t size);

  Result next(Frame& out);

  bool failed() const { return failed_; }
  const std::string& error() const { return error_; }
  /// Bytes buffered but not yet consumed by next().
  std::size_t buffered() const { return buffer_.size() - offset_; }

 private:
  void fail(const std::string& why);

  std::vector<std::uint8_t> buffer_;
  std::size_t offset_ = 0;  ///< consumed prefix of buffer_
  bool failed_ = false;
  std::string error_;
};

}  // namespace univsa::net
