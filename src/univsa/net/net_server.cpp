#include "univsa/net/net_server.h"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/epoll.h>
#include <sys/eventfd.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <mutex>
#include <stdexcept>
#include <vector>

#include "univsa/telemetry/metrics.h"

namespace univsa::net {

namespace {

// Process-wide mirrors so the network tier shows up in telemetry
// scrapes (docs/METRICS.md, `net.server.*`). Resolving the handles
// eagerly registers the family even before traffic arrives.
struct GlobalNetServerMetrics {
  telemetry::Counter& connections =
      telemetry::counter("net.server.connections_total");
  telemetry::Counter& frames_in =
      telemetry::counter("net.server.frames_in_total");
  telemetry::Counter& frames_out =
      telemetry::counter("net.server.frames_out_total");
  telemetry::Counter& decode_errors =
      telemetry::counter("net.server.decode_errors_total");
  telemetry::Counter& refused =
      telemetry::counter("net.server.refused_total");
  telemetry::Gauge& active =
      telemetry::gauge("net.server.active_connections");
};

GlobalNetServerMetrics& net_metrics() {
  static GlobalNetServerMetrics g;
  return g;
}

[[noreturn]] void throw_errno(const std::string& what) {
  throw std::runtime_error(what + ": " + std::strerror(errno));
}

void close_quiet(int fd) {
  if (fd >= 0) ::close(fd);
}

}  // namespace

struct NetServer::Connection {
  int fd = -1;
  // IO-thread-only decode/write state.
  FrameDecoder decoder;
  std::vector<std::uint8_t> outbuf;
  std::size_t out_off = 0;
  bool want_write = false;
  bool close_after_flush = false;
  // Worker-facing side: completion callbacks append encoded responses
  // to `pending` under `mu`; `closed` stops them once the socket dies.
  std::mutex mu;
  std::vector<std::uint8_t> pending;
  bool closed = false;
};

struct NetServer::IoHub {
  int event_fd = -1;
  std::mutex mu;
  std::vector<std::shared_ptr<Connection>> dirty;
  std::atomic<std::uint64_t> frames_out{0};

  ~IoHub() { close_quiet(event_fd); }

  void wake() {
    const std::uint64_t one = 1;
    // Best-effort: EAGAIN means the counter is already non-zero and
    // the loop will wake anyway.
    [[maybe_unused]] ssize_t n =
        ::write(event_fd, &one, sizeof(one));
  }

  void notify(std::shared_ptr<Connection> conn) {
    {
      std::lock_guard<std::mutex> lock(mu);
      dirty.push_back(std::move(conn));
    }
    wake();
  }
};

NetServer::NetServer(std::shared_ptr<runtime::Server> server,
                     NetServerOptions options)
    : server_(std::move(server)), options_(std::move(options)) {
  if (server_ == nullptr) {
    throw std::runtime_error("NetServer requires a runtime server");
  }
  listen_fd_ = ::socket(AF_INET, SOCK_STREAM | SOCK_NONBLOCK | SOCK_CLOEXEC,
                        0);
  if (listen_fd_ < 0) throw_errno("socket");
  const int one = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(options_.port);
  if (::inet_pton(AF_INET, options_.host.c_str(), &addr.sin_addr) != 1) {
    close_quiet(listen_fd_);
    throw std::runtime_error("NetServer: bad IPv4 host \"" + options_.host +
                             "\"");
  }
  if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr),
             sizeof(addr)) != 0) {
    const int saved = errno;
    close_quiet(listen_fd_);
    errno = saved;
    throw_errno("bind " + options_.host + ":" +
                std::to_string(options_.port));
  }
  if (::listen(listen_fd_, options_.backlog) != 0) {
    close_quiet(listen_fd_);
    throw_errno("listen");
  }
  sockaddr_in bound{};
  socklen_t bound_len = sizeof(bound);
  ::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&bound),
                &bound_len);
  port_ = ntohs(bound.sin_port);

  epoll_fd_ = ::epoll_create1(EPOLL_CLOEXEC);
  if (epoll_fd_ < 0) {
    close_quiet(listen_fd_);
    throw_errno("epoll_create1");
  }
  hub_ = std::make_shared<IoHub>();
  hub_->event_fd = ::eventfd(0, EFD_NONBLOCK | EFD_CLOEXEC);
  if (hub_->event_fd < 0) {
    close_quiet(listen_fd_);
    close_quiet(epoll_fd_);
    throw_errno("eventfd");
  }
  epoll_event ev{};
  ev.events = EPOLLIN;
  ev.data.fd = listen_fd_;
  ::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, listen_fd_, &ev);
  ev.data.fd = hub_->event_fd;
  ::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, hub_->event_fd, &ev);

  io_thread_ = std::thread([this] { io_loop(); });
}

NetServer::~NetServer() { shutdown(); }

void NetServer::shutdown() {
  std::call_once(shutdown_once_, [this] {
    stopping_.store(true, std::memory_order_release);
    hub_->wake();
    if (io_thread_.joinable()) io_thread_.join();
    // The IO loop closed the connections and the epoll/listen fds on
    // exit; the hub's eventfd stays open for straggler callbacks and
    // closes with the last reference.
  });
}

NetServerStats NetServer::stats() const {
  NetServerStats stats;
  stats.accepted = accepted_.load(std::memory_order_relaxed);
  stats.frames_in = frames_in_.load(std::memory_order_relaxed);
  stats.frames_out = hub_->frames_out.load(std::memory_order_relaxed);
  stats.decode_errors = decode_errors_.load(std::memory_order_relaxed);
  stats.refused = refused_.load(std::memory_order_relaxed);
  stats.active_connections = active_.load(std::memory_order_relaxed);
  return stats;
}

void NetServer::update_interest(Connection& conn) {
  const bool want = conn.out_off < conn.outbuf.size();
  if (want == conn.want_write) return;
  conn.want_write = want;
  epoll_event ev{};
  ev.events = EPOLLIN | (want ? EPOLLOUT : 0u);
  ev.data.fd = conn.fd;
  ::epoll_ctl(epoll_fd_, EPOLL_CTL_MOD, conn.fd, &ev);
}

void NetServer::merge_pending(Connection& conn) {
  std::lock_guard<std::mutex> lock(conn.mu);
  if (conn.pending.empty()) return;
  conn.outbuf.insert(conn.outbuf.end(), conn.pending.begin(),
                     conn.pending.end());
  conn.pending.clear();
}

bool NetServer::flush_out(Connection& conn) {
  while (conn.out_off < conn.outbuf.size()) {
    const ssize_t sent =
        ::send(conn.fd, conn.outbuf.data() + conn.out_off,
               conn.outbuf.size() - conn.out_off, MSG_NOSIGNAL);
    if (sent > 0) {
      conn.out_off += static_cast<std::size_t>(sent);
      continue;
    }
    if (sent < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) break;
    return false;  // peer gone or hard error
  }
  if (conn.out_off == conn.outbuf.size()) {
    conn.outbuf.clear();
    conn.out_off = 0;
    if (conn.close_after_flush) return false;
  }
  update_interest(conn);
  return true;
}

void NetServer::close_connection(int fd) {
  auto it = connections_.find(fd);
  if (it == connections_.end()) return;
  {
    std::lock_guard<std::mutex> lock(it->second->mu);
    it->second->closed = true;
  }
  ::epoll_ctl(epoll_fd_, EPOLL_CTL_DEL, fd, nullptr);
  close_quiet(fd);
  it->second->fd = -1;
  connections_.erase(it);
  active_.fetch_sub(1, std::memory_order_relaxed);
  if (telemetry::enabled()) {
    net_metrics().active.set(
        static_cast<double>(active_.load(std::memory_order_relaxed)));
  }
}

void NetServer::accept_ready() {
  for (;;) {
    const int fd = ::accept4(listen_fd_, nullptr, nullptr,
                             SOCK_NONBLOCK | SOCK_CLOEXEC);
    if (fd < 0) return;  // EAGAIN or transient accept failure
    const int one = 1;
    ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
    auto conn = std::make_shared<Connection>();
    conn->fd = fd;
    epoll_event ev{};
    ev.events = EPOLLIN;
    ev.data.fd = fd;
    if (::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, fd, &ev) != 0) {
      close_quiet(fd);
      continue;
    }
    connections_.emplace(fd, std::move(conn));
    accepted_.fetch_add(1, std::memory_order_relaxed);
    active_.fetch_add(1, std::memory_order_relaxed);
    if (telemetry::enabled()) {
      net_metrics().connections.add();
      net_metrics().active.set(
          static_cast<double>(active_.load(std::memory_order_relaxed)));
    }
  }
}

void NetServer::handle_submit(const std::shared_ptr<Connection>& conn,
                              SubmitFrame&& frame) {
  runtime::SubmitOptions options;
  options.tenant = std::move(frame.tenant);
  options.priority = static_cast<runtime::Priority>(frame.priority);
  options.deadline_us = frame.deadline_us;
  // Cross-wire trace propagation: the client already made the sampling
  // decision; this request joins its trace.
  options.trace.trace_id = frame.trace_id;
  options.trace.span_id = frame.span_id;

  const std::uint64_t request_id = frame.request_id;
  const std::shared_ptr<IoHub> hub = hub_;
  // Weak on purpose: the completion lives inside the runtime server's
  // own queues, so a shared_ptr here would be a cycle whose last drop
  // can land on a worker thread — ~Server joining its own worker
  // (EDEADLK -> terminate). The server is always alive while a
  // completion runs (workers execute inside it; shutdown drains before
  // returning), so lock() only fails in a teardown race, where the
  // response is dropped anyway.
  const std::weak_ptr<runtime::Server> runtime_server = server_;
  const runtime::SubmitStatus status = server_->try_submit_async(
      std::move(frame.values), options,
      [conn, hub, runtime_server, request_id](
          vsa::Prediction&& prediction, std::exception_ptr error) {
        ResponseFrame response;
        response.request_id = request_id;
        if (const auto server = runtime_server.lock()) {
          response.health =
              static_cast<std::uint8_t>(server->health());
        }
        if (error == nullptr) {
          response.status = WireStatus::kOk;
          response.label = prediction.label;
          response.scores.assign(prediction.scores.begin(),
                                 prediction.scores.end());
        } else {
          try {
            std::rethrow_exception(error);
          } catch (const runtime::RequestRefused& refused) {
            response.status = to_wire(refused.status());
            response.message = refused.what();
          } catch (const std::exception& e) {
            response.status = WireStatus::kError;
            response.message = e.what();
          } catch (...) {
            response.status = WireStatus::kError;
            response.message = "unknown backend failure";
          }
        }
        std::vector<std::uint8_t> bytes;
        encode(response, bytes);
        bool queued = false;
        {
          std::lock_guard<std::mutex> lock(conn->mu);
          if (!conn->closed) {
            conn->pending.insert(conn->pending.end(), bytes.begin(),
                                 bytes.end());
            queued = true;
          }
        }
        if (queued) {
          hub->frames_out.fetch_add(1, std::memory_order_relaxed);
          if (telemetry::enabled()) net_metrics().frames_out.add();
          hub->notify(conn);
        }
      });

  if (status != runtime::SubmitStatus::kOk) {
    // Refusals answer synchronously from the IO thread; the callback
    // never runs.
    refused_.fetch_add(1, std::memory_order_relaxed);
    ResponseFrame response;
    response.request_id = request_id;
    response.status = to_wire(status);
    response.health = static_cast<std::uint8_t>(server_->health());
    response.message = std::string("request refused: ") +
                       to_string(response.status);
    encode(response, conn->outbuf);
    hub_->frames_out.fetch_add(1, std::memory_order_relaxed);
    if (telemetry::enabled()) {
      net_metrics().refused.add();
      net_metrics().frames_out.add();
    }
  }
}

void NetServer::handle_frame(const std::shared_ptr<Connection>& conn,
                             Frame&& frame) {
  switch (frame.type) {
    case FrameType::kSubmit:
      handle_submit(conn, std::move(frame.submit));
      return;
    case FrameType::kPing: {
      PongFrame pong;
      pong.nonce = frame.ping.nonce;
      pong.health = static_cast<std::uint8_t>(server_->health());
      pong.queue_depth =
          static_cast<std::uint32_t>(server_->queue_depth());
      encode(pong, conn->outbuf);
      hub_->frames_out.fetch_add(1, std::memory_order_relaxed);
      if (telemetry::enabled()) net_metrics().frames_out.add();
      return;
    }
    case FrameType::kResponse:
    case FrameType::kPong:
      // Only clients speak these; a server receiving one is a protocol
      // violation handled like any other malformed input.
      break;
  }
  decode_errors_.fetch_add(1, std::memory_order_relaxed);
  if (telemetry::enabled()) net_metrics().decode_errors.add();
  ResponseFrame bad;
  bad.status = WireStatus::kBadFrame;
  bad.health = static_cast<std::uint8_t>(server_->health());
  bad.message = "unexpected frame type";
  encode(bad, conn->outbuf);
  conn->close_after_flush = true;
}

void NetServer::connection_readable(
    const std::shared_ptr<Connection>& conn) {
  std::uint8_t buf[16384];
  for (;;) {
    const ssize_t got = ::recv(conn->fd, buf, sizeof(buf), 0);
    if (got > 0) {
      conn->decoder.feed(buf, static_cast<std::size_t>(got));
      if (got < static_cast<ssize_t>(sizeof(buf))) break;
      continue;
    }
    if (got < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) break;
    close_connection(conn->fd);  // peer closed or hard error
    return;
  }

  Frame frame;
  for (;;) {
    const FrameDecoder::Result result = conn->decoder.next(frame);
    if (result == FrameDecoder::Result::kNeedMore) break;
    if (result == FrameDecoder::Result::kError) {
      decode_errors_.fetch_add(1, std::memory_order_relaxed);
      if (telemetry::enabled()) net_metrics().decode_errors.add();
      ResponseFrame bad;
      bad.status = WireStatus::kBadFrame;
      bad.health = static_cast<std::uint8_t>(server_->health());
      bad.message = conn->decoder.error();
      encode(bad, conn->outbuf);
      conn->close_after_flush = true;
      break;
    }
    frames_in_.fetch_add(1, std::memory_order_relaxed);
    if (telemetry::enabled()) net_metrics().frames_in.add();
    handle_frame(conn, std::move(frame));
    if (conn->close_after_flush) break;
  }
  if (!flush_out(*conn)) close_connection(conn->fd);
}

void NetServer::io_loop() {
  std::vector<epoll_event> events(64);
  while (!stopping_.load(std::memory_order_acquire)) {
    const int n = ::epoll_wait(epoll_fd_, events.data(),
                               static_cast<int>(events.size()), 100);
    if (n < 0) {
      if (errno == EINTR) continue;
      break;
    }
    for (int i = 0;
         i < n && !stopping_.load(std::memory_order_acquire); ++i) {
      const int fd = events[i].data.fd;
      const std::uint32_t mask = events[i].events;
      if (fd == listen_fd_) {
        accept_ready();
        continue;
      }
      if (fd == hub_->event_fd) {
        std::uint64_t drained = 0;
        while (::read(hub_->event_fd, &drained, sizeof(drained)) > 0) {
        }
        std::vector<std::shared_ptr<Connection>> dirty;
        {
          std::lock_guard<std::mutex> lock(hub_->mu);
          dirty.swap(hub_->dirty);
        }
        for (const auto& conn : dirty) {
          if (conn->fd < 0) continue;  // already closed
          merge_pending(*conn);
          if (!flush_out(*conn)) close_connection(conn->fd);
        }
        continue;
      }
      auto it = connections_.find(fd);
      if (it == connections_.end()) continue;
      std::shared_ptr<Connection> conn = it->second;
      if ((mask & (EPOLLHUP | EPOLLERR)) != 0) {
        close_connection(fd);
        continue;
      }
      if ((mask & EPOLLIN) != 0) {
        connection_readable(conn);
        if (conn->fd < 0) continue;
      }
      if ((mask & EPOLLOUT) != 0) {
        merge_pending(*conn);
        if (!flush_out(*conn)) close_connection(fd);
      }
    }
  }
  // Drain-and-close on exit: every connection is marked closed (so
  // straggler completions drop their responses) before the fds die.
  std::vector<int> fds;
  fds.reserve(connections_.size());
  for (const auto& [fd, conn] : connections_) fds.push_back(fd);
  for (int fd : fds) close_connection(fd);
  close_quiet(listen_fd_);
  close_quiet(epoll_fd_);
  listen_fd_ = -1;
  epoll_fd_ = -1;
}

}  // namespace univsa::net
