#include "univsa/net/protocol.h"

#include <algorithm>

namespace univsa::net {

namespace {

// Explicit little-endian byte serialization: the wire format must not
// depend on host endianness or struct layout.
void put_u8(std::vector<std::uint8_t>& out, std::uint8_t v) {
  out.push_back(v);
}

void put_u16(std::vector<std::uint8_t>& out, std::uint16_t v) {
  out.push_back(static_cast<std::uint8_t>(v));
  out.push_back(static_cast<std::uint8_t>(v >> 8));
}

void put_u32(std::vector<std::uint8_t>& out, std::uint32_t v) {
  for (int shift = 0; shift < 32; shift += 8) {
    out.push_back(static_cast<std::uint8_t>(v >> shift));
  }
}

void put_u64(std::vector<std::uint8_t>& out, std::uint64_t v) {
  for (int shift = 0; shift < 64; shift += 8) {
    out.push_back(static_cast<std::uint8_t>(v >> shift));
  }
}

// Bounded big-to-little reader over one frame's payload. Every get_*
// checks remaining() first; a short read latches ok_ = false and
// returns 0, so a truncated payload can never index out of bounds.
class Reader {
 public:
  Reader(const std::uint8_t* data, std::size_t size)
      : data_(data), size_(size) {}

  std::size_t remaining() const { return size_ - pos_; }
  bool ok() const { return ok_; }

  std::uint8_t get_u8() {
    if (!take(1)) return 0;
    return data_[pos_++];
  }
  std::uint16_t get_u16() {
    if (!take(2)) return 0;
    std::uint16_t v = static_cast<std::uint16_t>(
        data_[pos_] | (data_[pos_ + 1] << 8));
    pos_ += 2;
    return v;
  }
  std::uint32_t get_u32() {
    if (!take(4)) return 0;
    std::uint32_t v = 0;
    for (int i = 3; i >= 0; --i) v = (v << 8) | data_[pos_ + i];
    pos_ += 4;
    return v;
  }
  std::uint64_t get_u64() {
    if (!take(8)) return 0;
    std::uint64_t v = 0;
    for (int i = 7; i >= 0; --i) v = (v << 8) | data_[pos_ + i];
    pos_ += 8;
    return v;
  }
  bool get_bytes(std::size_t n, std::string& out) {
    if (!take(n)) return false;
    out.assign(reinterpret_cast<const char*>(data_ + pos_), n);
    pos_ += n;
    return true;
  }

 private:
  bool take(std::size_t n) {
    if (!ok_ || remaining() < n) {
      ok_ = false;
      return false;
    }
    return true;
  }

  const std::uint8_t* data_;
  std::size_t size_;
  std::size_t pos_ = 0;
  bool ok_ = true;
};

// Reserves the 4-byte length prefix, writes the header, and returns the
// prefix position so finish_frame can backpatch the length.
std::size_t begin_frame(std::vector<std::uint8_t>& out, FrameType type) {
  const std::size_t prefix = out.size();
  put_u32(out, 0);
  put_u8(out, kProtocolVersion);
  put_u8(out, static_cast<std::uint8_t>(type));
  return prefix;
}

void finish_frame(std::vector<std::uint8_t>& out, std::size_t prefix) {
  const std::uint32_t length =
      static_cast<std::uint32_t>(out.size() - prefix - 4);
  out[prefix + 0] = static_cast<std::uint8_t>(length);
  out[prefix + 1] = static_cast<std::uint8_t>(length >> 8);
  out[prefix + 2] = static_cast<std::uint8_t>(length >> 16);
  out[prefix + 3] = static_cast<std::uint8_t>(length >> 24);
}

bool decode_submit(Reader& r, SubmitFrame& f, std::string& why) {
  f.request_id = r.get_u64();
  f.trace_id = r.get_u64();
  f.span_id = r.get_u64();
  f.priority = r.get_u8();
  f.deadline_us = r.get_u64();
  const std::size_t tenant_len = r.get_u16();
  if (tenant_len > kMaxTenantBytes) {
    why = "tenant name over " + std::to_string(kMaxTenantBytes) + " bytes";
    return false;
  }
  if (!r.get_bytes(tenant_len, f.tenant)) {
    why = "truncated submit payload";
    return false;
  }
  const std::size_t count = r.get_u32();
  if (count > kMaxValues) {
    why = "value count over " + std::to_string(kMaxValues);
    return false;
  }
  if (r.remaining() < count * 2) {
    why = "truncated submit payload";
    return false;
  }
  f.values.resize(count);
  for (std::size_t i = 0; i < count; ++i) f.values[i] = r.get_u16();
  if (!r.ok()) {
    why = "truncated submit payload";
    return false;
  }
  if (f.priority > 2) {
    why = "priority byte out of range";
    return false;
  }
  return true;
}

bool decode_response(Reader& r, ResponseFrame& f, std::string& why) {
  f.request_id = r.get_u64();
  const std::uint8_t status = r.get_u8();
  if (status > static_cast<std::uint8_t>(WireStatus::kBadFrame)) {
    why = "status byte out of range";
    return false;
  }
  f.status = static_cast<WireStatus>(status);
  f.health = r.get_u8();
  f.label = static_cast<std::int32_t>(r.get_u32());
  const std::size_t count = r.get_u32();
  if (count > kMaxScores) {
    why = "score count over " + std::to_string(kMaxScores);
    return false;
  }
  if (r.remaining() < count * 8) {
    why = "truncated response payload";
    return false;
  }
  f.scores.resize(count);
  for (std::size_t i = 0; i < count; ++i) {
    f.scores[i] = static_cast<std::int64_t>(r.get_u64());
  }
  const std::size_t message_len = r.get_u16();
  if (message_len > kMaxMessageBytes) {
    why = "message over " + std::to_string(kMaxMessageBytes) + " bytes";
    return false;
  }
  if (!r.get_bytes(message_len, f.message) || !r.ok()) {
    why = "truncated response payload";
    return false;
  }
  return true;
}

}  // namespace

const char* to_string(WireStatus status) {
  switch (status) {
    case WireStatus::kOk: return "ok";
    case WireStatus::kOverloaded: return "overloaded";
    case WireStatus::kShed: return "shed";
    case WireStatus::kDeadlineExceeded: return "deadline_exceeded";
    case WireStatus::kShutdown: return "shutdown";
    case WireStatus::kUnknownTenant: return "unknown_tenant";
    case WireStatus::kError: return "error";
    case WireStatus::kBadFrame: return "bad_frame";
    case WireStatus::kTransport: return "transport";
  }
  return "?";
}

WireStatus to_wire(runtime::SubmitStatus status) {
  switch (status) {
    case runtime::SubmitStatus::kOk: return WireStatus::kOk;
    case runtime::SubmitStatus::kOverloaded: return WireStatus::kOverloaded;
    case runtime::SubmitStatus::kShed: return WireStatus::kShed;
    case runtime::SubmitStatus::kDeadlineExceeded:
      return WireStatus::kDeadlineExceeded;
    case runtime::SubmitStatus::kShutdown: return WireStatus::kShutdown;
    case runtime::SubmitStatus::kUnknownTenant:
      return WireStatus::kUnknownTenant;
  }
  return WireStatus::kError;
}

void encode(const SubmitFrame& frame, std::vector<std::uint8_t>& out) {
  const std::size_t prefix = begin_frame(out, FrameType::kSubmit);
  put_u64(out, frame.request_id);
  put_u64(out, frame.trace_id);
  put_u64(out, frame.span_id);
  put_u8(out, frame.priority);
  put_u64(out, frame.deadline_us);
  const std::size_t tenant_len =
      std::min(frame.tenant.size(), kMaxTenantBytes);
  put_u16(out, static_cast<std::uint16_t>(tenant_len));
  out.insert(out.end(), frame.tenant.begin(),
             frame.tenant.begin() + static_cast<std::ptrdiff_t>(tenant_len));
  const std::size_t count = std::min(frame.values.size(), kMaxValues);
  put_u32(out, static_cast<std::uint32_t>(count));
  for (std::size_t i = 0; i < count; ++i) put_u16(out, frame.values[i]);
  finish_frame(out, prefix);
}

void encode(const ResponseFrame& frame, std::vector<std::uint8_t>& out) {
  const std::size_t prefix = begin_frame(out, FrameType::kResponse);
  put_u64(out, frame.request_id);
  put_u8(out, static_cast<std::uint8_t>(frame.status));
  put_u8(out, frame.health);
  put_u32(out, static_cast<std::uint32_t>(frame.label));
  const std::size_t count = std::min(frame.scores.size(), kMaxScores);
  put_u32(out, static_cast<std::uint32_t>(count));
  for (std::size_t i = 0; i < count; ++i) {
    put_u64(out, static_cast<std::uint64_t>(frame.scores[i]));
  }
  const std::size_t message_len =
      std::min(frame.message.size(), kMaxMessageBytes);
  put_u16(out, static_cast<std::uint16_t>(message_len));
  out.insert(out.end(), frame.message.begin(),
             frame.message.begin() +
                 static_cast<std::ptrdiff_t>(message_len));
  finish_frame(out, prefix);
}

void encode(const PingFrame& frame, std::vector<std::uint8_t>& out) {
  const std::size_t prefix = begin_frame(out, FrameType::kPing);
  put_u64(out, frame.nonce);
  finish_frame(out, prefix);
}

void encode(const PongFrame& frame, std::vector<std::uint8_t>& out) {
  const std::size_t prefix = begin_frame(out, FrameType::kPong);
  put_u64(out, frame.nonce);
  put_u8(out, frame.health);
  put_u32(out, frame.queue_depth);
  finish_frame(out, prefix);
}

void FrameDecoder::feed(const std::uint8_t* data, std::size_t size) {
  if (failed_) return;
  // Compact once the consumed prefix dominates, so a long-lived
  // connection does not grow the buffer without bound.
  if (offset_ > 4096 && offset_ * 2 > buffer_.size()) {
    buffer_.erase(buffer_.begin(),
                  buffer_.begin() + static_cast<std::ptrdiff_t>(offset_));
    offset_ = 0;
  }
  buffer_.insert(buffer_.end(), data, data + size);
}

void FrameDecoder::fail(const std::string& why) {
  failed_ = true;
  error_ = why;
}

FrameDecoder::Result FrameDecoder::next(Frame& out) {
  if (failed_) return Result::kError;
  const std::size_t available = buffer_.size() - offset_;
  if (available < 4) return Result::kNeedMore;
  const std::uint8_t* p = buffer_.data() + offset_;
  const std::uint32_t length = static_cast<std::uint32_t>(
      p[0] | (p[1] << 8) | (p[2] << 16) |
      (static_cast<std::uint32_t>(p[3]) << 24));
  if (length < 2) {
    fail("frame length " + std::to_string(length) +
         " below the 2-byte header");
    return Result::kError;
  }
  if (length > kMaxFrameBytes) {
    fail("frame length " + std::to_string(length) + " over the " +
         std::to_string(kMaxFrameBytes) + "-byte cap");
    return Result::kError;
  }
  if (available < 4 + static_cast<std::size_t>(length)) {
    return Result::kNeedMore;
  }
  const std::uint8_t version = p[4];
  const std::uint8_t type = p[5];
  if (version != kProtocolVersion) {
    fail("unsupported protocol version " + std::to_string(version) +
         " (speaking " + std::to_string(kProtocolVersion) + ")");
    return Result::kError;
  }
  Reader reader(p + 6, length - 2);
  std::string why;
  bool ok = false;
  out = Frame{};
  switch (static_cast<FrameType>(type)) {
    case FrameType::kSubmit:
      out.type = FrameType::kSubmit;
      ok = decode_submit(reader, out.submit, why);
      break;
    case FrameType::kResponse:
      out.type = FrameType::kResponse;
      ok = decode_response(reader, out.response, why);
      break;
    case FrameType::kPing:
      out.type = FrameType::kPing;
      out.ping.nonce = reader.get_u64();
      ok = reader.ok();
      if (!ok) why = "truncated ping payload";
      break;
    case FrameType::kPong:
      out.type = FrameType::kPong;
      out.pong.nonce = reader.get_u64();
      out.pong.health = reader.get_u8();
      out.pong.queue_depth = reader.get_u32();
      ok = reader.ok();
      if (!ok) why = "truncated pong payload";
      break;
    default:
      fail("unknown frame type " + std::to_string(type));
      return Result::kError;
  }
  if (!ok) {
    fail(why.empty() ? "malformed frame payload" : why);
    return Result::kError;
  }
  if (reader.remaining() != 0) {
    fail(std::to_string(reader.remaining()) +
         " trailing bytes after the payload");
    return Result::kError;
  }
  offset_ += 4 + static_cast<std::size_t>(length);
  return Result::kFrame;
}

}  // namespace univsa::net
