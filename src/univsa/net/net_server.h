// Epoll-based non-blocking network front-end over one runtime::Server.
//
// One IO thread owns the listening socket, an epoll set, and every
// connection's read/write buffers. Decoded submit frames enter the
// serving runtime through Server::try_submit_async, so no thread ever
// parks on a result: worker threads fulfill by encoding a response into
// the connection's pending buffer and waking the IO loop through an
// eventfd. Refusals (overload, shed, unknown tenant, shutdown) are
// answered synchronously from the IO thread with the matching wire
// status.
//
// Trace propagation: a submit frame carrying trace ids joins that
// sampled trace (SubmitOptions::trace), so one trace spans
// client -> router -> shard. Responses piggyback the runtime's current
// HealthState byte — the ShardRouter's failover signal.
//
// Protocol violations (see protocol.h) answer with one kBadFrame
// response, then the connection closes; the decoder's sticky error
// state guarantees no resynchronisation on garbage.
//
// Operator guide: docs/NETWORK.md. Metrics: the `net.server.*` family
// in docs/METRICS.md.
#pragma once

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <thread>

#include "univsa/net/protocol.h"
#include "univsa/runtime/server.h"

namespace univsa::net {

struct NetServerOptions {
  /// Listen address. Loopback by default: exposing a shard beyond the
  /// host is a deliberate operator decision (`serve --host 0.0.0.0`).
  std::string host = "127.0.0.1";
  /// 0 binds an ephemeral port; the resolved one is port().
  std::uint16_t port = 0;
  int backlog = 128;
};

struct NetServerStats {
  std::uint64_t accepted = 0;       ///< connections ever accepted
  std::uint64_t frames_in = 0;      ///< frames decoded
  std::uint64_t frames_out = 0;     ///< responses/pongs queued
  std::uint64_t decode_errors = 0;  ///< connections killed on bad input
  std::uint64_t refused = 0;        ///< submits refused synchronously
  std::size_t active_connections = 0;
};

class NetServer {
 public:
  /// Binds, listens, and starts the IO thread. Throws
  /// std::runtime_error when the socket can't be set up (address in
  /// use, bad host, fd limits). The runtime server is shared — several
  /// NetServers may front one runtime, and the caller controls its
  /// drain/shutdown independently.
  explicit NetServer(std::shared_ptr<runtime::Server> server,
                     NetServerOptions options = {});
  ~NetServer();

  NetServer(const NetServer&) = delete;
  NetServer& operator=(const NetServer&) = delete;

  /// The bound port (resolved when options.port was 0).
  std::uint16_t port() const { return port_; }
  const std::string& host() const { return options_.host; }

  /// Stops accepting, closes every connection, joins the IO thread.
  /// In-flight runtime requests still complete; their responses are
  /// dropped (the connection is gone). Idempotent.
  void shutdown();
  bool running() const { return !stopping_.load(std::memory_order_acquire); }

  NetServerStats stats() const;
  const std::shared_ptr<runtime::Server>& server() const { return server_; }

 private:
  struct Connection;
  /// State shared with in-flight completion callbacks: the wakeup
  /// eventfd, the dirty-connection list, and the frames-out counter.
  /// Callbacks hold it by shared_ptr, so a completion landing after
  /// shutdown() writes to a still-open (just never-read) eventfd
  /// instead of a recycled descriptor.
  struct IoHub;

  void io_loop();
  void accept_ready();
  void connection_readable(const std::shared_ptr<Connection>& conn);
  void handle_frame(const std::shared_ptr<Connection>& conn, Frame&& frame);
  void handle_submit(const std::shared_ptr<Connection>& conn,
                     SubmitFrame&& frame);
  /// Moves worker-queued bytes into the IO-thread outbuf.
  void merge_pending(Connection& conn);
  /// Writes as much of the outbuf as the socket takes; re-arms
  /// EPOLLOUT when bytes remain. Returns false when the connection
  /// must close (peer gone / hard error).
  bool flush_out(Connection& conn);
  void close_connection(int fd);
  void update_interest(Connection& conn);

  std::shared_ptr<runtime::Server> server_;
  NetServerOptions options_;
  std::shared_ptr<IoHub> hub_;
  int listen_fd_ = -1;
  int epoll_fd_ = -1;
  std::uint16_t port_ = 0;
  std::atomic<bool> stopping_{false};
  std::once_flag shutdown_once_;
  /// IO-thread-only connection table.
  std::map<int, std::shared_ptr<Connection>> connections_;
  std::atomic<std::uint64_t> accepted_{0};
  std::atomic<std::uint64_t> frames_in_{0};
  std::atomic<std::uint64_t> decode_errors_{0};
  std::atomic<std::uint64_t> refused_{0};
  std::atomic<std::size_t> active_{0};
  std::thread io_thread_;
};

}  // namespace univsa::net
