// Blocking client for one NetServer endpoint, with connection pooling
// and timeout/retry mapped onto the runtime's RequestRefused/backoff
// semantics (docs/NETWORK.md).
//
// Thread model: any number of threads may call predict()/ping()
// concurrently. Each round-trip checks one pooled connection out for
// exclusive use; when the pool is idle-empty a fresh connection is
// dialed, and at most `pool_size` idle connections are kept afterwards.
// A connection that times out or errors is closed, never returned —
// so a late response to a timed-out request can only land on a dead
// socket, not corrupt a later caller's correlation.
//
// Retry semantics mirror SubmitOptions: `max_retries = 0` means one
// attempt; N > 0 retries kOverloaded and transport failures up to N
// times with exponential backoff starting at `retry_backoff_us`,
// after which predict() throws the mapped exception
// (ServerOverloaded / NetError). Semantic refusals — shed, deadline,
// unknown tenant — never retry: the shard meant them.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <stdexcept>
#include <string>
#include <vector>

#include "univsa/net/protocol.h"
#include "univsa/runtime/server.h"
#include "univsa/vsa/model.h"

namespace univsa::net {

/// Transport-level failure: endpoint unreachable, connection lost
/// mid-request, or the response deadline passed. Distinct from
/// RequestRefused — the shard never answered, so the router treats it
/// as a failover signal, not a verdict.
class NetError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

struct NetClientOptions {
  std::string host = "127.0.0.1";
  std::uint16_t port = 0;
  /// Idle connections kept for reuse; concurrency above this dials
  /// extra connections that close on return.
  std::size_t pool_size = 2;
  std::uint64_t connect_timeout_ms = 1000;
  /// Whole-round-trip budget per attempt (send + wait + decode).
  std::uint64_t request_timeout_ms = 2000;
  /// Overload/transport resubmits; 0 = single attempt.
  std::size_t max_retries = 0;
  /// First backoff wait; doubles per retry. 0 falls back to 200 us.
  std::uint64_t retry_backoff_us = 200;
};

struct NetClientStats {
  std::uint64_t requests = 0;
  std::uint64_t retries = 0;
  std::uint64_t timeouts = 0;
  std::uint64_t transport_errors = 0;
};

class NetClient {
 public:
  explicit NetClient(NetClientOptions options);
  ~NetClient();

  NetClient(const NetClient&) = delete;
  NetClient& operator=(const NetClient&) = delete;

  /// Outcome of one attempt, without exception mapping — the
  /// ShardRouter's interface (it decides failover vs surface).
  struct Result {
    WireStatus status = WireStatus::kTransport;
    std::uint8_t health = 0;   ///< shard HealthState from the response
    bool timed_out = false;    ///< kTransport caused by the deadline
    std::string message;
  };

  /// One request/response round-trip, no retries. `timeout_ms` 0 uses
  /// options.request_timeout_ms. Fills `out` only on kOk. Never
  /// throws; transport failures come back as kTransport.
  Result predict_once(const std::vector<std::uint16_t>& values,
                      const runtime::SubmitOptions& options,
                      vsa::Prediction* out, std::uint64_t timeout_ms = 0);

  /// Retrying round-trip mapped onto the runtime exception hierarchy:
  /// ServerOverloaded / RequestShed / DeadlineExceeded /
  /// runtime::UnknownTenant / RequestRefused(kShutdown) for wire
  /// refusals, std::runtime_error for backend kError, NetError for
  /// transport failure after retries.
  vsa::Prediction predict(const std::vector<std::uint16_t>& values,
                          const runtime::SubmitOptions& options = {});

  /// Health probe; throws NetError when the endpoint doesn't answer.
  PongFrame ping(std::uint64_t timeout_ms = 0);

  NetClientStats stats() const;
  const NetClientOptions& options() const { return options_; }

 private:
  struct Conn;

  /// Pool checkout (dials when idle-empty); null on connect failure.
  std::unique_ptr<Conn> checkout(std::string* why);
  void checkin(std::unique_ptr<Conn> conn);

  NetClientOptions options_;
  std::mutex mu_;
  std::vector<std::unique_ptr<Conn>> idle_;
  std::atomic<std::uint64_t> next_request_id_{1};
  std::atomic<std::uint64_t> requests_{0};
  std::atomic<std::uint64_t> retries_{0};
  std::atomic<std::uint64_t> timeouts_{0};
  std::atomic<std::uint64_t> transport_errors_{0};
};

}  // namespace univsa::net
