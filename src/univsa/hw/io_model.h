// Host-device I/O cost model (AXI).
//
// The paper's system moves control, input data, and results between the
// CPU and the FPGA over AXI_HPM_LPD (Sec. V-A). For streaming inference
// the question is whether the link ever becomes the bottleneck: per
// inference the input is W·L quantized levels (one byte each at M ≤ 256)
// and the output is a label (plus optionally C scores). This model
// estimates transfer cycles from bus width / burst structure and
// compares them with the compute interval — on every Table I
// configuration the datapath, not the link, binds (property-tested),
// which is what lets the paper treat I/O as covered by the pipeline.
#pragma once

#include <cstddef>

#include "univsa/hw/timing_model.h"
#include "univsa/vsa/model_config.h"

namespace univsa::hw {

struct AxiParams {
  double bus_mhz = 250.0;
  std::size_t data_width_bits = 32;
  std::size_t max_burst_beats = 16;
  /// Address/handshake overhead cycles per burst.
  std::size_t setup_cycles_per_burst = 4;
};

struct TransferEstimate {
  std::size_t bytes = 0;
  std::size_t beats = 0;
  std::size_t bursts = 0;
  std::size_t cycles = 0;
  double microseconds = 0.0;
};

/// Cycles/time to move `bytes` over the link.
TransferEstimate estimate_transfer(std::size_t bytes,
                                   const AxiParams& params = {});

struct IoReport {
  TransferEstimate input;    ///< W·L level bytes per inference
  TransferEstimate output;   ///< C scores (8 bytes each) + label
  double io_us = 0.0;        ///< input + output per inference
  double compute_interval_us = 0.0;  ///< streaming interval (BiConv)
  /// io_us / compute_interval_us — < 1 means the link is covered by the
  /// pipeline, as the paper assumes.
  double io_fraction = 0.0;
};

IoReport io_report_for(const vsa::ModelConfig& config,
                       const TimingParams& timing = {},
                       const AxiParams& axi = {});

}  // namespace univsa::hw
