// Event-driven streaming simulation with backpressure.
//
// The Fig. 5 scheduler (hw/pipeline.h) assumes back-to-back inputs and
// infinite buffering. Real deployments (the BCI streaming scenario of
// Sec. I) feed the accelerator at the sensor's rate through a finite
// input FIFO. This simulator models that regime:
//
//   - samples arrive at caller-specified cycles; an arrival with a full
//     input FIFO is *dropped* (the sensor cannot stall),
//   - the four stages are single-occupancy; a stage holds its result
//     until the next stage accepts it (blocking handoff — the double
//     buffer gives exactly one sample of skid per stage),
//   - the DVP stage pops the FIFO in order.
//
// It degenerates exactly to the analytic scheduler for back-to-back
// arrivals with a deep FIFO, and to latency = Σ stages for sparse
// arrivals — both property-tested. The saturation bench sweeps arrival
// rate to show throughput capping at the BiConv bound.
#pragma once

#include <array>
#include <cstddef>
#include <vector>

#include "univsa/hw/pipeline.h"
#include "univsa/hw/timing_model.h"

namespace univsa::hw {

struct EventSimConfig {
  StageCycles cycles;
  /// Controller overhead applied to every stage duration.
  double overhead = 1.0;
  /// Samples the input FIFO can hold (excluding the one inside DVP).
  std::size_t input_fifo_depth = 4;
};

struct SampleTiming {
  std::size_t arrival = 0;
  bool dropped = false;
  std::array<StageInterval, kStageCount> stages{};
  std::size_t completion() const { return stages.back().end; }
  std::size_t latency() const { return completion() - arrival; }
};

struct EventSimResult {
  std::vector<SampleTiming> samples;  ///< one per arrival, in order
  std::size_t accepted = 0;
  std::size_t dropped = 0;
  std::size_t makespan = 0;           ///< completion of the last sample
  std::size_t max_fifo_occupancy = 0;
  double mean_latency_cycles = 0.0;   ///< over accepted samples
  double achieved_throughput(double clock_mhz) const;
};

/// `arrival_cycles` must be non-decreasing.
EventSimResult simulate_stream(const EventSimConfig& config,
                               const std::vector<std::size_t>&
                                   arrival_cycles);

/// Convenience: `count` samples arriving every `period` cycles.
EventSimResult simulate_periodic(const EventSimConfig& config,
                                 std::size_t count, std::size_t period);

}  // namespace univsa::hw
