#include "univsa/hw/verilog_gen.h"

#include <cctype>
#include <fstream>
#include <sstream>

#include "univsa/common/contracts.h"

namespace univsa::hw {

namespace {

std::size_t clog2(std::size_t n) {
  std::size_t bits = 1;
  while ((1ULL << bits) < n) ++bits;
  return bits;
}

/// Hex literal "W'hXYZ" for the low `width` bits collected via `bit_at`.
template <typename BitAt>
std::string hex_literal(std::size_t width, BitAt bit_at) {
  UNIVSA_REQUIRE(width >= 1, "empty literal");
  const std::size_t nibbles = (width + 3) / 4;
  std::vector<unsigned> nibble(nibbles, 0);
  for (std::size_t i = 0; i < width; ++i) {
    if (bit_at(i)) nibble[i / 4] |= 1u << (i % 4);
  }
  std::ostringstream os;
  os << width << "'h";
  for (std::size_t k = nibbles; k > 0; --k) {
    os << "0123456789abcdef"[nibble[k - 1]];
  }
  return os.str();
}

/// Emit a synthesizable popcount function of the given input width.
std::string popcount_function(const std::string& name, std::size_t width,
                              std::size_t out_width) {
  std::ostringstream os;
  os << "  function [" << out_width - 1 << ":0] " << name << ";\n"
     << "    input [" << width - 1 << ":0] x;\n"
     << "    integer i;\n"
     << "    begin\n"
     << "      " << name << " = " << out_width << "'d0;\n"
     << "      for (i = 0; i < " << width << "; i = i + 1)\n"
     << "        " << name << " = " << name << " + x[i];\n"
     << "    end\n"
     << "  endfunction\n";
  return os.str();
}

}  // namespace

VerilogGenerator::VerilogGenerator(const vsa::Model& model,
                                   VerilogOptions options)
    : model_(model), options_(std::move(options)) {
  model_.config().validate();
  UNIVSA_REQUIRE(!options_.prefix.empty(), "empty module prefix");
  UNIVSA_REQUIRE(options_.acc_width >= 8 && options_.acc_width <= 32,
                 "accumulator width out of range");
}

std::string VerilogGenerator::value_rom() const {
  const vsa::ModelConfig& c = model_.config();
  const std::size_t level_w = clog2(c.M);
  const std::size_t addr_w = clog2(c.features());
  std::ostringstream os;

  os << "// DVP value projection: V_H / V_L tables + importance mask\n"
     << "// (Sec. IV-A \"Discriminated Value Projection\"; sequential,\n"
     << "// one feature per cycle).\n"
     << "module " << options_.prefix << "_value_rom (\n"
     << "  input  wire                 clk,\n"
     << "  input  wire [" << level_w - 1 << ":0] level,\n"
     << "  input  wire [" << addr_w - 1 << ":0] feature_idx,\n"
     << "  output reg  [" << c.D_H - 1 << ":0] vec_bits,\n"
     << "  output reg  [" << c.D_H - 1 << ":0] vec_valid\n"
     << ");\n";

  // V_H table.
  os << "  function [" << c.D_H - 1 << ":0] vh_lookup;\n"
     << "    input [" << level_w - 1 << ":0] m;\n"
     << "    begin\n      case (m)\n";
  for (std::size_t m = 0; m < c.M; ++m) {
    const BitVec& row = model_.value_table_high()[m];
    os << "        " << level_w << "'d" << m << ": vh_lookup = "
       << hex_literal(c.D_H,
                      [&](std::size_t d) { return row.get(d) == 1; })
       << ";\n";
  }
  os << "        default: vh_lookup = " << c.D_H << "'d0;\n"
     << "      endcase\n    end\n  endfunction\n";

  // V_L table.
  os << "  function [" << c.D_L - 1 << ":0] vl_lookup;\n"
     << "    input [" << level_w - 1 << ":0] m;\n"
     << "    begin\n      case (m)\n";
  for (std::size_t m = 0; m < c.M; ++m) {
    const BitVec& row = model_.value_table_low()[m];
    os << "        " << level_w << "'d" << m << ": vl_lookup = "
       << hex_literal(c.D_L,
                      [&](std::size_t d) { return row.get(d) == 1; })
       << ";\n";
  }
  os << "        default: vl_lookup = " << c.D_L << "'d0;\n"
     << "      endcase\n    end\n  endfunction\n";

  // Importance mask.
  os << "  function mask_lookup;\n"
     << "    input [" << addr_w - 1 << ":0] i;\n"
     << "    begin\n      case (i)\n";
  for (std::size_t i = 0; i < c.features(); ++i) {
    if (model_.mask()[i]) {
      os << "        " << addr_w << "'d" << i
         << ": mask_lookup = 1'b1;\n";
    }
  }
  os << "        default: mask_lookup = 1'b0;\n"
     << "      endcase\n    end\n  endfunction\n";

  os << "  always @(posedge clk) begin\n"
     << "    if (mask_lookup(feature_idx)) begin\n"
     << "      vec_bits  <= vh_lookup(level);\n"
     << "      vec_valid <= {" << c.D_H << "{1'b1}};\n"
     << "    end else begin\n"
     << "      vec_bits  <= {" << c.D_H << "'d0} | vl_lookup(level);\n"
     << "      vec_valid <= {" << c.D_H << "'d0} | {" << c.D_L
     << "{1'b1}};\n"
     << "    end\n"
     << "  end\nendmodule\n";
  return os.str();
}

std::string VerilogGenerator::biconv() const {
  const vsa::ModelConfig& c = model_.config();
  const std::size_t patch = c.D_H * c.D_K * c.D_K;
  const std::size_t aw = options_.acc_width;
  std::ostringstream os;

  os << "// BiConv: " << c.O << " parallel XNOR/popcount dot-product\n"
     << "// units, kernels K baked as localparams (Sec. IV-A, Eq. 6\n"
     << "// structure beta*D_K*O*D_H).\n"
     << "module " << options_.prefix << "_biconv (\n"
     << "  input  wire                 clk,\n"
     << "  input  wire                 in_valid,\n"
     << "  input  wire [" << patch - 1 << ":0] patch_bits,\n"
     << "  input  wire [" << patch - 1 << ":0] patch_valid,\n"
     << "  output reg  [" << c.O - 1 << ":0] out_bits,\n"
     << "  output reg                  out_valid\n"
     << ");\n";

  // Kernel constants: bit index = (kh*D_K + kw)*D_H + d.
  for (std::size_t o = 0; o < c.O; ++o) {
    os << "  localparam [" << patch - 1 << ":0] KERNEL_" << o << " = "
       << hex_literal(patch,
                      [&](std::size_t bit) {
                        const std::size_t k = bit / c.D_H;
                        const std::size_t d = bit % c.D_H;
                        return ((model_.kernel_bits()[o][k] >> d) & 1u) !=
                               0;
                      })
       << ";\n";
  }
  os << popcount_function("pc", patch, aw);
  os << "  wire [" << aw - 1 << ":0] valid_count = pc(patch_valid);\n";
  for (std::size_t o = 0; o < c.O; ++o) {
    os << "  wire [" << patch - 1 << ":0] agree_" << o
       << " = ~(patch_bits ^ KERNEL_" << o << ") & patch_valid;\n";
  }
  os << "  always @(posedge clk) begin\n"
     << "    out_valid <= in_valid;\n";
  for (std::size_t o = 0; o < c.O; ++o) {
    // sgn(2*agree - valid) with sgn(0) = +1.
    os << "    out_bits[" << o << "] <= ((pc(agree_" << o
       << ") << 1) >= valid_count);\n";
  }
  os << "  end\nendmodule\n";
  return os.str();
}

std::string VerilogGenerator::encode() const {
  const vsa::ModelConfig& c = model_.config();
  const std::size_t ns = c.sample_dim();
  const std::size_t pos_w = clog2(ns);
  const std::size_t aw = options_.acc_width;
  std::ostringstream os;

  os << "// Encoding (Eq. 1 over conv channels): O-wide XNOR row against\n"
     << "// the feature vectors F, adder tree, sign — one position per\n"
     << "// cycle (Sec. IV-A).\n"
     << "module " << options_.prefix << "_encode (\n"
     << "  input  wire                 clk,\n"
     << "  input  wire                 in_valid,\n"
     << "  input  wire [" << c.O - 1 << ":0] u_bits,\n"
     << "  input  wire [" << pos_w - 1 << ":0] pos,\n"
     << "  output reg                  s_bit,\n"
     << "  output reg                  out_valid\n"
     << ");\n";

  // F columns: for position j, the O lanes F[:, j].
  os << "  function [" << c.O - 1 << ":0] f_lookup;\n"
     << "    input [" << pos_w - 1 << ":0] j;\n"
     << "    begin\n      case (j)\n";
  for (std::size_t j = 0; j < ns; ++j) {
    os << "        " << pos_w << "'d" << j << ": f_lookup = "
       << hex_literal(c.O,
                      [&](std::size_t o) {
                        return model_.feature_vectors()[o].get(j) == 1;
                      })
       << ";\n";
  }
  os << "        default: f_lookup = " << c.O << "'d0;\n"
     << "      endcase\n    end\n  endfunction\n";
  os << popcount_function("pc", c.O, aw);
  os << "  wire [" << c.O - 1 << ":0] agree = ~(u_bits ^ f_lookup(pos));\n"
     << "  always @(posedge clk) begin\n"
     << "    out_valid <= in_valid;\n"
     << "    s_bit <= ((pc(agree) << 1) >= " << aw << "'d" << c.O
     << ");\n"
     << "  end\nendmodule\n";
  return os.str();
}

std::string VerilogGenerator::similarity() const {
  const vsa::ModelConfig& c = model_.config();
  const std::size_t ns = c.sample_dim();
  const std::size_t pos_w = clog2(ns);
  const std::size_t cnt_w = clog2(ns + 1) + 1;
  const std::size_t sum_w = cnt_w + clog2(c.Theta) + 1;
  const std::size_t label_w = clog2(c.C);
  std::ostringstream os;

  os << "// Similarity with soft voting (Eq. 4): Θ·C = " << c.Theta << "*"
     << c.C << " class-vector banks accumulate agreements as the sample\n"
     << "// vector streams by; argmax on `last` (Sec. IV-A).\n"
     << "module " << options_.prefix << "_similarity (\n"
     << "  input  wire                 clk,\n"
     << "  input  wire                 rst,\n"
     << "  input  wire                 in_valid,\n"
     << "  input  wire                 s_bit,\n"
     << "  input  wire [" << pos_w - 1 << ":0] pos,\n"
     << "  input  wire                 last,\n"
     << "  output reg  [" << label_w - 1 << ":0] label,\n"
     << "  output reg                  done\n"
     << ");\n";

  // One class-vector bit lookup per (theta, class).
  for (std::size_t t = 0; t < c.Theta; ++t) {
    for (std::size_t cls = 0; cls < c.C; ++cls) {
      const BitVec& cv = model_.class_vectors()[t * c.C + cls];
      os << "  function cls_lookup_" << t << "_" << cls << ";\n"
         << "    input [" << pos_w - 1 << ":0] j;\n"
         << "    begin\n      case (j)\n";
      for (std::size_t j = 0; j < ns; ++j) {
        if (cv.get(j) == 1) {
          os << "        " << pos_w << "'d" << j << ": cls_lookup_" << t
             << "_" << cls << " = 1'b1;\n";
        }
      }
      os << "        default: cls_lookup_" << t << "_" << cls
         << " = 1'b0;\n"
         << "      endcase\n    end\n  endfunction\n";
    }
  }

  // Agreement counters.
  for (std::size_t t = 0; t < c.Theta; ++t) {
    for (std::size_t cls = 0; cls < c.C; ++cls) {
      os << "  reg [" << cnt_w - 1 << ":0] cnt_" << t << "_" << cls
         << ";\n";
    }
  }
  for (std::size_t cls = 0; cls < c.C; ++cls) {
    os << "  wire [" << sum_w - 1 << ":0] sum_" << cls << " = ";
    for (std::size_t t = 0; t < c.Theta; ++t) {
      if (t) os << " + ";
      os << "cnt_" << t << "_" << cls;
    }
    os << ";\n";
  }

  os << "  always @(posedge clk) begin\n"
     << "    if (rst) begin\n"
     << "      done <= 1'b0;\n"
     << "      label <= " << label_w << "'d0;\n";
  for (std::size_t t = 0; t < c.Theta; ++t) {
    for (std::size_t cls = 0; cls < c.C; ++cls) {
      os << "      cnt_" << t << "_" << cls << " <= " << cnt_w
         << "'d0;\n";
    }
  }
  os << "    end else begin\n"
     << "      if (in_valid) begin\n";
  for (std::size_t t = 0; t < c.Theta; ++t) {
    for (std::size_t cls = 0; cls < c.C; ++cls) {
      os << "        cnt_" << t << "_" << cls << " <= cnt_" << t << "_"
         << cls << " + (s_bit == cls_lookup_" << t << "_" << cls
         << "(pos));\n";
    }
  }
  // Argmax with lowest-index tiebreak, evaluated on the cycle after the
  // last position was accumulated.
  os << "      end\n"
     << "      if (in_valid && last) begin\n"
     << "        done <= 1'b1;\n";
  // Argmax with lowest-index tiebreak. The counters only absorb the
  // final streamed bit on this same edge, so the combinational sums are
  // corrected with every voter's agreement at the last position.
  os << "        label <= argmax(";
  for (std::size_t cls = 0; cls < c.C; ++cls) {
    if (cls) os << ", ";
    os << "sum_" << cls;
    for (std::size_t t = 0; t < c.Theta; ++t) {
      os << " + (s_bit == cls_lookup_" << t << "_" << cls << "(pos))";
    }
  }
  os << ");\n"
     << "      end\n"
     << "    end\n"
     << "  end\n";

  // argmax function over C flattened sums.
  os << "  function [" << label_w - 1 << ":0] argmax;\n";
  for (std::size_t cls = 0; cls < c.C; ++cls) {
    os << "    input [" << sum_w - 1 << ":0] v" << cls << ";\n";
  }
  os << "    reg [" << sum_w - 1 << ":0] best;\n"
     << "    begin\n"
     << "      best = v0;\n"
     << "      argmax = " << label_w << "'d0;\n";
  for (std::size_t cls = 1; cls < c.C; ++cls) {
    os << "      if (v" << cls << " > best) begin best = v" << cls
       << "; argmax = " << label_w << "'d" << cls << "; end\n";
  }
  os << "    end\n  endfunction\nendmodule\n";
  return os.str();
}

std::string VerilogGenerator::top() const {
  const vsa::ModelConfig& c = model_.config();
  const std::size_t n = c.features();
  const std::size_t ns = c.sample_dim();
  const std::size_t level_w = clog2(c.M);
  const std::size_t addr_w = clog2(n);
  const std::size_t pos_w = clog2(ns);
  const std::size_t patch = c.D_H * c.D_K * c.D_K;
  const std::size_t label_w = clog2(c.C);
  const long pad = static_cast<long>(c.D_K / 2);
  std::ostringstream os;
  const std::string& p = options_.prefix;

  os << "// Top: central controller sequencing DVP -> volume RAM ->\n"
     << "// BiConv -> Encoding -> Similarity (Fig. 5). One sample at a\n"
     << "// time (the streaming double-buffer overlap is modelled in the\n"
     << "// C++ pipeline scheduler; this RTL keeps the datapath).\n"
     << "module " << p << "_top (\n"
     << "  input  wire                 clk,\n"
     << "  input  wire                 rst,\n"
     << "  input  wire                 start,\n"
     << "  input  wire [" << level_w - 1 << ":0] in_level,\n"
     << "  output reg  [" << addr_w - 1 << ":0] in_addr,\n"
     << "  output reg                  in_req,\n"
     << "  output wire [" << label_w - 1 << ":0] label,\n"
     << "  output wire                 done\n"
     << ");\n"
     << "  localparam integer N  = " << n << ";\n"
     << "  localparam integer NS = " << ns << ";\n"
     << "  localparam integer W  = " << c.W << ";\n"
     << "  localparam integer L  = " << c.L << ";\n"
     << "  localparam integer DK = " << c.D_K << ";\n"
     << "  localparam integer DH = " << c.D_H << ";\n"
     << "\n"
     << "  // Value volume RAM (bits + valid), filled by the DVP stage.\n"
     << "  reg [" << c.D_H - 1 << ":0] vol_bits  [0:N-1];\n"
     << "  reg [" << c.D_H - 1 << ":0] vol_valid [0:N-1];\n"
     << "  // Conv output plane, one " << c.O << "-bit word per position.\n"
     << "  reg [" << c.O - 1 << ":0] u_plane [0:NS-1];\n"
     << "\n"
     << "  // --- module instances\n"
     << "  reg  [" << level_w - 1 << ":0] rom_level;\n"
     << "  reg  [" << addr_w - 1 << ":0] rom_idx;\n"
     << "  wire [" << c.D_H - 1 << ":0] rom_bits, rom_valid;\n"
     << "  " << p << "_value_rom u_rom (.clk(clk), .level(rom_level),\n"
     << "    .feature_idx(rom_idx), .vec_bits(rom_bits),\n"
     << "    .vec_valid(rom_valid));\n"
     << "\n"
     << "  reg  conv_in_valid;\n"
     << "  reg  [" << patch - 1 << ":0] patch_bits, patch_valid;\n"
     << "  wire [" << c.O - 1 << ":0] conv_bits;\n"
     << "  wire conv_valid;\n"
     << "  " << p << "_biconv u_conv (.clk(clk), .in_valid(conv_in_valid),\n"
     << "    .patch_bits(patch_bits), .patch_valid(patch_valid),\n"
     << "    .out_bits(conv_bits), .out_valid(conv_valid));\n"
     << "\n"
     << "  reg  enc_in_valid;\n"
     << "  reg  [" << c.O - 1 << ":0] enc_u;\n"
     << "  reg  [" << pos_w - 1 << ":0] enc_pos;\n"
     << "  wire enc_s;\n"
     << "  wire enc_valid;\n"
     << "  " << p << "_encode u_enc (.clk(clk), .in_valid(enc_in_valid),\n"
     << "    .u_bits(enc_u), .pos(enc_pos), .s_bit(enc_s),\n"
     << "    .out_valid(enc_valid));\n"
     << "\n"
     << "  reg  sim_in_valid, sim_last;\n"
     << "  reg  sim_s;\n"
     << "  reg  [" << pos_w - 1 << ":0] sim_pos;\n"
     << "  " << p << "_similarity u_sim (.clk(clk), .rst(rst | start),\n"
     << "    .in_valid(sim_in_valid), .s_bit(sim_s), .pos(sim_pos),\n"
     << "    .last(sim_last), .label(label), .done(done));\n"
     << "\n"
     << "  // --- controller FSM\n"
     << "  localparam ST_IDLE = 3'd0, ST_LOAD = 3'd1, ST_CONV = 3'd2,\n"
     << "             ST_ENC = 3'd3, ST_SIM = 3'd4, ST_DONE = 3'd5;\n"
     << "  reg [2:0] state;\n"
     << "  reg [" << addr_w << ":0] idx;\n"
     << "  reg [1:0] phase;\n"
     << "  reg s_store [0:NS-1];\n"
     << "\n"
     << "  // patch assembly (combinational helper)\n"
     << "  task assemble_patch;\n"
     << "    input integer y;\n"
     << "    input integer x;\n"
     << "    integer kh, kw, d, sy, sx, b;\n"
     << "    begin\n"
     << "      patch_bits = " << patch << "'d0;\n"
     << "      patch_valid = " << patch << "'d0;\n"
     << "      for (kh = 0; kh < DK; kh = kh + 1)\n"
     << "        for (kw = 0; kw < DK; kw = kw + 1) begin\n"
     << "          sy = y + kh - " << pad << ";\n"
     << "          sx = x + kw - " << pad << ";\n"
     << "          if (sy >= 0 && sy < W && sx >= 0 && sx < L)\n"
     << "            for (d = 0; d < DH; d = d + 1) begin\n"
     << "              b = (kh * DK + kw) * DH + d;\n"
     << "              patch_bits[b]  = vol_bits[sy * L + sx][d];\n"
     << "              patch_valid[b] = vol_valid[sy * L + sx][d];\n"
     << "            end\n"
     << "        end\n"
     << "    end\n"
     << "  endtask\n"
     << "\n"
     << "  always @(posedge clk) begin\n"
     << "    if (rst) begin\n"
     << "      state <= ST_IDLE;\n"
     << "      in_req <= 1'b0;\n"
     << "      conv_in_valid <= 1'b0;\n"
     << "      enc_in_valid <= 1'b0;\n"
     << "      sim_in_valid <= 1'b0;\n"
     << "      sim_last <= 1'b0;\n"
     << "    end else begin\n"
     << "      conv_in_valid <= 1'b0;\n"
     << "      enc_in_valid <= 1'b0;\n"
     << "      sim_in_valid <= 1'b0;\n"
     << "      sim_last <= 1'b0;\n"
     << "      case (state)\n"
     << "        ST_IDLE: if (start) begin\n"
     << "          state <= ST_LOAD;\n"
     << "          idx <= 0;\n"
     << "          phase <= 0;\n"
     << "          in_req <= 1'b1;\n"
     << "          in_addr <= 0;\n"
     << "        end\n"
     << "        ST_LOAD: begin\n"
     << "          // phase 0: present level to ROM; phase 1: latch.\n"
     << "          if (phase == 0) begin\n"
     << "            rom_level <= in_level;\n"
     << "            rom_idx <= in_addr;\n"
     << "            phase <= 1;\n"
     << "          end else begin\n"
     << "            vol_bits[idx]  <= rom_bits;\n"
     << "            vol_valid[idx] <= rom_valid;\n"
     << "            phase <= 0;\n"
     << "            if (idx == N - 1) begin\n"
     << "              state <= ST_CONV;\n"
     << "              in_req <= 1'b0;\n"
     << "              idx <= 0;\n"
     << "            end else begin\n"
     << "              idx <= idx + 1;\n"
     << "              in_addr <= in_addr + 1;\n"
     << "            end\n"
     << "          end\n"
     << "        end\n"
     << "        ST_CONV: begin\n"
     << "          if (phase == 0) begin\n"
     << "            assemble_patch(idx / L, idx % L);\n"
     << "            conv_in_valid <= 1'b1;\n"
     << "            phase <= 1;\n"
     << "          end else begin\n"
     << "            u_plane[idx] <= conv_bits;\n"
     << "            phase <= 0;\n"
     << "            if (idx == NS - 1) begin\n"
     << "              state <= ST_ENC;\n"
     << "              idx <= 0;\n"
     << "            end else idx <= idx + 1;\n"
     << "          end\n"
     << "        end\n"
     << "        ST_ENC: begin\n"
     << "          if (phase == 0) begin\n"
     << "            enc_u <= u_plane[idx];\n"
     << "            enc_pos <= idx[" << pos_w - 1 << ":0];\n"
     << "            enc_in_valid <= 1'b1;\n"
     << "            phase <= 1;\n"
     << "          end else begin\n"
     << "            s_store[idx] <= enc_s;\n"
     << "            phase <= 0;\n"
     << "            if (idx == NS - 1) begin\n"
     << "              state <= ST_SIM;\n"
     << "              idx <= 0;\n"
     << "            end else idx <= idx + 1;\n"
     << "          end\n"
     << "        end\n"
     << "        ST_SIM: begin\n"
     << "          sim_s <= s_store[idx];\n"
     << "          sim_pos <= idx[" << pos_w - 1 << ":0];\n"
     << "          sim_in_valid <= 1'b1;\n"
     << "          if (idx == NS - 1) begin\n"
     << "            sim_last <= 1'b1;\n"
     << "            state <= ST_DONE;\n"
     << "          end else idx <= idx + 1;\n"
     << "        end\n"
     << "        ST_DONE: begin\n"
     << "          if (done) state <= ST_IDLE;\n"
     << "        end\n"
     << "        default: state <= ST_IDLE;\n"
     << "      endcase\n"
     << "    end\n"
     << "  end\n"
     << "endmodule\n";
  return os.str();
}

std::string VerilogGenerator::testbench(
    const std::vector<std::uint16_t>& sample) const {
  const vsa::ModelConfig& c = model_.config();
  UNIVSA_REQUIRE(sample.size() == c.features(), "sample size mismatch");
  const vsa::Prediction expected = model_.predict(sample);
  const std::size_t level_w = clog2(c.M);
  const std::size_t addr_w = clog2(c.features());
  std::ostringstream os;
  const std::string& p = options_.prefix;

  os << "// Self-checking testbench: streams one sample through " << p
     << "_top\n// and compares against the C++ functional simulator's "
        "label ("
     << expected.label << ").\n"
     << "`timescale 1ns/1ps\n"
     << "module " << p << "_tb;\n"
     << "  reg clk = 0, rst = 1, start = 0;\n"
     << "  reg [" << level_w - 1 << ":0] in_level;\n"
     << "  wire [" << addr_w - 1 << ":0] in_addr;\n"
     << "  wire in_req;\n"
     << "  wire [" << clog2(c.C) - 1 << ":0] label;\n"
     << "  wire done;\n"
     << "  reg [" << level_w - 1 << ":0] sample_mem [0:"
     << c.features() - 1 << "];\n"
     << "  " << p << "_top dut (.clk(clk), .rst(rst), .start(start),\n"
     << "    .in_level(in_level), .in_addr(in_addr), .in_req(in_req),\n"
     << "    .label(label), .done(done));\n"
     << "  always #5 clk = ~clk;\n"
     << "  always @(*) in_level = sample_mem[in_addr];\n"
     << "  integer i;\n"
     << "  initial begin\n";
  for (std::size_t i = 0; i < sample.size(); ++i) {
    os << "    sample_mem[" << i << "] = " << level_w << "'d" << sample[i]
       << ";\n";
  }
  os << "    repeat (4) @(posedge clk);\n"
     << "    rst = 0;\n"
     << "    @(posedge clk);\n"
     << "    start = 1;\n"
     << "    @(posedge clk);\n"
     << "    start = 0;\n"
     << "    wait (done);\n"
     << "    @(posedge clk);\n"
     << "    if (label == " << clog2(c.C) << "'d" << expected.label
     << ") $display(\"PASS label=%0d\", label);\n"
     << "    else $display(\"FAIL label=%0d expected=" << expected.label
     << "\", label);\n"
     << "    $finish;\n"
     << "  end\n"
     << "endmodule\n";
  return os.str();
}

std::string VerilogGenerator::emit_all() const {
  std::ostringstream os;
  os << value_rom() << '\n'
     << biconv() << '\n'
     << encode() << '\n'
     << similarity() << '\n'
     << top() << '\n';
  return os.str();
}

void VerilogGenerator::write_files(
    const std::string& directory,
    const std::vector<std::uint16_t>& sample) const {
  const std::string rtl_path =
      directory + "/" + options_.prefix + "_rtl.v";
  std::ofstream rtl(rtl_path);
  UNIVSA_REQUIRE(rtl.is_open(), "cannot open " + rtl_path);
  rtl << emit_all();
  UNIVSA_ENSURE(rtl.good(), "RTL write failed");

  const std::string tb_path = directory + "/" + options_.prefix + "_tb.v";
  std::ofstream tb(tb_path);
  UNIVSA_REQUIRE(tb.is_open(), "cannot open " + tb_path);
  tb << testbench(sample);
  UNIVSA_ENSURE(tb.good(), "testbench write failed");
}

std::vector<std::string> verilog_structural_problems(
    const std::string& source) {
  std::vector<std::string> problems;
  // Token-level balance of paired constructs. Comments stripped first.
  std::string text;
  text.reserve(source.size());
  for (std::size_t i = 0; i < source.size(); ++i) {
    if (source[i] == '/' && i + 1 < source.size() &&
        source[i + 1] == '/') {
      while (i < source.size() && source[i] != '\n') ++i;
      text += '\n';
    } else {
      text += source[i];
    }
  }

  const auto count_word = [&text](const std::string& word) {
    std::size_t count = 0;
    std::size_t pos = 0;
    while ((pos = text.find(word, pos)) != std::string::npos) {
      const bool left_ok =
          pos == 0 || (!std::isalnum(static_cast<unsigned char>(
                           text[pos - 1])) &&
                       text[pos - 1] != '_' && text[pos - 1] != '$');
      const std::size_t end = pos + word.size();
      const bool right_ok =
          end >= text.size() ||
          (!std::isalnum(static_cast<unsigned char>(text[end])) &&
           text[end] != '_');
      if (left_ok && right_ok) ++count;
      pos = end;
    }
    return count;
  };

  // Paired constructs must balance. count_word only matches standalone
  // tokens, so e.g. the "module" inside "endmodule" is not counted.
  const std::pair<const char*, const char*> pairs[] = {
      {"module", "endmodule"},
      {"function", "endfunction"},
      {"task", "endtask"},
      {"case", "endcase"},
      {"begin", "end"},
  };
  for (const auto& [open, close] : pairs) {
    const std::size_t opens = count_word(open);
    const std::size_t closes = count_word(close);
    if (opens != closes) {
      problems.push_back(std::string(open) + "/" + close +
                         " imbalance: " + std::to_string(opens) + " vs " +
                         std::to_string(closes));
    }
  }
  if (count_word("endmodule") == 0) {
    problems.push_back("no modules found");
  }
  return problems;
}

std::vector<std::string> verilog_module_names(const std::string& source) {
  std::vector<std::string> names;
  std::istringstream is(source);
  std::string line;
  while (std::getline(is, line)) {
    const std::size_t pos = line.find("module ");
    if (pos == std::string::npos) continue;
    if (line.find("endmodule") != std::string::npos) continue;
    // Must be at start of statement (allow leading spaces only).
    if (line.find_first_not_of(' ') != pos) continue;
    std::string rest = line.substr(pos + 7);
    std::string name;
    for (const char ch : rest) {
      if (std::isalnum(static_cast<unsigned char>(ch)) || ch == '_') {
        name += ch;
      } else {
        break;
      }
    }
    if (!name.empty()) names.push_back(name);
  }
  return names;
}

}  // namespace univsa::hw
