#include "univsa/hw/resource_model.h"

#include "univsa/common/contracts.h"
#include "univsa/data/benchmarks.h"
#include "univsa/vsa/memory_model.h"

namespace univsa::hw {

namespace {

ResourceEstimate estimate_raw(const vsa::ModelConfig& config,
                              const ResourceParams& params) {
  config.validate();
  ResourceEstimate e;
  const auto o = static_cast<double>(config.O);
  const auto dh = static_cast<double>(config.D_H);
  const auto dk = static_cast<double>(config.D_K);
  const auto theta = static_cast<double>(config.Theta);
  const auto classes = static_cast<double>(config.C);
  const auto length = static_cast<double>(config.L);

  e.dvp_luts = params.dvp_base + params.dvp_per_lane * dh;
  // Eq. 6 structure: β · D_K · O · D_H, plus a per-channel accumulator.
  e.biconv_luts =
      params.beta_conv * dk * o * dh + params.conv_accumulator * o;
  e.encoding_luts = params.encoding_per_channel * o + params.encoding_base;
  e.similarity_luts = params.similarity_per_voter * theta +
                      params.similarity_per_class * classes;
  // Double-buffered D_K-row slab of the (D_H, W, L) value volume.
  e.buffer_luts =
      2.0 * dh * length * dk / params.buffer_bits_per_lut;
  e.control_luts = params.control_base;

  const std::size_t model_bits = vsa::memory_bits(config);
  e.brams = std::max<std::size_t>(
      1, (model_bits + params.bram_bits - 1) / params.bram_bits);
  e.dsps = 0;  // XNOR/popcount datapath only
  return e;
}

}  // namespace

ResourceEstimate estimate_resources(const vsa::ModelConfig& config,
                                    const ResourceParams& params) {
  ResourceEstimate e = estimate_raw(config, params);
  e.dvp_luts *= params.global_scale;
  e.biconv_luts *= params.global_scale;
  e.encoding_luts *= params.global_scale;
  e.similarity_luts *= params.global_scale;
  e.buffer_luts *= params.global_scale;
  e.control_luts *= params.global_scale;
  return e;
}

const ResourceParams& calibrated_params() {
  static const ResourceParams calibrated = [] {
    ResourceParams p;
    // Calibrate the global scale so the ISOLET configuration (the row the
    // paper uses for its Table III comparison) lands on 7.92 kLUTs.
    const vsa::ModelConfig isolet =
        data::find_benchmark("ISOLET").config;
    const double raw = estimate_raw(isolet, p).total_luts();
    p.global_scale = 7920.0 / raw;
    return p;
  }();
  return calibrated;
}

ResourceEstimate estimate_resources(const vsa::ModelConfig& config) {
  return estimate_resources(config, calibrated_params());
}

}  // namespace univsa::hw
