// Verilog RTL generation for a trained UniVSA model (Sec. IV: the paper
// implements UniVSA in Verilog on a ZU3EG; this emitter produces the
// equivalent structure with the model's binary vector sets baked in).
//
// Emitted modules mirror the functional simulator one-for-one:
//   <prefix>_value_rom    — V_H / V_L tables + the importance mask
//                           (DVP, one feature per cycle),
//   <prefix>_biconv       — O parallel XNOR/popcount dot-product units
//                           with the kernel set K as localparams,
//   <prefix>_encode       — O-wide XNOR row against F + adder tree +
//                           sign, one output position per cycle,
//   <prefix>_similarity   — Θ·C class-vector XNOR/popcount banks and the
//                           argmax comparator,
//   <prefix>_top          — wiring + a small control FSM,
// plus a self-checking testbench that feeds one sample and compares the
// predicted label against the C++ functional simulator's result.
//
// The output is plain Verilog-2001 (no SystemVerilog), one clock, fully
// synchronous, constants as localparams — the style Vivado infers ROMs
// and LUT logic from. No Verilog simulator is available in this
// environment, so tests validate the emitted text structurally (module
// balance, ROM contents decode back to the model bits, port-width
// arithmetic, testbench expectations match the functional sim); see
// tests/hw/verilog_gen_test.cpp.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "univsa/vsa/model.h"

namespace univsa::hw {

struct VerilogOptions {
  std::string prefix = "univsa";
  /// Accumulator width for the conv / encode adders (bits, signed).
  std::size_t acc_width = 16;
};

class VerilogGenerator {
 public:
  explicit VerilogGenerator(const vsa::Model& model,
                            VerilogOptions options = {});

  std::string value_rom() const;
  std::string biconv() const;
  std::string encode() const;
  std::string similarity() const;
  std::string top() const;

  /// Self-checking testbench for `sample` (expected outputs computed via
  /// the model itself).
  std::string testbench(const std::vector<std::uint16_t>& sample) const;

  /// All modules concatenated (top last).
  std::string emit_all() const;

  /// Writes <prefix>_rtl.v and <prefix>_tb.v into `directory`.
  void write_files(const std::string& directory,
                   const std::vector<std::uint16_t>& sample) const;

 private:
  const vsa::Model& model_;
  VerilogOptions options_;
};

/// Minimal structural checks over emitted Verilog (used by tests and as a
/// generator self-check): balanced module/endmodule, begin/end,
/// case/endcase, function/endfunction; returns a list of human-readable
/// problems (empty = structurally sound).
std::vector<std::string> verilog_structural_problems(
    const std::string& source);

/// Names of the modules declared in `source`, in order.
std::vector<std::string> verilog_module_names(const std::string& source);

}  // namespace univsa::hw
