#include "univsa/hw/power_model.h"

#include "univsa/common/contracts.h"

namespace univsa::hw {

double estimate_power_w(const ResourceEstimate& resources, double clock_mhz,
                        const PowerParams& params) {
  UNIVSA_REQUIRE(clock_mhz > 0.0, "clock must be positive");
  const double dynamic = params.w_per_kilolut *
                         (resources.total_luts() / 1000.0) *
                         (clock_mhz / params.reference_clock_mhz);
  return params.static_w + dynamic;
}

double estimate_power_w(const vsa::ModelConfig& config, double clock_mhz,
                        const PowerParams& params) {
  return estimate_power_w(estimate_resources(config), clock_mhz, params);
}

}  // namespace univsa::hw
