#include "univsa/hw/c_emitter.h"

#include <fstream>
#include <sstream>

#include "univsa/common/contracts.h"

namespace univsa::hw {

namespace {

/// Packs lanes produced by `bit_at` into uint32 words, emitted as a C
/// initializer list (little-endian lanes: lane i -> word i/32, bit i%32).
template <typename BitAt>
std::string word_initializer(std::size_t bits, BitAt bit_at,
                             const char* indent) {
  const std::size_t words = (bits + 31) / 32;
  std::ostringstream os;
  for (std::size_t w = 0; w < words; ++w) {
    std::uint32_t value = 0;
    for (std::size_t b = 0; b < 32; ++b) {
      const std::size_t lane = w * 32 + b;
      if (lane < bits && bit_at(lane)) value |= 1u << b;
    }
    if (w % 6 == 0) os << (w == 0 ? "" : "\n") << indent;
    os << "0x" << std::hex << value << std::dec << "u, ";
  }
  return os.str();
}

}  // namespace

CEmitter::CEmitter(const vsa::Model& model, CEmitterOptions options)
    : model_(model), options_(std::move(options)) {
  model_.config().validate();
  UNIVSA_REQUIRE(!options_.prefix.empty(), "empty prefix");
}

std::string CEmitter::header() const {
  const vsa::ModelConfig& c = model_.config();
  const std::string& p = options_.prefix;
  std::ostringstream os;
  os << "/* Generated UniVSA inference header — do not edit. */\n"
     << "#ifndef " << p << "_MODEL_H\n"
     << "#define " << p << "_MODEL_H\n\n"
     << "#include <stdint.h>\n\n"
     << "#define " << p << "_N " << c.features()
     << "  /* input features (W*L) */\n"
     << "#define " << p << "_W " << c.W << "\n"
     << "#define " << p << "_L " << c.L << "\n"
     << "#define " << p << "_M " << c.M << "  /* quantization levels */\n"
     << "#define " << p << "_CLASSES " << c.C << "\n\n"
     << "#ifdef __cplusplus\nextern \"C\" {\n#endif\n\n"
     << "/* values: " << p << "_N levels in [0, " << p << "_M). Returns\n"
     << " * the predicted class in [0, " << p << "_CLASSES). */\n"
     << "int " << p << "_predict(const uint16_t *values);\n\n"
     << "/* Per-class similarity scores (Eq. 4 sums over the voters). */\n"
     << "void " << p << "_scores(const uint16_t *values,\n"
     << "                        long long *scores);\n\n"
     << "#ifdef __cplusplus\n}\n#endif\n"
     << "#endif /* " << p << "_MODEL_H */\n";
  return os.str();
}

std::string CEmitter::source() const {
  const vsa::ModelConfig& c = model_.config();
  const std::string& p = options_.prefix;
  const std::size_t n = c.features();
  const std::size_t ns = c.sample_dim();
  const std::size_t nsw = (ns + 31) / 32;
  const std::size_t kk = c.D_K * c.D_K;
  const long pad = static_cast<long>(c.D_K / 2);
  std::ostringstream os;

  os << "/* Generated UniVSA inference — C99, no heap, no libm. */\n"
     << "#include \"" << p << "_model.h\"\n\n";

  // --- tables.
  os << "/* importance mask, 1 bit per feature */\n"
     << "static const uint32_t " << p << "_mask[" << (n + 31) / 32
     << "] = {\n"
     << word_initializer(n,
                         [&](std::size_t i) {
                           return model_.mask()[i] != 0;
                         },
                         "  ")
     << "\n};\n\n";

  os << "/* V_H: one " << c.D_H << "-lane word per level */\n"
     << "static const uint32_t " << p << "_vh[" << c.M << "] = {\n";
  for (std::size_t m = 0; m < c.M; ++m) {
    os << "  0x" << std::hex
       << static_cast<std::uint32_t>(
              model_.value_table_high()[m].words()[0])
       << std::dec << "u,";
    if (m % 8 == 7) os << '\n';
  }
  os << "\n};\n\n";

  const std::uint32_t low_mask = (1u << c.D_L) - 1;
  os << "/* V_L: one " << c.D_L << "-lane word per level */\n"
     << "static const uint32_t " << p << "_vl[" << c.M << "] = {\n";
  for (std::size_t m = 0; m < c.M; ++m) {
    os << "  0x" << std::hex
       << (static_cast<std::uint32_t>(
               model_.value_table_low()[m].words()[0]) &
           low_mask)
       << std::dec << "u,";
    if (m % 8 == 7) os << '\n';
  }
  os << "\n};\n\n";

  os << "/* kernels: [O][D_K*D_K] channel-lane words */\n"
     << "static const uint32_t " << p << "_kern[" << c.O << "][" << kk
     << "] = {\n";
  for (std::size_t o = 0; o < c.O; ++o) {
    os << "  {";
    for (std::size_t k = 0; k < kk; ++k) {
      os << "0x" << std::hex << model_.kernel_bits()[o][k] << std::dec
         << "u, ";
    }
    os << "},\n";
  }
  os << "};\n\n";

  os << "/* feature vectors F: [O][" << nsw << "] packed sample-dim "
        "words */\n"
     << "static const uint32_t " << p << "_f[" << c.O << "][" << nsw
     << "] = {\n";
  for (std::size_t o = 0; o < c.O; ++o) {
    os << "  {"
       << word_initializer(ns,
                           [&](std::size_t j) {
                             return model_.feature_vectors()[o].get(j) ==
                                    1;
                           },
                           "   ")
       << "},\n";
  }
  os << "};\n\n";

  os << "/* class vectors C: [Theta*C][" << nsw << "] */\n"
     << "static const uint32_t " << p << "_c[" << c.Theta * c.C << "]["
     << nsw << "] = {\n";
  for (std::size_t r = 0; r < c.Theta * c.C; ++r) {
    os << "  {"
       << word_initializer(ns,
                           [&](std::size_t j) {
                             return model_.class_vectors()[r].get(j) == 1;
                           },
                           "   ")
       << "},\n";
  }
  os << "};\n\n";

  // --- helpers.
  os << "static int " << p << "_pop32(uint32_t x) {\n"
     << "#if defined(__GNUC__) || defined(__clang__)\n"
     << "  return __builtin_popcount(x);\n"
     << "#else\n"
     << "  int count = 0;\n"
     << "  while (x) { x &= x - 1u; ++count; }\n"
     << "  return count;\n"
     << "#endif\n"
     << "}\n\n";

  // --- pipeline.
  const std::uint32_t high_valid =
      c.D_H == 32 ? 0xffffffffu : (1u << c.D_H) - 1;
  os << "void " << p << "_scores(const uint16_t *values,\n"
     << "                        long long *scores) {\n"
     << "  uint32_t vol_bits[" << p << "_N];\n"
     << "  uint32_t vol_valid[" << p << "_N];\n"
     << "  uint32_t u[" << c.O << "][" << nsw << "] = {{0}};\n"
     << "  uint32_t s[" << nsw << "] = {0};\n"
     << "  int i, o, y, x, kh, kw, j, t, cls;\n"
     << "\n"
     << "  /* DVP: value-table lookup routed by the importance mask */\n"
     << "  for (i = 0; i < " << p << "_N; ++i) {\n"
     << "    if ((" << p << "_mask[i >> 5] >> (i & 31)) & 1u) {\n"
     << "      vol_bits[i] = " << p << "_vh[values[i]];\n"
     << "      vol_valid[i] = 0x" << std::hex << high_valid << std::dec
     << "u;\n"
     << "    } else {\n"
     << "      vol_bits[i] = " << p << "_vl[values[i]];\n"
     << "      vol_valid[i] = 0x" << std::hex << low_mask << std::dec
     << "u;\n"
     << "    }\n"
     << "  }\n"
     << "\n"
     << "  /* BiConv: XNOR/popcount dot products, sgn(0) = +1 */\n"
     << "  for (y = 0; y < " << c.W << "; ++y) {\n"
     << "    for (x = 0; x < " << c.L << "; ++x) {\n"
     << "      for (o = 0; o < " << c.O << "; ++o) {\n"
     << "        long long acc = 0;\n"
     << "        for (kh = 0; kh < " << c.D_K << "; ++kh) {\n"
     << "          int sy = y + kh - " << pad << ";\n"
     << "          if (sy < 0 || sy >= " << c.W << ") continue;\n"
     << "          for (kw = 0; kw < " << c.D_K << "; ++kw) {\n"
     << "            int sx = x + kw - " << pad << ";\n"
     << "            uint32_t pv_bits, pv_valid, agree;\n"
     << "            if (sx < 0 || sx >= " << c.L << ") continue;\n"
     << "            pv_bits = vol_bits[sy * " << c.L << " + sx];\n"
     << "            pv_valid = vol_valid[sy * " << c.L << " + sx];\n"
     << "            agree = ~(pv_bits ^ " << p << "_kern[o][kh * "
     << c.D_K << " + kw]) & pv_valid;\n"
     << "            acc += 2ll * " << p << "_pop32(agree) - " << p
     << "_pop32(pv_valid);\n"
     << "          }\n"
     << "        }\n"
     << "        if (acc >= 0) {\n"
     << "          j = y * " << c.L << " + x;\n"
     << "          u[o][j >> 5] |= 1u << (j & 31);\n"
     << "        }\n"
     << "      }\n"
     << "    }\n"
     << "  }\n"
     << "\n"
     << "  /* Encoding (Eq. 1 over channels), sgn(0) = +1 */\n"
     << "  for (j = 0; j < " << ns << "; ++j) {\n"
     << "    int sum = 0;\n"
     << "    for (o = 0; o < " << c.O << "; ++o) {\n"
     << "      uint32_t fb = (" << p << "_f[o][j >> 5] >> (j & 31)) & "
        "1u;\n"
     << "      uint32_t ub = (u[o][j >> 5] >> (j & 31)) & 1u;\n"
     << "      sum += (fb == ub) ? 1 : -1;\n"
     << "    }\n"
     << "    if (sum >= 0) s[j >> 5] |= 1u << (j & 31);\n"
     << "  }\n"
     << "\n"
     << "  /* Similarity with soft voting (Eq. 4) */\n"
     << "  for (cls = 0; cls < " << p << "_CLASSES; ++cls) {\n"
     << "    long long score = 0;\n"
     << "    for (t = 0; t < " << c.Theta << "; ++t) {\n"
     << "      const uint32_t *cv = " << p << "_c[t * " << p
     << "_CLASSES + cls];\n"
     << "      int matches = 0;\n"
     << "      for (j = 0; j < " << nsw << "; ++j) {\n"
     << "        uint32_t word_mask;\n";
  // Tail mask for the final word.
  const std::size_t rem = ns % 32;
  if (rem == 0) {
    os << "        word_mask = 0xffffffffu;\n";
  } else {
    os << "        word_mask = (j == " << nsw - 1 << ") ? 0x" << std::hex
       << ((1u << rem) - 1) << std::dec << "u : 0xffffffffu;\n";
  }
  os << "        matches += " << p << "_pop32(~(s[j] ^ cv[j]) & "
        "word_mask);\n"
     << "      }\n"
     << "      score += 2ll * matches - " << ns << ";\n"
     << "    }\n"
     << "    scores[cls] = score;\n"
     << "  }\n"
     << "}\n\n"
     << "int " << p << "_predict(const uint16_t *values) {\n"
     << "  long long scores[" << p << "_CLASSES];\n"
     << "  int cls, best = 0;\n"
     << "  " << p << "_scores(values, scores);\n"
     << "  for (cls = 1; cls < " << p << "_CLASSES; ++cls) {\n"
     << "    if (scores[cls] > scores[best]) best = cls;\n"
     << "  }\n"
     << "  return best;\n"
     << "}\n";
  return os.str();
}

std::string CEmitter::demo_main() const {
  const std::string& p = options_.prefix;
  std::ostringstream os;
  os << "/* Generated demo driver: levels on argv -> label + scores. */\n"
     << "#include <stdio.h>\n"
     << "#include <stdlib.h>\n"
     << "#include \"" << p << "_model.h\"\n\n"
     << "int main(int argc, char **argv) {\n"
     << "  uint16_t values[" << p << "_N];\n"
     << "  long long scores[" << p << "_CLASSES];\n"
     << "  int i;\n"
     << "  if (argc != 1 + " << p << "_N) {\n"
     << "    fprintf(stderr, \"expected %d values\\n\", " << p
     << "_N);\n"
     << "    return 2;\n"
     << "  }\n"
     << "  for (i = 0; i < " << p << "_N; ++i) {\n"
     << "    long v = strtol(argv[1 + i], 0, 10);\n"
     << "    if (v < 0 || v >= " << p << "_M) {\n"
     << "      fprintf(stderr, \"value out of range\\n\");\n"
     << "      return 2;\n"
     << "    }\n"
     << "    values[i] = (uint16_t)v;\n"
     << "  }\n"
     << "  " << p << "_scores(values, scores);\n"
     << "  printf(\"label %d\\n\", " << p << "_predict(values));\n"
     << "  for (i = 0; i < " << p << "_CLASSES; ++i) {\n"
     << "    printf(\"score[%d] %lld\\n\", i, scores[i]);\n"
     << "  }\n"
     << "  return 0;\n"
     << "}\n";
  return os.str();
}

void CEmitter::write_files(const std::string& directory,
                           bool with_main) const {
  const auto write = [&](const std::string& name,
                         const std::string& content) {
    const std::string path = directory + "/" + name;
    std::ofstream os(path);
    UNIVSA_REQUIRE(os.is_open(), "cannot open " + path);
    os << content;
    UNIVSA_ENSURE(os.good(), "write failed: " + path);
  };
  write(options_.prefix + "_model.h", header());
  write(options_.prefix + "_model.c", source());
  if (with_main) {
    write(options_.prefix + "_main.c", demo_main());
  }
}

}  // namespace univsa::hw
