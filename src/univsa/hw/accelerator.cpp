#include "univsa/hw/accelerator.h"

#include "univsa/vsa/memory_model.h"

namespace univsa::hw {

HardwareReport report_for(const vsa::ModelConfig& config,
                          const TimingParams& timing) {
  config.validate();
  HardwareReport r;
  r.config = config;
  r.clock_mhz = timing.clock_mhz;
  r.memory_kb = vsa::memory_kb(config);
  r.cycles = stage_cycles(config, timing);
  r.latency_ms = latency_ms(config, timing);
  r.throughput_kilo = throughput_per_s(config, timing) / 1000.0;
  r.resources = estimate_resources(config);
  r.kiloluts = r.resources.total_luts() / 1000.0;
  r.brams = r.resources.brams;
  r.dsps = r.resources.dsps;
  r.power_w = estimate_power_w(r.resources, timing.clock_mhz);
  r.energy_per_inference_uj =
      r.power_w / (r.throughput_kilo * 1000.0) * 1e6;
  return r;
}

}  // namespace univsa::hw
