// Hardware report facade — the composed models behind Tables III/IV.
//
// For a configuration, combines Eq. 5 memory, the timing model (latency,
// streaming throughput), the resource model (LUT/BRAM/DSP), and the power
// model into the row format the paper's hardware tables use.
#pragma once

#include <string>

#include "univsa/hw/power_model.h"
#include "univsa/hw/resource_model.h"
#include "univsa/hw/timing_model.h"
#include "univsa/vsa/model_config.h"

namespace univsa::hw {

struct HardwareReport {
  vsa::ModelConfig config;
  double clock_mhz = 250.0;
  double memory_kb = 0.0;
  double latency_ms = 0.0;
  double power_w = 0.0;
  double kiloluts = 0.0;
  std::size_t brams = 0;
  std::size_t dsps = 0;
  /// Streaming inferences/s ÷ 1000 (Table IV's ×10³ column).
  double throughput_kilo = 0.0;
  /// Steady-state energy per inference in microjoules
  /// (power / throughput) — the figure of merit for battery/implant
  /// budgets.
  double energy_per_inference_uj = 0.0;
  StageCycles cycles;  ///< pre-overhead per-stage cycles
  ResourceEstimate resources;
};

HardwareReport report_for(const vsa::ModelConfig& config,
                          const TimingParams& timing = {});

}  // namespace univsa::hw
