#include "univsa/hw/timing_model.h"

#include <algorithm>
#include <cmath>

#include "univsa/common/contracts.h"

namespace univsa::hw {

namespace {
std::size_t ceil_log2(std::size_t n) {
  std::size_t bits = 0;
  std::size_t v = 1;
  while (v < n) {
    v <<= 1;
    ++bits;
  }
  return bits;
}
}  // namespace

std::size_t StageCycles::interval() const {
  return std::max({dvp, biconv, encoding, similarity});
}

std::size_t conv_iteration_cycles(const vsa::ModelConfig& config) {
  config.validate();
  return std::max(config.D_K, ceil_log2(config.D_H));
}

StageCycles stage_cycles(const vsa::ModelConfig& config,
                         const TimingParams& params) {
  config.validate();
  StageCycles s;
  const std::size_t n = config.features();
  const std::size_t ns = config.sample_dim();

  s.dvp = n + params.dvp_pipeline_depth;
  s.biconv = ns * config.D_K * conv_iteration_cycles(config);
  s.encoding = ns + ceil_log2(config.O) + 2;
  const std::size_t words =
      (ns + params.popcount_width - 1) / params.popcount_width;
  s.similarity = config.C * words + ceil_log2(ns);
  return s;
}

std::size_t latency_cycles(const vsa::ModelConfig& config,
                           const TimingParams& params) {
  const StageCycles s = stage_cycles(config, params);
  return static_cast<std::size_t>(
      std::llround(params.controller_overhead *
                   static_cast<double>(s.total())));
}

double latency_ms(const vsa::ModelConfig& config,
                  const TimingParams& params) {
  return static_cast<double>(latency_cycles(config, params)) /
         (params.clock_mhz * 1e3);
}

double throughput_per_s(const vsa::ModelConfig& config,
                        const TimingParams& params) {
  const StageCycles s = stage_cycles(config, params);
  const double interval_cycles =
      params.controller_overhead * static_cast<double>(s.interval());
  return params.clock_mhz * 1e6 / interval_cycles;
}

}  // namespace univsa::hw
