// Cycle model of the UniVSA accelerator (Sec. IV-A, Fig. 5).
//
// Stage formulas follow the paper's scheduling notes:
//   DVP        — sequential, one feature per cycle through the ValueBox
//                lookup pipeline, fed by the input FIFO.
//   BiConv     — W'·L'·D_K iterations, each taking
//                α = max{D_K, ⌈log2 D_H⌉} cycles (Fig. 5 bottom-right);
//                kernels are split O ways so O does not appear in time.
//   Encoding   — partially parallel along O: one output position per
//                cycle through an O-wide XNOR row + adder tree.
//   Similarity — partially parallel along Θ: per class, popcount over
//                N_s lanes in 64-lane words.
// A single calibrated controller-overhead factor (κ = 1.5625) maps model
// cycles to the paper's measured Table IV numbers; with it, throughput
// and latency match the five D_K = 3 tasks within ~1% (the D_K = 5 task
// CHB-IB deviates ~20%; see EXPERIMENTS.md).
#pragma once

#include <cstddef>

#include "univsa/vsa/model_config.h"

namespace univsa::hw {

struct TimingParams {
  double clock_mhz = 250.0;
  /// Controller/handshake overhead multiplier (calibrated, see header).
  double controller_overhead = 1.5625;
  /// FIFO fill + ValueBox lookup pipeline depth.
  std::size_t dvp_pipeline_depth = 12;
  /// 64-lane popcount per cycle in the similarity stage.
  std::size_t popcount_width = 64;
};

struct StageCycles {
  std::size_t dvp = 0;
  std::size_t biconv = 0;
  std::size_t encoding = 0;
  std::size_t similarity = 0;

  std::size_t total() const { return dvp + biconv + encoding + similarity; }
  /// The streaming initiation interval — the slowest stage (BiConv in
  /// every Table I configuration; asserted in tests).
  std::size_t interval() const;
};

/// α = max{D_K, ⌈log2 D_H⌉} — per-convolution-iteration cycles.
std::size_t conv_iteration_cycles(const vsa::ModelConfig& config);

/// Ideal per-stage cycles (before controller overhead).
StageCycles stage_cycles(const vsa::ModelConfig& config,
                         const TimingParams& params = {});

/// Single-input latency in cycles / milliseconds (overhead applied).
std::size_t latency_cycles(const vsa::ModelConfig& config,
                           const TimingParams& params = {});
double latency_ms(const vsa::ModelConfig& config,
                  const TimingParams& params = {});

/// Streaming throughput (inferences/s) under pipelining (overhead
/// applied): clock / (κ · interval).
double throughput_per_s(const vsa::ModelConfig& config,
                        const TimingParams& params = {});

}  // namespace univsa::hw
