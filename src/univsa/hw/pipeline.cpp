#include "univsa/hw/pipeline.h"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "univsa/common/contracts.h"

namespace univsa::hw {

std::size_t StreamSchedule::steady_interval() const {
  UNIVSA_REQUIRE(samples.size() >= 2,
                 "steady interval needs at least two samples");
  const auto& last = samples.back().stages.back();
  const auto& prev = samples[samples.size() - 2].stages.back();
  return last.end - prev.end;
}

double StreamSchedule::achieved_throughput(double clock_mhz) const {
  UNIVSA_REQUIRE(!samples.empty() && makespan > 0, "empty schedule");
  return static_cast<double>(samples.size()) * clock_mhz * 1e6 /
         static_cast<double>(makespan);
}

StreamSchedule schedule_stream(const StageCycles& cycles, std::size_t count,
                               double overhead) {
  UNIVSA_REQUIRE(count > 0, "need at least one sample");
  UNIVSA_REQUIRE(overhead >= 1.0, "overhead factor must be >= 1");

  const auto scaled = [overhead](std::size_t c) {
    return static_cast<std::size_t>(
        std::llround(overhead * static_cast<double>(c)));
  };
  const std::array<std::size_t, kStageCount> durations = {
      scaled(cycles.dvp), scaled(cycles.biconv), scaled(cycles.encoding),
      scaled(cycles.similarity)};

  StreamSchedule schedule;
  schedule.samples.resize(count);
  std::array<std::size_t, kStageCount> stage_free{};  // end of last use

  for (std::size_t k = 0; k < count; ++k) {
    std::size_t ready = 0;  // end of previous stage for this sample
    for (std::size_t s = 0; s < kStageCount; ++s) {
      const std::size_t start = std::max(ready, stage_free[s]);
      const std::size_t end = start + durations[s];
      schedule.samples[k].stages[s] = {start, end};
      stage_free[s] = end;
      ready = end;
    }
    schedule.makespan =
        std::max(schedule.makespan, schedule.samples[k].stages.back().end);
  }
  return schedule;
}

std::string render_gantt(const StreamSchedule& schedule, std::size_t width) {
  UNIVSA_REQUIRE(width >= 16, "gantt width too small");
  UNIVSA_REQUIRE(!schedule.samples.empty(), "empty schedule");
  const double scale = static_cast<double>(width) /
                       static_cast<double>(schedule.makespan);

  std::ostringstream os;
  os << "cycles 0 .. " << schedule.makespan << "  (one column ≈ "
     << static_cast<std::size_t>(1.0 / scale + 0.5) << " cycles)\n";
  for (std::size_t k = 0; k < schedule.samples.size(); ++k) {
    for (std::size_t s = 0; s < kStageCount; ++s) {
      const auto& iv = schedule.samples[k].stages[s];
      auto c0 = static_cast<std::size_t>(iv.start * scale);
      auto c1 = static_cast<std::size_t>(iv.end * scale);
      c1 = std::max(c1, c0 + 1);  // always visible
      c1 = std::min(c1, width);
      std::string row(width, '.');
      for (std::size_t c = c0; c < c1; ++c) row[c] = '0' + (k % 10);
      os << "x" << k << " " << kStageNames[s];
      for (std::size_t p = std::string(kStageNames[s]).size(); p < 8; ++p) {
        os << ' ';
      }
      os << '|' << row << "|\n";
    }
  }
  return os.str();
}

}  // namespace univsa::hw
