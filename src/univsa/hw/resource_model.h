// FPGA resource model (Eq. 6 plus per-stage structural terms).
//
// Architectural LUT estimate per stage:
//   DVP        — value-table addressing + FIFO control (small constant +
//                output lane registers),
//   BiConv     — O parallel dot-product units: D_H·D_K XNORs, a popcount
//                adder tree (~2× the XNOR count), and an accumulator —
//                this is Eq. 6's β·D_K·O·D_H with β ≈ 3, the dominant
//                term (Fig. 6),
//   Encoding   — O-wide XNOR row + adder tree over O,
//   Similarity — Θ parallel 64-lane XNOR+popcount units + per-class
//                accumulate/compare,
//   Buffers    — double-buffered D_K-row slab of the value volume in
//                LUTRAM (2 bits/LUT),
//   Control    — central controller constant.
// A single global scale is calibrated so the ISOLET configuration lands
// on Table III's 7.92 kLUTs; the other five tasks are then predictions
// (paper-vs-model residuals are tabulated in EXPERIMENTS.md — the paper's
// per-task synthesis results do not follow any simple closed form).
//
// BRAMs: Eq. 5 model bits in 36-kbit blocks (matches Table IV for 5/6
// tasks). DSPs: 0 — the datapath is XNOR/popcount only (matches all).
#pragma once

#include <cstddef>

#include "univsa/vsa/model_config.h"

namespace univsa::hw {

struct ResourceParams {
  double beta_conv = 3.0;      ///< Eq. 6 β: LUTs per conv XNOR lane
  double conv_accumulator = 12.0;
  double dvp_base = 200.0;
  double dvp_per_lane = 4.0;
  double encoding_per_channel = 3.0;
  double encoding_base = 16.0;
  double similarity_per_voter = 160.0;
  double similarity_per_class = 16.0;
  double buffer_bits_per_lut = 2.0;
  double control_base = 400.0;
  /// Global calibration so ISOLET = 7.92 kLUTs (Table III row).
  double global_scale = 1.0;
  std::size_t bram_bits = 36 * 1024;
};

/// Parameter set with global_scale calibrated on the ISOLET row.
const ResourceParams& calibrated_params();

struct ResourceEstimate {
  double dvp_luts = 0.0;
  double biconv_luts = 0.0;
  double encoding_luts = 0.0;
  double similarity_luts = 0.0;
  double buffer_luts = 0.0;
  double control_luts = 0.0;
  std::size_t brams = 0;
  std::size_t dsps = 0;

  double total_luts() const {
    return dvp_luts + biconv_luts + encoding_luts + similarity_luts +
           buffer_luts + control_luts;
  }
};

ResourceEstimate estimate_resources(const vsa::ModelConfig& config,
                                    const ResourceParams& params);

/// Convenience with calibrated_params().
ResourceEstimate estimate_resources(const vsa::ModelConfig& config);

}  // namespace univsa::hw
