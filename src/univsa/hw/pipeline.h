// Streaming pipeline scheduler (Fig. 5 bottom-right).
//
// Under streaming inputs the central controller overlaps the four stages
// across consecutive samples; double buffering lets a stage accept sample
// k+1 as soon as it finished sample k. The schedule therefore follows the
// classic pipeline recurrence
//   start(k, s) = max( end(k, s-1), end(k-1, s) )
// and the steady-state initiation interval is the slowest stage — BiConv
// for every Table I configuration. render_gantt() draws the schedule the
// way the paper's figure does.
#pragma once

#include <array>
#include <cstddef>
#include <string>
#include <vector>

#include "univsa/hw/timing_model.h"

namespace univsa::hw {

inline constexpr std::size_t kStageCount = 4;
inline constexpr std::array<const char*, kStageCount> kStageNames = {
    "DVP", "BiConv", "Encode", "Similar"};

struct StageInterval {
  std::size_t start = 0;
  std::size_t end = 0;  ///< exclusive
};

struct SampleSchedule {
  std::array<StageInterval, kStageCount> stages;
};

struct StreamSchedule {
  std::vector<SampleSchedule> samples;
  std::size_t makespan = 0;  ///< cycles until the last result

  /// Steady-state initiation interval in cycles (difference between the
  /// last two completions; equals the slowest stage once the pipe fills).
  std::size_t steady_interval() const;

  /// Achieved inferences/s for the whole stream.
  double achieved_throughput(double clock_mhz) const;
};

/// Schedules `count` back-to-back samples. `overhead` scales every stage
/// duration (the controller factor of TimingParams).
StreamSchedule schedule_stream(const StageCycles& cycles, std::size_t count,
                               double overhead = 1.0);

/// ASCII Gantt chart, one row per (sample, stage), `width` characters of
/// timeline.
std::string render_gantt(const StreamSchedule& schedule,
                         std::size_t width = 72);

}  // namespace univsa::hw
