#include "univsa/hw/event_sim.h"

#include <algorithm>
#include <cmath>
#include <deque>

#include "univsa/common/contracts.h"

namespace univsa::hw {

double EventSimResult::achieved_throughput(double clock_mhz) const {
  UNIVSA_REQUIRE(accepted > 0 && makespan > 0, "empty simulation");
  return static_cast<double>(accepted) * clock_mhz * 1e6 /
         static_cast<double>(makespan);
}

EventSimResult simulate_stream(
    const EventSimConfig& config,
    const std::vector<std::size_t>& arrival_cycles) {
  UNIVSA_REQUIRE(!arrival_cycles.empty(), "no arrivals");
  UNIVSA_REQUIRE(config.overhead >= 1.0, "overhead must be >= 1");
  for (std::size_t i = 1; i < arrival_cycles.size(); ++i) {
    UNIVSA_REQUIRE(arrival_cycles[i] >= arrival_cycles[i - 1],
                   "arrivals must be non-decreasing");
  }

  const auto scaled = [&config](std::size_t c) {
    return static_cast<std::size_t>(
        std::llround(config.overhead * static_cast<double>(c)));
  };
  const std::array<std::size_t, kStageCount> durations = {
      scaled(config.cycles.dvp), scaled(config.cycles.biconv),
      scaled(config.cycles.encoding), scaled(config.cycles.similarity)};

  EventSimResult result;
  result.samples.resize(arrival_cycles.size());

  // For the in-order single-occupancy pipeline with blocking handoff the
  // schedule follows a recurrence. free_at[s] = cycle at which stage s
  // can accept a new sample (it released its previous one downstream).
  std::array<std::size_t, kStageCount> free_at{};
  // dvp_start_times of accepted samples — used to replay FIFO occupancy.
  std::vector<std::size_t> admit_time;
  std::vector<std::size_t> dvp_start;

  double latency_sum = 0.0;
  for (std::size_t k = 0; k < arrival_cycles.size(); ++k) {
    SampleTiming& t = result.samples[k];
    t.arrival = arrival_cycles[k];

    // FIFO admission check: occupancy = accepted samples that have
    // arrived but whose DVP hasn't started by this arrival cycle.
    std::size_t occupancy = 0;
    for (std::size_t j = 0; j < admit_time.size(); ++j) {
      if (admit_time[j] <= t.arrival && dvp_start[j] > t.arrival) {
        ++occupancy;
      }
    }
    result.max_fifo_occupancy =
        std::max(result.max_fifo_occupancy, occupancy);
    if (occupancy >= config.input_fifo_depth) {
      t.dropped = true;
      ++result.dropped;
      continue;
    }

    // Schedule through the four stages with blocking handoff:
    //   start(s) = max(prev stage completion, stage free time)
    //   a stage frees when the *next* stage starts (it must hold its
    //   output), except the last stage which frees at its own end.
    std::size_t ready = t.arrival;
    std::array<std::size_t, kStageCount> start{};
    std::array<std::size_t, kStageCount> finish{};
    for (std::size_t s = 0; s < kStageCount; ++s) {
      start[s] = std::max(ready, free_at[s]);
      finish[s] = start[s] + durations[s];
      ready = finish[s];
    }
    // Propagate blocking: stage s cannot start handoff until stage s+1
    // actually accepted; recompute frees back-to-front.
    for (std::size_t s = 0; s + 1 < kStageCount; ++s) {
      free_at[s] = std::max(finish[s], start[s + 1]);
    }
    free_at[kStageCount - 1] = finish[kStageCount - 1];

    for (std::size_t s = 0; s < kStageCount; ++s) {
      t.stages[s] = {start[s], finish[s]};
    }
    admit_time.push_back(t.arrival);
    dvp_start.push_back(start[0]);
    ++result.accepted;
    latency_sum += static_cast<double>(t.latency());
    result.makespan = std::max(result.makespan, t.completion());
  }

  UNIVSA_REQUIRE(result.accepted > 0, "every sample was dropped");
  result.mean_latency_cycles =
      latency_sum / static_cast<double>(result.accepted);
  return result;
}

EventSimResult simulate_periodic(const EventSimConfig& config,
                                 std::size_t count, std::size_t period) {
  UNIVSA_REQUIRE(count > 0, "need at least one sample");
  std::vector<std::size_t> arrivals(count);
  for (std::size_t i = 0; i < count; ++i) arrivals[i] = i * period;
  return simulate_stream(config, arrivals);
}

}  // namespace univsa::hw
