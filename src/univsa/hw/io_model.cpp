#include "univsa/hw/io_model.h"

#include "univsa/common/contracts.h"

namespace univsa::hw {

TransferEstimate estimate_transfer(std::size_t bytes,
                                   const AxiParams& params) {
  UNIVSA_REQUIRE(params.bus_mhz > 0.0, "bus clock must be positive");
  UNIVSA_REQUIRE(params.data_width_bits >= 8 &&
                     params.data_width_bits % 8 == 0,
                 "bus width must be a whole number of bytes");
  UNIVSA_REQUIRE(params.max_burst_beats >= 1, "burst length must be >=1");

  TransferEstimate t;
  t.bytes = bytes;
  const std::size_t bytes_per_beat = params.data_width_bits / 8;
  t.beats = (bytes + bytes_per_beat - 1) / bytes_per_beat;
  t.bursts =
      (t.beats + params.max_burst_beats - 1) / params.max_burst_beats;
  t.cycles = t.beats + t.bursts * params.setup_cycles_per_burst;
  t.microseconds = static_cast<double>(t.cycles) / params.bus_mhz;
  return t;
}

IoReport io_report_for(const vsa::ModelConfig& config,
                       const TimingParams& timing, const AxiParams& axi) {
  config.validate();
  UNIVSA_REQUIRE(config.M <= 256,
                 "one-byte-per-level packing assumes M <= 256");
  IoReport r;
  // Input: one level byte per feature.
  r.input = estimate_transfer(config.features(), axi);
  // Output: per-class 64-bit scores plus the label byte.
  r.output = estimate_transfer(config.C * 8 + 1, axi);
  r.io_us = r.input.microseconds + r.output.microseconds;
  const double interval_cycles =
      timing.controller_overhead *
      static_cast<double>(stage_cycles(config, timing).interval());
  r.compute_interval_us = interval_cycles / timing.clock_mhz;
  r.io_fraction = r.io_us / r.compute_interval_us;
  return r;
}

}  // namespace univsa::hw
