// Power model.
//
// FPGA dynamic power scales with toggling logic; on the ZU3EG at a fixed
// 250 MHz clock the paper's Table IV rows are well described by a static
// floor plus a per-LUT dynamic coefficient. The least-squares fit of
// Table IV's (LUTs, power) pairs is P ≈ 0.048 W + 0.01244 W/kLUT; the
// defaults below round it mildly (0.040 W + 0.0120 W/kLUT) so that the
// composed model (our LUT estimate × the fit) keeps every Table I task
// under the paper's 0.5 W headline. The model is applied to *our*
// resource estimate, so the power column in EXPERIMENTS.md is a genuine
// prediction of the composed models, not a lookup.
#pragma once

#include "univsa/hw/resource_model.h"
#include "univsa/vsa/model_config.h"

namespace univsa::hw {

struct PowerParams {
  double static_w = 0.040;
  double w_per_kilolut = 0.0120;
  /// Reference clock the fit was taken at; dynamic power scales linearly
  /// with frequency.
  double reference_clock_mhz = 250.0;
};

double estimate_power_w(const ResourceEstimate& resources,
                        double clock_mhz = 250.0,
                        const PowerParams& params = {});

double estimate_power_w(const vsa::ModelConfig& config,
                        double clock_mhz = 250.0,
                        const PowerParams& params = {});

}  // namespace univsa::hw
