#include "univsa/hw/functional_sim.h"

#include <bit>

#include "univsa/common/contracts.h"

namespace univsa::hw {

std::uint16_t InputFifo::pop() {
  UNIVSA_REQUIRE(!q_.empty(), "FIFO underflow");
  const std::uint16_t v = q_.front();
  q_.pop_front();
  return v;
}

DvpUnit::DvpUnit(const vsa::Model& model, const TimingParams& params)
    : model_(model), pipeline_depth_(params.dvp_pipeline_depth) {}

DvpResult DvpUnit::process(InputFifo& fifo) const {
  const vsa::ModelConfig& c = model_.config();
  const std::size_t n = c.features();
  UNIVSA_REQUIRE(fifo.size() == n, "FIFO must hold one full sample");

  DvpResult r;
  r.volume.resize(n);
  const std::uint32_t high_valid =
      c.D_H == 32 ? ~0u : (1u << c.D_H) - 1;
  const std::uint32_t low_valid =
      c.D_L == 32 ? ~0u : (1u << c.D_L) - 1;

  // One feature leaves the FIFO per cycle; the table lookup pipeline adds
  // a constant fill latency.
  for (std::size_t i = 0; i < n; ++i) {
    const std::uint16_t level = fifo.pop();
    UNIVSA_REQUIRE(level < c.M, "value exceeds M levels");
    vsa::PackedValue& pv = r.volume[i];
    if (model_.mask()[i]) {
      pv.valid = high_valid;
      pv.bits = static_cast<std::uint32_t>(
          model_.value_table_high()[level].words()[0]);
    } else {
      pv.valid = low_valid;
      pv.bits = static_cast<std::uint32_t>(
                    model_.value_table_low()[level].words()[0]) &
                low_valid;
    }
    ++r.cycles;
  }
  r.cycles += pipeline_depth_;
  return r;
}

BiConvUnit::BiConvUnit(const vsa::Model& model) : model_(model) {}

BiConvResult BiConvUnit::process(
    const std::vector<vsa::PackedValue>& volume) const {
  const vsa::ModelConfig& c = model_.config();
  const std::size_t h = c.W;
  const std::size_t w = c.L;
  UNIVSA_REQUIRE(volume.size() == h * w, "volume size mismatch");
  const std::size_t k = c.D_K;
  const long pad = static_cast<long>(k / 2);
  const std::size_t alpha = conv_iteration_cycles(c);

  BiConvResult r;
  r.channels.assign(c.O, BitVec(h * w));
  std::vector<long long> acc(c.O);

  // Double buffering: while slab (output row y) computes, the next slab
  // preloads — so slab swaps cost no cycles, only a counter tick.
  for (std::size_t y = 0; y < h; ++y) {
    ++r.buffer_swaps;
    for (std::size_t x = 0; x < w; ++x) {
      std::fill(acc.begin(), acc.end(), 0);
      // D_K kernel-column iterations, each α cycles; all O dot-product
      // units run in lockstep on the shared patch column.
      for (std::size_t kw = 0; kw < k; ++kw) {
        const long sx = static_cast<long>(x) + static_cast<long>(kw) - pad;
        if (sx >= 0 && sx < static_cast<long>(w)) {
          for (std::size_t kh = 0; kh < k; ++kh) {
            const long sy =
                static_cast<long>(y) + static_cast<long>(kh) - pad;
            if (sy < 0 || sy >= static_cast<long>(h)) continue;
            const vsa::PackedValue& pv =
                volume[static_cast<std::size_t>(sy) * w +
                       static_cast<std::size_t>(sx)];
            const auto valid_pop =
                static_cast<long long>(std::popcount(pv.valid));
            for (std::size_t o = 0; o < c.O; ++o) {
              const std::uint32_t kbits =
                  model_.kernel_bits()[o][kh * k + kw];
              const std::uint32_t agree = ~(pv.bits ^ kbits) & pv.valid;
              acc[o] += 2LL * std::popcount(agree) - valid_pop;
            }
          }
        }
        r.cycles += alpha;
      }
      for (std::size_t o = 0; o < c.O; ++o) {
        r.channels[o].set(y * w + x, acc[o] >= 0 ? 1 : -1);
      }
    }
  }
  return r;
}

EncodingUnit::EncodingUnit(const vsa::Model& model) : model_(model) {}

EncodingResult EncodingUnit::process(
    const std::vector<BitVec>& channels) const {
  const vsa::ModelConfig& c = model_.config();
  UNIVSA_REQUIRE(channels.size() == c.O, "channel count mismatch");
  const std::size_t ns = c.sample_dim();

  EncodingResult r;
  r.sample_vector = BitVec(ns);
  // One output position per cycle: O-wide XNOR row feeding an adder tree.
  for (std::size_t j = 0; j < ns; ++j) {
    long long sum = 0;
    for (std::size_t o = 0; o < c.O; ++o) {
      sum += (model_.feature_vectors()[o].get(j) == channels[o].get(j))
                 ? 1
                 : -1;
    }
    r.sample_vector.set(j, sum >= 0 ? 1 : -1);
    ++r.cycles;
  }
  // Adder-tree + sign pipeline drain.
  std::size_t tree = 0;
  for (std::size_t v = 1; v < c.O; v <<= 1) ++tree;
  r.cycles += tree + 2;
  return r;
}

SimilarityUnit::SimilarityUnit(const vsa::Model& model,
                               const TimingParams& params)
    : model_(model), popcount_width_(params.popcount_width) {}

SimilarityResult SimilarityUnit::process(const BitVec& sample_vector) const {
  const vsa::ModelConfig& c = model_.config();
  const std::size_t ns = c.sample_dim();
  UNIVSA_REQUIRE(sample_vector.size() == ns, "sample vector mismatch");

  SimilarityResult r;
  r.prediction.scores.assign(c.C, 0);
  const std::size_t words =
      (ns + popcount_width_ - 1) / popcount_width_;

  // Per class: `words` cycles, the Θ voter banks operating in parallel.
  for (std::size_t cls = 0; cls < c.C; ++cls) {
    long long score = 0;
    for (std::size_t wd = 0; wd < words; ++wd) {
      for (std::size_t theta = 0; theta < c.Theta; ++theta) {
        const BitVec& cv = model_.class_vectors()[theta * c.C + cls];
        const std::size_t begin = wd * popcount_width_;
        const std::size_t end = std::min(ns, begin + popcount_width_);
        for (std::size_t j = begin; j < end; ++j) {
          score += (sample_vector.get(j) == cv.get(j)) ? 1 : -1;
        }
      }
      ++r.cycles;
    }
    r.prediction.scores[cls] = score;
  }
  // Final accumulate/compare tree drain.
  std::size_t tree = 0;
  for (std::size_t v = 1; v < ns; v <<= 1) ++tree;
  r.cycles += tree;

  std::size_t best = 0;
  for (std::size_t cls = 1; cls < c.C; ++cls) {
    if (r.prediction.scores[cls] > r.prediction.scores[best]) best = cls;
  }
  r.prediction.label = static_cast<int>(best);
  return r;
}

Accelerator::Accelerator(const vsa::Model& model, TimingParams params)
    : model_(model),
      params_(params),
      dvp_(model_, params_),
      conv_(model_),
      encode_(model_),
      similarity_(model_, params_) {}

RunTrace Accelerator::run(const std::vector<std::uint16_t>& values) const {
  InputFifo fifo;
  for (const auto v : values) fifo.push(v);

  const DvpResult dvp = dvp_.process(fifo);
  const BiConvResult conv = conv_.process(dvp.volume);
  const EncodingResult enc = encode_.process(conv.channels);
  const SimilarityResult sim = similarity_.process(enc.sample_vector);

  RunTrace trace;
  trace.prediction = sim.prediction;
  trace.sample_vector = enc.sample_vector;
  trace.cycles.dvp = dvp.cycles;
  trace.cycles.biconv = conv.cycles;
  trace.cycles.encoding = enc.cycles;
  trace.cycles.similarity = sim.cycles;
  trace.buffer_swaps = conv.buffer_swaps;
  return trace;
}

double Accelerator::accuracy(const data::Dataset& dataset) const {
  UNIVSA_REQUIRE(!dataset.empty(), "empty dataset");
  std::size_t correct = 0;
  for (std::size_t i = 0; i < dataset.size(); ++i) {
    if (run(dataset.values(i)).prediction.label == dataset.label(i)) {
      ++correct;
    }
  }
  return static_cast<double>(correct) / static_cast<double>(dataset.size());
}

}  // namespace univsa::hw
