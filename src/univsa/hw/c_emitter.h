// Standalone-C inference emitter.
//
// The other deployment target for kilobyte-scale models is plain MCU
// firmware: a single dependency-free C99 translation unit with the
// binary vector sets baked in as const arrays and the Eq. 1–4 pipeline
// as integer/bit operations. This emitter produces exactly that:
//
//   int  <prefix>_predict(const uint16_t values[<prefix>_N]);
//   void <prefix>_scores(const uint16_t values[], long long scores[]);
//
// No heap, no libc beyond <stdint.h>, flash footprint = Eq. 5 payload
// packed into uint32 words. tests/hw/c_emitter_test.cpp compiles the
// emitted source with the host compiler and runs it against the
// vsa::Model on random inputs — a fully executable cross-check of the
// deployment artifact (the Verilog path can only be checked
// structurally in this environment).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "univsa/vsa/model.h"

namespace univsa::hw {

struct CEmitterOptions {
  std::string prefix = "univsa";
};

class CEmitter {
 public:
  explicit CEmitter(const vsa::Model& model, CEmitterOptions options = {});

  /// The header (API + geometry #defines).
  std::string header() const;
  /// The implementation (tables + pipeline).
  std::string source() const;
  /// A main() that reads W·L levels from argv and prints the label and
  /// per-class scores — what the executable test drives.
  std::string demo_main() const;

  /// Writes <prefix>_model.h / <prefix>_model.c (+ <prefix>_main.c when
  /// `with_main`).
  void write_files(const std::string& directory,
                   bool with_main = false) const;

 private:
  const vsa::Model& model_;
  CEmitterOptions options_;
};

}  // namespace univsa::hw
