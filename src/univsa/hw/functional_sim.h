// Bit-true functional simulation of the UniVSA accelerator (Sec. IV-A).
//
// Each hardware module is modelled as a unit that transforms its input
// exactly as the RTL datapath would (XNOR lanes, popcount adder trees,
// sign units, comparators) while counting the cycles its schedule takes.
// The units mirror Fig. 5:
//   InputFifo + DvpUnit — sequential value projection, one feature/cycle,
//   BiConvUnit          — double-buffered row slabs, O-way kernel
//                         parallelism, α cycles per kernel-column
//                         iteration,
//   EncodingUnit        — O-wide XNOR row + adder tree + sign, one output
//                         position per cycle,
//   SimilarityUnit      — Θ-parallel 64-lane XNOR/popcount, per-class
//                         accumulate and argmax compare.
//
// Two invariants are enforced by tests:
//   (1) every intermediate equals the software model's (vsa::Model)
//       stage outputs bit-for-bit, and
//   (2) the counted cycles equal the closed-form timing model
//       (hw::stage_cycles) — so the analytic Table IV numbers are backed
//       by an executable machine.
#pragma once

#include <cstdint>
#include <deque>
#include <vector>

#include "univsa/common/bitvec.h"
#include "univsa/hw/timing_model.h"
#include "univsa/vsa/model.h"

namespace univsa::hw {

/// Input FIFO feeding the DVP stage (Fig. 5 "data FIFO").
class InputFifo {
 public:
  void push(std::uint16_t value) { q_.push_back(value); }
  bool empty() const { return q_.empty(); }
  std::size_t size() const { return q_.size(); }
  std::uint16_t pop();

 private:
  std::deque<std::uint16_t> q_;
};

struct DvpResult {
  std::vector<vsa::PackedValue> volume;
  std::size_t cycles = 0;
};

struct BiConvResult {
  std::vector<BitVec> channels;  ///< O × N_s binarized feature maps
  std::size_t cycles = 0;
  std::size_t buffer_swaps = 0;  ///< double-buffer slab reloads
};

struct EncodingResult {
  BitVec sample_vector;
  std::size_t cycles = 0;
};

struct SimilarityResult {
  vsa::Prediction prediction;
  std::size_t cycles = 0;
};

class DvpUnit {
 public:
  explicit DvpUnit(const vsa::Model& model, const TimingParams& params);
  DvpResult process(InputFifo& fifo) const;

 private:
  const vsa::Model& model_;
  std::size_t pipeline_depth_;
};

class BiConvUnit {
 public:
  explicit BiConvUnit(const vsa::Model& model);
  BiConvResult process(const std::vector<vsa::PackedValue>& volume) const;

 private:
  const vsa::Model& model_;
};

class EncodingUnit {
 public:
  explicit EncodingUnit(const vsa::Model& model);
  EncodingResult process(const std::vector<BitVec>& channels) const;

 private:
  const vsa::Model& model_;
};

class SimilarityUnit {
 public:
  SimilarityUnit(const vsa::Model& model, const TimingParams& params);
  SimilarityResult process(const BitVec& sample_vector) const;

 private:
  const vsa::Model& model_;
  std::size_t popcount_width_;
};

struct RunTrace {
  vsa::Prediction prediction;
  BitVec sample_vector;
  StageCycles cycles;        ///< counted, pre-overhead
  std::size_t buffer_swaps = 0;
};

/// The composed accelerator (central controller's single-input schedule).
class Accelerator {
 public:
  explicit Accelerator(const vsa::Model& model, TimingParams params = {});

  RunTrace run(const std::vector<std::uint16_t>& values) const;

  /// Accuracy over a dataset through the functional datapath.
  double accuracy(const data::Dataset& dataset) const;

  const vsa::Model& model() const { return model_; }
  const TimingParams& timing() const { return params_; }

 private:
  const vsa::Model& model_;
  TimingParams params_;
  DvpUnit dvp_;
  BiConvUnit conv_;
  EncodingUnit encode_;
  SimilarityUnit similarity_;
};

}  // namespace univsa::hw
