// NEON (AArch64 advanced SIMD) variants of the XNOR/popcount primitives.
// Advanced SIMD is baseline on AArch64 so no extra compile flags or
// runtime probe are needed — CMake compiles this TU on aarch64 targets
// only. CNT counts bits per byte; vaddvq_u8 folds a vector of byte
// counts into one lane sum (max 16 bytes × 8 bits = 128 fits uint8
// arithmetic before the horizontal add).
#include "univsa/common/simd.h"

#if defined(UNIVSA_SIMD_HAS_NEON)

#include <arm_neon.h>

#include <bit>
#include <cstddef>
#include <cstdint>

namespace univsa::simd {
namespace {

inline std::uint64_t popcount_u64x2(uint64x2_t v) {
  return vaddvq_u8(vcntq_u8(vreinterpretq_u8_u64(v)));
}

std::uint64_t neon_bulk_popcount(const std::uint64_t* a, std::size_t n) {
  std::uint64_t total = 0;
  std::size_t i = 0;
  for (; i + 2 <= n; i += 2) {
    total += popcount_u64x2(vld1q_u64(a + i));
  }
  for (; i < n; ++i) {
    total += static_cast<std::uint64_t>(std::popcount(a[i]));
  }
  return total;
}

std::uint64_t neon_xor_popcount(const std::uint64_t* a, const std::uint64_t* b,
                                std::size_t n) {
  std::uint64_t total = 0;
  std::size_t i = 0;
  for (; i + 2 <= n; i += 2) {
    total += popcount_u64x2(veorq_u64(vld1q_u64(a + i), vld1q_u64(b + i)));
  }
  for (; i < n; ++i) {
    total += static_cast<std::uint64_t>(std::popcount(a[i] ^ b[i]));
  }
  return total;
}

std::uint64_t neon_xnor_popcount(const std::uint64_t* a, const std::uint64_t* b,
                                 std::size_t n) {
  std::uint64_t total = 0;
  std::size_t i = 0;
  for (; i + 2 <= n; i += 2) {
    const uint64x2_t x = veorq_u64(vld1q_u64(a + i), vld1q_u64(b + i));
    total += popcount_u64x2(
        vreinterpretq_u64_u8(vmvnq_u8(vreinterpretq_u8_u64(x))));
  }
  for (; i < n; ++i) {
    total += static_cast<std::uint64_t>(std::popcount(~(a[i] ^ b[i])));
  }
  return total;
}

std::uint64_t neon_masked_xnor_popcount(const std::uint64_t* a,
                                        const std::uint64_t* b,
                                        const std::uint64_t* mask,
                                        std::size_t n) {
  std::uint64_t total = 0;
  std::size_t i = 0;
  for (; i + 2 <= n; i += 2) {
    const uint64x2_t x = veorq_u64(vld1q_u64(a + i), vld1q_u64(b + i));
    // BIC computes mask & ~x == mask & xnor.
    total += popcount_u64x2(vbicq_u64(vld1q_u64(mask + i), x));
  }
  for (; i < n; ++i) {
    total += static_cast<std::uint64_t>(
        std::popcount(~(a[i] ^ b[i]) & mask[i]));
  }
  return total;
}

void neon_masked_xnor_popcount_sweep(const std::uint64_t* patch,
                                     const std::uint64_t* valid,
                                     const std::uint64_t* kernels_t,
                                     std::size_t words, std::size_t k_count,
                                     std::uint32_t* acc) {
  std::size_t k = 0;
  for (; k + 2 <= k_count; k += 2) {
    std::uint64_t total0 = 0;
    std::uint64_t total1 = 0;
    for (std::size_t i = 0; i < words; ++i) {
      const uint64x2_t p = vdupq_n_u64(patch[i]);
      const uint64x2_t v = vdupq_n_u64(valid[i]);
      const uint64x2_t x = veorq_u64(p, vld1q_u64(kernels_t + i * k_count + k));
      const uint64x2_t m = vbicq_u64(v, x);
      const uint8x16_t cnt = vcntq_u8(vreinterpretq_u8_u64(m));
      const uint64x2_t per_lane = vpaddlq_u32(
          vpaddlq_u16(vpaddlq_u8(cnt)));
      total0 += vgetq_lane_u64(per_lane, 0);
      total1 += vgetq_lane_u64(per_lane, 1);
    }
    acc[k] = static_cast<std::uint32_t>(total0);
    acc[k + 1] = static_cast<std::uint32_t>(total1);
  }
  for (; k < k_count; ++k) {
    std::uint32_t total = 0;
    for (std::size_t i = 0; i < words; ++i) {
      total += static_cast<std::uint32_t>(
          std::popcount(~(patch[i] ^ kernels_t[i * k_count + k]) & valid[i]));
    }
    acc[k] = total;
  }
}

}  // namespace

namespace detail {

Kernels neon_kernels() {
  Kernels k;
  k.isa = Isa::kNeon;
  k.bulk_popcount = neon_bulk_popcount;
  k.xor_popcount = neon_xor_popcount;
  k.xnor_popcount = neon_xnor_popcount;
  k.masked_xnor_popcount = neon_masked_xnor_popcount;
  k.masked_xnor_popcount_sweep = neon_masked_xnor_popcount_sweep;
  return k;
}

}  // namespace detail

}  // namespace univsa::simd

#endif  // UNIVSA_SIMD_HAS_NEON
