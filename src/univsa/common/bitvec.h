// Packed bipolar vectors.
//
// Binary VSA stores every vector set (values V, kernels K, feature vectors
// F, class vectors C) as bipolar {-1,+1} vectors. We pack them 64 lanes per
// word with the convention  bit 1 <-> +1,  bit 0 <-> -1, so that
//
//   bipolar dot(a, b)   = 2 * popcount(~(a ^ b) & lane_mask) - n
//                       = matches - mismatches
//
// i.e. an XNOR followed by a popcount — exactly the primitive the UniVSA
// hardware datapath builds in LUTs (Sec. IV-A). DVP zero-padding is
// expressed through an explicit validity mask: lanes outside the mask
// behave as algebraic 0 and contribute nothing to the accumulation.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "univsa/common/rng.h"

namespace univsa {

/// A fixed-length packed bipolar vector. Value semantics; cheap to copy at
/// the D ~ 100 dimensions binary VSA uses, and word-wise ops for the long
/// flattened vectors (W*L up to ~1500 in Table I).
class BitVec {
 public:
  BitVec() = default;

  /// All lanes set to -1 (bits clear).
  explicit BitVec(std::size_t n);

  /// From a list of bipolar lanes; every element must be +1 or -1.
  static BitVec from_bipolar(std::span<const int> lanes);

  /// From the signs of a float vector: lane = (x >= 0 ? +1 : -1).
  /// sgn(0) = +1, the paper's tiebreak convention.
  static BitVec from_signs(std::span<const float> values);

  /// Uniformly random bipolar vector.
  static BitVec random(std::size_t n, Rng& rng);

  std::size_t size() const { return n_; }
  bool empty() const { return n_ == 0; }

  /// Lane accessors in bipolar domain (+1 / -1).
  int get(std::size_t i) const;
  void set(std::size_t i, int bipolar_value);

  /// Raw packed words (trailing bits beyond size() are zero).
  std::span<const std::uint64_t> words() const { return words_; }
  std::size_t word_count() const { return words_.size(); }

  /// Mutable raw word access for zero-copy producers (the inference
  /// engine writes whole 64-lane words at a time). Callers must keep the
  /// invariant that bits at and beyond size() stay zero.
  std::span<std::uint64_t> words_mut() { return words_; }

  /// Bipolar dot product: sum_i a_i * b_i. Sizes must match.
  long long dot(const BitVec& other) const;

  /// Masked bipolar dot: lanes where mask bit is 0 contribute 0.
  /// This is the DVP padding semantics (Sec. III-A1).
  long long masked_dot(const BitVec& other, const BitVec& mask) const;

  /// Hamming distance (# of differing lanes).
  std::size_t hamming(const BitVec& other) const;

  /// Number of +1 lanes.
  std::size_t popcount() const;

  /// Elementwise bipolar product (XNOR in packed domain).
  BitVec bind(const BitVec& other) const;

  /// Lane-wise logical AND of the +1 indicator (used for masks).
  BitVec mask_and(const BitVec& other) const;

  /// Flip every lane.
  BitVec negate() const;

  /// Unpack to bipolar ints.
  std::vector<int> to_bipolar() const;

  /// Unpack to floats (+1.0f / -1.0f).
  std::vector<float> to_floats() const;

  bool operator==(const BitVec& other) const;
  bool operator!=(const BitVec& other) const { return !(*this == other); }

  /// Storage size in bits when serialized (lane count, excludes padding).
  std::size_t bits() const { return n_; }

 private:
  void check_index(std::size_t i) const;
  void clear_padding();

  std::size_t n_ = 0;
  std::vector<std::uint64_t> words_;
};

/// Word-parallel accumulator for bind-then-bundle (Eq. 1).
///
/// Functionally identical to BipolarAccumulator::add_bound + sign(), but
/// instead of per-lane integer sums it keeps bit-sliced carry-save
/// counters: each add_bound() is one XNOR per 64-lane word plus a short
/// ripple of AND/XOR over ⌈log2 rows⌉ counter planes. This is the
/// encode-stage hot path of deployed inference (O(N_s·O) lane ops become
/// O(N_s·O/64·log O) word ops) — and it is exactly the bit-serial
/// counter structure a LUT implementation of the encoding adder tree
/// reduces to. Equivalence with BipolarAccumulator is property-tested.
class BitSlicedAccumulator {
 public:
  explicit BitSlicedAccumulator(std::size_t n);

  std::size_t size() const { return n_; }
  /// Number of rows accumulated so far.
  std::size_t rows() const { return rows_; }

  /// Adds the bipolar product a ∘ b lane-wise (one ±1 vote per lane).
  void add_bound(const BitVec& a, const BitVec& b);

  /// Adds v itself lane-wise (vote = v's lane).
  void add(const BitVec& v);

  /// sgn of the lane-wise sum, sgn(0) = +1: lane is +1 iff
  /// 2·(agreeing votes) >= rows.
  BitVec sign() const;

 private:
  void add_agreement_words(const std::vector<std::uint64_t>& agree);

  std::size_t n_;
  std::size_t rows_ = 0;
  std::size_t word_count_;
  std::uint64_t tail_mask_;
  /// planes_[k][w]: bit k of the per-lane agreement counter, word w.
  std::vector<std::vector<std::uint64_t>> planes_;
};

/// Accumulator for bipolar bundling (Eq. 1): sums bipolar lanes in integer
/// domain, then binarizes with sgn (sgn(0) = +1).
class BipolarAccumulator {
 public:
  explicit BipolarAccumulator(std::size_t n) : sums_(n, 0) {}

  std::size_t size() const { return sums_.size(); }

  /// Add a packed bipolar vector lane-wise.
  void add(const BitVec& v);

  /// Add v with lanes outside `mask` treated as 0.
  void add_masked(const BitVec& v, const BitVec& mask);

  /// Add the bipolar product a*b lane-wise (bind-then-bundle, Eq. 1).
  void add_bound(const BitVec& a, const BitVec& b);

  /// Raw integer sums (useful for hardware cross-checks).
  std::span<const long long> sums() const { return sums_; }

  /// Binarize: sgn with sgn(0) = +1.
  BitVec sign() const;

 private:
  std::vector<long long> sums_;
};

}  // namespace univsa
