// Dispatch table + the single scalar reference implementation of the
// XNOR/popcount primitive set. The ISA variants live in simd_avx2.cpp /
// simd_avx512.cpp / simd_neon.cpp (compiled in only when CMake enables
// the matching UNIVSA_SIMD_HAS_* gate); this file decides, once, which
// table serves the process.
#include "univsa/common/simd.h"

#include <bit>
#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "univsa/common/contracts.h"

namespace univsa::simd {

namespace {

// --- Scalar reference ---------------------------------------------------
//
// This is the one scalar XNOR/popcount word loop in the repo; BitVec,
// the BiConv sweep, and the similarity sweep all route here (or to an
// ISA variant proven bit-exact against it).

std::uint64_t scalar_bulk_popcount(const std::uint64_t* a, std::size_t n) {
  std::uint64_t total = 0;
  for (std::size_t i = 0; i < n; ++i) {
    total += static_cast<std::uint64_t>(std::popcount(a[i]));
  }
  return total;
}

std::uint64_t scalar_xor_popcount(const std::uint64_t* a,
                                  const std::uint64_t* b, std::size_t n) {
  std::uint64_t total = 0;
  for (std::size_t i = 0; i < n; ++i) {
    total += static_cast<std::uint64_t>(std::popcount(a[i] ^ b[i]));
  }
  return total;
}

std::uint64_t scalar_xnor_popcount(const std::uint64_t* a,
                                   const std::uint64_t* b, std::size_t n) {
  std::uint64_t total = 0;
  for (std::size_t i = 0; i < n; ++i) {
    total += static_cast<std::uint64_t>(std::popcount(~(a[i] ^ b[i])));
  }
  return total;
}

std::uint64_t scalar_masked_xnor_popcount(const std::uint64_t* a,
                                          const std::uint64_t* b,
                                          const std::uint64_t* mask,
                                          std::size_t n) {
  std::uint64_t total = 0;
  for (std::size_t i = 0; i < n; ++i) {
    total +=
        static_cast<std::uint64_t>(std::popcount(~(a[i] ^ b[i]) & mask[i]));
  }
  return total;
}

void scalar_masked_xnor_popcount_sweep(const std::uint64_t* patch,
                                       const std::uint64_t* valid,
                                       const std::uint64_t* kernels_t,
                                       std::size_t words,
                                       std::size_t k_count,
                                       std::uint32_t* acc) {
  for (std::size_t k = 0; k < k_count; ++k) acc[k] = 0;
  for (std::size_t i = 0; i < words; ++i) {
    const std::uint64_t p = patch[i];
    const std::uint64_t v = valid[i];
    const std::uint64_t* row = kernels_t + i * k_count;
    for (std::size_t k = 0; k < k_count; ++k) {
      acc[k] +=
          static_cast<std::uint32_t>(std::popcount(~(p ^ row[k]) & v));
    }
  }
}

// --- Selection ----------------------------------------------------------

bool cpu_supports(Isa isa) {
  switch (isa) {
    case Isa::kScalar:
      return true;
    case Isa::kAvx2:
#if defined(__x86_64__) || defined(__i386__)
      return __builtin_cpu_supports("avx2") != 0;
#else
      return false;
#endif
    case Isa::kAvx512:
#if defined(__x86_64__) || defined(__i386__)
      return __builtin_cpu_supports("avx512f") != 0 &&
             __builtin_cpu_supports("avx512vl") != 0 &&
             __builtin_cpu_supports("avx512vpopcntdq") != 0;
#else
      return false;
#endif
    case Isa::kNeon:
#if defined(__aarch64__)
      return true;  // advanced SIMD is baseline on AArch64
#else
      return false;
#endif
  }
  return false;
}

bool compiled_in(Isa isa) {
  switch (isa) {
    case Isa::kScalar:
      return true;
    case Isa::kAvx2:
#if defined(UNIVSA_SIMD_HAS_AVX2)
      return true;
#else
      return false;
#endif
    case Isa::kAvx512:
#if defined(UNIVSA_SIMD_HAS_AVX512)
      return true;
#else
      return false;
#endif
    case Isa::kNeon:
#if defined(UNIVSA_SIMD_HAS_NEON)
      return true;
#else
      return false;
#endif
  }
  return false;
}

struct Selection {
  const Kernels* table;
  std::optional<Isa> forced;
};

Selection select_active() {
  Selection sel{&kernels_for(best_isa()), std::nullopt};
  const char* env = std::getenv("UNIVSA_FORCE_ISA");
  if (env == nullptr || *env == '\0') return sel;
  const std::optional<Isa> wanted = parse_isa(env);
  sel.forced = wanted;
  if (!wanted.has_value()) {
    std::fprintf(stderr,
                 "univsa: UNIVSA_FORCE_ISA='%s' not one of "
                 "scalar|avx2|avx512|neon; using %s\n",
                 env, to_string(sel.table->isa));
    return sel;
  }
  if (!isa_available(*wanted)) {
    std::fprintf(stderr,
                 "univsa: UNIVSA_FORCE_ISA=%s not available on this "
                 "build/CPU; using %s\n",
                 to_string(*wanted), to_string(sel.table->isa));
    return sel;
  }
  sel.table = &kernels_for(*wanted);
  return sel;
}

const Selection& selection() {
  static const Selection sel = select_active();
  return sel;
}

}  // namespace

const char* to_string(Isa isa) {
  switch (isa) {
    case Isa::kScalar:
      return "scalar";
    case Isa::kAvx2:
      return "avx2";
    case Isa::kAvx512:
      return "avx512";
    case Isa::kNeon:
      return "neon";
  }
  return "unknown";
}

std::optional<Isa> parse_isa(const std::string& name) {
  if (name == "scalar") return Isa::kScalar;
  if (name == "avx2") return Isa::kAvx2;
  if (name == "avx512") return Isa::kAvx512;
  if (name == "neon") return Isa::kNeon;
  return std::nullopt;
}

std::vector<Isa> compiled_isas() {
  std::vector<Isa> isas;
  for (const Isa isa :
       {Isa::kScalar, Isa::kAvx2, Isa::kAvx512, Isa::kNeon}) {
    if (compiled_in(isa)) isas.push_back(isa);
  }
  return isas;
}

bool isa_available(Isa isa) { return compiled_in(isa) && cpu_supports(isa); }

Isa best_isa() {
  // Preference order: native vector popcount beats emulated beats scalar.
  for (const Isa isa : {Isa::kAvx512, Isa::kAvx2, Isa::kNeon}) {
    if (isa_available(isa)) return isa;
  }
  return Isa::kScalar;
}

const Kernels& kernels_for(Isa isa) {
  UNIVSA_REQUIRE(isa_available(isa),
                 "requested SIMD ISA is not available on this build/CPU");
  switch (isa) {
#if defined(UNIVSA_SIMD_HAS_AVX2)
    case Isa::kAvx2: {
      static const Kernels k = detail::avx2_kernels();
      return k;
    }
#endif
#if defined(UNIVSA_SIMD_HAS_AVX512)
    case Isa::kAvx512: {
      static const Kernels k = detail::avx512_kernels();
      return k;
    }
#endif
#if defined(UNIVSA_SIMD_HAS_NEON)
    case Isa::kNeon: {
      static const Kernels k = detail::neon_kernels();
      return k;
    }
#endif
    default: {
      static const Kernels k = detail::scalar_kernels();
      return k;
    }
  }
}

const Kernels& active() { return *selection().table; }

Isa active_isa() { return active().isa; }

std::optional<Isa> forced_isa() { return selection().forced; }

std::string cpu_features_string() {
  std::string features;
  const auto add = [&features](const char* name) {
    if (!features.empty()) features += ' ';
    features += name;
  };
#if defined(__x86_64__) || defined(__i386__)
  if (__builtin_cpu_supports("popcnt")) add("popcnt");
  if (__builtin_cpu_supports("avx")) add("avx");
  if (__builtin_cpu_supports("avx2")) add("avx2");
  if (__builtin_cpu_supports("avx512f")) add("avx512f");
  if (__builtin_cpu_supports("avx512vl")) add("avx512vl");
  if (__builtin_cpu_supports("avx512vpopcntdq")) add("avx512vpopcntdq");
#elif defined(__aarch64__)
  add("neon");
#endif
  if (features.empty()) features = "(none detected)";
  return features;
}

namespace detail {

Kernels scalar_kernels() {
  Kernels k;
  k.isa = Isa::kScalar;
  k.bulk_popcount = scalar_bulk_popcount;
  k.xor_popcount = scalar_xor_popcount;
  k.xnor_popcount = scalar_xnor_popcount;
  k.masked_xnor_popcount = scalar_masked_xnor_popcount;
  k.masked_xnor_popcount_sweep = scalar_masked_xnor_popcount_sweep;
  return k;
}

}  // namespace detail

}  // namespace univsa::simd
