// AVX2 variants of the XNOR/popcount primitives. Compiled with -mavx2
// (see src/CMakeLists.txt); only dispatched when CPUID reports AVX2.
//
// AVX2 has no vector popcount instruction, so per-vector counts use the
// classic pshufb nibble-LUT + _mm256_sad_epu8 reduction (per-qword
// popcounts in one __m256i), and the large-n reductions wrap that in a
// Harley–Seal carry-save adder over blocks of 16 vectors so most LUT
// work happens at 1/16th rate.
#include "univsa/common/simd.h"

#if defined(UNIVSA_SIMD_HAS_AVX2)

#include <immintrin.h>

#include <bit>
#include <cstddef>
#include <cstdint>

namespace univsa::simd {
namespace {

// Per-byte popcount via nibble lookup, then SAD against zero to sum the
// bytes of each 64-bit lane: result holds popcount per qword.
inline __m256i popcount_epi64(__m256i v) {
  const __m256i lut = _mm256_setr_epi8(0, 1, 1, 2, 1, 2, 2, 3,  //
                                       1, 2, 2, 3, 2, 3, 3, 4,  //
                                       0, 1, 1, 2, 1, 2, 2, 3,  //
                                       1, 2, 2, 3, 2, 3, 3, 4);
  const __m256i low_mask = _mm256_set1_epi8(0x0f);
  const __m256i lo = _mm256_and_si256(v, low_mask);
  const __m256i hi = _mm256_and_si256(_mm256_srli_epi16(v, 4), low_mask);
  const __m256i cnt =
      _mm256_add_epi8(_mm256_shuffle_epi8(lut, lo), _mm256_shuffle_epi8(lut, hi));
  return _mm256_sad_epu8(cnt, _mm256_setzero_si256());
}

inline std::uint64_t hsum_epi64(__m256i v) {
  const __m128i lo = _mm256_castsi256_si128(v);
  const __m128i hi = _mm256_extracti128_si256(v, 1);
  const __m128i sum = _mm_add_epi64(lo, hi);
  return static_cast<std::uint64_t>(_mm_extract_epi64(sum, 0)) +
         static_cast<std::uint64_t>(_mm_extract_epi64(sum, 1));
}

// Carry-save adder step: (carry, sum) two-bit add of a+b+c per bit lane.
inline void csa(__m256i& h, __m256i& l, __m256i a, __m256i b, __m256i c) {
  const __m256i u = _mm256_xor_si256(a, b);
  h = _mm256_or_si256(_mm256_and_si256(a, b), _mm256_and_si256(u, c));
  l = _mm256_xor_si256(u, c);
}

// Harley–Seal reduction over `Load(i)` for i in [0, n) vectors of 4
// words each, where Load produces the already-combined word (e.g. the
// XNOR of two streams). Processes blocks of 16 vectors through a CSA
// tree so only one popcount per 16 vectors runs at full weight.
template <typename Load>
inline std::uint64_t harley_seal(std::size_t vecs, Load load) {
  __m256i total = _mm256_setzero_si256();
  __m256i ones = _mm256_setzero_si256();
  __m256i twos = _mm256_setzero_si256();
  __m256i fours = _mm256_setzero_si256();
  __m256i eights = _mm256_setzero_si256();
  __m256i twos_a, twos_b, fours_a, fours_b, eights_a, eights_b, sixteens;

  std::size_t i = 0;
  for (; i + 16 <= vecs; i += 16) {
    csa(twos_a, ones, ones, load(i + 0), load(i + 1));
    csa(twos_b, ones, ones, load(i + 2), load(i + 3));
    csa(fours_a, twos, twos, twos_a, twos_b);
    csa(twos_a, ones, ones, load(i + 4), load(i + 5));
    csa(twos_b, ones, ones, load(i + 6), load(i + 7));
    csa(fours_b, twos, twos, twos_a, twos_b);
    csa(eights_a, fours, fours, fours_a, fours_b);
    csa(twos_a, ones, ones, load(i + 8), load(i + 9));
    csa(twos_b, ones, ones, load(i + 10), load(i + 11));
    csa(fours_a, twos, twos, twos_a, twos_b);
    csa(twos_a, ones, ones, load(i + 12), load(i + 13));
    csa(twos_b, ones, ones, load(i + 14), load(i + 15));
    csa(fours_b, twos, twos, twos_a, twos_b);
    csa(eights_b, fours, fours, fours_a, fours_b);
    csa(sixteens, eights, eights, eights_a, eights_b);
    total = _mm256_add_epi64(total, popcount_epi64(sixteens));
  }
  total = _mm256_slli_epi64(total, 4);
  total = _mm256_add_epi64(total,
                           _mm256_slli_epi64(popcount_epi64(eights), 3));
  total = _mm256_add_epi64(total,
                           _mm256_slli_epi64(popcount_epi64(fours), 2));
  total = _mm256_add_epi64(total,
                           _mm256_slli_epi64(popcount_epi64(twos), 1));
  total = _mm256_add_epi64(total, popcount_epi64(ones));
  for (; i < vecs; ++i) {
    total = _mm256_add_epi64(total, popcount_epi64(load(i)));
  }
  return hsum_epi64(total);
}

inline __m256i loadu(const std::uint64_t* p) {
  return _mm256_loadu_si256(reinterpret_cast<const __m256i*>(p));
}

std::uint64_t avx2_bulk_popcount(const std::uint64_t* a, std::size_t n) {
  const std::size_t vecs = n / 4;
  std::uint64_t total =
      harley_seal(vecs, [a](std::size_t i) { return loadu(a + 4 * i); });
  for (std::size_t i = 4 * vecs; i < n; ++i) {
    total += static_cast<std::uint64_t>(std::popcount(a[i]));
  }
  return total;
}

std::uint64_t avx2_xor_popcount(const std::uint64_t* a, const std::uint64_t* b,
                                std::size_t n) {
  const std::size_t vecs = n / 4;
  std::uint64_t total = harley_seal(vecs, [a, b](std::size_t i) {
    return _mm256_xor_si256(loadu(a + 4 * i), loadu(b + 4 * i));
  });
  for (std::size_t i = 4 * vecs; i < n; ++i) {
    total += static_cast<std::uint64_t>(std::popcount(a[i] ^ b[i]));
  }
  return total;
}

std::uint64_t avx2_xnor_popcount(const std::uint64_t* a, const std::uint64_t* b,
                                 std::size_t n) {
  const __m256i all_ones = _mm256_set1_epi64x(-1);
  const std::size_t vecs = n / 4;
  std::uint64_t total = harley_seal(vecs, [a, b, all_ones](std::size_t i) {
    return _mm256_xor_si256(
        _mm256_xor_si256(loadu(a + 4 * i), loadu(b + 4 * i)), all_ones);
  });
  for (std::size_t i = 4 * vecs; i < n; ++i) {
    total += static_cast<std::uint64_t>(std::popcount(~(a[i] ^ b[i])));
  }
  return total;
}

std::uint64_t avx2_masked_xnor_popcount(const std::uint64_t* a,
                                        const std::uint64_t* b,
                                        const std::uint64_t* mask,
                                        std::size_t n) {
  const __m256i all_ones = _mm256_set1_epi64x(-1);
  const std::size_t vecs = n / 4;
  std::uint64_t total =
      harley_seal(vecs, [a, b, mask, all_ones](std::size_t i) {
        const __m256i x =
            _mm256_xor_si256(loadu(a + 4 * i), loadu(b + 4 * i));
        return _mm256_and_si256(_mm256_xor_si256(x, all_ones),
                                loadu(mask + 4 * i));
      });
  for (std::size_t i = 4 * vecs; i < n; ++i) {
    total += static_cast<std::uint64_t>(
        std::popcount(~(a[i] ^ b[i]) & mask[i]));
  }
  return total;
}

// BiConv sweep: vectorize ACROSS kernels. For each patch word i the
// patch/valid words are broadcast and XNOR-matched against 8 adjacent
// kernels (two __m256i) from the word-major kernels_t row, accumulating
// per-kernel qword counts. The patch word count is tiny in the paper's
// configs (often 1), so across-kernel parallelism is the win.
void avx2_masked_xnor_popcount_sweep(const std::uint64_t* patch,
                                     const std::uint64_t* valid,
                                     const std::uint64_t* kernels_t,
                                     std::size_t words, std::size_t k_count,
                                     std::uint32_t* acc) {
  const __m256i all_ones = _mm256_set1_epi64x(-1);
  std::size_t k = 0;
  for (; k + 8 <= k_count; k += 8) {
    __m256i sum0 = _mm256_setzero_si256();
    __m256i sum1 = _mm256_setzero_si256();
    for (std::size_t i = 0; i < words; ++i) {
      const __m256i p = _mm256_set1_epi64x(
          static_cast<long long>(patch[i]));
      const __m256i v = _mm256_set1_epi64x(
          static_cast<long long>(valid[i]));
      const std::uint64_t* row = kernels_t + i * k_count + k;
      const __m256i m0 = _mm256_and_si256(
          _mm256_xor_si256(_mm256_xor_si256(p, loadu(row)), all_ones), v);
      const __m256i m1 = _mm256_and_si256(
          _mm256_xor_si256(_mm256_xor_si256(p, loadu(row + 4)), all_ones),
          v);
      sum0 = _mm256_add_epi64(sum0, popcount_epi64(m0));
      sum1 = _mm256_add_epi64(sum1, popcount_epi64(m1));
    }
    alignas(32) std::uint64_t lanes[8];
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(lanes), sum0);
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(lanes + 4), sum1);
    for (int j = 0; j < 8; ++j) {
      acc[k + static_cast<std::size_t>(j)] =
          static_cast<std::uint32_t>(lanes[j]);
    }
  }
  for (; k < k_count; ++k) {
    std::uint32_t total = 0;
    for (std::size_t i = 0; i < words; ++i) {
      total += static_cast<std::uint32_t>(
          std::popcount(~(patch[i] ^ kernels_t[i * k_count + k]) & valid[i]));
    }
    acc[k] = total;
  }
}

}  // namespace

namespace detail {

Kernels avx2_kernels() {
  Kernels k;
  k.isa = Isa::kAvx2;
  k.bulk_popcount = avx2_bulk_popcount;
  k.xor_popcount = avx2_xor_popcount;
  k.xnor_popcount = avx2_xnor_popcount;
  k.masked_xnor_popcount = avx2_masked_xnor_popcount;
  k.masked_xnor_popcount_sweep = avx2_masked_xnor_popcount_sweep;
  return k;
}

}  // namespace detail

}  // namespace univsa::simd

#endif  // UNIVSA_SIMD_HAS_AVX2
