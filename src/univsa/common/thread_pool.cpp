#include "univsa/common/thread_pool.h"

#include <algorithm>
#include <cstdlib>
#include <memory>
#include <utility>

#include "univsa/common/contracts.h"

namespace univsa {

ThreadPool::ThreadPool(std::size_t threads) {
  if (threads == 0) {
    threads = std::max(1u, std::thread::hardware_concurrency());
  }
  // The calling thread participates in parallel_for, so spawn one fewer.
  const std::size_t workers = threads > 1 ? threads - 1 : 0;
  workers_.reserve(workers);
  for (std::size_t i = 0; i < workers; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stop_ = true;
  }
  cv_.notify_all();
  for (auto& t : workers_) t.join();
}

void ThreadPool::worker_loop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      cv_.wait(lock, [this] { return stop_ || !tasks_.empty(); });
      if (stop_ && tasks_.empty()) return;
      task = std::move(tasks_.front());
      tasks_.pop_front();
    }
    task();
  }
}

void ThreadPool::help_until_done(Join& join) {
  while (join.remaining.load(std::memory_order_acquire) != 0) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      cv_.wait(lock, [this, &join] {
        return join.remaining.load(std::memory_order_acquire) == 0 ||
               !tasks_.empty();
      });
      if (join.remaining.load(std::memory_order_acquire) == 0) return;
      // Steal from the back: the newest tasks are most likely this
      // join's own sub-chunks (nested parallel_for pushes last), which
      // keeps a joining thread working towards its own completion.
      task = std::move(tasks_.back());
      tasks_.pop_back();
    }
    task();
  }
}

void ThreadPool::parallel_for(
    std::size_t n, const std::function<void(std::size_t, std::size_t)>& fn,
    std::size_t max_chunk) {
  if (n == 0) return;
  std::size_t chunk = (n + workers_.size()) / (workers_.size() + 1);
  if (max_chunk > 0) chunk = std::min(chunk, max_chunk);
  chunk = std::max<std::size_t>(chunk, 1);
  const std::size_t parts = (n + chunk - 1) / chunk;
  if (parts <= 1) {
    fn(0, n);
    return;
  }

  Join join;
  join.remaining.store(parts - 1, std::memory_order_relaxed);

  {
    std::lock_guard<std::mutex> lock(mutex_);
    for (std::size_t p = 1; p < parts; ++p) {
      const std::size_t begin = p * chunk;
      const std::size_t end = std::min(n, begin + chunk);
      tasks_.push_back([this, &join, &fn, begin, end] {
        try {
          if (begin < end) fn(begin, end);
        } catch (...) {
          std::lock_guard<std::mutex> elock(join.error_mutex);
          if (!join.error) join.error = std::current_exception();
        }
        if (join.remaining.fetch_sub(1, std::memory_order_acq_rel) == 1) {
          // Completion must be published under the queue mutex: a
          // joining thread checks `remaining` inside cv_.wait's
          // predicate, so notifying while holding the mutex closes the
          // check-then-sleep window.
          std::lock_guard<std::mutex> wlock(mutex_);
          cv_.notify_all();
        }
      });
    }
  }
  cv_.notify_all();

  // The caller runs the first chunk itself, then helps drain the queue
  // until all of its chunks have completed.
  try {
    fn(0, std::min(n, chunk));
  } catch (...) {
    std::lock_guard<std::mutex> elock(join.error_mutex);
    if (!join.error) join.error = std::current_exception();
  }
  help_until_done(join);
  if (join.error) std::rethrow_exception(join.error);
}

namespace {

std::unique_ptr<ThreadPool>& global_pool_slot() {
  static std::unique_ptr<ThreadPool> pool;
  return pool;
}

std::mutex& global_pool_mutex() {
  static std::mutex m;
  return m;
}

std::size_t env_thread_request() {
  const char* env = std::getenv("UNIVSA_THREADS");
  if (env == nullptr || *env == '\0') return 0;
  const long v = std::strtol(env, nullptr, 10);
  return v > 0 ? static_cast<std::size_t>(v) : 0;
}

}  // namespace

ThreadPool& global_pool() {
  std::lock_guard<std::mutex> lock(global_pool_mutex());
  auto& pool = global_pool_slot();
  if (!pool) pool = std::make_unique<ThreadPool>(env_thread_request());
  return *pool;
}

void set_global_pool_threads(std::size_t threads) {
  std::lock_guard<std::mutex> lock(global_pool_mutex());
  auto& pool = global_pool_slot();
  pool.reset();  // join old workers before spawning replacements
  pool = std::make_unique<ThreadPool>(threads);
}

void parallel_for(std::size_t n,
                  const std::function<void(std::size_t, std::size_t)>& fn) {
  // Below this size the chunk hand-off costs more than the work saved.
  constexpr std::size_t kSerialThreshold = 256;
  if (n < kSerialThreshold) {
    if (n > 0) fn(0, n);
    return;
  }
  global_pool().parallel_for(n, fn);
}

}  // namespace univsa
