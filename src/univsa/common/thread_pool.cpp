#include "univsa/common/thread_pool.h"

#include <algorithm>
#include <atomic>
#include <exception>

#include "univsa/common/contracts.h"

namespace univsa {

ThreadPool::ThreadPool(std::size_t threads) {
  if (threads == 0) {
    threads = std::max(1u, std::thread::hardware_concurrency());
  }
  // The calling thread participates in parallel_for, so spawn one fewer.
  const std::size_t workers = threads > 1 ? threads - 1 : 0;
  workers_.reserve(workers);
  for (std::size_t i = 0; i < workers; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stop_ = true;
  }
  cv_.notify_all();
  for (auto& t : workers_) t.join();
}

void ThreadPool::worker_loop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      cv_.wait(lock, [this] { return stop_ || !tasks_.empty(); });
      if (stop_ && tasks_.empty()) return;
      task = std::move(tasks_.front());
      tasks_.pop();
    }
    task();
  }
}

void ThreadPool::parallel_for(
    std::size_t n, const std::function<void(std::size_t, std::size_t)>& fn) {
  if (n == 0) return;
  const std::size_t parts =
      std::min<std::size_t>(n, workers_.size() + 1);
  if (parts <= 1) {
    fn(0, n);
    return;
  }

  struct Shared {
    std::atomic<std::size_t> remaining;
    std::mutex done_mutex;
    std::condition_variable done_cv;
    std::exception_ptr error;
    std::mutex error_mutex;
  } shared;
  shared.remaining.store(parts - 1);

  const std::size_t chunk = (n + parts - 1) / parts;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    for (std::size_t p = 1; p < parts; ++p) {
      const std::size_t begin = p * chunk;
      const std::size_t end = std::min(n, begin + chunk);
      tasks_.push([&shared, &fn, begin, end] {
        try {
          if (begin < end) fn(begin, end);
        } catch (...) {
          std::lock_guard<std::mutex> elock(shared.error_mutex);
          if (!shared.error) shared.error = std::current_exception();
        }
        if (shared.remaining.fetch_sub(1) == 1) {
          std::lock_guard<std::mutex> dlock(shared.done_mutex);
          shared.done_cv.notify_one();
        }
      });
    }
  }
  cv_.notify_all();

  // The caller runs the first chunk itself.
  try {
    fn(0, std::min(n, chunk));
  } catch (...) {
    std::lock_guard<std::mutex> elock(shared.error_mutex);
    if (!shared.error) shared.error = std::current_exception();
  }

  std::unique_lock<std::mutex> lock(shared.done_mutex);
  shared.done_cv.wait(lock,
                      [&shared] { return shared.remaining.load() == 0; });
  if (shared.error) std::rethrow_exception(shared.error);
}

ThreadPool& global_pool() {
  static ThreadPool pool;
  return pool;
}

void parallel_for(std::size_t n,
                  const std::function<void(std::size_t, std::size_t)>& fn) {
  // Below this size the chunk hand-off costs more than the work saved.
  constexpr std::size_t kSerialThreshold = 256;
  if (n < kSerialThreshold) {
    if (n > 0) fn(0, n);
    return;
  }
  global_pool().parallel_for(n, fn);
}

}  // namespace univsa
