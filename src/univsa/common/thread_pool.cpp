#include "univsa/common/thread_pool.h"

#include <algorithm>
#include <atomic>
#include <cstdlib>
#include <exception>
#include <memory>

#include "univsa/common/contracts.h"

namespace univsa {

ThreadPool::ThreadPool(std::size_t threads) {
  if (threads == 0) {
    threads = std::max(1u, std::thread::hardware_concurrency());
  }
  // The calling thread participates in parallel_for, so spawn one fewer.
  const std::size_t workers = threads > 1 ? threads - 1 : 0;
  workers_.reserve(workers);
  for (std::size_t i = 0; i < workers; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stop_ = true;
  }
  cv_.notify_all();
  for (auto& t : workers_) t.join();
}

namespace {
// Set while a pool worker (or a caller chunk of parallel_for) is running a
// chunk. A nested parallel_for from such a context would deadlock — the
// queue has no work stealing and every worker could end up waiting — so
// nested calls degrade to serial execution instead. Parallelism then lives
// at the outermost level (e.g. GA candidates), which is where it scales.
thread_local bool tl_inside_pool_chunk = false;
}  // namespace

void ThreadPool::worker_loop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      cv_.wait(lock, [this] { return stop_ || !tasks_.empty(); });
      if (stop_ && tasks_.empty()) return;
      task = std::move(tasks_.front());
      tasks_.pop();
    }
    task();
  }
}

void ThreadPool::parallel_for(
    std::size_t n, const std::function<void(std::size_t, std::size_t)>& fn) {
  if (n == 0) return;
  const std::size_t parts =
      std::min<std::size_t>(n, workers_.size() + 1);
  if (parts <= 1 || tl_inside_pool_chunk) {
    fn(0, n);
    return;
  }

  struct Shared {
    std::atomic<std::size_t> remaining;
    std::mutex done_mutex;
    std::condition_variable done_cv;
    std::exception_ptr error;
    std::mutex error_mutex;
  } shared;
  shared.remaining.store(parts - 1);

  const std::size_t chunk = (n + parts - 1) / parts;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    for (std::size_t p = 1; p < parts; ++p) {
      const std::size_t begin = p * chunk;
      const std::size_t end = std::min(n, begin + chunk);
      tasks_.push([&shared, &fn, begin, end] {
        tl_inside_pool_chunk = true;
        try {
          if (begin < end) fn(begin, end);
        } catch (...) {
          std::lock_guard<std::mutex> elock(shared.error_mutex);
          if (!shared.error) shared.error = std::current_exception();
        }
        tl_inside_pool_chunk = false;
        if (shared.remaining.fetch_sub(1) == 1) {
          std::lock_guard<std::mutex> dlock(shared.done_mutex);
          shared.done_cv.notify_one();
        }
      });
    }
  }
  cv_.notify_all();

  // The caller runs the first chunk itself.
  tl_inside_pool_chunk = true;
  try {
    fn(0, std::min(n, chunk));
  } catch (...) {
    std::lock_guard<std::mutex> elock(shared.error_mutex);
    if (!shared.error) shared.error = std::current_exception();
  }
  tl_inside_pool_chunk = false;

  std::unique_lock<std::mutex> lock(shared.done_mutex);
  shared.done_cv.wait(lock,
                      [&shared] { return shared.remaining.load() == 0; });
  if (shared.error) std::rethrow_exception(shared.error);
}

namespace {

std::unique_ptr<ThreadPool>& global_pool_slot() {
  static std::unique_ptr<ThreadPool> pool;
  return pool;
}

std::mutex& global_pool_mutex() {
  static std::mutex m;
  return m;
}

std::size_t env_thread_request() {
  const char* env = std::getenv("UNIVSA_THREADS");
  if (env == nullptr || *env == '\0') return 0;
  const long v = std::strtol(env, nullptr, 10);
  return v > 0 ? static_cast<std::size_t>(v) : 0;
}

}  // namespace

ThreadPool& global_pool() {
  std::lock_guard<std::mutex> lock(global_pool_mutex());
  auto& pool = global_pool_slot();
  if (!pool) pool = std::make_unique<ThreadPool>(env_thread_request());
  return *pool;
}

void set_global_pool_threads(std::size_t threads) {
  std::lock_guard<std::mutex> lock(global_pool_mutex());
  auto& pool = global_pool_slot();
  pool.reset();  // join old workers before spawning replacements
  pool = std::make_unique<ThreadPool>(threads);
}

void parallel_for(std::size_t n,
                  const std::function<void(std::size_t, std::size_t)>& fn) {
  // Below this size the chunk hand-off costs more than the work saved.
  constexpr std::size_t kSerialThreshold = 256;
  if (n < kSerialThreshold) {
    if (n > 0) fn(0, n);
    return;
  }
  global_pool().parallel_for(n, fn);
}

}  // namespace univsa
