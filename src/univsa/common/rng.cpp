#include "univsa/common/rng.h"

#include <cmath>

#include "univsa/common/contracts.h"

namespace univsa {

namespace {

std::uint64_t splitmix64(std::uint64_t& x) {
  x += 0x9E3779B97F4A7C15ULL;
  std::uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

std::uint64_t rotl(std::uint64_t x, int k) {
  return (x << k) | (x >> (64 - k));
}

}  // namespace

Rng::Rng(std::uint64_t seed) {
  // splitmix64 expansion guarantees a non-zero state for any seed.
  std::uint64_t sm = seed;
  for (auto& s : s_) s = splitmix64(sm);
}

std::uint64_t Rng::next_u64() {
  const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = rotl(s_[3], 45);
  return result;
}

double Rng::uniform() {
  // 53 high bits -> double in [0, 1).
  return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
}

double Rng::uniform(double lo, double hi) {
  UNIVSA_REQUIRE(lo <= hi, "empty uniform range");
  return lo + (hi - lo) * uniform();
}

std::uint64_t Rng::uniform_index(std::uint64_t n) {
  UNIVSA_REQUIRE(n > 0, "uniform_index over empty range");
  // Rejection sampling to avoid modulo bias.
  const std::uint64_t limit = ~0ULL - (~0ULL % n);
  std::uint64_t v = next_u64();
  while (v >= limit) v = next_u64();
  return v % n;
}

std::int64_t Rng::uniform_int(std::int64_t lo, std::int64_t hi) {
  UNIVSA_REQUIRE(lo <= hi, "empty uniform_int range");
  const auto span = static_cast<std::uint64_t>(hi - lo) + 1;
  return lo + static_cast<std::int64_t>(uniform_index(span));
}

double Rng::normal() {
  if (has_cached_normal_) {
    has_cached_normal_ = false;
    return cached_normal_;
  }
  double u1 = uniform();
  while (u1 <= 0.0) u1 = uniform();
  const double u2 = uniform();
  const double r = std::sqrt(-2.0 * std::log(u1));
  const double theta = 2.0 * M_PI * u2;
  cached_normal_ = r * std::sin(theta);
  has_cached_normal_ = true;
  return r * std::cos(theta);
}

double Rng::normal(double mean, double stddev) {
  UNIVSA_REQUIRE(stddev >= 0.0, "negative stddev");
  return mean + stddev * normal();
}

int Rng::sign() { return (next_u64() & 1ULL) ? 1 : -1; }

bool Rng::bernoulli(double p) {
  UNIVSA_REQUIRE(p >= 0.0 && p <= 1.0, "probability outside [0,1]");
  return uniform() < p;
}

Rng Rng::fork() { return Rng(next_u64()); }

void Rng::jump() {
  // Standard xoshiro256** jump polynomial (advances 2^128 steps).
  static constexpr std::uint64_t kJump[] = {
      0x180EC6D33CFD0ABAULL, 0xD5A61266F0C9392CULL, 0xA9582618E03FC9AAULL,
      0x39ABDC4529B1661CULL};
  std::uint64_t s0 = 0;
  std::uint64_t s1 = 0;
  std::uint64_t s2 = 0;
  std::uint64_t s3 = 0;
  for (const std::uint64_t word : kJump) {
    for (int b = 0; b < 64; ++b) {
      if (word & (1ULL << b)) {
        s0 ^= s_[0];
        s1 ^= s_[1];
        s2 ^= s_[2];
        s3 ^= s_[3];
      }
      next_u64();
    }
  }
  s_[0] = s0;
  s_[1] = s1;
  s_[2] = s2;
  s_[3] = s3;
  has_cached_normal_ = false;
}

Rng Rng::stream(std::uint64_t seed, std::uint64_t stream_id) {
  // Fold the id into the seed so far-apart ids land in unrelated states,
  // then jump a bounded number of times so nearby ids are provably
  // non-overlapping (a jump is 2^128 steps; 64 jumps is cheap).
  std::uint64_t sm = seed;
  const std::uint64_t mixed = splitmix64(sm) ^ (stream_id * 0xD1B54A32D192ED03ULL);
  Rng r(mixed);
  for (std::uint64_t j = 0; j < (stream_id & 63ULL); ++j) r.jump();
  return r;
}

std::vector<std::size_t> Rng::permutation(std::size_t n) {
  std::vector<std::size_t> idx(n);
  for (std::size_t i = 0; i < n; ++i) idx[i] = i;
  for (std::size_t i = n; i > 1; --i) {
    const std::size_t j = uniform_index(i);
    std::swap(idx[i - 1], idx[j]);
  }
  return idx;
}

}  // namespace univsa
