// Deterministic random number generation.
//
// Every stochastic component in the library (weight init, dataset
// synthesis, evolutionary search, property tests) draws from an explicit
// Rng instance seeded by the caller, so a fixed seed reproduces a model,
// a dataset, and a results table bit-for-bit. The generator is
// xoshiro256** seeded through splitmix64, which gives independent streams
// for nearby seeds.
#pragma once

#include <cstdint>
#include <vector>

namespace univsa {

/// xoshiro256** PRNG with splitmix64 seeding. Not a cryptographic RNG.
class Rng {
 public:
  explicit Rng(std::uint64_t seed = 0x9E3779B97F4A7C15ULL);

  /// Next raw 64-bit value.
  std::uint64_t next_u64();

  /// Uniform in [0, 1).
  double uniform();

  /// Uniform in [lo, hi).
  double uniform(double lo, double hi);

  /// Uniform integer in [0, n). Requires n > 0.
  std::uint64_t uniform_index(std::uint64_t n);

  /// Uniform integer in [lo, hi] inclusive. Requires lo <= hi.
  std::int64_t uniform_int(std::int64_t lo, std::int64_t hi);

  /// Standard normal via Box–Muller (cached second value).
  double normal();

  /// Normal with given mean and standard deviation.
  double normal(double mean, double stddev);

  /// Random sign: +1 or -1 with equal probability.
  int sign();

  /// Bernoulli(p) — true with probability p.
  bool bernoulli(double p);

  /// Derive an independent child stream (for per-worker determinism).
  Rng fork();

  /// Advance this generator by 2^128 steps (the xoshiro256** jump
  /// polynomial). Generators separated by jumps never overlap for any
  /// realistic draw count, so `r.jump()` carves the stream into
  /// independent sub-streams.
  void jump();

  /// Deterministic per-worker/per-genome stream: seeds through splitmix64
  /// with the stream id folded in, then applies `stream_id`-many 2^128
  /// jumps (capped) so distinct ids are guaranteed non-overlapping even
  /// under adversarial seed/id combinations. `stream(s, i)` depends only
  /// on (s, i) — never on evaluation order — which is what makes parallel
  /// GA/training runs bit-identical to their serial counterparts.
  static Rng stream(std::uint64_t seed, std::uint64_t stream_id);

  /// Fisher–Yates shuffle of an index vector [0, n).
  std::vector<std::size_t> permutation(std::size_t n);

 private:
  std::uint64_t s_[4];
  double cached_normal_ = 0.0;
  bool has_cached_normal_ = false;
};

}  // namespace univsa
