// A small fixed-size thread pool with a work-stealing parallel_for.
//
// Training the partial BNN (Sec. II-C / III) is GEMM-bound; parallel_for
// splits the M dimension of the GEMM and the batch dimension of layer
// forward/backward passes. The pool is created once (see global_pool())
// so bench binaries don't pay thread start-up per layer call.
//
// parallel_for calls may nest: a chunk running on a pool worker (e.g. one
// GA candidate training a model) may itself call parallel_for, and the
// sub-chunks go into the shared queue where any idle thread — including
// threads blocked on their own join — picks them up. Joining threads
// never sleep while runnable work exists ("help-while-wait"), so P
// outer tasks effectively train concurrently on N shared workers with
// no lane ever deadlocking on its own children. This is what makes the
// co-design search's candidate-evaluation phase scale: before, nested
// calls degraded to serial execution inside the worker.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <deque>
#include <exception>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace univsa {

class ThreadPool {
 public:
  /// Creates `threads` workers; 0 means hardware_concurrency (min 1).
  explicit ThreadPool(std::size_t threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  std::size_t thread_count() const { return workers_.size(); }

  /// Runs fn(begin, end) over a partition of [0, n) across the pool and
  /// the calling thread; returns when every chunk is done. Exceptions in
  /// chunks are rethrown (first one wins). While waiting for its own
  /// chunks the caller executes other queued tasks, so nested calls
  /// compose instead of serializing or deadlocking.
  ///
  /// `max_chunk` bounds the per-task index range; 0 picks one chunk per
  /// thread (right for homogeneous work like GEMM row blocks). Pass 1
  /// for heterogeneous tasks (e.g. GA candidates whose training cost
  /// varies with the genome) so idle threads dynamically steal work
  /// item by item instead of being stuck with an unlucky static range.
  void parallel_for(std::size_t n,
                    const std::function<void(std::size_t, std::size_t)>& fn,
                    std::size_t max_chunk = 0);

 private:
  struct Join {
    std::atomic<std::size_t> remaining{0};
    std::exception_ptr error;
    std::mutex error_mutex;
  };

  void worker_loop();
  /// Executes queued tasks until join.remaining reaches zero, sleeping
  /// only when the queue is empty.
  void help_until_done(Join& join);

  std::vector<std::thread> workers_;
  std::deque<std::function<void()>> tasks_;
  std::mutex mutex_;
  std::condition_variable cv_;
  bool stop_ = false;
};

/// Process-wide pool, lazily constructed. The first construction honours
/// the UNIVSA_THREADS environment variable (0/unset means
/// hardware_concurrency) so bench and CI runs are pinnable without code
/// changes.
ThreadPool& global_pool();

/// Rebuilds the global pool with `threads` workers (0 = hardware
/// concurrency). Must not be called while a parallel_for on the global
/// pool is in flight — intended for startup flag parsing (`--threads N`)
/// and tests.
void set_global_pool_threads(std::size_t threads);

/// Convenience: parallel_for on the global pool. Runs serially when n is
/// small enough that chunking would cost more than it saves.
void parallel_for(std::size_t n,
                  const std::function<void(std::size_t, std::size_t)>& fn);

}  // namespace univsa
