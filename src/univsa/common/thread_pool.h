// A small fixed-size thread pool with a parallel_for helper.
//
// Training the partial BNN (Sec. II-C / III) is GEMM-bound; parallel_for
// splits the M dimension of the GEMM and the batch dimension of layer
// forward/backward passes. The pool is created once (see global_pool())
// so bench binaries don't pay thread start-up per layer call.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <functional>
#include <mutex>
#include <queue>
#include <thread>
#include <vector>

namespace univsa {

class ThreadPool {
 public:
  /// Creates `threads` workers; 0 means hardware_concurrency (min 1).
  explicit ThreadPool(std::size_t threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  std::size_t thread_count() const { return workers_.size(); }

  /// Runs fn(begin, end) over a partition of [0, n) across the pool and
  /// the calling thread; returns when every chunk is done. Exceptions in
  /// chunks are rethrown (first one wins).
  void parallel_for(std::size_t n,
                    const std::function<void(std::size_t, std::size_t)>& fn);

 private:
  void worker_loop();

  std::vector<std::thread> workers_;
  std::queue<std::function<void()>> tasks_;
  std::mutex mutex_;
  std::condition_variable cv_;
  bool stop_ = false;
};

/// Process-wide pool, lazily constructed. The first construction honours
/// the UNIVSA_THREADS environment variable (0/unset means
/// hardware_concurrency) so bench and CI runs are pinnable without code
/// changes.
ThreadPool& global_pool();

/// Rebuilds the global pool with `threads` workers (0 = hardware
/// concurrency). Must not be called while a parallel_for on the global
/// pool is in flight — intended for startup flag parsing (`--threads N`)
/// and tests.
void set_global_pool_threads(std::size_t threads);

/// Convenience: parallel_for on the global pool. Runs serially when n is
/// small enough that chunking would cost more than it saves.
void parallel_for(std::size_t n,
                  const std::function<void(std::size_t, std::size_t)>& fn);

}  // namespace univsa
