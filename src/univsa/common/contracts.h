// Lightweight contract checking used across the library.
//
// UNIVSA_REQUIRE  — precondition on caller-supplied arguments; throws
//                   std::invalid_argument so misuse is reported at the API
//                   boundary instead of corrupting internal state.
// UNIVSA_ENSURE   — internal invariant / postcondition; throws
//                   std::logic_error because a failure indicates a bug in
//                   this library, not in the caller.
//
// Both are always on: the checks guard kilobyte-scale models and are far
// off every hot path (hot loops validate once, outside the loop).
#pragma once

#include <sstream>
#include <stdexcept>
#include <string>

namespace univsa {

namespace detail {

[[noreturn]] inline void throw_require(const char* expr, const char* file,
                                       int line, const std::string& msg) {
  std::ostringstream os;
  os << "precondition failed: (" << expr << ") at " << file << ':' << line;
  if (!msg.empty()) os << " — " << msg;
  throw std::invalid_argument(os.str());
}

[[noreturn]] inline void throw_ensure(const char* expr, const char* file,
                                      int line, const std::string& msg) {
  std::ostringstream os;
  os << "invariant failed: (" << expr << ") at " << file << ':' << line;
  if (!msg.empty()) os << " — " << msg;
  throw std::logic_error(os.str());
}

}  // namespace detail

#define UNIVSA_REQUIRE(cond, msg)                                          \
  do {                                                                     \
    if (!(cond))                                                           \
      ::univsa::detail::throw_require(#cond, __FILE__, __LINE__, (msg));   \
  } while (0)

#define UNIVSA_ENSURE(cond, msg)                                           \
  do {                                                                     \
    if (!(cond))                                                           \
      ::univsa::detail::throw_ensure(#cond, __FILE__, __LINE__, (msg));    \
  } while (0)

}  // namespace univsa
