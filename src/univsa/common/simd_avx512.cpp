// AVX-512 variants of the XNOR/popcount primitives. Compiled with
// -mavx512f -mavx512bw -mavx512vl -mavx512vpopcntdq (src/CMakeLists.txt);
// only dispatched when CPUID reports avx512f+vl+vpopcntdq.
//
// VPOPCNTDQ gives a native per-qword popcount, so no Harley–Seal tree is
// needed — the loops are plain load / vpternlogq / vpopcntq / vpaddq.
// Booleans fuse into a single vpternlogq: imm 0xC3 is ~(A^B) and imm
// 0x82 is (~(A^B)) & C (derived from the A=0xF0, B=0xCC, C=0xAA truth
// table). Tails use maskz loads; note the masked-out lanes of a maskz
// load read as 0, which XNOR would count as 64 false matches each, so
// the xnor tail counts through _mm512_maskz_popcnt_epi64 instead of
// popcounting the full vector.
#include "univsa/common/simd.h"

#if defined(UNIVSA_SIMD_HAS_AVX512)

#include <immintrin.h>

#include <cstddef>
#include <cstdint>

namespace univsa::simd {
namespace {

inline __m512i loadu(const std::uint64_t* p) {
  return _mm512_loadu_si512(reinterpret_cast<const void*>(p));
}

inline __mmask8 tail_mask(std::size_t remaining) {
  return static_cast<__mmask8>((1u << remaining) - 1u);
}

std::uint64_t avx512_bulk_popcount(const std::uint64_t* a, std::size_t n) {
  __m512i total = _mm512_setzero_si512();
  std::size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    total = _mm512_add_epi64(total, _mm512_popcnt_epi64(loadu(a + i)));
  }
  if (i < n) {
    const __mmask8 m = tail_mask(n - i);
    total = _mm512_add_epi64(
        total, _mm512_popcnt_epi64(_mm512_maskz_loadu_epi64(m, a + i)));
  }
  return static_cast<std::uint64_t>(_mm512_reduce_add_epi64(total));
}

std::uint64_t avx512_xor_popcount(const std::uint64_t* a,
                                  const std::uint64_t* b, std::size_t n) {
  __m512i total = _mm512_setzero_si512();
  std::size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    total = _mm512_add_epi64(
        total,
        _mm512_popcnt_epi64(_mm512_xor_si512(loadu(a + i), loadu(b + i))));
  }
  if (i < n) {
    const __mmask8 m = tail_mask(n - i);
    total = _mm512_add_epi64(
        total, _mm512_popcnt_epi64(_mm512_xor_si512(
                   _mm512_maskz_loadu_epi64(m, a + i),
                   _mm512_maskz_loadu_epi64(m, b + i))));
  }
  return static_cast<std::uint64_t>(_mm512_reduce_add_epi64(total));
}

std::uint64_t avx512_xnor_popcount(const std::uint64_t* a,
                                   const std::uint64_t* b, std::size_t n) {
  __m512i total = _mm512_setzero_si512();
  std::size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    const __m512i va = loadu(a + i);
    const __m512i x = _mm512_ternarylogic_epi64(va, loadu(b + i), va, 0xC3);
    total = _mm512_add_epi64(total, _mm512_popcnt_epi64(x));
  }
  if (i < n) {
    // Masked-out lanes are 0 after a maskz load, so ~(0^0) would count
    // 64 phantom matches per lane — popcount only the live lanes.
    const __mmask8 m = tail_mask(n - i);
    const __m512i va = _mm512_maskz_loadu_epi64(m, a + i);
    const __m512i x = _mm512_ternarylogic_epi64(
        va, _mm512_maskz_loadu_epi64(m, b + i), va, 0xC3);
    total = _mm512_add_epi64(total, _mm512_maskz_popcnt_epi64(m, x));
  }
  return static_cast<std::uint64_t>(_mm512_reduce_add_epi64(total));
}

std::uint64_t avx512_masked_xnor_popcount(const std::uint64_t* a,
                                          const std::uint64_t* b,
                                          const std::uint64_t* mask,
                                          std::size_t n) {
  __m512i total = _mm512_setzero_si512();
  std::size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    const __m512i x = _mm512_ternarylogic_epi64(
        loadu(a + i), loadu(b + i), loadu(mask + i), 0x82);
    total = _mm512_add_epi64(total, _mm512_popcnt_epi64(x));
  }
  if (i < n) {
    // A zero mask lane contributes zero, so no phantom-match hazard here.
    const __mmask8 m = tail_mask(n - i);
    const __m512i x = _mm512_ternarylogic_epi64(
        _mm512_maskz_loadu_epi64(m, a + i),
        _mm512_maskz_loadu_epi64(m, b + i),
        _mm512_maskz_loadu_epi64(m, mask + i), 0x82);
    total = _mm512_add_epi64(total, _mm512_popcnt_epi64(x));
  }
  return static_cast<std::uint64_t>(_mm512_reduce_add_epi64(total));
}

// BiConv sweep vectorized across kernels: 8 adjacent kernels per zmm,
// patch/valid words broadcast, (~(p^k))&v fused into one vpternlogq.
void avx512_masked_xnor_popcount_sweep(const std::uint64_t* patch,
                                       const std::uint64_t* valid,
                                       const std::uint64_t* kernels_t,
                                       std::size_t words, std::size_t k_count,
                                       std::uint32_t* acc) {
  std::size_t k = 0;
  for (; k + 8 <= k_count; k += 8) {
    __m512i sum = _mm512_setzero_si512();
    for (std::size_t i = 0; i < words; ++i) {
      const __m512i p =
          _mm512_set1_epi64(static_cast<long long>(patch[i]));
      const __m512i v =
          _mm512_set1_epi64(static_cast<long long>(valid[i]));
      const __m512i x = _mm512_ternarylogic_epi64(
          p, loadu(kernels_t + i * k_count + k), v, 0x82);
      sum = _mm512_add_epi64(sum, _mm512_popcnt_epi64(x));
    }
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(acc + k),
                        _mm512_cvtepi64_epi32(sum));
  }
  if (k < k_count) {
    const __mmask8 m = tail_mask(k_count - k);
    __m512i sum = _mm512_setzero_si512();
    for (std::size_t i = 0; i < words; ++i) {
      const __m512i p =
          _mm512_set1_epi64(static_cast<long long>(patch[i]));
      const __m512i v =
          _mm512_set1_epi64(static_cast<long long>(valid[i]));
      const __m512i x = _mm512_ternarylogic_epi64(
          p, _mm512_maskz_loadu_epi64(m, kernels_t + i * k_count + k), v,
          0x82);
      // Phantom matches in the dead lanes don't matter — the masked
      // store below never writes them — but keep them zeroed anyway so
      // the accumulator can't overflow in a pathological words count.
      sum = _mm512_add_epi64(sum, _mm512_maskz_popcnt_epi64(m, x));
    }
    _mm256_mask_storeu_epi32(acc + k, m, _mm512_cvtepi64_epi32(sum));
  }
}

}  // namespace

namespace detail {

Kernels avx512_kernels() {
  Kernels k;
  k.isa = Isa::kAvx512;
  k.bulk_popcount = avx512_bulk_popcount;
  k.xor_popcount = avx512_xor_popcount;
  k.xnor_popcount = avx512_xnor_popcount;
  k.masked_xnor_popcount = avx512_masked_xnor_popcount;
  k.masked_xnor_popcount_sweep = avx512_masked_xnor_popcount_sweep;
  return k;
}

}  // namespace detail

}  // namespace univsa::simd

#endif  // UNIVSA_SIMD_HAS_AVX512
