#include "univsa/common/bitvec.h"

#include <bit>

#include "univsa/common/contracts.h"
#include "univsa/common/simd.h"

namespace univsa {

namespace {
constexpr std::size_t kWordBits = 64;

std::size_t words_for(std::size_t n) { return (n + kWordBits - 1) / kWordBits; }
}  // namespace

BitVec::BitVec(std::size_t n) : n_(n), words_(words_for(n), 0) {}

BitVec BitVec::from_bipolar(std::span<const int> lanes) {
  BitVec v(lanes.size());
  for (std::size_t i = 0; i < lanes.size(); ++i) {
    UNIVSA_REQUIRE(lanes[i] == 1 || lanes[i] == -1, "lane must be +1 or -1");
    v.set(i, lanes[i]);
  }
  return v;
}

BitVec BitVec::from_signs(std::span<const float> values) {
  BitVec v(values.size());
  for (std::size_t i = 0; i < values.size(); ++i) {
    v.set(i, values[i] >= 0.0f ? 1 : -1);
  }
  return v;
}

BitVec BitVec::random(std::size_t n, Rng& rng) {
  BitVec v(n);
  for (auto& w : v.words_) w = rng.next_u64();
  v.clear_padding();
  return v;
}

void BitVec::check_index(std::size_t i) const {
  UNIVSA_REQUIRE(i < n_, "lane index out of range");
}

void BitVec::clear_padding() {
  const std::size_t rem = n_ % kWordBits;
  if (rem != 0 && !words_.empty()) {
    words_.back() &= (1ULL << rem) - 1;
  }
}

int BitVec::get(std::size_t i) const {
  check_index(i);
  return (words_[i / kWordBits] >> (i % kWordBits)) & 1ULL ? 1 : -1;
}

void BitVec::set(std::size_t i, int bipolar_value) {
  check_index(i);
  UNIVSA_REQUIRE(bipolar_value == 1 || bipolar_value == -1,
                 "lane must be +1 or -1");
  const std::uint64_t bit = 1ULL << (i % kWordBits);
  if (bipolar_value == 1) {
    words_[i / kWordBits] |= bit;
  } else {
    words_[i / kWordBits] &= ~bit;
  }
}

long long BitVec::dot(const BitVec& other) const {
  UNIVSA_REQUIRE(n_ == other.n_, "dot of mismatched sizes");
  std::size_t matches = simd::xnor_popcount(words_.data(),
                                            other.words_.data(),
                                            words_.size());
  // XNOR also matches the zero padding lanes; remove them.
  const std::size_t padding = words_.size() * kWordBits - n_;
  matches -= padding;
  return 2LL * static_cast<long long>(matches) - static_cast<long long>(n_);
}

long long BitVec::masked_dot(const BitVec& other, const BitVec& mask) const {
  UNIVSA_REQUIRE(n_ == other.n_ && n_ == mask.n_,
                 "masked_dot of mismatched sizes");
  const std::size_t matches = simd::masked_xnor_popcount(
      words_.data(), other.words_.data(), mask.words_.data(), words_.size());
  const std::size_t valid =
      simd::bulk_popcount(mask.words_.data(), mask.words_.size());
  return 2LL * static_cast<long long>(matches) -
         static_cast<long long>(valid);
}

std::size_t BitVec::hamming(const BitVec& other) const {
  UNIVSA_REQUIRE(n_ == other.n_, "hamming of mismatched sizes");
  return simd::xor_popcount(words_.data(), other.words_.data(),
                            words_.size());
}

std::size_t BitVec::popcount() const {
  return simd::bulk_popcount(words_.data(), words_.size());
}

BitVec BitVec::bind(const BitVec& other) const {
  UNIVSA_REQUIRE(n_ == other.n_, "bind of mismatched sizes");
  BitVec r(n_);
  for (std::size_t w = 0; w < words_.size(); ++w) {
    r.words_[w] = ~(words_[w] ^ other.words_[w]);
  }
  r.clear_padding();
  return r;
}

BitVec BitVec::mask_and(const BitVec& other) const {
  UNIVSA_REQUIRE(n_ == other.n_, "mask_and of mismatched sizes");
  BitVec r(n_);
  for (std::size_t w = 0; w < words_.size(); ++w) {
    r.words_[w] = words_[w] & other.words_[w];
  }
  return r;
}

BitVec BitVec::negate() const {
  BitVec r(n_);
  for (std::size_t w = 0; w < words_.size(); ++w) {
    r.words_[w] = ~words_[w];
  }
  r.clear_padding();
  return r;
}

std::vector<int> BitVec::to_bipolar() const {
  std::vector<int> out(n_);
  for (std::size_t i = 0; i < n_; ++i) out[i] = get(i);
  return out;
}

std::vector<float> BitVec::to_floats() const {
  std::vector<float> out(n_);
  for (std::size_t i = 0; i < n_; ++i) {
    out[i] = get(i) == 1 ? 1.0f : -1.0f;
  }
  return out;
}

bool BitVec::operator==(const BitVec& other) const {
  return n_ == other.n_ && words_ == other.words_;
}

BitSlicedAccumulator::BitSlicedAccumulator(std::size_t n)
    : n_(n), word_count_((n + 63) / 64) {
  const std::size_t rem = n % 64;
  tail_mask_ = (rem == 0) ? ~0ULL : ((1ULL << rem) - 1);
  if (word_count_ == 0) tail_mask_ = 0;
}

void BitSlicedAccumulator::add_agreement_words(
    const std::vector<std::uint64_t>& agree) {
  ++rows_;
  // Carry-save increment: ripple the 1-bit vote through the planes.
  std::vector<std::uint64_t> carry = agree;
  for (std::size_t k = 0; k < planes_.size(); ++k) {
    bool any = false;
    auto& plane = planes_[k];
    for (std::size_t w = 0; w < word_count_; ++w) {
      const std::uint64_t next = plane[w] & carry[w];
      plane[w] ^= carry[w];
      carry[w] = next;
      any |= next != 0;
    }
    if (!any) return;
  }
  // Carry out of the top plane: grow the counter.
  planes_.push_back(std::move(carry));
}

void BitSlicedAccumulator::add_bound(const BitVec& a, const BitVec& b) {
  UNIVSA_REQUIRE(a.size() == n_ && b.size() == n_,
                 "accumulator size mismatch");
  std::vector<std::uint64_t> agree(word_count_);
  const auto wa = a.words();
  const auto wb = b.words();
  for (std::size_t w = 0; w < word_count_; ++w) {
    agree[w] = ~(wa[w] ^ wb[w]);
  }
  if (word_count_ > 0) agree[word_count_ - 1] &= tail_mask_;
  add_agreement_words(agree);
}

void BitSlicedAccumulator::add(const BitVec& v) {
  UNIVSA_REQUIRE(v.size() == n_, "accumulator size mismatch");
  std::vector<std::uint64_t> agree(v.words().begin(), v.words().end());
  add_agreement_words(agree);
}

BitVec BitSlicedAccumulator::sign() const {
  BitVec out(n_);
  // Lane sum = 2·count − rows; sgn(0) = +1  <=>  2·count >= rows.
  for (std::size_t i = 0; i < n_; ++i) {
    const std::size_t w = i / 64;
    const std::size_t bit = i % 64;
    std::size_t count = 0;
    for (std::size_t k = 0; k < planes_.size(); ++k) {
      count += static_cast<std::size_t>((planes_[k][w] >> bit) & 1ULL)
               << k;
    }
    out.set(i, 2 * count >= rows_ ? 1 : -1);
  }
  return out;
}

void BipolarAccumulator::add(const BitVec& v) {
  UNIVSA_REQUIRE(v.size() == sums_.size(), "accumulator size mismatch");
  for (std::size_t i = 0; i < sums_.size(); ++i) sums_[i] += v.get(i);
}

void BipolarAccumulator::add_masked(const BitVec& v, const BitVec& mask) {
  UNIVSA_REQUIRE(v.size() == sums_.size() && mask.size() == sums_.size(),
                 "accumulator size mismatch");
  for (std::size_t i = 0; i < sums_.size(); ++i) {
    if (mask.get(i) == 1) sums_[i] += v.get(i);
  }
}

void BipolarAccumulator::add_bound(const BitVec& a, const BitVec& b) {
  UNIVSA_REQUIRE(a.size() == sums_.size() && b.size() == sums_.size(),
                 "accumulator size mismatch");
  // a_i * b_i is +1 exactly when the lanes agree (XNOR).
  for (std::size_t i = 0; i < sums_.size(); ++i) {
    sums_[i] += (a.get(i) == b.get(i)) ? 1 : -1;
  }
}

BitVec BipolarAccumulator::sign() const {
  BitVec v(sums_.size());
  for (std::size_t i = 0; i < sums_.size(); ++i) {
    v.set(i, sums_[i] >= 0 ? 1 : -1);
  }
  return v;
}

}  // namespace univsa
