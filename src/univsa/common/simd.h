// Runtime-dispatched SIMD kernels for the XNOR/popcount datapath.
//
// Every inference hot loop in the repo reduces to "combine packed 64-bit
// words with XNOR/AND, then popcount" (DESIGN.md §10). This layer owns
// that primitive set exactly once:
//
//   bulk_popcount(a, n)                 Σ popcount(a[i])
//   xor_popcount(a, b, n)               Σ popcount(a[i] ^ b[i])        (hamming)
//   xnor_popcount(a, b, n)              Σ popcount(~(a[i] ^ b[i]))     (matches)
//   masked_xnor_popcount(a, b, m, n)    Σ popcount(~(a[i] ^ b[i]) & m[i])
//   masked_xnor_popcount_sweep(...)     the fused BiConv kernel sweep: one
//                                       patch against K kernels at once
//
// Each primitive has a portable scalar reference plus AVX2 (Harley–Seal
// popcount), AVX-512 (`VPOPCNTDQ`), and NEON (`CNT`) implementations.
// ISA variants live in their own translation units compiled with the
// matching -m flags (simd_avx2.cpp / simd_avx512.cpp / simd_neon.cpp);
// the dispatch table here is resolved once at startup from CPUID /
// baseline-ISA facts, honoring a `UNIVSA_FORCE_ISA` environment override
// (scalar|avx2|avx512|neon) for testing. Every variant is bit-exact
// against the scalar reference — popcount has no rounding — and the
// property tests sweep every tail-mask shape to prove it.
//
// Note on padding: `xnor_popcount` counts the zero padding lanes beyond a
// BitVec's size as matches (~(0^0) = all ones), exactly like the scalar
// loops it replaced; callers subtract the padding (see BitVec::dot).
#pragma once

#include <cstddef>
#include <cstdint>
#include <optional>
#include <string>
#include <vector>

namespace univsa::simd {

enum class Isa {
  kScalar = 0,
  kAvx2 = 1,
  kAvx512 = 2,
  kNeon = 3,
};

/// Registry/CLI spelling: "scalar", "avx2", "avx512", "neon".
const char* to_string(Isa isa);

/// Inverse of to_string (case-sensitive); nullopt for unknown names.
std::optional<Isa> parse_isa(const std::string& name);

/// One dispatch table: every primitive resolved for a single ISA. The
/// pointers are immutable after construction, so a `const Kernels&` can
/// be shared freely across threads.
struct Kernels {
  Isa isa = Isa::kScalar;

  /// Σ popcount(a[i]) over n words.
  std::uint64_t (*bulk_popcount)(const std::uint64_t* a, std::size_t n);

  /// Σ popcount(a[i] ^ b[i]) — hamming distance over packed lanes.
  std::uint64_t (*xor_popcount)(const std::uint64_t* a,
                                const std::uint64_t* b, std::size_t n);

  /// Σ popcount(~(a[i] ^ b[i])) — matching lanes, padding included.
  std::uint64_t (*xnor_popcount)(const std::uint64_t* a,
                                 const std::uint64_t* b, std::size_t n);

  /// Σ popcount(~(a[i] ^ b[i]) & mask[i]) — DVP-masked matches.
  std::uint64_t (*masked_xnor_popcount)(const std::uint64_t* a,
                                        const std::uint64_t* b,
                                        const std::uint64_t* mask,
                                        std::size_t n);

  /// Fused BiConv sweep: one flattened patch against k_count kernels.
  /// `kernels_t` is word-major ("transposed"): word i of kernel k lives
  /// at kernels_t[i * k_count + k], so the vector paths process adjacent
  /// kernels in one register. Writes
  ///   acc[k] = Σ_i popcount(~(patch[i] ^ kernels_t[i*k_count+k]) & valid[i])
  /// for every k in [0, k_count).
  void (*masked_xnor_popcount_sweep)(const std::uint64_t* patch,
                                     const std::uint64_t* valid,
                                     const std::uint64_t* kernels_t,
                                     std::size_t words, std::size_t k_count,
                                     std::uint32_t* acc);
};

/// The ISA variants this binary was compiled with (always includes
/// kScalar; the others depend on the target architecture and compiler).
std::vector<Isa> compiled_isas();

/// Compiled in AND supported by the running CPU.
bool isa_available(Isa isa);

/// The best available ISA — what the default dispatch upgrades to.
Isa best_isa();

/// Dispatch table for one specific ISA. Requires isa_available(isa).
const Kernels& kernels_for(Isa isa);

/// The process-wide active table: best_isa(), unless UNIVSA_FORCE_ISA
/// names an available ISA (an unavailable or unparsable override falls
/// back to best_isa(); forced_isa() reports what the env asked for).
/// Resolved once, on first call.
const Kernels& active();
Isa active_isa();

/// What UNIVSA_FORCE_ISA requested, if set and parsable (even when
/// unavailable and therefore not active).
std::optional<Isa> forced_isa();

/// Space-separated relevant CPU features detected at runtime (e.g.
/// "popcnt avx avx2 avx512f avx512vpopcntdq"), for diagnostics.
std::string cpu_features_string();

// Convenience forwarders through the active table.
inline std::uint64_t bulk_popcount(const std::uint64_t* a, std::size_t n) {
  return active().bulk_popcount(a, n);
}
inline std::uint64_t xor_popcount(const std::uint64_t* a,
                                  const std::uint64_t* b, std::size_t n) {
  return active().xor_popcount(a, b, n);
}
inline std::uint64_t xnor_popcount(const std::uint64_t* a,
                                   const std::uint64_t* b, std::size_t n) {
  return active().xnor_popcount(a, b, n);
}
inline std::uint64_t masked_xnor_popcount(const std::uint64_t* a,
                                          const std::uint64_t* b,
                                          const std::uint64_t* mask,
                                          std::size_t n) {
  return active().masked_xnor_popcount(a, b, mask, n);
}

namespace detail {
// Per-ISA table builders, defined in their own translation units (only
// the ones CMake compiled in are ever referenced by the dispatcher).
Kernels scalar_kernels();
Kernels avx2_kernels();
Kernels avx512_kernels();
Kernels neon_kernels();
}  // namespace detail

}  // namespace univsa::simd
