#include "univsa/report/provenance.h"

#include <cstdio>
#include <sstream>
#include <string_view>

namespace univsa::report {

namespace {

std::string json_escape(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    if (c == '"' || c == '\\') {
      out.push_back('\\');
      out.push_back(c);
    } else if (static_cast<unsigned char>(c) < 0x20) {
      char buf[8];
      std::snprintf(buf, sizeof(buf), "\\u%04x", c);
      out += buf;
    } else {
      out.push_back(c);
    }
  }
  return out;
}

}  // namespace

std::string provenance_json_fields(const telemetry::BuildInfo& info) {
  std::ostringstream os;
  os << "  \"git_sha\": \"" << json_escape(info.git_sha) << "\",\n"
     << "  \"compiler\": \"" << json_escape(info.compiler) << "\",\n"
     << "  \"build_type\": \"" << json_escape(info.build_type) << "\",\n"
     << "  \"build_flags\": \"" << json_escape(info.flags) << "\",\n"
     << "  \"simd_isa\": \"" << json_escape(info.simd_isa) << "\",\n"
     << "  \"pool_threads\": " << info.threads << ",\n"
     << "  \"telemetry_compiled_in\": "
     << (info.telemetry_compiled_in ? "true" : "false") << ",\n";
  return os.str();
}

std::string provenance_json_fields() {
  return provenance_json_fields(telemetry::build_info());
}

}  // namespace univsa::report
