// Reference values transcribed from the paper's tables, printed next to
// our measured/simulated values in the bench binaries and EXPERIMENTS.md.
#pragma once

#include <optional>
#include <string>
#include <vector>

namespace univsa::report {

/// Table II — accuracy (and memory KB where given) per method per task.
struct PaperTable2Row {
  std::string task;
  double lda_acc, lda_kb;
  double knn_acc;  // memory not reported ("—")
  double svm_acc, svm_kb;
  double lehdc_acc, lehdc_kb;
  double ldc_acc, ldc_kb;
  double univsa_acc, univsa_kb;
};

const std::vector<PaperTable2Row>& paper_table2();

/// Table IV — UniVSA hardware performance per task.
struct PaperTable4Row {
  std::string task;
  double latency_ms;
  double power_w;
  double kiloluts;
  std::size_t brams;
  std::size_t dsps;
  double throughput_kilo;
};

const std::vector<PaperTable4Row>& paper_table4();

/// Table III — hardware comparison rows. Non-UniVSA rows are other
/// papers' silicon and are cited, not reproduced; strings carry the
/// paper's "(estimated)" parentheses and "—" blanks verbatim.
struct PaperTable3Row {
  std::string name;
  std::string fpga;
  std::string input_classes;
  std::string freq_mhz;
  std::string memory_kb;
  std::string latency_ms;
  std::string power_w;
  std::string kiloluts;
  std::string brams;
  std::string dsps;
};

const std::vector<PaperTable3Row>& paper_table3_citations();

/// Fig. 4 reference points: memory overhead of each extension relative
/// to the plain binary VSA baseline (Sec. III-B).
struct PaperFig4Overheads {
  double dvp_percent = 0.59;
  double biconv_percent = 5.64;
  double sv_percent = 0.39;
};

PaperFig4Overheads paper_fig4_overheads();

}  // namespace univsa::report
