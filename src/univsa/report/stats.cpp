#include "univsa/report/stats.h"

#include <algorithm>
#include <cmath>

#include "univsa/common/contracts.h"
#include "univsa/report/table.h"

namespace univsa::report {

Summary summarize(std::span<const double> values) {
  UNIVSA_REQUIRE(!values.empty(), "cannot summarize an empty set");
  Summary s;
  s.count = values.size();
  s.min = values[0];
  s.max = values[0];
  RunningStats rs;
  for (const double v : values) {
    rs.add(v);
    s.min = std::min(s.min, v);
    s.max = std::max(s.max, v);
  }
  s.mean = rs.mean();
  s.stddev = rs.stddev();
  return s;
}

std::string fmt_mean_std(const Summary& s, int precision) {
  return fmt(s.mean, precision) + " ± " + fmt(s.stddev, precision);
}

void RunningStats::add(double value) {
  ++count_;
  const double delta = value - mean_;
  mean_ += delta / static_cast<double>(count_);
  m2_ += delta * (value - mean_);
}

double RunningStats::mean() const {
  UNIVSA_REQUIRE(count_ > 0, "empty running stats");
  return mean_;
}

double RunningStats::stddev() const {
  UNIVSA_REQUIRE(count_ > 0, "empty running stats");
  if (count_ < 2) return 0.0;
  return std::sqrt(m2_ / static_cast<double>(count_ - 1));
}

}  // namespace univsa::report
