// Aligned text tables and CSV emission for the bench binaries.
#pragma once

#include <string>
#include <vector>

namespace univsa::report {

class TextTable {
 public:
  explicit TextTable(std::vector<std::string> headers);

  /// Cell count must match the header count.
  void add_row(std::vector<std::string> cells);
  /// Horizontal separator row.
  void add_rule();

  std::size_t rows() const { return rows_.size(); }

  std::string to_string() const;

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;  // empty vector = rule
};

/// Fixed-precision double formatting ("0.8971", "13.59").
std::string fmt(double value, int precision = 4);

/// "value (paper ref)" pairing used across the experiment tables.
std::string fmt_vs_paper(double measured, double paper, int precision = 4);

/// Writes a CSV file; throws on I/O failure.
void write_csv(const std::string& path,
               const std::vector<std::string>& headers,
               const std::vector<std::vector<std::string>>& rows);

}  // namespace univsa::report
