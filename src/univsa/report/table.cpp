#include "univsa/report/table.h"

#include <fstream>
#include <iomanip>
#include <sstream>

#include "univsa/common/contracts.h"

namespace univsa::report {

TextTable::TextTable(std::vector<std::string> headers)
    : headers_(std::move(headers)) {
  UNIVSA_REQUIRE(!headers_.empty(), "table needs headers");
}

void TextTable::add_row(std::vector<std::string> cells) {
  UNIVSA_REQUIRE(cells.size() == headers_.size(),
                 "cell count does not match header count");
  rows_.push_back(std::move(cells));
}

void TextTable::add_rule() { rows_.emplace_back(); }

std::string TextTable::to_string() const {
  std::vector<std::size_t> widths(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c) {
    widths[c] = headers_[c].size();
  }
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }

  const auto emit_rule = [&](std::ostringstream& os) {
    os << '+';
    for (const auto w : widths) {
      os << std::string(w + 2, '-') << '+';
    }
    os << '\n';
  };
  const auto emit_row = [&](std::ostringstream& os,
                            const std::vector<std::string>& cells) {
    os << '|';
    for (std::size_t c = 0; c < widths.size(); ++c) {
      const std::string& s = c < cells.size() ? cells[c] : std::string();
      os << ' ' << s << std::string(widths[c] - s.size(), ' ') << " |";
    }
    os << '\n';
  };

  std::ostringstream os;
  emit_rule(os);
  emit_row(os, headers_);
  emit_rule(os);
  for (const auto& row : rows_) {
    if (row.empty()) {
      emit_rule(os);
    } else {
      emit_row(os, row);
    }
  }
  emit_rule(os);
  return os.str();
}

std::string fmt(double value, int precision) {
  std::ostringstream os;
  os << std::fixed << std::setprecision(precision) << value;
  return os.str();
}

std::string fmt_vs_paper(double measured, double paper, int precision) {
  return fmt(measured, precision) + " (paper " + fmt(paper, precision) +
         ")";
}

void write_csv(const std::string& path,
               const std::vector<std::string>& headers,
               const std::vector<std::vector<std::string>>& rows) {
  std::ofstream os(path);
  UNIVSA_REQUIRE(os.is_open(), "cannot open CSV for writing: " + path);
  const auto emit = [&os](const std::vector<std::string>& cells) {
    for (std::size_t c = 0; c < cells.size(); ++c) {
      if (c) os << ',';
      const bool quote =
          cells[c].find_first_of(",\"\n") != std::string::npos;
      if (quote) {
        os << '"';
        for (const char ch : cells[c]) {
          if (ch == '"') os << '"';
          os << ch;
        }
        os << '"';
      } else {
        os << cells[c];
      }
    }
    os << '\n';
  };
  emit(headers);
  for (const auto& row : rows) emit(row);
  UNIVSA_ENSURE(os.good(), "CSV write failed");
}

}  // namespace univsa::report
