// Classification quality metrics.
//
// Accuracy alone hides failure modes on imbalanced tasks (CHB-IB is 70/30
// by construction, mirroring the paper's imbalanced seizure benchmark);
// the seizure example and the ablation benches report per-class
// precision/recall/F1 from this confusion matrix.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

namespace univsa::report {

class ConfusionMatrix {
 public:
  explicit ConfusionMatrix(std::size_t classes);

  std::size_t classes() const { return classes_; }
  std::size_t total() const { return total_; }

  void add(int true_label, int predicted_label);

  /// counts()[t * classes + p].
  const std::vector<std::size_t>& counts() const { return counts_; }
  std::size_t at(std::size_t true_label, std::size_t predicted) const;

  double accuracy() const;
  /// Per-class one-vs-rest metrics; 0 when the denominator is empty.
  double precision(std::size_t cls) const;
  double recall(std::size_t cls) const;
  double f1(std::size_t cls) const;
  double macro_f1() const;

  std::string to_string() const;

 private:
  std::size_t classes_;
  std::size_t total_ = 0;
  std::vector<std::size_t> counts_;
};

}  // namespace univsa::report
