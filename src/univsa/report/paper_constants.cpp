#include "univsa/report/paper_constants.h"

namespace univsa::report {

const std::vector<PaperTable2Row>& paper_table2() {
  static const std::vector<PaperTable2Row> rows = {
      //  task       LDA acc/KB      KNN acc  SVM acc/KB        LeHDC acc/KB     LDC acc/KB      UniVSA acc/KB
      {"EEGMMI",    0.7004, 8.19,   0.8262,  0.8766, 11223.04, 0.7980, 1602.50, 0.8279, 16.54, 0.8971, 13.59},
      {"BCI-III-V", 0.8599, 1.15,   0.9888,  0.8971, 510.22,   0.8235, 443.75,  0.9370, 1.71,  0.9545, 3.57},
      {"CHB-B",     0.9067, 11.78,  0.9744,  0.9819, 1990.14,  0.8992, 2162.50, 0.9669, 23.71, 0.9774, 4.51},
      {"CHB-IB",    0.9142, 11.78,  0.9488,  0.9729, 3612.29,  0.8675, 2162.50, 0.9639, 23.71, 0.9684, 3.67},
      {"ISOLET",    0.9410, 66.56,  0.9140,  0.9602, 5048.32,  0.9489, 1152.50, 0.9133, 10.78, 0.9282, 8.36},
      {"HAR",       0.7625, 13.82,  0.5582,  0.7852, 6743.81,  0.9523, 1047.50, 0.9256, 9.44,  0.9338, 3.14},
  };
  return rows;
}

const std::vector<PaperTable4Row>& paper_table4() {
  static const std::vector<PaperTable4Row> rows = {
      {"EEGMMI", 0.070, 0.45, 33.62, 3, 0, 17.34},
      {"BCI-III-V", 0.007, 0.18, 10.10, 1, 0, 184.84},
      {"CHB-B", 0.100, 0.34, 13.92, 1, 0, 12.06},
      {"CHB-IB", 0.206, 0.21, 16.46, 1, 0, 5.30},
      {"ISOLET", 0.044, 0.11, 7.92, 1, 0, 27.78},
      {"HAR", 0.039, 0.10, 6.78, 1, 0, 30.85},
  };
  return rows;
}

const std::vector<PaperTable3Row>& paper_table3_citations() {
  static const std::vector<PaperTable3Row> rows = {
      {"SVM [31]", "Virtex-5", "(20,20) / -*", "84", "(406)", "14.29",
       "3.2", "31.85", "131", "59"},
      {"KNN [16]", "Stratix IV", "64 / 2", "131.42", "—", "69.12", "24",
       "135", "—", "80"},
      {"BNN [14]", "Zynq-ZU3EG", "(3,32,32) / 10", "250", "—", "(0.36)",
       "4.1", "51.44", "212", "126"},
      {"QNN [13]", "Zynq-ZU3EG", "(3,224,224) / 1000", "250", "(1450)",
       "(24.33)", "5.5", "51.78", "159", "360"},
      {"LookHD [9]", "Kintex-7", "617 / 26", "200", "(165)", "—", "(9.52)",
       "165", "175", "807"},
      {"LDC [11]", "Zynq-ZU3EG", "784 / 10", "200", "6.48", "0.004",
       "(0.016)", "0.75", "5", "1"},
  };
  return rows;
}

PaperFig4Overheads paper_fig4_overheads() { return {}; }

}  // namespace univsa::report
