#include "univsa/report/metrics.h"

#include <sstream>

#include "univsa/common/contracts.h"

namespace univsa::report {

ConfusionMatrix::ConfusionMatrix(std::size_t classes)
    : classes_(classes), counts_(classes * classes, 0) {
  UNIVSA_REQUIRE(classes >= 2, "need at least two classes");
}

void ConfusionMatrix::add(int true_label, int predicted_label) {
  UNIVSA_REQUIRE(true_label >= 0 &&
                     static_cast<std::size_t>(true_label) < classes_,
                 "true label out of range");
  UNIVSA_REQUIRE(predicted_label >= 0 &&
                     static_cast<std::size_t>(predicted_label) < classes_,
                 "predicted label out of range");
  ++counts_[static_cast<std::size_t>(true_label) * classes_ +
            static_cast<std::size_t>(predicted_label)];
  ++total_;
}

std::size_t ConfusionMatrix::at(std::size_t true_label,
                                std::size_t predicted) const {
  UNIVSA_REQUIRE(true_label < classes_ && predicted < classes_,
                 "index out of range");
  return counts_[true_label * classes_ + predicted];
}

double ConfusionMatrix::accuracy() const {
  UNIVSA_REQUIRE(total_ > 0, "empty confusion matrix");
  std::size_t hit = 0;
  for (std::size_t c = 0; c < classes_; ++c) hit += at(c, c);
  return static_cast<double>(hit) / static_cast<double>(total_);
}

double ConfusionMatrix::precision(std::size_t cls) const {
  UNIVSA_REQUIRE(cls < classes_, "class out of range");
  std::size_t predicted = 0;
  for (std::size_t t = 0; t < classes_; ++t) predicted += at(t, cls);
  if (predicted == 0) return 0.0;
  return static_cast<double>(at(cls, cls)) /
         static_cast<double>(predicted);
}

double ConfusionMatrix::recall(std::size_t cls) const {
  UNIVSA_REQUIRE(cls < classes_, "class out of range");
  std::size_t actual = 0;
  for (std::size_t p = 0; p < classes_; ++p) actual += at(cls, p);
  if (actual == 0) return 0.0;
  return static_cast<double>(at(cls, cls)) / static_cast<double>(actual);
}

double ConfusionMatrix::f1(std::size_t cls) const {
  const double p = precision(cls);
  const double r = recall(cls);
  if (p + r == 0.0) return 0.0;
  return 2.0 * p * r / (p + r);
}

double ConfusionMatrix::macro_f1() const {
  double sum = 0.0;
  for (std::size_t c = 0; c < classes_; ++c) sum += f1(c);
  return sum / static_cast<double>(classes_);
}

std::string ConfusionMatrix::to_string() const {
  std::ostringstream os;
  os << "true\\pred";
  for (std::size_t p = 0; p < classes_; ++p) os << '\t' << p;
  os << '\n';
  for (std::size_t t = 0; t < classes_; ++t) {
    os << t;
    for (std::size_t p = 0; p < classes_; ++p) os << '\t' << at(t, p);
    os << '\n';
  }
  return os.str();
}

}  // namespace univsa::report
