// The one provenance-block emitter every JSON record shares.
//
// BENCH_*.json writers, metrics_snapshot.json (telemetry::to_json) and
// the flight recorder all stamp the same build-provenance fields; this
// helper is the single formatter, so the records can never drift apart
// field-by-field. Values are JSON-escaped at emit.
#pragma once

#include <string>

#include "univsa/telemetry/provenance.h"

namespace univsa::report {

/// `info` rendered as embeddable JSON fields (no surrounding braces),
/// two-space indented, trailing comma included:
///   "git_sha": "...",\n  "compiler": "...",\n ...
std::string provenance_json_fields(const telemetry::BuildInfo& info);

/// Convenience overload over the current process
/// (telemetry::build_info(); thread count sampled now).
std::string provenance_json_fields();

}  // namespace univsa::report
