// Small statistics helpers for multi-seed experiment reporting (the
// paper's Fig. 4 shows accuracy deviations across runs; the ablation
// benches reproduce that with mean ± std over seeds).
#pragma once

#include <span>
#include <string>

namespace univsa::report {

struct Summary {
  std::size_t count = 0;
  double mean = 0.0;
  double stddev = 0.0;  ///< sample standard deviation (n-1)
  double min = 0.0;
  double max = 0.0;
};

Summary summarize(std::span<const double> values);

/// "0.8917 ± 0.0123" formatting.
std::string fmt_mean_std(const Summary& s, int precision = 4);

/// Running Welford accumulator for streaming use.
class RunningStats {
 public:
  void add(double value);
  std::size_t count() const { return count_; }
  double mean() const;
  double stddev() const;

 private:
  std::size_t count_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
};

}  // namespace univsa::report
