// Activation modules with cached-input backward passes.
//
// SignSte implements the straight-through estimator used throughout LDC
// training (Sec. II-C): forward is sgn(x) with sgn(0)=+1 (the paper's
// tiebreak), backward passes the gradient where |x| <= 1 and zeroes it
// elsewhere (the "clipped identity" surrogate).
//
// Each module instance caches its last forward input; call forward then
// backward in strict alternation (enforced).
#pragma once

#include "univsa/tensor/tensor.h"

namespace univsa {

class SignSte {
 public:
  Tensor forward(const Tensor& x);
  Tensor backward(const Tensor& grad_out);

  /// Allocation-free variants; `out`/`grad_in` reuse their storage.
  void forward_into(const Tensor& x, Tensor& out);
  void backward_into(const Tensor& grad_out, Tensor& grad_in);

 private:
  Tensor cached_input_;
  bool has_cache_ = false;
};

class Relu {
 public:
  Tensor forward(const Tensor& x);
  Tensor backward(const Tensor& grad_out);

 private:
  Tensor cached_input_;
  bool has_cache_ = false;
};

class Tanh {
 public:
  Tensor forward(const Tensor& x);
  Tensor backward(const Tensor& grad_out);

  void forward_into(const Tensor& x, Tensor& out);
  void backward_into(const Tensor& grad_out, Tensor& grad_in);

 private:
  Tensor cached_output_;
  bool has_cache_ = false;
};

}  // namespace univsa
