#include "univsa/nn/activations.h"

#include <cmath>

#include "univsa/common/contracts.h"

namespace univsa {

Tensor SignSte::forward(const Tensor& x) {
  Tensor out;
  forward_into(x, out);
  return out;
}

void SignSte::forward_into(const Tensor& x, Tensor& out) {
  cached_input_ = x;
  has_cache_ = true;
  sign_tensor_into(x, out);
}

Tensor SignSte::backward(const Tensor& grad_out) {
  Tensor grad_in;
  backward_into(grad_out, grad_in);
  return grad_in;
}

void SignSte::backward_into(const Tensor& grad_out, Tensor& grad_in) {
  UNIVSA_ENSURE(has_cache_, "SignSte::backward before forward");
  UNIVSA_REQUIRE(grad_out.shape() == cached_input_.shape(),
                 "grad shape mismatch");
  has_cache_ = false;
  grad_in.ensure_shape(grad_out.shape());
  const auto in = cached_input_.flat();
  const auto go = grad_out.flat();
  auto gi = grad_in.flat();
  for (std::size_t i = 0; i < in.size(); ++i) {
    gi[i] = std::fabs(in[i]) <= 1.0f ? go[i] : 0.0f;
  }
}

Tensor Relu::forward(const Tensor& x) {
  cached_input_ = x;
  has_cache_ = true;
  Tensor out(x.shape());
  const auto in = x.flat();
  auto o = out.flat();
  for (std::size_t i = 0; i < in.size(); ++i) {
    o[i] = in[i] > 0.0f ? in[i] : 0.0f;
  }
  return out;
}

Tensor Relu::backward(const Tensor& grad_out) {
  UNIVSA_ENSURE(has_cache_, "Relu::backward before forward");
  UNIVSA_REQUIRE(grad_out.shape() == cached_input_.shape(),
                 "grad shape mismatch");
  has_cache_ = false;
  Tensor grad_in(grad_out.shape());
  const auto in = cached_input_.flat();
  const auto go = grad_out.flat();
  auto gi = grad_in.flat();
  for (std::size_t i = 0; i < in.size(); ++i) {
    gi[i] = in[i] > 0.0f ? go[i] : 0.0f;
  }
  return grad_in;
}

Tensor Tanh::forward(const Tensor& x) {
  Tensor out;
  forward_into(x, out);
  return out;
}

void Tanh::forward_into(const Tensor& x, Tensor& out) {
  out.ensure_shape(x.shape());
  const auto in = x.flat();
  auto o = out.flat();
  for (std::size_t i = 0; i < in.size(); ++i) o[i] = std::tanh(in[i]);
  cached_output_ = out;
  has_cache_ = true;
}

Tensor Tanh::backward(const Tensor& grad_out) {
  Tensor grad_in;
  backward_into(grad_out, grad_in);
  return grad_in;
}

void Tanh::backward_into(const Tensor& grad_out, Tensor& grad_in) {
  UNIVSA_ENSURE(has_cache_, "Tanh::backward before forward");
  UNIVSA_REQUIRE(grad_out.shape() == cached_output_.shape(),
                 "grad shape mismatch");
  has_cache_ = false;
  grad_in.ensure_shape(grad_out.shape());
  const auto y = cached_output_.flat();
  const auto go = grad_out.flat();
  auto gi = grad_in.flat();
  for (std::size_t i = 0; i < y.size(); ++i) {
    gi[i] = go[i] * (1.0f - y[i] * y[i]);
  }
}

}  // namespace univsa
