#include "univsa/nn/binary_conv2d.h"

#include <cmath>

#include "univsa/common/contracts.h"
#include "univsa/common/thread_pool.h"
#include "univsa/tensor/gemm.h"
#include "univsa/tensor/im2col.h"

namespace univsa {

BinaryConv2d::BinaryConv2d(std::size_t in_channels, std::size_t out_channels,
                           std::size_t kernel, Rng& rng, bool binarize)
    : in_channels_(in_channels),
      out_channels_(out_channels),
      kernel_(kernel),
      weight_(Tensor::randn({out_channels, in_channels * kernel * kernel},
                            rng, 0.25f)),
      weight_grad_({out_channels, in_channels * kernel * kernel}),
      binarize_(binarize) {
  UNIVSA_REQUIRE(kernel % 2 == 1, "kernel size must be odd");
}

const Tensor& BinaryConv2d::effective_weight() {
  if (!binarize_) return weight_;
  sign_tensor_into(weight_, eff_w_);
  return eff_w_;
}

Tensor BinaryConv2d::binary_weight() const { return sign_tensor(weight_); }

Tensor BinaryConv2d::forward(const Tensor& x) {
  Tensor out;
  forward_into(x, out);
  return out;
}

void BinaryConv2d::forward_into(const Tensor& x, Tensor& out) {
  UNIVSA_REQUIRE(x.rank() == 4 && x.dim(1) == in_channels_,
                 "BinaryConv2d input shape mismatch");
  const std::size_t batch = x.dim(0);
  const std::size_t height = x.dim(2);
  const std::size_t width = x.dim(3);
  const std::size_t plane = height * width;
  const std::size_t ckk = in_channels_ * kernel_ * kernel_;

  cached_cols_.ensure_shape({batch, ckk, plane});
  cached_batch_ = batch;
  cached_height_ = height;
  cached_width_ = width;
  has_cache_ = true;

  const Tensor& w = effective_weight();  // (O, CKK)
  out.ensure_shape({batch, out_channels_, height, width});

  const float* xd = x.data();
  float* cols = cached_cols_.data();
  float* od = out.data();
  // Samples are independent (disjoint column/output slices), so the batch
  // loop parallelizes without changing any result bit.
  global_pool().parallel_for(batch, [&](std::size_t begin, std::size_t end) {
    for (std::size_t b = begin; b < end; ++b) {
      float* cols_b = cols + b * ckk * plane;
      im2col_into(xd + b * in_channels_ * plane, in_channels_, height, width,
                  kernel_, cols_b);
      // (O, CKK) x (CKK, HW) -> (O, HW)
      gemm(GemmLayout::kNN, out_channels_, plane, ckk, w.data(), cols_b,
           od + b * out_channels_ * plane);
    }
  });
}

Tensor BinaryConv2d::backward(const Tensor& grad_out) {
  Tensor grad_in;
  backward_into(grad_out, grad_in);
  return grad_in;
}

void BinaryConv2d::backward_into(const Tensor& grad_out, Tensor& grad_in) {
  UNIVSA_ENSURE(has_cache_, "BinaryConv2d::backward before forward");
  const std::size_t batch = cached_batch_;
  const std::size_t plane = cached_height_ * cached_width_;
  UNIVSA_REQUIRE(grad_out.rank() == 4 && grad_out.dim(0) == batch &&
                     grad_out.dim(1) == out_channels_ &&
                     grad_out.dim(2) == cached_height_ &&
                     grad_out.dim(3) == cached_width_,
                 "BinaryConv2d grad shape mismatch");
  has_cache_ = false;

  const std::size_t ckk = in_channels_ * kernel_ * kernel_;
  const Tensor& w = effective_weight();
  dw_.ensure_shape({out_channels_, ckk});
  dw_.fill(0.0f);
  grad_in.ensure_shape({batch, in_channels_, cached_height_, cached_width_});
  dcols_.ensure_shape({ckk, plane});

  for (std::size_t b = 0; b < batch; ++b) {
    const float* go = grad_out.data() + b * out_channels_ * plane;
    const float* cols_b = cached_cols_.data() + b * ckk * plane;
    // dW += grad_out_b (O, HW) · cols_bᵀ (HW, CKK), fused β = 1.
    gemm(GemmLayout::kNT, out_channels_, ckk, plane, go, cols_b, dw_.data(),
         /*accumulate=*/true);
    // dcols = wᵀ (CKK, O) · grad_out_b (O, HW)
    gemm(GemmLayout::kTN, ckk, plane, out_channels_, w.data(), go,
         dcols_.data());
    col2im_into(dcols_.data(), in_channels_, cached_height_, cached_width_,
                kernel_, grad_in.data() + b * in_channels_ * plane);
  }

  if (binarize_) {
    const auto wl = weight_.flat();
    auto g = dw_.flat();
    for (std::size_t i = 0; i < g.size(); ++i) {
      if (std::fabs(wl[i]) > 1.0f) g[i] = 0.0f;
    }
  }
  weight_grad_.add_(dw_);
}

ParamList BinaryConv2d::params() {
  return {{&weight_, &weight_grad_, binarize_}};
}

void BinaryConv2d::zero_grad() { weight_grad_.fill(0.0f); }

}  // namespace univsa
