#include "univsa/nn/binary_conv2d.h"

#include <cmath>
#include <cstring>

#include "univsa/common/contracts.h"
#include "univsa/tensor/gemm.h"
#include "univsa/tensor/im2col.h"

namespace univsa {

BinaryConv2d::BinaryConv2d(std::size_t in_channels, std::size_t out_channels,
                           std::size_t kernel, Rng& rng, bool binarize)
    : in_channels_(in_channels),
      out_channels_(out_channels),
      kernel_(kernel),
      weight_(Tensor::randn({out_channels, in_channels * kernel * kernel},
                            rng, 0.25f)),
      weight_grad_({out_channels, in_channels * kernel * kernel}),
      binarize_(binarize) {
  UNIVSA_REQUIRE(kernel % 2 == 1, "kernel size must be odd");
}

Tensor BinaryConv2d::effective_weight() const {
  return binarize_ ? sign_tensor(weight_) : weight_;
}

Tensor BinaryConv2d::binary_weight() const { return sign_tensor(weight_); }

Tensor BinaryConv2d::forward(const Tensor& x) {
  UNIVSA_REQUIRE(x.rank() == 4 && x.dim(1) == in_channels_,
                 "BinaryConv2d input shape mismatch");
  const std::size_t batch = x.dim(0);
  const std::size_t height = x.dim(2);
  const std::size_t width = x.dim(3);
  const std::size_t plane = height * width;
  const std::size_t ckk = in_channels_ * kernel_ * kernel_;

  cached_cols_.assign(batch, Tensor());
  cached_height_ = height;
  cached_width_ = width;
  has_cache_ = true;

  const Tensor w = effective_weight();  // (O, CKK)
  Tensor out({batch, out_channels_, height, width});

  for (std::size_t b = 0; b < batch; ++b) {
    Tensor sample({in_channels_, height, width});
    std::memcpy(sample.data(), x.data() + b * in_channels_ * plane,
                in_channels_ * plane * sizeof(float));
    cached_cols_[b] = im2col(sample, kernel_);  // (CKK, HW)
    // (O, CKK) x (CKK, HW) -> (O, HW)
    gemm(GemmLayout::kNN, out_channels_, plane, ckk, w.data(),
         cached_cols_[b].data(), out.data() + b * out_channels_ * plane);
  }
  return out;
}

Tensor BinaryConv2d::backward(const Tensor& grad_out) {
  UNIVSA_ENSURE(has_cache_, "BinaryConv2d::backward before forward");
  const std::size_t batch = cached_cols_.size();
  const std::size_t plane = cached_height_ * cached_width_;
  UNIVSA_REQUIRE(grad_out.rank() == 4 && grad_out.dim(0) == batch &&
                     grad_out.dim(1) == out_channels_ &&
                     grad_out.dim(2) == cached_height_ &&
                     grad_out.dim(3) == cached_width_,
                 "BinaryConv2d grad shape mismatch");
  has_cache_ = false;

  const std::size_t ckk = in_channels_ * kernel_ * kernel_;
  const Tensor w = effective_weight();
  Tensor dw({out_channels_, ckk});
  Tensor grad_in({batch, in_channels_, cached_height_, cached_width_});
  Tensor dw_sample({out_channels_, ckk});
  Tensor dcols({ckk, plane});

  for (std::size_t b = 0; b < batch; ++b) {
    const float* go = grad_out.data() + b * out_channels_ * plane;
    // dW += grad_out_b (O, HW) · cols_bᵀ (HW, CKK)
    gemm(GemmLayout::kNT, out_channels_, ckk, plane, go,
         cached_cols_[b].data(), dw_sample.data());
    dw.add_(dw_sample);
    // dcols = wᵀ (CKK, O) · grad_out_b (O, HW)
    gemm(GemmLayout::kTN, ckk, plane, out_channels_, w.data(), go,
         dcols.data());
    Tensor gi = col2im(dcols, in_channels_, cached_height_, cached_width_,
                       kernel_);
    std::memcpy(grad_in.data() + b * in_channels_ * plane, gi.data(),
                in_channels_ * plane * sizeof(float));
  }

  if (binarize_) {
    const auto wl = weight_.flat();
    auto g = dw.flat();
    for (std::size_t i = 0; i < g.size(); ++i) {
      if (std::fabs(wl[i]) > 1.0f) g[i] = 0.0f;
    }
  }
  weight_grad_.add_(dw);
  return grad_in;
}

ParamList BinaryConv2d::params() {
  return {{&weight_, &weight_grad_, binarize_}};
}

void BinaryConv2d::zero_grad() { weight_grad_.fill(0.0f); }

}  // namespace univsa
