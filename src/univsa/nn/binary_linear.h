// Binary dense layer: y = x · sgn(W)ᵀ (no bias).
//
// This is the LDC "similarity measurement" layer (Sec. II-C): its binarized
// rows are the class vectors C extracted after training. The latent float
// weights are trained with the straight-through estimator — gradients reach
// W only where |W| <= 1 — and are clipped to [-1, 1] by the optimizer.
//
// `binarize` can be disabled to obtain a plain bias-free dense layer; this
// exists so the numerical grad-check can validate the data-flow exactly
// (the STE path is by construction not the true gradient).
#pragma once

#include "univsa/common/rng.h"
#include "univsa/nn/param.h"
#include "univsa/tensor/tensor.h"

namespace univsa {

class BinaryLinear {
 public:
  BinaryLinear(std::size_t in_features, std::size_t out_features, Rng& rng,
               bool binarize = true);

  std::size_t in_features() const { return weight_.dim(1); }
  std::size_t out_features() const { return weight_.dim(0); }

  /// x: (B, in) -> (B, out).
  Tensor forward(const Tensor& x);
  Tensor backward(const Tensor& grad_out);

  /// Allocation-free variants: `out`/`grad_in` plus the internal
  /// effective-weight and dW scratch reuse their storage across calls.
  void forward_into(const Tensor& x, Tensor& out);
  void backward_into(const Tensor& grad_out, Tensor& grad_in);

  ParamList params();
  void zero_grad();

  /// Binarized weights sgn(W) — what the deployed model stores.
  Tensor binary_weight() const;
  const Tensor& latent_weight() const { return weight_; }

 private:
  /// Refreshes eff_w_ (sgn(W) or W) and returns it.
  const Tensor& effective_weight();

  Tensor weight_;  // (out, in) latent
  Tensor weight_grad_;
  Tensor cached_input_;
  Tensor eff_w_;  // scratch: sgn(W) of the last forward/backward
  Tensor dw_;     // scratch: per-call weight gradient before the STE mask
  bool has_cache_ = false;
  bool binarize_;
};

}  // namespace univsa
