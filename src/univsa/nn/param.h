// Trainable parameter handle.
//
// Layers own their weight and gradient tensors; the optimizer works on a
// flat list of these views. `clip_latent` marks latent weights behind a
// sign() binarization (BNN convention): after each optimizer step they are
// clipped to [-1, 1] so the straight-through estimator's gradient window
// stays meaningful.
#pragma once

#include <vector>

#include "univsa/tensor/tensor.h"

namespace univsa {

struct Param {
  Tensor* value = nullptr;
  Tensor* grad = nullptr;
  bool clip_latent = false;
};

using ParamList = std::vector<Param>;

/// Appends `extra` to `list` (layers compose their children's params).
inline void append_params(ParamList& list, const ParamList& extra) {
  list.insert(list.end(), extra.begin(), extra.end());
}

}  // namespace univsa
