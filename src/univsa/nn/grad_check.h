// Numerical gradient checking harness.
//
// Validates a layer's analytic backward pass against central differences
// of a scalar loss. Only meaningful on the *non*-binarized code paths
// (binarize = false): sgn() has zero gradient almost everywhere, so the
// STE layers are intentionally not the true gradient. Checking the float
// paths still exercises all of the data-flow (GEMMs, im2col/col2im,
// gather/scatter), which is where bugs live.
#pragma once

#include <functional>

#include "univsa/nn/param.h"
#include "univsa/tensor/tensor.h"

namespace univsa {

struct GradCheckResult {
  float max_abs_error = 0.0f;
  float max_rel_error = 0.0f;
  bool passed = false;
};

/// `loss_fn` recomputes the scalar loss from scratch (it will be called
/// many times with perturbed parameters). `analytic_grad` is the layer's
/// accumulated gradient for `param` after one forward+backward at the
/// current parameters.
GradCheckResult check_param_gradient(
    const std::function<float()>& loss_fn, Tensor& param,
    const Tensor& analytic_grad, float epsilon = 1e-3f, float tol = 2e-2f);

/// Same, but for an input tensor's gradient.
GradCheckResult check_input_gradient(
    const std::function<float()>& loss_fn, Tensor& input,
    const Tensor& analytic_grad, float epsilon = 1e-3f, float tol = 2e-2f);

}  // namespace univsa
