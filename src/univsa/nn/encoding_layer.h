// Vector encoding layer (Eq. 1 as a structured binary layer, Sec. II-C /
// III-A3).
//
// Computes z[b, j] = Σ_g sgn(F)[g, j] * u[b, g, j] — a bind-then-bundle
// along the "group" axis g. In plain LDC, g indexes input features
// (F = feature vectors, one per feature position, vector dim D). In
// UniVSA, g indexes BiConv output channels and the vector dimension is the
// flattened spatial size W*L (Sec. III-A3). Both cases are the same
// contraction, so this single module serves plain LDC, the ablations, and
// the full UniVSA network.
//
// The output is pre-binarization; the network applies SignSte to get the
// sample vector s. The binarized weights are the deployed feature vector
// set F.
#pragma once

#include "univsa/common/rng.h"
#include "univsa/nn/param.h"
#include "univsa/tensor/tensor.h"

namespace univsa {

class EncodingLayer {
 public:
  /// groups = G (features or conv channels), dim = per-group vector length.
  EncodingLayer(std::size_t groups, std::size_t dim, Rng& rng,
                bool binarize = true);

  std::size_t groups() const { return groups_; }
  std::size_t dim() const { return dim_; }

  /// u: (B, G, D) -> z: (B, D).
  Tensor forward(const Tensor& u);
  /// grad_out: (B, D) -> grad wrt u (B, G, D).
  Tensor backward(const Tensor& grad_out);

  /// Allocation-free variants (scratch + outputs reuse their storage).
  void forward_into(const Tensor& u, Tensor& out);
  void backward_into(const Tensor& grad_out, Tensor& grad_in);

  ParamList params();
  void zero_grad();

  /// Binarized feature vectors sgn(F), shape (G, D).
  Tensor binary_weight() const;
  const Tensor& latent_weight() const { return weight_; }

 private:
  /// Refreshes eff_w_ (sgn(F) or F) and returns it.
  const Tensor& effective_weight();

  std::size_t groups_;
  std::size_t dim_;
  Tensor weight_;  // (G, D) latent
  Tensor weight_grad_;
  Tensor cached_input_;
  Tensor eff_w_;  // scratch: sgn(F) of the last forward/backward
  Tensor dw_;     // scratch: per-call weight gradient before the STE mask
  bool has_cache_ = false;
  bool binarize_;
};

}  // namespace univsa
