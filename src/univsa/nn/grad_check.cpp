#include "univsa/nn/grad_check.h"

#include <algorithm>
#include <cmath>

#include "univsa/common/contracts.h"

namespace univsa {

namespace {

GradCheckResult check_tensor(const std::function<float()>& loss_fn,
                             Tensor& tensor, const Tensor& analytic_grad,
                             float epsilon, float tol) {
  UNIVSA_REQUIRE(tensor.shape() == analytic_grad.shape(),
                 "grad-check shape mismatch");
  GradCheckResult result;
  auto values = tensor.flat();
  const auto grads = analytic_grad.flat();

  for (std::size_t i = 0; i < values.size(); ++i) {
    const float saved = values[i];
    values[i] = saved + epsilon;
    const float plus = loss_fn();
    values[i] = saved - epsilon;
    const float minus = loss_fn();
    values[i] = saved;

    const float numeric = (plus - minus) / (2.0f * epsilon);
    const float abs_err = std::fabs(numeric - grads[i]);
    const float denom = std::max({std::fabs(numeric), std::fabs(grads[i]),
                                  1e-4f});
    result.max_abs_error = std::max(result.max_abs_error, abs_err);
    result.max_rel_error = std::max(result.max_rel_error, abs_err / denom);
  }
  result.passed = result.max_rel_error <= tol;
  return result;
}

}  // namespace

GradCheckResult check_param_gradient(const std::function<float()>& loss_fn,
                                     Tensor& param,
                                     const Tensor& analytic_grad,
                                     float epsilon, float tol) {
  return check_tensor(loss_fn, param, analytic_grad, epsilon, tol);
}

GradCheckResult check_input_gradient(const std::function<float()>& loss_fn,
                                     Tensor& input,
                                     const Tensor& analytic_grad,
                                     float epsilon, float tol) {
  return check_tensor(loss_fn, input, analytic_grad, epsilon, tol);
}

}  // namespace univsa
