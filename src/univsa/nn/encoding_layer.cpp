#include "univsa/nn/encoding_layer.h"

#include <cmath>

#include "univsa/common/contracts.h"
#include "univsa/common/thread_pool.h"

namespace univsa {

EncodingLayer::EncodingLayer(std::size_t groups, std::size_t dim, Rng& rng,
                             bool binarize)
    : groups_(groups),
      dim_(dim),
      weight_(Tensor::randn({groups, dim}, rng, 0.25f)),
      weight_grad_({groups, dim}),
      binarize_(binarize) {}

const Tensor& EncodingLayer::effective_weight() {
  if (!binarize_) return weight_;
  sign_tensor_into(weight_, eff_w_);
  return eff_w_;
}

Tensor EncodingLayer::binary_weight() const { return sign_tensor(weight_); }

Tensor EncodingLayer::forward(const Tensor& u) {
  Tensor z;
  forward_into(u, z);
  return z;
}

void EncodingLayer::forward_into(const Tensor& u, Tensor& z) {
  UNIVSA_REQUIRE(u.rank() == 3 && u.dim(1) == groups_ && u.dim(2) == dim_,
                 "EncodingLayer input shape mismatch");
  cached_input_ = u;
  has_cache_ = true;

  const std::size_t batch = u.dim(0);
  const Tensor& w = effective_weight();
  z.ensure_shape({batch, dim_});
  const float* wd = w.data();
  const float* ud = u.data();
  float* zd = z.data();

  parallel_for(batch, [&](std::size_t begin, std::size_t end) {
    for (std::size_t b = begin; b < end; ++b) {
      float* zb = zd + b * dim_;
      for (std::size_t j = 0; j < dim_; ++j) zb[j] = 0.0f;
      for (std::size_t g = 0; g < groups_; ++g) {
        const float* ug = ud + (b * groups_ + g) * dim_;
        const float* wg = wd + g * dim_;
        for (std::size_t j = 0; j < dim_; ++j) zb[j] += wg[j] * ug[j];
      }
    }
  });
}

Tensor EncodingLayer::backward(const Tensor& grad_out) {
  Tensor grad_in;
  backward_into(grad_out, grad_in);
  return grad_in;
}

void EncodingLayer::backward_into(const Tensor& grad_out, Tensor& grad_in) {
  UNIVSA_ENSURE(has_cache_, "EncodingLayer::backward before forward");
  const std::size_t batch = cached_input_.dim(0);
  UNIVSA_REQUIRE(grad_out.rank() == 2 && grad_out.dim(0) == batch &&
                     grad_out.dim(1) == dim_,
                 "EncodingLayer grad shape mismatch");
  has_cache_ = false;

  const Tensor& w = effective_weight();
  grad_in.ensure_shape({batch, groups_, dim_});
  dw_.ensure_shape({groups_, dim_});
  dw_.fill(0.0f);
  const float* wd = w.data();
  const float* ud = cached_input_.data();
  const float* god = grad_out.data();
  float* gid = grad_in.data();
  float* dwd = dw_.data();

  // du[b,g,j] = dz[b,j] * w[g,j];  dw[g,j] = Σ_b dz[b,j] * u[b,g,j].
  for (std::size_t b = 0; b < batch; ++b) {
    const float* gz = god + b * dim_;
    for (std::size_t g = 0; g < groups_; ++g) {
      const float* ug = ud + (b * groups_ + g) * dim_;
      const float* wg = wd + g * dim_;
      float* gig = gid + (b * groups_ + g) * dim_;
      float* dwg = dwd + g * dim_;
      for (std::size_t j = 0; j < dim_; ++j) {
        gig[j] = gz[j] * wg[j];
        dwg[j] += gz[j] * ug[j];
      }
    }
  }

  if (binarize_) {
    const auto wl = weight_.flat();
    auto g = dw_.flat();
    for (std::size_t i = 0; i < g.size(); ++i) {
      if (std::fabs(wl[i]) > 1.0f) g[i] = 0.0f;
    }
  }
  weight_grad_.add_(dw_);
}

ParamList EncodingLayer::params() {
  return {{&weight_, &weight_grad_, binarize_}};
}

void EncodingLayer::zero_grad() { weight_grad_.fill(0.0f); }

}  // namespace univsa
