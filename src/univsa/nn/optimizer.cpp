#include "univsa/nn/optimizer.h"

#include <algorithm>
#include <cmath>

#include "univsa/common/contracts.h"

namespace univsa {

namespace {
void clip_latent(Param& p) {
  if (!p.clip_latent) return;
  for (auto& w : p.value->flat()) w = std::clamp(w, -1.0f, 1.0f);
}
}  // namespace

Adam::Adam(ParamList params, float lr, float beta1, float beta2, float eps)
    : params_(std::move(params)),
      lr_(lr),
      beta1_(beta1),
      beta2_(beta2),
      eps_(eps) {
  m_.reserve(params_.size());
  v_.reserve(params_.size());
  for (const auto& p : params_) {
    UNIVSA_REQUIRE(p.value != nullptr && p.grad != nullptr,
                   "null param in optimizer");
    UNIVSA_REQUIRE(p.value->shape() == p.grad->shape(),
                   "param/grad shape mismatch");
    m_.emplace_back(p.value->shape());
    v_.emplace_back(p.value->shape());
  }
}

void Adam::step() {
  ++step_count_;
  const float bc1 =
      1.0f - std::pow(beta1_, static_cast<float>(step_count_));
  const float bc2 =
      1.0f - std::pow(beta2_, static_cast<float>(step_count_));
  for (std::size_t i = 0; i < params_.size(); ++i) {
    auto& p = params_[i];
    auto w = p.value->flat();
    const auto g = p.grad->flat();
    auto m = m_[i].flat();
    auto v = v_[i].flat();
    for (std::size_t j = 0; j < w.size(); ++j) {
      m[j] = beta1_ * m[j] + (1.0f - beta1_) * g[j];
      v[j] = beta2_ * v[j] + (1.0f - beta2_) * g[j] * g[j];
      const float mhat = m[j] / bc1;
      const float vhat = v[j] / bc2;
      w[j] -= lr_ * mhat / (std::sqrt(vhat) + eps_);
    }
    clip_latent(p);
  }
}

void Adam::zero_grad() {
  for (auto& p : params_) p.grad->fill(0.0f);
}

Sgd::Sgd(ParamList params, float lr, float momentum)
    : params_(std::move(params)), lr_(lr), momentum_(momentum) {
  velocity_.reserve(params_.size());
  for (const auto& p : params_) {
    UNIVSA_REQUIRE(p.value != nullptr && p.grad != nullptr,
                   "null param in optimizer");
    velocity_.emplace_back(p.value->shape());
  }
}

void Sgd::step() {
  for (std::size_t i = 0; i < params_.size(); ++i) {
    auto& p = params_[i];
    auto w = p.value->flat();
    const auto g = p.grad->flat();
    auto v = velocity_[i].flat();
    for (std::size_t j = 0; j < w.size(); ++j) {
      v[j] = momentum_ * v[j] - lr_ * g[j];
      w[j] += v[j];
    }
    clip_latent(p);
  }
}

void Sgd::zero_grad() {
  for (auto& p : params_) p.grad->fill(0.0f);
}

}  // namespace univsa
