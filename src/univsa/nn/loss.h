// Softmax cross-entropy (mean over the batch) — the training objective of
// the partial BNN (Sec. II-C).
#pragma once

#include <vector>

#include "univsa/tensor/tensor.h"

namespace univsa {

struct LossResult {
  float loss = 0.0f;       ///< mean cross-entropy
  Tensor grad_logits;      ///< (B, C) gradient wrt logits
  std::size_t correct = 0; ///< # of argmax hits (training accuracy)
};

/// logits: (B, C); labels in [0, C).
LossResult softmax_cross_entropy(const Tensor& logits,
                                 const std::vector<int>& labels);

/// Allocation-free variant: `result.grad_logits` reuses its storage when
/// the batch shape is stable (the training loop passes the same LossResult
/// every step).
void softmax_cross_entropy_into(const Tensor& logits,
                                const std::vector<int>& labels,
                                LossResult& result);

}  // namespace univsa
