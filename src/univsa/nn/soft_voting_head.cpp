#include "univsa/nn/soft_voting_head.h"

#include <cmath>

#include "univsa/common/contracts.h"

namespace univsa {

SoftVotingHead::SoftVotingHead(std::size_t in_features, std::size_t classes,
                               std::size_t voters, Rng& rng, bool binarize)
    : classes_(classes), scale_({1}), scale_grad_({1}) {
  UNIVSA_REQUIRE(voters >= 1, "need at least one voter");
  voters_.reserve(voters);
  for (std::size_t t = 0; t < voters; ++t) {
    voters_.push_back(
        std::make_unique<BinaryLinear>(in_features, classes, rng, binarize));
  }
  // Binary similarities live in [-D, D]; start logits around ±4.
  scale_[0] = 4.0f / static_cast<float>(in_features);
}

Tensor SoftVotingHead::forward(const Tensor& s) {
  Tensor out;
  forward_into(s, out);
  return out;
}

void SoftVotingHead::forward_into(const Tensor& s, Tensor& out) {
  for (std::size_t t = 0; t < voters_.size(); ++t) {
    if (t == 0) {
      voters_[t]->forward_into(s, cached_mean_sim_);
    } else {
      voters_[t]->forward_into(s, voter_out_);
      cached_mean_sim_.add_(voter_out_);
    }
  }
  cached_mean_sim_.mul_(1.0f / static_cast<float>(voters_.size()));
  has_cache_ = true;
  out.ensure_shape(cached_mean_sim_.shape());
  const float mag = std::fabs(scale_[0]);
  const auto ms = cached_mean_sim_.flat();
  auto od = out.flat();
  for (std::size_t i = 0; i < ms.size(); ++i) od[i] = ms[i] * mag;
}

Tensor SoftVotingHead::backward(const Tensor& grad_out) {
  Tensor grad_in;
  backward_into(grad_out, grad_in);
  return grad_in;
}

void SoftVotingHead::backward_into(const Tensor& grad_out, Tensor& grad_in) {
  UNIVSA_ENSURE(has_cache_, "SoftVotingHead::backward before forward");
  UNIVSA_REQUIRE(grad_out.shape() == cached_mean_sim_.shape(),
                 "SoftVotingHead grad shape mismatch");
  has_cache_ = false;

  // d|γ| = Σ grad_out ⊙ mean_sim; chain through |·| via sign(γ).
  const float scale_sign = scale_[0] >= 0.0f ? 1.0f : -1.0f;
  float dscale = 0.0f;
  const auto go = grad_out.flat();
  const auto ms = cached_mean_sim_.flat();
  for (std::size_t i = 0; i < go.size(); ++i) dscale += go[i] * ms[i];
  scale_grad_[0] += dscale * scale_sign;

  voter_grad_.ensure_shape(grad_out.shape());
  const float vscale =
      std::fabs(scale_[0]) / static_cast<float>(voters_.size());
  auto vg = voter_grad_.flat();
  for (std::size_t i = 0; i < go.size(); ++i) vg[i] = go[i] * vscale;

  for (std::size_t t = 0; t < voters_.size(); ++t) {
    if (t == 0) {
      voters_[t]->backward_into(voter_grad_, grad_in);
    } else {
      voters_[t]->backward_into(voter_grad_, voter_out_);
      grad_in.add_(voter_out_);
    }
  }
}

ParamList SoftVotingHead::params() {
  ParamList list;
  for (auto& v : voters_) append_params(list, v->params());
  list.push_back({&scale_, &scale_grad_, false});
  return list;
}

void SoftVotingHead::zero_grad() {
  for (auto& v : voters_) v->zero_grad();
  scale_grad_.fill(0.0f);
}

Tensor SoftVotingHead::binary_class_vectors(std::size_t theta) const {
  UNIVSA_REQUIRE(theta < voters_.size(), "voter index out of range");
  return voters_[theta]->binary_weight();
}

}  // namespace univsa
