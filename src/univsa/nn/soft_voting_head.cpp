#include "univsa/nn/soft_voting_head.h"

#include <cmath>

#include "univsa/common/contracts.h"

namespace univsa {

SoftVotingHead::SoftVotingHead(std::size_t in_features, std::size_t classes,
                               std::size_t voters, Rng& rng, bool binarize)
    : classes_(classes), scale_({1}), scale_grad_({1}) {
  UNIVSA_REQUIRE(voters >= 1, "need at least one voter");
  voters_.reserve(voters);
  for (std::size_t t = 0; t < voters; ++t) {
    voters_.push_back(
        std::make_unique<BinaryLinear>(in_features, classes, rng, binarize));
  }
  // Binary similarities live in [-D, D]; start logits around ±4.
  scale_[0] = 4.0f / static_cast<float>(in_features);
}

Tensor SoftVotingHead::forward(const Tensor& s) {
  Tensor mean_sim;
  for (std::size_t t = 0; t < voters_.size(); ++t) {
    Tensor sim = voters_[t]->forward(s);
    if (t == 0) {
      mean_sim = std::move(sim);
    } else {
      mean_sim.add_(sim);
    }
  }
  mean_sim.mul_(1.0f / static_cast<float>(voters_.size()));
  cached_mean_sim_ = mean_sim;
  has_cache_ = true;
  return mean_sim.mul(std::fabs(scale_[0]));
}

Tensor SoftVotingHead::backward(const Tensor& grad_out) {
  UNIVSA_ENSURE(has_cache_, "SoftVotingHead::backward before forward");
  UNIVSA_REQUIRE(grad_out.shape() == cached_mean_sim_.shape(),
                 "SoftVotingHead grad shape mismatch");
  has_cache_ = false;

  // d|γ| = Σ grad_out ⊙ mean_sim; chain through |·| via sign(γ).
  const float scale_sign = scale_[0] >= 0.0f ? 1.0f : -1.0f;
  float dscale = 0.0f;
  const auto go = grad_out.flat();
  const auto ms = cached_mean_sim_.flat();
  for (std::size_t i = 0; i < go.size(); ++i) dscale += go[i] * ms[i];
  scale_grad_[0] += dscale * scale_sign;

  Tensor voter_grad = grad_out.mul(std::fabs(scale_[0]) /
                                   static_cast<float>(voters_.size()));
  Tensor grad_in;
  for (std::size_t t = 0; t < voters_.size(); ++t) {
    Tensor g = voters_[t]->backward(voter_grad);
    if (t == 0) {
      grad_in = std::move(g);
    } else {
      grad_in.add_(g);
    }
  }
  return grad_in;
}

ParamList SoftVotingHead::params() {
  ParamList list;
  for (auto& v : voters_) append_params(list, v->params());
  list.push_back({&scale_, &scale_grad_, false});
  return list;
}

void SoftVotingHead::zero_grad() {
  for (auto& v : voters_) v->zero_grad();
  scale_grad_.fill(0.0f);
}

Tensor SoftVotingHead::binary_class_vectors(std::size_t theta) const {
  UNIVSA_REQUIRE(theta < voters_.size(), "voter index out of range");
  return voters_[theta]->binary_weight();
}

}  // namespace univsa
