#include "univsa/nn/linear.h"

#include <cmath>

#include "univsa/common/contracts.h"

namespace univsa {

Linear::Linear(std::size_t in_features, std::size_t out_features, Rng& rng)
    : weight_(Tensor::randn({out_features, in_features}, rng,
                            1.0f / std::sqrt(static_cast<float>(
                                       in_features)))),
      bias_({out_features}),
      weight_grad_({out_features, in_features}),
      bias_grad_({out_features}) {}

Tensor Linear::forward(const Tensor& x) {
  Tensor out;
  forward_into(x, out);
  return out;
}

void Linear::forward_into(const Tensor& x, Tensor& out) {
  UNIVSA_REQUIRE(x.rank() == 2 && x.dim(1) == in_features(),
                 "Linear input shape mismatch");
  cached_input_ = x;
  has_cache_ = true;
  x.matmul_transposed_into(weight_, out);  // (B, out)
  for (std::size_t b = 0; b < out.dim(0); ++b) {
    for (std::size_t o = 0; o < out.dim(1); ++o) {
      out.at(b, o) += bias_[o];
    }
  }
}

Tensor Linear::backward(const Tensor& grad_out) {
  Tensor grad_in;
  backward_into(grad_out, grad_in);
  return grad_in;
}

void Linear::backward_into(const Tensor& grad_out, Tensor& grad_in) {
  UNIVSA_ENSURE(has_cache_, "Linear::backward before forward");
  UNIVSA_REQUIRE(grad_out.rank() == 2 &&
                     grad_out.dim(0) == cached_input_.dim(0) &&
                     grad_out.dim(1) == out_features(),
                 "Linear grad shape mismatch");
  has_cache_ = false;
  // dW += grad_outᵀ (B,out)ᵀ · x (B,in) -> (out, in), fused β = 1.
  grad_out.transposed_matmul_into(cached_input_, weight_grad_,
                                  /*accumulate=*/true);
  for (std::size_t b = 0; b < grad_out.dim(0); ++b) {
    for (std::size_t o = 0; o < grad_out.dim(1); ++o) {
      bias_grad_[o] += grad_out.at(b, o);
    }
  }
  // dx = grad_out (B,out) · W (out,in)
  grad_out.matmul_into(weight_, grad_in);
}

ParamList Linear::params() {
  return {{&weight_, &weight_grad_, false}, {&bias_, &bias_grad_, false}};
}

void Linear::zero_grad() {
  weight_grad_.fill(0.0f);
  bias_grad_.fill(0.0f);
}

}  // namespace univsa
