// Binary 2-D convolution (BiConv, Sec. III-A2).
//
// Weights (O, C, K, K) are latent floats binarized with sgn() in the
// forward pass (STE backward); the deployed model stores the binarized
// kernel set K. Stride 1, "same" zero padding — Eq. 5's W×L×O memory term
// for F implies the spatial size is preserved, and a zero input is neutral
// under bipolar accumulation, which is exactly the DVP padding semantics.
//
// Lowered to GEMM via im2col per sample; the im2col columns are cached for
// the backward pass.
#pragma once

#include "univsa/common/rng.h"
#include "univsa/nn/param.h"
#include "univsa/tensor/tensor.h"

namespace univsa {

class BinaryConv2d {
 public:
  BinaryConv2d(std::size_t in_channels, std::size_t out_channels,
               std::size_t kernel, Rng& rng, bool binarize = true);

  std::size_t in_channels() const { return in_channels_; }
  std::size_t out_channels() const { return out_channels_; }
  std::size_t kernel() const { return kernel_; }

  /// x: (B, C, H, W) -> (B, O, H, W).
  Tensor forward(const Tensor& x);
  Tensor backward(const Tensor& grad_out);

  /// Allocation-free variants: `out`/`grad_in` plus the internal im2col,
  /// effective-weight, and gradient scratch reuse their storage across
  /// calls. Forward is parallel over the batch (disjoint writes, so
  /// results are bit-identical for any thread count); backward stays
  /// serial because dW accumulates across samples in a fixed order.
  void forward_into(const Tensor& x, Tensor& out);
  void backward_into(const Tensor& grad_out, Tensor& grad_in);

  ParamList params();
  void zero_grad();

  /// Binarized kernels, flattened (O, C*K*K).
  Tensor binary_weight() const;
  const Tensor& latent_weight() const { return weight_; }

 private:
  /// Refreshes eff_w_ (sgn(W) or W) and returns it.
  const Tensor& effective_weight();

  std::size_t in_channels_;
  std::size_t out_channels_;
  std::size_t kernel_;
  Tensor weight_;  // (O, C*K*K) latent
  Tensor weight_grad_;
  Tensor cached_cols_;  // (B, C*K*K, H*W) im2col scratch from forward
  Tensor eff_w_;        // scratch: sgn(W) of the last forward/backward
  Tensor dw_;           // scratch: batch dW before the STE mask
  Tensor dcols_;        // scratch: (C*K*K, H*W) column gradient
  std::size_t cached_batch_ = 0;
  std::size_t cached_height_ = 0;
  std::size_t cached_width_ = 0;
  bool has_cache_ = false;
  bool binarize_;
};

}  // namespace univsa
