// Dense float layer: y = x · Wᵀ + b.
//
// Used inside the ValueBox MLP (Sec. II-C "Value Projection"), which stays
// in float during training; only its sign() outputs are tabulated into the
// deployed value vector set V.
#pragma once

#include "univsa/common/rng.h"
#include "univsa/nn/param.h"
#include "univsa/tensor/tensor.h"

namespace univsa {

class Linear {
 public:
  /// Kaiming-uniform-style init scaled by 1/sqrt(in_features).
  Linear(std::size_t in_features, std::size_t out_features, Rng& rng);

  std::size_t in_features() const { return weight_.dim(1); }
  std::size_t out_features() const { return weight_.dim(0); }

  /// x: (B, in) -> (B, out).
  Tensor forward(const Tensor& x);
  /// grad_out: (B, out) -> grad wrt x (B, in); accumulates weight grads.
  Tensor backward(const Tensor& grad_out);

  /// Allocation-free variants: `out`/`grad_in` reuse their storage across
  /// calls (stable shapes ⇒ no steady-state allocation).
  void forward_into(const Tensor& x, Tensor& out);
  void backward_into(const Tensor& grad_out, Tensor& grad_in);

  ParamList params();
  void zero_grad();

  const Tensor& weight() const { return weight_; }
  const Tensor& bias() const { return bias_; }

 private:
  Tensor weight_;  // (out, in)
  Tensor bias_;    // (out)
  Tensor weight_grad_;
  Tensor bias_grad_;
  Tensor cached_input_;
  bool has_cache_ = false;
};

}  // namespace univsa
