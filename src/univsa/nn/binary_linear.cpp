#include "univsa/nn/binary_linear.h"

#include <cmath>

#include "univsa/common/contracts.h"

namespace univsa {

BinaryLinear::BinaryLinear(std::size_t in_features, std::size_t out_features,
                           Rng& rng, bool binarize)
    // Latent weights start uniform-ish inside the STE window.
    : weight_(Tensor::randn({out_features, in_features}, rng, 0.25f)),
      weight_grad_({out_features, in_features}),
      binarize_(binarize) {}

const Tensor& BinaryLinear::effective_weight() {
  if (!binarize_) return weight_;
  sign_tensor_into(weight_, eff_w_);
  return eff_w_;
}

Tensor BinaryLinear::binary_weight() const { return sign_tensor(weight_); }

Tensor BinaryLinear::forward(const Tensor& x) {
  Tensor out;
  forward_into(x, out);
  return out;
}

void BinaryLinear::forward_into(const Tensor& x, Tensor& out) {
  UNIVSA_REQUIRE(x.rank() == 2 && x.dim(1) == in_features(),
                 "BinaryLinear input shape mismatch");
  cached_input_ = x;
  has_cache_ = true;
  x.matmul_transposed_into(effective_weight(), out);
}

Tensor BinaryLinear::backward(const Tensor& grad_out) {
  Tensor grad_in;
  backward_into(grad_out, grad_in);
  return grad_in;
}

void BinaryLinear::backward_into(const Tensor& grad_out, Tensor& grad_in) {
  UNIVSA_ENSURE(has_cache_, "BinaryLinear::backward before forward");
  UNIVSA_REQUIRE(grad_out.rank() == 2 &&
                     grad_out.dim(0) == cached_input_.dim(0) &&
                     grad_out.dim(1) == out_features(),
                 "BinaryLinear grad shape mismatch");
  has_cache_ = false;

  grad_out.transposed_matmul_into(cached_input_, dw_);  // (out, in)
  if (binarize_) {
    // STE: pass gradient only inside the clip window.
    const auto w = weight_.flat();
    auto g = dw_.flat();
    for (std::size_t i = 0; i < g.size(); ++i) {
      if (std::fabs(w[i]) > 1.0f) g[i] = 0.0f;
    }
  }
  weight_grad_.add_(dw_);
  grad_out.matmul_into(effective_weight(), grad_in);
}

ParamList BinaryLinear::params() {
  return {{&weight_, &weight_grad_, binarize_}};
}

void BinaryLinear::zero_grad() { weight_grad_.fill(0.0f); }

}  // namespace univsa
