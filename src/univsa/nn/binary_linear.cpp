#include "univsa/nn/binary_linear.h"

#include <cmath>

#include "univsa/common/contracts.h"

namespace univsa {

BinaryLinear::BinaryLinear(std::size_t in_features, std::size_t out_features,
                           Rng& rng, bool binarize)
    // Latent weights start uniform-ish inside the STE window.
    : weight_(Tensor::randn({out_features, in_features}, rng, 0.25f)),
      weight_grad_({out_features, in_features}),
      binarize_(binarize) {}

Tensor BinaryLinear::effective_weight() const {
  return binarize_ ? sign_tensor(weight_) : weight_;
}

Tensor BinaryLinear::binary_weight() const { return sign_tensor(weight_); }

Tensor BinaryLinear::forward(const Tensor& x) {
  UNIVSA_REQUIRE(x.rank() == 2 && x.dim(1) == in_features(),
                 "BinaryLinear input shape mismatch");
  cached_input_ = x;
  has_cache_ = true;
  return x.matmul_transposed(effective_weight());
}

Tensor BinaryLinear::backward(const Tensor& grad_out) {
  UNIVSA_ENSURE(has_cache_, "BinaryLinear::backward before forward");
  UNIVSA_REQUIRE(grad_out.rank() == 2 &&
                     grad_out.dim(0) == cached_input_.dim(0) &&
                     grad_out.dim(1) == out_features(),
                 "BinaryLinear grad shape mismatch");
  has_cache_ = false;

  Tensor dw = grad_out.transposed_matmul(cached_input_);  // (out, in)
  if (binarize_) {
    // STE: pass gradient only inside the clip window.
    const auto w = weight_.flat();
    auto g = dw.flat();
    for (std::size_t i = 0; i < g.size(); ++i) {
      if (std::fabs(w[i]) > 1.0f) g[i] = 0.0f;
    }
  }
  weight_grad_.add_(dw);
  return grad_out.matmul(effective_weight());
}

ParamList BinaryLinear::params() {
  return {{&weight_, &weight_grad_, binarize_}};
}

void BinaryLinear::zero_grad() { weight_grad_.fill(0.0f); }

}  // namespace univsa
