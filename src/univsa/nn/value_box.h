// ValueBox (Sec. II-C "Value Projection").
//
// A small float MLP mapping a scalar feature value to a D-dimensional
// bipolar vector:  v = sgn(MLP(x)).  Values are discrete (M quantization
// levels), so both training and deployment only ever evaluate the M level
// points: forward_table() produces the (M, D) table in one pass and the
// network gathers rows from it — the gradient scatters back through
// backward_table(). After training, the table's signs ARE the deployed
// value vector set V.
//
// DVP (Sec. III-A1) instantiates two of these: VB_H with dimension D_H and
// VB_L with the smaller D_L.
#pragma once

#include "univsa/common/rng.h"
#include "univsa/nn/activations.h"
#include "univsa/nn/linear.h"
#include "univsa/nn/param.h"

namespace univsa {

class ValueBox {
 public:
  /// `levels` = M quantization levels; `dim` = output vector dimension.
  ValueBox(std::size_t levels, std::size_t dim, Rng& rng,
           std::size_t hidden = 16);

  std::size_t levels() const { return levels_; }
  std::size_t dim() const { return dim_; }

  /// Bipolar table (M, D): row m = sgn(MLP(norm(m))). Caches activations.
  Tensor forward_table();

  /// Allocation-free variant: the returned reference points at internal
  /// scratch valid until the next forward_table call.
  const Tensor& forward_table_cached();

  /// Accumulates parameter grads from the table gradient (M, D).
  void backward_table(const Tensor& grad_table);

  ParamList params();
  void zero_grad();

 private:
  std::size_t levels_;
  std::size_t dim_;
  Linear fc1_;
  Tanh act_;
  Linear fc2_;
  SignSte sign_;
  // Persistent forward/backward scratch (allocation-free steady state).
  Tensor grid_;
  Tensor h1_;
  Tensor h2_;
  Tensor h3_;
  Tensor table_;
  Tensor g1_;
  Tensor g2_;
  Tensor g3_;
  Tensor g4_;
};

}  // namespace univsa
