// Soft-voting similarity head (Sec. III-A4, Eq. 4).
//
// Θ parallel binary dense layers share the input sample vector s; their
// similarity outputs are averaged:
//   logits[b, c] = |γ| · (1/Θ) Σ_θ Σ_j sgn(Cθ)[c, j] · s[b, j]
// γ is a learnable temperature that scales the bounded binary
// similarities into a useful softmax range during training. The forward
// pass uses |γ| — the deployed model (Eq. 4) computes raw integer
// popcount sums with no scale, so a sign flip of γ during training would
// silently invert every deployed prediction (observed in bring-up on the
// EEGMMI configuration). With the magnitude form, neither γ nor the 1/Θ
// average changes the argmax — verified by property test.
#pragma once

#include <memory>
#include <vector>

#include "univsa/common/rng.h"
#include "univsa/nn/binary_linear.h"
#include "univsa/nn/param.h"

namespace univsa {

class SoftVotingHead {
 public:
  SoftVotingHead(std::size_t in_features, std::size_t classes,
                 std::size_t voters, Rng& rng, bool binarize = true);

  std::size_t voters() const { return voters_.size(); }
  std::size_t classes() const { return classes_; }

  /// s: (B, D) -> logits (B, C).
  Tensor forward(const Tensor& s);
  Tensor backward(const Tensor& grad_out);

  /// Allocation-free variants (voter scratch + outputs reuse storage).
  void forward_into(const Tensor& s, Tensor& out);
  void backward_into(const Tensor& grad_out, Tensor& grad_in);

  ParamList params();
  void zero_grad();

  /// Binarized class vectors of voter θ, shape (C, D).
  Tensor binary_class_vectors(std::size_t theta) const;

 private:
  std::size_t classes_;
  std::vector<std::unique_ptr<BinaryLinear>> voters_;
  Tensor scale_;  // γ, learnable scalar
  Tensor scale_grad_;
  Tensor cached_mean_sim_;  // (B, C) pre-scale, for dγ
  Tensor voter_out_;        // scratch: one voter's similarities / grad_in
  Tensor voter_grad_;       // scratch: scaled upstream gradient
  bool has_cache_ = false;
};

}  // namespace univsa
