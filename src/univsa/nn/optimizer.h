// Optimizers over Param lists.
//
// Adam is the workhorse for the partial-BNN training (binary layers train
// poorly with plain SGD at these tiny scales). After each step, latent
// binary weights (Param::clip_latent) are clipped to [-1, 1] so the STE
// window keeps covering them.
#pragma once

#include <vector>

#include "univsa/nn/param.h"

namespace univsa {

class Adam {
 public:
  explicit Adam(ParamList params, float lr = 0.01f, float beta1 = 0.9f,
                float beta2 = 0.999f, float eps = 1e-8f);

  void step();
  void zero_grad();
  void set_lr(float lr) { lr_ = lr; }
  float lr() const { return lr_; }

 private:
  ParamList params_;
  std::vector<Tensor> m_;
  std::vector<Tensor> v_;
  float lr_;
  float beta1_;
  float beta2_;
  float eps_;
  long step_count_ = 0;
};

class Sgd {
 public:
  explicit Sgd(ParamList params, float lr = 0.1f, float momentum = 0.9f);

  void step();
  void zero_grad();
  void set_lr(float lr) { lr_ = lr; }

 private:
  ParamList params_;
  std::vector<Tensor> velocity_;
  float lr_;
  float momentum_;
};

}  // namespace univsa
