#include "univsa/nn/loss.h"

#include <algorithm>
#include <cmath>

#include "univsa/common/contracts.h"

namespace univsa {

LossResult softmax_cross_entropy(const Tensor& logits,
                                 const std::vector<int>& labels) {
  LossResult result;
  softmax_cross_entropy_into(logits, labels, result);
  return result;
}

void softmax_cross_entropy_into(const Tensor& logits,
                                const std::vector<int>& labels,
                                LossResult& result) {
  UNIVSA_REQUIRE(logits.rank() == 2, "logits must be (B, C)");
  const std::size_t batch = logits.dim(0);
  const std::size_t classes = logits.dim(1);
  UNIVSA_REQUIRE(labels.size() == batch, "label count mismatch");

  result.grad_logits.ensure_shape({batch, classes});
  result.correct = 0;
  double total = 0.0;

  for (std::size_t b = 0; b < batch; ++b) {
    const int label = labels[b];
    UNIVSA_REQUIRE(label >= 0 && static_cast<std::size_t>(label) < classes,
                   "label out of range");
    // Numerically stable log-softmax.
    float max_logit = logits.at(b, 0);
    std::size_t argmax = 0;
    for (std::size_t c = 1; c < classes; ++c) {
      if (logits.at(b, c) > max_logit) {
        max_logit = logits.at(b, c);
        argmax = c;
      }
    }
    if (argmax == static_cast<std::size_t>(label)) ++result.correct;

    double sum_exp = 0.0;
    for (std::size_t c = 0; c < classes; ++c) {
      sum_exp += std::exp(static_cast<double>(logits.at(b, c) - max_logit));
    }
    const double log_sum = std::log(sum_exp);
    total += log_sum - (logits.at(b, label) - max_logit);

    const float inv_batch = 1.0f / static_cast<float>(batch);
    for (std::size_t c = 0; c < classes; ++c) {
      const double p =
          std::exp(static_cast<double>(logits.at(b, c) - max_logit)) /
          sum_exp;
      result.grad_logits.at(b, c) =
          (static_cast<float>(p) -
           (c == static_cast<std::size_t>(label) ? 1.0f : 0.0f)) *
          inv_batch;
    }
  }

  result.loss = static_cast<float>(total / static_cast<double>(batch));
}

}  // namespace univsa
