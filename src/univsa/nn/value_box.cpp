#include "univsa/nn/value_box.h"

#include "univsa/common/contracts.h"

namespace univsa {

ValueBox::ValueBox(std::size_t levels, std::size_t dim, Rng& rng,
                   std::size_t hidden)
    : levels_(levels),
      dim_(dim),
      fc1_(1, hidden, rng),
      fc2_(hidden, dim, rng) {
  UNIVSA_REQUIRE(levels >= 2, "ValueBox needs at least 2 levels");
  UNIVSA_REQUIRE(dim >= 1, "ValueBox dim must be positive");
}

Tensor ValueBox::forward_table() { return forward_table_cached(); }

const Tensor& ValueBox::forward_table_cached() {
  // Level m normalized to [-1, 1] — the MLP input grid.
  grid_.ensure_shape({levels_, 1});
  for (std::size_t m = 0; m < levels_; ++m) {
    grid_.at(m, 0) =
        2.0f * static_cast<float>(m) / static_cast<float>(levels_ - 1) - 1.0f;
  }
  fc1_.forward_into(grid_, h1_);
  act_.forward_into(h1_, h2_);
  fc2_.forward_into(h2_, h3_);
  sign_.forward_into(h3_, table_);
  return table_;
}

void ValueBox::backward_table(const Tensor& grad_table) {
  UNIVSA_REQUIRE(grad_table.rank() == 2 && grad_table.dim(0) == levels_ &&
                     grad_table.dim(1) == dim_,
                 "ValueBox grad table shape mismatch");
  sign_.backward_into(grad_table, g1_);
  fc2_.backward_into(g1_, g2_);
  act_.backward_into(g2_, g3_);
  fc1_.backward_into(g3_, g4_);
}

ParamList ValueBox::params() {
  ParamList list = fc1_.params();
  append_params(list, fc2_.params());
  return list;
}

void ValueBox::zero_grad() {
  fc1_.zero_grad();
  fc2_.zero_grad();
}

}  // namespace univsa
