#include "univsa/nn/value_box.h"

#include "univsa/common/contracts.h"

namespace univsa {

ValueBox::ValueBox(std::size_t levels, std::size_t dim, Rng& rng,
                   std::size_t hidden)
    : levels_(levels),
      dim_(dim),
      fc1_(1, hidden, rng),
      fc2_(hidden, dim, rng) {
  UNIVSA_REQUIRE(levels >= 2, "ValueBox needs at least 2 levels");
  UNIVSA_REQUIRE(dim >= 1, "ValueBox dim must be positive");
}

Tensor ValueBox::forward_table() {
  // Level m normalized to [-1, 1] — the MLP input grid.
  Tensor levels({levels_, 1});
  for (std::size_t m = 0; m < levels_; ++m) {
    levels.at(m, 0) =
        2.0f * static_cast<float>(m) / static_cast<float>(levels_ - 1) - 1.0f;
  }
  Tensor h = act_.forward(fc1_.forward(levels));
  return sign_.forward(fc2_.forward(h));
}

void ValueBox::backward_table(const Tensor& grad_table) {
  UNIVSA_REQUIRE(grad_table.rank() == 2 && grad_table.dim(0) == levels_ &&
                     grad_table.dim(1) == dim_,
                 "ValueBox grad table shape mismatch");
  Tensor g = sign_.backward(grad_table);
  g = fc2_.backward(g);
  g = act_.backward(g);
  fc1_.backward(g);
}

ParamList ValueBox::params() {
  ParamList list = fc1_.params();
  append_params(list, fc2_.params());
  return list;
}

void ValueBox::zero_grad() {
  fc1_.zero_grad();
  fc2_.zero_grad();
}

}  // namespace univsa
