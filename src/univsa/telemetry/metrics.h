// Lock-free metrics primitives + the global string-keyed registry.
//
// Hot-path contract: once a handle (Counter&, Gauge&, LatencyHistogram&)
// has been resolved — registration takes the registry mutex exactly once
// per name — every subsequent add/set/record is a relaxed atomic on a
// per-thread shard and never takes a lock. Shards are merged on scrape
// (snapshot()), so scrapes see exact totals without stalling writers.
//
// Units convention: histograms record raw std::uint64_t "units"; names
// carry the unit as a suffix ("_ns", "_us", "_cycles", plain counts).
// DESIGN.md §9 documents the sharding/merge design.
//
// Compile-time kill switch: building with -DUNIVSA_TELEMETRY_OFF (the
// CMake option UNIVSA_TELEMETRY=OFF) turns the convenience accessors
// below into dummy-object returns and the UNIVSA_SPAN macro into a
// no-op, so instrumented code compiles away to nothing and the registry
// stays empty. The class definitions always exist — per-instance stats
// (e.g. runtime::ServerStats) keep working either way.
#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace univsa::telemetry {

/// True when this translation unit sees telemetry compiled in.
/// Internal linkage on purpose: a TU built with -DUNIVSA_TELEMETRY_OFF
/// (or the whole build, via the UNIVSA_TELEMETRY=OFF CMake option) gets
/// its own `false` without violating the one-definition rule.
#if defined(UNIVSA_TELEMETRY_OFF)
constexpr bool kCompiledIn = false;
#else
constexpr bool kCompiledIn = true;
#endif

/// One steady monotonic clock path for everything that times: spans,
/// server latency, bench loops. Nanoseconds since an arbitrary epoch.
std::uint64_t now_ns();

/// Runtime enable flag (relaxed atomic). Initialized once from the
/// UNIVSA_TELEMETRY environment variable ("0"/"off"/"OFF" disable);
/// defaults to on. Compiled-off builds always report false.
bool enabled();
void set_enabled(bool on);

/// Small dense per-thread shard id (sequential, assigned on first use).
std::size_t thread_index();

/// Monotonically increasing event counter, sharded per thread.
/// Exact under any concurrency: shards never lose increments and
/// total() sums them all.
class Counter {
 public:
  static constexpr std::size_t kShards = 16;

  void add(std::uint64_t delta = 1) noexcept {
    shards_[thread_index() & (kShards - 1)].value.fetch_add(
        delta, std::memory_order_relaxed);
  }
  std::uint64_t total() const noexcept {
    std::uint64_t sum = 0;
    for (const auto& s : shards_) {
      sum += s.value.load(std::memory_order_relaxed);
    }
    return sum;
  }
  void reset() noexcept {
    for (auto& s : shards_) s.value.store(0, std::memory_order_relaxed);
  }

 private:
  struct alignas(64) Shard {
    std::atomic<std::uint64_t> value{0};
  };
  std::array<Shard, kShards> shards_{};
};

/// Last-writer-wins double value (set/add from any thread).
class Gauge {
 public:
  void set(double v) noexcept {
    value_.store(v, std::memory_order_relaxed);
  }
  void add(double delta) noexcept {
    double cur = value_.load(std::memory_order_relaxed);
    while (!value_.compare_exchange_weak(cur, cur + delta,
                                         std::memory_order_relaxed)) {
    }
  }
  double value() const noexcept {
    return value_.load(std::memory_order_relaxed);
  }

 private:
  std::atomic<double> value_{0.0};
};

/// Merged view of one histogram at scrape time.
struct HistogramSnapshot {
  std::string name;
  std::uint64_t count = 0;
  std::uint64_t min = 0;  ///< smallest recorded value (0 when empty)
  std::uint64_t max = 0;
  double sum = 0.0;  ///< exact sum of recorded values

  /// Non-empty buckets, ascending. `upper` is the bucket's inclusive
  /// upper bound; `count` the raw (non-cumulative) occupancy.
  struct Bucket {
    std::uint64_t upper = 0;
    std::uint64_t count = 0;
  };
  std::vector<Bucket> buckets;

  double mean() const {
    return count == 0 ? 0.0 : sum / static_cast<double>(count);
  }
  /// Quantile in [0, 1], resolved to the containing bucket's upper
  /// bound (HDR-style ≤6.25% relative error at 3 sub-bucket bits).
  std::uint64_t percentile(double q) const;
};

/// Fixed-size log-bucketed (HDR-style) histogram of std::uint64_t
/// values: 8 linear sub-buckets per power of two, covering the full
/// 64-bit range in 496 buckets with ≤12.5% bucket width. Per-thread
/// sharded; record() is a handful of relaxed atomics, no locks.
class LatencyHistogram {
 public:
  static constexpr int kSubBits = 3;  ///< 2^3 sub-buckets per octave
  static constexpr std::size_t kBuckets =
      ((64 - kSubBits) << kSubBits) + (1u << kSubBits);  // 496
  static constexpr std::size_t kShards = 8;

  /// Bucket index for a value; exact for values < 2^kSubBits.
  static std::size_t bucket_of(std::uint64_t v) noexcept;
  /// Smallest value mapping to bucket `b`.
  static std::uint64_t bucket_floor(std::size_t b) noexcept;
  /// Largest value mapping to bucket `b` (inclusive).
  static std::uint64_t bucket_ceil(std::size_t b) noexcept;

  void record(std::uint64_t value) noexcept;
  HistogramSnapshot snapshot() const;  ///< name left empty
  void reset() noexcept;

 private:
  struct alignas(64) Shard {
    std::array<std::atomic<std::uint64_t>, kBuckets> buckets{};
    std::atomic<std::uint64_t> count{0};
    std::atomic<std::uint64_t> sum{0};
    std::atomic<std::uint64_t> min{~0ull};
    std::atomic<std::uint64_t> max{0};
  };
  std::array<Shard, kShards> shards_{};
};

class MetricsRegistry {
 public:
  static MetricsRegistry& instance();

  /// Resolve-or-register. Returned references are stable for the
  /// process lifetime (including across clear(); see below). Callers on
  /// hot paths resolve once and cache the reference.
  Counter& counter(std::string_view name);
  Gauge& gauge(std::string_view name);
  LatencyHistogram& histogram(std::string_view name);

  std::size_t size() const;  ///< registered metrics across all types

  /// Test-only: zeroes every metric and forgets the names. Previously
  /// returned references stay valid (objects are pooled, not freed) but
  /// re-registering the same name yields a fresh object.
  void clear();

  struct Entry {
    std::string name;
    enum class Kind { kCounter, kGauge, kHistogram } kind;
    const void* metric;
  };
  /// Name-sorted view of everything registered (for snapshot()).
  std::vector<Entry> entries() const;

 private:
  MetricsRegistry() = default;
  struct Impl;
  Impl& impl() const;
};

// --- Convenience accessors (the instrumented-code entry points) --------
//
// `static` (internal linkage) so a TU compiled with UNIVSA_TELEMETRY_OFF
// can legally see the dummy versions while the rest of the build sees
// the registry-backed ones.

#if defined(UNIVSA_TELEMETRY_OFF)
[[maybe_unused]] static Counter& counter(std::string_view) {
  static Counter dummy;
  return dummy;
}
[[maybe_unused]] static Gauge& gauge(std::string_view) {
  static Gauge dummy;
  return dummy;
}
[[maybe_unused]] static LatencyHistogram& histogram(std::string_view) {
  static LatencyHistogram dummy;
  return dummy;
}
#else
[[maybe_unused]] static Counter& counter(std::string_view name) {
  return MetricsRegistry::instance().counter(name);
}
[[maybe_unused]] static Gauge& gauge(std::string_view name) {
  return MetricsRegistry::instance().gauge(name);
}
[[maybe_unused]] static LatencyHistogram& histogram(std::string_view name) {
  return MetricsRegistry::instance().histogram(name);
}
#endif

/// Builds a labeled metric name, `base{key=value}`. The first '{' in a
/// registered name opens the label block and the value runs to the final
/// '}', so `value` may be ANY user-supplied string (tenant names): the
/// exporters escape/validate it at emit time, never here. `key` must be
/// a bare [A-Za-z_][A-Za-z0-9_]* identifier.
[[maybe_unused]] static std::string labeled(std::string_view base,
                                            std::string_view key,
                                            std::string_view value) {
  std::string name;
  name.reserve(base.size() + key.size() + value.size() + 3);
  name.append(base);
  name += '{';
  name.append(key);
  name += '=';
  name.append(value);
  name += '}';
  return name;
}

/// Sampling tick for per-sample instrumentation on hot loops: true on
/// every `every`-th call from this thread while telemetry is enabled.
/// Compiled-off builds fold to false (dead branch).
[[maybe_unused]] static bool sample_tick(std::uint32_t every) noexcept {
  if constexpr (!kCompiledIn) return false;
  thread_local std::uint32_t tick = 0;
  return (++tick % every) == 0 && enabled();
}

}  // namespace univsa::telemetry
