// Declarative SLOs evaluated by multi-window burn-rate rules over the
// metrics the runtime already exports.
//
// An objective is either:
//   - latency: "quantile q of <histogram> stays <= target_ns", measured
//     structurally as the fraction of observations in log buckets at or
//     below the threshold (no quantile estimation on the alert path);
//   - availability: "good / (good + bad) stays >= target" over two
//     counters (e.g. completed vs deadline-rejected requests).
//
// evaluate() snapshots each objective's cumulative good/bad totals,
// derives error rates over a fast and a slow trailing window of
// samples, and converts them to burn rates (error rate divided by the
// objective's error budget 1 - target). A breach fires only when BOTH
// windows burn above their thresholds — the standard multi-window rule
// that rejects blips (fast-only) and stale averages (slow-only). Each
// breach edge bumps slo.breaches_total and records a flight-recorder
// event; per-objective burn/compliance/budget land in labeled slo.*
// gauges for scrapes and the `univsa_cli top` dashboard.
//
// The engine registers nothing and evaluates to quiet zeros while
// telemetry is disabled, and folds away under -DUNIVSA_TELEMETRY=OFF.
#pragma once

#include <cstdint>
#include <deque>
#include <string>
#include <vector>

namespace univsa::telemetry {

class Gauge;

struct SloObjective {
  std::string name;          ///< label value for slo.* metrics
  /// Latency form: non-empty histogram name + threshold.
  std::string histogram;
  double quantile = 0.99;    ///< objective statement only (reporting)
  std::uint64_t target_ns = 0;
  /// Availability form: counter names (used when `histogram` empty).
  std::string good_counter;
  std::string bad_counter;
  double target = 0.999;     ///< required good fraction, in (0, 1)
};

struct SloStatus {
  std::string name;
  double fast_burn = 0.0;        ///< fast-window error rate / budget
  double slow_burn = 0.0;
  double compliance = 1.0;       ///< lifetime good fraction
  double budget_remaining = 1.0; ///< lifetime error budget left, [0, 1]
  bool breached = false;         ///< both windows above threshold
  std::uint64_t good = 0;        ///< cumulative totals at this sample
  std::uint64_t bad = 0;
};

class SloEngine {
 public:
  struct Options {
    std::size_t fast_window = 6;   ///< samples (ticks) per window
    std::size_t slow_window = 36;
    /// Burn thresholds; defaults follow the common 1h/6h paging rule
    /// scaled to tick windows.
    double fast_burn_threshold = 14.4;
    double slow_burn_threshold = 6.0;
  };

  explicit SloEngine(std::vector<SloObjective> objectives);
  SloEngine(std::vector<SloObjective> objectives, Options options);

  /// One evaluation tick: sample every objective, update slo.* metrics,
  /// record flight events on breach edges, return current statuses.
  std::vector<SloStatus> evaluate();

  const std::vector<SloObjective>& objectives() const;

 private:
  struct State {
    /// Trailing cumulative (good, bad) samples, newest last.
    std::deque<std::pair<std::uint64_t, std::uint64_t>> samples;
    bool breached = false;  ///< previous verdict (edge detection)
    Gauge* fast_burn = nullptr;
    Gauge* slow_burn = nullptr;
    Gauge* compliance = nullptr;
    Gauge* budget = nullptr;
  };

  Options options_;
  std::vector<SloObjective> objectives_;
  std::vector<State> states_;  ///< parallel to objectives_
};

/// The serving-runtime objectives `univsa_cli top` and faultcheck
/// evaluate: p99 latency of runtime.server.latency_ns and availability
/// of completed vs deadline-rejected requests.
std::vector<SloObjective> default_server_slos();

}  // namespace univsa::telemetry
