#include "univsa/telemetry/exporters.h"

#include <cctype>
#include <cstdio>
#include <fstream>
#include <set>
#include <sstream>
#include <string_view>

#include "univsa/report/provenance.h"

namespace univsa::telemetry {

namespace {

std::string sanitize(std::string_view name) {
  std::string out;
  out.reserve(name.size());
  for (const char c : name) {
    out.push_back(std::isalnum(static_cast<unsigned char>(c)) != 0
                      ? c
                      : '_');
  }
  return out;
}

/// Prometheus label-value escaping: backslash, double-quote and
/// line-feed are the three characters the text exposition format
/// escapes inside a quoted label value. Everything else (including
/// '{', '}', '=' and arbitrary UTF-8) passes through verbatim —
/// quoting makes it safe.
std::string label_escape(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    switch (c) {
      case '\\': out += "\\\\"; break;
      case '"': out += "\\\""; break;
      case '\n': out += "\\n"; break;
      default: out.push_back(c);
    }
  }
  return out;
}

/// A registry name split into a sanitized metric family and a rendered
/// label block. telemetry::labeled() stores `base{key=value}` with the
/// value RAW (metrics.h contract: exporters escape at emit, never at
/// registration), so the value may itself contain '{', '}', '=',
/// quotes or newlines: the block opens at the FIRST '{' and the value
/// runs to the FINAL '}'. Names without a well-formed block are
/// treated as plain (fully sanitized) names.
struct ParsedName {
  std::string family;  // sanitized, no "univsa_" prefix yet
  std::string labels;  // `key="escaped"` or empty
};

ParsedName parse_labels(std::string_view name) {
  ParsedName out;
  const std::size_t open = name.find('{');
  const std::size_t close = name.rfind('}');
  if (open == std::string_view::npos || close == std::string_view::npos ||
      close <= open + 1) {
    out.family = sanitize(name);
    return out;
  }
  const std::string_view block = name.substr(open + 1, close - open - 1);
  const std::size_t eq = block.find('=');
  if (eq == std::string_view::npos || eq == 0) {
    out.family = sanitize(name);
    return out;
  }
  out.family = sanitize(name.substr(0, open));
  out.labels = sanitize(block.substr(0, eq));
  out.labels += "=\"";
  out.labels += label_escape(block.substr(eq + 1));
  out.labels += '"';
  return out;
}

std::string json_escape(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    if (c == '"' || c == '\\') {
      out.push_back('\\');
      out.push_back(c);
    } else if (static_cast<unsigned char>(c) < 0x20) {
      char buf[8];
      std::snprintf(buf, sizeof(buf), "\\u%04x", c);
      out += buf;
    } else {
      out.push_back(c);
    }
  }
  return out;
}

// Doubles rendered compactly but round-trippably enough for reports.
std::string fmt_double(double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.6g", v);
  return buf;
}

}  // namespace

Snapshot snapshot(std::size_t max_spans) {
  Snapshot out;
  for (const auto& entry : MetricsRegistry::instance().entries()) {
    switch (entry.kind) {
      case MetricsRegistry::Entry::Kind::kCounter:
        out.counters.emplace_back(
            entry.name,
            static_cast<const Counter*>(entry.metric)->total());
        break;
      case MetricsRegistry::Entry::Kind::kGauge:
        out.gauges.emplace_back(
            entry.name,
            static_cast<const Gauge*>(entry.metric)->value());
        break;
      case MetricsRegistry::Entry::Kind::kHistogram: {
        HistogramSnapshot h =
            static_cast<const LatencyHistogram*>(entry.metric)
                ->snapshot();
        h.name = entry.name;
        out.histograms.push_back(std::move(h));
        break;
      }
    }
  }
  if (max_spans > 0) out.recent_spans = trace_recent(max_spans);
  out.spans_pushed = trace_pushed();
  out.build = build_info();
  return out;
}

std::string to_prometheus(const Snapshot& snapshot) {
  std::ostringstream os;
  os << "# TYPE univsa_build_info gauge\n"
     << "univsa_build_info{git_sha=\"" << snapshot.build.git_sha
     << "\",compiler=\"" << snapshot.build.compiler << "\",build_type=\""
     << snapshot.build.build_type << "\",flags=\"" << snapshot.build.flags
     << "\",simd_isa=\"" << snapshot.build.simd_isa << "\",pool_threads=\""
     << snapshot.build.threads << "\"} 1\n";
  // Labeled metrics (telemetry::labeled) share one family across many
  // label values; emit each family's # TYPE line once.
  std::set<std::string> typed;
  for (const auto& [name, value] : snapshot.counters) {
    const ParsedName pn = parse_labels(name);
    std::string n = "univsa_" + pn.family;
    // Prometheus counters end in exactly one `_total`; registry names
    // that already carry the suffix (runtime.server.shed_total, ...) are
    // exported as-is rather than doubled.
    const std::string suffix = "_total";
    const bool has_suffix =
        n.size() >= suffix.size() &&
        n.compare(n.size() - suffix.size(), suffix.size(), suffix) == 0;
    if (typed.insert(n).second) os << "# TYPE " << n << " counter\n";
    os << n << (has_suffix ? "" : "_total");
    if (!pn.labels.empty()) os << "{" << pn.labels << "}";
    os << " " << value << "\n";
  }
  for (const auto& [name, value] : snapshot.gauges) {
    const ParsedName pn = parse_labels(name);
    const std::string n = "univsa_" + pn.family;
    if (typed.insert(n).second) os << "# TYPE " << n << " gauge\n";
    os << n;
    if (!pn.labels.empty()) os << "{" << pn.labels << "}";
    os << " " << fmt_double(value) << "\n";
  }
  for (const HistogramSnapshot& h : snapshot.histograms) {
    const ParsedName pn = parse_labels(h.name);
    const std::string n = "univsa_" + pn.family;
    // The `le` label joins any tenant label inside one brace block.
    const std::string le_prefix =
        pn.labels.empty() ? "{le=\"" : "{" + pn.labels + ",le=\"";
    const std::string tail =
        pn.labels.empty() ? "" : "{" + pn.labels + "}";
    if (typed.insert(n).second) os << "# TYPE " << n << " histogram\n";
    std::uint64_t cumulative = 0;
    for (const auto& bucket : h.buckets) {
      cumulative += bucket.count;
      os << n << "_bucket" << le_prefix << bucket.upper << "\"} "
         << cumulative << "\n";
    }
    os << n << "_bucket" << le_prefix << "+Inf\"} " << h.count << "\n"
       << n << "_sum" << tail << " " << fmt_double(h.sum) << "\n"
       << n << "_count" << tail << " " << h.count << "\n";
  }
  return os.str();
}

std::string to_json(const Snapshot& snapshot) {
  std::ostringstream os;
  os << "{\n" << report::provenance_json_fields(snapshot.build);

  os << "  \"counters\": {";
  for (std::size_t i = 0; i < snapshot.counters.size(); ++i) {
    os << (i ? ", " : "") << "\"" << json_escape(snapshot.counters[i].first)
       << "\": " << snapshot.counters[i].second;
  }
  os << "},\n";

  os << "  \"gauges\": {";
  for (std::size_t i = 0; i < snapshot.gauges.size(); ++i) {
    os << (i ? ", " : "") << "\"" << json_escape(snapshot.gauges[i].first)
       << "\": " << fmt_double(snapshot.gauges[i].second);
  }
  os << "},\n";

  os << "  \"histograms\": {";
  for (std::size_t i = 0; i < snapshot.histograms.size(); ++i) {
    const HistogramSnapshot& h = snapshot.histograms[i];
    os << (i ? ",\n    " : "\n    ") << "\"" << json_escape(h.name)
       << "\": {\"count\": " << h.count << ", \"sum\": "
       << fmt_double(h.sum) << ", \"min\": " << h.min << ", \"max\": "
       << h.max << ", \"mean\": " << fmt_double(h.mean())
       << ", \"p50\": " << h.percentile(0.50) << ", \"p90\": "
       << h.percentile(0.90) << ", \"p95\": " << h.percentile(0.95)
       << ", \"p99\": " << h.percentile(0.99) << ", \"buckets\": [";
    for (std::size_t b = 0; b < h.buckets.size(); ++b) {
      os << (b ? ", " : "") << "[" << h.buckets[b].upper << ", "
         << h.buckets[b].count << "]";
    }
    os << "]}";
  }
  os << (snapshot.histograms.empty() ? "},\n" : "\n  },\n");

  os << "  \"spans_pushed\": " << snapshot.spans_pushed << ",\n";
  os << "  \"spans\": [";
  for (std::size_t i = 0; i < snapshot.recent_spans.size(); ++i) {
    const TraceEvent& e = snapshot.recent_spans[i];
    os << (i ? ",\n    " : "\n    ") << "{\"name\": \""
       << json_escape(e.name.data()) << "\", \"start_ns\": " << e.start_ns
       << ", \"duration_ns\": " << e.duration_ns << ", \"detail\": "
       << e.detail << ", \"thread\": " << e.thread << ", \"depth\": "
       << e.depth << "}";
  }
  os << (snapshot.recent_spans.empty() ? "]\n" : "\n  ]\n") << "}\n";
  return os.str();
}

bool write_json_file(const std::string& path, std::size_t max_spans) {
  std::ofstream out(path);
  if (!out) return false;
  out << to_json(snapshot(max_spans));
  return static_cast<bool>(out);
}

std::string export_trace_json(const std::vector<TraceEvent>& events) {
  // Chrome trace-event format: an array of complete ("ph":"X") events
  // with microsecond timestamps. chrome://tracing and the Perfetto UI
  // lay spans out per tid; the trace/span/parent ids ride in args so
  // a sampled request's tree reconstructs exactly.
  std::ostringstream os;
  os << "{\n\"displayTimeUnit\": \"ns\",\n\"traceEvents\": [\n";
  for (std::size_t i = 0; i < events.size(); ++i) {
    const TraceEvent& e = events[i];
    char ts[64];
    std::snprintf(ts, sizeof(ts), "%.3f",
                  static_cast<double>(e.start_ns) / 1000.0);
    char dur[64];
    std::snprintf(dur, sizeof(dur), "%.3f",
                  static_cast<double>(e.duration_ns) / 1000.0);
    os << (i ? ",\n" : "") << "{\"name\": \"" << json_escape(e.name.data())
       << "\", \"cat\": \"univsa\", \"ph\": \"X\", \"pid\": 1, \"tid\": "
       << e.thread << ", \"ts\": " << ts << ", \"dur\": " << dur
       << ", \"args\": {\"trace_id\": " << e.trace_id << ", \"span_id\": "
       << e.span_id << ", \"parent_span\": " << e.parent_span
       << ", \"detail\": " << e.detail << ", \"depth\": " << e.depth
       << "}}";
  }
  os << "\n]}\n";
  return os.str();
}

bool write_trace_json_file(const std::string& path,
                           std::size_t max_events) {
  std::ofstream out(path);
  if (!out) return false;
  out << export_trace_json(trace_recent(max_events));
  return static_cast<bool>(out);
}

}  // namespace univsa::telemetry
