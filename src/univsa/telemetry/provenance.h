// Build/run provenance — the metadata stamped into every
// telemetry::snapshot() and BENCH_*.json record so perf numbers can be
// traced back to the exact build that produced them.
//
// Git SHA / build type / flags are baked in at configure time (CMake
// passes them as compile definitions to provenance.cpp only, so a new
// commit recompiles one file). Thread count is sampled at call time.
#pragma once

#include <cstddef>
#include <string>

namespace univsa::telemetry {

struct BuildInfo {
  std::string git_sha;     ///< short SHA at configure time ("unknown" outside git)
  std::string compiler;    ///< compiler id + version
  std::string build_type;  ///< CMAKE_BUILD_TYPE
  std::string flags;       ///< distinguishing build options (sanitizer, native arch)
  std::string simd_isa;    ///< active SIMD dispatch table (simd::active_isa)
  std::size_t threads = 0; ///< global pool width at call time
  bool telemetry_compiled_in = true;
};

/// Current process provenance (thread count sampled per call). JSON
/// emission lives in report/provenance.h — the shared helper every
/// BENCH_*.json writer, the snapshot exporter, and the flight recorder
/// use.
BuildInfo build_info();

}  // namespace univsa::telemetry
