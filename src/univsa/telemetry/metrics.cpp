#include "univsa/telemetry/metrics.h"

#include <bit>
#include <chrono>
#include <cstdlib>
#include <cstring>
#include <map>
#include <memory>
#include <mutex>

namespace univsa::telemetry {

std::uint64_t now_ns() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

namespace {

bool env_enabled() {
  const char* v = std::getenv("UNIVSA_TELEMETRY");
  if (v == nullptr) return true;
  return !(std::strcmp(v, "0") == 0 || std::strcmp(v, "off") == 0 ||
           std::strcmp(v, "OFF") == 0);
}

std::atomic<bool>& enabled_flag() {
  static std::atomic<bool> flag{env_enabled()};
  return flag;
}

}  // namespace

bool enabled() {
  if constexpr (!kCompiledIn) return false;
  return enabled_flag().load(std::memory_order_relaxed);
}

void set_enabled(bool on) { enabled_flag().store(on, std::memory_order_relaxed); }

std::size_t thread_index() {
  static std::atomic<std::size_t> next{0};
  thread_local const std::size_t id =
      next.fetch_add(1, std::memory_order_relaxed);
  return id;
}

// --- LatencyHistogram ---------------------------------------------------

std::size_t LatencyHistogram::bucket_of(std::uint64_t v) noexcept {
  constexpr std::uint64_t kSubMask = (1u << kSubBits) - 1;
  if (v < (1u << kSubBits)) return static_cast<std::size_t>(v);
  const int msb = 63 - std::countl_zero(v);
  const std::uint64_t mant = (v >> (msb - kSubBits)) & kSubMask;
  return (static_cast<std::size_t>(msb - kSubBits) << kSubBits) +
         static_cast<std::size_t>(mant) + (1u << kSubBits);
}

std::uint64_t LatencyHistogram::bucket_floor(std::size_t b) noexcept {
  if (b < (1u << kSubBits)) return b;
  const std::size_t base = b - (1u << kSubBits);
  const int msb = static_cast<int>(base >> kSubBits) + kSubBits;
  const std::uint64_t mant = base & ((1u << kSubBits) - 1);
  return (1ull << msb) + (mant << (msb - kSubBits));
}

std::uint64_t LatencyHistogram::bucket_ceil(std::size_t b) noexcept {
  if (b + 1 >= kBuckets) return ~0ull;
  return bucket_floor(b + 1) - 1;
}

void LatencyHistogram::record(std::uint64_t value) noexcept {
  Shard& s = shards_[thread_index() & (kShards - 1)];
  s.buckets[bucket_of(value)].fetch_add(1, std::memory_order_relaxed);
  s.count.fetch_add(1, std::memory_order_relaxed);
  s.sum.fetch_add(value, std::memory_order_relaxed);
  std::uint64_t cur = s.min.load(std::memory_order_relaxed);
  while (value < cur &&
         !s.min.compare_exchange_weak(cur, value,
                                      std::memory_order_relaxed)) {
  }
  cur = s.max.load(std::memory_order_relaxed);
  while (value > cur &&
         !s.max.compare_exchange_weak(cur, value,
                                      std::memory_order_relaxed)) {
  }
}

HistogramSnapshot LatencyHistogram::snapshot() const {
  HistogramSnapshot out;
  std::uint64_t min = ~0ull;
  std::array<std::uint64_t, kBuckets> merged{};
  for (const Shard& s : shards_) {
    out.count += s.count.load(std::memory_order_relaxed);
    out.sum +=
        static_cast<double>(s.sum.load(std::memory_order_relaxed));
    min = std::min(min, s.min.load(std::memory_order_relaxed));
    out.max = std::max(out.max, s.max.load(std::memory_order_relaxed));
    for (std::size_t b = 0; b < kBuckets; ++b) {
      merged[b] += s.buckets[b].load(std::memory_order_relaxed);
    }
  }
  out.min = out.count == 0 ? 0 : min;
  for (std::size_t b = 0; b < kBuckets; ++b) {
    if (merged[b] != 0) {
      out.buckets.push_back({bucket_ceil(b), merged[b]});
    }
  }
  return out;
}

void LatencyHistogram::reset() noexcept {
  for (Shard& s : shards_) {
    for (auto& b : s.buckets) b.store(0, std::memory_order_relaxed);
    s.count.store(0, std::memory_order_relaxed);
    s.sum.store(0, std::memory_order_relaxed);
    s.min.store(~0ull, std::memory_order_relaxed);
    s.max.store(0, std::memory_order_relaxed);
  }
}

std::uint64_t HistogramSnapshot::percentile(double q) const {
  if (count == 0) return 0;
  if (q < 0.0) q = 0.0;
  if (q > 1.0) q = 1.0;
  // Rank of the target observation (1-based, ceil) in merged order.
  const auto rank = static_cast<std::uint64_t>(
      q * static_cast<double>(count - 1)) + 1;
  std::uint64_t seen = 0;
  for (const Bucket& b : buckets) {
    if (seen + b.count >= rank) {
      // Interpolate linearly inside the containing log bucket: assume
      // observations spread uniformly over [bucket_floor, upper]. Small
      // values (< 2^kSubBits) sit in exact single-value buckets, so
      // they come back unchanged.
      const std::uint64_t lower = LatencyHistogram::bucket_floor(
          LatencyHistogram::bucket_of(b.upper));
      const double frac = static_cast<double>(rank - seen) /
                          static_cast<double>(b.count);
      const std::uint64_t span = b.upper - lower;
      // Clamp in the integer domain: near 2^64 the double product can
      // round past span, and casting an out-of-range double is UB.
      const double offset = static_cast<double>(span) * frac + 0.5;
      std::uint64_t off = offset >= static_cast<double>(span)
                              ? span
                              : static_cast<std::uint64_t>(offset);
      if (off > span) off = span;
      return std::max(min, std::min(lower + off, max));
    }
    seen += b.count;
  }
  return max;
}

// --- MetricsRegistry ----------------------------------------------------

struct MetricsRegistry::Impl {
  mutable std::mutex mutex;
  std::map<std::string, std::unique_ptr<Counter>, std::less<>> counters;
  std::map<std::string, std::unique_ptr<Gauge>, std::less<>> gauges;
  std::map<std::string, std::unique_ptr<LatencyHistogram>, std::less<>>
      histograms;
  // clear() parks the objects here so references cached by callers
  // (function-local statics at instrumentation sites) never dangle.
  std::vector<std::unique_ptr<Counter>> retired_counters;
  std::vector<std::unique_ptr<Gauge>> retired_gauges;
  std::vector<std::unique_ptr<LatencyHistogram>> retired_histograms;
};

MetricsRegistry& MetricsRegistry::instance() {
  static MetricsRegistry registry;
  return registry;
}

MetricsRegistry::Impl& MetricsRegistry::impl() const {
  static Impl impl;
  return impl;
}

Counter& MetricsRegistry::counter(std::string_view name) {
  Impl& i = impl();
  std::lock_guard<std::mutex> lock(i.mutex);
  auto it = i.counters.find(name);
  if (it == i.counters.end()) {
    it = i.counters.emplace(std::string(name), std::make_unique<Counter>())
             .first;
  }
  return *it->second;
}

Gauge& MetricsRegistry::gauge(std::string_view name) {
  Impl& i = impl();
  std::lock_guard<std::mutex> lock(i.mutex);
  auto it = i.gauges.find(name);
  if (it == i.gauges.end()) {
    it = i.gauges.emplace(std::string(name), std::make_unique<Gauge>())
             .first;
  }
  return *it->second;
}

LatencyHistogram& MetricsRegistry::histogram(std::string_view name) {
  Impl& i = impl();
  std::lock_guard<std::mutex> lock(i.mutex);
  auto it = i.histograms.find(name);
  if (it == i.histograms.end()) {
    it = i.histograms
             .emplace(std::string(name),
                      std::make_unique<LatencyHistogram>())
             .first;
  }
  return *it->second;
}

std::size_t MetricsRegistry::size() const {
  Impl& i = impl();
  std::lock_guard<std::mutex> lock(i.mutex);
  return i.counters.size() + i.gauges.size() + i.histograms.size();
}

void MetricsRegistry::clear() {
  Impl& i = impl();
  std::lock_guard<std::mutex> lock(i.mutex);
  for (auto& [name, c] : i.counters) {
    c->reset();
    i.retired_counters.push_back(std::move(c));
  }
  for (auto& [name, g] : i.gauges) {
    g->set(0.0);
    i.retired_gauges.push_back(std::move(g));
  }
  for (auto& [name, h] : i.histograms) {
    h->reset();
    i.retired_histograms.push_back(std::move(h));
  }
  i.counters.clear();
  i.gauges.clear();
  i.histograms.clear();
}

std::vector<MetricsRegistry::Entry> MetricsRegistry::entries() const {
  Impl& i = impl();
  std::lock_guard<std::mutex> lock(i.mutex);
  std::vector<Entry> out;
  out.reserve(i.counters.size() + i.gauges.size() + i.histograms.size());
  for (const auto& [name, c] : i.counters) {
    out.push_back({name, Entry::Kind::kCounter, c.get()});
  }
  for (const auto& [name, g] : i.gauges) {
    out.push_back({name, Entry::Kind::kGauge, g.get()});
  }
  for (const auto& [name, h] : i.histograms) {
    out.push_back({name, Entry::Kind::kHistogram, h.get()});
  }
  return out;
}

}  // namespace univsa::telemetry
