#include "univsa/telemetry/provenance.h"

#include "univsa/common/simd.h"
#include "univsa/common/thread_pool.h"
#include "univsa/telemetry/metrics.h"

// Configure-time facts, injected by src/CMakeLists.txt onto this file
// only. Fallbacks keep non-CMake builds compiling.
#ifndef UNIVSA_GIT_SHA
#define UNIVSA_GIT_SHA "unknown"
#endif
#ifndef UNIVSA_BUILD_TYPE
#define UNIVSA_BUILD_TYPE "unknown"
#endif
#ifndef UNIVSA_BUILD_FLAGS
#define UNIVSA_BUILD_FLAGS ""
#endif

namespace univsa::telemetry {

namespace {

std::string compiler_string() {
#if defined(__clang__)
  return "clang " + std::to_string(__clang_major__) + "." +
         std::to_string(__clang_minor__) + "." +
         std::to_string(__clang_patchlevel__);
#elif defined(__GNUC__)
  return "gcc " + std::to_string(__GNUC__) + "." +
         std::to_string(__GNUC_MINOR__) + "." +
         std::to_string(__GNUC_PATCHLEVEL__);
#else
  return "unknown";
#endif
}

}  // namespace

BuildInfo build_info() {
  BuildInfo info;
  info.git_sha = UNIVSA_GIT_SHA;
  info.compiler = compiler_string();
  info.build_type = UNIVSA_BUILD_TYPE;
  info.flags = UNIVSA_BUILD_FLAGS;
  info.simd_isa = simd::to_string(simd::active_isa());
  info.threads = global_pool().thread_count();
  info.telemetry_compiled_in = kCompiledIn;
  return info;
}

}  // namespace univsa::telemetry
