#include "univsa/telemetry/trace.h"

#include <cstring>

namespace univsa::telemetry {

namespace {

// Seqlock-stamped slot: writers bump `seq` to an odd value, copy the
// payload, then publish the even sequence; readers retry on mismatch.
struct Slot {
  std::atomic<std::uint64_t> seq{0};
  TraceEvent event;
};

struct Ring {
  std::array<Slot, kRingCapacity> slots;
  std::atomic<std::uint64_t> head{0};  ///< total events ever pushed
};

Ring& ring() {
  static Ring r;
  return r;
}

thread_local std::uint16_t t_depth = 0;

// The calling thread's active request-scoped context. Installed by
// ScopedTraceContext (server workers around backend dispatch) and
// narrowed by each nested TraceSpan so children parent-link correctly.
thread_local TraceContext t_context;

// Id allocator shared by traces and spans; starts at 1 so 0 stays the
// "unsampled / no parent" sentinel.
std::atomic<std::uint64_t> g_next_id{1};

// Global admission counter behind maybe_start_trace: exact coherent
// sampling (every N-th request process-wide), unlike the per-thread
// sample_tick() it supersedes on the request path.
std::atomic<std::uint64_t> g_admissions{0};

}  // namespace

std::uint64_t next_trace_span_id() noexcept {
  return g_next_id.fetch_add(1, std::memory_order_relaxed);
}

TraceContext maybe_start_trace(std::uint32_t every) noexcept {
  if (every == 0 || !enabled()) return TraceContext{};
  const std::uint64_t n =
      g_admissions.fetch_add(1, std::memory_order_relaxed);
  if (n % every != 0) return TraceContext{};
  TraceContext ctx;
  ctx.trace_id = next_trace_span_id();
  return ctx;
}

TraceContext current_trace() noexcept { return t_context; }

ScopedTraceContext::ScopedTraceContext(const TraceContext& ctx) noexcept
    : saved_(t_context) {
  t_context = ctx;
}

ScopedTraceContext::~ScopedTraceContext() { t_context = saved_; }

void trace_push(const TraceEvent& event) noexcept {
  Ring& r = ring();
  const std::uint64_t n = r.head.fetch_add(1, std::memory_order_relaxed);
  Slot& slot = r.slots[n % kRingCapacity];
  // Publish with an odd/even seqlock so readers can detect torn slots.
  const std::uint64_t ticket = 2 * (n / kRingCapacity) + 1;
  slot.seq.store(ticket, std::memory_order_release);
  slot.event = event;
  slot.seq.store(ticket + 1, std::memory_order_release);
}

std::vector<TraceEvent> trace_recent(std::size_t max_events) {
  Ring& r = ring();
  const std::uint64_t head = r.head.load(std::memory_order_acquire);
  const std::uint64_t available = std::min<std::uint64_t>(
      head, std::min<std::uint64_t>(max_events, kRingCapacity));
  std::vector<TraceEvent> out;
  out.reserve(available);
  for (std::uint64_t i = head - available; i < head; ++i) {
    Slot& slot = r.slots[i % kRingCapacity];
    const std::uint64_t before = slot.seq.load(std::memory_order_acquire);
    if (before == 0 || (before & 1) != 0) continue;  // unwritten / torn
    TraceEvent copy = slot.event;
    const std::uint64_t after = slot.seq.load(std::memory_order_acquire);
    if (after != before) continue;  // overwritten mid-copy
    out.push_back(copy);
  }
  return out;
}

std::uint64_t trace_pushed() {
  return ring().head.load(std::memory_order_relaxed);
}

void trace_clear() {
  Ring& r = ring();
  r.head.store(0, std::memory_order_relaxed);
  for (Slot& s : r.slots) {
    s.seq.store(0, std::memory_order_relaxed);
    s.event = TraceEvent{};
  }
}

TraceSpan::TraceSpan(const char* name,
                     LatencyHistogram* histogram) noexcept
    : name_(name), histogram_(histogram) {
  if (!enabled()) return;
  active_ = true;
  ++t_depth;
  if (t_context.sampled()) {
    // Join the thread's active request trace: become the parent that
    // any nested span links to, restoring the old parent on exit.
    trace_id_ = t_context.trace_id;
    parent_span_ = t_context.span_id;
    span_id_ = next_trace_span_id();
    t_context.span_id = span_id_;
  }
  start_ = now_ns();
}

TraceSpan::~TraceSpan() {
  if (!active_) return;
  const std::uint64_t duration = now_ns() - start_;
  const std::uint16_t depth = --t_depth;
  if (trace_id_ != 0) t_context.span_id = parent_span_;
  if (histogram_ != nullptr) histogram_->record(duration);
  TraceEvent event;
  std::strncpy(event.name.data(), name_, event.name.size() - 1);
  event.start_ns = start_;
  event.duration_ns = duration;
  event.detail = detail_;
  event.trace_id = trace_id_;
  event.span_id = span_id_;
  event.parent_span = parent_span_;
  event.thread = static_cast<std::uint32_t>(thread_index());
  event.depth = depth;
  trace_push(event);
}

}  // namespace univsa::telemetry
