#include "univsa/telemetry/trace.h"

#include <cstring>

namespace univsa::telemetry {

namespace {

// Seqlock-stamped slot: writers bump `seq` to an odd value, copy the
// payload, then publish the even sequence; readers retry on mismatch.
struct Slot {
  std::atomic<std::uint64_t> seq{0};
  TraceEvent event;
};

struct Ring {
  std::array<Slot, kRingCapacity> slots;
  std::atomic<std::uint64_t> head{0};  ///< total events ever pushed
};

Ring& ring() {
  static Ring r;
  return r;
}

thread_local std::uint16_t t_depth = 0;

}  // namespace

void trace_push(const TraceEvent& event) noexcept {
  Ring& r = ring();
  const std::uint64_t n = r.head.fetch_add(1, std::memory_order_relaxed);
  Slot& slot = r.slots[n % kRingCapacity];
  // Publish with an odd/even seqlock so readers can detect torn slots.
  const std::uint64_t ticket = 2 * (n / kRingCapacity) + 1;
  slot.seq.store(ticket, std::memory_order_release);
  slot.event = event;
  slot.seq.store(ticket + 1, std::memory_order_release);
}

std::vector<TraceEvent> trace_recent(std::size_t max_events) {
  Ring& r = ring();
  const std::uint64_t head = r.head.load(std::memory_order_acquire);
  const std::uint64_t available = std::min<std::uint64_t>(
      head, std::min<std::uint64_t>(max_events, kRingCapacity));
  std::vector<TraceEvent> out;
  out.reserve(available);
  for (std::uint64_t i = head - available; i < head; ++i) {
    Slot& slot = r.slots[i % kRingCapacity];
    const std::uint64_t before = slot.seq.load(std::memory_order_acquire);
    if (before == 0 || (before & 1) != 0) continue;  // unwritten / torn
    TraceEvent copy = slot.event;
    const std::uint64_t after = slot.seq.load(std::memory_order_acquire);
    if (after != before) continue;  // overwritten mid-copy
    out.push_back(copy);
  }
  return out;
}

std::uint64_t trace_pushed() {
  return ring().head.load(std::memory_order_relaxed);
}

void trace_clear() {
  Ring& r = ring();
  r.head.store(0, std::memory_order_relaxed);
  for (Slot& s : r.slots) {
    s.seq.store(0, std::memory_order_relaxed);
    s.event = TraceEvent{};
  }
}

TraceSpan::TraceSpan(const char* name,
                     LatencyHistogram* histogram) noexcept
    : name_(name), histogram_(histogram) {
  if (!enabled()) return;
  active_ = true;
  ++t_depth;
  start_ = now_ns();
}

TraceSpan::~TraceSpan() {
  if (!active_) return;
  const std::uint64_t duration = now_ns() - start_;
  const std::uint16_t depth = --t_depth;
  if (histogram_ != nullptr) histogram_->record(duration);
  TraceEvent event;
  std::strncpy(event.name.data(), name_, event.name.size() - 1);
  event.start_ns = start_;
  event.duration_ns = duration;
  event.detail = detail_;
  event.thread = static_cast<std::uint32_t>(thread_index());
  event.depth = depth;
  trace_push(event);
}

}  // namespace univsa::telemetry
