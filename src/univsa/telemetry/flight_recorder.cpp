#include "univsa/telemetry/flight_recorder.h"

#include <fcntl.h>
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <csignal>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <mutex>
#include <sstream>

#include "univsa/report/provenance.h"
#include "univsa/telemetry/metrics.h"

namespace univsa::telemetry {

namespace {

// Same seqlock-slot ring as the trace ring (trace.cpp): writers are
// wait-free, readers skip torn slots.
struct Slot {
  std::atomic<std::uint64_t> seq{0};
  FlightEvent event;
};

struct Ring {
  std::array<Slot, kFlightRingCapacity> slots;
  std::atomic<std::uint64_t> head{0};
};

Ring& ring() {
  static Ring r;
  return r;
}

// Registered lazily, only once telemetry is enabled, so the no-op fold
// (UNIVSA_TELEMETRY=OFF or disabled at runtime) never touches the
// registry — the invariant telemetry_noop_test pins.
struct FlightMetrics {
  Counter& events = counter("runtime.flightrec.events_total");
  Counter& dumps = counter("runtime.flightrec.dumps_total");
};

FlightMetrics& flight_metrics() {
  static FlightMetrics m;
  return m;
}

// Draining-dump arming: a CLI opt-in, so unit-test server shutdowns do
// not litter dump files. Guarded by a mutex (arming is rare and never
// on the serving path).
std::mutex g_drain_mutex;
std::string g_drain_path;

std::string json_escape(const char* s) {
  std::string out;
  for (; *s != '\0'; ++s) {
    const char c = *s;
    if (c == '"' || c == '\\') {
      out.push_back('\\');
      out.push_back(c);
    } else if (static_cast<unsigned char>(c) < 0x20) {
      char buf[8];
      std::snprintf(buf, sizeof(buf), "\\u%04x", c);
      out += buf;
    } else {
      out.push_back(c);
    }
  }
  return out;
}

// --- Fatal-signal dump --------------------------------------------------
//
// The handler may run on a corrupted heap, so it formats with hand-
// rolled, allocation-free primitives and raw write(2) only; snprintf,
// ostringstream and the registry are off-limits.

const char* g_signal_path = nullptr;

std::size_t append_str(char* buf, std::size_t pos, std::size_t cap,
                       const char* s) noexcept {
  while (*s != '\0' && pos + 1 < cap) buf[pos++] = *s++;
  return pos;
}

std::size_t append_u64(char* buf, std::size_t pos, std::size_t cap,
                       std::uint64_t v) noexcept {
  char digits[20];
  std::size_t n = 0;
  do {
    digits[n++] = static_cast<char>('0' + v % 10);
    v /= 10;
  } while (v != 0);
  while (n > 0 && pos + 1 < cap) buf[pos++] = digits[--n];
  return pos;
}

void write_all(int fd, const char* buf, std::size_t len) noexcept {
  std::size_t off = 0;
  while (off < len) {
    const ssize_t n = ::write(fd, buf + off, len - off);
    if (n <= 0) return;
    off += static_cast<std::size_t>(n);
  }
}

// Dumps the ring without locks or allocation. Subject bytes pass
// through unescaped (they are plain identifiers the runtime wrote);
// a post-mortem reader tolerates worse.
void signal_safe_dump(int fd) noexcept {
  char buf[512];
  std::size_t pos = 0;
  pos = append_str(buf, pos, sizeof(buf),
                   "{\n\"kind\": \"flight_recorder\",\n\"events\": [\n");
  write_all(fd, buf, pos);
  Ring& r = ring();
  const std::uint64_t head = r.head.load(std::memory_order_acquire);
  const std::uint64_t available =
      head < kFlightRingCapacity ? head : kFlightRingCapacity;
  bool first = true;
  for (std::uint64_t i = head - available; i < head; ++i) {
    Slot& slot = r.slots[i % kFlightRingCapacity];
    const std::uint64_t seq = slot.seq.load(std::memory_order_acquire);
    if (seq == 0 || (seq & 1) != 0) continue;
    const FlightEvent& e = slot.event;
    pos = 0;
    pos = append_str(buf, pos, sizeof(buf), first ? "" : ",\n");
    first = false;
    pos = append_str(buf, pos, sizeof(buf), "{\"time_ns\": ");
    pos = append_u64(buf, pos, sizeof(buf), e.time_ns);
    pos = append_str(buf, pos, sizeof(buf), ", \"type\": \"");
    pos = append_str(buf, pos, sizeof(buf), to_string(e.type));
    pos = append_str(buf, pos, sizeof(buf), "\", \"subject\": \"");
    pos = append_str(buf, pos, sizeof(buf), e.subject.data());
    pos = append_str(buf, pos, sizeof(buf), "\", \"a\": ");
    pos = append_u64(buf, pos, sizeof(buf), e.a);
    pos = append_str(buf, pos, sizeof(buf), ", \"b\": ");
    pos = append_u64(buf, pos, sizeof(buf), e.b);
    pos = append_str(buf, pos, sizeof(buf), ", \"thread\": ");
    pos = append_u64(buf, pos, sizeof(buf), e.thread);
    pos = append_str(buf, pos, sizeof(buf), "}");
    write_all(fd, buf, pos);
  }
  write_all(fd, "\n]}\n", 4);
}

void fatal_signal_handler(int sig) noexcept {
  if (g_signal_path != nullptr) {
    const int fd = ::open(g_signal_path, O_WRONLY | O_CREAT | O_TRUNC,
                          0644);
    if (fd >= 0) {
      signal_safe_dump(fd);
      ::close(fd);
    }
  }
  std::signal(sig, SIG_DFL);
  std::raise(sig);
}

}  // namespace

const char* to_string(FlightEventType type) noexcept {
  switch (type) {
    case FlightEventType::kShed: return "shed";
    case FlightEventType::kEviction: return "eviction";
    case FlightEventType::kDeadlineRejected: return "deadline_rejected";
    case FlightEventType::kHealthTransition: return "health_transition";
    case FlightEventType::kFaultInjected: return "fault_injected";
    case FlightEventType::kHotSwap: return "hot_swap";
    case FlightEventType::kDriftLatched: return "drift_latched";
    case FlightEventType::kSloBreach: return "slo_breach";
    case FlightEventType::kDump: return "dump";
    case FlightEventType::kFailover: return "failover";
  }
  return "unknown";
}

void flightrec_record(FlightEventType type, const char* subject,
                      std::uint64_t a, std::uint64_t b) noexcept {
  if (!enabled()) return;
  Ring& r = ring();
  const std::uint64_t n = r.head.fetch_add(1, std::memory_order_relaxed);
  Slot& slot = r.slots[n % kFlightRingCapacity];
  const std::uint64_t ticket = 2 * (n / kFlightRingCapacity) + 1;
  slot.seq.store(ticket, std::memory_order_release);
  FlightEvent& e = slot.event;
  e.time_ns = now_ns();
  e.type = type;
  e.a = a;
  e.b = b;
  e.subject = {};
  if (subject != nullptr) {
    std::strncpy(e.subject.data(), subject, e.subject.size() - 1);
  }
  e.thread = static_cast<std::uint32_t>(thread_index());
  slot.seq.store(ticket + 1, std::memory_order_release);
  flight_metrics().events.add();
}

std::vector<FlightEvent> flightrec_recent(std::size_t max_events) {
  Ring& r = ring();
  const std::uint64_t head = r.head.load(std::memory_order_acquire);
  const std::uint64_t available = std::min<std::uint64_t>(
      head, std::min<std::uint64_t>(max_events, kFlightRingCapacity));
  std::vector<FlightEvent> out;
  out.reserve(available);
  for (std::uint64_t i = head - available; i < head; ++i) {
    Slot& slot = r.slots[i % kFlightRingCapacity];
    const std::uint64_t before = slot.seq.load(std::memory_order_acquire);
    if (before == 0 || (before & 1) != 0) continue;
    FlightEvent copy = slot.event;
    const std::uint64_t after = slot.seq.load(std::memory_order_acquire);
    if (after != before) continue;
    out.push_back(copy);
  }
  return out;
}

std::uint64_t flightrec_recorded() {
  return ring().head.load(std::memory_order_relaxed);
}

void flightrec_clear() {
  Ring& r = ring();
  r.head.store(0, std::memory_order_relaxed);
  for (Slot& s : r.slots) {
    s.seq.store(0, std::memory_order_relaxed);
    s.event = FlightEvent{};
  }
  const std::lock_guard<std::mutex> lock(g_drain_mutex);
  g_drain_path.clear();
}

std::string flightrec_to_json() {
  std::ostringstream os;
  os << "{\n"
     << "  \"kind\": \"flight_recorder\",\n"
     << report::provenance_json_fields()
     << "  \"recorded_total\": " << flightrec_recorded() << ",\n"
     << "  \"events\": [";
  const std::vector<FlightEvent> events = flightrec_recent();
  for (std::size_t i = 0; i < events.size(); ++i) {
    const FlightEvent& e = events[i];
    os << (i ? ",\n    " : "\n    ") << "{\"time_ns\": " << e.time_ns
       << ", \"type\": \"" << to_string(e.type) << "\", \"subject\": \""
       << json_escape(e.subject.data()) << "\", \"a\": " << e.a
       << ", \"b\": " << e.b << ", \"thread\": " << e.thread << "}";
  }
  os << (events.empty() ? "]\n" : "\n  ]\n") << "}\n";
  return os.str();
}

bool flightrec_dump(const std::string& path) {
  flightrec_record(FlightEventType::kDump, path.c_str());
  std::ofstream out(path);
  if (!out) return false;
  out << flightrec_to_json();
  if (!out) return false;
  if (enabled()) flight_metrics().dumps.add();
  return true;
}

void flightrec_arm_draining_dump(const std::string& path) {
  const std::lock_guard<std::mutex> lock(g_drain_mutex);
  g_drain_path = path;
}

void flightrec_on_draining() noexcept {
  std::string path;
  {
    const std::lock_guard<std::mutex> lock(g_drain_mutex);
    path.swap(g_drain_path);  // one-shot
  }
  if (!path.empty()) flightrec_dump(path);
}

void flightrec_install_signal_handler(const char* path) {
  g_signal_path = path;
  for (const int sig : {SIGSEGV, SIGABRT, SIGBUS, SIGFPE, SIGILL}) {
    std::signal(sig, fatal_signal_handler);
  }
}

}  // namespace univsa::telemetry
