#include "univsa/telemetry/slo.h"

#include <algorithm>

#include "univsa/telemetry/flight_recorder.h"
#include "univsa/telemetry/metrics.h"

namespace univsa::telemetry {

namespace {

// Cumulative (good, bad) totals for one objective, straight from the
// registry. Latency objectives count log buckets at or below the
// threshold as good — structural, no quantile estimation needed.
std::pair<std::uint64_t, std::uint64_t> sample_objective(
    const SloObjective& o) {
  if (!o.histogram.empty()) {
    const HistogramSnapshot h = histogram(o.histogram).snapshot();
    std::uint64_t good = 0;
    for (const auto& bucket : h.buckets) {
      if (bucket.upper <= o.target_ns) good += bucket.count;
    }
    return {good, h.count - good};
  }
  return {counter(o.good_counter).total(), counter(o.bad_counter).total()};
}

// Error rate over the trailing `window` samples (delta of cumulative
// pairs); 0 when the window saw no traffic.
double window_error_rate(
    const std::deque<std::pair<std::uint64_t, std::uint64_t>>& samples,
    std::size_t window) {
  if (samples.size() < 2) return 0.0;
  const std::size_t last = samples.size() - 1;
  const std::size_t first = last > window ? last - window : 0;
  const std::uint64_t good = samples[last].first - samples[first].first;
  const std::uint64_t bad = samples[last].second - samples[first].second;
  const std::uint64_t total = good + bad;
  if (total == 0) return 0.0;
  return static_cast<double>(bad) / static_cast<double>(total);
}

struct SloMetrics {
  Gauge& objectives = gauge("slo.objectives");
  Counter& breaches = counter("slo.breaches_total");
};

SloMetrics& slo_metrics() {
  static SloMetrics m;
  return m;
}

}  // namespace

SloEngine::SloEngine(std::vector<SloObjective> objectives)
    : SloEngine(std::move(objectives), Options()) {}

SloEngine::SloEngine(std::vector<SloObjective> objectives,
                     Options options)
    : options_(options),
      objectives_(std::move(objectives)),
      states_(objectives_.size()) {
  if (enabled()) {
    slo_metrics().objectives.set(static_cast<double>(objectives_.size()));
  }
}

const std::vector<SloObjective>& SloEngine::objectives() const {
  return objectives_;
}

std::vector<SloStatus> SloEngine::evaluate() {
  std::vector<SloStatus> out;
  out.reserve(states_.size());
  for (std::size_t i = 0; i < states_.size(); ++i) {
    State& s = states_[i];
    const SloObjective& o = objectives_[i];
    SloStatus st;
    st.name = o.name;
    if (!enabled()) {
      out.push_back(std::move(st));
      continue;
    }
    const auto [good, bad] = sample_objective(o);
    s.samples.emplace_back(good, bad);
    while (s.samples.size() > options_.slow_window + 1) {
      s.samples.pop_front();
    }
    const double budget = std::max(1e-9, 1.0 - o.target);
    st.good = good;
    st.bad = bad;
    st.fast_burn =
        window_error_rate(s.samples, options_.fast_window) / budget;
    st.slow_burn =
        window_error_rate(s.samples, options_.slow_window) / budget;
    const std::uint64_t total = good + bad;
    st.compliance =
        total == 0 ? 1.0
                   : static_cast<double>(good) / static_cast<double>(total);
    st.budget_remaining =
        std::clamp(1.0 - (1.0 - st.compliance) / budget, 0.0, 1.0);
    st.breached = st.fast_burn > options_.fast_burn_threshold &&
                  st.slow_burn > options_.slow_burn_threshold;
    if (s.fast_burn == nullptr) {
      s.fast_burn = &gauge(labeled("slo.burn_rate_fast", "slo", o.name));
      s.slow_burn = &gauge(labeled("slo.burn_rate_slow", "slo", o.name));
      s.compliance = &gauge(labeled("slo.compliance", "slo", o.name));
      s.budget =
          &gauge(labeled("slo.error_budget_remaining", "slo", o.name));
    }
    s.fast_burn->set(st.fast_burn);
    s.slow_burn->set(st.slow_burn);
    s.compliance->set(st.compliance);
    s.budget->set(st.budget_remaining);
    if (st.breached && !s.breached) {
      slo_metrics().breaches.add();
      flightrec_record(FlightEventType::kSloBreach, o.name.c_str(),
                       static_cast<std::uint64_t>(st.fast_burn * 1000.0),
                       static_cast<std::uint64_t>(st.slow_burn * 1000.0));
    }
    s.breached = st.breached;
    out.push_back(std::move(st));
  }
  return out;
}

std::vector<SloObjective> default_server_slos() {
  std::vector<SloObjective> out;
  SloObjective latency;
  latency.name = "serving_latency_p99";
  latency.histogram = "runtime.server.latency_ns";
  latency.quantile = 0.99;
  latency.target_ns = 25'000'000;  // 25 ms end-to-end
  latency.target = 0.99;
  out.push_back(std::move(latency));
  SloObjective availability;
  availability.name = "serving_availability";
  availability.good_counter = "runtime.server.completed";
  availability.bad_counter = "runtime.server.deadline_rejected_total";
  availability.target = 0.999;
  out.push_back(std::move(availability));
  return out;
}

}  // namespace univsa::telemetry
