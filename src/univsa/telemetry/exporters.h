// Snapshot + exporters: one scrape API over the metrics registry, the
// trace ring, and the build provenance, rendered as Prometheus text
// exposition format or JSON.
//
// snapshot() merges every per-thread shard (exact totals; writers are
// never stalled) and copies the most recent trace events. to_prometheus
// / to_json are pure functions of the Snapshot so golden tests can pin
// their output byte-for-byte.
#pragma once

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "univsa/telemetry/metrics.h"
#include "univsa/telemetry/provenance.h"
#include "univsa/telemetry/trace.h"

namespace univsa::telemetry {

struct Snapshot {
  std::vector<std::pair<std::string, std::uint64_t>> counters;
  std::vector<std::pair<std::string, double>> gauges;
  std::vector<HistogramSnapshot> histograms;
  std::vector<TraceEvent> recent_spans;
  std::uint64_t spans_pushed = 0;  ///< total ever; > ring size once wrapped
  BuildInfo build;
};

/// Scrapes the global registry + trace ring. `max_spans` caps the trace
/// section (0 = omit spans entirely).
Snapshot snapshot(std::size_t max_spans = 256);

/// Prometheus text exposition format. Metric names are sanitized
/// ([a-zA-Z0-9_] only) and prefixed "univsa_"; counters gain "_total",
/// histograms emit cumulative "_bucket{le=...}" / "_sum" / "_count"
/// series, and provenance becomes a "univsa_build_info{...} 1" gauge.
/// Names built with telemetry::labeled() — `base{key=value}` with a
/// RAW value — become one metric family with a quoted, escaped label
/// (`\`, `"` and newline escaped per the exposition format); hostile
/// tenant names cannot break out of the label value.
std::string to_prometheus(const Snapshot& snapshot);

/// JSON document: provenance fields, counters/gauges as objects,
/// histograms with count/sum/min/max/mean/p50/p90/p95/p99 and non-empty
/// [upper, count] buckets, plus the recent span list.
std::string to_json(const Snapshot& snapshot);

/// Convenience: snapshot() -> to_json -> `path`. Returns false (and
/// leaves no partial file behind) when the file cannot be written.
bool write_json_file(const std::string& path, std::size_t max_spans = 256);

/// Chrome-trace-event JSON (open in chrome://tracing or the Perfetto
/// UI): one complete "X" event per TraceEvent, microsecond timestamps,
/// with trace_id/span_id/parent_span/detail/depth in args so sampled
/// request trees reconstruct.
std::string export_trace_json(const std::vector<TraceEvent>& events);

/// Convenience: trace_recent(max_events) -> export_trace_json -> `path`.
bool write_trace_json_file(const std::string& path,
                           std::size_t max_events = kRingCapacity);

}  // namespace univsa::telemetry
