// Umbrella header for the telemetry subsystem (DESIGN.md §9).
//
//   - metrics.h    — Counter / Gauge / LatencyHistogram + the global
//                    MetricsRegistry (lock-free hot path, merged on
//                    scrape) and the now_ns() clock everything shares.
//   - trace.h      — RAII TraceSpan + the bounded trace ring and the
//                    UNIVSA_SPAN instrumentation macro.
//   - exporters.h  — telemetry::snapshot() and the Prometheus / JSON
//                    renderers.
//   - provenance.h — build metadata (git SHA, compiler, flags, thread
//                    count) stamped into snapshots and BENCH_*.json.
//
// Build with UNIVSA_TELEMETRY=OFF (-DUNIVSA_TELEMETRY_OFF) to compile
// every span and registry access down to a no-op.
#pragma once

#include "univsa/telemetry/exporters.h"
#include "univsa/telemetry/metrics.h"
#include "univsa/telemetry/provenance.h"
#include "univsa/telemetry/trace.h"
