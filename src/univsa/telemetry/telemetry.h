// Umbrella header for the telemetry subsystem (DESIGN.md §9).
//
//   - metrics.h         — Counter / Gauge / LatencyHistogram + the
//                         global MetricsRegistry (lock-free hot path,
//                         merged on scrape) and the shared now_ns().
//   - trace.h           — RAII TraceSpan, request-scoped TraceContext,
//                         the bounded trace ring and UNIVSA_SPAN.
//   - flight_recorder.h — bounded ring of structured runtime events
//                         with post-mortem dump triggers.
//   - slo.h             — declarative objectives + multi-window
//                         burn-rate evaluation (slo.* metrics).
//   - exporters.h       — telemetry::snapshot(), the Prometheus / JSON
//                         renderers, and the Perfetto trace exporter.
//   - provenance.h      — build metadata (git SHA, compiler, flags,
//                         thread count) stamped into snapshots and
//                         BENCH_*.json (JSON form: report/provenance.h).
//
// Build with UNIVSA_TELEMETRY=OFF (-DUNIVSA_TELEMETRY_OFF) to compile
// every span and registry access down to a no-op.
#pragma once

#include "univsa/telemetry/exporters.h"
#include "univsa/telemetry/flight_recorder.h"
#include "univsa/telemetry/metrics.h"
#include "univsa/telemetry/provenance.h"
#include "univsa/telemetry/slo.h"
#include "univsa/telemetry/trace.h"
