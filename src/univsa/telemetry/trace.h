// RAII trace spans over a bounded in-memory ring.
//
// A TraceSpan marks one timed stage (DVP, BiConv, a server batch, a
// training epoch...). On destruction it records the duration into an
// optional LatencyHistogram (resolved once by the caller — see the
// UNIVSA_SPAN macro) and pushes a fixed-size TraceEvent into the global
// ring. Spans nest: a thread-local depth counter tags each event with
// its nesting level, so the exporter can reconstruct stage trees.
//
// Request-scoped tracing: a TraceContext created by maybe_start_trace()
// at admission gives every span of one sampled request a shared 64-bit
// trace id and a parent span id. Spans opened while a context is active
// (installed with ScopedTraceContext) parent-link automatically; the
// Perfetto exporter (exporters.h) turns the ring into a tree view.
//
// The ring is wait-free for writers (one relaxed fetch_add + a seqlock
// per slot); readers validate each slot's sequence stamp and drop
// entries that were being overwritten mid-read. Old events are simply
// overwritten — the ring holds the most recent kRingCapacity spans.
//
// Compiled-off builds (UNIVSA_TELEMETRY_OFF): the UNIVSA_SPAN macro
// expands to nothing; TraceSpan itself stays defined but inert callers
// should prefer the macro.
#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <vector>

#include "univsa/telemetry/metrics.h"

namespace univsa::telemetry {

struct TraceEvent {
  std::array<char, 32> name{};  ///< NUL-terminated, truncated
  std::uint64_t start_ns = 0;
  std::uint64_t duration_ns = 0;
  /// Stage-specific payload (e.g. modelled hardware cycles for hwsim
  /// spans, batch size for server dispatch spans). 0 when unused.
  std::uint64_t detail = 0;
  /// Request-scoped identity: all spans of one sampled request share a
  /// trace_id; parent_span links them into a tree. All three are 0 for
  /// flat (non-request-scoped) spans.
  std::uint64_t trace_id = 0;
  std::uint64_t span_id = 0;
  std::uint64_t parent_span = 0;
  std::uint32_t thread = 0;  ///< telemetry::thread_index()
  std::uint16_t depth = 0;   ///< nesting level at the time of the span
};

/// Per-request trace identity, decided once at admission and carried
/// through SubmitOptions -> queue -> batch -> backend stages. trace_id
/// of 0 means "not sampled": every probe downstream stays inert.
struct TraceContext {
  std::uint64_t trace_id = 0;  ///< 0 = unsampled
  std::uint64_t span_id = 0;   ///< span the next child should parent to
  bool sampled() const noexcept { return trace_id != 0; }
};

/// Process-unique, never-zero id for a new trace or span.
std::uint64_t next_trace_span_id() noexcept;

/// Coherent head-based sampling: one global admission counter decides
/// once per request. Returns a fresh root context for every `every`-th
/// call, an unsampled context otherwise (and always when `every` is 0
/// or telemetry is disabled). Unlike sample_tick() this is exact under
/// concurrency — N calls yield floor-exact N/every sampled requests.
TraceContext maybe_start_trace(std::uint32_t every) noexcept;

/// The calling thread's active trace context (unsampled if none).
TraceContext current_trace() noexcept;

/// Installs `ctx` as the calling thread's active context for the
/// current scope; spans opened underneath parent-link into it. Restores
/// the previous context on destruction.
class ScopedTraceContext {
 public:
  explicit ScopedTraceContext(const TraceContext& ctx) noexcept;
  ~ScopedTraceContext();

  ScopedTraceContext(const ScopedTraceContext&) = delete;
  ScopedTraceContext& operator=(const ScopedTraceContext&) = delete;

 private:
  TraceContext saved_;
};

inline constexpr std::size_t kRingCapacity = 4096;

/// Appends one event (wait-free; may overwrite the oldest entry).
void trace_push(const TraceEvent& event) noexcept;

/// Most recent events, oldest first. Capped at kRingCapacity; slots
/// caught mid-overwrite are skipped.
std::vector<TraceEvent> trace_recent(std::size_t max_events = kRingCapacity);

/// Total events ever pushed (monotonic; exceeds kRingCapacity once the
/// ring has wrapped).
std::uint64_t trace_pushed();

/// Test-only: empties the ring.
void trace_clear();

/// True when the calling thread is inside a sampled request — the cheap
/// guard hot paths use to upgrade from flat sampling to request-scoped
/// tracing. Folds to compile-time false when telemetry is compiled off.
[[maybe_unused]] static bool trace_active() noexcept {
  if constexpr (!kCompiledIn) return false;
  return current_trace().sampled();
}

class TraceSpan {
 public:
  /// `name` must outlive the span (string literals at call sites).
  /// Reads the clock only when telemetry is enabled.
  explicit TraceSpan(const char* name,
                     LatencyHistogram* histogram = nullptr) noexcept;
  ~TraceSpan();

  TraceSpan(const TraceSpan&) = delete;
  TraceSpan& operator=(const TraceSpan&) = delete;

  /// Attach a payload to the event (modelled cycles, batch size...).
  void set_detail(std::uint64_t detail) noexcept { detail_ = detail; }
  bool active() const noexcept { return active_; }

 private:
  const char* name_;
  LatencyHistogram* histogram_;
  std::uint64_t start_ = 0;
  std::uint64_t detail_ = 0;
  std::uint64_t trace_id_ = 0;    ///< joined request trace (0 = flat span)
  std::uint64_t span_id_ = 0;
  std::uint64_t parent_span_ = 0;
  bool active_ = false;
};

// Instrumentation macro: resolves the span's histogram once (function-
// local static — one registry lock for the lifetime of the process) and
// opens an RAII span. `stage` must be a string literal; the histogram is
// registered as "<stage>_ns". Use inside a block:
//   { UNIVSA_SPAN("stage.dvp"); project_values_into(...); }
#define UNIVSA_TELEMETRY_CONCAT_IMPL(a, b) a##b
#define UNIVSA_TELEMETRY_CONCAT(a, b) UNIVSA_TELEMETRY_CONCAT_IMPL(a, b)
#if defined(UNIVSA_TELEMETRY_OFF)
#define UNIVSA_SPAN(stage) ((void)0)
#else
#define UNIVSA_SPAN(stage)                                              \
  static ::univsa::telemetry::LatencyHistogram&                         \
      UNIVSA_TELEMETRY_CONCAT(univsa_span_hist_, __LINE__) =            \
          ::univsa::telemetry::histogram(stage "_ns");                  \
  ::univsa::telemetry::TraceSpan UNIVSA_TELEMETRY_CONCAT(univsa_span_,  \
                                                         __LINE__)(     \
      stage, &UNIVSA_TELEMETRY_CONCAT(univsa_span_hist_, __LINE__))
#endif

}  // namespace univsa::telemetry
