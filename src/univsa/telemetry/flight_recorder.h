// Flight recorder: a bounded lock-free ring of structured runtime
// events — the decisions an operator needs after an incident, not the
// per-span timings the trace ring holds. The serving layer records
// admission sheds, evictions, deadline rejections, health transitions,
// fault injections, hot swaps, and drift latches; the SLO engine adds
// burn-rate breaches.
//
// The ring uses the same seqlock-slot design as the trace ring: writers
// are wait-free (one relaxed fetch_add plus two sequence stores), and
// readers skip slots caught mid-overwrite. Recording is a no-op when
// telemetry is disabled, and the whole module folds away under
// -DUNIVSA_TELEMETRY=OFF.
//
// Dump triggers (all emit a self-contained flight_recorder.json):
//   - explicitly, via flightrec_dump(path);
//   - a server's health entering draining, when armed with
//     flightrec_arm_draining_dump() (CLI opt-in so unit-test shutdowns
//     do not litter files);
//   - a fatal signal (SIGSEGV/SIGABRT/SIGBUS/SIGFPE/SIGILL) after
//     flightrec_install_signal_handler() — the handler formats with
//     async-signal-safe primitives only, then re-raises.
#pragma once

#include <array>
#include <cstdint>
#include <string>
#include <vector>

namespace univsa::telemetry {

enum class FlightEventType : std::uint8_t {
  kShed = 0,            ///< admission refused (quota or watermark)
  kEviction,            ///< queued request evicted for a higher priority
  kDeadlineRejected,    ///< dequeued past its deadline
  kHealthTransition,    ///< server health state changed
  kFaultInjected,       ///< FaultPlan fired (error / stall / delay)
  kHotSwap,             ///< registry published a new snapshot version
  kDriftLatched,        ///< adaptation driver latched input drift
  kSloBreach,           ///< multi-window burn-rate rule fired
  kDump,                ///< a dump was taken (marks the file itself)
  kFailover,            ///< router steered traffic off a shard endpoint
};

/// Stable lowercase name for JSON output (e.g. "health_transition").
const char* to_string(FlightEventType type) noexcept;

struct FlightEvent {
  std::uint64_t time_ns = 0;
  /// Event-specific payloads; meaning documented per type in
  /// docs/TRACING.md (e.g. queue depth for sheds, old/new state for
  /// health transitions, fault lane sequence for injections).
  std::uint64_t a = 0;
  std::uint64_t b = 0;
  std::array<char, 40> subject{};  ///< tenant / lane / state name
  FlightEventType type = FlightEventType::kShed;
  std::uint32_t thread = 0;
};

inline constexpr std::size_t kFlightRingCapacity = 1024;

/// Appends one event (wait-free). No-op while telemetry is disabled.
void flightrec_record(FlightEventType type, const char* subject,
                      std::uint64_t a = 0, std::uint64_t b = 0) noexcept;

/// Most recent events, oldest first; torn slots skipped.
std::vector<FlightEvent> flightrec_recent(
    std::size_t max_events = kFlightRingCapacity);

/// Total events ever recorded (monotonic across wraps).
std::uint64_t flightrec_recorded();

/// Test-only: empties the ring and disarms the draining dump.
void flightrec_clear();

/// Self-contained post-mortem document: build provenance plus every
/// recent event.
std::string flightrec_to_json();

/// Writes flightrec_to_json() to `path`; bumps
/// runtime.flightrec.dumps_total. Returns false on I/O failure.
bool flightrec_dump(const std::string& path);

/// Arms a one-shot dump to `path` the next time a server reports its
/// health entering draining (see flightrec_on_draining).
void flightrec_arm_draining_dump(const std::string& path);

/// Called by the runtime when health enters draining; dumps once if
/// armed, then disarms.
void flightrec_on_draining() noexcept;

/// Installs fatal-signal handlers that write the ring to `path` with
/// async-signal-safe formatting, then re-raise the signal. `path` must
/// outlive the process (string literal or leaked buffer).
void flightrec_install_signal_handler(
    const char* path = "flight_recorder.json");

}  // namespace univsa::telemetry
