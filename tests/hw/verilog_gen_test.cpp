#include "univsa/hw/verilog_gen.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>

namespace univsa::hw {
namespace {

vsa::ModelConfig small_config() {
  vsa::ModelConfig c;
  c.W = 3;
  c.L = 4;
  c.C = 3;
  c.M = 16;
  c.D_H = 4;
  c.D_L = 2;
  c.D_K = 3;
  c.O = 5;
  c.Theta = 2;
  return c;
}

vsa::Model small_model(std::uint64_t seed = 7) {
  Rng rng(seed);
  return vsa::Model::random(small_config(), rng);
}

std::vector<std::uint16_t> probe_sample(const vsa::ModelConfig& c,
                                        std::uint64_t seed = 9) {
  Rng rng(seed);
  std::vector<std::uint16_t> values(c.features());
  for (auto& v : values) {
    v = static_cast<std::uint16_t>(rng.uniform_index(c.M));
  }
  return values;
}

TEST(VerilogGenTest, EmitsAllFiveModules) {
  const vsa::Model m = small_model();
  const VerilogGenerator gen(m);
  const auto names = verilog_module_names(gen.emit_all());
  ASSERT_EQ(names.size(), 5u);
  EXPECT_EQ(names[0], "univsa_value_rom");
  EXPECT_EQ(names[1], "univsa_biconv");
  EXPECT_EQ(names[2], "univsa_encode");
  EXPECT_EQ(names[3], "univsa_similarity");
  EXPECT_EQ(names[4], "univsa_top");
}

TEST(VerilogGenTest, PrefixIsConfigurable) {
  const vsa::Model m = small_model();
  VerilogOptions opts;
  opts.prefix = "bci_core";
  const VerilogGenerator gen(m, opts);
  const auto names = verilog_module_names(gen.emit_all());
  for (const auto& n : names) {
    EXPECT_EQ(n.rfind("bci_core_", 0), 0u) << n;
  }
}

TEST(VerilogGenTest, EveryEmittedUnitIsStructurallyBalanced) {
  const vsa::Model m = small_model();
  const VerilogGenerator gen(m);
  for (const std::string& src :
       {gen.value_rom(), gen.biconv(), gen.encode(), gen.similarity(),
        gen.top(), gen.emit_all(),
        gen.testbench(probe_sample(m.config()))}) {
    const auto problems = verilog_structural_problems(src);
    EXPECT_TRUE(problems.empty())
        << (problems.empty() ? "" : problems.front());
  }
}

TEST(VerilogGenTest, CheckerDetectsImbalance) {
  const vsa::Model m = small_model();
  const VerilogGenerator gen(m);
  std::string broken = gen.value_rom();
  const std::size_t pos = broken.rfind("endmodule");
  ASSERT_NE(pos, std::string::npos);
  broken.erase(pos, 9);
  EXPECT_FALSE(verilog_structural_problems(broken).empty());
  EXPECT_FALSE(
      verilog_structural_problems("wire x; // no module").empty());
}

TEST(VerilogGenTest, ValueRomEncodesTheTables) {
  // Build a model whose V_H row 0 is a known pattern and check the
  // emitted case entry bit-for-bit.
  const vsa::ModelConfig c = small_config();
  Rng rng(1);
  Tensor v_high = Tensor::rand_sign({c.M, c.D_H}, rng);
  // Row 0 = (+1, -1, +1, +1) -> bits 1101 (lane 0 = LSB) = 4'hd.
  v_high.at(0, 0) = 1.0f;
  v_high.at(0, 1) = -1.0f;
  v_high.at(0, 2) = 1.0f;
  v_high.at(0, 3) = 1.0f;
  const std::size_t kk = c.D_K * c.D_K;
  const vsa::Model m(
      c, std::vector<std::uint8_t>(c.features(), 1), v_high,
      Tensor::rand_sign({c.M, c.D_L}, rng),
      Tensor::rand_sign({c.O, c.D_H * kk}, rng),
      Tensor::rand_sign({c.O, c.sample_dim()}, rng),
      Tensor::rand_sign({c.Theta * c.C, c.sample_dim()}, rng));
  const VerilogGenerator gen(m);
  const std::string rom = gen.value_rom();
  EXPECT_NE(rom.find("4'd0: vh_lookup = 4'hd;"), std::string::npos)
      << rom.substr(0, 800);
}

TEST(VerilogGenTest, MaskRomListsOnlyHighFeatures) {
  const vsa::ModelConfig c = small_config();
  Rng rng(2);
  std::vector<std::uint8_t> mask(c.features(), 0);
  mask[3] = 1;
  mask[7] = 1;
  const std::size_t kk = c.D_K * c.D_K;
  const vsa::Model m(c, mask, Tensor::rand_sign({c.M, c.D_H}, rng),
                     Tensor::rand_sign({c.M, c.D_L}, rng),
                     Tensor::rand_sign({c.O, c.D_H * kk}, rng),
                     Tensor::rand_sign({c.O, c.sample_dim()}, rng),
                     Tensor::rand_sign({c.Theta * c.C, c.sample_dim()},
                                       rng));
  const VerilogGenerator gen(m);
  const std::string rom = gen.value_rom();
  EXPECT_NE(rom.find("4'd3: mask_lookup = 1'b1;"), std::string::npos);
  EXPECT_NE(rom.find("4'd7: mask_lookup = 1'b1;"), std::string::npos);
  EXPECT_EQ(rom.find("4'd2: mask_lookup = 1'b1;"), std::string::npos);
}

TEST(VerilogGenTest, BiconvBakesOneKernelPerChannel) {
  const vsa::Model m = small_model();
  const VerilogGenerator gen(m);
  const std::string conv = gen.biconv();
  for (std::size_t o = 0; o < m.config().O; ++o) {
    EXPECT_NE(conv.find("KERNEL_" + std::to_string(o) + " = "),
              std::string::npos);
  }
  // Patch width D_H*D_K*D_K = 36 bits.
  EXPECT_NE(conv.find("[35:0] patch_bits"), std::string::npos);
}

TEST(VerilogGenTest, SimilarityHasOneBankPerVoterAndClass) {
  const vsa::Model m = small_model();
  const VerilogGenerator gen(m);
  const std::string sim = gen.similarity();
  for (std::size_t t = 0; t < m.config().Theta; ++t) {
    for (std::size_t cls = 0; cls < m.config().C; ++cls) {
      const std::string fn = "cls_lookup_" + std::to_string(t) + "_" +
                             std::to_string(cls);
      EXPECT_NE(sim.find("function " + fn), std::string::npos) << fn;
      EXPECT_NE(sim.find("cnt_" + std::to_string(t) + "_" +
                         std::to_string(cls)),
                std::string::npos);
    }
  }
}

TEST(VerilogGenTest, TestbenchEmbedsExpectedLabelFromFunctionalModel) {
  const vsa::Model m = small_model();
  const VerilogGenerator gen(m);
  const auto sample = probe_sample(m.config());
  const int expected = m.predict(sample).label;
  const std::string tb = gen.testbench(sample);
  EXPECT_NE(tb.find("expected=" + std::to_string(expected)),
            std::string::npos);
  // Every sample value appears in the memory init.
  EXPECT_NE(tb.find("sample_mem[0] = 4'd" + std::to_string(sample[0])),
            std::string::npos);
  EXPECT_NE(tb.find("$finish"), std::string::npos);
}

TEST(VerilogGenTest, TestbenchValidatesSampleSize) {
  const vsa::Model m = small_model();
  const VerilogGenerator gen(m);
  EXPECT_THROW(gen.testbench(std::vector<std::uint16_t>(3, 0)),
               std::invalid_argument);
}

TEST(VerilogGenTest, WriteFilesProducesRtlAndTestbench) {
  const vsa::Model m = small_model();
  const VerilogGenerator gen(m);
  const std::string dir = ::testing::TempDir();
  gen.write_files(dir, probe_sample(m.config()));

  std::ifstream rtl(dir + "/univsa_rtl.v");
  ASSERT_TRUE(rtl.is_open());
  std::string rtl_text((std::istreambuf_iterator<char>(rtl)),
                       std::istreambuf_iterator<char>());
  EXPECT_TRUE(verilog_structural_problems(rtl_text).empty());
  EXPECT_EQ(verilog_module_names(rtl_text).size(), 5u);

  std::ifstream tb(dir + "/univsa_tb.v");
  ASSERT_TRUE(tb.is_open());
  std::string tb_text((std::istreambuf_iterator<char>(tb)),
                      std::istreambuf_iterator<char>());
  EXPECT_EQ(verilog_module_names(tb_text).size(), 1u);
  std::remove((dir + "/univsa_rtl.v").c_str());
  std::remove((dir + "/univsa_tb.v").c_str());
}

TEST(VerilogGenTest, TopWiresEveryUnit) {
  const vsa::Model m = small_model();
  const VerilogGenerator gen(m);
  const std::string top = gen.top();
  EXPECT_NE(top.find("univsa_value_rom u_rom"), std::string::npos);
  EXPECT_NE(top.find("univsa_biconv u_conv"), std::string::npos);
  EXPECT_NE(top.find("univsa_encode u_enc"), std::string::npos);
  EXPECT_NE(top.find("univsa_similarity u_sim"), std::string::npos);
}

TEST(VerilogGenTest, TableOneScaleModelEmits) {
  // The full ISOLET-scale model must emit without issue (the ROM cases
  // are thousands of lines; this guards size-dependent arithmetic).
  Rng rng(3);
  vsa::ModelConfig c;
  c.W = 16;
  c.L = 40;
  c.C = 26;
  c.M = 256;
  c.D_H = 4;
  c.D_L = 4;
  c.D_K = 3;
  c.O = 22;
  c.Theta = 3;
  const vsa::Model m = vsa::Model::random(c, rng);
  const VerilogGenerator gen(m);
  const std::string all = gen.emit_all();
  EXPECT_TRUE(verilog_structural_problems(all).empty());
  EXPECT_GT(all.size(), 100000u);  // the baked model is the majority
}

TEST(VerilogGenTest, RejectsBadOptions) {
  const vsa::Model m = small_model();
  VerilogOptions opts;
  opts.prefix = "";
  EXPECT_THROW(VerilogGenerator(m, opts), std::invalid_argument);
  opts.prefix = "x";
  opts.acc_width = 4;
  EXPECT_THROW(VerilogGenerator(m, opts), std::invalid_argument);
}

}  // namespace
}  // namespace univsa::hw
